// BenchmarkSimThroughput measures raw simulation-kernel speed — simulated
// CPU cycles per wall second and heap allocations per run — for each of
// the paper's four configurations. It is the guard benchmark for the
// allocation-free kernel work: CI runs it with `-benchtime=1x -benchmem`
// and BENCH_throughput.json records the tracked baseline.
package asdsim_test

import (
	"testing"

	"asdsim"
	"asdsim/internal/obs"
	"asdsim/internal/obs/flightrec"
	"asdsim/internal/obs/prov"
)

// throughputBudget is large enough that per-run setup (generator tables,
// cache directories) is amortised and the steady-state MC/DRAM loop
// dominates, while keeping `-benchtime=1x` smoke runs under a second.
const throughputBudget = 300_000

func benchThroughput(b *testing.B, bench string, mode asdsim.Mode) {
	b.Helper()
	cfg := asdsim.DefaultConfig(mode, throughputBudget)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := asdsim.Run(bench, cfg)
		if err != nil {
			b.Fatalf("%s/%v: %v", bench, mode, err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "cycles/sec")
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

func BenchmarkSimThroughput(b *testing.B) {
	// GemsFDTD is the paper's most stream-heavy workload: every MC
	// subsystem (reorder queues, CAQ, LPQ, PB, ASD engine) is exercised.
	for _, mode := range []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS} {
		b.Run(mode.String(), func(b *testing.B) {
			benchThroughput(b, "GemsFDTD", mode)
		})
	}
}

// BenchmarkSimThroughputFlightrec is the recorded-run companion: the
// same workloads with the anomaly flight recorder attached to the probe
// bus. The gap between the two benchmarks is the full cost of always-on
// triage recording. Acceptance is tracked against BENCH_throughput.json:
// the bare run must stay within 2% of the recorded baseline (a nil bus
// keeps every probe behind a single branch) and the recorded run within
// 10% of it; see the "flightrec" section there for current numbers.
func BenchmarkSimThroughputFlightrec(b *testing.B) {
	for _, mode := range []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := asdsim.DefaultConfig(mode, throughputBudget)
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := flightrec.New(flightrec.Options{
					Label:     "GemsFDTD/" + mode.String(),
					Detectors: flightrec.DefaultDetectors(cfg.MC.CAQCap),
				})
				cfg.Obs = obs.NewBus(rec)
				res, err := asdsim.Run("GemsFDTD", cfg)
				if err != nil {
					b.Fatalf("GemsFDTD/%v: %v", mode, err)
				}
				rec.Finish()
				cycles += res.Cycles
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(cycles)/secs, "cycles/sec")
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
		})
	}
}

// BenchmarkSimThroughputProv measures the same workloads with the
// prefetch-provenance recorder attached (default ring, epoch
// snapshots, decision/slot hooks live). The gap against
// BenchmarkSimThroughput is the full cost of per-decision attribution;
// acceptance holds it within 1.10x — see the "provenance" section of
// BENCH_throughput.json for current numbers.
func BenchmarkSimThroughputProv(b *testing.B) {
	for _, mode := range []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := asdsim.DefaultConfig(mode, throughputBudget)
			var cycles, records uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := prov.New(prov.Options{TraceID: "GemsFDTD/" + mode.String()})
				cfg.Prov = rec
				res, err := asdsim.Run("GemsFDTD", cfg)
				if err != nil {
					b.Fatalf("GemsFDTD/%v: %v", mode, err)
				}
				st := rec.Stream()
				records += uint64(len(st.Records)) + st.Dropped
				cycles += res.Cycles
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(cycles)/secs, "cycles/sec")
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
			b.ReportMetric(float64(records)/float64(b.N), "records/op")
		})
	}
}
