// BenchmarkSimThroughput measures raw simulation-kernel speed — simulated
// CPU cycles per wall second and heap allocations per run — for each of
// the paper's four configurations. It is the guard benchmark for the
// allocation-free kernel work: CI runs it with `-benchtime=1x -benchmem`
// and BENCH_throughput.json records the tracked baseline.
package asdsim_test

import (
	"testing"

	"asdsim"
)

// throughputBudget is large enough that per-run setup (generator tables,
// cache directories) is amortised and the steady-state MC/DRAM loop
// dominates, while keeping `-benchtime=1x` smoke runs under a second.
const throughputBudget = 300_000

func benchThroughput(b *testing.B, bench string, mode asdsim.Mode) {
	b.Helper()
	cfg := asdsim.DefaultConfig(mode, throughputBudget)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := asdsim.Run(bench, cfg)
		if err != nil {
			b.Fatalf("%s/%v: %v", bench, mode, err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "cycles/sec")
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

func BenchmarkSimThroughput(b *testing.B) {
	// GemsFDTD is the paper's most stream-heavy workload: every MC
	// subsystem (reorder queues, CAQ, LPQ, PB, ASD engine) is exercised.
	for _, mode := range []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS} {
		b.Run(mode.String(), func(b *testing.B) {
			benchThroughput(b, "GemsFDTD", mode)
		})
	}
}
