package asdsim_test

import (
	"testing"

	"asdsim"
)

func TestBenchmarksListing(t *testing.T) {
	all := asdsim.Benchmarks()
	if len(all) < 30 {
		t.Fatalf("Benchmarks() = %d entries, want >= 30", len(all))
	}
	spec := asdsim.SuiteBenchmarks(asdsim.SPEC2006FP)
	nas := asdsim.SuiteBenchmarks(asdsim.NAS)
	com := asdsim.SuiteBenchmarks(asdsim.Commercial)
	if len(spec) != 17 || len(nas) != 8 || len(com) != 5 {
		t.Errorf("suite sizes: %d/%d/%d", len(spec), len(nas), len(com))
	}
	if len(asdsim.FocusBenchmarks()) != 8 {
		t.Errorf("focus set size = %d", len(asdsim.FocusBenchmarks()))
	}
}

func TestRunAndGain(t *testing.T) {
	cfg := asdsim.DefaultConfig(asdsim.NP, 100_000)
	np, err := asdsim.Run("milc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = asdsim.PMS
	pms, err := asdsim.Run("milc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g := asdsim.Gain(np, pms); g <= 0 {
		t.Errorf("PMS gain over NP = %v, want positive on milc", g)
	}
	if asdsim.Gain(np, asdsim.Result{}) != 0 {
		t.Error("Gain with zero cycles should be 0")
	}
}

func TestCompareDefaultsToAllModes(t *testing.T) {
	cmp, err := asdsim.Compare("tonto", asdsim.DefaultConfig(asdsim.NP, 60_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS} {
		if _, ok := cmp.ByMode[m]; !ok {
			t.Errorf("mode %v missing from comparison", m)
		}
	}
	if cmp.GainOver(asdsim.NP, asdsim.NP) != 0 {
		t.Error("self-gain should be 0")
	}
}

func TestCompareUnknownBenchmark(t *testing.T) {
	if _, err := asdsim.Compare("nosuch", asdsim.DefaultConfig(asdsim.NP, 1000)); err == nil {
		t.Error("expected error")
	}
}

func TestCompareSuite(t *testing.T) {
	cmps, err := asdsim.CompareSuite(asdsim.Commercial, asdsim.DefaultConfig(asdsim.NP, 30_000), asdsim.NP, asdsim.MS)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 5 {
		t.Fatalf("got %d comparisons", len(cmps))
	}
	for _, c := range cmps {
		if len(c.ByMode) != 2 {
			t.Errorf("%s: %d modes", c.Benchmark, len(c.ByMode))
		}
	}
	if _, err := asdsim.CompareSuite(asdsim.Suite("bogus"), asdsim.DefaultConfig(asdsim.NP, 1000)); err == nil {
		t.Error("unknown suite should error")
	}
}
