// Command promlint validates a Prometheus text-exposition payload read
// from stdin against the metrics package's grammar checker — the same
// validator the farm's tests run. CI pipes live scrapes through it so a
// malformed family fails the build, not the first real scrape.
//
// Usage:
//
//	curl -fsS host/metrics?format=prometheus | promlint
package main

import (
	"fmt"
	"io"
	"os"

	"asdsim/internal/metrics"
)

func main() {
	payload, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint: read stdin:", err)
		os.Exit(2)
	}
	if len(payload) == 0 {
		fmt.Fprintln(os.Stderr, "promlint: empty payload")
		os.Exit(2)
	}
	if err := metrics.Lint(payload); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}
