// Command asdfarm drives the batch simulation farm: it fans a
// benchmark x mode matrix out across a bounded worker pool, either as
// a one-shot batch (run) or as an HTTP daemon (serve).
//
// Usage:
//
//	asdfarm run [-suites s1,s2|-benchmarks b1,b2] [-modes NP,PS,MS,PMS]
//	            [-engine asd|next-line|p5-style|ghb] [-threads N]
//	            [-budget N] [-seed N] [-derive-seeds] [-workers N]
//	            [-timeout D] [-retries N] [-out results.jsonl] [-quiet]
//	asdfarm serve [-addr :8465] [-workers N] [-out results.jsonl]
//
// Batch mode prints a live progress meter, a per-benchmark gain table
// (when NP/PS/MS/PMS all ran), and throughput totals. With -out,
// results append to a JSON Lines file as they complete; rerunning with
// the same -out resumes, skipping every run already on disk.
//
// Daemon mode exposes POST /jobs, GET /jobs, GET /jobs/{id},
// DELETE /jobs/{id}, and GET /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"asdsim/internal/farm"
	"asdsim/internal/report"
	"asdsim/internal/sim"
	"asdsim/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runBatch(os.Args[2:])
	case "serve":
		serve(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "asdfarm: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  asdfarm run   [flags]   run a benchmark x mode matrix to completion
  asdfarm serve [flags]   serve the farm's HTTP job API
run 'asdfarm run -h' or 'asdfarm serve -h' for flags`)
}

// csv splits a comma-separated flag value, dropping empties.
func csv(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runBatch(args []string) {
	fs := flag.NewFlagSet("asdfarm run", flag.ExitOnError)
	benchmarks := fs.String("benchmarks", "", "comma-separated benchmark names (empty: all, unless -suites given)")
	suites := fs.String("suites", "", "comma-separated suites: spec2006fp, nas, commercial")
	modes := fs.String("modes", "", "comma-separated configurations (default NP,PS,MS,PMS)")
	engine := fs.String("engine", "asd", "memory-side engine: asd, next-line, p5-style, ghb")
	threads := fs.Int("threads", 1, "SMT threads per run (1 or 2)")
	budget := fs.Uint64("budget", 1_000_000, "instructions per thread per run")
	seed := fs.Uint64("seed", 1, "workload seed")
	deriveSeeds := fs.Bool("derive-seeds", false, "give each matrix cell a decorrelated seed derived from -seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	timeout := fs.Duration("timeout", 0, "per-attempt wall-clock limit (0: none)")
	retries := fs.Int("retries", 1, "retries per failed run")
	out := fs.String("out", "", "JSONL results file; enables persistence and resume")
	quiet := fs.Bool("quiet", false, "suppress the progress meter")
	fs.Parse(args)

	m := farm.Matrix{
		Benchmarks:  csv(*benchmarks),
		Suites:      csv(*suites),
		Modes:       csv(*modes),
		Engine:      *engine,
		Threads:     *threads,
		Budget:      *budget,
		Seed:        *seed,
		DeriveSeeds: *deriveSeeds,
		TimeoutSec:  timeout.Seconds(),
		Retries:     *retries,
	}
	specs, err := m.Specs()
	if err != nil {
		fatal(err)
	}

	var store *farm.Store
	if *out != "" {
		if store, err = farm.OpenStore(*out); err != nil {
			fatal(err)
		}
		defer store.Close()
		if n := store.Completed(); n > 0 {
			fmt.Fprintf(os.Stderr, "asdfarm: resuming: %d completed runs already in %s\n", n, *out)
		}
	}

	pool := farm.New(farm.Options{Workers: *workers})
	runMatrix(pool, specs, store, *quiet)
}

// runMatrix executes specs on pool, rendering progress and the final
// report; it exits non-zero if any run failed.
func runMatrix(pool *farm.Pool, specs []farm.Spec, store *farm.Store, quiet bool) {
	defer pool.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	done, failed := 0, 0
	onDone := func(o farm.Outcome) {
		done++
		if !o.OK() {
			failed++
			fmt.Fprintf(os.Stderr, "\nasdfarm: %s/%v failed after %d attempt(s): %s\n",
				o.Benchmark, o.Mode, o.Attempts, o.Err)
		}
		if !quiet {
			elapsed := time.Since(start).Seconds()
			var rps float64
			if elapsed > 0 {
				rps = float64(done) / elapsed
			}
			report.Progress(os.Stderr, done, failed, len(specs), rps)
		}
	}
	outcomes, err := pool.RunBatch(ctx, specs, store, onDone)
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "asdfarm: interrupted")
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}

	printReport(outcomes)
	elapsed := time.Since(start)
	snap := pool.Metrics().Snapshot()
	fmt.Printf("\n%d runs (%d resumed, %d failed) on %d workers in %s — %.2f runs/s, %.0f Minstr/s simulated\n",
		len(outcomes), snap.Resumed, failed, pool.Workers(), elapsed.Round(time.Millisecond),
		float64(len(outcomes))/elapsed.Seconds(), snap.SimInstrPerSec/1e6)
	if p50, p95, max, n := pool.Metrics().LatencySummary(); n > 0 {
		fmt.Printf("run latency: p50 <= %s, p95 <= %s, max %s over %d runs\n",
			fmtLatency(p50), fmtLatency(p95), fmtLatency(max), n)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// fmtLatency renders a latency bound in seconds compactly; the p50/p95
// bounds can be +Inf when the quantile lands in the open bucket.
func fmtLatency(sec float64) string {
	switch {
	case math.IsInf(sec, 1):
		return ">300s"
	case sec >= 1:
		return fmt.Sprintf("%.3gs", sec)
	default:
		return fmt.Sprintf("%.0fms", sec*1e3)
	}
}

// wallSeconds returns an outcome's host duration: the Result's
// wall-clock when the run happened in this process, else the stored
// per-run WallMS (resumed outcomes carry only the persisted fields).
func wallSeconds(o *farm.Outcome) float64 {
	if o.Result.WallSeconds > 0 {
		return o.Result.WallSeconds
	}
	return o.WallMS / 1e3
}

func fmtWall(sec float64) string { return fmt.Sprintf("%.2fs", sec) }

func fmtRate(cycles, sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", cycles/sec/1e6)
}

// printReport renders per-run results grouped by benchmark, plus the
// paper's gain comparisons when all four modes are present.
func printReport(outcomes []farm.Outcome) {
	byBench := map[string]map[sim.Mode]*farm.Outcome{}
	var order []string
	for i := range outcomes {
		o := &outcomes[i]
		if byBench[o.Benchmark] == nil {
			byBench[o.Benchmark] = map[sim.Mode]*farm.Outcome{}
			order = append(order, o.Benchmark)
		}
		byBench[o.Benchmark][o.Mode] = o
	}
	sort.Strings(order)

	full := true
	for _, b := range order {
		for _, m := range []sim.Mode{sim.NP, sim.PS, sim.MS, sim.PMS} {
			if o := byBench[b][m]; o == nil || !o.OK() {
				full = false
			}
		}
	}

	if full {
		t := report.NewTable("benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS", "wall", "Mcyc/s")
		var g1s, g2s, g3s []float64
		var totalWall, totalCycles float64
		for _, b := range order {
			c := byBench[b]
			gain := func(base, res *farm.Outcome) float64 {
				return 100 * (float64(base.Result.Cycles)/float64(res.Result.Cycles) - 1)
			}
			g1 := gain(c[sim.NP], c[sim.PMS])
			g2 := gain(c[sim.NP], c[sim.MS])
			g3 := gain(c[sim.PS], c[sim.PMS])
			g1s, g2s, g3s = append(g1s, g1), append(g2s, g2), append(g3s, g3)
			var wall, cycles float64
			for _, m := range []sim.Mode{sim.NP, sim.PS, sim.MS, sim.PMS} {
				wall += wallSeconds(c[m])
				cycles += float64(c[m].Result.Cycles)
			}
			totalWall += wall
			totalCycles += cycles
			t.AddRow(b, report.Pct(g1), report.Pct(g2), report.Pct(g3),
				fmtWall(wall), fmtRate(cycles, wall))
		}
		t.AddRow("Average", report.Pct(stats.Mean(g1s)), report.Pct(stats.Mean(g2s)), report.Pct(stats.Mean(g3s)),
			fmtWall(totalWall), fmtRate(totalCycles, totalWall))
		t.Fprint(os.Stdout)
		return
	}

	// Partial matrix: raw per-run rows.
	t := report.NewTable("benchmark", "mode", "cycles", "IPC", "attempts", "wall")
	for _, b := range order {
		modes := make([]sim.Mode, 0, len(byBench[b]))
		for m := range byBench[b] {
			modes = append(modes, m)
		}
		sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
		for _, m := range modes {
			o := byBench[b][m]
			if o.OK() {
				t.AddRow(b, m.String(), fmt.Sprint(o.Result.Cycles),
					fmt.Sprintf("%.3f", o.Result.IPC), fmt.Sprint(o.Attempts),
					fmt.Sprintf("%.0fms", o.WallMS))
			} else {
				t.AddRow(b, m.String(), "FAILED", "", fmt.Sprint(o.Attempts), "")
			}
		}
	}
	t.Fprint(os.Stdout)
}

func serve(args []string) {
	fs := flag.NewFlagSet("asdfarm serve", flag.ExitOnError)
	addr := fs.String("addr", ":8465", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	out := fs.String("out", "", "JSONL results file shared by every job (persistence + resume)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/")
	observe := fs.Bool("observe", true, "attach per-run telemetry (flight recorder, sparklines, depth table)")
	fs.Parse(args)

	var store *farm.Store
	if *out != "" {
		var err error
		if store, err = farm.OpenStore(*out); err != nil {
			fatal(err)
		}
		defer store.Close()
	}
	opts := farm.Options{Workers: *workers}
	var tel *farm.Telemetry
	if *observe {
		tel = farm.NewTelemetry()
		opts.Instrument = tel.Instrument
	}
	pool := farm.New(opts)

	api := farm.NewServer(pool, store)
	if tel != nil {
		api.AttachTelemetry(tel)
	}
	if *pprofOn {
		api.EnablePprof()
	}
	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Graceful shutdown, in dependency order: cancel jobs and end SSE
	// streams, then close the listener draining in-flight requests, then
	// drain the pool; the store closes via its defer, flushing the JSONL
	// file last.
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "asdfarm: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		api.Shutdown(shutdownCtx)
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "asdfarm: serving on %s with %d workers\n", *addr, pool.Workers())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	pool.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asdfarm:", err)
	os.Exit(1)
}
