// Command asdfarm drives the batch simulation farm: it fans a
// benchmark x mode matrix out across a bounded worker pool, either as
// a one-shot batch (run) or as an HTTP daemon (serve).
//
// Usage:
//
//	asdfarm run [-suites s1,s2|-benchmarks b1,b2] [-modes NP,PS,MS,PMS]
//	            [-engine asd|next-line|p5-style|ghb] [-threads N]
//	            [-budget N] [-seed N] [-derive-seeds] [-workers N]
//	            [-timeout D] [-retries N] [-out results.jsonl]
//	            [-outcomes canon.json] [-cluster http://host:8465]
//	            [-trace trace.json] [-quiet]
//	asdfarm serve [-role local|coordinator|worker] [-addr :8465]
//	              [-workers N] [-out path] [-coordinator URL]
//	              [-lease-ttl D] [-worker-ttl D] [-name label]
//
// Batch mode prints a live progress meter, a per-benchmark gain table
// (when NP/PS/MS/PMS all ran), and throughput totals. With -out,
// results append to a store as they complete; rerunning with the same
// -out resumes, skipping every run already on disk. A -out path ending
// in .jsonl is the single-file legacy layout; any other path is a
// segmented store directory with background compaction. With -cluster,
// the matrix is submitted to a coordinator's job API and executed by
// its worker fleet instead of in-process; -outcomes writes the
// canonical (sorted, wall-clock-free) outcome set either way, so
// distributed and local runs can be byte-compared.
//
// Daemon mode exposes POST /jobs, GET /jobs, GET /jobs/{id},
// DELETE /jobs/{id}, and GET /metrics. -role=coordinator additionally
// serves the cluster lease protocol on POST /cluster/rpc and executes
// jobs on registered workers; -role=worker joins a coordinator and
// contributes -workers lease loops.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"asdsim/internal/cluster"
	"asdsim/internal/cluster/rpc"
	"asdsim/internal/farm"
	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/obs/prov"
	"asdsim/internal/obs/span"
	"asdsim/internal/report"
	"asdsim/internal/sim"
	"asdsim/internal/stats"
)

// logger is the process-wide structured logger: human-readable
// key=value records on stderr, coexisting with the progress meter
// (which stays a meter, not a log).
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runBatch(os.Args[2:])
	case "serve":
		serve(os.Args[2:])
	case "explain":
		explainCmd(os.Args[2:])
	case "diff":
		diffCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "asdfarm: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  asdfarm run     [flags]             run a benchmark x mode matrix to completion
  asdfarm serve   [flags]             serve the farm's HTTP job API
  asdfarm explain [flags] <key>       print a stored run's prefetch lineage tree
  asdfarm diff    [flags] <a> <b>     attribute two stored runs' outcome delta
                                      to their decision divergences
run 'asdfarm <cmd> -h' for flags`)
}

// csv splits a comma-separated flag value, dropping empties.
func csv(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runBatch(args []string) {
	fs := flag.NewFlagSet("asdfarm run", flag.ExitOnError)
	benchmarks := fs.String("benchmarks", "", "comma-separated benchmark names (empty: all, unless -suites given)")
	suites := fs.String("suites", "", "comma-separated suites: spec2006fp, nas, commercial")
	modes := fs.String("modes", "", "comma-separated configurations (default NP,PS,MS,PMS)")
	engine := fs.String("engine", "asd", "memory-side engine: asd, next-line, p5-style, ghb")
	threads := fs.Int("threads", 1, "SMT threads per run (1 or 2)")
	budget := fs.Uint64("budget", 1_000_000, "instructions per thread per run")
	seed := fs.Uint64("seed", 1, "workload seed")
	deriveSeeds := fs.Bool("derive-seeds", false, "give each matrix cell a decorrelated seed derived from -seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	timeout := fs.Duration("timeout", 0, "per-attempt wall-clock limit (0: none)")
	retries := fs.Int("retries", 1, "retries per failed run")
	sample := fs.Bool("sample", false, "SMARTS-style sampled simulation: each cell yields a CPI confidence interval and extrapolated estimate")
	samplePeriod := fs.Uint64("sample-period", 0, "sampling period in instructions (0 = default)")
	sampleWarmup := fs.Uint64("sample-warmup", 0, "detailed warmup instructions per window (0 = default)")
	sampleDetail := fs.Uint64("sample-detail", 0, "measured detailed instructions per window (0 = default)")
	sampleFuncWarm := fs.Uint64("sample-funcwarm", 0, "bound functional warming to the last N instructions before each window (0 = warm the whole gap)")
	sampleConf := fs.Float64("sample-confidence", 0, "confidence level for CPI intervals: 0.90, 0.95 or 0.99 (0 = default)")
	out := fs.String("out", "", "results store (file or directory); enables persistence and resume")
	provDir := fs.String("prov", "", "provenance sidecar directory; records every run's per-prefetch lineage for 'asdfarm explain'/'diff'")
	outcomes := fs.String("outcomes", "", "write the canonical outcome set (sorted JSON, wall-clock-free) here")
	clusterURL := fs.String("cluster", "", "coordinator base URL; run the matrix on the distributed farm")
	tracePath := fs.String("trace", "", "write a Perfetto/Chrome trace of the batch here (with -cluster: the coordinator's merged distributed trace)")
	quiet := fs.Bool("quiet", false, "suppress the progress meter")
	fs.Parse(args)

	m := farm.Matrix{
		Benchmarks:  csv(*benchmarks),
		Suites:      csv(*suites),
		Modes:       csv(*modes),
		Engine:      *engine,
		Threads:     *threads,
		Budget:      *budget,
		Seed:        *seed,
		DeriveSeeds: *deriveSeeds,
		TimeoutSec:  timeout.Seconds(),
		Retries:     *retries,
	}
	if *sample || *samplePeriod != 0 || *sampleWarmup != 0 || *sampleDetail != 0 || *sampleFuncWarm != 0 || *sampleConf != 0 {
		m.Sample = &sim.SampleConfig{
			Period: *samplePeriod, Warmup: *sampleWarmup, Detail: *sampleDetail,
			FuncWarmup: *sampleFuncWarm, Confidence: *sampleConf,
		}
	}
	specs, err := m.Specs()
	if err != nil {
		fatal(err)
	}

	if *clusterURL != "" {
		runOnCluster(*clusterURL, m, len(specs), *outcomes, *tracePath, *quiet)
		return
	}

	var store *farm.Store
	if *out != "" {
		if store, err = farm.OpenStore(*out); err != nil {
			fatal(err)
		}
		defer store.Close()
		if n := store.Completed(); n > 0 {
			logger.Info("resuming from store", "completed", n, "store", *out)
		}
	}

	opts := farm.Options{Workers: *workers}
	var bt *batchTracer
	if *tracePath != "" {
		bt = newBatchTracer()
		opts.Instrument = bt.instrument
	}
	if *provDir != "" {
		ps, err := prov.OpenStore(*provDir)
		if err != nil {
			fatal(err)
		}
		opts.Provenance = farm.NewProvenance(ps, 0).Attach
	}
	pool := farm.New(opts)
	runMatrix(pool, specs, store, *outcomes, *quiet)
	if bt != nil {
		if err := bt.write(*tracePath, specs); err != nil {
			fatal(err)
		}
		logger.Info("batch trace written", "path", *tracePath, "spans", bt.rec.Len())
	}
}

// batchTracer implements the local -trace path: every attempt gets a
// farm-level span plus a private sim-level Chrome-trace sink, and the
// final file merges both — the span timeline in front, one child
// process per run's cycle-level trace behind it.
type batchTracer struct {
	rec *span.Recorder

	mu   sync.Mutex
	sims []*obs.TraceBuilder
}

func newBatchTracer() *batchTracer {
	return &batchTracer{rec: span.NewRecorder("local", time.Now)}
}

// instrument is a farm Options.Instrument hook.
func (b *batchTracer) instrument(spec farm.Spec) (*obs.Bus, func(res *sim.Result, err error)) {
	key := spec.Key()
	traceID := span.TraceIDFromKey(key)
	run := b.rec.Start(traceID, 0, "run", key,
		span.Attr{Key: "benchmark", Value: spec.Benchmark},
		span.Attr{Key: "mode", Value: spec.Mode.String()})
	tb := obs.NewTraceBuilder()
	tb.StartProcess("sim " + spec.Benchmark + "/" + spec.Mode.String())
	fin := func(res *sim.Result, err error) {
		status := "ok"
		if err != nil {
			status = "failed"
		}
		run.End(span.Attr{Key: "status", Value: status})
		b.mu.Lock()
		b.sims = append(b.sims, tb)
		b.mu.Unlock()
	}
	return obs.NewBus(tb), fin
}

// write renders the merged batch trace to path.
func (b *batchTracer) write(path string, specs []farm.Spec) error {
	keys := make([]string, len(specs))
	for i := range specs {
		keys[i] = specs[i].Key()
	}
	batch := span.BuildTrace(b.rec.SpansFor(keys))
	b.mu.Lock()
	for _, tb := range b.sims {
		batch.Merge(tb)
	}
	b.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := batch.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeOutcomes renders the canonical comparison set to path.
func writeOutcomes(path string, outcomes []farm.Outcome) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := farm.WriteCanonical(f, outcomes); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// runOnCluster submits the matrix to a coordinator's job API, polls it
// to completion, and fetches the canonical outcome set — which is
// byte-identical to what a local -outcomes run writes, because every
// simulation is a pure function of its spec.
func runOnCluster(base string, m farm.Matrix, total int, outcomesPath, tracePath string, quiet bool) {
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(m)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		fatal(fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, sub.Error))
	}
	logger.Info("job submitted", "job", sub.ID, "coordinator", base, "runs", total)

	start := time.Now()
	var st struct {
		Job struct {
			State  string `json:"state"`
			Done   int    `json:"done"`
			Failed int    `json:"failed"`
			Total  int    `json:"total"`
		} `json:"job"`
		LeaseEvents []struct {
			Seq    int64  `json:"seq"`
			Event  string `json:"event"`
			Key    string `json:"key"`
			Worker string `json:"worker"`
		} `json:"lease_events"`
	}
	var lastSeq int64
	for {
		r, err := http.Get(base + "/jobs/" + sub.ID + "?limit=1")
		if err != nil {
			fatal(err)
		}
		st.LeaseEvents = st.LeaseEvents[:0]
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			fatal(err)
		}
		for _, ev := range st.LeaseEvents {
			if ev.Seq <= lastSeq {
				continue
			}
			lastSeq = ev.Seq
			// Completions are the progress meter's job; surface the
			// lease transitions that explain stalls and reruns.
			if ev.Event == "complete" {
				continue
			}
			if !quiet {
				fmt.Fprintln(os.Stderr)
			}
			logger.Info("lease "+ev.Event, "job", sub.ID, "key", short(ev.Key), "worker", ev.Worker)
		}
		if !quiet {
			elapsed := time.Since(start).Seconds()
			var rps float64
			if elapsed > 0 {
				rps = float64(st.Job.Done) / elapsed
			}
			report.Progress(os.Stderr, st.Job.Done, st.Job.Failed, st.Job.Total, rps)
		}
		if st.Job.State != "running" {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}

	if tracePath != "" {
		r, err := http.Get(base + "/jobs/" + sub.ID + "?format=trace")
		if err != nil {
			fatal(err)
		}
		trace, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("trace export: HTTP %d: %s", r.StatusCode, trace))
		}
		if err := os.WriteFile(tracePath, trace, 0o644); err != nil {
			fatal(err)
		}
		logger.Info("distributed trace written", "path", tracePath, "bytes", len(trace))
	}

	r, err := http.Get(base + "/jobs/" + sub.ID + "?format=outcomes")
	if err != nil {
		fatal(err)
	}
	canon, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		fatal(err)
	}
	if outcomesPath != "" {
		if err := os.WriteFile(outcomesPath, canon, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%d/%d runs done (%d failed) in %s via %s\n",
		st.Job.Done, st.Job.Total, st.Job.Failed, time.Since(start).Round(time.Millisecond), base)
	if st.Job.State != "done" || st.Job.Failed > 0 {
		os.Exit(1)
	}
}

// runMatrix executes specs on pool, rendering progress and the final
// report; it exits non-zero if any run failed.
func runMatrix(pool *farm.Pool, specs []farm.Spec, store *farm.Store, outcomesPath string, quiet bool) {
	defer pool.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	done, failed := 0, 0
	onDone := func(o farm.Outcome) {
		done++
		if !o.OK() {
			failed++
			fmt.Fprintf(os.Stderr, "\nasdfarm: %s/%v failed after %d attempt(s): %s\n",
				o.Benchmark, o.Mode, o.Attempts, o.Err)
		}
		if !quiet {
			elapsed := time.Since(start).Seconds()
			var rps float64
			if elapsed > 0 {
				rps = float64(done) / elapsed
			}
			report.Progress(os.Stderr, done, failed, len(specs), rps)
		}
	}
	outcomes, err := pool.RunBatch(ctx, specs, store, onDone)
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "asdfarm: interrupted")
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}
	if outcomesPath != "" {
		writeOutcomes(outcomesPath, outcomes)
	}

	printReport(outcomes)
	elapsed := time.Since(start)
	snap := pool.Metrics().Snapshot()
	fmt.Printf("\n%d runs (%d resumed, %d failed) on %d workers in %s — %.2f runs/s, %.0f Minstr/s simulated\n",
		len(outcomes), snap.Resumed, failed, pool.Workers(), elapsed.Round(time.Millisecond),
		float64(len(outcomes))/elapsed.Seconds(), snap.SimInstrPerSec/1e6)
	if p50, p95, max, n := pool.Metrics().LatencySummary(); n > 0 {
		fmt.Printf("run latency: p50 <= %s, p95 <= %s, max %s over %d runs\n",
			fmtLatency(p50), fmtLatency(p95), fmtLatency(max), n)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// fmtLatency renders a latency bound in seconds compactly; the p50/p95
// bounds can be +Inf when the quantile lands in the open bucket.
func fmtLatency(sec float64) string {
	switch {
	case math.IsInf(sec, 1):
		return ">300s"
	case sec >= 1:
		return fmt.Sprintf("%.3gs", sec)
	default:
		return fmt.Sprintf("%.0fms", sec*1e3)
	}
}

// wallSeconds returns an outcome's host duration: the Result's
// wall-clock when the run happened in this process, else the stored
// per-run WallMS (resumed outcomes carry only the persisted fields).
func wallSeconds(o *farm.Outcome) float64 {
	if o.Result.WallSeconds > 0 {
		return o.Result.WallSeconds
	}
	return o.WallMS / 1e3
}

func fmtWall(sec float64) string { return fmt.Sprintf("%.2fs", sec) }

func fmtRate(cycles, sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", cycles/sec/1e6)
}

// printReport renders per-run results grouped by benchmark, plus the
// paper's gain comparisons when all four modes are present.
func printReport(outcomes []farm.Outcome) {
	byBench := map[string]map[sim.Mode]*farm.Outcome{}
	var order []string
	for i := range outcomes {
		o := &outcomes[i]
		if byBench[o.Benchmark] == nil {
			byBench[o.Benchmark] = map[sim.Mode]*farm.Outcome{}
			order = append(order, o.Benchmark)
		}
		byBench[o.Benchmark][o.Mode] = o
	}
	sort.Strings(order)

	full := true
	for _, b := range order {
		for _, m := range []sim.Mode{sim.NP, sim.PS, sim.MS, sim.PMS} {
			if o := byBench[b][m]; o == nil || !o.OK() {
				full = false
			}
		}
	}

	if full {
		t := report.NewTable("benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS", "wall", "Mcyc/s")
		var g1s, g2s, g3s []float64
		var totalWall, totalCycles float64
		for _, b := range order {
			c := byBench[b]
			gain := func(base, res *farm.Outcome) float64 {
				return 100 * (float64(base.Result.Cycles)/float64(res.Result.Cycles) - 1)
			}
			g1 := gain(c[sim.NP], c[sim.PMS])
			g2 := gain(c[sim.NP], c[sim.MS])
			g3 := gain(c[sim.PS], c[sim.PMS])
			g1s, g2s, g3s = append(g1s, g1), append(g2s, g2), append(g3s, g3)
			var wall, cycles float64
			for _, m := range []sim.Mode{sim.NP, sim.PS, sim.MS, sim.PMS} {
				wall += wallSeconds(c[m])
				cycles += float64(c[m].Result.Cycles)
			}
			totalWall += wall
			totalCycles += cycles
			t.AddRow(b, report.Pct(g1), report.Pct(g2), report.Pct(g3),
				fmtWall(wall), fmtRate(cycles, wall))
		}
		t.AddRow("Average", report.Pct(stats.Mean(g1s)), report.Pct(stats.Mean(g2s)), report.Pct(stats.Mean(g3s)),
			fmtWall(totalWall), fmtRate(totalCycles, totalWall))
		t.Fprint(os.Stdout)
		return
	}

	// Partial matrix: raw per-run rows.
	t := report.NewTable("benchmark", "mode", "cycles", "IPC", "attempts", "wall")
	for _, b := range order {
		modes := make([]sim.Mode, 0, len(byBench[b]))
		for m := range byBench[b] {
			modes = append(modes, m)
		}
		sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
		for _, m := range modes {
			o := byBench[b][m]
			if o.OK() {
				t.AddRow(b, m.String(), fmt.Sprint(o.Result.Cycles),
					fmt.Sprintf("%.3f", o.Result.IPC), fmt.Sprint(o.Attempts),
					fmt.Sprintf("%.0fms", o.WallMS))
			} else {
				t.AddRow(b, m.String(), "FAILED", "", fmt.Sprint(o.Attempts), "")
			}
		}
	}
	t.Fprint(os.Stdout)
}

func serve(args []string) {
	fs := flag.NewFlagSet("asdfarm serve", flag.ExitOnError)
	role := fs.String("role", "local", "local (in-process pool), coordinator (distribute to workers), worker (join a coordinator)")
	addr := fs.String("addr", ":8465", "listen address (local, coordinator)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations (local, worker: lease loops)")
	out := fs.String("out", "", "results store shared by every job: a .jsonl file or a segment directory")
	coordURL := fs.String("coordinator", "", "coordinator base URL to join (worker)")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "lease TTL before an unrenewed task is reclaimed (coordinator)")
	workerTTL := fs.Duration("worker-ttl", 10*time.Second, "worker liveness TTL (coordinator)")
	name := fs.String("name", "", "worker label shown by the coordinator (default hostname)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/")
	observe := fs.Bool("observe", true, "attach per-run telemetry (flight recorder, sparklines, depth table)")
	provDir := fs.String("prov", "", "provenance sidecar directory; records per-prefetch lineage and serves /explain and /diff (local role)")
	fs.Parse(args)

	var store *farm.Store
	if *out != "" {
		var err error
		if store, err = farm.OpenStore(*out); err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	switch *role {
	case "local":
		serveLocal(*addr, *workers, store, *pprofOn, *observe, *provDir)
	case "coordinator":
		serveCoordinator(*addr, store, *leaseTTL, *workerTTL, *pprofOn)
	case "worker":
		if *coordURL == "" {
			fatal(errors.New("serve -role=worker needs -coordinator=<url>"))
		}
		serveWorker(*coordURL, *workers, *name, *observe)
	default:
		fatal(fmt.Errorf("unknown serve role %q (local, coordinator, worker)", *role))
	}
}

func serveLocal(addr string, workers int, store *farm.Store, pprofOn, observe bool, provDir string) {
	opts := farm.Options{Workers: workers}
	var tel *farm.Telemetry
	if observe {
		tel = farm.NewTelemetry()
		opts.Instrument = tel.Instrument
	}
	var pcol *farm.Provenance
	if provDir != "" {
		ps, err := prov.OpenStore(provDir)
		if err != nil {
			fatal(err)
		}
		pcol = farm.NewProvenance(ps, 0)
		opts.Provenance = pcol.Attach
	}
	pool := farm.New(opts)
	pool.Metrics().AttachSLO(farm.NewSLOTracker(farm.SLOConfig{}, nil))

	api := farm.NewServer(pool, store)
	if tel != nil {
		api.AttachTelemetry(tel)
	}
	if pcol != nil {
		api.AttachProvenance(pcol)
	}
	if pprofOn {
		api.EnablePprof()
	}
	logger.Info("serving", "addr", addr, "workers", pool.Workers())
	serveHTTP(addr, api, api.Handler())
	pool.Close()
}

// serveCoordinator runs the distributed farm's control plane: the
// regular job API backed by the worker fleet, plus the lease protocol
// endpoint the workers speak.
func serveCoordinator(addr string, store *farm.Store, leaseTTL, workerTTL time.Duration, pprofOn bool) {
	coord := cluster.New(cluster.Options{LeaseTTL: leaseTTL, WorkerTTL: workerTTL, Store: store,
		Logger: logger.With("role", "coordinator")})
	coord.Metrics().AttachSLO(farm.NewSLOTracker(farm.SLOConfig{}, nil))
	api := farm.NewServerFor(coord, store)
	if pprofOn {
		api.EnablePprof()
	}
	mux := http.NewServeMux()
	mux.Handle(rpc.Route, rpc.Handler(coord))
	mux.Handle("/", api.Handler())
	logger.Info("coordinating", "addr", addr, "lease_ttl", leaseTTL, "worker_ttl", workerTTL)
	serveHTTP(addr, api, mux)
}

// serveWorker joins a coordinator and serves leases until interrupted:
// one lease loop per configured slot, all feeding one local pool.
func serveWorker(coordURL string, slots int, name string, observe bool) {
	if name == "" {
		name, _ = os.Hostname()
	}
	wlog := logger.With("role", "worker", "worker", name)
	opts := farm.Options{Workers: slots}
	var tel *farm.Telemetry
	if observe {
		tel = farm.NewTelemetry()
		tel.Node = name
		opts.Instrument = tel.Instrument
	}
	pool := farm.New(opts)
	defer pool.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &cluster.Worker{Transport: rpc.New(strings.TrimRight(coordURL, "/")), Pool: pool, Name: name,
		Spans: span.NewRecorder(name, time.Now), Logger: wlog}
	wlog.Info("joining coordinator", "coordinator", coordURL, "slots", slots)
	errs := make(chan error, slots)
	for i := 0; i < slots; i++ {
		go func() { errs <- w.Run(ctx) }()
	}
	for i := 0; i < slots; i++ {
		if err := <-errs; err != nil && !errors.Is(err, context.Canceled) {
			wlog.Error("lease loop failed", "err", err)
		}
	}
	st := w.Stats()
	wlog.Info("worker done", "acquired", st.Acquired(), "completed", st.Completed(), "expired", st.Expired())
}

// serveHTTP runs one HTTP server with the shared graceful-shutdown
// sequence: cancel jobs and end SSE streams, then close the listener
// draining in-flight requests; stores close via their defers last.
func serveHTTP(addr string, api *farm.Server, handler http.Handler) {
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		api.Shutdown(shutdownCtx)
		srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// resolveProvKey opens the sidecar store and resolves a possibly
// abbreviated spec key (any unique prefix of a stored key works).
func resolveProvKey(dir, key string) (*prov.Store, string) {
	ps, err := prov.OpenStore(dir)
	if err != nil {
		fatal(err)
	}
	keys, err := ps.Keys()
	if err != nil {
		fatal(err)
	}
	var match string
	for _, k := range keys {
		if k == key {
			return ps, k
		}
		if strings.HasPrefix(k, key) {
			if match != "" {
				fatal(fmt.Errorf("key prefix %q is ambiguous (%s…, %s…)", key, short(match), short(k)))
			}
			match = k
		}
	}
	if match == "" {
		fatal(fmt.Errorf("no provenance stream for key %q in %s (%d stored)", key, dir, len(keys)))
	}
	return ps, match
}

// loadProvStream loads one stored stream by (possibly abbreviated) key.
func loadProvStream(dir, key string) (*prov.Stream, string) {
	ps, full := resolveProvKey(dir, key)
	st, ok, err := ps.Load(full)
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("no provenance stream for key %q in %s", full, dir))
	}
	return st, full
}

// explainCmd prints the lineage tree of one prefetch from a stored
// run's provenance sidecar — the CLI twin of the server's
// GET /explain/{key}.
func explainCmd(args []string) {
	fs := flag.NewFlagSet("asdfarm explain", flag.ExitOnError)
	provDir := fs.String("prov", "prov", "provenance sidecar directory (written by run/serve with -prov)")
	lineFlag := fs.String("line", "", "cache line to explain, hex or decimal (default: the last explainable prefetch)")
	cycleFlag := fs.Uint64("cycle", math.MaxUint64, "explain the line's lineage generation at or before this cycle")
	jsonOut := fs.Bool("json", false, "emit the structured lineage as JSON instead of the tree")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(errors.New("usage: asdfarm explain [-prov dir] [-line 0x..] [-cycle N] <spec-key>"))
	}
	st, _ := loadProvStream(*provDir, fs.Arg(0))

	var line mem.Line
	cycle := *cycleFlag
	if *lineFlag != "" {
		v, err := strconv.ParseUint(*lineFlag, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -line %q: %w", *lineFlag, err))
		}
		line = mem.Line(v)
	} else {
		var ok bool
		if line, cycle, ok = prov.LastExplainable(st); !ok {
			fatal(errors.New("stream records no explainable prefetch (did the run prefetch at all?)"))
		}
	}
	lin, err := prov.Explain(st, line, cycle)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(lin)
		return
	}
	lin.WriteTree(os.Stdout)
}

// diffCmd attributes the outcome delta between two stored runs to
// their recorded decision divergences — the CLI twin of the server's
// GET /diff/{a}/{b}.
func diffCmd(args []string) {
	fs := flag.NewFlagSet("asdfarm diff", flag.ExitOnError)
	provDir := fs.String("prov", "prov", "provenance sidecar directory (written by run/serve with -prov)")
	storePath := fs.String("store", "", "results store; fills the report's cycles/IPC context")
	jsonOut := fs.Bool("json", false, "emit the structured report as JSON instead of text")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(errors.New("usage: asdfarm diff [-prov dir] [-store path] <spec-key-A> <spec-key-B>"))
	}
	a, keyA := loadProvStream(*provDir, fs.Arg(0))
	b, keyB := loadProvStream(*provDir, fs.Arg(1))
	rep := prov.Diff(a, b)
	if *storePath != "" {
		store, err := farm.OpenStore(*storePath)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		if o, ok := store.Lookup(keyA); ok && o.Result != nil {
			rep.CyclesA, rep.IPCA = o.Result.Cycles, o.Result.IPC
		}
		if o, ok := store.Lookup(keyB); ok && o.Result != nil {
			rep.CyclesB, rep.IPCB = o.Result.Cycles, o.Result.IPC
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	rep.WriteReport(os.Stdout)
}

// short abbreviates a 64-hex spec key for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asdfarm:", err)
	os.Exit(1)
}
