// Command slhdump analyses a trace — either a binary ASD1 file written by
// cmd/tracegen or a named synthetic benchmark — and prints its access
// statistics and the Stream Length Histogram the ASD hardware would
// gather from its post-cache miss stream.
//
// Usage:
//
//	slhdump -bench GemsFDTD -records 500000     # synthetic benchmark
//	slhdump -file gems.asd1                     # trace file
//	slhdump -bench GemsFDTD -epochs             # per-epoch LHT timeline
//
// -epochs attaches a provenance recorder to the replay engine and
// prints one line per SLH epoch roll: the epoch index, the roll cycle,
// and the ascending/descending LHTs the roll installed for the next
// epoch — the table each of that epoch's prefetch decisions consulted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asdsim/internal/cache"
	"asdsim/internal/core"
	"asdsim/internal/mem"
	"asdsim/internal/obs/prov"
	"asdsim/internal/report"
	"asdsim/internal/trace"
	"asdsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (synthetic source)")
	file := flag.String("file", "", "binary ASD1 trace file")
	records := flag.Int("records", 500_000, "records to analyse")
	seed := flag.Uint64("seed", 1, "workload seed (with -bench)")
	epochs := flag.Bool("epochs", false, "print the per-epoch SLH/LHT snapshot timeline")
	flag.Parse()

	src, closer, err := openSource(*bench, *file, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closer()

	recs := trace.Collect(trace.Limit(src, *records), 0)
	fmt.Println("--- trace statistics ---")
	fmt.Print(trace.Analyze(trace.NewSliceSource(recs), 0))

	// Replay through the cache hierarchy and feed the MC-level miss
	// stream to an ASD engine, as the memory controller would see it.
	h := cache.NewHierarchy(cache.DefaultConfig())
	eng := core.NewEngine(core.DefaultConfig())
	var rec *prov.Recorder
	if *epochs {
		rec = prov.New(prov.Options{TraceID: "slhdump"})
		eng.SetProv(rec, 0)
	}
	now := uint64(0)
	misses := 0
	for _, rec := range recs {
		line := mem.LineOf(rec.Addr)
		res := h.Access(line, rec.Op == trace.Store, now)
		if res.Level == cache.Memory {
			h.Fill(line, rec.Op == trace.Store)
			now += 120 // nominal MC read spacing
			eng.ObserveRead(line, now)
			misses++
		}
	}
	fmt.Printf("\n--- memory-controller view (%d reads after cache filtering) ---\n", misses)
	report.Histogram(os.Stdout, "Stream Length Histogram (by streams, filter approximation)", eng.ApproxLengths, 50)
	up := eng.SLHUp().Histogram()
	if up.Total() > 0 {
		report.Histogram(os.Stdout, "Current-epoch ascending SLH (by reads, LHTcurr)", up, 50)
	}
	if rec != nil {
		printEpochTimeline(rec.Stream())
	}
}

// printEpochTimeline renders every recorded SLH epoch roll: the LHTs
// the roll installed (the Next tables — these decide the epoch that
// begins) with trailing zero buckets elided.
func printEpochTimeline(st *prov.Stream) {
	fmt.Printf("\n--- SLH epoch timeline (%d rolls) ---\n", len(st.Epochs))
	if len(st.Epochs) == 0 {
		fmt.Println("no epoch completed; lower the epoch length or raise -records")
		return
	}
	for _, e := range st.Epochs {
		fmt.Printf("epoch %3d @cycle %-10d up=%s down=%s\n",
			e.Epoch, e.Cycle, fmtLHT(e.UpNext), fmtLHT(e.DownNext))
	}
}

// fmtLHT prints an LHT with trailing zero buckets collapsed.
func fmtLHT(t []uint32) string {
	n := len(t)
	for n > 0 && t[n-1] == 0 {
		n--
	}
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", t[i])
	}
	if n < len(t) {
		if n > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "0×%d", len(t)-n)
	}
	b.WriteByte(']')
	return b.String()
}

// openSource resolves the input selection.
func openSource(bench, file string, seed uint64) (trace.Source, func(), error) {
	switch {
	case bench != "" && file != "":
		return nil, nil, fmt.Errorf("slhdump: use -bench or -file, not both")
	case bench != "":
		prof, err := workload.ByName(bench)
		if err != nil {
			return nil, nil, err
		}
		g, err := workload.NewGenerator(prof, seed, 0)
		if err != nil {
			return nil, nil, err
		}
		return g, func() {}, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		return trace.NewReader(f), func() { f.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("slhdump: provide -bench or -file")
	}
}
