// Command slhdump analyses a trace — either a binary ASD1 file written by
// cmd/tracegen or a named synthetic benchmark — and prints its access
// statistics and the Stream Length Histogram the ASD hardware would
// gather from its post-cache miss stream.
//
// Usage:
//
//	slhdump -bench GemsFDTD -records 500000     # synthetic benchmark
//	slhdump -file gems.asd1                     # trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"asdsim/internal/cache"
	"asdsim/internal/core"
	"asdsim/internal/mem"
	"asdsim/internal/report"
	"asdsim/internal/trace"
	"asdsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (synthetic source)")
	file := flag.String("file", "", "binary ASD1 trace file")
	records := flag.Int("records", 500_000, "records to analyse")
	seed := flag.Uint64("seed", 1, "workload seed (with -bench)")
	flag.Parse()

	src, closer, err := openSource(*bench, *file, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closer()

	recs := trace.Collect(trace.Limit(src, *records), 0)
	fmt.Println("--- trace statistics ---")
	fmt.Print(trace.Analyze(trace.NewSliceSource(recs), 0))

	// Replay through the cache hierarchy and feed the MC-level miss
	// stream to an ASD engine, as the memory controller would see it.
	h := cache.NewHierarchy(cache.DefaultConfig())
	eng := core.NewEngine(core.DefaultConfig())
	now := uint64(0)
	misses := 0
	for _, rec := range recs {
		line := mem.LineOf(rec.Addr)
		res := h.Access(line, rec.Op == trace.Store, now)
		if res.Level == cache.Memory {
			h.Fill(line, rec.Op == trace.Store)
			now += 120 // nominal MC read spacing
			eng.ObserveRead(line, now)
			misses++
		}
	}
	fmt.Printf("\n--- memory-controller view (%d reads after cache filtering) ---\n", misses)
	report.Histogram(os.Stdout, "Stream Length Histogram (by streams, filter approximation)", eng.ApproxLengths, 50)
	up := eng.SLHUp().Histogram()
	if up.Total() > 0 {
		report.Histogram(os.Stdout, "Current-epoch ascending SLH (by reads, LHTcurr)", up, 50)
	}
}

// openSource resolves the input selection.
func openSource(bench, file string, seed uint64) (trace.Source, func(), error) {
	switch {
	case bench != "" && file != "":
		return nil, nil, fmt.Errorf("slhdump: use -bench or -file, not both")
	case bench != "":
		prof, err := workload.ByName(bench)
		if err != nil {
			return nil, nil, err
		}
		g, err := workload.NewGenerator(prof, seed, 0)
		if err != nil {
			return nil, nil, err
		}
		return g, func() {}, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		return trace.NewReader(f), func() { f.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("slhdump: provide -bench or -file")
	}
}
