// Command figures regenerates every table and figure of the paper's
// evaluation (Hur & Lin, "Memory Prefetching Using Adaptive Stream
// Detection", MICRO 2006) on the synthetic reproduction, printing text
// tables alongside the paper's reported values.
//
// Usage:
//
//	figures [-budget N] [-seed N] [-workers N] [-store PATH] <experiment>|all
//
// Experiments: fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 smt sched hwcost epoch multiline
//
// Each experiment's run matrix executes on the simulation farm
// (internal/farm) with -workers concurrent simulations; results are
// identical to a serial run at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"asdsim/internal/farm"
)

// experiment is one regenerable paper artifact.
type experiment struct {
	name  string
	about string
	run   func(*env)
}

// env carries shared run parameters and the farm pool every
// experiment's matrix executes on.
type env struct {
	budget uint64
	seed   uint64
	pool   *farm.Pool
	// store, when non-nil, persists every cell and resumes repeats
	// without re-simulating (figures across runs share one matrix).
	store *farm.Store
	// quiet suppresses the per-matrix summary line on stderr (-quiet
	// flag only; piping does not imply it, so CI can grep the summary).
	quiet bool
	// meterOff additionally suppresses the in-place progress meter
	// (-quiet, or stderr not a terminal: its \r rewrites would litter a
	// piped stream).
	meterOff bool
}

var experiments = []experiment{
	{"fig2", "SLH for one epoch of GemsFDTD", fig2},
	{"fig3", "SLH variation across GemsFDTD epochs", fig3},
	{"fig5", "SPEC2006fp performance gains", fig5},
	{"fig6", "NAS performance gains", fig6},
	{"fig7", "Commercial performance gains", fig7},
	{"fig8", "SPEC2006fp DRAM power/energy (PMS vs PS)", fig8},
	{"fig9", "NAS DRAM power/energy (PMS vs PS)", fig9},
	{"fig10", "Commercial DRAM power/energy (PMS vs PS)", fig10},
	{"fig11", "ASD + Adaptive Scheduling ablation", fig11},
	{"fig12", "Stream-length mix of the focus benchmarks", fig12},
	{"fig13", "Prefetch efficiency (useful/coverage/delayed)", fig13},
	{"fig14", "Prefetch Buffer size sensitivity", fig14},
	{"fig15", "Stream Filter size sensitivity", fig15},
	{"fig16", "SLH approximation accuracy", fig16},
	{"smt", "SMT (2-thread) performance gains (§5.2 text)", smt},
	{"sched", "Memory-scheduler interaction (§5.3 text)", schedInteraction},
	{"hwcost", "Hardware cost analysis (§5.1)", hwcostReport},
	{"epoch", "EXTENSION: epoch-length sensitivity", epochSweep},
	{"multiline", "EXTENSION: multi-line prefetch via inequality (6)", multiline},
	{"ghb", "EXTENSION: Global History Buffer baseline comparison", ghb},
}

func main() {
	budget := flag.Uint64("budget", 2_000_000, "instructions per thread per run")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	storePath := flag.String("store", "", "results store (file or segment directory); repeat runs resume instead of re-simulating")
	quiet := flag.Bool("quiet", false, "suppress the progress meter and per-matrix summary lines (the meter alone is suppressed automatically when stderr is piped)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.name, e.about)
		}
		return
	}
	args := flag.Args()
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: figures [-budget N] [-seed N] [-workers N] <experiment>|all (see -list)")
		os.Exit(2)
	}
	pool := farm.New(farm.Options{Workers: *workers})
	defer pool.Close()
	var store *farm.Store
	if *storePath != "" {
		var err error
		if store, err = farm.OpenStore(*storePath); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer store.Close()
	}
	e := &env{budget: *budget, seed: *seed, pool: pool, store: store,
		quiet: *quiet, meterOff: *quiet || !stderrIsTerminal()}
	if args[0] == "all" {
		for _, ex := range experiments {
			banner(ex)
			ex.run(e)
			fmt.Println()
		}
		return
	}
	names := make([]string, 0, len(experiments))
	for _, ex := range experiments {
		names = append(names, ex.name)
		if ex.name == args[0] {
			banner(ex)
			ex.run(e)
			return
		}
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", args[0], names)
	os.Exit(2)
}

func banner(ex experiment) {
	fmt.Printf("=== %s — %s ===\n", ex.name, ex.about)
}

// stderrIsTerminal reports whether stderr is an interactive terminal;
// the in-place progress meter is only rendered there (its \r rewrites
// would litter a piped or redirected stream).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
