package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"asdsim"
	"asdsim/internal/farm"
	"asdsim/internal/report"
	"asdsim/internal/stats"
)

// runSpec names one simulation of a figure's matrix.
type runSpec struct {
	bench  string
	mode   asdsim.Mode
	mutate func(*asdsim.Config)
}

// runAll executes specs concurrently on the farm pool and returns the
// results in spec order (identical to running them serially); any
// failure is fatal.
func (e *env) runAll(specs []runSpec) []asdsim.Result {
	fs := make([]farm.Spec, len(specs))
	for i, s := range specs {
		cfg := asdsim.DefaultConfig(s.mode, e.budget)
		cfg.Seed = e.seed
		if s.mutate != nil {
			s.mutate(&cfg)
		}
		fs[i] = farm.Spec{Benchmark: s.bench, Mode: cfg.Mode, Config: cfg}
	}
	var onDone func(farm.Outcome)
	if !e.meterOff && len(fs) > 1 {
		done, failed := 0, 0
		onDone = func(o farm.Outcome) { // serialized by RunBatch
			done++
			if !o.OK() {
				failed++
			}
			report.Progress(os.Stderr, done, failed, len(fs), 0)
		}
	}
	cacheBefore := e.pool.TraceCacheStats()
	start := time.Now()
	outs, err := e.pool.RunBatch(context.Background(), fs, e.store, onDone)
	wall := time.Since(start)
	if onDone != nil {
		fmt.Fprint(os.Stderr, "\r\033[K") // erase the meter before tables print
	}
	if err != nil {
		log.Fatalf("figures: %v", err)
	}
	if !e.quiet && len(fs) > 1 {
		reuses := e.pool.TraceCacheStats().Hits - cacheBefore.Hits
		fmt.Fprintf(os.Stderr, "[matrix] %d cells in %.2fs (%.1f cells/s) | trace-batch: %d reuses\n",
			len(fs), wall.Seconds(), float64(len(fs))/wall.Seconds(), reuses)
	}
	res := make([]asdsim.Result, len(outs))
	for i, o := range outs {
		if !o.OK() {
			log.Fatalf("figures: %s/%v: %s", specs[i].bench, specs[i].mode, o.Err)
		}
		res[i] = *o.Result
	}
	return res
}

// mustRun runs one benchmark/mode or dies.
func (e *env) mustRun(bench string, mode asdsim.Mode, mutate func(*asdsim.Config)) asdsim.Result {
	return e.runAll([]runSpec{{bench, mode, mutate}})[0]
}

// fourModes is every gain table's per-benchmark matrix column order.
var fourModes = []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS}

// gainTable runs a suite under NP/PS/MS/PMS and prints the paper's three
// comparisons per benchmark plus the suite averages.
func (e *env) gainTable(suite asdsim.Suite, paperAvg [3]float64) {
	benches := asdsim.SuiteBenchmarks(suite)
	var specs []runSpec
	for _, b := range benches {
		for _, m := range fourModes {
			specs = append(specs, runSpec{bench: b, mode: m})
		}
	}
	res := e.runAll(specs)

	t := report.NewTable("benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS")
	var pmsNP, msNP, pmsPS []float64
	for i, b := range benches {
		np, ps, ms, pms := res[i*4], res[i*4+1], res[i*4+2], res[i*4+3]
		g1 := asdsim.Gain(np, pms)
		g2 := asdsim.Gain(np, ms)
		g3 := asdsim.Gain(ps, pms)
		pmsNP = append(pmsNP, g1)
		msNP = append(msNP, g2)
		pmsPS = append(pmsPS, g3)
		t.AddRow(b, report.Pct(g1), report.Pct(g2), report.Pct(g3))
	}
	t.AddRow("Average", report.Pct(stats.Mean(pmsNP)), report.Pct(stats.Mean(msNP)), report.Pct(stats.Mean(pmsPS)))
	t.Fprint(os.Stdout)
	fmt.Printf("paper averages: PMS-vs-NP %.1f%%, MS-vs-NP %.1f%%, PMS-vs-PS %.1f%%\n",
		paperAvg[0], paperAvg[1], paperAvg[2])
}

func fig2(e *env) {
	res := e.mustRun("GemsFDTD", asdsim.MS, func(c *asdsim.Config) { c.ASD.KeepHistory = true })
	if len(res.EpochSLHs) == 0 {
		fmt.Println("no epochs completed; raise -budget")
		return
	}
	// GemsFDTD is strongly phased; show the epoch most representative of
	// the aggregate mixture (smallest L1 distance), like the paper's
	// "arbitrary epoch".
	agg := stats.NewHistogram(16)
	for _, h := range res.EpochSLHs {
		for i := 1; i <= 16; i++ {
			if c := h.Count(i); c > 0 {
				agg.ObserveN(i, c)
			}
		}
	}
	best, bestD := res.EpochSLHs[0], 3.0
	for _, h := range res.EpochSLHs {
		if d := h.L1Distance(agg); d < bestD {
			best, bestD = h, d
		}
	}
	report.Histogram(os.Stdout, "GemsFDTD SLH, representative epoch (reads by stream length)", best, 50)
	fmt.Println("paper (Fig. 2): 21.8% of reads at length 1, 43.7% at length 2, rest spread to 16+")
}

func fig3(e *env) {
	res := e.mustRun("GemsFDTD", asdsim.MS, func(c *asdsim.Config) { c.ASD.KeepHistory = true })
	if len(res.EpochSLHs) == 0 {
		fmt.Println("no epochs completed; raise -budget")
		return
	}
	all := stats.NewHistogram(16)
	for _, h := range res.EpochSLHs {
		for i := 1; i <= 16; i++ {
			if c := h.Count(i); c > 0 {
				all.ObserveN(i, c)
			}
		}
	}
	report.Histogram(os.Stdout, "All epochs", all, 50)
	a := len(res.EpochSLHs) / 3
	b := 2 * len(res.EpochSLHs) / 3
	report.Histogram(os.Stdout, fmt.Sprintf("Epoch %d", a), res.EpochSLHs[a], 50)
	report.Histogram(os.Stdout, fmt.Sprintf("Epoch %d", b), res.EpochSLHs[b], 50)
	fmt.Println("paper (Fig. 3): per-epoch SLHs vary widely around the aggregate")
}

func fig5(e *env) { e.gainTable(asdsim.SPEC2006FP, [3]float64{32.7, 14.6, 10.2}) }
func fig6(e *env) { e.gainTable(asdsim.NAS, [3]float64{24.2, 11.7, 8.1}) }
func fig7(e *env) { e.gainTable(asdsim.Commercial, [3]float64{15.1, 9.3, 8.4}) }

// powerTable compares PMS to PS on DRAM power and energy for a suite.
func (e *env) powerTable(suite asdsim.Suite, paperPower, paperEnergy float64) {
	benches := asdsim.SuiteBenchmarks(suite)
	var specs []runSpec
	for _, b := range benches {
		specs = append(specs, runSpec{bench: b, mode: asdsim.PS}, runSpec{bench: b, mode: asdsim.PMS})
	}
	res := e.runAll(specs)

	t := report.NewTable("benchmark", "power increase", "energy reduction")
	var dp, de []float64
	for i, b := range benches {
		ps, pms := res[i*2], res[i*2+1]
		powerInc := 100 * (pms.DRAM.AvgPowerWatts/ps.DRAM.AvgPowerWatts - 1)
		energyRed := 100 * (1 - pms.DRAM.EnergyNJ/ps.DRAM.EnergyNJ)
		dp = append(dp, powerInc)
		de = append(de, energyRed)
		t.AddRow(b, report.Pct(powerInc), report.Pct(energyRed))
	}
	t.AddRow("Average", report.Pct(stats.Mean(dp)), report.Pct(stats.Mean(de)))
	t.Fprint(os.Stdout)
	fmt.Printf("paper averages: power +%.1f%%, energy -%.1f%%\n", paperPower, paperEnergy)
}

func fig8(e *env)  { e.powerTable(asdsim.SPEC2006FP, 2.7, 9.8) }
func fig9(e *env)  { e.powerTable(asdsim.NAS, 1.6, 7.9) }
func fig10(e *env) { e.powerTable(asdsim.Commercial, 2.8, 8.2) }

func fig11(e *env) {
	// Per benchmark: adaptive baseline, the five fixed policies, and the
	// two baseline engines — eight runs, farmed out together.
	const stride = 8
	benches := asdsim.FocusBenchmarks()
	var specs []runSpec
	for _, b := range benches {
		specs = append(specs, runSpec{bench: b, mode: asdsim.PMS})
		for fix := 1; fix <= 5; fix++ {
			fixed := fix
			specs = append(specs, runSpec{b, asdsim.PMS, func(c *asdsim.Config) { c.Sched.Fixed = policy(fixed) }})
		}
		specs = append(specs,
			runSpec{b, asdsim.PMS, func(c *asdsim.Config) { c.Engine = asdsim.EngineNextLine }},
			runSpec{b, asdsim.PMS, func(c *asdsim.Config) { c.Engine = asdsim.EngineP5Style }})
	}
	res := e.runAll(specs)

	cols := []string{"benchmark", "adaptive", "fix1", "fix2", "fix3", "fix4", "fix5", "next-line", "p5-style"}
	t := report.NewTable(cols...)
	sums := make([]float64, 8)
	for i, b := range benches {
		base := res[i*stride]
		row := []string{b, "1.000"}
		sums[0]++
		for v := 1; v < stride; v++ {
			norm := float64(res[i*stride+v].Cycles) / float64(base.Cycles)
			row = append(row, fmt.Sprintf("%.3f", norm))
			sums[v] += norm
		}
		t.AddRow(row...)
	}
	n := float64(len(asdsim.FocusBenchmarks()))
	avg := []string{"Average", "1.000"}
	for i := 1; i < 8; i++ {
		avg = append(avg, fmt.Sprintf("%.3f", sums[i]/n))
	}
	t.AddRow(avg...)
	t.Fprint(os.Stdout)
	fmt.Println("normalized execution time (lower is better), baseline = ASD + Adaptive Scheduling")
	fmt.Println("paper (Fig. 11): adaptive beats the fixed policies by 2.3-3.6%; ASD beats next-line by ~8.4%;")
	fmt.Println("                 the P5-style-in-MC prefetcher is worse than next-line")
}

func fig12(e *env) {
	benches := asdsim.FocusBenchmarks()
	var specs []runSpec
	for _, b := range benches {
		specs = append(specs, runSpec{bench: b, mode: asdsim.MS})
	}
	results := e.runAll(specs)

	t := report.NewTable("benchmark", "len1", "len2", "len3", "len4", "len5", "len1-5", "len2-5")
	for i, b := range benches {
		res := results[i]
		// The paper's Fig. 12 histograms are measured by the same finite
		// Stream Filter machinery, so the filter's view is the right
		// comparison (fig16 quantifies its distance from ground truth).
		h := res.ApproxLengths
		var cells []string
		cells = append(cells, b)
		var sum15, sum25 float64
		for l := 1; l <= 5; l++ {
			f := h.Frac(l)
			sum15 += f
			if l >= 2 {
				sum25 += f
			}
			cells = append(cells, report.Frac(f))
		}
		cells = append(cells, report.Frac(sum15), report.Frac(sum25))
		t.AddRow(cells...)
	}
	t.Fprint(os.Stdout)
	fmt.Println("fractions of all streams as observed by the Stream Filter, by stream count")
	fmt.Println("paper (Fig. 12): lengths 1-5 constitute 78-96% of all streams; length 2-5 mass:")
	fmt.Println("                 tpcc ~37%, trade2 ~49%, sap ~40%, notesbench ~62%")
}

func fig13(e *env) {
	benches := asdsim.FocusBenchmarks()
	var specs []runSpec
	for _, b := range benches {
		specs = append(specs, runSpec{bench: b, mode: asdsim.PMS})
	}
	results := e.runAll(specs)

	t := report.NewTable("benchmark", "useful prefetches", "coverage", "delayed regular")
	for i, b := range benches {
		res := results[i]
		t.AddRow(b, report.Frac(res.UsefulPrefetchFrac), report.Frac(res.Coverage), report.Frac(res.DelayedRegularFrac))
	}
	t.Fprint(os.Stdout)
	fmt.Println("paper (Fig. 13): useful 82-91%, coverage 19-34%, delayed 1-3%")
}

// sensitivity prints performance (cycles of the default config divided by
// cycles of the variant, so >1 means the variant is faster) for a sweep.
func (e *env) sensitivity(label string, values []int, mutate func(*asdsim.Config, int)) {
	benches := asdsim.FocusBenchmarks()
	stride := 1 + len(values)
	var specs []runSpec
	for _, b := range benches {
		specs = append(specs, runSpec{bench: b, mode: asdsim.PMS})
		for _, v := range values {
			val := v
			specs = append(specs, runSpec{b, asdsim.PMS, func(c *asdsim.Config) { mutate(c, val) }})
		}
	}
	res := e.runAll(specs)

	header := []string{"benchmark"}
	for _, v := range values {
		header = append(header, fmt.Sprintf("%s=%d", label, v))
	}
	t := report.NewTable(header...)
	for i, b := range benches {
		base := res[i*stride]
		row := []string{b}
		for j := range values {
			r := res[i*stride+1+j]
			row = append(row, fmt.Sprintf("%.3f", float64(base.Cycles)/float64(r.Cycles)))
		}
		t.AddRow(row...)
	}
	t.Fprint(os.Stdout)
	fmt.Println("performance relative to the default PMS configuration (higher is better)")
}

func fig14(e *env) {
	e.sensitivity("pb", []int{8, 16, 32, 1024}, func(c *asdsim.Config, v int) {
		c.MC.PBLines = v
	})
	fmt.Println("paper (Fig. 14): gains grow with PB size with diminishing returns beyond 16 blocks")
}

func fig15(e *env) {
	e.sensitivity("slots", []int{4, 8, 16, 64}, func(c *asdsim.Config, v int) {
		c.ASD.Filter.Slots = v
	})
	fmt.Println("paper (Fig. 15): gains grow with filter size with diminishing returns beyond 8 entries")
}

func fig16(e *env) {
	res := e.mustRun("GemsFDTD", asdsim.MS, nil)
	report.Histogram(os.Stdout, "Actual stream lengths (generator ground truth)", res.TrueLengths, 50)
	report.Histogram(os.Stdout, "Stream Filter approximation", res.ApproxLengths, 50)
	fmt.Printf("L1 distance between distributions: %.3f (0 = identical, 2 = disjoint)\n",
		res.TrueLengths.L1Distance(res.ApproxLengths))
	fmt.Println("paper (Fig. 16): the finite-filter approximation closely matches the actual SLH")
}
