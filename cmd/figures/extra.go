package main

import (
	"fmt"
	"os"

	"asdsim"
	"asdsim/internal/core"
	"asdsim/internal/hwcost"
	"asdsim/internal/mc"
	"asdsim/internal/report"
	"asdsim/internal/stats"
)

// policy converts a 1-based fixed-policy index.
func policy(i int) core.Policy { return core.Policy(i) }

// smt reproduces the §5.2 SMT paragraphs: two threads per processor, the
// Stream Filter and LHTs replicated per thread.
func smt(e *env) {
	t := report.NewTable("suite", "PMS vs NP", "MS vs NP", "PMS vs PS")
	paper := map[asdsim.Suite][2]float64{
		asdsim.SPEC2006FP: {28.5, 10.7},
		asdsim.NAS:        {20.4, 9.2},
		asdsim.Commercial: {11.1, 7.5},
	}
	smtCfg := func(c *asdsim.Config) {
		c.Threads = 2
		c.InstrBudget = e.budget / 2
	}
	for _, suite := range []asdsim.Suite{asdsim.SPEC2006FP, asdsim.NAS, asdsim.Commercial} {
		benches := asdsim.SuiteBenchmarks(suite)
		var specs []runSpec
		for _, b := range benches {
			for _, m := range fourModes {
				specs = append(specs, runSpec{b, m, smtCfg})
			}
		}
		res := e.runAll(specs)
		var pmsNP, msNP, pmsPS []float64
		for i := range benches {
			np, ps, ms, pms := res[i*4], res[i*4+1], res[i*4+2], res[i*4+3]
			pmsNP = append(pmsNP, asdsim.Gain(np, pms))
			msNP = append(msNP, asdsim.Gain(np, ms))
			pmsPS = append(pmsPS, asdsim.Gain(ps, pms))
		}
		t.AddRow(string(suite), report.Pct(stats.Mean(pmsNP)), report.Pct(stats.Mean(msNP)), report.Pct(stats.Mean(pmsPS)))
		p := paper[suite]
		t.AddRow("  (paper)", report.Pct(p[0]), "", report.Pct(p[1]))
	}
	t.Fprint(os.Stdout)
	fmt.Println("SMT-2 suite averages; paper: improvements are about the same as single-threaded")
}

// schedInteraction reproduces the §5.3 scheduler-interaction study: the
// prefetcher's gain under AHB vs memoryless vs in-order scheduling.
func schedInteraction(e *env) {
	t := report.NewTable("scheduler", "avg PMS gain over NP", "vs AHB gain")
	kinds := []mc.SchedulerKind{mc.SchedAHB, mc.SchedMemoryless, mc.SchedInOrder}
	var ahbGain float64
	for _, k := range kinds {
		kind := k
		// Two SMT threads keep the Reorder Queues occupied; with a
		// single thread of this latency-bound CPU the queues rarely
		// hold more than one command and scheduling cannot matter.
		mutate := func(c *asdsim.Config) {
			c.MC.Scheduler = kind
			c.Threads = 2
			c.InstrBudget = e.budget / 2
		}
		benches := asdsim.FocusBenchmarks()
		var specs []runSpec
		for _, b := range benches {
			specs = append(specs, runSpec{b, asdsim.NP, mutate}, runSpec{b, asdsim.PMS, mutate})
		}
		res := e.runAll(specs)
		var gains []float64
		for i := range benches {
			gains = append(gains, asdsim.Gain(res[i*2], res[i*2+1]))
		}
		g := stats.Mean(gains)
		if k == mc.SchedAHB {
			ahbGain = g
			t.AddRow(k.String(), report.Pct(g), "")
		} else {
			t.AddRow(k.String(), report.Pct(g), report.Pct(g-ahbGain))
		}
	}
	t.Fprint(os.Stdout)
	fmt.Println("paper (§5.3): in-order reduces the prefetcher's gain by ~5%, memoryless by ~1% —")
	fmt.Println("              the benefit of prefetching grows as other bottlenecks are removed")
}

// hwcostReport reproduces the §5.1 hardware-cost analysis.
func hwcostReport(*env) {
	p := hwcost.Default()
	c := hwcost.Compute(p)
	ta := hwcost.ComputeTableAlternative(p.Threads)

	t := report.NewTable("structure", "bits", "bytes")
	row := func(name string, bits int) {
		t.AddRow(name, fmt.Sprint(bits), fmt.Sprintf("%.0f", float64(bits)/8))
	}
	row("Stream Filters (all threads)", c.FilterBits)
	row("Likelihood Tables (all threads)", c.LHTBits)
	row("Prefetch Buffer (16 x 128 B)", c.PBBits)
	row("Low Priority Queue", c.LPQBits)
	row("Total", c.TotalBits)
	t.Fprint(os.Stdout)

	fmt.Printf("chip area increase:  %.3f%% (paper: ~0.098%%)\n", 100*c.ChipAreaIncrease)
	fmt.Printf("chip power increase: %.3f%% (paper: ~0.06%%)\n", 100*c.ChipPowerIncrease)
	fmt.Printf("64 KB-table alternative: %d KB storage (%.0fx ASD), ~%.1f%% chip power (paper: ~2.4%%)\n",
		ta.TableBits/8/1024, hwcost.StorageRatio(c, ta), 100*ta.ChipPowerIncrease)
}

// epochSweep is an extension: sensitivity of PMS to the SLH epoch length
// (the paper fixes it at 2000 reads).
func epochSweep(e *env) {
	e.sensitivity("epoch", []int{500, 1000, 2000, 4000, 8000}, func(c *asdsim.Config, v int) {
		c.ASD.SLH.EpochLen = v
		c.Sched.EpochReads = v
	})
	fmt.Println("extension: the paper fixes the epoch at 2000 reads; this sweep probes that choice")
}

// multiline is an extension: the paper derives inequality (6) for
// prefetching m consecutive lines but evaluates only degree 1.
func multiline(e *env) {
	e.sensitivity("degree", []int{1, 2, 4}, func(c *asdsim.Config, v int) {
		c.ASD.MaxDegree = v
	})
	fmt.Println("extension: multi-line prefetching via the paper's inequality (6), not evaluated there")
}

// ghb is an extension: an address-correlating Global History Buffer
// prefetcher in the MC (the paper's related work [18]) compared against
// ASD and next-line on the focus benchmarks.
func ghb(e *env) {
	benches := asdsim.FocusBenchmarks()
	var specs []runSpec
	for _, b := range benches {
		specs = append(specs,
			runSpec{bench: b, mode: asdsim.MS},
			runSpec{b, asdsim.MS, func(c *asdsim.Config) { c.Engine = asdsim.EngineNextLine }},
			runSpec{b, asdsim.MS, func(c *asdsim.Config) { c.Engine = asdsim.EngineGHB }})
	}
	res := e.runAll(specs)

	t := report.NewTable("benchmark", "asd", "next-line", "ghb")
	for i, b := range benches {
		base, nl, gh := res[i*3], res[i*3+1], res[i*3+2]
		t.AddRow(b, "1.000",
			fmt.Sprintf("%.3f", float64(nl.Cycles)/float64(base.Cycles)),
			fmt.Sprintf("%.3f", float64(gh.Cycles)/float64(base.Cycles)))
	}
	t.Fprint(os.Stdout)
	fmt.Println("normalized execution time under MS (lower is better), baseline = ASD")
	fmt.Println("extension: GHB re-learns each address pair, so it cannot generalise across")
	fmt.Println("a stream the way ASD's length statistics do")
}
