// Command tracegen writes a synthetic benchmark trace to disk in the
// binary ASD1 format, so traces can be inspected, archived, or replayed
// by external tooling.
//
// Usage:
//
//	tracegen -bench GemsFDTD -records 1000000 -o gems.asd1 [-seed 1] [-thread 0] [-text]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"asdsim/internal/trace"
	"asdsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "GemsFDTD", "benchmark name")
	records := flag.Int("records", 1_000_000, "number of memory references to emit")
	out := flag.String("o", "", "output file (default: <bench>.asd1)")
	seed := flag.Uint64("seed", 1, "workload seed")
	thread := flag.Int("thread", 0, "hardware thread id (offsets the address space)")
	text := flag.Bool("text", false, "emit human-readable text instead of binary")
	flag.Parse()

	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	gen, err := workload.NewGenerator(prof, *seed, *thread)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = *bench + ".asd1"
		if *text {
			path = *bench + ".txt"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	src := trace.Limit(gen, *records)
	if *text {
		w := bufio.NewWriter(f)
		defer w.Flush()
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			fmt.Fprintf(w, "%d %s %#x\n", rec.Gap, rec.Op, rec.Addr)
		}
	} else {
		w := trace.NewWriter(f)
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d records of %s to %s\n", *records, *bench, path)
}
