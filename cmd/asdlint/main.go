// Command asdlint runs asdsim's custom static-analysis suite (see
// internal/lint): determinism, hotpath-noalloc, noperturb,
// exhaustive-events and metriclint.
//
// It speaks cmd/go's vet-tool protocol, so the canonical invocation
// routes through the build system and benefits from its caching and
// per-package fact plumbing:
//
//	go build -o asdlint ./cmd/asdlint
//	go vet -vettool=$(pwd)/asdlint ./...
//
// Invoked with package patterns instead of a vet config file, asdlint
// re-executes itself through `go vet` for convenience:
//
//	asdlint ./...
//
// The protocol, implemented here without golang.org/x/tools (the
// repo is dependency-free by policy): cmd/go probes the tool identity
// with -V=full, then invokes the tool once per compilation unit with
// the path to a JSON config file (*.cfg) describing the unit — source
// files, the import map, and the export-data file of every
// dependency. The tool type-checks the unit against that export data,
// runs the analyzers, prints findings to stderr, and writes the
// package's facts (hot-path certifications) to the .vetx output file
// that cmd/go threads to dependent units.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"asdsim/internal/lint"
)

func main() {
	args := os.Args[1:]
	for i, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// Flag-schema handshake: no tool-specific flags.
			fmt.Println("[]")
			return
		case strings.HasSuffix(a, ".cfg"):
			os.Exit(unitcheck(a))
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "asdlint: unknown flag %s\n", a)
			os.Exit(2)
		default:
			os.Exit(standalone(args[i:]))
		}
	}
	fmt.Fprintln(os.Stderr, "usage: asdlint ./...  |  go vet -vettool=asdlint ./...")
	os.Exit(2)
}

// printVersion answers cmd/go's -V=full identity probe. The build ID
// hashes the executable so rebuilding the tool invalidates vet's
// result cache.
func printVersion() {
	name := "asdlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// standalone re-executes through `go vet -vettool=self` so the one
// protocol path serves both invocation styles.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: cannot locate own executable: %v\n", err)
		return 2
	}
	cmdArgs := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// serialFacts is the gob wire form of lint.Facts in .vetx files.
type serialFacts struct {
	Hotpath []string
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, &lint.Facts{})
			}
			fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := newUnitImporter(&cfg, fset)
	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(orDefault(cfg.Compiler, "gc"), build.Default.GOARCH),
		Error:    func(error) {}, // collect all, fail below
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, &lint.Facts{})
		}
		fmt.Fprintf(os.Stderr, "asdlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{Fset: fset, Files: files, Types: tpkg, Info: info}
	res := lint.Check(pkg, &lint.Config{DepFacts: imp.depFacts}, lint.All()...)

	if code := writeVetx(&cfg, res.Facts); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(res.Diags) == 0 {
		return 0
	}
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stderr, "%s: %s [asdlint/%s]\n", fset.Position(d.Pos), d.Message, d.Pass)
	}
	return 2
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// writeVetx persists the unit's facts where cmd/go expects them.
func writeVetx(cfg *vetConfig, facts *lint.Facts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	sf := serialFacts{}
	for name := range facts.Hotpath {
		sf.Hotpath = append(sf.Hotpath, name)
	}
	f, err := os.Create(cfg.VetxOutput)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(sf); err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: encoding vetx: %v\n", err)
		return 2
	}
	return 0
}

// unitImporter resolves imports through the export-data files cmd/go
// hands the unit, and dependency facts through their .vetx files.
type unitImporter struct {
	cfg   *vetConfig
	gc    types.Importer
	facts map[string]*lint.Facts
}

func newUnitImporter(cfg *vetConfig, fset *token.FileSet) *unitImporter {
	u := &unitImporter{cfg: cfg, facts: map[string]*lint.Facts{}}
	u.gc = importer.ForCompiler(fset, orDefault(cfg.Compiler, "gc"), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return u
}

// Import implements types.Importer with the unit's import map.
func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return u.gc.Import(path)
}

// depFacts lazily loads a dependency's .vetx facts.
func (u *unitImporter) depFacts(path string) *lint.Facts {
	if f, ok := u.facts[path]; ok {
		return f
	}
	u.facts[path] = nil // negative-cache failures
	file, ok := u.cfg.PackageVetx[path]
	if !ok {
		if mapped, ok2 := u.cfg.ImportMap[path]; ok2 {
			file, ok = u.cfg.PackageVetx[mapped]
		}
		if !ok {
			return nil
		}
	}
	rd, err := os.Open(file)
	if err != nil {
		return nil
	}
	defer rd.Close()
	var sf serialFacts
	if err := gob.NewDecoder(rd).Decode(&sf); err != nil {
		return nil
	}
	facts := &lint.Facts{Hotpath: map[string]bool{}}
	for _, name := range sf.Hotpath {
		facts.Hotpath[name] = true
	}
	u.facts[path] = facts
	return facts
}
