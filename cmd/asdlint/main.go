// Command asdlint runs asdsim's custom static-analysis suite (see
// internal/lint): determinism, hotpath-noalloc, noperturb,
// exhaustive-events, metriclint, lockorder, wirecheck and simtime.
//
// It speaks cmd/go's vet-tool protocol, so the canonical invocation
// routes through the build system and benefits from its caching and
// per-package fact plumbing:
//
//	go build -o asdlint ./cmd/asdlint
//	go vet -vettool=$(pwd)/asdlint ./...
//
// Invoked with package patterns instead of a vet config file, asdlint
// re-executes itself through `go vet` for convenience:
//
//	asdlint ./...
//
// The protocol, implemented here without golang.org/x/tools (the
// repo is dependency-free by policy): cmd/go probes the tool identity
// with -V=full, then invokes the tool once per compilation unit with
// the path to a JSON config file (*.cfg) describing the unit — source
// files, the import map, and the export-data file of every
// dependency. The tool type-checks the unit against that export data,
// runs the analyzers, prints findings to stderr, and writes the
// package's facts (hot-path certifications) to the .vetx output file
// that cmd/go threads to dependent units.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"asdsim/internal/lint"
	"asdsim/internal/lint/flow"
)

// Environment variables threading standalone-mode options through the
// `go vet` re-exec to the per-unit child invocations. All three feed
// the -V=full build ID, so flipping one invalidates vet's result cache
// instead of replaying stale cached output.
const (
	envJSON       = "ASDLINT_JSON"       // emit findings as JSON lines
	envStrictLoad = "ASDLINT_STRICT"     // type-check failures are fatal even when vet would shrug
	envWireOut    = "ASDLINT_WIRE_PARTS" // write per-unit wire-schema parts here; suppress findings
)

func main() {
	args := os.Args[1:]
	jsonOut := false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// Flag-schema handshake: no tool-specific flags.
			fmt.Println("[]")
			return
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-write-wire-lock" || a == "--write-wire-lock":
			out := "wire.lock"
			if i+1 < len(args) {
				out = args[i+1]
			}
			os.Exit(writeWireLock(out))
		case strings.HasSuffix(a, ".cfg"):
			os.Exit(unitcheck(a))
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "asdlint: unknown flag %s\n", a)
			os.Exit(2)
		default:
			os.Exit(standalone(args[i:], jsonOut))
		}
	}
	fmt.Fprintln(os.Stderr, "usage: asdlint [-json] ./...  |  asdlint -write-wire-lock [path]  |  go vet -vettool=asdlint ./...")
	os.Exit(2)
}

// printVersion answers cmd/go's -V=full identity probe. The build ID
// hashes the executable plus the option environment, so rebuilding the
// tool — or re-running it with different output options — invalidates
// vet's result cache rather than replaying stale cached output.
func printVersion() {
	name := "asdlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	for _, env := range []string{envJSON, envStrictLoad, envWireOut} {
		fmt.Fprintf(h, "%s=%s\n", env, os.Getenv(env))
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// standalone re-executes through `go vet -vettool=self` so the one
// protocol path serves both invocation styles. Standalone runs are
// strict: a unit that fails to load is a diagnostic and exit 2, never
// a silent success.
func standalone(patterns []string, jsonOut bool) int {
	env := append(os.Environ(), envStrictLoad+"=1")
	if jsonOut {
		env = append(env, envJSON+"=1")
	}
	// cmd/go folds every vettool failure into its own exit 1, so the
	// load-failure exit 2 the units signal is recovered here from their
	// diagnostic prefix.
	var errTee bytes.Buffer
	code := runSelfVetTee(patterns, env, &errTee)
	if code != 0 && bytes.Contains(errTee.Bytes(), []byte("asdlint: load ")) {
		return 2
	}
	return code
}

// runSelfVet invokes `go vet -vettool=self patterns...` with env.
func runSelfVet(patterns []string, env []string) int {
	return runSelfVetTee(patterns, env, nil)
}

// runSelfVetTee is runSelfVet with the child's stderr additionally
// mirrored into tee when non-nil.
func runSelfVetTee(patterns []string, env []string, tee *bytes.Buffer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: cannot locate own executable: %v\n", err)
		return 2
	}
	cmdArgs := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if tee != nil {
		cmd.Stderr = io.MultiWriter(os.Stderr, tee)
	}
	cmd.Env = env
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	return 0
}

// writeWireLock regenerates the wire.lock schema: it vets the wire-root
// packages with findings suppressed, collecting each unit's reachable
// wire surface into part files, then merges, sorts, and writes the
// final lock. The child units see the real export data cmd/go hands
// them, so the schema matches exactly what wirecheck will later diff.
func writeWireLock(out string) int {
	parts, err := os.MkdirTemp("", "asdlint-wire-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	defer os.RemoveAll(parts)

	var patterns []string
	for path := range lint.WireRoots {
		patterns = append(patterns, path)
	}
	sort.Strings(patterns)
	env := append(os.Environ(), envWireOut+"="+parts, envStrictLoad+"=1")
	if code := runSelfVet(patterns, env); code != 0 {
		return code
	}

	entries, err := os.ReadDir(parts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	merged := &flow.Schema{}
	seen := map[string]bool{}
	for _, e := range entries {
		f, err := os.Open(filepath.Join(parts, e.Name()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
			return 2
		}
		part, perr := flow.ParseSchema(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(os.Stderr, "asdlint: parsing wire part %s: %v\n", e.Name(), perr)
			return 2
		}
		for _, ss := range part.Structs {
			key := ss.Path + "." + ss.Name
			if seen[key] {
				continue
			}
			seen[key] = true
			merged.Structs = append(merged.Structs, ss)
		}
	}
	if len(merged.Structs) == 0 {
		fmt.Fprintln(os.Stderr, "asdlint: no wire structs found; refusing to write an empty wire.lock")
		return 2
	}
	sort.Slice(merged.Structs, func(i, j int) bool {
		return merged.Structs[i].Path+"."+merged.Structs[i].Name < merged.Structs[j].Path+"."+merged.Structs[j].Name
	})
	if err := os.WriteFile(out, merged.Format(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	fmt.Printf("asdlint: wrote %d wire structs to %s\n", len(merged.Structs), out)
	return 0
}

// vetConfig mirrors the JSON cmd/go writes for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// serialFacts is the gob wire form of lint.Facts in .vetx files.
type serialFacts struct {
	Hotpath []string
	Lock    map[string]*lint.LockFact
}

// loadFailed reports a unit that did not parse or type-check. Under the
// vet protocol proper, SucceedOnTypecheckFailure means cmd/go wants the
// tool silent (the compiler owns the error); in standalone strict mode
// that silence would surface as `asdlint ./...` exiting 0 on a broken
// tree, so the unit instead gets a diagnostic and exit 2.
func loadFailed(cfg *vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure && os.Getenv(envStrictLoad) == "" {
		return writeVetx(cfg, &lint.Facts{})
	}
	fmt.Fprintf(os.Stderr, "asdlint: load %s: %v\n", cfg.ImportPath, err)
	if cfg.SucceedOnTypecheckFailure {
		writeVetx(cfg, &lint.Facts{})
		return 2
	}
	return 1
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return loadFailed(&cfg, err)
		}
		files = append(files, f)
	}

	imp := newUnitImporter(&cfg, fset)
	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(orDefault(cfg.Compiler, "gc"), build.Default.GOARCH),
		Error:    func(error) {}, // collect all, fail below
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return loadFailed(&cfg, fmt.Errorf("typecheck: %w", err))
	}

	pkg := &lint.Package{Fset: fset, Files: files, Types: tpkg, Info: info}
	res := lint.Check(pkg, &lint.Config{DepFacts: imp.depFacts}, lint.All()...)

	if code := writeVetx(&cfg, res.Facts); code != 0 {
		return code
	}
	if dir := os.Getenv(envWireOut); dir != "" {
		// Wire-lock regeneration: write this unit's wire surface and
		// suppress findings so a drifted tree can still regenerate.
		return writeWirePart(&cfg, tpkg, dir)
	}
	if cfg.VetxOnly || (len(res.Diags) == 0 && len(res.Suppressed) == 0) {
		return 0
	}
	if os.Getenv(envJSON) != "" {
		printJSONFindings(fset, res)
	} else {
		for _, d := range res.Diags {
			fmt.Fprintf(os.Stderr, "%s: %s [asdlint/%s]\n", fset.Position(d.Pos), d.Message, d.Pass)
		}
	}
	if len(res.Diags) == 0 {
		return 0
	}
	return 2
}

// jsonFinding is one finding in `asdlint -json` output: a JSON object
// per line on stderr, machine-readable next to cmd/go's own chatter.
type jsonFinding struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Pass         string `json:"pass"`
	Message      string `json:"message"`
	SuppressedBy string `json:"suppressedBy,omitempty"`
}

// printJSONFindings emits live findings and //asd:allow-suppressed ones
// (with the silencing directive's position) as JSON lines.
func printJSONFindings(fset *token.FileSet, res *lint.Result) {
	enc := json.NewEncoder(os.Stderr)
	emit := func(d lint.Diagnostic, by string) {
		posn := fset.Position(d.Pos)
		_ = enc.Encode(jsonFinding{
			File: posn.Filename, Line: posn.Line, Col: posn.Column,
			Pass: d.Pass, Message: d.Message, SuppressedBy: by,
		})
	}
	for _, d := range res.Diags {
		emit(d, "")
	}
	for _, s := range res.Suppressed {
		emit(s.Diag, fset.Position(s.SuppressedBy).String())
	}
}

// writeWirePart records the unit's wire surface (when it is a wire-root
// package) for the parent -write-wire-lock invocation to merge.
func writeWirePart(cfg *vetConfig, tpkg *types.Package, dir string) int {
	path := lint.CanonicalPkgPath(cfg.ImportPath)
	rootNames, ok := lint.WireRoots[path]
	if !ok || strings.Contains(cfg.ImportPath, " [") {
		return 0 // not a root, or a test variant of one
	}
	var roots []*types.Named
	for _, name := range rootNames {
		obj, ok := tpkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			fmt.Fprintf(os.Stderr, "asdlint: wire root %s.%s not found\n", path, name)
			return 2
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			fmt.Fprintf(os.Stderr, "asdlint: wire root %s.%s is not a named type\n", path, name)
			return 2
		}
		roots = append(roots, named)
	}
	schema := flow.WireSurface(roots)
	name := strings.ReplaceAll(path, "/", "_") + ".part"
	if err := os.WriteFile(filepath.Join(dir, name), schema.Format(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	return 0
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// writeVetx persists the unit's facts where cmd/go expects them.
func writeVetx(cfg *vetConfig, facts *lint.Facts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	sf := serialFacts{Lock: facts.Lock}
	for name := range facts.Hotpath {
		sf.Hotpath = append(sf.Hotpath, name)
	}
	f, err := os.Create(cfg.VetxOutput)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(sf); err != nil {
		fmt.Fprintf(os.Stderr, "asdlint: encoding vetx: %v\n", err)
		return 2
	}
	return 0
}

// unitImporter resolves imports through the export-data files cmd/go
// hands the unit, and dependency facts through their .vetx files.
type unitImporter struct {
	cfg   *vetConfig
	gc    types.Importer
	facts map[string]*lint.Facts
}

func newUnitImporter(cfg *vetConfig, fset *token.FileSet) *unitImporter {
	u := &unitImporter{cfg: cfg, facts: map[string]*lint.Facts{}}
	u.gc = importer.ForCompiler(fset, orDefault(cfg.Compiler, "gc"), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return u
}

// Import implements types.Importer with the unit's import map.
func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return u.gc.Import(path)
}

// depFacts lazily loads a dependency's .vetx facts.
func (u *unitImporter) depFacts(path string) *lint.Facts {
	if f, ok := u.facts[path]; ok {
		return f
	}
	u.facts[path] = nil // negative-cache failures
	file, ok := u.cfg.PackageVetx[path]
	if !ok {
		if mapped, ok2 := u.cfg.ImportMap[path]; ok2 {
			file, ok = u.cfg.PackageVetx[mapped]
		}
		if !ok {
			return nil
		}
	}
	rd, err := os.Open(file)
	if err != nil {
		return nil
	}
	defer rd.Close()
	var sf serialFacts
	if err := gob.NewDecoder(rd).Decode(&sf); err != nil {
		return nil
	}
	facts := &lint.Facts{Hotpath: map[string]bool{}, Lock: sf.Lock}
	for _, name := range sf.Hotpath {
		facts.Hotpath[name] = true
	}
	u.facts[path] = facts
	return facts
}
