// Command asdsim runs one benchmark under one or more prefetching
// configurations and prints detailed statistics.
//
// Usage:
//
//	asdsim [-bench name] [-budget N] [-threads N] [-modes NP,PS,MS,PMS] [-engine asd|next-line|p5-style|ghb] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asdsim/internal/sim"
	"asdsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "GemsFDTD", "benchmark name (see -list)")
	budget := flag.Uint64("budget", 1_000_000, "instructions per thread")
	threads := flag.Int("threads", 1, "SMT threads (1 or 2)")
	modes := flag.String("modes", "NP,PS,MS,PMS", "comma-separated configurations")
	engine := flag.String("engine", "asd", "memory-side engine: asd, next-line, p5-style, ghb")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "print extended statistics")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			p, _ := workload.ByName(n)
			fmt.Printf("%-12s %s\n", n, p.Suite)
		}
		return
	}

	var baseline uint64
	for _, ms := range strings.Split(*modes, ",") {
		mode, err := sim.ParseMode(ms)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := sim.Default(mode, *budget)
		cfg.Threads = *threads
		cfg.Engine, err = sim.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, err := sim.Run(*bench, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if baseline == 0 {
			baseline = res.Cycles
		}
		gain := 100 * (float64(baseline)/float64(res.Cycles) - 1)
		fmt.Printf("%-4s cycles=%-10d IPC=%.3f gain-vs-first=%+.1f%%\n", mode, res.Cycles, res.IPC, gain)
		if *verbose {
			fmt.Printf("     L1=%.3f L2=%.3f L3=%.3f | MC reads=%d writes=%d dramR=%d dramW=%d\n",
				res.L1HitRate, res.L2HitRate, res.L3HitRate,
				res.MC.RegularReads, res.MC.RegularWrites, res.MC.DRAMReads, res.MC.DRAMWrites)
			fmt.Printf("     pf: toLPQ=%d drops=%d toDRAM=%d | pbEntry=%d pbLate=%d merge=%d\n",
				res.MC.PrefetchesToLPQ, res.MC.LPQDrops, res.MC.PrefetchesToDRAM,
				res.MC.PBHitsEntry, res.MC.PBHitsLate, res.MC.PFMergeHits)
			fmt.Printf("     coverage=%.3f useful=%.3f delayed=%.4f psIssued=%d stall=%d\n",
				res.Coverage, res.UsefulPrefetchFrac, res.DelayedRegularFrac, res.PSIssued, res.StallCycles)
			fmt.Printf("     dram: acts=%d rowHit=%d rowMiss=%d rowConf=%d power=%.2fW energy=%.1fmJ\n",
				res.DRAM.Activations, res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts,
				res.DRAM.AvgPowerWatts, res.DRAM.EnergyNJ/1e6)
			fmt.Printf("     policyEpochs=%v\n", res.PolicyEpochs)
			if res.ApproxLengths != nil {
				fmt.Printf("     trueSLH:   %v\n", res.TrueLengths)
				fmt.Printf("     approxSLH: %v\n", res.ApproxLengths)
			}
		}
	}
}
