// Command asdsim runs one benchmark under one or more prefetching
// configurations and prints detailed statistics.
//
// Usage:
//
//	asdsim [-bench name] [-budget N] [-threads N] [-modes NP,PS,MS,PMS] [-engine asd|next-line|p5-style|ghb] [-v]
//	       [-sample] [-sample-period N] [-sample-warmup N] [-sample-detail N] [-sample-funcwarm N] [-sample-confidence C]
//	       [-obs] [-obs-interval N] [-obs-csv file] [-obs-jsonl file] [-trace file]
//	       [-flightrec prefix] [-explain last|addr[@cycle]] [-cpuprofile file] [-memprofile file]
//
// -sample switches to SMARTS-style sampled simulation: short detailed
// windows measure CPI, the gaps between them run under a functional
// model, and the output is a CPI confidence interval plus extrapolated
// IPC/cycles instead of exact statistics (-v is ignored).
//
// Observability: -obs attaches the probe bus and prints per-mode
// time-series and per-depth prefetch summaries; -obs-csv / -obs-jsonl
// write the windowed samples as CSV or JSON Lines; -trace writes a
// Chrome trace-event JSON file (open it in chrome://tracing or
// https://ui.perfetto.dev) with one process group per simulated mode.
// -flightrec arms the anomaly flight recorder: when a detector trips
// (CAQ saturation, late-prefetch spike, bank-conflict storm, prefetch
// waste), a triage bundle is written to <prefix>-<mode>-bN.json with a
// human-readable report beside it as .txt.
// -explain records per-prefetch provenance and, after each mode's run,
// prints the causal lineage tree (epoch roll → stream → decision →
// nomination → issue → install → outcome) for the chosen prefetch:
// "last" picks the most recent PB hit, a byte address pins one line,
// and an optional @cycle picks the generation active at that cycle.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/obs/flightrec"
	"asdsim/internal/obs/prov"
	"asdsim/internal/sim"
	"asdsim/internal/workload"
)

func main() { os.Exit(run()) }

// run holds the real main body so deferred profile/file teardown runs
// before the process exits (os.Exit skips defers).
func run() int {
	bench := flag.String("bench", "GemsFDTD", "benchmark name (see -list)")
	budget := flag.Uint64("budget", 1_000_000, "instructions per thread")
	threads := flag.Int("threads", 1, "SMT threads (1 or 2)")
	modes := flag.String("modes", "NP,PS,MS,PMS", "comma-separated configurations")
	engine := flag.String("engine", "asd", "memory-side engine: asd, next-line, p5-style, ghb")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "print extended statistics")
	obsOn := flag.Bool("obs", false, "attach the probe bus and print time-series/per-depth summaries")
	obsInterval := flag.Uint64("obs-interval", obs.DefaultSampleInterval, "sampler window width in CPU cycles")
	obsCSV := flag.String("obs-csv", "", "write windowed samples as CSV to `file` (implies -obs)")
	obsJSONL := flag.String("obs-jsonl", "", "write windowed samples as JSON Lines to `file` (implies -obs)")
	sample := flag.Bool("sample", false, "SMARTS-style sampled simulation: CPI estimate with confidence interval instead of an exact run")
	samplePeriod := flag.Uint64("sample-period", 0, "sampling period in instructions (0 = default)")
	sampleWarmup := flag.Uint64("sample-warmup", 0, "detailed warmup instructions per window (0 = default)")
	sampleDetail := flag.Uint64("sample-detail", 0, "measured detailed instructions per window (0 = default)")
	sampleFuncWarm := flag.Uint64("sample-funcwarm", 0, "bound functional warming to the last N instructions before each window (0 = warm the whole gap)")
	sampleConf := flag.Float64("sample-confidence", 0, "confidence level for the CPI interval: 0.90, 0.95 or 0.99 (0 = default)")
	flightPrefix := flag.String("flightrec", "", "arm the anomaly flight recorder; triage bundles go to `prefix`-<mode>-bN.json/.txt")
	explainArg := flag.String("explain", "", "record prefetch provenance and print one lineage tree per mode: 'last' or a byte address with optional @cycle (e.g. 0x1a2b00@50000)")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON to `file` (implies -obs)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write heap profile to `file`")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			p, _ := workload.ByName(n)
			fmt.Printf("%-12s %s\n", n, p.Suite)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	observing := *obsOn || *obsCSV != "" || *obsJSONL != "" || *tracePath != ""
	var tracer *obs.TraceBuilder
	if *tracePath != "" {
		tracer = obs.NewTraceBuilder()
	}
	var csvFile *os.File
	if *obsCSV != "" {
		f, err := os.Create(*obsCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		csvFile = f
		if err := obs.CSVHeader(csvFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	var jsonlFile *os.File
	if *obsJSONL != "" {
		f, err := os.Create(*obsJSONL)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		jsonlFile = f
	}

	var explLine mem.Line
	var explCycle uint64
	var explLast bool
	if *explainArg != "" {
		if *sample {
			fmt.Fprintln(os.Stderr, "-explain is incompatible with -sample (sampled runs keep no detailed provenance)")
			return 2
		}
		var err error
		explLine, explCycle, explLast, err = parseExplainTarget(*explainArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	exit := 0
	var baseline uint64
	for _, ms := range strings.Split(*modes, ",") {
		mode, err := sim.ParseMode(ms)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg := sim.Default(mode, *budget)
		cfg.Threads = *threads
		cfg.Engine, err = sim.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}

		var sampler *obs.Sampler
		var depths *obs.DepthStats
		var recorder *flightrec.Recorder
		if observing || *flightPrefix != "" {
			bus := obs.NewBus()
			if observing {
				sampler = obs.NewSampler(*obsInterval)
				depths = &obs.DepthStats{}
				bus.Attach(sampler)
				bus.Attach(depths)
			}
			if tracer != nil {
				tracer.StartProcess(fmt.Sprintf("%s %s", *bench, mode))
				bus.Attach(tracer)
			}
			if *flightPrefix != "" {
				recorder = flightrec.New(flightrec.Options{
					Label:     fmt.Sprintf("%s/%s", *bench, mode),
					Detectors: flightrec.DefaultDetectors(cfg.MC.CAQCap),
				})
				bus.Attach(recorder)
			}
			cfg.Obs = bus
		}
		var provRec *prov.Recorder
		if *explainArg != "" {
			provRec = prov.New(prov.Options{TraceID: fmt.Sprintf("%s/%s", *bench, mode)})
			cfg.Prov = provRec
		}

		var res sim.Result
		if *sample {
			sres, err := sim.Sampled(*bench, cfg, sim.SampleConfig{
				Period: *samplePeriod, Warmup: *sampleWarmup, Detail: *sampleDetail,
				FuncWarmup: *sampleFuncWarm, Confidence: *sampleConf,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if baseline == 0 {
				baseline = sres.EstCycles
			}
			gain := 100 * (float64(baseline)/float64(sres.EstCycles) - 1)
			fmt.Printf("%-4s sampled CPI=%.4f ±%.4f (%d%% CI %.4f-%.4f) windows=%d estIPC=%.3f estCycles=%d gain-vs-first=%+.1f%% wall=%.3fs\n",
				mode, sres.CPIMean, sres.CPIHalfWidth, int(sres.Confidence*100+0.5),
				sres.CILo, sres.CIHi, sres.Windows, sres.EstIPC, sres.EstCycles, gain, sres.WallSeconds)
		} else {
			var err error
			res, err = sim.Run(*bench, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if baseline == 0 {
				baseline = res.Cycles
			}
			gain := 100 * (float64(baseline)/float64(res.Cycles) - 1)
			fmt.Printf("%-4s cycles=%-10d IPC=%.3f gain-vs-first=%+.1f%% wall=%.3fs (%.1fM cyc/s)\n",
				mode, res.Cycles, res.IPC, gain, res.WallSeconds, res.CyclesPerSec/1e6)
		}
		if *verbose && !*sample {
			fmt.Printf("     L1=%.3f L2=%.3f L3=%.3f | MC reads=%d writes=%d dramR=%d dramW=%d\n",
				res.L1HitRate, res.L2HitRate, res.L3HitRate,
				res.MC.RegularReads, res.MC.RegularWrites, res.MC.DRAMReads, res.MC.DRAMWrites)
			fmt.Printf("     pf: toLPQ=%d drops=%d toDRAM=%d | pbEntry=%d pbLate=%d merge=%d\n",
				res.MC.PrefetchesToLPQ, res.MC.LPQDrops, res.MC.PrefetchesToDRAM,
				res.MC.PBHitsEntry, res.MC.PBHitsLate, res.MC.PFMergeHits)
			fmt.Printf("     coverage=%.3f useful=%.3f delayed=%.4f psIssued=%d stall=%d\n",
				res.Coverage, res.UsefulPrefetchFrac, res.DelayedRegularFrac, res.PSIssued, res.StallCycles)
			fmt.Printf("     dram: acts=%d rowHit=%d rowMiss=%d rowConf=%d power=%.2fW energy=%.1fmJ\n",
				res.DRAM.Activations, res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts,
				res.DRAM.AvgPowerWatts, res.DRAM.EnergyNJ/1e6)
			fmt.Printf("     policyEpochs=%v\n", res.PolicyEpochs)
			if res.ApproxLengths != nil {
				fmt.Printf("     trueSLH:   %v\n", res.TrueLengths)
				fmt.Printf("     approxSLH: %v\n", res.ApproxLengths)
			}
		}
		if provRec != nil {
			if err := explainRun(provRec, explLine, explCycle, explLast); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
		if sampler != nil {
			printObsSummary(sampler, depths)
			if csvFile != nil {
				if err := sampler.WriteCSV(csvFile, fmt.Sprintf("%s/%s", *bench, mode)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					exit = 1
				}
			}
			if jsonlFile != nil {
				if err := sampler.WriteJSONL(jsonlFile, fmt.Sprintf("%s/%s", *bench, mode)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					exit = 1
				}
			}
		}
		if recorder != nil {
			recorder.Finish()
			if err := dumpBundles(recorder, *flightPrefix, mode.String()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
	}

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		err = tracer.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing or ui.perfetto.dev)\n",
			tracer.Len(), *tracePath)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return exit
}

// dumpBundles writes every captured triage bundle as JSON plus a
// human-readable report, and prints one line per trigger (or a healthy
// note when none fired).
func dumpBundles(rec *flightrec.Recorder, prefix, mode string) error {
	if len(rec.Triggers()) == 0 {
		fmt.Printf("     flightrec: no anomalies (%d events recorded)\n", rec.EventsSeen())
		return nil
	}
	for _, tr := range rec.Triggers() {
		fmt.Printf("     flightrec: %s at window %d (cycle %d): %s\n",
			tr.Detector, tr.Window, tr.Cycle, tr.Detail)
	}
	for i, b := range rec.Bundles() {
		base := fmt.Sprintf("%s-%s-b%d", prefix, mode, i+1)
		jf, err := os.Create(base + ".json")
		if err != nil {
			return err
		}
		err = b.WriteJSON(jf)
		if cerr := jf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		rf, err := os.Create(base + ".txt")
		if err != nil {
			return err
		}
		err = b.WriteReport(rf)
		if cerr := rf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("     flightrec: bundle %s.json (+.txt report)\n", base)
	}
	return nil
}

// parseExplainTarget parses the -explain value: "last", or a byte
// address (hex or decimal) with an optional @cycle suffix. The address
// is truncated to its covering cache line.
func parseExplainTarget(s string) (line mem.Line, cycle uint64, last bool, err error) {
	if s == "last" {
		return 0, 0, true, nil
	}
	addrStr, cycleStr, hasCycle := strings.Cut(s, "@")
	a, err := strconv.ParseUint(addrStr, 0, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("bad -explain address %q: %w", addrStr, err)
	}
	if hasCycle {
		if cycle, err = strconv.ParseUint(cycleStr, 0, 64); err != nil {
			return 0, 0, false, fmt.Errorf("bad -explain cycle %q: %w", cycleStr, err)
		}
	}
	return mem.LineOf(mem.Addr(a)), cycle, false, nil
}

// explainRun resolves the -explain target against the mode's recorded
// provenance stream and prints the lineage tree, indented to match the
// other per-mode detail blocks.
func explainRun(rec *prov.Recorder, line mem.Line, cycle uint64, last bool) error {
	st := rec.Stream()
	if last {
		var ok bool
		if line, cycle, ok = prov.LastExplainable(st); !ok {
			return fmt.Errorf("provenance: no explainable prefetch recorded (%d records)", len(st.Records))
		}
	}
	lin, err := prov.Explain(st, line, cycle)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	// Buffer the tree so multi-write lines land in one Write each.
	var b strings.Builder
	lin.WriteTree(&b)
	prefixWriter{}.Write([]byte(b.String()))
	return nil
}

// printObsSummary condenses the sampler's windows into a small table:
// CAQ occupancy over time (coarse sparkline over up to 60 buckets) and
// the per-depth prefetch breakdown.
func printObsSummary(s *obs.Sampler, d *obs.DepthStats) {
	samples := s.Samples()
	if len(samples) == 0 {
		return
	}
	var caqMax int64
	for _, sm := range samples {
		if sm.CAQMax > caqMax {
			caqMax = sm.CAQMax
		}
	}
	fmt.Printf("     obs: %d windows x %d cycles, caq max=%d, spark=%s\n",
		len(samples), s.Interval, caqMax, sparkline(samples, 60))
	if s.Dropped > 0 {
		fmt.Printf("     obs: %d events predate the retained ring\n", s.Dropped)
	}
	if d.MaxDepthSeen() > 0 {
		d.Fprint(prefixWriter{})
	}
}

// sparkline renders mean CAQ occupancy across the run in w buckets.
func sparkline(samples []obs.Sample, w int) string {
	if len(samples) < w {
		w = len(samples)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var peak float64
	means := make([]float64, w)
	for i := 0; i < w; i++ {
		lo, hi := i*len(samples)/w, (i+1)*len(samples)/w
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, sm := range samples[lo:hi] {
			sum += sm.CAQMean
		}
		means[i] = sum / float64(hi-lo)
		if means[i] > peak {
			peak = means[i]
		}
	}
	out := make([]rune, w)
	for i, m := range means {
		idx := 0
		if peak > 0 {
			idx = int(m / peak * float64(len(levels)-1))
		}
		out[i] = levels[idx]
	}
	return string(out)
}

// prefixWriter indents DepthStats.Fprint output to match the -v blocks.
type prefixWriter struct{}

func (prefixWriter) Write(p []byte) (int, error) {
	lines := strings.Split(strings.TrimRight(string(p), "\n"), "\n")
	for _, l := range lines {
		fmt.Printf("     %s\n", l)
	}
	return len(p), nil
}
