// Package asdsim is a from-scratch reproduction of "Memory Prefetching
// Using Adaptive Stream Detection" (Hur and Lin, MICRO 2006): a
// trace-driven simulator of a Power5+-class memory system whose memory
// controller hosts the paper's ASD prefetcher — a Stream Filter feeding
// Stream Length Histograms that probabilistically modulate stream-
// prefetch aggressiveness — together with Adaptive Scheduling of prefetch
// commands against demand traffic.
//
// The package exposes the high-level API a downstream user needs: named
// benchmark workloads (synthetic substitutes for the paper's SPEC2006fp,
// NAS, and IBM commercial traces), the four system configurations the
// paper compares (NP, PS, MS, PMS), and single-call simulation runs
// returning detailed results. The building blocks live under internal/:
// workload generators, the cache hierarchy, the DDR2 DRAM timing+power
// model, the memory controller, and the ASD engine itself.
//
// Quickstart:
//
//	res, err := asdsim.Run("GemsFDTD", asdsim.DefaultConfig(asdsim.PMS, 2_000_000))
//	if err != nil { ... }
//	fmt.Println(res.IPC, res.Coverage)
package asdsim

import (
	"context"
	"fmt"

	"asdsim/internal/sim"
	"asdsim/internal/workload"
)

// Mode selects the prefetching configuration (paper §5.2).
type Mode = sim.Mode

// The paper's four configurations.
const (
	// NP is the stripped-down Power5+ with no prefetching.
	NP = sim.NP
	// PS is processor-side prefetching only (the stock Power5+).
	PS = sim.PS
	// MS is memory-side (ASD) prefetching only.
	MS = sim.MS
	// PMS combines processor- and memory-side prefetching.
	PMS = sim.PMS
)

// EngineKind selects the memory-side prefetch engine.
type EngineKind = sim.EngineKind

// Memory-side engines: ASD plus the two Fig. 11 baselines.
const (
	EngineASD      = sim.EngineASD
	EngineNextLine = sim.EngineNextLine
	EngineP5Style  = sim.EngineP5Style
	EngineGHB      = sim.EngineGHB
)

// Suite identifies one of the paper's three benchmark suites.
type Suite = workload.Suite

// The paper's suites (§4.1).
const (
	SPEC2006FP = workload.SPEC2006FP
	NAS        = workload.NAS
	Commercial = workload.Commercial
)

// Config is a full system configuration; construct with DefaultConfig
// and override fields as needed.
type Config = sim.Config

// Result is the outcome of one simulation run.
type Result = sim.Result

// DefaultConfig returns the paper's evaluated system in the given mode
// with a per-thread instruction budget.
func DefaultConfig(mode Mode, budget uint64) Config { return sim.Default(mode, budget) }

// Run simulates the named benchmark under cfg.
func Run(bench string, cfg Config) (Result, error) { return sim.Run(bench, cfg) }

// RunContext is Run with cancellation: the simulation polls ctx and
// returns ctx.Err() (wrapped) if it is cancelled or its deadline
// passes mid-run.
func RunContext(ctx context.Context, bench string, cfg Config) (Result, error) {
	return sim.RunContext(ctx, bench, cfg)
}

// Batch runs many matrix cells over shared materialized workload
// traces: each benchmark's trace is generated once per (seed, thread,
// budget) and every (mode, engine, depth) cell replays it. Exact-mode
// outcomes are bit-identical to Run. Safe for concurrent use.
type Batch = sim.Batch

// BatchCell is one (benchmark, config) cell for Batch.RunAll.
type BatchCell = sim.BatchCell

// NewBatch returns a Batch with a default-bounded trace cache.
func NewBatch() *Batch { return sim.NewBatch() }

// SampleConfig parameterizes SMARTS-style sampled simulation.
type SampleConfig = sim.SampleConfig

// SampledResult is a sampled run's CPI estimate with its confidence
// interval and extrapolated cycle/IPC figures.
type SampledResult = sim.SampledResult

// DefaultSampleConfig returns the default sampling parameters.
func DefaultSampleConfig() SampleConfig { return sim.DefaultSampleConfig() }

// Sampled runs bench under cfg with SMARTS-style systematic sampling:
// short detailed windows measure CPI, the gaps run under a functional
// model that keeps caches and prefetcher state warm, and the estimate
// carries a Student-t confidence interval.
func Sampled(bench string, cfg Config, sc SampleConfig) (SampledResult, error) {
	return sim.Sampled(bench, cfg, sc)
}

// SampledContext is Sampled with cancellation.
func SampledContext(ctx context.Context, bench string, cfg Config, sc SampleConfig) (SampledResult, error) {
	return sim.SampledContext(ctx, bench, cfg, sc)
}

// Benchmarks returns all registered benchmark names, sorted.
func Benchmarks() []string { return workload.Names() }

// SuiteBenchmarks returns the benchmarks of a suite in the paper's
// figure order.
func SuiteBenchmarks(s Suite) []string { return workload.SuiteNames(s) }

// FocusBenchmarks returns the eight benchmarks the paper uses for its
// detailed-results figures (Figs. 11-16).
func FocusBenchmarks() []string { return workload.FocusBenchmarks() }

// Gain returns the percentage performance improvement of res over base:
// 100 * (base.Cycles/res.Cycles - 1). Both runs must have executed the
// same instruction budget for the comparison to be meaningful.
func Gain(base, res Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(res.Cycles) - 1)
}

// Comparison holds one benchmark's results under the four configurations.
type Comparison struct {
	Benchmark string
	ByMode    map[Mode]Result
}

// GainOver returns the percentage gain of mode a over mode b.
func (c *Comparison) GainOver(a, b Mode) float64 {
	return Gain(c.ByMode[b], c.ByMode[a])
}

// Compare runs bench under each requested mode with a shared base
// configuration (cfg's Mode field is overridden per run).
func Compare(bench string, cfg Config, modes ...Mode) (*Comparison, error) {
	if len(modes) == 0 {
		modes = []Mode{NP, PS, MS, PMS}
	}
	out := &Comparison{Benchmark: bench, ByMode: make(map[Mode]Result, len(modes))}
	for _, m := range modes {
		c := cfg
		c.Mode = m
		res, err := Run(bench, c)
		if err != nil {
			return nil, fmt.Errorf("asdsim: %s/%v: %w", bench, m, err)
		}
		out.ByMode[m] = res
	}
	return out, nil
}

// CompareSuite runs every benchmark of a suite under the given modes.
func CompareSuite(s Suite, cfg Config, modes ...Mode) ([]*Comparison, error) {
	names := SuiteBenchmarks(s)
	if names == nil {
		return nil, fmt.Errorf("asdsim: unknown suite %q", s)
	}
	out := make([]*Comparison, 0, len(names))
	for _, n := range names {
		c, err := Compare(n, cfg, modes...)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
