// Quickstart: run one benchmark under the paper's four configurations
// and print the headline comparison — the minimal use of the public API.
package main

import (
	"fmt"
	"log"

	"asdsim"
)

func main() {
	const bench = "GemsFDTD" // the paper's running example
	cfg := asdsim.DefaultConfig(asdsim.NP, 1_000_000)

	cmp, err := asdsim.Compare(bench, cfg) // runs NP, PS, MS, PMS
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, %d instructions per run\n\n", bench, cfg.InstrBudget)
	for _, m := range []asdsim.Mode{asdsim.NP, asdsim.PS, asdsim.MS, asdsim.PMS} {
		r := cmp.ByMode[m]
		fmt.Printf("%-4s cycles=%-10d IPC=%.3f gain-over-NP=%+.1f%%\n",
			m, r.Cycles, r.IPC, cmp.GainOver(m, asdsim.NP))
	}

	pms := cmp.ByMode[asdsim.PMS]
	fmt.Printf("\nmemory-side prefetcher under PMS:\n")
	fmt.Printf("  coverage:          %.1f%% of demand reads served from the Prefetch Buffer\n", 100*pms.Coverage)
	fmt.Printf("  useful prefetches: %.1f%%\n", 100*pms.UsefulPrefetchFrac)
	fmt.Printf("  delayed commands:  %.2f%% of regular commands delayed by prefetches\n", 100*pms.DelayedRegularFrac)
}
