// Commercial-workload study: the paper's central claim is that Adaptive
// Stream Detection helps even workloads with low spatial locality,
// because they still contain many very short streams. This example runs
// the five commercial benchmarks, shows their stream-length mixtures as
// seen by the Stream Filter, and the gains memory-side prefetching
// extracts from streams as short as two lines.
package main

import (
	"fmt"
	"log"
	"os"

	"asdsim"
	"asdsim/internal/report"
)

func main() {
	cfg := asdsim.DefaultConfig(asdsim.NP, 1_000_000)

	t := report.NewTable("benchmark", "len-1 streams", "len-2..5 streams", "MS gain", "coverage")
	for _, bench := range asdsim.SuiteBenchmarks(asdsim.Commercial) {
		cmp, err := asdsim.Compare(bench, cfg, asdsim.NP, asdsim.MS)
		if err != nil {
			log.Fatal(err)
		}
		ms := cmp.ByMode[asdsim.MS]
		h := ms.ApproxLengths
		var short float64
		for l := 2; l <= 5; l++ {
			short += h.Frac(l)
		}
		t.AddRow(bench,
			report.Frac(h.Frac(1)),
			report.Frac(short),
			report.Pct(cmp.GainOver(asdsim.MS, asdsim.NP)),
			report.Frac(ms.Coverage))
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nEven with most streams at length 1, the 2-5 mass is large enough for the")
	fmt.Println("SLH-guided prefetcher to cover a meaningful fraction of reads (paper §5,")
	fmt.Println("Figs. 7 and 12).")
}
