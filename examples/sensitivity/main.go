// Sensitivity study: sweep the two hardware budgets the paper examines —
// Prefetch Buffer size (Fig. 14) and Stream Filter size (Fig. 15) — on
// one benchmark, demonstrating per-field configuration of the system.
package main

import (
	"fmt"
	"log"

	"asdsim"
)

func main() {
	const bench = "milc"
	const budget = 800_000

	run := func(mutate func(*asdsim.Config)) asdsim.Result {
		cfg := asdsim.DefaultConfig(asdsim.PMS, budget)
		mutate(&cfg)
		res, err := asdsim.Run(bench, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(func(*asdsim.Config) {})
	fmt.Printf("%s PMS baseline: %d cycles (PB=16 lines, filter=8 slots)\n\n", bench, base.Cycles)

	fmt.Println("Prefetch Buffer sweep (Fig. 14):")
	for _, lines := range []int{8, 16, 32, 1024} {
		r := run(func(c *asdsim.Config) { c.MC.PBLines = lines })
		fmt.Printf("  %4d blocks: relative performance %.3f, coverage %.1f%%\n",
			lines, float64(base.Cycles)/float64(r.Cycles), 100*r.Coverage)
	}

	fmt.Println("\nStream Filter sweep (Fig. 15):")
	for _, slots := range []int{4, 8, 16, 64} {
		r := run(func(c *asdsim.Config) { c.ASD.Filter.Slots = slots })
		fmt.Printf("  %4d slots:  relative performance %.3f, useful prefetches %.1f%%\n",
			slots, float64(base.Cycles)/float64(r.Cycles), 100*r.UsefulPrefetchFrac)
	}

	fmt.Println("\nThe paper reports diminishing returns beyond 16 blocks and 8 slots.")
}
