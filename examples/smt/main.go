// SMT study: run two hardware threads per processor with per-thread
// Stream Filters and Likelihood Tables, as §5.2 of the paper requires
// ("we find it critical to replicate the locality identification
// hardware for each thread").
package main

import (
	"fmt"
	"log"

	"asdsim"
)

func main() {
	const bench = "milc"

	for _, threads := range []int{1, 2} {
		cfg := asdsim.DefaultConfig(asdsim.NP, 600_000)
		cfg.Threads = threads
		cmp, err := asdsim.Compare(bench, cfg, asdsim.NP, asdsim.PS, asdsim.PMS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s with %d thread(s):\n", bench, threads)
		fmt.Printf("  PMS vs NP: %+.1f%%\n", cmp.GainOver(asdsim.PMS, asdsim.NP))
		fmt.Printf("  PMS vs PS: %+.1f%%\n", cmp.GainOver(asdsim.PMS, asdsim.PS))
		agg := cmp.ByMode[asdsim.PMS]
		fmt.Printf("  aggregate IPC under PMS: %.3f (%d instructions, %d cycles)\n\n",
			agg.IPC, agg.Instructions, agg.Cycles)
	}
	fmt.Println("Paper §5.2: SMT improvements are about the same as single-threaded.")
}
