// Adaptive Scheduling study: compare the five fixed prefetch-priority
// policies of §3.5 against the adaptive selector that moves between them
// using memory-system conflict feedback (the paper's Fig. 11 ablation).
package main

import (
	"fmt"
	"log"

	"asdsim"
	"asdsim/internal/core"
)

func main() {
	const bench = "GemsFDTD"
	const budget = 800_000

	run := func(fixed core.Policy) asdsim.Result {
		cfg := asdsim.DefaultConfig(asdsim.PMS, budget)
		cfg.Sched.Fixed = fixed
		res, err := asdsim.Run(bench, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	adaptive := run(0)
	fmt.Printf("%s under PMS, normalized execution time (lower is better):\n\n", bench)
	fmt.Printf("  %-34s 1.000  (policy residency per epoch: %v)\n",
		"adaptive scheduling", adaptive.PolicyEpochs[1:])
	for p := core.PolicyIdleSystem; p <= core.PolicyTimestamp; p++ {
		r := run(p)
		fmt.Printf("  fixed policy %d (%-17s) %.3f\n",
			int(p), p, float64(r.Cycles)/float64(adaptive.Cycles))
	}
	fmt.Println("\nPaper §5.3: adaptive scheduling improves on the fixed policies by 2.3-3.6%;")
	fmt.Println("a fixed conservative policy unnecessarily blocks prefetches behind demand")
	fmt.Println("commands that could not issue anyway.")
}
