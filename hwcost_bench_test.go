package asdsim_test

import (
	"testing"

	"asdsim/internal/hwcost"
)

// runHWCost exercises the §5.1 analytic hardware-cost model and checks
// the paper's headline numbers hold.
func runHWCost(b *testing.B) {
	b.Helper()
	c := hwcost.Compute(hwcost.Default())
	if c.ChipAreaIncrease < 0.0008 || c.ChipAreaIncrease > 0.0011 {
		b.Fatalf("chip area increase %v outside the paper's ~0.098%%", c.ChipAreaIncrease)
	}
	ta := hwcost.ComputeTableAlternative(4)
	if hwcost.StorageRatio(c, ta) < 10 {
		b.Fatalf("table alternative should dwarf ASD storage")
	}
}
