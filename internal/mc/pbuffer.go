package mc

import (
	"fmt"

	"asdsim/internal/mem"
)

// pbEntry is one Prefetch Buffer line.
type pbEntry struct {
	valid bool
	line  mem.Line
	used  uint64 // LRU stamp
	depth int    // prefetch depth that staged the line (1 = adjacent)
}

// PBuffer is the Prefetch Buffer of §3.3: a small set-associative,
// LRU-replaced store for memory-side-prefetched lines. Entries are
// invalidated on write requests to their address, and on a Read hit (the
// data moves into the processor caches, so keeping it is pointless).
type PBuffer struct {
	sets    int
	setMask uint64 // sets-1 when sets is a power of two, else 0
	assoc   int
	ways    []pbEntry
	tick    uint64

	// Inserts counts lines installed; Useful counts Read hits; Wasted
	// counts lines invalidated or evicted without ever being read.
	// WastedEvict and WastedWrite break Wasted down by cause (LRU
	// eviction vs write invalidation).
	Inserts     uint64
	Useful      uint64
	Wasted      uint64
	WastedEvict uint64
	WastedWrite uint64
}

// NewPBuffer builds a buffer of `lines` capacity with the given
// associativity.
func NewPBuffer(lines, assoc int) *PBuffer {
	if lines <= 0 || assoc <= 0 || lines%assoc != 0 {
		panic(fmt.Sprintf("mc: bad prefetch buffer geometry %d/%d", lines, assoc))
	}
	b := &PBuffer{sets: lines / assoc, assoc: assoc, ways: make([]pbEntry, lines)}
	if b.sets&(b.sets-1) == 0 {
		b.setMask = uint64(b.sets - 1)
	}
	return b
}

// Capacity returns the number of lines the buffer holds.
func (b *PBuffer) Capacity() int { return len(b.ways) }

func (b *PBuffer) setOf(l mem.Line) int {
	if b.setMask != 0 {
		return int(uint64(l) & b.setMask)
	}
	return int(uint64(l) % uint64(b.sets))
}

func (b *PBuffer) find(l mem.Line) int {
	base := b.setOf(l) * b.assoc
	for w := 0; w < b.assoc; w++ {
		// Line is compared before valid: a stale line match on an
		// invalid entry is rare, so the common path is one compare.
		if b.ways[base+w].line == l && b.ways[base+w].valid {
			return base + w
		}
	}
	return -1
}

// Contains reports presence without state change.
func (b *PBuffer) Contains(l mem.Line) bool { return b.find(l) >= 0 }

// TakeForRead removes line on a Read hit, counting it useful. It
// reports whether the line was present and, if so, the prefetch depth
// that staged it.
func (b *PBuffer) TakeForRead(l mem.Line) (hit bool, depth int) {
	i := b.find(l)
	if i < 0 {
		return false, 0
	}
	b.ways[i].valid = false
	b.Useful++
	return true, b.ways[i].depth
}

// InvalidateForWrite drops line on a Write to its address; an unused
// entry counts as wasted. It reports whether an entry was dropped and
// its staging depth.
func (b *PBuffer) InvalidateForWrite(l mem.Line) (dropped bool, depth int) {
	if i := b.find(l); i >= 0 {
		b.ways[i].valid = false
		b.Wasted++
		b.WastedWrite++
		return true, b.ways[i].depth
	}
	return false, 0
}

// Insert installs a prefetched line staged at the given depth,
// evicting the set's LRU entry if needed (an unused eviction counts as
// wasted; the victim's line and depth are reported for attribution).
func (b *PBuffer) Insert(l mem.Line, depth int) (evicted bool, evictedLine mem.Line, evictedDepth int) {
	b.tick++
	if i := b.find(l); i >= 0 {
		b.ways[i].used = b.tick
		return false, 0, 0
	}
	base := b.setOf(l) * b.assoc
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if !b.ways[i].valid {
			victim = i
			oldest = 0
			break
		}
		if b.ways[i].used < oldest {
			oldest = b.ways[i].used
			victim = i
		}
	}
	if b.ways[victim].valid {
		b.Wasted++
		b.WastedEvict++
		evicted, evictedLine, evictedDepth = true, b.ways[victim].line, b.ways[victim].depth
	}
	b.ways[victim] = pbEntry{valid: true, line: l, used: b.tick, depth: depth}
	b.Inserts++
	return evicted, evictedLine, evictedDepth
}

// Live returns the number of valid entries.
func (b *PBuffer) Live() int {
	n := 0
	for i := range b.ways {
		if b.ways[i].valid {
			n++
		}
	}
	return n
}
