package mc

import (
	"testing"

	"asdsim/internal/core"
	"asdsim/internal/dram"
	"asdsim/internal/mem"
)

// TestSteadyStateStepDoesNotAllocate pins the allocation-free kernel: once
// the freelists, ring buffers, and scratch slices have warmed up, driving
// the full MC pipeline (enqueue, reorder queues, arbitration, DRAM issue,
// prefetch engine, completions) must not touch the heap.
func TestSteadyStateStepDoesNotAllocate(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	sched := core.NewAdaptiveScheduler(core.DefaultSchedulerConfig())
	c := New(DefaultConfig(), d, asdEngines(1), sched)
	c.SetReadDone(func(mem.Command, uint64) {})

	var now, id uint64
	var line mem.Line
	step := func() {
		now += mem.CPUCyclesPerMCCycle
		// A sustainable demand stream (one sequential read every fourth
		// MC cycle, plus a write every 64th) keeps every pipeline stage
		// active: stream detection, LPQ prefetches, PB traffic, DRAM.
		if now%16 == 0 {
			id++
			line++
			c.Enqueue(mem.Command{Kind: mem.Read, Line: line, Arrival: now, ID: id})
		}
		if now%256 == 0 {
			id++
			c.Enqueue(mem.Command{Kind: mem.Write, Line: line - 8, Arrival: now, ID: id})
		}
		c.Step(now)
	}
	for i := 0; i < 20000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg != 0 {
		t.Errorf("steady-state MC step allocates %.3f allocs/op, want 0", avg)
	}
}
