package mc

import (
	"testing"

	"asdsim/internal/mem"
)

func TestNewPBufferPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero":   func() { NewPBuffer(0, 1) },
		"assoc":  func() { NewPBuffer(16, 0) },
		"ragged": func() { NewPBuffer(10, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPBufferInsertTake(t *testing.T) {
	b := NewPBuffer(16, 4)
	b.Insert(5, 1)
	if !b.Contains(5) {
		t.Fatal("inserted line absent")
	}
	if hit, _ := b.TakeForRead(5); !hit {
		t.Fatal("TakeForRead missed")
	}
	if b.Contains(5) {
		t.Error("read hit must invalidate the entry")
	}
	if b.Useful != 1 || b.Wasted != 0 || b.Inserts != 1 {
		t.Errorf("counters: useful=%d wasted=%d inserts=%d", b.Useful, b.Wasted, b.Inserts)
	}
	if hit, _ := b.TakeForRead(5); hit {
		t.Error("second take should miss")
	}
}

func TestPBufferWriteInvalidation(t *testing.T) {
	b := NewPBuffer(16, 4)
	b.Insert(7, 1)
	b.InvalidateForWrite(7)
	if b.Contains(7) {
		t.Error("write must invalidate")
	}
	if b.Wasted != 1 {
		t.Errorf("Wasted = %d, want 1", b.Wasted)
	}
	b.InvalidateForWrite(99) // absent: no-op
	if b.Wasted != 1 {
		t.Errorf("absent invalidate counted: %d", b.Wasted)
	}
}

func TestPBufferLRUEviction(t *testing.T) {
	b := NewPBuffer(4, 4) // one set
	for l := 0; l < 4; l++ {
		b.Insert(mustLine(l), 1)
	}
	b.Insert(100, 1) // evicts line 0 (LRU)
	if b.Contains(0) {
		t.Error("LRU line should have been evicted")
	}
	if b.Wasted != 1 {
		t.Errorf("unused eviction not counted: %d", b.Wasted)
	}
	if b.Live() != 4 {
		t.Errorf("Live = %d", b.Live())
	}
}

func TestPBufferReinsertRefreshes(t *testing.T) {
	b := NewPBuffer(4, 4)
	for l := 0; l < 4; l++ {
		b.Insert(mustLine(l), 1)
	}
	b.Insert(0, 1)   // refresh 0 to MRU
	b.Insert(100, 1) // evicts 1 now
	if !b.Contains(0) || b.Contains(1) {
		t.Error("refresh did not move line 0 to MRU")
	}
	if b.Inserts != 5 {
		t.Errorf("Inserts = %d (refresh should not count)", b.Inserts)
	}
}

func TestPBufferCapacity(t *testing.T) {
	b := NewPBuffer(16, 4)
	if b.Capacity() != 16 {
		t.Errorf("Capacity = %d", b.Capacity())
	}
}

func mustLine(i int) mem.Line { return mem.Line(i) }
