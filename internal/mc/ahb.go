package mc

import "asdsim/internal/dram"

// arbiter is the Reorder-Queue-to-CAQ selection strategy. The in-order
// and memoryless arbiters are stateless; the AHB arbiter keeps command
// history and adapts to the observed read/write mix, following the
// Adaptive History-Based scheduler of Hur and Lin (MICRO 2004) that the
// paper's evaluation uses (§5.3).
type arbiter interface {
	// pick chooses the index within queue of the command to promote to
	// the CAQ, or -1 when the queue is empty.
	pick(queue []*cmdState, d *dram.DRAM, dramNow uint64, writeQLen, writeQCap int) int
	// issued notifies the arbiter of the command it selected.
	issued(cmd *cmdState, d *dram.DRAM)
}

// newArbiter builds the arbiter for kind.
func newArbiter(kind SchedulerKind) arbiter {
	switch kind {
	case SchedInOrder:
		return inOrderArbiter{}
	case SchedMemoryless:
		return memorylessArbiter{}
	case SchedAHB:
		return newAHB()
	default:
		panic("mc: unknown scheduler kind")
	}
}

// inOrderArbiter issues strictly by arrival order, even when the head's
// bank is busy.
type inOrderArbiter struct{}

//asd:hotpath
func (inOrderArbiter) pick(queue []*cmdState, _ *dram.DRAM, _ uint64, _, _ int) int {
	if len(queue) == 0 {
		return -1
	}
	return oldestIndex(queue)
}

//asd:hotpath
func (inOrderArbiter) issued(*cmdState, *dram.DRAM) {}

// memorylessArbiter prefers the oldest command whose bank is ready,
// falling back to the oldest overall; it keeps no history.
type memorylessArbiter struct{}

//asd:hotpath
func (memorylessArbiter) pick(queue []*cmdState, d *dram.DRAM, dramNow uint64, _, _ int) int {
	if len(queue) == 0 {
		return -1
	}
	best := -1
	for i, c := range queue {
		if !d.CanIssueD(c.dec, dramNow) {
			continue
		}
		if best == -1 || c.cmd.ID < queue[best].cmd.ID {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return oldestIndex(queue)
}

//asd:hotpath
func (memorylessArbiter) issued(*cmdState, *dram.DRAM) {}

// ahbHistoryLen is the command-history depth the AHB arbiter scores
// against (the original design uses short histories of 2-3 commands).
const ahbHistoryLen = 3

// ahbArbiter approximates Adaptive History-Based scheduling: it scores
// candidates on bank readiness and row-buffer hits (expected latency),
// bank/rank spread against the recent history (command-pattern
// optimization), and a read/write mix preference selected adaptively
// from the observed workload mix (the "adaptive" part: the original
// design switches between history-based arbiters optimized for 1R:1W
// and 2R:1W mixes).
type ahbArbiter struct {
	history      [ahbHistoryLen]int // bank indices of recent commands (-1 = none)
	histLen      int
	lastWasWrite bool

	reads  uint64
	writes uint64
}

func newAHB() *ahbArbiter {
	a := &ahbArbiter{}
	for i := range a.history {
		a.history[i] = -1
	}
	return a
}

//asd:hotpath
func (a *ahbArbiter) pick(queue []*cmdState, d *dram.DRAM, dramNow uint64, writeQLen, writeQCap int) int {
	if len(queue) == 0 {
		return -1
	}
	// Adaptive mix selection: prefer the direction the workload is
	// currently skewed toward, unless the write queue is about to
	// back-pressure the chip, in which case writes must drain.
	preferWrites := writeQLen*4 >= writeQCap*3
	if !preferWrites && a.reads+a.writes > 16 {
		preferWrites = a.writes > a.reads
	}

	best, bestScore := -1, -1
	for i, c := range queue {
		score := 0
		if d.CanIssueD(c.dec, dramNow) {
			score += 16
		}
		if d.WouldRowHitD(c.dec) {
			score += 8
		}
		// Command-pattern optimization: avoid banks used by the recent
		// history so consecutive commands overlap in different banks.
		bank := c.dec.Bank
		clash := false
		for _, h := range a.history[:a.histLen] {
			if h == bank {
				clash = true
				break
			}
		}
		if !clash {
			score += 4
		}
		// Grouping same-direction commands avoids bus turnarounds.
		if c.isWrite == a.lastWasWrite {
			score += 1
		}
		if c.isWrite == preferWrites {
			score += 2
		}
		if score > bestScore || (score == bestScore && c.cmd.ID < queue[best].cmd.ID) {
			best, bestScore = i, score
		}
	}
	return best
}

//asd:hotpath
func (a *ahbArbiter) issued(cmd *cmdState, _ *dram.DRAM) {
	copy(a.history[1:], a.history[:ahbHistoryLen-1])
	a.history[0] = cmd.dec.Bank
	if a.histLen < ahbHistoryLen {
		a.histLen++
	}
	a.lastWasWrite = cmd.isWrite
	if cmd.isWrite {
		a.writes++
	} else {
		a.reads++
	}
	// Exponential forgetting keeps the mix estimate current.
	if a.reads+a.writes >= 4096 {
		a.reads /= 2
		a.writes /= 2
	}
}
