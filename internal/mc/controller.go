// Package mc models the Power5+ memory controller of the paper's Figs. 1
// and 4: Read/Write Reorder Queues feeding a Centralized Arbiter Queue
// (CAQ) through a scheduler, extended with the paper's memory-side
// prefetcher — per-thread Stream Filter + Prefetch Generator, a Low
// Priority Queue (LPQ), a Prefetch Buffer, and a Final Scheduler that
// arbitrates prefetches against regular commands under Adaptive
// Scheduling.
package mc

import (
	"fmt"

	"asdsim/internal/core"
	"asdsim/internal/dram"
	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/prefetch"
)

// Config parameterises the controller.
type Config struct {
	// ReadQueueCap and WriteQueueCap size the Reorder Queues.
	ReadQueueCap  int
	WriteQueueCap int
	// CAQCap is the Centralized Arbiter Queue depth (3 on the Power5+).
	CAQCap int
	// LPQCap is the Low Priority Queue depth; the paper gives it "the
	// same number of entries — 3 — as the CAQ".
	LPQCap int
	// PBLines and PBAssoc size the Prefetch Buffer (16 lines, 2 KB).
	PBLines int
	PBAssoc int
	// PBHitLatency is the CPU-cycle latency of a Read satisfied by the
	// Prefetch Buffer (an on-chip MC round trip instead of DRAM).
	PBHitLatency uint64
	// Overhead is the fixed CPU-cycle cost added to every DRAM round
	// trip (controller traversal, bus transfer back to the chip).
	Overhead uint64
	// Scheduler selects the Reorder-Queue scheduling algorithm.
	Scheduler SchedulerKind
}

// DefaultConfig matches the paper's evaluated configuration.
func DefaultConfig() Config {
	return Config{
		ReadQueueCap:  8,
		WriteQueueCap: 8,
		CAQCap:        3,
		LPQCap:        3,
		PBLines:       16,
		PBAssoc:       4,
		PBHitLatency:  24,
		Overhead:      150,
		Scheduler:     SchedAHB,
	}
}

// cmdState wraps a queued regular command.
type cmdState struct {
	cmd             mem.Command
	isWrite         bool
	done            uint64 // completion cycle once issued to DRAM
	delayedCounted  bool
	conflictCounted bool
}

// pfState is one memory-side prefetch in the LPQ or in flight.
type pfState struct {
	line    mem.Line
	arrival uint64
	doneAt  uint64
	depth   int // 1 = line adjacent to the trigger
	// waiters are demand Reads that arrived while this prefetch was in
	// flight and were merged onto it.
	waiters []mem.Command
}

// ReadDoneFunc delivers a completed demand Read back to the CPU model.
type ReadDoneFunc func(cmd mem.Command, doneAtCPU uint64)

// Stats holds the controller's observable counters (Fig. 13 feeds from
// these).
type Stats struct {
	RegularReads     uint64 // demand Reads entering the MC
	RegularWrites    uint64
	PBHitsEntry      uint64 // Reads satisfied at the first PB check
	PBHitsLate       uint64 // Reads satisfied at the CAQ-head (second) check
	PFMergeHits      uint64 // Reads merged onto an in-flight prefetch
	PrefetchesToLPQ  uint64
	LPQDrops         uint64 // prefetch nominations dropped (full/duplicate)
	PrefetchesToDRAM uint64
	DelayedRegular   uint64 // regular commands delayed by a prefetch-held bank
	DRAMReads        uint64
	DRAMWrites       uint64
	// ReadLatencySum accumulates (completion - arrival) over demand
	// Reads served from DRAM, for mean-latency reporting.
	ReadLatencySum uint64
}

// Controller is the memory controller model.
type Controller struct {
	cfg      Config
	dram     *dram.DRAM
	engines  []prefetch.MSEngine // per-thread; nil slice disables MS prefetching
	adaptive *core.AdaptiveScheduler

	inbox    []*cmdState
	readQ    []*cmdState
	writeQ   []*cmdState
	caq      []*cmdState
	lpq      []*pfState
	inflight []*cmdState // demand reads issued to DRAM
	pfFlight []*pfState

	pb         *PBuffer
	arb        arbiter
	onReadDone ReadDoneFunc
	bus        *obs.Bus // nil when no observer is attached

	stats Stats
}

// New returns a controller over d. engines supplies one memory-side
// prefetch engine per hardware thread (nil or empty disables memory-side
// prefetching). adaptive must be non-nil when engines are present.
func New(cfg Config, d *dram.DRAM, engines []prefetch.MSEngine, adaptive *core.AdaptiveScheduler) *Controller {
	if cfg.ReadQueueCap <= 0 || cfg.WriteQueueCap <= 0 || cfg.CAQCap <= 0 {
		panic(fmt.Sprintf("mc: invalid queue capacities %+v", cfg))
	}
	if len(engines) > 0 {
		if cfg.LPQCap <= 0 || cfg.PBLines <= 0 {
			panic("mc: prefetching enabled but LPQ/PB not sized")
		}
		if adaptive == nil {
			panic("mc: prefetching enabled without an adaptive scheduler")
		}
	}
	c := &Controller{cfg: cfg, dram: d, engines: engines, adaptive: adaptive}
	c.arb = newArbiter(cfg.Scheduler)
	if len(engines) > 0 {
		c.pb = NewPBuffer(cfg.PBLines, cfg.PBAssoc)
	}
	return c
}

// SetReadDone installs the completion callback for demand Reads.
func (c *Controller) SetReadDone(fn ReadDoneFunc) { c.onReadDone = fn }

// SetObserver attaches a probe bus (nil detaches). Every probe point
// is guarded by a nil check, so a detached controller pays one branch
// per probe.
func (c *Controller) SetObserver(b *obs.Bus) { c.bus = b }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// PB exposes the prefetch buffer (nil when MS prefetching is off).
func (c *Controller) PB() *PBuffer { return c.pb }

// Adaptive exposes the adaptive scheduler (may be nil).
func (c *Controller) Adaptive() *core.AdaptiveScheduler { return c.adaptive }

// Enqueue presents a command to the controller; it takes effect at the
// next Step. Commands are processed in Enqueue order.
func (c *Controller) Enqueue(cmd mem.Command) {
	isWrite := cmd.Kind == mem.Write
	c.inbox = append(c.inbox, &cmdState{cmd: cmd, isWrite: isWrite})
	if c.bus != nil {
		var w int64
		if isWrite {
			w = 1
		}
		c.bus.Emit(obs.Event{Kind: obs.KindMCEnqueue, Cycle: cmd.Arrival, ID: cmd.ID,
			Line: cmd.Line, Thread: int32(cmd.Thread), V1: w})
	}
}

// Busy reports whether the controller holds any work.
func (c *Controller) Busy() bool {
	return len(c.inbox)+len(c.readQ)+len(c.writeQ)+len(c.caq)+len(c.lpq)+len(c.inflight)+len(c.pfFlight) > 0
}

// NextWake returns the earliest CPU cycle at which stepping the
// controller could make progress, given the current state; ^uint64(0)
// when idle. Queued work always wants the next MC cycle.
func (c *Controller) NextWake(cpuNow uint64) uint64 {
	if len(c.inbox)+len(c.readQ)+len(c.writeQ)+len(c.caq)+len(c.lpq) > 0 {
		return cpuNow + mem.CPUCyclesPerMCCycle
	}
	wake := ^uint64(0)
	for _, f := range c.inflight {
		if f.done < wake {
			wake = f.done
		}
	}
	for _, p := range c.pfFlight {
		if p.doneAt < wake {
			wake = p.doneAt
		}
	}
	return wake
}

// FlushLPQ discards queued-but-unissued prefetches (counted as drops).
// The run loop calls this when the processors have finished: with no
// more demand traffic arriving, a conservative policy such as
// caq-almost-empty (which waits for a full LPQ) could otherwise hold
// stragglers forever.
func (c *Controller) FlushLPQ() {
	c.stats.LPQDrops += uint64(len(c.lpq))
	if c.bus != nil {
		for _, p := range c.lpq {
			c.bus.Emit(obs.Event{Kind: obs.KindMCPFDrop, Cycle: p.arrival,
				Line: p.line, V1: int64(p.depth)})
		}
	}
	c.lpq = c.lpq[:0]
}

// Step advances the controller by one MC cycle ending at CPU cycle
// cpuNow. Callers step at mem.CPUCyclesPerMCCycle granularity.
func (c *Controller) Step(cpuNow uint64) {
	dramNow := cpuNow / mem.CPUCyclesPerDRAMCycle
	c.dram.ObserveCycle(dramNow)
	c.completePrefetches(cpuNow)
	c.completeDemands(cpuNow)
	c.drainInbox(cpuNow)
	c.countConflicts(cpuNow, dramNow)
	c.scheduleToCAQ(cpuNow, dramNow)
	c.finalIssue(cpuNow, dramNow)
	for _, e := range c.engines {
		e.Tick(cpuNow)
	}
	if c.bus != nil {
		c.bus.Emit(obs.Event{Kind: obs.KindMCQueues, Cycle: cpuNow,
			V1: int64(len(c.readQ) + len(c.writeQ)), V2: int64(len(c.caq)), V3: int64(len(c.lpq))})
	}
}

// drainInbox admits commands into the Reorder Queues, performing the
// first Prefetch Buffer check and prefetch-merge check for Reads and the
// PB invalidation rule for Writes.
func (c *Controller) drainInbox(cpuNow uint64) {
	for len(c.inbox) > 0 {
		s := c.inbox[0]
		if s.isWrite {
			if len(c.writeQ) >= c.cfg.WriteQueueCap {
				return
			}
			c.stats.RegularWrites++
			if c.pb != nil {
				if dropped, depth := c.pb.InvalidateForWrite(s.cmd.Line); dropped && c.bus != nil {
					c.bus.Emit(obs.Event{Kind: obs.KindMCPFWasted, Cycle: cpuNow,
						Line: s.cmd.Line, V1: int64(depth), V2: 1})
				}
			}
			c.dropPendingPrefetch(s.cmd.Line, cpuNow)
			c.writeQ = append(c.writeQ, s)
			c.inbox = c.inbox[1:]
			continue
		}

		// Demand Read path. The Stream Filter sees every Read entering
		// the controller (Fig. 4), including ones the PB will satisfy.
		if len(c.readQ) >= c.cfg.ReadQueueCap {
			return
		}
		c.inbox = c.inbox[1:]
		c.stats.RegularReads++
		if c.adaptive != nil {
			c.adaptive.OnRead(cpuNow)
		}
		c.observeRead(s.cmd, cpuNow)

		if c.pb != nil {
			if hit, depth := c.pb.TakeForRead(s.cmd.Line); hit {
				// First PB check: satisfied without DRAM; the Read is
				// squashed.
				c.stats.PBHitsEntry++
				if c.bus != nil {
					c.bus.Emit(obs.Event{Kind: obs.KindMCPBHit, Cycle: cpuNow, ID: s.cmd.ID,
						Line: s.cmd.Line, Thread: int32(s.cmd.Thread), V2: int64(depth)})
				}
				c.deliver(s.cmd, cpuNow+c.cfg.PBHitLatency, false)
				continue
			}
		}
		if pf := c.findInFlightPrefetch(s.cmd.Line); pf != nil {
			// The line is already on its way from DRAM: merge.
			c.stats.PFMergeHits++
			pf.waiters = append(pf.waiters, s.cmd)
			continue
		}
		// A matching prefetch still waiting in the LPQ is squashed: the
		// demand Read will fetch the line itself, so issuing the
		// prefetch too would only waste a DRAM access.
		c.dropPendingPrefetch(s.cmd.Line, cpuNow)
		c.readQ = append(c.readQ, s)
	}
}

// observeRead feeds the thread's ASD engine and files its nominations
// into the LPQ.
func (c *Controller) observeRead(cmd mem.Command, cpuNow uint64) {
	if len(c.engines) == 0 {
		return
	}
	eng := c.engines[cmd.Thread%len(c.engines)]
	for i, line := range eng.ObserveRead(cmd.Line, cpuNow) {
		c.nominatePrefetch(line, i+1, cpuNow)
	}
}

// nominatePrefetch files one prefetch candidate (depth lines beyond
// its trigger) into the LPQ unless it is redundant or the queue is
// full.
func (c *Controller) nominatePrefetch(line mem.Line, depth int, cpuNow uint64) {
	if c.pb.Contains(line) || c.findInFlightPrefetch(line) != nil || c.lpqContains(line) || c.demandPending(line) ||
		len(c.lpq) >= c.cfg.LPQCap {
		c.stats.LPQDrops++
		if c.bus != nil {
			c.bus.Emit(obs.Event{Kind: obs.KindMCPFDrop, Cycle: cpuNow, Line: line, V1: int64(depth)})
		}
		return
	}
	c.lpq = append(c.lpq, &pfState{line: line, arrival: cpuNow, depth: depth})
	c.stats.PrefetchesToLPQ++
	if c.bus != nil {
		c.bus.Emit(obs.Event{Kind: obs.KindMCPFNominate, Cycle: cpuNow, Line: line, V1: int64(depth)})
	}
}

func (c *Controller) lpqContains(line mem.Line) bool {
	for _, p := range c.lpq {
		if p.line == line {
			return true
		}
	}
	return false
}

// demandPending reports whether a demand command for line is already
// queued or in flight (prefetching it would waste bandwidth).
func (c *Controller) demandPending(line mem.Line) bool {
	for _, s := range c.readQ {
		if s.cmd.Line == line {
			return true
		}
	}
	for _, s := range c.caq {
		if s.cmd.Line == line {
			return true
		}
	}
	for _, s := range c.inflight {
		if s.cmd.Line == line {
			return true
		}
	}
	return false
}

func (c *Controller) findInFlightPrefetch(line mem.Line) *pfState {
	for _, p := range c.pfFlight {
		if p.line == line {
			return p
		}
	}
	return nil
}

// dropPendingPrefetch removes an un-issued LPQ entry for line (a Write
// makes prefetching it pointless and the data would be stale).
func (c *Controller) dropPendingPrefetch(line mem.Line, cpuNow uint64) {
	for i, p := range c.lpq {
		if p.line == line {
			c.lpq = append(c.lpq[:i], c.lpq[i+1:]...)
			c.stats.LPQDrops++
			if c.bus != nil {
				c.bus.Emit(obs.Event{Kind: obs.KindMCPFDrop, Cycle: cpuNow, Line: line, V1: int64(p.depth)})
			}
			return
		}
	}
}

// countConflicts implements the Adaptive Scheduling feedback (§3.5): each
// regular command in the Reorder Queues that cannot proceed because its
// bank is held by a previously issued prefetch counts once.
func (c *Controller) countConflicts(cpuNow, dramNow uint64) {
	if c.adaptive == nil {
		return
	}
	for _, q := range [][]*cmdState{c.readQ, c.writeQ} {
		for _, s := range q {
			if s.conflictCounted {
				continue
			}
			if busy, byPF := c.dram.BankBusy(s.cmd.Line, dramNow); busy && byPF {
				s.conflictCounted = true
				c.adaptive.OnConflict()
				if c.bus != nil {
					c.bus.Emit(obs.Event{Kind: obs.KindMCBankConflict, Cycle: cpuNow,
						ID: s.cmd.ID, Line: s.cmd.Line, Thread: int32(s.cmd.Thread)})
				}
				if !s.delayedCounted {
					s.delayedCounted = true
					c.stats.DelayedRegular++
				}
			}
		}
	}
}

// scheduleToCAQ moves at most one command per MC cycle from the Reorder
// Queues to the CAQ, per the configured scheduling algorithm.
func (c *Controller) scheduleToCAQ(cpuNow, dramNow uint64) {
	if len(c.caq) >= c.cfg.CAQCap {
		return
	}
	merged := make([]*cmdState, 0, len(c.readQ)+len(c.writeQ))
	merged = append(merged, c.readQ...)
	merged = append(merged, c.writeQ...)
	idx := c.arb.pick(merged, c.dram, dramNow, len(c.writeQ), c.cfg.WriteQueueCap)
	if idx < 0 {
		return
	}
	chosen := merged[idx]
	c.arb.issued(chosen, c.dram)
	if chosen.isWrite {
		c.writeQ = removeCmd(c.writeQ, chosen)
	} else {
		c.readQ = removeCmd(c.readQ, chosen)
	}
	c.caq = append(c.caq, chosen)
	if c.bus != nil {
		var w int64
		if chosen.isWrite {
			w = 1
		}
		c.bus.Emit(obs.Event{Kind: obs.KindMCSchedule, Cycle: cpuNow, ID: chosen.cmd.ID,
			Line: chosen.cmd.Line, Thread: int32(chosen.cmd.Thread), V1: w})
	}
}

func removeCmd(q []*cmdState, s *cmdState) []*cmdState {
	for i, x := range q {
		if x == s {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// finalIssue is the Final Scheduler: it transmits the CAQ head to DRAM
// (performing the second Prefetch Buffer check first) and, when the
// active Adaptive Scheduling policy permits, issues the LPQ head instead.
func (c *Controller) finalIssue(cpuNow, dramNow uint64) {
	issued := false
	if len(c.caq) > 0 {
		head := c.caq[0]
		var lateHit bool
		var lateDepth int
		if !head.isWrite && c.pb != nil {
			lateHit, lateDepth = c.pb.TakeForRead(head.cmd.Line)
		}
		if lateHit {
			// Second PB check: the data arrived while the command sat
			// in the CAQ.
			c.stats.PBHitsLate++
			if c.bus != nil {
				c.bus.Emit(obs.Event{Kind: obs.KindMCPBHit, Cycle: cpuNow, ID: head.cmd.ID,
					Line: head.cmd.Line, Thread: int32(head.cmd.Thread), V1: 1, V2: int64(lateDepth)})
			}
			c.deliver(head.cmd, cpuNow+c.cfg.PBHitLatency, false)
			c.caq = c.caq[1:]
			issued = true // the CAQ slot consumed this cycle's transmit
		} else if c.dram.CanIssue(head.cmd.Line, dramNow) {
			doneDRAM := c.dram.Issue(head.cmd.Line, head.isWrite, false, dramNow)
			doneCPU := doneDRAM*mem.CPUCyclesPerDRAMCycle + c.cfg.Overhead
			c.caq = c.caq[1:]
			if head.isWrite {
				c.stats.DRAMWrites++
			} else {
				c.stats.DRAMReads++
				head.done = doneCPU
				c.stats.ReadLatencySum += doneCPU - head.cmd.Arrival
				c.inflight = append(c.inflight, head)
			}
			issued = true
			if c.bus != nil {
				var w int64
				if head.isWrite {
					w = 1
				}
				c.bus.Emit(obs.Event{Kind: obs.KindMCIssue, Cycle: cpuNow, ID: head.cmd.ID,
					Line: head.cmd.Line, Thread: int32(head.cmd.Thread), V1: w, V2: int64(doneCPU)})
			}
		} else if busy, byPF := c.dram.BankBusy(head.cmd.Line, dramNow); busy && byPF && !head.delayedCounted {
			head.delayedCounted = true
			c.stats.DelayedRegular++
			if c.bus != nil {
				c.bus.Emit(obs.Event{Kind: obs.KindMCBankConflict, Cycle: cpuNow,
					ID: head.cmd.ID, Line: head.cmd.Line, Thread: int32(head.cmd.Thread)})
			}
		}
	}
	if issued || len(c.lpq) == 0 || c.adaptive == nil {
		return
	}
	st := c.queueState(dramNow)
	if !c.adaptive.Policy().Allows(st) {
		return
	}
	head := c.lpq[0]
	if !c.dram.CanIssue(head.line, dramNow) {
		return
	}
	doneDRAM := c.dram.Issue(head.line, false, true, dramNow)
	head.doneAt = doneDRAM*mem.CPUCyclesPerDRAMCycle + c.cfg.Overhead
	c.lpq = c.lpq[1:]
	c.pfFlight = append(c.pfFlight, head)
	c.stats.PrefetchesToDRAM++
	if c.bus != nil {
		c.bus.Emit(obs.Event{Kind: obs.KindMCPFIssue, Cycle: cpuNow, Line: head.line,
			V1: int64(head.depth), V2: int64(head.doneAt)})
	}
}

// queueState snapshots the queues for a policy decision.
func (c *Controller) queueState(dramNow uint64) core.QueueState {
	st := core.QueueState{
		CAQLen:     len(c.caq),
		ReorderLen: len(c.readQ) + len(c.writeQ),
		LPQLen:     len(c.lpq),
		LPQCap:     c.cfg.LPQCap,
	}
	for _, s := range append(append([]*cmdState{}, c.readQ...), c.writeQ...) {
		if c.dram.CanIssue(s.cmd.Line, dramNow) {
			st.ReorderHasIssuable = true
			break
		}
	}
	if len(c.lpq) > 0 {
		st.LPQHeadArrival = c.lpq[0].arrival
	}
	if len(c.caq) > 0 {
		st.CAQHeadArrival = c.caq[0].cmd.Arrival
	}
	return st
}

// completePrefetches lands finished prefetches: merged waiters are
// delivered directly (the data moves on-chip, so it does not linger in
// the PB); otherwise the line is installed in the Prefetch Buffer.
func (c *Controller) completePrefetches(cpuNow uint64) {
	for i := 0; i < len(c.pfFlight); {
		p := c.pfFlight[i]
		if p.doneAt > cpuNow {
			i++
			continue
		}
		if len(p.waiters) > 0 {
			if c.bus != nil {
				c.bus.Emit(obs.Event{Kind: obs.KindMCPFLate, Cycle: p.doneAt, Line: p.line,
					V1: int64(p.depth), V2: int64(len(p.waiters))})
			}
			for _, w := range p.waiters {
				c.deliver(w, p.doneAt, true)
			}
			c.pb.Useful++
		} else {
			evicted, evictedDepth := c.pb.Insert(p.line, p.depth)
			if c.bus != nil {
				c.bus.Emit(obs.Event{Kind: obs.KindMCPFInstall, Cycle: cpuNow, Line: p.line,
					V1: int64(p.depth)})
				if evicted {
					c.bus.Emit(obs.Event{Kind: obs.KindMCPFWasted, Cycle: cpuNow,
						V1: int64(evictedDepth)})
				}
			}
		}
		c.pfFlight = append(c.pfFlight[:i], c.pfFlight[i+1:]...)
	}
}

// completeDemands delivers finished demand Reads.
func (c *Controller) completeDemands(cpuNow uint64) {
	for i := 0; i < len(c.inflight); {
		s := c.inflight[i]
		if s.done > cpuNow {
			i++
			continue
		}
		c.deliver(s.cmd, s.done, false)
		c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
	}
}

func (c *Controller) deliver(cmd mem.Command, done uint64, merged bool) {
	if c.bus != nil {
		var m int64
		if merged {
			m = 1
		}
		c.bus.Emit(obs.Event{Kind: obs.KindMCComplete, Cycle: done, ID: cmd.ID,
			Line: cmd.Line, Thread: int32(cmd.Thread), V1: int64(done - cmd.Arrival), V2: m})
	}
	if c.onReadDone != nil {
		c.onReadDone(cmd, done)
	}
}

// Coverage returns the fraction of demand Reads satisfied by the
// memory-side prefetcher (PB hits at either check plus merges), the
// paper's Fig. 13 "coverage" metric.
func (c *Controller) Coverage() float64 {
	if c.stats.RegularReads == 0 {
		return 0
	}
	covered := c.stats.PBHitsEntry + c.stats.PBHitsLate + c.stats.PFMergeHits
	return float64(covered) / float64(c.stats.RegularReads)
}

// UsefulPrefetchFrac returns useful/(useful+wasted) over completed
// prefetches — Fig. 13's "useful prefetches".
func (c *Controller) UsefulPrefetchFrac() float64 {
	if c.pb == nil {
		return 0
	}
	denom := c.pb.Useful + c.pb.Wasted
	if denom == 0 {
		return 0
	}
	return float64(c.pb.Useful) / float64(denom)
}

// DelayedRegularFrac returns the fraction of regular commands delayed by
// memory-side prefetches — Fig. 13's third metric.
func (c *Controller) DelayedRegularFrac() float64 {
	total := c.stats.RegularReads + c.stats.RegularWrites
	if total == 0 {
		return 0
	}
	return float64(c.stats.DelayedRegular) / float64(total)
}
