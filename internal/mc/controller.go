// Package mc models the Power5+ memory controller of the paper's Figs. 1
// and 4: Read/Write Reorder Queues feeding a Centralized Arbiter Queue
// (CAQ) through a scheduler, extended with the paper's memory-side
// prefetcher — per-thread Stream Filter + Prefetch Generator, a Low
// Priority Queue (LPQ), a Prefetch Buffer, and a Final Scheduler that
// arbitrates prefetches against regular commands under Adaptive
// Scheduling.
//
// The controller is the simulator's innermost loop (one Step per MC
// cycle across every run of a farm sweep), so its data structures are
// allocation-free in steady state: command and prefetch state objects
// come from freelist pools, the queues are fixed-capacity ring buffers,
// and each line's DRAM (bank, row) decode is computed once at admission
// and carried with the command.
package mc

import (
	"fmt"

	"asdsim/internal/core"
	"asdsim/internal/dram"
	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/obs/prov"
	"asdsim/internal/prefetch"
)

// Config parameterises the controller.
type Config struct {
	// ReadQueueCap and WriteQueueCap size the Reorder Queues.
	ReadQueueCap  int
	WriteQueueCap int
	// CAQCap is the Centralized Arbiter Queue depth (3 on the Power5+).
	CAQCap int
	// LPQCap is the Low Priority Queue depth; the paper gives it "the
	// same number of entries — 3 — as the CAQ".
	LPQCap int
	// PBLines and PBAssoc size the Prefetch Buffer (16 lines, 2 KB).
	PBLines int
	PBAssoc int
	// PBHitLatency is the CPU-cycle latency of a Read satisfied by the
	// Prefetch Buffer (an on-chip MC round trip instead of DRAM).
	PBHitLatency uint64
	// Overhead is the fixed CPU-cycle cost added to every DRAM round
	// trip (controller traversal, bus transfer back to the chip).
	Overhead uint64
	// Scheduler selects the Reorder-Queue scheduling algorithm.
	Scheduler SchedulerKind
}

// DefaultConfig matches the paper's evaluated configuration.
func DefaultConfig() Config {
	return Config{
		ReadQueueCap:  8,
		WriteQueueCap: 8,
		CAQCap:        3,
		LPQCap:        3,
		PBLines:       16,
		PBAssoc:       4,
		PBHitLatency:  24,
		Overhead:      150,
		Scheduler:     SchedAHB,
	}
}

// cmdState wraps a queued regular command. Instances are pooled by the
// controller: a cmdState is live from Enqueue until its command leaves
// the system (PB hit, prefetch merge, write issue, or demand-read
// completion) and is then recycled.
type cmdState struct {
	cmd mem.Command
	// dec is the command line's DRAM (bank, row) decode, computed once
	// at Enqueue so bank queries along the command's life stop
	// re-dividing.
	dec             dram.Decoded
	isWrite         bool
	done            uint64 // completion cycle once issued to DRAM
	delayedCounted  bool
	conflictCounted bool
}

// pfState is one memory-side prefetch in the LPQ or in flight. Pooled
// like cmdState; the waiters slice keeps its capacity across recycles.
type pfState struct {
	line    mem.Line
	dec     dram.Decoded
	arrival uint64
	doneAt  uint64
	depth   int // 1 = line adjacent to the trigger
	// waiters are demand Reads that arrived while this prefetch was in
	// flight and were merged onto it.
	waiters []mem.Command
}

// ReadDoneFunc delivers a completed demand Read back to the CPU model.
type ReadDoneFunc func(cmd mem.Command, doneAtCPU uint64)

// Stats holds the controller's observable counters (Fig. 13 feeds from
// these).
type Stats struct {
	RegularReads     uint64 // demand Reads entering the MC
	RegularWrites    uint64
	PBHitsEntry      uint64 // Reads satisfied at the first PB check
	PBHitsLate       uint64 // Reads satisfied at the CAQ-head (second) check
	PFMergeHits      uint64 // Reads merged onto an in-flight prefetch
	PrefetchesToLPQ  uint64
	LPQDrops         uint64 // prefetch nominations dropped (full/duplicate)
	PrefetchesToDRAM uint64
	DelayedRegular   uint64 // regular commands delayed by a prefetch-held bank
	DRAMReads        uint64
	DRAMWrites       uint64
	// ReadLatencySum accumulates (completion - arrival) over demand
	// Reads served from DRAM, for mean-latency reporting.
	ReadLatencySum uint64
}

// Controller is the memory controller model.
type Controller struct {
	cfg      Config
	dram     *dram.DRAM
	engines  []prefetch.MSEngine // per-thread; nil slice disables MS prefetching
	adaptive *core.AdaptiveScheduler

	inbox  ring[*cmdState]
	readQ  ring[*cmdState]
	writeQ ring[*cmdState]
	caq    ring[*cmdState]
	lpq    ring[*pfState]

	inflight []*cmdState // demand reads issued to DRAM
	pfFlight []*pfState
	// nextDemandDone and nextPFDone cache the minimum completion cycle
	// across inflight/pfFlight (^uint64(0) when empty), so NextWake is
	// O(1) instead of scanning both lists. They are updated on insert
	// and recomputed during the completion passes' compaction sweep.
	nextDemandDone uint64
	nextPFDone     uint64

	// cmdPool and pfPool are freelists; merged is the scheduler's
	// reusable read+write scratch view.
	cmdPool []*cmdState
	pfPool  []*pfState
	merged  []*cmdState

	pb         *PBuffer
	arb        arbiter
	onReadDone ReadDoneFunc
	bus        *obs.Bus       // nil when no observer is attached
	prov       *prov.Recorder // nil unless a provenance recorder is attached

	stats Stats
}

// New returns a controller over d. engines supplies one memory-side
// prefetch engine per hardware thread (nil or empty disables memory-side
// prefetching). adaptive must be non-nil when engines are present.
func New(cfg Config, d *dram.DRAM, engines []prefetch.MSEngine, adaptive *core.AdaptiveScheduler) *Controller {
	if cfg.ReadQueueCap <= 0 || cfg.WriteQueueCap <= 0 || cfg.CAQCap <= 0 {
		panic(fmt.Sprintf("mc: invalid queue capacities %+v", cfg))
	}
	if len(engines) > 0 {
		if cfg.LPQCap <= 0 || cfg.PBLines <= 0 {
			panic("mc: prefetching enabled but LPQ/PB not sized")
		}
		if adaptive == nil {
			panic("mc: prefetching enabled without an adaptive scheduler")
		}
	}
	c := &Controller{
		cfg: cfg, dram: d, engines: engines, adaptive: adaptive,
		inbox:          newRing[*cmdState](16),
		readQ:          newRing[*cmdState](cfg.ReadQueueCap),
		writeQ:         newRing[*cmdState](cfg.WriteQueueCap),
		caq:            newRing[*cmdState](cfg.CAQCap),
		lpq:            newRing[*pfState](max(cfg.LPQCap, 1)),
		nextDemandDone: ^uint64(0),
		nextPFDone:     ^uint64(0),
	}
	c.arb = newArbiter(cfg.Scheduler)
	if len(engines) > 0 {
		c.pb = NewPBuffer(cfg.PBLines, cfg.PBAssoc)
	}
	return c
}

// getCmd takes a cmdState from the pool (or allocates the pool's first
// generation).
func (c *Controller) getCmd() *cmdState {
	if n := len(c.cmdPool); n > 0 {
		s := c.cmdPool[n-1]
		c.cmdPool = c.cmdPool[:n-1]
		return s
	}
	return new(cmdState) //asd:allow hotpath-noalloc pool first-generation growth; steady state recycles via putCmd
}

// putCmd recycles a cmdState. Callers must be done with every field.
func (c *Controller) putCmd(s *cmdState) { c.cmdPool = append(c.cmdPool, s) }

// getPF takes a pfState from the pool, preserving waiters capacity.
func (c *Controller) getPF() *pfState {
	if n := len(c.pfPool); n > 0 {
		p := c.pfPool[n-1]
		c.pfPool = c.pfPool[:n-1]
		return p
	}
	return new(pfState) //asd:allow hotpath-noalloc pool first-generation growth; steady state recycles via putPF
}

// putPF recycles a pfState.
func (c *Controller) putPF(p *pfState) {
	p.waiters = p.waiters[:0]
	c.pfPool = append(c.pfPool, p)
}

// SetReadDone installs the completion callback for demand Reads.
func (c *Controller) SetReadDone(fn ReadDoneFunc) { c.onReadDone = fn }

// SetObserver attaches a probe bus (nil detaches). Every probe point
// is guarded by a nil check, so a detached controller pays one branch
// per probe.
func (c *Controller) SetObserver(b *obs.Bus) { c.bus = b }

// SetProv attaches a provenance recorder (nil detaches). The recorder
// sees exactly the prefetch-lifecycle events the probe bus does, but
// through a direct call, so a provenance-only run keeps the bus — and
// every non-lifecycle probe site in the memory system — disabled.
func (c *Controller) SetProv(r *prov.Recorder) { c.prov = r }

// pfObserved reports whether prefetch-lifecycle events have a consumer.
func (c *Controller) pfObserved() bool { return c.bus != nil || c.prov != nil }

// emitPF forwards one prefetch-lifecycle event to the probe bus and the
// provenance recorder (both nil-safe).
func (c *Controller) emitPF(e obs.Event) {
	c.bus.Emit(e)
	c.prov.Emit(e)
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// PB exposes the prefetch buffer (nil when MS prefetching is off).
func (c *Controller) PB() *PBuffer { return c.pb }

// Adaptive exposes the adaptive scheduler (may be nil).
func (c *Controller) Adaptive() *core.AdaptiveScheduler { return c.adaptive }

// Enqueue presents a command to the controller; it takes effect at the
// next Step. Commands are processed in Enqueue order.
//
//asd:hotpath
func (c *Controller) Enqueue(cmd mem.Command) {
	isWrite := cmd.Kind == mem.Write
	s := c.getCmd()
	*s = cmdState{cmd: cmd, dec: c.dram.Decode(cmd.Line), isWrite: isWrite}
	c.inbox.PushBack(s)
	if c.bus != nil {
		var w int64
		if isWrite {
			w = 1
		}
		c.bus.Emit(obs.Event{Kind: obs.KindMCEnqueue, Cycle: cmd.Arrival, ID: cmd.ID,
			Line: cmd.Line, Thread: int32(cmd.Thread), V1: w})
	}
}

// Busy reports whether the controller holds any work.
//
//asd:hotpath
func (c *Controller) Busy() bool {
	return c.inbox.Len()+c.readQ.Len()+c.writeQ.Len()+c.caq.Len()+c.lpq.Len()+
		len(c.inflight)+len(c.pfFlight) > 0
}

// NextWake returns the earliest CPU cycle at which stepping the
// controller could make progress, given the current state; ^uint64(0)
// when idle. Work in the inbox, Reorder Queues, or LPQ always wants the
// next MC cycle. With only in-flight DRAM traffic outstanding, the
// cached minimum completion cycle is returned without scanning. With
// CAQ work but nothing ahead of it, the wake also covers the head's
// bank-ready cycle — but only when no prefetch state could interact in
// between (an in-flight prefetch can hold the head's bank, which feeds
// the DelayedRegular statistic per cycle observed, and a Prefetch
// Buffer hit on the head would deliver at the very next cycle).
//
//asd:hotpath
func (c *Controller) NextWake(cpuNow uint64) uint64 {
	if c.inbox.Len()+c.readQ.Len()+c.writeQ.Len()+c.lpq.Len() > 0 {
		return cpuNow + mem.CPUCyclesPerMCCycle
	}
	wake := c.nextDemandDone
	if c.nextPFDone < wake {
		wake = c.nextPFDone
	}
	if c.caq.Len() > 0 {
		if len(c.pfFlight) > 0 {
			return cpuNow + mem.CPUCyclesPerMCCycle
		}
		head := c.caq.Front()
		if c.pb != nil && !head.isWrite && c.pb.Contains(head.cmd.Line) {
			return cpuNow + mem.CPUCyclesPerMCCycle
		}
		if hr := c.dram.ReadyAtD(head.dec) * mem.CPUCyclesPerDRAMCycle; hr < wake {
			wake = hr
		}
	}
	return wake
}

// FlushLPQ discards queued-but-unissued prefetches (counted as drops).
// The run loop calls this when the processors have finished: with no
// more demand traffic arriving, a conservative policy such as
// caq-almost-empty (which waits for a full LPQ) could otherwise hold
// stragglers forever.
func (c *Controller) FlushLPQ() {
	c.stats.LPQDrops += uint64(c.lpq.Len())
	for i := 0; i < c.lpq.Len(); i++ {
		p := c.lpq.At(i)
		if c.pfObserved() {
			c.emitPF(obs.Event{Kind: obs.KindMCPFDrop, Cycle: p.arrival,
				Line: p.line, V1: int64(p.depth), V2: int64(obs.DropFlushed)})
		}
		c.putPF(p)
	}
	c.lpq.Clear()
}

// Step advances the controller by one MC cycle ending at CPU cycle
// cpuNow. Callers step at mem.CPUCyclesPerMCCycle granularity.
//
//asd:hotpath
func (c *Controller) Step(cpuNow uint64) {
	dramNow := cpuNow / mem.CPUCyclesPerDRAMCycle
	c.dram.ObserveCycle(dramNow)
	c.completePrefetches(cpuNow)
	c.completeDemands(cpuNow)
	c.drainInbox(cpuNow)
	c.countConflicts(cpuNow, dramNow)
	c.scheduleToCAQ(cpuNow, dramNow)
	c.finalIssue(cpuNow, dramNow)
	for _, e := range c.engines {
		e.Tick(cpuNow)
	}
	if c.bus != nil {
		c.bus.Emit(obs.Event{Kind: obs.KindMCQueues, Cycle: cpuNow,
			V1: int64(c.readQ.Len() + c.writeQ.Len()), V2: int64(c.caq.Len()), V3: int64(c.lpq.Len())})
	}
}

// drainInbox admits commands into the Reorder Queues, performing the
// first Prefetch Buffer check and prefetch-merge check for Reads and the
// PB invalidation rule for Writes.
func (c *Controller) drainInbox(cpuNow uint64) {
	for c.inbox.Len() > 0 {
		s := c.inbox.Front()
		if s.isWrite {
			if c.writeQ.Len() >= c.cfg.WriteQueueCap {
				return
			}
			c.inbox.PopFront()
			c.stats.RegularWrites++
			if c.pb != nil {
				if dropped, depth := c.pb.InvalidateForWrite(s.cmd.Line); dropped && c.pfObserved() {
					c.emitPF(obs.Event{Kind: obs.KindMCPFWasted, Cycle: cpuNow,
						Line: s.cmd.Line, V1: int64(depth), V2: 1})
				}
			}
			c.dropPendingPrefetch(s.cmd.Line, cpuNow, obs.DropWrite)
			c.writeQ.PushBack(s)
			continue
		}

		// Demand Read path. The Stream Filter sees every Read entering
		// the controller (Fig. 4), including ones the PB will satisfy.
		if c.readQ.Len() >= c.cfg.ReadQueueCap {
			return
		}
		c.inbox.PopFront()
		c.stats.RegularReads++
		if c.adaptive != nil {
			c.adaptive.OnRead(cpuNow)
		}
		c.observeRead(s.cmd, cpuNow)

		if c.pb != nil {
			if hit, depth := c.pb.TakeForRead(s.cmd.Line); hit {
				// First PB check: satisfied without DRAM; the Read is
				// squashed.
				c.stats.PBHitsEntry++
				if c.pfObserved() {
					c.emitPF(obs.Event{Kind: obs.KindMCPBHit, Cycle: cpuNow, ID: s.cmd.ID,
						Line: s.cmd.Line, Thread: int32(s.cmd.Thread), V2: int64(depth)})
				}
				c.deliver(s.cmd, cpuNow+c.cfg.PBHitLatency, false)
				c.putCmd(s)
				continue
			}
		}
		if pf := c.findInFlightPrefetch(s.cmd.Line); pf != nil {
			// The line is already on its way from DRAM: merge.
			c.stats.PFMergeHits++
			pf.waiters = append(pf.waiters, s.cmd)
			c.putCmd(s)
			continue
		}
		// A matching prefetch still waiting in the LPQ is squashed: the
		// demand Read will fetch the line itself, so issuing the
		// prefetch too would only waste a DRAM access.
		c.dropPendingPrefetch(s.cmd.Line, cpuNow, obs.DropOvertaken)
		c.readQ.PushBack(s)
	}
}

// observeRead feeds the thread's ASD engine and files its nominations
// into the LPQ.
func (c *Controller) observeRead(cmd mem.Command, cpuNow uint64) {
	if len(c.engines) == 0 {
		return
	}
	eng := c.engines[cmd.Thread%len(c.engines)]
	for i, line := range eng.ObserveRead(cmd.Line, cpuNow) {
		c.nominatePrefetch(line, i+1, cpuNow)
	}
}

// nominatePrefetch files one prefetch candidate (depth lines beyond
// its trigger) into the LPQ unless it is redundant or the queue is
// full. The redundancy checks run in the same order as before cause
// tagging, so the first matching cause is the one reported.
func (c *Controller) nominatePrefetch(line mem.Line, depth int, cpuNow uint64) {
	cause := obs.DropUnknown
	switch {
	case c.pb.Contains(line):
		cause = obs.DropPBDup
	case c.findInFlightPrefetch(line) != nil:
		cause = obs.DropInFlightDup
	case c.lpqContains(line):
		cause = obs.DropLPQDup
	case c.demandPending(line):
		cause = obs.DropDemandPending
	case c.lpq.Len() >= c.cfg.LPQCap:
		cause = obs.DropLPQFull
	}
	if cause != obs.DropUnknown {
		c.stats.LPQDrops++
		if c.pfObserved() {
			c.emitPF(obs.Event{Kind: obs.KindMCPFDrop, Cycle: cpuNow, Line: line,
				V1: int64(depth), V2: int64(cause)})
		}
		return
	}
	p := c.getPF()
	*p = pfState{line: line, dec: c.dram.Decode(line), arrival: cpuNow, depth: depth, waiters: p.waiters}
	c.lpq.PushBack(p)
	c.stats.PrefetchesToLPQ++
	if c.pfObserved() {
		c.emitPF(obs.Event{Kind: obs.KindMCPFNominate, Cycle: cpuNow, Line: line, V1: int64(depth)})
	}
}

func (c *Controller) lpqContains(line mem.Line) bool {
	for i := 0; i < c.lpq.Len(); i++ {
		if c.lpq.At(i).line == line {
			return true
		}
	}
	return false
}

// demandPending reports whether a demand command for line is already
// queued or in flight (prefetching it would waste bandwidth).
func (c *Controller) demandPending(line mem.Line) bool {
	for i := 0; i < c.readQ.Len(); i++ {
		if c.readQ.At(i).cmd.Line == line {
			return true
		}
	}
	for i := 0; i < c.caq.Len(); i++ {
		if c.caq.At(i).cmd.Line == line {
			return true
		}
	}
	for _, s := range c.inflight {
		if s.cmd.Line == line {
			return true
		}
	}
	return false
}

func (c *Controller) findInFlightPrefetch(line mem.Line) *pfState {
	for _, p := range c.pfFlight {
		if p.line == line {
			return p
		}
	}
	return nil
}

// dropPendingPrefetch removes an un-issued LPQ entry for line, tagged
// with why: a Write makes prefetching it pointless (and the data would
// be stale), an overtaking demand Read will fetch the line itself.
func (c *Controller) dropPendingPrefetch(line mem.Line, cpuNow uint64, cause obs.DropCause) {
	for i := 0; i < c.lpq.Len(); i++ {
		if p := c.lpq.At(i); p.line == line {
			c.lpq.RemoveAt(i)
			c.stats.LPQDrops++
			if c.pfObserved() {
				c.emitPF(obs.Event{Kind: obs.KindMCPFDrop, Cycle: cpuNow, Line: line,
					V1: int64(p.depth), V2: int64(cause)})
			}
			c.putPF(p)
			return
		}
	}
}

// countConflicts implements the Adaptive Scheduling feedback (§3.5): each
// regular command in the Reorder Queues that cannot proceed because its
// bank is held by a previously issued prefetch counts once.
func (c *Controller) countConflicts(cpuNow, dramNow uint64) {
	if c.adaptive == nil {
		return
	}
	for _, q := range [...]*ring[*cmdState]{&c.readQ, &c.writeQ} {
		for i := 0; i < q.Len(); i++ {
			s := q.At(i)
			if s.conflictCounted {
				continue
			}
			if busy, byPF := c.dram.BankBusyD(s.dec, dramNow); busy && byPF {
				s.conflictCounted = true
				c.adaptive.OnConflict()
				if c.bus != nil {
					c.bus.Emit(obs.Event{Kind: obs.KindMCBankConflict, Cycle: cpuNow,
						ID: s.cmd.ID, Line: s.cmd.Line, Thread: int32(s.cmd.Thread)})
				}
				if !s.delayedCounted {
					s.delayedCounted = true
					c.stats.DelayedRegular++
				}
			}
		}
	}
}

// scheduleToCAQ moves at most one command per MC cycle from the Reorder
// Queues to the CAQ, per the configured scheduling algorithm. The
// arbiter sees one merged reads-then-writes view, rebuilt each cycle in
// a scratch slice that is reused across cycles.
func (c *Controller) scheduleToCAQ(cpuNow, dramNow uint64) {
	if c.caq.Len() >= c.cfg.CAQCap {
		return
	}
	readLen := c.readQ.Len()
	if readLen+c.writeQ.Len() == 0 {
		return
	}
	merged := c.merged[:0]
	for i := 0; i < readLen; i++ {
		merged = append(merged, c.readQ.At(i))
	}
	for i := 0; i < c.writeQ.Len(); i++ {
		merged = append(merged, c.writeQ.At(i))
	}
	c.merged = merged
	idx := c.arb.pick(merged, c.dram, dramNow, c.writeQ.Len(), c.cfg.WriteQueueCap)
	if idx < 0 {
		return
	}
	chosen := merged[idx]
	c.arb.issued(chosen, c.dram)
	if idx < readLen {
		c.readQ.RemoveAt(idx)
	} else {
		c.writeQ.RemoveAt(idx - readLen)
	}
	c.caq.PushBack(chosen)
	if c.bus != nil {
		var w int64
		if chosen.isWrite {
			w = 1
		}
		c.bus.Emit(obs.Event{Kind: obs.KindMCSchedule, Cycle: cpuNow, ID: chosen.cmd.ID,
			Line: chosen.cmd.Line, Thread: int32(chosen.cmd.Thread), V1: w})
	}
}

// finalIssue is the Final Scheduler: it transmits the CAQ head to DRAM
// (performing the second Prefetch Buffer check first) and, when the
// active Adaptive Scheduling policy permits, issues the LPQ head instead.
func (c *Controller) finalIssue(cpuNow, dramNow uint64) {
	issued := false
	if c.caq.Len() > 0 {
		head := c.caq.Front()
		var lateHit bool
		var lateDepth int
		if !head.isWrite && c.pb != nil {
			lateHit, lateDepth = c.pb.TakeForRead(head.cmd.Line)
		}
		if lateHit {
			// Second PB check: the data arrived while the command sat
			// in the CAQ.
			c.stats.PBHitsLate++
			if c.pfObserved() {
				c.emitPF(obs.Event{Kind: obs.KindMCPBHit, Cycle: cpuNow, ID: head.cmd.ID,
					Line: head.cmd.Line, Thread: int32(head.cmd.Thread), V1: 1, V2: int64(lateDepth)})
			}
			c.deliver(head.cmd, cpuNow+c.cfg.PBHitLatency, false)
			c.caq.PopFront()
			c.putCmd(head)
			issued = true // the CAQ slot consumed this cycle's transmit
		} else if c.dram.CanIssueD(head.dec, dramNow) {
			doneDRAM := c.dram.IssueD(head.cmd.Line, head.dec, head.isWrite, false, dramNow)
			doneCPU := doneDRAM*mem.CPUCyclesPerDRAMCycle + c.cfg.Overhead
			c.caq.PopFront()
			issued = true
			if c.bus != nil {
				var w int64
				if head.isWrite {
					w = 1
				}
				c.bus.Emit(obs.Event{Kind: obs.KindMCIssue, Cycle: cpuNow, ID: head.cmd.ID,
					Line: head.cmd.Line, Thread: int32(head.cmd.Thread), V1: w, V2: int64(doneCPU)})
			}
			if head.isWrite {
				c.stats.DRAMWrites++
				c.putCmd(head)
			} else {
				c.stats.DRAMReads++
				head.done = doneCPU
				c.stats.ReadLatencySum += doneCPU - head.cmd.Arrival
				c.inflight = append(c.inflight, head)
				if doneCPU < c.nextDemandDone {
					c.nextDemandDone = doneCPU
				}
			}
		} else if busy, byPF := c.dram.BankBusyD(head.dec, dramNow); busy && byPF && !head.delayedCounted {
			head.delayedCounted = true
			c.stats.DelayedRegular++
			if c.bus != nil {
				c.bus.Emit(obs.Event{Kind: obs.KindMCBankConflict, Cycle: cpuNow,
					ID: head.cmd.ID, Line: head.cmd.Line, Thread: int32(head.cmd.Thread)})
			}
		}
	}
	if issued || c.lpq.Len() == 0 || c.adaptive == nil {
		return
	}
	if !c.adaptive.Policy().Allows(c.queueState(dramNow)) {
		return
	}
	head := c.lpq.Front()
	if !c.dram.CanIssueD(head.dec, dramNow) {
		return
	}
	doneDRAM := c.dram.IssueD(head.line, head.dec, false, true, dramNow)
	head.doneAt = doneDRAM*mem.CPUCyclesPerDRAMCycle + c.cfg.Overhead
	c.lpq.PopFront()
	c.pfFlight = append(c.pfFlight, head)
	if head.doneAt < c.nextPFDone {
		c.nextPFDone = head.doneAt
	}
	c.stats.PrefetchesToDRAM++
	if c.pfObserved() {
		c.emitPF(obs.Event{Kind: obs.KindMCPFIssue, Cycle: cpuNow, Line: head.line,
			V1: int64(head.depth), V2: int64(head.doneAt)})
	}
}

// queueState snapshots the queues for a policy decision.
//
// ReorderHasIssuable is filled lazily: only the no-issuable policy's
// condition (2) can change outcome based on it — under every other
// policy the CAQ-empty test subsumes it (the policies are cumulative) —
// so only that policy pays the Reorder-Queue scan, and only when the
// scan can matter (CAQ empty, Reorder Queues non-empty).
func (c *Controller) queueState(dramNow uint64) core.QueueState {
	st := core.QueueState{
		CAQLen:     c.caq.Len(),
		ReorderLen: c.readQ.Len() + c.writeQ.Len(),
		LPQLen:     c.lpq.Len(),
		LPQCap:     c.cfg.LPQCap,
	}
	if c.adaptive.Policy() == core.PolicyNoIssuable && st.CAQLen == 0 && st.ReorderLen > 0 {
		st.ReorderHasIssuable = c.reorderHasIssuable(dramNow)
	}
	if st.LPQLen > 0 {
		st.LPQHeadArrival = c.lpq.Front().arrival
	}
	if st.CAQLen > 0 {
		st.CAQHeadArrival = c.caq.Front().cmd.Arrival
	}
	return st
}

// reorderHasIssuable reports whether any Reorder-Queue command's bank
// could accept it at dramNow.
func (c *Controller) reorderHasIssuable(dramNow uint64) bool {
	for i := 0; i < c.readQ.Len(); i++ {
		if c.dram.CanIssueD(c.readQ.At(i).dec, dramNow) {
			return true
		}
	}
	for i := 0; i < c.writeQ.Len(); i++ {
		if c.dram.CanIssueD(c.writeQ.At(i).dec, dramNow) {
			return true
		}
	}
	return false
}

// completePrefetches lands finished prefetches: merged waiters are
// delivered directly (the data moves on-chip, so it does not linger in
// the PB); otherwise the line is installed in the Prefetch Buffer.
// Survivors are compacted in one pass, which also refreshes the cached
// minimum completion cycle.
func (c *Controller) completePrefetches(cpuNow uint64) {
	if c.nextPFDone > cpuNow {
		return
	}
	keep := c.pfFlight[:0]
	minDone := ^uint64(0)
	for _, p := range c.pfFlight {
		if p.doneAt > cpuNow {
			keep = append(keep, p)
			if p.doneAt < minDone {
				minDone = p.doneAt
			}
			continue
		}
		if len(p.waiters) > 0 {
			if c.pfObserved() {
				c.emitPF(obs.Event{Kind: obs.KindMCPFLate, Cycle: p.doneAt, Line: p.line,
					V1: int64(p.depth), V2: int64(len(p.waiters))})
			}
			for _, w := range p.waiters {
				c.deliver(w, p.doneAt, true)
			}
			c.pb.Useful++
		} else {
			evicted, evictedLine, evictedDepth := c.pb.Insert(p.line, p.depth)
			if c.pfObserved() {
				c.emitPF(obs.Event{Kind: obs.KindMCPFInstall, Cycle: cpuNow, Line: p.line,
					V1: int64(p.depth)})
				if evicted {
					c.emitPF(obs.Event{Kind: obs.KindMCPFWasted, Cycle: cpuNow,
						Line: evictedLine, V1: int64(evictedDepth)})
				}
			}
		}
		c.putPF(p)
	}
	clearTail(c.pfFlight, len(keep))
	c.pfFlight = keep
	c.nextPFDone = minDone
}

// completeDemands delivers finished demand Reads, compacting survivors
// in one pass and refreshing the cached minimum completion cycle.
func (c *Controller) completeDemands(cpuNow uint64) {
	if c.nextDemandDone > cpuNow {
		return
	}
	keep := c.inflight[:0]
	minDone := ^uint64(0)
	for _, s := range c.inflight {
		if s.done > cpuNow {
			keep = append(keep, s)
			if s.done < minDone {
				minDone = s.done
			}
			continue
		}
		c.deliver(s.cmd, s.done, false)
		c.putCmd(s)
	}
	clearTail(c.inflight, len(keep))
	c.inflight = keep
	c.nextDemandDone = minDone
}

// clearTail nils the slots past n so the shared backing array does not
// retain pooled objects' last positions (harmless for GC — the pool
// holds them anyway — but keeps aliasing obvious).
func clearTail[T any](s []T, n int) {
	var zero T
	for i := n; i < len(s); i++ {
		s[i] = zero
	}
}

func (c *Controller) deliver(cmd mem.Command, done uint64, merged bool) {
	if c.bus != nil {
		var m int64
		if merged {
			m = 1
		}
		c.bus.Emit(obs.Event{Kind: obs.KindMCComplete, Cycle: done, ID: cmd.ID,
			Line: cmd.Line, Thread: int32(cmd.Thread), V1: int64(done - cmd.Arrival), V2: m})
	}
	if c.onReadDone != nil {
		c.onReadDone(cmd, done) //asd:allow hotpath-noalloc completion callback installed once at wiring time; the runner's handler is itself checked
	}
}

// Coverage returns the fraction of demand Reads satisfied by the
// memory-side prefetcher (PB hits at either check plus merges), the
// paper's Fig. 13 "coverage" metric.
func (c *Controller) Coverage() float64 {
	if c.stats.RegularReads == 0 {
		return 0
	}
	covered := c.stats.PBHitsEntry + c.stats.PBHitsLate + c.stats.PFMergeHits
	return float64(covered) / float64(c.stats.RegularReads)
}

// UsefulPrefetchFrac returns useful/(useful+wasted) over completed
// prefetches — Fig. 13's "useful prefetches".
func (c *Controller) UsefulPrefetchFrac() float64 {
	if c.pb == nil {
		return 0
	}
	denom := c.pb.Useful + c.pb.Wasted
	if denom == 0 {
		return 0
	}
	return float64(c.pb.Useful) / float64(denom)
}

// DelayedRegularFrac returns the fraction of regular commands delayed by
// memory-side prefetches — Fig. 13's third metric.
func (c *Controller) DelayedRegularFrac() float64 {
	total := c.stats.RegularReads + c.stats.RegularWrites
	if total == 0 {
		return 0
	}
	return float64(c.stats.DelayedRegular) / float64(total)
}
