package mc

import (
	"reflect"
	"testing"

	"asdsim/internal/mem"
)

// TestNextWakeIdleAfterDrain: once all traffic has drained, the cached
// completion minima must have been reset — a stale minimum would make an
// idle controller report a bogus wake.
func TestNextWakeIdleAfterDrain(t *testing.T) {
	h := noPF(t)
	h.read(100)
	h.run(100000)
	if h.c.Busy() {
		t.Fatal("controller still busy after drain")
	}
	if w := h.c.NextWake(h.now); w != ^uint64(0) {
		t.Errorf("drained controller NextWake = %d, want ^uint64(0)", w)
	}
}

// TestNextWakeInFlightSkipsIdleCycles: with only in-flight DRAM traffic,
// the wake jumps past the dead cycles, and stepping straight there
// completes the read at the same cycle dense stepping would.
func TestNextWakeInFlightSkipsIdleCycles(t *testing.T) {
	mk := func() (*harness, uint64) {
		h := noPF(t)
		id := h.read(100)
		// Step until the command has left the queues for DRAM.
		for i := 0; i < 16 && len(h.c.inflight) == 0; i++ {
			h.now += mem.CPUCyclesPerMCCycle
			h.c.Step(h.now)
		}
		if len(h.c.inflight) != 1 {
			t.Fatal("read never issued to DRAM")
		}
		return h, id
	}

	dense, id := mk()
	dense.run(100000)
	doneAt, ok := dense.done[id]
	if !ok {
		t.Fatal("dense harness never completed the read")
	}

	fast, id2 := mk()
	wake := fast.c.NextWake(fast.now)
	if wake == ^uint64(0) {
		t.Fatal("NextWake idle with a read in flight")
	}
	if wake <= fast.now+mem.CPUCyclesPerMCCycle {
		t.Errorf("NextWake = %d, expected to skip past cycle %d (DRAM latency is tens of cycles)",
			wake, fast.now+mem.CPUCyclesPerMCCycle)
	}
	// Jump directly to the (aligned) wake cycle, as the runner does.
	fast.now = wake - wake%mem.CPUCyclesPerMCCycle
	if fast.now < wake {
		fast.now += mem.CPUCyclesPerMCCycle
	}
	fast.c.Step(fast.now)
	fast.run(100000)
	if got := fast.done[id2]; got != doneAt {
		t.Errorf("fast-forwarded completion at %d, dense at %d", got, doneAt)
	}
}

// runFast mirrors the simulator run loop's fast-forward: step at the next
// MC cycle, or jump to the aligned NextWake cycle when that is later.
func (h *harness) runFast(maxCycles uint64) {
	limit := h.now + maxCycles
	for h.now < limit && h.c.Busy() {
		next := h.now + mem.CPUCyclesPerMCCycle
		if wake := h.c.NextWake(h.now); wake != ^uint64(0) && wake > next {
			if aligned := wake - wake%mem.CPUCyclesPerMCCycle; aligned > h.now {
				next = aligned
			}
		}
		h.now = next
		h.c.Step(h.now)
	}
}

// TestNextWakeFastForwardMatchesDenseStepping drives two identical
// controllers — one stepped every MC cycle, one using NextWake
// fast-forward — through several traffic phases (streams that trigger
// memory-side prefetching, re-reads that hit the Prefetch Buffer, and
// writes that invalidate it) and requires identical completion times and
// statistics. This pins the fast-forward guards: wakes between MC-cycle
// boundaries are aligned up, in-flight prefetches and pending PB hits
// suppress the CAQ-head jump.
func TestNextWakeFastForwardMatchesDenseStepping(t *testing.T) {
	phases := [][]struct {
		line  mem.Line
		write bool
	}{
		// Ascending stream: trains the ASD engine, stages prefetches.
		{{100, false}, {101, false}, {102, false}, {103, false}},
		// Continue the stream (likely PB hits) plus an unrelated read.
		{{104, false}, {105, false}, {300, false}},
		// Writes into the prefetched range, then more reads.
		{{106, true}, {301, false}, {107, false}},
	}

	dense := withASD(t)
	fast := withASD(t)
	for _, phase := range phases {
		for _, a := range phase {
			for _, h := range []*harness{dense, fast} {
				if a.write {
					h.write(a.line)
				} else {
					h.read(a.line)
				}
			}
		}
		dense.run(200000)
		fast.runFast(200000)
		if dense.c.Busy() || fast.c.Busy() {
			t.Fatal("harness did not drain within cycle cap")
		}
		// Both controllers are idle; align their clocks (the run loop
		// likewise jumps the MC clock across idle gaps without stepping).
		if dense.now < fast.now {
			dense.now = fast.now
		} else {
			fast.now = dense.now
		}
	}
	if !reflect.DeepEqual(dense.done, fast.done) {
		t.Errorf("completion times diverge:\ndense: %v\nfast:  %v", dense.done, fast.done)
	}
	if !reflect.DeepEqual(dense.order, fast.order) {
		t.Errorf("completion order diverges:\ndense: %v\nfast:  %v", dense.order, fast.order)
	}
	if ds, fs := dense.c.Stats(), fast.c.Stats(); !reflect.DeepEqual(ds, fs) {
		t.Errorf("stats diverge:\ndense: %+v\nfast:  %+v", ds, fs)
	}
}
