package mc

// ring is an order-preserving FIFO over a power-of-two circular buffer.
// The controller's queues are tiny (3-8 entries by configuration) and
// were previously re-sliced Go slices, where every pop-front
// (`q = q[1:]`) walked the backing array out from under its allocation
// and every mid-queue delete (`append(q[:i], q[i+1:]...)`) shifted the
// tail — both forcing periodic reallocation. The ring keeps one backing
// array for the controller's lifetime: pushes and pops are index
// arithmetic, and mid-queue deletes shift at most cap-1 elements within
// the array.
type ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // live elements
}

// newRing returns a ring with capacity for at least capHint elements.
func newRing[T any](capHint int) ring[T] {
	c := 4
	for c < capHint {
		c <<= 1
	}
	return ring[T]{buf: make([]T, c)}
}

// Len returns the number of queued elements.
func (r *ring[T]) Len() int { return r.n }

// mask converts a logical position to a buffer index.
func (r *ring[T]) mask(i int) int { return i & (len(r.buf) - 1) }

// At returns the i-th element from the front (0 = front).
func (r *ring[T]) At(i int) T { return r.buf[r.mask(r.head+i)] }

// Front returns the front element.
func (r *ring[T]) Front() T { return r.buf[r.head] }

// PushBack appends v, growing the buffer when full. Fixed-capacity
// queues never grow (admission is guarded by the configured caps); the
// unbounded inbox grows geometrically, so steady state performs no
// allocation.
func (r *ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.mask(r.head+r.n)] = v
	r.n++
}

// PopFront removes and returns the front element.
func (r *ring[T]) PopFront() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = r.mask(r.head + 1)
	r.n--
	return v
}

// RemoveAt deletes the i-th element from the front, preserving FIFO
// order of the rest, and returns it. The front portion shifts back by
// one slot — at most cap-1 moves on queues that are at most 8 deep.
func (r *ring[T]) RemoveAt(i int) T {
	v := r.At(i)
	for j := i; j > 0; j-- {
		r.buf[r.mask(r.head+j)] = r.buf[r.mask(r.head+j-1)]
	}
	var zero T
	r.buf[r.head] = zero
	r.head = r.mask(r.head + 1)
	r.n--
	return v
}

// Clear empties the ring, zeroing slots so pooled pointers are not
// retained.
func (r *ring[T]) Clear() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[r.mask(r.head+i)] = zero
	}
	r.head = 0
	r.n = 0
}

// grow doubles the buffer, relinearising the elements.
func (r *ring[T]) grow() {
	next := make([]T, len(r.buf)*2) //asd:allow hotpath-noalloc amortized ring doubling; steady state runs at stable capacity
	for i := 0; i < r.n; i++ {
		next[i] = r.At(i)
	}
	r.buf = next
	r.head = 0
}
