package mc

import (
	"testing"

	"asdsim/internal/dram"
	"asdsim/internal/mem"
)

func freshDRAM() *dram.DRAM { return dram.New(dram.DefaultConfig()) }

// cmds builds arbiter candidates with the (bank, row) decode the
// controller would have cached at admission.
func cmds(d *dram.DRAM, lines ...mem.Line) []*cmdState {
	out := make([]*cmdState, len(lines))
	for i, l := range lines {
		out[i] = &cmdState{cmd: mem.Command{Kind: mem.Read, Line: l, ID: uint64(i + 1)}, dec: d.Decode(l)}
	}
	return out
}

// cmd1 builds one decoded cmdState for arbiter-history tests.
func cmd1(d *dram.DRAM, l mem.Line, isWrite bool) *cmdState {
	return &cmdState{cmd: mem.Command{Line: l}, dec: d.Decode(l), isWrite: isWrite}
}

func TestNewArbiterKinds(t *testing.T) {
	if _, ok := newArbiter(SchedInOrder).(inOrderArbiter); !ok {
		t.Error("in-order kind")
	}
	if _, ok := newArbiter(SchedMemoryless).(memorylessArbiter); !ok {
		t.Error("memoryless kind")
	}
	if _, ok := newArbiter(SchedAHB).(*ahbArbiter); !ok {
		t.Error("ahb kind")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	newArbiter(SchedulerKind(9))
}

func TestArbitersEmptyQueue(t *testing.T) {
	d := freshDRAM()
	for _, k := range []SchedulerKind{SchedInOrder, SchedMemoryless, SchedAHB} {
		if got := newArbiter(k).pick(nil, d, 0, 0, 8); got != -1 {
			t.Errorf("%v: pick(empty) = %d", k, got)
		}
	}
}

func TestInOrderPicksOldest(t *testing.T) {
	d := freshDRAM()
	q := cmds(d, 100, 5, 30)
	q[2].cmd.ID = 0 // oldest
	if got := (inOrderArbiter{}).pick(q, d, 0, 0, 8); got != 2 {
		t.Errorf("pick = %d, want 2", got)
	}
}

func TestMemorylessSkipsBusyBank(t *testing.T) {
	d := freshDRAM()
	// Occupy bank of line 0.
	d.Issue(0, false, false, 0)
	q := cmds(d, 1, 16) // line 1 shares bank 0 (busy); line 16 is bank 1 (free)
	got := (memorylessArbiter{}).pick(q, d, 1, 0, 8)
	if got != 1 {
		t.Errorf("pick = %d, want the ready-bank command", got)
	}
}

func TestMemorylessFallsBackToOldest(t *testing.T) {
	d := freshDRAM()
	d.Issue(0, false, false, 0)
	q := cmds(d, 1, 2) // both bank 0, busy
	if got := (memorylessArbiter{}).pick(q, d, 1, 0, 8); got != 0 {
		t.Errorf("pick = %d, want oldest", got)
	}
}

func TestAHBPrefersReadyAndRowHit(t *testing.T) {
	d := freshDRAM()
	done := d.Issue(0, false, false, 0) // opens bank 0 row 0
	a := newAHB()
	// line 1: bank 0, row open (row hit + ready after completion);
	// line 512: bank 0, different row (conflict); choose at time `done`.
	q := cmds(d, 512, 1)
	if got := a.pick(q, d, done, 0, 8); got != 1 {
		t.Errorf("pick = %d, want the row-hit command", got)
	}
}

func TestAHBAvoidsHistoryBanks(t *testing.T) {
	d := freshDRAM()
	a := newAHB()
	// Record history on bank 0.
	a.issued(cmd1(d, 0, false), d)
	// Both candidates cold and ready; line 1 is bank 0 (clash), line 16
	// is bank 1 (no clash). Despite line 1 being older, the bank-spread
	// bonus should pick line 16.
	q := cmds(d, 1, 16)
	if got := a.pick(q, d, 0, 0, 8); got != 1 {
		t.Errorf("pick = %d, want the non-clashing bank", got)
	}
}

func TestAHBWriteDrainUnderPressure(t *testing.T) {
	d := freshDRAM()
	a := newAHB()
	q := cmds(d, 16, 32)
	q[1].isWrite = true
	// Write queue nearly full: the write should win despite being newer.
	if got := a.pick(q, d, 0, 7, 8); got != 1 {
		t.Errorf("pick = %d, want the write under pressure", got)
	}
	// No pressure: the read wins.
	if got := a.pick(q, d, 0, 0, 8); got != 0 {
		t.Errorf("pick = %d, want the read without pressure", got)
	}
}

func TestAHBMixAdaptation(t *testing.T) {
	d := freshDRAM()
	a := newAHB()
	// Feed a write-heavy history (>16 commands).
	for i := 0; i < 24; i++ {
		a.issued(cmd1(d, mem.Line(i*37), true), d)
	}
	q := cmds(d, 1000, 2000)
	q[0].isWrite = true
	q[1].isWrite = false
	if got := a.pick(q, d, 0, 0, 8); got != 0 {
		t.Errorf("pick = %d, want a write for a write-heavy mix", got)
	}
}

func TestAHBHistoryForgetting(t *testing.T) {
	d := freshDRAM()
	a := newAHB()
	for i := 0; i < 5000; i++ {
		a.issued(cmd1(d, mem.Line(i), false), d)
	}
	if a.reads+a.writes >= 4096 {
		t.Errorf("mix counters did not decay: %d", a.reads+a.writes)
	}
}
