package mc

import (
	"testing"

	"asdsim/internal/core"
	"asdsim/internal/dram"
	"asdsim/internal/mem"
	"asdsim/internal/prefetch"
)

// harness builds a controller plus completion capture.
type harness struct {
	c     *Controller
	d     *dram.DRAM
	done  map[uint64]uint64 // cmd ID -> completion cycle
	order []uint64
	next  uint64
	now   uint64
}

func newHarness(t *testing.T, engines []prefetch.MSEngine, adaptive *core.AdaptiveScheduler, cfg Config) *harness {
	t.Helper()
	h := &harness{d: dram.New(dram.DefaultConfig()), done: map[uint64]uint64{}}
	h.c = New(cfg, h.d, engines, adaptive)
	h.c.SetReadDone(func(cmd mem.Command, at uint64) {
		h.done[cmd.ID] = at
		h.order = append(h.order, cmd.ID)
	})
	return h
}

func (h *harness) read(line mem.Line) uint64 {
	h.next++
	h.c.Enqueue(mem.Command{Kind: mem.Read, Line: line, Arrival: h.now, ID: h.next})
	return h.next
}

func (h *harness) write(line mem.Line) uint64 {
	h.next++
	h.c.Enqueue(mem.Command{Kind: mem.Write, Line: line, Arrival: h.now, ID: h.next})
	return h.next
}

// run steps the controller until idle or maxCycles CPU cycles pass.
func (h *harness) run(maxCycles uint64) {
	limit := h.now + maxCycles
	for h.now < limit && h.c.Busy() {
		h.now += mem.CPUCyclesPerMCCycle
		h.c.Step(h.now)
	}
}

func noPF(t *testing.T) *harness { return newHarness(t, nil, nil, DefaultConfig()) }

func asdEngines(n int) []prefetch.MSEngine {
	engines := make([]prefetch.MSEngine, n)
	for i := range engines {
		engines[i] = core.NewEngine(core.DefaultConfig())
	}
	return engines
}

func withASD(t *testing.T) *harness {
	sched := core.NewAdaptiveScheduler(core.DefaultSchedulerConfig())
	return newHarness(t, asdEngines(1), sched, DefaultConfig())
}

func TestNewPanics(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad queue caps should panic")
			}
		}()
		New(Config{}, d, nil, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("engines without adaptive should panic")
			}
		}()
		New(DefaultConfig(), d, asdEngines(1), nil)
	}()
}

func TestSimpleReadCompletes(t *testing.T) {
	h := noPF(t)
	id := h.read(100)
	h.run(10000)
	at, ok := h.done[id]
	if !ok {
		t.Fatal("read never completed")
	}
	if at <= 0 || at > 1000 {
		t.Errorf("completion at %d, expected a DRAM-ish latency", at)
	}
	st := h.c.Stats()
	if st.RegularReads != 1 || st.DRAMReads != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestWritesDoNotCallback(t *testing.T) {
	h := noPF(t)
	h.write(100)
	h.read(200)
	h.run(10000)
	if len(h.done) != 1 {
		t.Errorf("callbacks = %d, want 1 (reads only)", len(h.done))
	}
	st := h.c.Stats()
	if st.RegularWrites != 1 || st.DRAMWrites != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestManyReadsAllComplete(t *testing.T) {
	h := noPF(t)
	var ids []uint64
	for i := 0; i < 50; i++ {
		ids = append(ids, h.read(mem.Line(i*37)))
	}
	h.run(1 << 20)
	if h.c.Busy() {
		t.Fatal("controller never drained")
	}
	for _, id := range ids {
		if _, ok := h.done[id]; !ok {
			t.Fatalf("read %d lost", id)
		}
	}
}

func TestBackpressureDoesNotDrop(t *testing.T) {
	h := noPF(t)
	for i := 0; i < 200; i++ {
		h.read(mem.Line(i * 11))
		h.write(mem.Line(i*11 + 5))
	}
	h.run(1 << 22)
	if h.c.Busy() {
		t.Fatal("controller stuck")
	}
	st := h.c.Stats()
	if st.RegularReads != 200 || st.RegularWrites != 200 {
		t.Errorf("lost commands: %+v", st)
	}
	if len(h.done) != 200 {
		t.Errorf("completions = %d", len(h.done))
	}
}

// Train the ASD engine with length-2 streams; after the tables roll over,
// the second line of each new stream should be covered by the prefetcher.
func trainPairs(h *harness, pairs int, base mem.Line) mem.Line {
	line := base
	for i := 0; i < pairs; i++ {
		h.read(line)
		h.run(4096)
		h.read(line + 1)
		h.run(4096)
		line += 1 << 12
	}
	return line
}

func TestASDCoversLengthTwoStreams(t *testing.T) {
	h := withASD(t)
	line := trainPairs(h, 1100, 0) // > 2000 reads: tables trained
	before := h.c.Stats()
	if before.PrefetchesToDRAM == 0 {
		t.Fatal("no prefetches ever issued during training")
	}
	// Measure coverage on fresh pairs.
	preCovered := before.PBHitsEntry + before.PBHitsLate + before.PFMergeHits
	trainPairs(h, 200, line)
	after := h.c.Stats()
	covered := after.PBHitsEntry + after.PBHitsLate + after.PFMergeHits - preCovered
	if covered < 150 {
		t.Errorf("covered %d/200 second-lines, want most", covered)
	}
	if h.c.UsefulPrefetchFrac() < 0.7 {
		t.Errorf("useful prefetch fraction = %v", h.c.UsefulPrefetchFrac())
	}
}

func TestASDQuietOnRandomTraffic(t *testing.T) {
	h := withASD(t)
	line := mem.Line(0)
	for i := 0; i < 3000; i++ {
		h.read(line)
		line += 997
		h.run(2048)
	}
	st := h.c.Stats()
	frac := float64(st.PrefetchesToDRAM) / float64(st.RegularReads)
	if frac > 0.02 {
		t.Errorf("prefetched on %.1f%% of random reads, want ~0", 100*frac)
	}
}

func TestPBWriteInvalidationPath(t *testing.T) {
	h := withASD(t)
	line := trainPairs(h, 1100, 0)
	// Start a stream; the prefetch for line+1 lands in the PB; then a
	// write to line+1 must invalidate it, and a subsequent read must go
	// to DRAM.
	h.read(line)
	h.run(8192)
	if h.c.PB().Live() == 0 {
		t.Skip("prefetch did not land in PB in time (timing-sensitive)")
	}
	h.write(line + 1)
	h.run(8192)
	dramReadsBefore := h.c.Stats().DRAMReads
	h.read(line + 1)
	h.run(8192)
	if h.c.Stats().DRAMReads == dramReadsBefore {
		t.Error("read after invalidating write was served from stale PB")
	}
}

func TestCoverageAndDelayMetricsBounded(t *testing.T) {
	h := withASD(t)
	trainPairs(h, 500, 0)
	if cov := h.c.Coverage(); cov < 0 || cov > 1 {
		t.Errorf("coverage out of range: %v", cov)
	}
	if d := h.c.DelayedRegularFrac(); d < 0 || d > 1 {
		t.Errorf("delayed fraction out of range: %v", d)
	}
}

func TestNextLineEngineCovers(t *testing.T) {
	sched := core.NewAdaptiveScheduler(core.DefaultSchedulerConfig())
	h := newHarness(t, []prefetch.MSEngine{prefetch.NewNextLine()}, sched, DefaultConfig())
	// Sequential stream: next-line should cover many reads.
	for i := 0; i < 500; i++ {
		h.read(mem.Line(i))
		h.run(4096)
	}
	st := h.c.Stats()
	covered := st.PBHitsEntry + st.PBHitsLate + st.PFMergeHits
	if covered < 300 {
		t.Errorf("next-line covered %d/500", covered)
	}
}

func TestInOrderSchedulerStillDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = SchedInOrder
	h := newHarness(t, nil, nil, cfg)
	for i := 0; i < 100; i++ {
		h.read(mem.Line(i * 13))
	}
	h.run(1 << 21)
	if h.c.Busy() || len(h.done) != 100 {
		t.Fatalf("in-order drain failed: %d done", len(h.done))
	}
}

func TestMemorylessSchedulerStillDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = SchedMemoryless
	h := newHarness(t, nil, nil, cfg)
	for i := 0; i < 100; i++ {
		h.read(mem.Line(i * 13))
		h.write(mem.Line(i*13 + 1000))
	}
	h.run(1 << 21)
	if h.c.Busy() || len(h.done) != 100 {
		t.Fatalf("memoryless drain failed: %d done", len(h.done))
	}
}

func TestAHBPrefersReadyBanks(t *testing.T) {
	// Two reads to the same bank and one to a different bank: after the
	// first issues, AHB should pick the other-bank read over the
	// same-bank one despite age order. We verify via completion order.
	h := noPF(t)
	// Default geometry: 16 lines per row, 32 banks; lines 0-15 map to
	// bank 0 row 0, line 512 to bank 0 row 1, line 16 to bank 1.
	sameA := mem.Line(0)
	sameB := mem.Line(512)
	other := mem.Line(16)
	idA := h.read(sameA)
	idB := h.read(sameB)
	idO := h.read(other)
	h.run(1 << 16)
	if h.done[idO] > h.done[idB] {
		t.Errorf("bank-blocked read finished before ready-bank read: A=%d B=%d O=%d",
			h.done[idA], h.done[idB], h.done[idO])
	}
}

func TestNextWakeIdleAndBusy(t *testing.T) {
	h := noPF(t)
	if h.c.NextWake(0) != ^uint64(0) {
		t.Error("idle controller should report no wake")
	}
	h.read(5)
	if h.c.NextWake(0) != mem.CPUCyclesPerMCCycle {
		t.Errorf("queued work should wake next MC cycle, got %d", h.c.NextWake(0))
	}
	h.run(40) // a few cycles: command now in flight
	if h.c.Busy() {
		w := h.c.NextWake(h.now)
		if w == ^uint64(0) {
			t.Error("in-flight work should report a wake time")
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if SchedInOrder.String() != "in-order" || SchedMemoryless.String() != "memoryless" || SchedAHB.String() != "ahb" {
		t.Error("scheduler kind strings wrong")
	}
	if SchedulerKind(9).String() != "sched(9)" {
		t.Error("unknown kind string")
	}
}

func TestReadLatencyAccounting(t *testing.T) {
	h := noPF(t)
	h.read(100)
	h.run(10000)
	st := h.c.Stats()
	if st.ReadLatencySum == 0 {
		t.Fatal("latency sum empty")
	}
	avg := st.ReadLatencySum / st.DRAMReads
	if avg < 50 || avg > 2000 {
		t.Errorf("avg demand latency = %d cycles, outside plausible band", avg)
	}
}

func TestFlushLPQDropsStragglers(t *testing.T) {
	h := withASD(t)
	trainPairs(h, 1100, 0)
	// Start a new stream so a prefetch is nominated, then flush before
	// letting it issue.
	h.read(1 << 30)
	h.now += mem.CPUCyclesPerMCCycle
	h.c.Step(h.now) // drains inbox, nominates into LPQ
	before := h.c.Stats()
	h.c.FlushLPQ()
	after := h.c.Stats()
	if after.LPQDrops < before.LPQDrops {
		t.Error("FlushLPQ must not lose drop accounting")
	}
	h.run(1 << 20)
	if h.c.Busy() {
		t.Error("controller should drain fully after FlushLPQ")
	}
}

func TestDemandSquashesQueuedPrefetch(t *testing.T) {
	h := withASD(t)
	line := trainPairs(h, 1100, 0)
	// Read the first element of a fresh stream: a prefetch for line+1
	// is nominated. Immediately read line+1 before stepping enough for
	// the prefetch to issue: the LPQ entry must be squashed, not raced.
	h.read(line)
	h.now += mem.CPUCyclesPerMCCycle
	h.c.Step(h.now)
	h.read(line + 1)
	h.run(1 << 20)
	st := h.c.Stats()
	// Conservation must hold (no double service).
	served := st.DRAMReads + st.PBHitsEntry + st.PBHitsLate + st.PFMergeHits
	if served != st.RegularReads {
		t.Errorf("conservation: reads=%d served=%d", st.RegularReads, served)
	}
}
