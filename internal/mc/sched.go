package mc

import "fmt"

// SchedulerKind selects the Reorder-Queue-to-CAQ scheduling algorithm
// (the "Scheduler" box of the paper's Figs. 1 and 4). The paper's results
// use the Adaptive History-Based (AHB) scheduler and §5.3 studies the
// simpler in-order and memoryless schedulers.
type SchedulerKind int

// The three schedulers of §5.3.
const (
	// SchedInOrder issues commands in strict arrival order, even when
	// the head's bank is busy.
	SchedInOrder SchedulerKind = iota
	// SchedMemoryless picks the oldest command whose bank is ready,
	// falling back to the oldest overall.
	SchedMemoryless
	// SchedAHB approximates the Adaptive History-Based scheduler of Hur
	// and Lin (MICRO 2004): it weighs bank readiness, open-row hits and
	// the read/write mix before age.
	SchedAHB
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case SchedInOrder:
		return "in-order"
	case SchedMemoryless:
		return "memoryless"
	case SchedAHB:
		return "ahb"
	default:
		return fmt.Sprintf("sched(%d)", int(k))
	}
}

// oldestIndex returns the index of the command with the smallest ID.
// (The merged view the arbiters see is reads-then-writes, not global
// arrival order, so the oldest command is not necessarily at index 0.)
func oldestIndex(queue []*cmdState) int {
	best := 0
	for i := 1; i < len(queue); i++ {
		if queue[i].cmd.ID < queue[best].cmd.ID {
			best = i
		}
	}
	return best
}
