package core

import (
	"fmt"

	"asdsim/internal/obs"
)

// Policy is one of the five prefetch-priority policies of §3.5, in order
// of decreasing conservativeness. The Final Scheduler may issue a command
// from the Low Priority Queue only when the active policy's condition
// holds.
type Policy int

// The five policies, §3.5, most conservative first.
const (
	// PolicyIdleSystem: CAQ empty and Reorder Queues empty.
	PolicyIdleSystem Policy = 1
	// PolicyNoIssuable: CAQ empty and the Reorder Queues hold no
	// issuable commands.
	PolicyNoIssuable Policy = 2
	// PolicyCAQEmpty: CAQ empty.
	PolicyCAQEmpty Policy = 3
	// PolicyCAQAlmostEmpty: CAQ has at most one entry and the LPQ is
	// full.
	PolicyCAQAlmostEmpty Policy = 4
	// PolicyTimestamp: the first LPQ entry is older than the first CAQ
	// entry.
	PolicyTimestamp Policy = 5
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyIdleSystem:
		return "idle-system"
	case PolicyNoIssuable:
		return "no-issuable"
	case PolicyCAQEmpty:
		return "caq-empty"
	case PolicyCAQAlmostEmpty:
		return "caq-almost-empty"
	case PolicyTimestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// QueueState is the memory-controller snapshot a policy decision needs.
type QueueState struct {
	CAQLen             int
	ReorderLen         int
	ReorderHasIssuable bool
	LPQLen             int
	LPQCap             int
	// Arrival timestamps of the queue heads (CPU cycles); valid only
	// when the corresponding queue is non-empty.
	LPQHeadArrival uint64
	CAQHeadArrival uint64
}

// Allows reports whether policy p permits issuing the head of the LPQ
// given the queue state st. The LPQ must be non-empty. The policies are
// cumulative: each less-conservative policy also issues whenever any
// more-conservative one would, which realises the paper's "in order of
// decreasing conservativeness" ordering for every queue state.
//
//asd:hotpath
func (p Policy) Allows(st QueueState) bool {
	if st.LPQLen == 0 || p < PolicyIdleSystem {
		return false
	}
	if st.CAQLen == 0 && st.ReorderLen == 0 {
		return true // condition (1)
	}
	if p >= PolicyNoIssuable && st.CAQLen == 0 && !st.ReorderHasIssuable {
		return true // condition (2)
	}
	if p >= PolicyCAQEmpty && st.CAQLen == 0 {
		return true // condition (3)
	}
	if p >= PolicyCAQAlmostEmpty && st.CAQLen <= 1 && st.LPQLen >= st.LPQCap {
		return true // condition (4)
	}
	if p >= PolicyTimestamp && (st.CAQLen == 0 || st.LPQHeadArrival < st.CAQHeadArrival) {
		return true // condition (5)
	}
	return false
}

// SchedulerConfig parameterises the adaptive policy selector.
type SchedulerConfig struct {
	// EpochReads matches the ASD epoch (§3.5: "the policy is adjusted
	// using the same epoch size that is used to compute Stream Length
	// Histograms").
	EpochReads int
	// RaiseThreshold: at an epoch boundary, conflict counts at or above
	// this move the policy one step more conservative.
	RaiseThreshold int
	// LowerThreshold: conflict counts at or below this move the policy
	// one step less conservative.
	LowerThreshold int
	// Fixed pins the scheduler to one policy (disables adaptation);
	// zero means adaptive. Figure 11's ablation uses this.
	Fixed Policy
}

// DefaultSchedulerConfig returns thresholds scaled to the paper's
// 2000-read epoch: more than 1% of reads conflicting tightens the policy,
// under 0.25% loosens it.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{EpochReads: 2000, RaiseThreshold: 20, LowerThreshold: 5}
}

// AdaptiveScheduler selects among the five policies using the per-epoch
// count of regular commands delayed by previously issued prefetches.
type AdaptiveScheduler struct {
	cfg      SchedulerConfig
	policy   Policy
	reads    int
	conflict int

	// PolicyEpochs counts epochs spent in each policy (index 1..5).
	PolicyEpochs [6]uint64
	// TotalConflicts accumulates across the run.
	TotalConflicts uint64

	bus *obs.Bus // nil when no observer is attached
}

// NewAdaptiveScheduler returns a scheduler; adaptive mode starts at the
// most conservative policy and loosens as evidence allows.
func NewAdaptiveScheduler(cfg SchedulerConfig) *AdaptiveScheduler {
	if cfg.EpochReads <= 0 {
		panic(fmt.Sprintf("core: EpochReads must be positive, got %d", cfg.EpochReads))
	}
	if cfg.Fixed != 0 && (cfg.Fixed < PolicyIdleSystem || cfg.Fixed > PolicyTimestamp) {
		panic(fmt.Sprintf("core: invalid fixed policy %d", cfg.Fixed))
	}
	s := &AdaptiveScheduler{cfg: cfg, policy: PolicyIdleSystem}
	if cfg.Fixed != 0 {
		s.policy = cfg.Fixed
	}
	return s
}

// Policy returns the active policy.
//
//asd:hotpath
func (s *AdaptiveScheduler) Policy() Policy { return s.policy }

// SetObserver attaches a probe bus (nil detaches).
func (s *AdaptiveScheduler) SetObserver(b *obs.Bus) { s.bus = b }

// OnConflict records that a regular command in the Reorder Queues could
// not proceed because it conflicted with a previously issued prefetch.
//
//asd:hotpath
func (s *AdaptiveScheduler) OnConflict() {
	s.conflict++
	s.TotalConflicts++
}

// OnRead advances the epoch clock by one Read command (observed at CPU
// cycle now); at each epoch boundary the policy is re-evaluated.
//
//asd:hotpath
func (s *AdaptiveScheduler) OnRead(now uint64) {
	s.reads++
	if s.reads < s.cfg.EpochReads {
		return
	}
	s.PolicyEpochs[s.policy]++
	prev := s.policy
	if s.cfg.Fixed == 0 {
		switch {
		case s.conflict >= s.cfg.RaiseThreshold && s.policy > PolicyIdleSystem:
			s.policy--
		case s.conflict <= s.cfg.LowerThreshold && s.policy < PolicyTimestamp:
			s.policy++
		}
	}
	if s.bus != nil {
		s.bus.Emit(obs.Event{Kind: obs.KindSchedPolicy, Cycle: now,
			V1: int64(s.policy), V2: int64(s.conflict), V3: int64(prev)})
	}
	s.reads = 0
	s.conflict = 0
}
