// Package core implements the paper's primary contribution: Adaptive
// Stream Detection (§3.1–§3.4) — a prefetch engine that modulates stream
// prefetching aggressiveness with dynamically gathered Stream Length
// Histograms — and Adaptive Scheduling (§3.5), which selects among five
// prefetch-priority policies using memory-system conflict feedback.
package core

import (
	"fmt"

	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/obs/prov"
	"asdsim/internal/slh"
	"asdsim/internal/stats"
	"asdsim/internal/stream"
)

// Config parameterises one ASD engine (one hardware thread's worth of
// detection state; the paper replicates this per thread).
type Config struct {
	Filter stream.Config
	SLH    slh.Config
	// MaxDegree bounds multi-line prefetching via inequality (6).
	// Degree 1 reproduces the paper's evaluated configuration; the paper
	// describes but does not evaluate higher degrees.
	MaxDegree int
	// KeepHistory retains every epoch's reads-weighted SLH (Fig. 3
	// plots per-epoch histograms); off by default to keep runs lean.
	KeepHistory bool
}

// DefaultConfig returns the paper's evaluated configuration: an 8-slot
// Stream Filter, 16-entry LHT pairs per direction, 2000-read epochs,
// single-line prefetch.
func DefaultConfig() Config {
	return Config{
		Filter:    stream.DefaultConfig(),
		SLH:       slh.DefaultConfig(),
		MaxDegree: 1,
	}
}

// Engine is one thread's Adaptive Stream Detection unit: a Stream Filter
// feeding per-direction Likelihood Table pairs, with epoch rollover.
type Engine struct {
	cfg    Config
	filter *stream.Filter
	up     *slh.Table
	down   *slh.Table

	readsInEpoch int

	// ApproxLengths accumulates the filter-approximated stream-length
	// distribution over the whole run (one observation per stream, as
	// the finite filter saw them); Fig. 16 compares this against ground
	// truth.
	ApproxLengths *stats.Histogram

	// epochAccum gathers the current epoch's reads-weighted SLH;
	// lastEpochSLH snapshots it at each boundary (paper Figs. 2 and 3
	// plot exactly this).
	epochAccum   *stats.Histogram
	lastEpochSLH *stats.Histogram
	history      []*stats.Histogram

	// PrefetchDecisions and PrefetchesIssued count decision outcomes.
	PrefetchDecisions uint64
	PrefetchesIssued  uint64

	bus *obs.Bus // nil when no observer is attached

	// prov records prefetch provenance when attached (nil otherwise);
	// thread identifies this engine in the shared recorder.
	prov   *prov.Recorder
	thread int32

	out []mem.Line // reusable nomination scratch
}

// NewEngine returns an Engine for cfg.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxDegree < 1 {
		panic(fmt.Sprintf("core: MaxDegree must be >= 1, got %d", cfg.MaxDegree))
	}
	e := &Engine{
		cfg:           cfg,
		up:            slh.New(cfg.SLH),
		down:          slh.New(cfg.SLH),
		ApproxLengths: stats.NewHistogram(cfg.SLH.MaxLength),
		epochAccum:    stats.NewHistogram(cfg.SLH.MaxLength),
		lastEpochSLH:  stats.NewHistogram(cfg.SLH.MaxLength),
	}
	e.filter = stream.NewFilter(cfg.Filter, e.onStreamEnd)
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetObserver attaches a probe bus (nil detaches).
func (e *Engine) SetObserver(b *obs.Bus) { e.bus = b }

// SetProv attaches a provenance recorder (nil detaches) identifying
// this engine as thread. It wires the stream filter's slot-lifecycle
// hook through to the recorder; attach before the run starts.
func (e *Engine) SetProv(r *prov.Recorder, thread int32) {
	e.prov = r
	e.thread = thread
	if r == nil {
		e.filter.SetSlotHook(nil)
		return
	}
	e.filter.SetSlotHook(func(op stream.SlotOp, now uint64, line mem.Line, length int, dir mem.Direction) {
		var pop prov.Op
		switch op {
		case stream.SlotBirth:
			pop = prov.OpSlotBirth
		case stream.SlotExtend:
			pop = prov.OpSlotExtend
		case stream.SlotEnd:
			pop = prov.OpSlotEnd
		default:
			return
		}
		r.OnSlot(thread, pop, now, line, length, int8(dir))
	})
}

// onStreamEnd routes a completed stream into the direction's LHT pair.
// A length-1 stream has no direction (the Stream Filter only commits to
// Negative on the second access, §3.3), so singles are folded into both
// tables: each direction's lht(1) then correctly counts "reads that did
// not continue in this direction", keeping inequality (5) conservative on
// stream-free traffic in both directions.
//
//asd:hotpath
func (e *Engine) onStreamEnd(length int, dir mem.Direction) {
	if length == 1 {
		e.up.StreamEnded(1)
		e.down.StreamEnded(1)
	} else if dir == mem.Down {
		e.down.StreamEnded(length)
	} else {
		e.up.StreamEnded(length)
	}
	e.ApproxLengths.Observe(length)
	e.epochAccum.ObserveN(length, uint64(length))
}

// ObserveRead presents one demand Read (line, at CPU cycle now) to the
// engine and returns the lines to prefetch (possibly none). The decision
// follows §3.4: the Stream Filter classifies the Read as the k-th element
// of a stream; inequality (5)/(6) against the direction's LHTcurr decides
// whether and how far to prefetch. The returned slice aliases a scratch
// buffer owned by the engine and is valid only until the next call.
//
//asd:hotpath
func (e *Engine) ObserveRead(line mem.Line, now uint64) []mem.Line {
	o := e.filter.Observe(line, now)
	e.readsInEpoch++
	if e.readsInEpoch >= e.cfg.SLH.EpochLen {
		e.rollEpoch(now)
	}
	if !o.Tracked {
		// Filter overflow: the SLH was updated as if a length-1 stream
		// were seen, but no prefetch is generated (§3.3).
		return nil
	}
	e.PrefetchDecisions++
	// A new stream's direction is initialized Positive (§3.3), so the
	// k=1 decision consults the ascending table only; the descending
	// table takes over once the second access commits the direction.
	out := e.out[:0]
	tbl := e.up
	if o.Length > 1 && o.Dir == mem.Down {
		tbl = e.down
	}
	if d := tbl.PrefetchDegree(o.Length, e.cfg.MaxDegree); d > 0 {
		out = appendRun(out, line, int(o.Dir), d)
		if e.prov != nil {
			lhtK, lhtKm := tbl.Witness(o.Length, d)
			e.prov.OnDecision(e.thread, now, line, tbl == e.down, o.Length, d, lhtK, lhtKm)
		}
	}
	e.out = out
	e.PrefetchesIssued += uint64(len(out))
	if e.bus != nil {
		e.bus.Emit(obs.Event{Kind: obs.KindASDPrefetchDecision, Cycle: now, Line: line,
			V1: int64(o.Length), V2: int64(len(out))})
	}
	return out
}

// appendRun appends degree lines starting one step from line in dir.
func appendRun(out []mem.Line, line mem.Line, dir, degree int) []mem.Line {
	for i := 1; i <= degree; i++ {
		out = append(out, line.Next(dir*i))
	}
	return out
}

// Tick lets the engine retire expired streams on quiet channels.
//
//asd:hotpath
func (e *Engine) Tick(now uint64) { e.filter.Tick(now) }

// rollEpoch flushes the filter (folding live streams into LHTnext) and
// rolls both directions' tables.
//
//asd:allow hotpath-noalloc epoch roll runs once per EpochLen stream-ends, off the per-cycle path, and snapshots the SLH
func (e *Engine) rollEpoch(now uint64) {
	e.filter.FlushEpoch()
	if e.prov != nil {
		// After the flush (live streams folded into LHTnext), before the
		// rollover: the snapshot's Curr decided the ending epoch, Next is
		// what EpochEnd installs for the one beginning.
		e.prov.OnEpochRoll(e.thread, now, e.up.Epochs+1, e.up, e.down)
	}
	e.up.EpochEnd()
	e.down.EpochEnd()
	e.readsInEpoch = 0
	e.lastEpochSLH = e.epochAccum.Clone()
	if e.cfg.KeepHistory {
		e.history = append(e.history, e.lastEpochSLH.Clone())
	}
	e.epochAccum.Reset()
	if e.bus != nil {
		e.bus.Emit(obs.Event{Kind: obs.KindASDEpochRoll, Cycle: now, V1: int64(e.up.Epochs)})
	}
}

// EpochHistory returns the per-epoch SLHs collected so far (empty unless
// Config.KeepHistory is set).
func (e *Engine) EpochHistory() []*stats.Histogram { return e.history }

// Epochs returns the number of completed epochs.
func (e *Engine) Epochs() uint64 { return e.up.Epochs }

// SLHUp and SLHDown expose the direction tables for reporting.
func (e *Engine) SLHUp() *slh.Table { return e.up }

// SLHDown returns the descending-direction table.
func (e *Engine) SLHDown() *slh.Table { return e.down }

// Filter exposes the stream filter (reporting/tests).
func (e *Engine) Filter() *stream.Filter { return e.filter }

// LastEpochSLH returns the reads-weighted Stream Length Histogram of the
// most recently completed epoch — what the paper's Figs. 2 and 3 plot.
func (e *Engine) LastEpochSLH() *stats.Histogram { return e.lastEpochSLH.Clone() }
