package core

import "testing"

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyIdleSystem:     "idle-system",
		PolicyNoIssuable:     "no-issuable",
		PolicyCAQEmpty:       "caq-empty",
		PolicyCAQAlmostEmpty: "caq-almost-empty",
		PolicyTimestamp:      "timestamp",
		Policy(9):            "policy(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestPolicyAllowsEmptyLPQ(t *testing.T) {
	st := QueueState{LPQLen: 0}
	for p := PolicyIdleSystem; p <= PolicyTimestamp; p++ {
		if p.Allows(st) {
			t.Errorf("%v allowed issue from empty LPQ", p)
		}
	}
}

func TestPolicyOrderingIsMonotone(t *testing.T) {
	// Policies are cumulative, so for EVERY state, anything a more
	// conservative policy allows is allowed by all less conservative
	// ones. Sweep a grid of states.
	var states []QueueState
	for caq := 0; caq <= 3; caq++ {
		for reorder := 0; reorder <= 2; reorder++ {
			for lpq := 1; lpq <= 3; lpq++ {
				for _, iss := range []bool{false, true} {
					states = append(states, QueueState{
						CAQLen: caq, ReorderLen: reorder, ReorderHasIssuable: iss,
						LPQLen: lpq, LPQCap: 3, LPQHeadArrival: 5, CAQHeadArrival: 10,
					})
				}
			}
		}
	}
	for i, st := range states {
		prev := false
		for p := PolicyIdleSystem; p <= PolicyTimestamp; p++ {
			cur := p.Allows(st)
			if prev && !cur {
				t.Errorf("state %d (%+v): %v denies what %v allowed", i, st, p, p-1)
			}
			prev = cur
		}
	}
}

func TestPolicySemantics(t *testing.T) {
	// Policy 1: everything empty.
	idle := QueueState{LPQLen: 1, LPQCap: 3}
	if !PolicyIdleSystem.Allows(idle) {
		t.Error("policy 1 should allow on an idle system")
	}
	busyReorder := idle
	busyReorder.ReorderLen = 1
	if PolicyIdleSystem.Allows(busyReorder) {
		t.Error("policy 1 must block with a busy reorder queue")
	}
	// Policy 2: CAQ empty and nothing issuable.
	if !PolicyNoIssuable.Allows(busyReorder) {
		t.Error("policy 2 should allow when reorder commands are stuck")
	}
	issuable := busyReorder
	issuable.ReorderHasIssuable = true
	if PolicyNoIssuable.Allows(issuable) {
		t.Error("policy 2 must block with issuable demand commands")
	}
	// Policy 3: CAQ empty regardless of reorder state.
	if !PolicyCAQEmpty.Allows(issuable) {
		t.Error("policy 3 should allow when CAQ is empty")
	}
	caqBusy := issuable
	caqBusy.CAQLen = 1
	if PolicyCAQEmpty.Allows(caqBusy) {
		t.Error("policy 3 must block with non-empty CAQ")
	}
	// Policy 4 adds the CAQ<=1-and-LPQ-full condition on top of 1-3.
	full := caqBusy
	full.LPQLen, full.LPQCap = 3, 3
	if !PolicyCAQAlmostEmpty.Allows(full) {
		t.Error("policy 4 should allow with CAQ=1 and full LPQ")
	}
	notFull := full
	notFull.LPQLen = 2
	if PolicyCAQAlmostEmpty.Allows(notFull) {
		t.Error("policy 4 must block when LPQ is not full and CAQ busy")
	}
	caq2 := full
	caq2.CAQLen = 2
	if PolicyCAQAlmostEmpty.Allows(caq2) {
		t.Error("policy 4 must block with CAQ > 1")
	}
	// Policy 5 adds the timestamp condition.
	ts := QueueState{LPQLen: 1, LPQCap: 3, CAQLen: 2, LPQHeadArrival: 5, CAQHeadArrival: 10}
	if !PolicyTimestamp.Allows(ts) {
		t.Error("policy 5 should allow older LPQ head")
	}
	ts.LPQHeadArrival = 20
	if PolicyTimestamp.Allows(ts) {
		t.Error("policy 5 must block younger LPQ head")
	}
	ts.CAQLen = 0
	if !PolicyTimestamp.Allows(ts) {
		t.Error("policy 5 should allow with empty CAQ")
	}
}

func TestNewAdaptiveSchedulerPanics(t *testing.T) {
	for name, cfg := range map[string]SchedulerConfig{
		"epoch": {EpochReads: 0},
		"fixed": {EpochReads: 100, Fixed: Policy(7)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewAdaptiveScheduler(cfg)
		}()
	}
}

func TestAdaptiveLoosensWhenQuiet(t *testing.T) {
	s := NewAdaptiveScheduler(SchedulerConfig{EpochReads: 10, RaiseThreshold: 5, LowerThreshold: 1})
	if s.Policy() != PolicyIdleSystem {
		t.Fatalf("start policy = %v", s.Policy())
	}
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 10; i++ {
			s.OnRead(0)
		}
	}
	if s.Policy() != PolicyTimestamp {
		t.Errorf("policy after quiet epochs = %v, want timestamp", s.Policy())
	}
}

func TestAdaptiveTightensOnConflicts(t *testing.T) {
	s := NewAdaptiveScheduler(SchedulerConfig{EpochReads: 10, RaiseThreshold: 3, LowerThreshold: 0})
	// Loosen two steps first.
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < 10; i++ {
			s.OnRead(0)
		}
	}
	if s.Policy() != PolicyCAQEmpty {
		t.Fatalf("policy = %v, want caq-empty", s.Policy())
	}
	// Now a conflict-heavy epoch tightens.
	for i := 0; i < 5; i++ {
		s.OnConflict()
	}
	for i := 0; i < 10; i++ {
		s.OnRead(0)
	}
	if s.Policy() != PolicyNoIssuable {
		t.Errorf("policy = %v, want no-issuable after conflicts", s.Policy())
	}
	if s.TotalConflicts != 5 {
		t.Errorf("TotalConflicts = %d", s.TotalConflicts)
	}
}

func TestAdaptiveSaturatesAtBounds(t *testing.T) {
	s := NewAdaptiveScheduler(SchedulerConfig{EpochReads: 5, RaiseThreshold: 1, LowerThreshold: 0})
	// Conflicts forever: policy pinned at most conservative.
	for e := 0; e < 10; e++ {
		s.OnConflict()
		for i := 0; i < 5; i++ {
			s.OnRead(0)
		}
	}
	if s.Policy() != PolicyIdleSystem {
		t.Errorf("policy = %v, want idle-system", s.Policy())
	}
}

func TestFixedPolicyNeverMoves(t *testing.T) {
	s := NewAdaptiveScheduler(SchedulerConfig{EpochReads: 5, RaiseThreshold: 1, LowerThreshold: 10, Fixed: PolicyCAQEmpty})
	for e := 0; e < 10; e++ {
		for i := 0; i < 5; i++ {
			s.OnRead(0)
		}
	}
	if s.Policy() != PolicyCAQEmpty {
		t.Errorf("fixed policy moved to %v", s.Policy())
	}
}

func TestPolicyEpochsAccounting(t *testing.T) {
	s := NewAdaptiveScheduler(SchedulerConfig{EpochReads: 2, RaiseThreshold: 100, LowerThreshold: -1})
	for i := 0; i < 6; i++ { // 3 epochs, no adaptation (lower=-1 unreachable)
		s.OnRead(0)
	}
	if s.PolicyEpochs[PolicyIdleSystem] != 3 {
		t.Errorf("PolicyEpochs = %v", s.PolicyEpochs)
	}
}
