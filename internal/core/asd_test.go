package core

import (
	"testing"

	"asdsim/internal/mem"
	"asdsim/internal/slh"
	"asdsim/internal/stream"
)

// smallCfg uses a 64-cycle lifetime; tests space reads 32 cycles apart so
// a finished stream's slot frees after ~2 further reads, as it would in a
// real memory controller.
func smallCfg() Config {
	return Config{
		Filter:    stream.Config{Slots: 8, Lifetime: 64},
		SLH:       slh.Config{MaxLength: 16, EpochLen: 100},
		MaxDegree: 1,
	}
}

const step = 32

func TestNewEnginePanics(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxDegree = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic for MaxDegree 0")
		}
	}()
	NewEngine(cfg)
}

// Feed two epochs of pure length-2 streams: in the third epoch the engine
// must prefetch after the first element and stop after the second —
// exactly the behaviour the paper's introduction motivates (a k=2
// fixed-policy prefetcher would waste 50% of its prefetches here).
func TestEngineLearnsLengthTwoStreams(t *testing.T) {
	cfg := smallCfg()
	e := NewEngine(cfg)
	now := uint64(0)
	line := mem.Line(0)
	// 100 reads per epoch = 50 length-2 streams per epoch; run 2 epochs
	// to fill LHTnext then roll it into LHTcurr.
	emit := func() (first, second []mem.Line) {
		first = e.ObserveRead(line, now)
		now += step
		second = e.ObserveRead(line+1, now)
		now += step
		line += 1000 // far away: next pair is a new stream
		return
	}
	for i := 0; i < 100; i++ {
		emit()
	}
	if e.Epochs() < 1 {
		t.Fatal("no epoch completed")
	}
	var prefFirst, prefSecond int
	for i := 0; i < 50; i++ {
		f, s := emit()
		prefFirst += len(f)
		prefSecond += len(s)
	}
	if prefFirst < 45 {
		t.Errorf("prefetch after 1st element fired %d/50 times, want ~50", prefFirst)
	}
	if prefSecond != 0 {
		t.Errorf("prefetch after 2nd element fired %d times, want 0", prefSecond)
	}
}

// With pure length-1 (random) traffic the engine must learn to stay
// quiet: no prefetches at all once trained.
func TestEngineSuppressesOnRandomTraffic(t *testing.T) {
	e := NewEngine(smallCfg())
	now := uint64(0)
	line := mem.Line(0)
	issue := 0
	for i := 0; i < 400; i++ {
		got := e.ObserveRead(line, now)
		if i >= 200 {
			issue += len(got)
		}
		line += 777 // never adjacent
		now += step
	}
	if issue != 0 {
		t.Errorf("engine issued %d prefetches on streamless traffic", issue)
	}
}

// Long ascending streams: after training, nearly every read should pull
// the next line.
func TestEngineLongStreams(t *testing.T) {
	e := NewEngine(smallCfg())
	now := uint64(0)
	base := mem.Line(0)
	run := func(count int) (issued int) {
		for i := 0; i < count; i++ {
			for j := 0; j < 50; j++ { // one length-50 stream
				got := e.ObserveRead(base+mem.Line(j), now)
				issued += len(got)
				now += step
			}
			base += 100000
		}
		return
	}
	run(4) // train 2 epochs
	issued := run(4)
	if issued < 150 { // 200 reads, want the vast majority prefetched
		t.Errorf("long-stream prefetches = %d/200", issued)
	}
}

// Descending length-3 streams: the k=1 decision consults the ascending
// table (direction still unknown, initialized Positive per §3.3), but
// once the direction commits at k=2 the descending table drives
// downward prefetches.
func TestEngineDescendingStreamPrefetchesDownward(t *testing.T) {
	e := NewEngine(smallCfg())
	now := uint64(0)
	base := mem.Line(1 << 20)
	emit := func() (second []mem.Line) {
		e.ObserveRead(base, now)
		second = e.ObserveRead(base-1, now+step)
		e.ObserveRead(base-2, now+2*step)
		base -= 1000
		now += 3 * step
		return
	}
	for i := 0; i < 300; i++ { // train
		emit()
	}
	got := emit()
	if len(got) != 1 || got[0] != base+1000-2 {
		t.Errorf("k=2 downward prefetch = %v, want [%d]", got, base+1000-2)
	}
}

func TestEngineUntrackedReadNoPrefetch(t *testing.T) {
	cfg := smallCfg()
	cfg.Filter.Slots = 1
	e := NewEngine(cfg)
	// Fill the single slot, then present an unrelated read.
	e.ObserveRead(10, 0)
	got := e.ObserveRead(9999, 1)
	if got != nil {
		t.Errorf("untracked read prefetched %v", got)
	}
}

func TestEngineMultiDegree(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxDegree = 4
	e := NewEngine(cfg)
	now := uint64(0)
	base := mem.Line(0)
	for i := 0; i < 5; i++ { // long streams across epochs
		for j := 0; j < 50; j++ {
			e.ObserveRead(base+mem.Line(j), now)
			now += step
		}
		base += 100000
	}
	got := e.ObserveRead(base, now)
	if len(got) != 4 {
		t.Fatalf("degree = %d, want 4", len(got))
	}
	for i, l := range got {
		if l != base+mem.Line(i+1) {
			t.Errorf("prefetch %d = %d, want %d", i, l, base+mem.Line(i+1))
		}
	}
}

func TestEngineEpochRollsAtEpochLen(t *testing.T) {
	e := NewEngine(smallCfg())
	for i := 0; i < 99; i++ {
		e.ObserveRead(mem.Line(i*100), uint64(i))
	}
	if e.Epochs() != 0 {
		t.Fatalf("epoch rolled early: %d", e.Epochs())
	}
	e.ObserveRead(mem.Line(999999), 100)
	if e.Epochs() != 1 {
		t.Fatalf("epoch did not roll at 100 reads: %d", e.Epochs())
	}
}

func TestEngineApproxLengthsAccumulate(t *testing.T) {
	e := NewEngine(smallCfg())
	for i := 0; i < 100; i++ {
		e.ObserveRead(mem.Line(i*50), uint64(i)) // singles
	}
	if e.ApproxLengths.Total() == 0 {
		t.Error("ApproxLengths empty after an epoch flush")
	}
	if e.ApproxLengths.Frac(1) < 0.9 {
		t.Errorf("singles should dominate: %v", e.ApproxLengths)
	}
}

func TestLastEpochSLH(t *testing.T) {
	e := NewEngine(smallCfg())
	// One epoch of ascending pairs and descending pairs.
	now := uint64(0)
	up, down := mem.Line(0), mem.Line(1<<20)
	for i := 0; i < 25; i++ {
		e.ObserveRead(up, now)
		e.ObserveRead(up+1, now+step)
		e.ObserveRead(down, now+2*step)
		e.ObserveRead(down-1, now+3*step)
		up += 1000
		down -= 1000
		now += 4 * step
	}
	h := e.LastEpochSLH()
	if h.Total() == 0 {
		t.Fatal("epoch SLH empty")
	}
	if h.Frac(2) < 0.9 {
		t.Errorf("length-2 mass = %v, want ~1.0: %v", h.Frac(2), h)
	}
}

func TestEngineTickExpiresStreams(t *testing.T) {
	cfg := smallCfg()
	cfg.Filter.Lifetime = 100
	e := NewEngine(cfg)
	e.ObserveRead(5, 0)
	e.Tick(1000)
	if e.Filter().Live() != 0 {
		t.Error("Tick did not expire the stream")
	}
	if e.ApproxLengths.Total() != 1 {
		t.Error("expired stream not recorded")
	}
}
