package slh

import (
	"math"
	"testing"
	"testing/quick"
)

// paperLHT is an lht() vector consistent with the paper's Fig. 2 worked
// example: 21.8% of Reads in streams of length 1, 43.7% in length 2, and
// the prose conclusion "prefetches should be issued for any Read request
// whose current stream length is 3 or greater than 6".
var paperLHT = []uint32{1000, 782, 345, 285, 135, 65, 30, 25, 22, 19, 16, 13, 11, 9, 7, 5}

func paperTable(t *testing.T) *Table {
	t.Helper()
	tbl := New(DefaultConfig())
	tbl.LoadCurr(paperLHT)
	return tbl
}

func TestNewPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"maxlen": {MaxLength: 1, EpochLen: 100},
		"epoch":  {MaxLength: 16, EpochLen: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPaperWorkedExampleDecisions(t *testing.T) {
	tbl := paperTable(t)
	want := map[int]bool{
		1: true,  // 21.8% length-1 vs 78.2% longer: prefetch
		2: false, // 43.7% exactly-2 beats 34.5% longer: stop
		3: true,
		4: false,
		5: false,
		6: false,
	}
	for k := 7; k <= 16; k++ {
		want[k] = true // "... or greater than 6"
	}
	for k, w := range want {
		if got := tbl.ShouldPrefetch(k); got != w {
			t.Errorf("ShouldPrefetch(%d) = %v, want %v", k, got, w)
		}
	}
}

func TestPaperExampleProbabilities(t *testing.T) {
	tbl := paperTable(t)
	if got := tbl.P(1, 1); math.Abs(got-0.218) > 1e-9 {
		t.Errorf("P(1,1) = %v, want 0.218", got)
	}
	if got := tbl.P(2, 2); math.Abs(got-0.437) > 1e-9 {
		t.Errorf("P(2,2) = %v, want 0.437", got)
	}
	if got := tbl.P(2, 16); math.Abs(got-0.782) > 1e-9 {
		t.Errorf("P(2,16) = %v, want 0.782", got)
	}
	if got := tbl.P(1, 16); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("P(1,16) = %v, want 1", got)
	}
}

func TestPEdgeCases(t *testing.T) {
	tbl := New(DefaultConfig())
	if tbl.P(1, 1) != 0 {
		t.Error("P on empty table should be 0")
	}
	tbl.LoadCurr(paperLHT)
	if tbl.P(0, 3) != 0 || tbl.P(3, 2) != 0 {
		t.Error("invalid ranges should be 0")
	}
}

func TestShouldPrefetchInvalidK(t *testing.T) {
	tbl := paperTable(t)
	if tbl.ShouldPrefetch(0) || tbl.ShouldPrefetch(-1) {
		t.Error("k < 1 must not prefetch")
	}
}

func TestShouldPrefetchClampsBeyondTable(t *testing.T) {
	tbl := New(DefaultConfig())
	// Long-stream workload: nearly all mass at n_s.
	lht := make([]uint32, 16)
	for i := range lht {
		lht[i] = 900
	}
	lht[0] = 1000
	tbl.LoadCurr(lht)
	if !tbl.ShouldPrefetch(16) || !tbl.ShouldPrefetch(40) {
		t.Error("long streams beyond n_s should keep prefetching")
	}
}

func TestEmptyTableNeverPrefetches(t *testing.T) {
	tbl := New(DefaultConfig())
	for k := 1; k <= 16; k++ {
		if tbl.ShouldPrefetch(k) {
			t.Fatalf("empty table prefetched at k=%d", k)
		}
	}
}

func TestLHTBounds(t *testing.T) {
	tbl := paperTable(t)
	if tbl.LHT(0) != 0 || tbl.LHT(17) != 0 {
		t.Error("out-of-range lht should be 0")
	}
	if tbl.LHT(1) != 1000 || tbl.LHT(16) != 5 {
		t.Errorf("lht(1)=%d lht(16)=%d", tbl.LHT(1), tbl.LHT(16))
	}
}

func TestStreamEndedFoldsIntoNext(t *testing.T) {
	tbl := New(Config{MaxLength: 4, EpochLen: 1000})
	tbl.StreamEnded(3)
	tbl.EpochEnd()
	// One stream of length 3 contributes 3 Reads to lht(1..3).
	want := []uint32{3, 3, 3, 0}
	for i := 1; i <= 4; i++ {
		if got := tbl.LHT(i); got != want[i-1] {
			t.Errorf("lht(%d) = %d, want %d", i, got, want[i-1])
		}
	}
	if tbl.Epochs != 1 {
		t.Errorf("Epochs = %d", tbl.Epochs)
	}
}

func TestStreamEndedLongerThanTable(t *testing.T) {
	tbl := New(Config{MaxLength: 4, EpochLen: 1000})
	tbl.StreamEnded(10)
	tbl.EpochEnd()
	for i := 1; i <= 4; i++ {
		if got := tbl.LHT(i); got != 10 {
			t.Errorf("lht(%d) = %d, want 10", i, got)
		}
	}
}

func TestStreamEndedIgnoresNonPositive(t *testing.T) {
	tbl := New(DefaultConfig())
	tbl.StreamEnded(0)
	tbl.StreamEnded(-5)
	tbl.EpochEnd()
	if tbl.LHT(1) != 0 {
		t.Error("non-positive lengths must be ignored")
	}
}

func TestMidEpochDrain(t *testing.T) {
	tbl := New(Config{MaxLength: 4, EpochLen: 1000})
	tbl.StreamEnded(2)
	tbl.StreamEnded(2)
	tbl.EpochEnd() // curr: lht = [4,4,0,0]
	if !tbl.ShouldPrefetch(1) {
		t.Fatal("should prefetch at k=1 with all-length-2 history")
	}
	// During the epoch, streams completing drain LHTcurr.
	tbl.StreamEnded(2)
	tbl.StreamEnded(2)
	// curr fully drained: [0,0,0,0].
	if tbl.LHT(1) != 0 || tbl.LHT(2) != 0 {
		t.Errorf("curr not drained: lht(1)=%d lht(2)=%d", tbl.LHT(1), tbl.LHT(2))
	}
	// And next has accumulated for the coming epoch.
	tbl.EpochEnd()
	if tbl.LHT(1) != 4 || tbl.LHT(2) != 4 {
		t.Errorf("next epoch lht(1)=%d lht(2)=%d, want 4,4", tbl.LHT(1), tbl.LHT(2))
	}
}

func TestCounterSaturation(t *testing.T) {
	tbl := New(Config{MaxLength: 4, EpochLen: 10})
	for i := 0; i < 100; i++ {
		tbl.StreamEnded(4)
	}
	tbl.EpochEnd()
	if tbl.LHT(1) != 10 {
		t.Errorf("lht(1) = %d, want saturation at epoch length 10", tbl.LHT(1))
	}
}

func TestPrefetchDegree(t *testing.T) {
	tbl := paperTable(t)
	// k=2: lht(2)=782 >= 2*lht(3)=690, degree 0.
	if got := tbl.PrefetchDegree(2, 4); got != 0 {
		t.Errorf("degree(2) = %d, want 0", got)
	}
	// k=3: lht(3)=345 < 2*lht(4)=570 (m=1) but >= 2*lht(5)=270 (m=2).
	if got := tbl.PrefetchDegree(3, 4); got != 1 {
		t.Errorf("degree(3) = %d, want 1", got)
	}
	// Long-stream table: full degree available.
	long := New(DefaultConfig())
	lht := make([]uint32, 16)
	for i := range lht {
		lht[i] = 1000
	}
	long.LoadCurr(lht)
	if got := long.PrefetchDegree(1, 4); got != 4 {
		t.Errorf("long degree = %d, want 4", got)
	}
	if got := tbl.PrefetchDegree(0, 4); got != 0 {
		t.Errorf("degree(k=0) = %d", got)
	}
	if got := tbl.PrefetchDegree(3, 0); got != 0 {
		t.Errorf("degree(max=0) = %d", got)
	}
}

func TestPrefetchDegreeConsistentWithShouldPrefetch(t *testing.T) {
	f := func(raw []uint16, k uint8) bool {
		tbl := New(DefaultConfig())
		lht := make([]uint32, 16)
		// Build a non-increasing vector from raw.
		v := uint32(20000)
		for i := range lht {
			if i < len(raw) {
				v -= uint32(raw[i] % 512)
			}
			lht[i] = v
		}
		tbl.LoadCurr(lht)
		kk := int(k%20) + 1
		should := tbl.ShouldPrefetch(kk)
		deg := tbl.PrefetchDegree(kk, 4)
		return should == (deg >= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramRoundTrip(t *testing.T) {
	tbl := New(Config{MaxLength: 8, EpochLen: 10000})
	// 10 streams of length 2 (20 reads), 5 of length 1 (5 reads).
	for i := 0; i < 10; i++ {
		tbl.StreamEnded(2)
	}
	for i := 0; i < 5; i++ {
		tbl.StreamEnded(1)
	}
	tbl.EpochEnd()
	h := tbl.Histogram()
	if h.Total() != 25 {
		t.Fatalf("histogram total = %d, want 25 reads", h.Total())
	}
	if got := h.Frac(2); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Frac(2) = %v, want 0.8", got)
	}
	if got := h.Frac(1); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("Frac(1) = %v, want 0.2", got)
	}
}

func TestHistogramFinalBucket(t *testing.T) {
	tbl := New(Config{MaxLength: 4, EpochLen: 10000})
	tbl.StreamEnded(9) // 9 reads, length >= 4 bucket
	tbl.EpochEnd()
	h := tbl.Histogram()
	if h.Count(4) != 9 {
		t.Errorf("final bucket = %d, want 9", h.Count(4))
	}
}

func TestLoadCurrPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(DefaultConfig()).LoadCurr([]uint32{1, 2, 3})
}

func TestReset(t *testing.T) {
	tbl := paperTable(t)
	tbl.StreamEnded(5)
	tbl.Reset()
	if tbl.LHT(1) != 0 || tbl.Epochs != 0 {
		t.Error("Reset incomplete")
	}
}

func BenchmarkShouldPrefetch(b *testing.B) {
	tbl := New(DefaultConfig())
	tbl.LoadCurr(paperLHT)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.ShouldPrefetch(i%16 + 1)
	}
}

// Property: the prefetch decision depends only on the SHAPE of the lht
// vector — scaling every entry by a constant must not change any
// decision (the hardware comparator sees the same ordering).
func TestDecisionScaleInvariance(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		k := int(scale%7) + 2
		tbl1 := New(DefaultConfig())
		tbl2 := New(DefaultConfig())
		v1 := make([]uint32, 16)
		v2 := make([]uint32, 16)
		acc := uint32(60000)
		for i := 0; i < 16; i++ {
			if i < len(raw) {
				acc -= uint32(raw[i] % 512)
			}
			v1[i] = acc / 16
			v2[i] = (acc / 16) * uint32(k)
		}
		tbl1.LoadCurr(v1)
		tbl2.LoadCurr(v2)
		for kk := 1; kk <= 16; kk++ {
			if tbl1.ShouldPrefetch(kk) != tbl2.ShouldPrefetch(kk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: folding any set of streams through StreamEnded/EpochEnd
// yields a non-increasing lht vector with lht(1) = total reads
// (saturation permitting).
func TestLHTMonotoneProperty(t *testing.T) {
	f := func(lengths []uint8) bool {
		tbl := New(Config{MaxLength: 16, EpochLen: 1 << 20})
		var reads uint32
		for _, l := range lengths {
			n := int(l%20) + 1
			tbl.StreamEnded(n)
			reads += uint32(n)
		}
		tbl.EpochEnd()
		if tbl.LHT(1) != reads {
			return false
		}
		for i := 1; i < 16; i++ {
			if tbl.LHT(i) < tbl.LHT(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
