// Package slh implements the Stream Length Histogram machinery of the
// paper's §3.1–§3.4: the lht() function realised as a pair of Likelihood
// Tables (LHTcurr, LHTnext), the probabilistic prefetch-decision
// inequalities (5) and (6), and epoch management.
//
// Definitions (paper §3.2): lht(i) is the number of Reads that are part
// of streams of length i or longer, for 1 <= i <= n_s; lht(i) = 0 for
// i > n_s. The SLH bar P(i,i) equals (lht(i) - lht(i+1)) / lht(1).
// Inequality (5) — prefetch the next line after the k-th element of a
// stream iff
//
//	lht(k) < 2 * lht(k+1)
//
// and its generalisation (6) — prefetch m consecutive lines iff
//
//	lht(k) < 2 * lht(k+m).
package slh

import (
	"fmt"

	"asdsim/internal/stats"
)

// Config holds SLH parameters.
type Config struct {
	// MaxLength is n_s, the longest tracked stream length (16 in the
	// paper's evaluated configuration).
	MaxLength int
	// EpochLen is the epoch length e in Reads (2000 in the paper); it
	// also bounds each table counter, which hardware sizes at
	// ceil(log2(e)) bits.
	EpochLen int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config { return Config{MaxLength: 16, EpochLen: 2000} }

// Table is one direction's Likelihood Table pair. It is not safe for
// concurrent use.
type Table struct {
	cfg  Config
	curr []uint32 // LHTcurr[1..n_s] at indices 0..n_s-1
	next []uint32 // LHTnext

	// Epochs counts completed epochs (for reporting).
	Epochs uint64
}

// New returns a Table for cfg.
func New(cfg Config) *Table {
	if cfg.MaxLength < 2 {
		panic(fmt.Sprintf("slh: MaxLength must be >= 2, got %d", cfg.MaxLength))
	}
	if cfg.EpochLen < 1 {
		panic(fmt.Sprintf("slh: EpochLen must be >= 1, got %d", cfg.EpochLen))
	}
	return &Table{
		cfg:  cfg,
		curr: make([]uint32, cfg.MaxLength),
		next: make([]uint32, cfg.MaxLength),
	}
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// counterMax saturates entries at the epoch length: no entry can exceed
// the number of Reads in an epoch.
func (t *Table) counterMax() uint32 { return uint32(t.cfg.EpochLen) }

// StreamEnded folds a completed stream of the given length into the
// tables: LHTnext[i] += length for all i <= min(length, n_s) (each of the
// stream's `length` Reads was part of a stream of length >= i), and
// LHTcurr[i] is decremented by the same amounts so that mid-epoch
// decisions drain the prediction as streams complete (§3.4).
//
//asd:hotpath
func (t *Table) StreamEnded(length int) {
	if length < 1 {
		return
	}
	top := length
	if top > t.cfg.MaxLength {
		top = t.cfg.MaxLength
	}
	add := uint32(length)
	if add > t.counterMax() {
		add = t.counterMax()
	}
	for i := 0; i < top; i++ {
		if t.next[i] > t.counterMax()-add {
			t.next[i] = t.counterMax()
		} else {
			t.next[i] += add
		}
		if t.curr[i] < add {
			t.curr[i] = 0
		} else {
			t.curr[i] -= add
		}
	}
}

// EpochEnd rolls the tables over: LHTnext becomes LHTcurr and LHTnext is
// re-initialised. Callers must first flush the Stream Filter so its
// remaining live streams are folded in via StreamEnded.
func (t *Table) EpochEnd() {
	copy(t.curr, t.next)
	for i := range t.next {
		t.next[i] = 0
	}
	t.Epochs++
}

// LHT returns lht(i) from LHTcurr (0 for i outside [1, n_s]).
func (t *Table) LHT(i int) uint32 {
	if i < 1 || i > t.cfg.MaxLength {
		return 0
	}
	return t.curr[i-1]
}

// ShouldPrefetch evaluates inequality (5) for the k-th element of a
// stream: prefetch iff lht(k) < 2*lht(k+1). Hardware implements the
// doubling as a left shift feeding the per-pair comparator. Stream
// lengths at or beyond n_s clamp to the final pair, so workloads whose
// streams overwhelmingly exceed n_s keep prefetching.
//
//asd:hotpath
func (t *Table) ShouldPrefetch(k int) bool {
	if k < 1 {
		return false
	}
	if k > t.cfg.MaxLength-1 {
		k = t.cfg.MaxLength - 1
	}
	return t.LHT(k) < 2*t.LHT(k+1)
}

// PrefetchDegree evaluates the generalised inequality (6): it returns the
// largest m <= maxDegree with lht(k) < 2*lht(k+m). Because lht is
// non-increasing, the feasible set is downward closed. Degree 0 means "do
// not prefetch".
//
//asd:hotpath
func (t *Table) PrefetchDegree(k, maxDegree int) int {
	if k < 1 || maxDegree < 1 {
		return 0
	}
	if k > t.cfg.MaxLength-1 {
		k = t.cfg.MaxLength - 1
	}
	m := 0
	for m < maxDegree && k+m+1 <= t.cfg.MaxLength && t.LHT(k) < 2*t.LHT(k+m+1) {
		m++
	}
	return m
}

// Snapshot copies both tables for the provenance layer's epoch
// snapshots. The copies are freshly allocated — callers own them.
func (t *Table) Snapshot() (curr, next []uint32) {
	curr = append([]uint32(nil), t.curr...)
	next = append([]uint32(nil), t.next...)
	return curr, next
}

// Witness returns the lht values inequality (6) compared for a stream of
// length k and degree m — lht(k) and lht(k+m) after the same clamping
// PrefetchDegree applies — so provenance records carry the exact
// operands the decision saw.
//
//asd:hotpath
func (t *Table) Witness(k, m int) (lhtK, lhtKm uint32) {
	if k < 1 {
		return 0, 0
	}
	if k > t.cfg.MaxLength-1 {
		k = t.cfg.MaxLength - 1
	}
	return t.LHT(k), t.LHT(k + m)
}

// Histogram renders LHTcurr as the SLH it encodes: bar i holds
// lht(i) - lht(i+1), the number of Reads belonging to streams of length
// exactly i (the final bar aggregates ">= n_s").
func (t *Table) Histogram() *stats.Histogram {
	h := stats.NewHistogram(t.cfg.MaxLength)
	for i := 1; i <= t.cfg.MaxLength; i++ {
		var barCount uint32
		if i == t.cfg.MaxLength {
			barCount = t.LHT(i)
		} else if t.LHT(i) > t.LHT(i+1) {
			barCount = t.LHT(i) - t.LHT(i+1)
		}
		if barCount > 0 {
			h.ObserveN(i, uint64(barCount))
		}
	}
	return h
}

// P returns P(i,j) from the paper's equation (1): the probability that a
// Read is part of a stream with length in [i, j], computed against
// LHTcurr. Returns 0 when the table is empty.
func (t *Table) P(i, j int) float64 {
	denom := t.LHT(1)
	if denom == 0 || i < 1 || j < i {
		return 0
	}
	var upper uint32
	if j+1 <= t.cfg.MaxLength {
		upper = t.LHT(j + 1)
	}
	lo := t.LHT(i)
	if lo < upper {
		return 0
	}
	return float64(lo-upper) / float64(denom)
}

// LoadCurr overwrites LHTcurr directly (test and analysis hook: lets the
// paper's worked examples be expressed as lht vectors).
func (t *Table) LoadCurr(lht []uint32) {
	if len(lht) != t.cfg.MaxLength {
		panic(fmt.Sprintf("slh: LoadCurr needs %d entries, got %d", t.cfg.MaxLength, len(lht)))
	}
	copy(t.curr, lht)
}

// Reset zeroes both tables.
func (t *Table) Reset() {
	for i := range t.curr {
		t.curr[i] = 0
		t.next[i] = 0
	}
	t.Epochs = 0
}
