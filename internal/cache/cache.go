// Package cache models the Power5+ cache hierarchy that filters processor
// references before they reach the memory controller: a write-back,
// write-allocate set-associative cache primitive plus a three-level
// hierarchy (L1D, shared L2, off-chip victim L3).
//
// The caches are passive structures — they answer hit/miss and track
// dirty state and evictions; all timing lives in the CPU and memory
// controller models.
package cache

import (
	"fmt"

	"asdsim/internal/mem"
)

// Cache is one set-associative, write-back cache level with true-LRU
// replacement.
type Cache struct {
	name  string
	sets  int
	assoc int

	tags  []uint64 // per way-slot: line tag (full line number)
	valid []bool
	dirty []bool
	used  []uint64 // LRU timestamps
	tick  uint64

	// Stats.
	Accesses uint64
	Hits     uint64
}

// New returns a cache of sizeBytes with the given associativity, using
// the global mem.LineSize. sizeBytes must be assoc*LineSize*2^k.
func New(name string, sizeBytes, assoc int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache %s: non-positive geometry", name))
	}
	lines := sizeBytes / mem.LineSize
	if lines*mem.LineSize != sizeBytes {
		panic(fmt.Sprintf("cache %s: size %d not a multiple of line size", name, sizeBytes))
	}
	sets := lines / assoc
	if sets*assoc != lines {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by assoc %d", name, lines, assoc))
	}
	return &Cache{
		name:  name,
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint64, lines),
		valid: make([]bool, lines),
		dirty: make([]bool, lines),
		used:  make([]uint64, lines),
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.assoc * mem.LineSize }

// setOf maps a line to its set by modulo, which accommodates the
// Power5+'s non-power-of-two L2 (three 640 KB slices, 1536 sets total).
func (c *Cache) setOf(l mem.Line) int { return int(uint64(l) % uint64(c.sets)) }

// find returns the way-slot index of line, or -1.
func (c *Cache) find(l mem.Line) int {
	base := c.setOf(l) * c.assoc
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == uint64(l) {
			return i
		}
	}
	return -1
}

// Lookup probes for line; on a hit it refreshes LRU state and, if store,
// marks the line dirty. It counts toward the hit/access statistics.
func (c *Cache) Lookup(l mem.Line, store bool) bool {
	c.Accesses++
	i := c.find(l)
	if i < 0 {
		return false
	}
	c.Hits++
	c.tick++
	c.used[i] = c.tick
	if store {
		c.dirty[i] = true
	}
	return true
}

// Contains reports presence without disturbing LRU state or statistics.
func (c *Cache) Contains(l mem.Line) bool { return c.find(l) >= 0 }

// Victim describes a line evicted by an Insert.
type Victim struct {
	Line  mem.Line
	Dirty bool
}

// Insert places line into the cache (MRU position), returning the evicted
// victim if any. Inserting a line already present just refreshes its LRU
// state (and ORs in dirty).
func (c *Cache) Insert(l mem.Line, dirty bool) (Victim, bool) {
	c.tick++
	if i := c.find(l); i >= 0 {
		c.used[i] = c.tick
		c.dirty[i] = c.dirty[i] || dirty
		return Victim{}, false
	}
	base := c.setOf(l) * c.assoc
	victimIdx := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victimIdx = i
			oldest = 0
			break
		}
		if c.used[i] < oldest {
			oldest = c.used[i]
			victimIdx = i
		}
	}
	var v Victim
	evicted := false
	if c.valid[victimIdx] {
		v = Victim{Line: mem.Line(c.tags[victimIdx]), Dirty: c.dirty[victimIdx]}
		evicted = true
	}
	c.tags[victimIdx] = uint64(l)
	c.valid[victimIdx] = true
	c.dirty[victimIdx] = dirty
	c.used[victimIdx] = c.tick
	return v, evicted
}

// InsertLRU places line into the LRU position of its set (used for
// low-confidence fills). Behaviour otherwise matches Insert.
func (c *Cache) InsertLRU(l mem.Line, dirty bool) (Victim, bool) {
	v, ev := c.Insert(l, dirty)
	if i := c.find(l); i >= 0 {
		c.used[i] = 0
	}
	return v, ev
}

// Invalidate removes line if present, returning whether it was present
// and dirty.
func (c *Cache) Invalidate(l mem.Line) (present, dirty bool) {
	i := c.find(l)
	if i < 0 {
		return false, false
	}
	c.valid[i] = false
	return true, c.dirty[i]
}

// HitRate returns hits/accesses (0 when unused).
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.used[i] = 0
	}
	c.tick = 0
	c.Accesses = 0
	c.Hits = 0
}
