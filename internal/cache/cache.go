// Package cache models the Power5+ cache hierarchy that filters processor
// references before they reach the memory controller: a write-back,
// write-allocate set-associative cache primitive plus a three-level
// hierarchy (L1D, shared L2, off-chip victim L3).
//
// The caches are passive structures — they answer hit/miss and track
// dirty state and evictions; all timing lives in the CPU and memory
// controller models.
package cache

import (
	"fmt"
	"math/bits"

	"asdsim/internal/mem"
)

// maxAssoc bounds associativity so a set's LRU recency order packs into
// one uint64 (4 bits per way).
const maxAssoc = 16

// Cache is one set-associative, write-back cache level with true-LRU
// replacement.
//
// Per-set replacement state is packed: order holds the set's way
// indices as nibbles, most-recently-used first, and valid/dirty are
// per-set way bitmasks. A lookup therefore touches only the tag array,
// and victim selection is pure bit arithmetic instead of a timestamp
// scan — the caches sit on the simulator's per-access hot path.
type Cache struct {
	name     string
	sets     int
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	setShift uint   // k when sets == 3<<k (the Power5+ 3-slice geometries), else 0
	assoc    int
	fullMask uint16
	ident    uint64 // identity recency permutation for this assoc

	tags  []uint64 // per way-slot (set-major): line tag (full line number)
	order []uint64 // per set: packed way permutation, MRU nibble first
	valid []uint16 // per set: valid-way bitmask
	dirty []uint16 // per set: dirty-way bitmask

	// Stats.
	Accesses uint64
	Hits     uint64
}

// New returns a cache of sizeBytes with the given associativity, using
// the global mem.LineSize. sizeBytes must be assoc*LineSize*2^k.
func New(name string, sizeBytes, assoc int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache %s: non-positive geometry", name))
	}
	if assoc > maxAssoc {
		panic(fmt.Sprintf("cache %s: assoc %d exceeds packed-LRU limit %d", name, assoc, maxAssoc))
	}
	lines := sizeBytes / mem.LineSize
	if lines*mem.LineSize != sizeBytes {
		panic(fmt.Sprintf("cache %s: size %d not a multiple of line size", name, sizeBytes))
	}
	sets := lines / assoc
	if sets*assoc != lines {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by assoc %d", name, lines, assoc))
	}
	c := &Cache{
		name:  name,
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint64, lines),
		order: make([]uint64, sets),
		valid: make([]uint16, sets),
		dirty: make([]uint16, sets),
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
	} else if third := sets / 3; sets%3 == 0 && third&(third-1) == 0 {
		c.setShift = uint(bits.TrailingZeros(uint(third)))
	}
	c.fullMask = uint16(1)<<assoc - 1
	for w := 0; w < assoc; w++ {
		c.ident |= uint64(w) << (4 * w)
	}
	for s := range c.order {
		c.order[s] = c.ident
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.assoc * mem.LineSize }

// setOf maps a line to its set by modulo, which accommodates the
// Power5+'s non-power-of-two L2 (three 640 KB slices, 1536 sets total);
// power-of-two geometries take the mask fast path (no hardware divide).
// The 3-slice geometries (sets = 3*2^k, both the L2 and L3 defaults)
// decompose l mod 3*2^k == (l>>k mod 3)<<k | l&(2^k-1), turning the
// runtime divide into a shift plus a constant modulo the compiler
// strength-reduces to a multiply. All three paths compute the same
// value.
func (c *Cache) setOf(l mem.Line) int {
	if c.setMask != 0 {
		return int(uint64(l) & c.setMask)
	}
	if c.setShift != 0 {
		q := uint64(l) >> c.setShift
		r := uint64(l) & (1<<c.setShift - 1)
		return int((q%3)<<c.setShift | r)
	}
	return int(uint64(l) % uint64(c.sets))
}

// find returns the set and way of line, or way -1. The tag is compared
// before the valid bit so a probe normally touches only the tag array
// (a zero tag can false-match a probe for line 0, which the valid check
// then rejects).
func (c *Cache) find(l mem.Line) (set, way int) {
	set = c.setOf(l)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == uint64(l) && c.valid[set]>>w&1 == 1 {
			return set, w
		}
	}
	return set, -1
}

// touchMRU moves way to the front of set's recency order.
func (c *Cache) touchMRU(set, way int) {
	ord := c.order[set]
	if int(ord&0xF) == way {
		return
	}
	p := c.posOf(ord, way)
	low := ord & (1<<(4*p) - 1)
	c.order[set] = ord&^(1<<(4*(p+1))-1) | low<<4 | uint64(way)
}

// posOf returns the nibble position of way within ord.
func (c *Cache) posOf(ord uint64, way int) uint {
	for p := uint(0); ; p++ {
		if int(ord>>(4*p)&0xF) == way {
			return p
		}
	}
}

// Lookup probes for line; on a hit it refreshes LRU state and, if store,
// marks the line dirty. It counts toward the hit/access statistics.
func (c *Cache) Lookup(l mem.Line, store bool) bool {
	c.Accesses++
	set, way := c.find(l)
	if way < 0 {
		return false
	}
	c.Hits++
	c.touchMRU(set, way)
	if store {
		c.dirty[set] |= 1 << way
	}
	return true
}

// Contains reports presence without disturbing LRU state or statistics.
func (c *Cache) Contains(l mem.Line) bool {
	_, way := c.find(l)
	return way >= 0
}

// Victim describes a line evicted by an Insert.
type Victim struct {
	Line  mem.Line
	Dirty bool
}

// Insert places line into the cache (MRU position), returning the evicted
// victim if any. Inserting a line already present just refreshes its LRU
// state (and ORs in dirty).
func (c *Cache) Insert(l mem.Line, dirty bool) (Victim, bool) {
	set := c.setOf(l)
	base := set * c.assoc
	vm := c.valid[set]
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == uint64(l) && vm>>w&1 == 1 {
			c.touchMRU(set, w)
			if dirty {
				c.dirty[set] |= 1 << w
			}
			return Victim{}, false
		}
	}
	// Victim: the first invalid way, else the set's LRU way.
	var way int
	var v Victim
	evicted := false
	if vm != c.fullMask {
		way = bits.TrailingZeros16(^vm & c.fullMask)
	} else {
		way = int(c.order[set] >> (4 * (c.assoc - 1)) & 0xF)
		v = Victim{Line: mem.Line(c.tags[base+way]), Dirty: c.dirty[set]>>way&1 == 1}
		evicted = true
	}
	c.tags[base+way] = uint64(l)
	c.valid[set] |= 1 << way
	if dirty {
		c.dirty[set] |= 1 << way
	} else {
		c.dirty[set] &^= 1 << way
	}
	c.touchMRU(set, way)
	return v, evicted
}

// InsertAbsent is Insert for lines the caller has proven are not in
// the cache (a lookup just missed, or a structural invariant rules
// presence out — e.g. victim-cache exclusivity). It skips Insert's
// presence scan, going straight to victim selection: O(1) instead of
// O(assoc). Inserting a line that IS present corrupts the set (two
// ways with one tag), so callers must hold a real absence proof.
//
//asd:hotpath
func (c *Cache) InsertAbsent(l mem.Line, dirty bool) (Victim, bool) {
	set := c.setOf(l)
	base := set * c.assoc
	vm := c.valid[set]
	var way int
	var v Victim
	evicted := false
	if vm != c.fullMask {
		way = bits.TrailingZeros16(^vm & c.fullMask)
	} else {
		way = int(c.order[set] >> (4 * (c.assoc - 1)) & 0xF)
		v = Victim{Line: mem.Line(c.tags[base+way]), Dirty: c.dirty[set]>>way&1 == 1}
		evicted = true
	}
	c.tags[base+way] = uint64(l)
	c.valid[set] |= 1 << way
	if dirty {
		c.dirty[set] |= 1 << way
	} else {
		c.dirty[set] &^= 1 << way
	}
	c.touchMRU(set, way)
	return v, evicted
}

// InsertLRU places line into the LRU position of its set (used for
// low-confidence fills). Behaviour otherwise matches Insert.
func (c *Cache) InsertLRU(l mem.Line, dirty bool) (Victim, bool) {
	v, ev := c.Insert(l, dirty)
	if set, way := c.find(l); way >= 0 {
		// Demote from MRU (where Insert put it) to LRU: remove its
		// nibble and re-append at the back.
		ord := c.order[set]
		p := c.posOf(ord, way)
		top := c.assoc - 1
		keepLow := ord & (1<<(4*p) - 1)
		mid := ord >> (4 * (p + 1)) << (4 * p) // nibbles above p shift down
		mid &= 1<<(4*top) - 1
		c.order[set] = keepLow | mid&^(1<<(4*p)-1) | uint64(way)<<(4*top)
	}
	return v, ev
}

// Invalidate removes line if present, returning whether it was present
// and dirty.
func (c *Cache) Invalidate(l mem.Line) (present, dirty bool) {
	set, way := c.find(l)
	if way < 0 {
		return false, false
	}
	dirty = c.dirty[set]>>way&1 == 1
	c.valid[set] &^= 1 << way
	return true, dirty
}

// HitRate returns hits/accesses (0 when unused).
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Reset clears contents and statistics. Stale tags are harmless (the
// valid mask rejects them) and the recency orders stay valid
// permutations, so only the per-set masks need clearing.
func (c *Cache) Reset() {
	for s := range c.valid {
		c.valid[s] = 0
		c.dirty[s] = 0
	}
	c.Accesses = 0
	c.Hits = 0
}
