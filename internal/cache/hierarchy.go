package cache

import (
	"asdsim/internal/mem"
	"asdsim/internal/obs"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels; Memory means the access missed every cache.
const (
	LevelL1 Level = 1
	LevelL2 Level = 2
	LevelL3 Level = 3
	Memory  Level = 4
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case Memory:
		return "Memory"
	default:
		return "Level?"
	}
}

// Config holds hierarchy geometry and hit latencies (CPU cycles). The
// defaults model the Power5+ of the paper's §4.2.
type Config struct {
	L1Size  int
	L1Assoc int
	L1Lat   uint64

	L2Size  int
	L2Assoc int
	L2Lat   uint64

	L3Size  int
	L3Assoc int
	L3Lat   uint64
}

// DefaultConfig returns the Power5+ geometry: 32 KB 4-way L1D, 1920 KB
// 10-way shared L2 (the paper's 3x640 KB), 36 MB 12-way off-chip L3, with
// 128-byte lines throughout.
func DefaultConfig() Config {
	return Config{
		L1Size: 32 << 10, L1Assoc: 4, L1Lat: 2,
		L2Size: 1920 << 10, L2Assoc: 10, L2Lat: 13,
		L3Size: 36 << 20, L3Assoc: 12, L3Lat: 90,
	}
}

// Hierarchy is the three-level Power5+ data-cache hierarchy. The L3 acts
// as a victim cache of the L2: L2 evictions land in L3 and L3 hits are
// promoted back into L2/L1.
type Hierarchy struct {
	L1, L2, L3 *Cache
	cfg        Config

	// DemandMisses counts accesses that went to memory.
	DemandMisses uint64
	// WritebacksToMemory counts dirty lines pushed out of the L3.
	WritebacksToMemory uint64

	bus *obs.Bus // nil when no observer is attached

	// wbs is the reusable writeback scratch returned by Access/Fill/
	// FillL2Only; it is valid only until the next hierarchy call.
	wbs []mem.Line
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		L1:  New("L1D", cfg.L1Size, cfg.L1Assoc),
		L2:  New("L2", cfg.L2Size, cfg.L2Assoc),
		L3:  New("L3", cfg.L3Size, cfg.L3Assoc),
		cfg: cfg,
	}
}

// Result describes the outcome of one access walk.
type Result struct {
	// Level where the access hit (Memory on a full miss).
	Level Level
	// Latency is the hit latency in CPU cycles; meaningful only when
	// Level != Memory (memory latency is decided by the MC/DRAM model).
	Latency uint64
	// Writebacks lists dirty lines that must be written to memory as a
	// consequence of this access (L3 victim-cache spills). The slice
	// aliases a scratch buffer owned by the Hierarchy and is valid only
	// until the next Access/Fill/FillL2Only call.
	Writebacks []mem.Line
}

// SetObserver attaches a probe bus (nil detaches).
func (h *Hierarchy) SetObserver(b *obs.Bus) { h.bus = b }

// Access walks the hierarchy for a load or store to line at CPU cycle
// now (used only for probe timestamps). Hits refresh LRU state and
// promote the line up to L1 (and into L2 on an L3 hit, victim-cache
// style). A full miss performs no fill: callers must invoke Fill when
// the memory system returns the line.
//
//asd:hotpath
func (h *Hierarchy) Access(line mem.Line, store bool, now uint64) Result {
	res := h.access(line, store)
	if h.bus != nil {
		var st int64
		if store {
			st = 1
		}
		h.bus.Emit(obs.Event{Kind: obs.KindCacheAccess, Cycle: now, Line: line,
			V1: int64(res.Level), V2: st})
	}
	return res
}

func (h *Hierarchy) access(line mem.Line, store bool) Result {
	if h.L1.Lookup(line, store) {
		return Result{Level: LevelL1, Latency: h.cfg.L1Lat}
	}
	if h.L2.Lookup(line, store) {
		h.wbs = h.wbs[:0]
		h.fillL1(line, false)
		return Result{Level: LevelL2, Latency: h.cfg.L2Lat, Writebacks: h.wbs}
	}
	if h.L3.Lookup(line, false) {
		// Victim hit: promote into L2+L1 and drop from L3.
		_, dirty := h.L3.Invalidate(line)
		h.wbs = h.wbs[:0]
		h.fillL2(line, dirty || store)
		return Result{Level: LevelL3, Latency: h.cfg.L3Lat, Writebacks: h.wbs}
	}
	h.DemandMisses++
	return Result{Level: Memory}
}

// Fill installs a line arriving from memory into L2 and L1 (the Power5+
// demand-fill path), returning any dirty lines spilled to memory. store
// marks the line dirty on arrival (write-allocate). The returned slice
// aliases a scratch buffer and is valid only until the next hierarchy
// call.
//
//asd:hotpath
func (h *Hierarchy) Fill(line mem.Line, store bool) []mem.Line {
	h.wbs = h.wbs[:0]
	h.fillL2(line, store)
	return h.wbs
}

// FillL2Only installs a prefetched line into the L2 without touching the
// L1, which is how the Power5+ processor-side prefetcher stages its
// further-ahead lines. Callers must only fill lines that are not
// already L2 resident (the prefetch launch checks Contains and the
// flight table dedups in-flight lines). The returned slice aliases a
// scratch buffer and is valid only until the next hierarchy call.
//
//asd:hotpath
func (h *Hierarchy) FillL2Only(line mem.Line) []mem.Line {
	h.wbs = h.wbs[:0]
	if v, ev := h.L2.InsertAbsent(line, false); ev {
		h.spillToL3(v)
	}
	return h.wbs
}

// fillL2 inserts into L2 (spilling its victim to L3) and then into L1,
// appending any memory writebacks to h.wbs. Every caller holds an L2
// absence proof — the line either just missed the L2 (demand fill) or
// was just invalidated out of the L3 after missing the L2 (victim
// promote) — so the scan-free insert applies.
func (h *Hierarchy) fillL2(line mem.Line, dirty bool) {
	if v, ev := h.L2.InsertAbsent(line, dirty); ev {
		h.spillToL3(v)
	}
	h.fillL1(line, false)
}

// fillL1 inserts into L1 (callers have seen the line miss it); L1
// victims are write-through into L2 here because the modelled L1 is
// store-in: dirty victims merge into L2. Memory writebacks are
// appended to h.wbs.
func (h *Hierarchy) fillL1(line mem.Line, dirty bool) {
	if v, ev := h.L1.InsertAbsent(line, dirty); ev && v.Dirty {
		// Dirty L1 victim merges into L2 (it is normally present;
		// if it was evicted from L2 first, reinstall it dirty). No
		// absence proof here, so the scanning Insert stays.
		if v2, ev2 := h.L2.Insert(v.Line, true); ev2 {
			h.spillToL3(v2)
		}
	}
}

// spillToL3 pushes an L2 victim into the L3; dirty L3 victims become
// memory writebacks appended to h.wbs. The L3 is a strict victim
// cache — lines enter it only when leaving the L2 and are invalidated
// out of it when promoted back — so an L2 victim is never already L3
// resident and the scan-free insert applies.
func (h *Hierarchy) spillToL3(v Victim) {
	if v3, ev3 := h.L3.InsertAbsent(v.Line, v.Dirty); ev3 && v3.Dirty {
		h.WritebacksToMemory++
		h.wbs = append(h.wbs, v3.Line)
	}
}

// Contains reports whether any level holds the line (no state change).
//
//asd:hotpath
func (h *Hierarchy) Contains(line mem.Line) bool {
	return h.L1.Contains(line) || h.L2.Contains(line) || h.L3.Contains(line)
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.L3.Reset()
	h.DemandMisses = 0
	h.WritebacksToMemory = 0
}
