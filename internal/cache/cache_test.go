package cache

import (
	"testing"
	"testing/quick"

	"asdsim/internal/mem"
)

func TestNewGeometry(t *testing.T) {
	c := New("t", 1024, 2) // 8 lines, 4 sets
	if c.Sets() != 4 || c.Assoc() != 2 || c.SizeBytes() != 1024 {
		t.Errorf("geometry: sets=%d assoc=%d size=%d", c.Sets(), c.Assoc(), c.SizeBytes())
	}
	if c.Name() != "t" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestNewPanics(t *testing.T) {
	cases := map[string]func(){
		"zero size":    func() { New("x", 0, 1) },
		"zero assoc":   func() { New("x", 1024, 0) },
		"ragged":       func() { New("x", 1000, 2) },
		"indivisible ": func() { New("x", 5*128, 2) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New("t", 1024, 2)
	if c.Lookup(5, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(5, false)
	if !c.Lookup(5, false) {
		t.Fatal("miss after insert")
	}
	if c.Accesses != 2 || c.Hits != 1 {
		t.Errorf("stats: acc=%d hits=%d", c.Accesses, c.Hits)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("t", 2*128*4, 2) // 4 sets, 2 ways
	// Lines 0, 4, 8 all map to set 0 (sets=4).
	c.Insert(0, false)
	c.Insert(4, false)
	c.Lookup(0, false) // 0 becomes MRU; 4 is LRU
	v, ev := c.Insert(8, false)
	if !ev || v.Line != 4 {
		t.Fatalf("evicted %v (ev=%v), want line 4", v, ev)
	}
	if !c.Contains(0) || !c.Contains(8) || c.Contains(4) {
		t.Error("wrong residency after eviction")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := New("t", 2*128*4, 2)
	c.Insert(0, false)
	c.Insert(4, false)
	c.Insert(0, true) // refresh 0 as MRU and dirty
	v, ev := c.Insert(8, false)
	if !ev || v.Line != 4 {
		t.Fatalf("evicted %v, want 4", v)
	}
	inv, dirty := c.Invalidate(0)
	if !inv || !dirty {
		t.Error("line 0 should be present and dirty")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New("t", 128*2, 1) // 2 sets, direct-mapped
	c.Insert(0, true)
	v, ev := c.Insert(2, false) // same set 0
	if !ev || v.Line != 0 || !v.Dirty {
		t.Fatalf("victim = %+v ev=%v, want dirty line 0", v, ev)
	}
}

func TestStoreMarksDirty(t *testing.T) {
	c := New("t", 128*4, 2)
	c.Insert(1, false)
	c.Lookup(1, true)
	_, dirty := c.Invalidate(1)
	if !dirty {
		t.Error("store hit should dirty the line")
	}
}

func TestInvalidateMissing(t *testing.T) {
	c := New("t", 128*4, 2)
	if present, _ := c.Invalidate(9); present {
		t.Error("invalidate of absent line reported present")
	}
}

func TestInsertLRU(t *testing.T) {
	c := New("t", 2*128*4, 2) // 4 sets 2 ways
	c.Insert(0, false)
	c.InsertLRU(4, false) // 4 goes to LRU slot despite being newest
	v, ev := c.Insert(8, false)
	if !ev || v.Line != 4 {
		t.Fatalf("evicted %v, want 4 (the LRU-inserted line)", v)
	}
}

func TestReset(t *testing.T) {
	c := New("t", 128*4, 2)
	c.Insert(1, true)
	c.Lookup(1, false)
	c.Reset()
	if c.Accesses != 0 || c.Hits != 0 || c.Contains(1) {
		t.Error("Reset incomplete")
	}
}

// Property: a cache never holds more distinct lines than its capacity,
// and a line just inserted is always resident.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New("t", 128*16, 4) // 16-line capacity
		for _, l := range lines {
			line := mem.Line(l % 256)
			c.Insert(line, false)
			if !c.Contains(line) {
				return false
			}
		}
		count := 0
		for l := mem.Line(0); l < 256; l++ {
			if c.Contains(l) {
				count++
			}
		}
		return count <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyBasicWalk(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 1 << 10, L1Assoc: 2, L1Lat: 2,
		L2Size: 4 << 10, L2Assoc: 2, L2Lat: 13,
		L3Size: 16 << 10, L3Assoc: 4, L3Lat: 90,
	})
	r := h.Access(100, false, 0)
	if r.Level != Memory {
		t.Fatalf("first access level = %v, want Memory", r.Level)
	}
	if h.DemandMisses != 1 {
		t.Errorf("DemandMisses = %d", h.DemandMisses)
	}
	h.Fill(100, false)
	r = h.Access(100, false, 0)
	if r.Level != LevelL1 || r.Latency != 2 {
		t.Errorf("after fill: level=%v lat=%d", r.Level, r.Latency)
	}
}

func TestHierarchyL2HitPromotesToL1(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 512, L1Assoc: 2, L1Lat: 2, // 4 lines
		L2Size: 4 << 10, L2Assoc: 2, L2Lat: 13,
		L3Size: 16 << 10, L3Assoc: 4, L3Lat: 90,
	})
	h.Fill(1, false)
	// Evict line 1 from the 4-line L1 by filling 4 conflicting lines
	// (sets=2, so lines 3,5,7,9 map to set 1; line 1 is in set 1).
	for _, l := range []mem.Line{3, 5, 7, 9} {
		h.Fill(l, false)
	}
	if h.L1.Contains(1) {
		t.Fatal("line 1 should have been evicted from L1")
	}
	r := h.Access(1, false, 0)
	if r.Level != LevelL2 {
		t.Fatalf("level = %v, want L2", r.Level)
	}
	if !h.L1.Contains(1) {
		t.Error("L2 hit should refill L1")
	}
}

func TestHierarchyVictimL3(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 512, L1Assoc: 2, L1Lat: 2,
		L2Size: 1 << 10, L2Assoc: 2, L2Lat: 13, // 8 lines, 4 sets
		L3Size: 16 << 10, L3Assoc: 4, L3Lat: 90,
	})
	h.Fill(0, false)
	// Force line 0 out of L2: fill two more lines mapping to L2 set 0.
	h.Fill(4, false)
	h.Fill(8, false)
	if h.L2.Contains(0) {
		t.Fatal("line 0 should have left L2")
	}
	if !h.L3.Contains(0) {
		t.Fatal("L2 victim should land in L3")
	}
	r := h.Access(0, false, 0)
	if r.Level != LevelL3 {
		t.Fatalf("level = %v, want L3", r.Level)
	}
	if h.L3.Contains(0) {
		t.Error("L3 hit should remove the line from L3 (victim cache)")
	}
	if !h.L2.Contains(0) || !h.L1.Contains(0) {
		t.Error("L3 hit should promote into L2 and L1")
	}
}

func TestHierarchyDirtyWriteback(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 512, L1Assoc: 2, L1Lat: 2,
		L2Size: 1 << 10, L2Assoc: 2, L2Lat: 13,
		L3Size: 1 << 10, L3Assoc: 2, L3Lat: 90, // tiny L3: 8 lines
	})
	h.Fill(0, true) // dirty fill (store miss)
	// Push 0 out of L2 into L3, then out of L3.
	var wbs []mem.Line
	for _, l := range []mem.Line{4, 8, 12, 16} {
		wbs = append(wbs, h.Fill(l, false)...)
	}
	found := false
	for _, wb := range wbs {
		if wb == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("dirty line 0 never written back; wbs=%v", wbs)
	}
	if h.WritebacksToMemory == 0 {
		t.Error("WritebacksToMemory not counted")
	}
}

func TestHierarchyFillL2Only(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.FillL2Only(7)
	if h.L1.Contains(7) {
		t.Error("FillL2Only touched L1")
	}
	if !h.L2.Contains(7) {
		t.Error("FillL2Only missed L2")
	}
}

func TestHierarchyContainsAndReset(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Fill(3, false)
	if !h.Contains(3) {
		t.Error("Contains(3) false after fill")
	}
	h.Reset()
	if h.Contains(3) || h.DemandMisses != 0 {
		t.Error("Reset incomplete")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelL3.String() != "L3" || Memory.String() != "Memory" {
		t.Error("Level strings wrong")
	}
	if Level(9).String() != "Level?" {
		t.Error("unknown level string")
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	if h.L1.SizeBytes() != 32<<10 || h.L2.SizeBytes() != 1920<<10 || h.L3.SizeBytes() != 36<<20 {
		t.Errorf("sizes: %d %d %d", h.L1.SizeBytes(), h.L2.SizeBytes(), h.L3.SizeBytes())
	}
}

func BenchmarkHierarchyAccessHit(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	h.Fill(1, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(1, false, 0)
	}
}

// InsertAbsent must behave exactly like Insert whenever its absence
// precondition holds: drive two identical caches with a pseudo-random
// line stream, inserting through Insert on one and (absence-checked)
// InsertAbsent on the other, and require identical victims and final
// residency. The 12-set geometry exercises the 3*2^k set decomposition
// alongside the divide path correctness proven below.
func TestInsertAbsentMatchesInsert(t *testing.T) {
	a := New("a", 12*128*4, 4) // 12 sets = 3*2^2, 4 ways
	b := New("b", 12*128*4, 4)
	rng := uint64(1)
	for i := 0; i < 4096; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		l := mem.Line(rng >> 33 & 127) // 128 hot lines -> heavy set conflict
		dirty := rng>>32&1 == 1
		va, eva := a.Insert(l, dirty)
		var vb Victim
		var evb bool
		if b.Contains(l) {
			vb, evb = b.Insert(l, dirty) // refresh path; InsertAbsent forbidden
		} else {
			vb, evb = b.InsertAbsent(l, dirty)
		}
		if va != vb || eva != evb {
			t.Fatalf("step %d line %d: Insert -> (%+v,%v), InsertAbsent path -> (%+v,%v)", i, l, va, eva, vb, evb)
		}
	}
	for l := mem.Line(0); l < 128; l++ {
		if a.Contains(l) != b.Contains(l) {
			t.Fatalf("residency diverges at line %d", l)
		}
		pa, da := a.Invalidate(l)
		pb, db := b.Invalidate(l)
		if pa != pb || da != db {
			t.Fatalf("dirty state diverges at line %d", l)
		}
	}
}

// The three setOf paths (power-of-two mask, 3*2^k decomposition, plain
// modulo) must agree; exercised via residency in same-set geometries.
func TestSetOfPathsAgree(t *testing.T) {
	// sets=12 takes the 3*2^k path; an equivalent plain-modulo geometry
	// is forced by a 5-slice set count (sets=20 is neither 2^k nor
	// 3*2^k). Both must place line l in set l%sets: a direct-mapped
	// cache then evicts exactly on same-set collision.
	for _, sets := range []int{12, 20} {
		c := New("t", sets*128, 1)
		for l := 0; l < 4*sets; l++ {
			v, ev := c.Insert(mem.Line(l), false)
			if l >= sets {
				if !ev || int(v.Line) != l-sets {
					t.Fatalf("sets=%d: inserting %d evicted %+v (ev=%v), want %d", sets, l, v, ev, l-sets)
				}
			} else if ev {
				t.Fatalf("sets=%d: unexpected eviction %+v at line %d", sets, v, l)
			}
		}
	}
}
