package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLint throws arbitrary payloads at the exposition linter: it must
// never panic and must be deterministic — the farm calls it on scrape
// responses, so a crash here takes the telemetry endpoint down.
func FuzzLint(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("# HELP farm_runs_total Completed runs.\n# TYPE farm_runs_total counter\nfarm_runs_total 3\n"))
	f.Add([]byte("# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n"))
	f.Add([]byte("# TYPE orphan counter\n"))
	f.Add([]byte("no_help 1\n"))
	f.Add([]byte("# HELP bad-name x\n"))
	f.Add([]byte("h_bucket{le=\"+Inf\"} 1\n"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		err1 := Lint(payload)
		err2 := Lint(payload)
		switch {
		case err1 == nil && err2 != nil, err1 != nil && err2 == nil:
			t.Fatalf("Lint is nondeterministic: %v vs %v", err1, err2)
		case err1 != nil && err1.Error() != err2.Error():
			t.Fatalf("Lint is nondeterministic: %q vs %q", err1, err2)
		}
	})
}

// FuzzRegistryRender closes the producer/consumer loop: whatever a
// Registry renders (for any grammatical names and any values) must
// pass Lint. A disagreement means either the renderer emits an
// ungrammatical line or the linter rejects legal output — both are
// bugs worth a failing test.
func FuzzRegistryRender(f *testing.F) {
	f.Add("farm_runs_total", "Completed runs.", "mode", "ms", 2.5)
	f.Add("x", "", "l", "", -1.0)
	f.Add("a:b", "multi\nline \\ \"help\"", "_l", "va\\l\"ue\nx", 0.0)

	f.Fuzz(func(t *testing.T, name, help, label, value string, v float64) {
		if !ValidMetricName(name) || !ValidLabelName(label) {
			t.Skip("ungrammatical names are rejected at declaration; nothing to render")
		}
		r := NewRegistry()
		r.Gauge(name, help, label).With(value).Set(v)
		hname := name + "_hist"
		h := r.Histogram(hname, help, []float64{1, 8, 64}, label)
		h.With(value).Observe(v)
		h.With(value).ObserveN(v/2, 3)

		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("render: %v", err)
		}
		if err := Lint(buf.Bytes()); err != nil {
			t.Fatalf("renderer output fails its own linter: %v\npayload:\n%s", err, buf.Bytes())
		}
		if !strings.Contains(buf.String(), hname+"_count") {
			t.Fatalf("histogram _count series missing:\n%s", buf.Bytes())
		}
	})
}
