package metrics

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("farm_runs_total", "Completed runs.", "mode")
	c.With("MS").Add(3)
	c.With("NP").Add(1)
	r.Gauge("farm_queue_depth", "Queued jobs.").With().Set(7)

	got := render(t, r)
	want := `# HELP farm_queue_depth Queued jobs.
# TYPE farm_queue_depth gauge
farm_queue_depth 7
# HELP farm_runs_total Completed runs.
# TYPE farm_runs_total counter
farm_runs_total{mode="MS"} 3
farm_runs_total{mode="NP"} 1
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint: %v", err)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("run_wall_seconds", "Run wall-clock.", []float64{0.1, 1, 10}, "mode")
	s := h.With("MS")
	s.Observe(0.05) // <= 0.1
	s.Observe(0.5)  // <= 1
	s.Observe(2)    // <= 10
	s.Observe(99)   // +Inf

	got := render(t, r)
	for _, line := range []string{
		`run_wall_seconds_bucket{mode="MS",le="0.1"} 1`,
		`run_wall_seconds_bucket{mode="MS",le="1"} 2`,
		`run_wall_seconds_bucket{mode="MS",le="10"} 3`,
		`run_wall_seconds_bucket{mode="MS",le="+Inf"} 4`,
		`run_wall_seconds_sum{mode="MS"} 101.55`,
		`run_wall_seconds_count{mode="MS"} 4`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, got)
		}
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint: %v", err)
	}
}

func TestHistogramAddBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Pre-bucketed latency.", []float64{1, 2})
	s := h.With()
	s.AddBucket(0, 5, 2.5)
	s.AddBucket(2, 1, 30) // +Inf bucket
	got := render(t, r)
	for _, line := range []string{
		`lat_bucket{le="1"} 5`,
		`lat_bucket{le="2"} 5`,
		`lat_bucket{le="+Inf"} 6`,
		`lat_sum 32.5`,
		`lat_count 6`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, got)
		}
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "x", "path").With("a\\b\"c\nd").Set(1)
	got := render(t, r)
	want := `g{path="a\\b\"c\nd"} 1`
	if !strings.Contains(got, want+"\n") {
		t.Errorf("escaping: got %q, want to contain %q", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint rejects escaped labels: %v", err)
	}
}

func TestFamilyIdempotentDeclaration(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", "a").With("1").Add(1)
	r.Counter("c_total", "h", "a").With("1").Add(2)
	got := render(t, r)
	if !strings.Contains(got, "c_total{a=\"1\"} 3\n") {
		t.Errorf("redeclared family did not accumulate:\n%s", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("redeclaring with different labels did not panic")
		}
	}()
	r.Counter("c_total", "h", "b")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, bad := range []string{"", "9x", "a-b", "a b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			NewRegistry().Counter(bad, "h")
		}()
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"sample before HELP/TYPE": "x 1\n",
		"TYPE without HELP":       "# TYPE x counter\nx 1\n",
		"malformed sample":        "# HELP x h\n# TYPE x counter\nx{bad} 1\n",
		"bad value":               "# HELP x h\n# TYPE x counter\nx one\n",
		"histogram missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram +Inf != count": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
	}
	for name, payload := range cases {
		if err := Lint([]byte(payload)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, payload)
		}
	}
}
