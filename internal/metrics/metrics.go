// Package metrics is a small, dependency-free Prometheus client: it
// implements the counter, gauge and histogram instrument types with
// labels and renders them in the Prometheus text exposition format
// version 0.0.4 (the format every scraper and the `promtool` grammar
// accept). It exists so the farm daemon can be scraped by standard
// tooling without pulling a client library into a stdlib-only tree.
//
// The intended use is collect-on-scrape: the handler builds a fresh
// Registry from the live source of truth (atomic farm counters, the
// aggregated obs sinks) on every request and writes it out, so the
// instruments themselves carry no synchronization. A Registry must not
// be written from one goroutine while another renders it.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// kind is the instrument type, named as the TYPE line spells it.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry holds metric families and renders them sorted by name.
type Registry struct {
	families map[string]*family
}

// family is one named metric with a fixed label schema and one series
// per distinct label-value tuple.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histogram upper bounds, ascending, without +Inf
	series map[string]*Series
}

// Series is one (family, label values) time series. For counters and
// gauges only val is used; histograms use buckets/sum/count.
type Series struct {
	fam     *family
	labels  []string // values, aligned with fam.labels
	val     float64
	buckets []uint64 // per-bound counts (not cumulative), +Inf implicit
	infs    uint64
	sum     float64
	count   uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter declares (or retrieves) a counter family. Redeclaring an
// existing name with a different type or label schema panics: that is
// always a programming error, never data.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return &Family{r.family(name, help, kindCounter, nil, labels)}
}

// Gauge declares (or retrieves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return &Family{r.family(name, help, kindGauge, nil, labels)}
}

// Histogram declares (or retrieves) a histogram family with the given
// ascending upper bounds (the implicit +Inf bucket is added on render).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Family {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending at %d", name, i))
		}
	}
	return &Family{r.family(name, help, kindHistogram, bounds, labels)}
}

func (r *Registry) family(name, help string, k kind, bounds []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s redeclared with different type or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s redeclared with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels,
		bounds: bounds, series: make(map[string]*Series)}
	r.families[name] = f
	return f
}

// Family is the user-facing handle on a metric family.
type Family struct{ f *family }

// With returns the series for the given label values (created on first
// use); the value count must match the declared label names.
func (fm *Family) With(values ...string) *Series {
	f := fm.f
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	s, ok := f.series[key]
	if !ok {
		s = &Series{fam: f, labels: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// Add increments a counter or gauge. Negative deltas panic on counters.
func (s *Series) Add(v float64) {
	if s.fam.kind == kindCounter && v < 0 {
		panic(fmt.Sprintf("metrics: counter %s decremented", s.fam.name))
	}
	s.val += v
}

// Set assigns a gauge's value.
func (s *Series) Set(v float64) {
	if s.fam.kind != kindGauge {
		panic(fmt.Sprintf("metrics: Set on non-gauge %s", s.fam.name))
	}
	s.val = v
}

// Observe records one histogram observation.
func (s *Series) Observe(v float64) { s.ObserveN(v, 1) }

// ObserveN records n observations of value v (one sum contribution per
// observation), letting pre-bucketed sources replay their counts.
func (s *Series) ObserveN(v float64, n uint64) {
	if s.fam.kind != kindHistogram {
		panic(fmt.Sprintf("metrics: Observe on non-histogram %s", s.fam.name))
	}
	if n == 0 {
		return
	}
	placed := false
	for i, b := range s.fam.bounds {
		if v <= b {
			s.buckets[i] += n
			placed = true
			break
		}
	}
	if !placed {
		s.infs += n
	}
	s.sum += v * float64(n)
	s.count += n
}

// AddBucket adds n observations known only to fall in the bucket with
// the given upper bound index (len(bounds) means +Inf), contributing
// sum to _sum. It is the adapter path for sources that already hold
// bucketed counts (e.g. stats.Histogram) without raw values.
func (s *Series) AddBucket(idx int, n uint64, sum float64) {
	if s.fam.kind != kindHistogram {
		panic(fmt.Sprintf("metrics: AddBucket on non-histogram %s", s.fam.name))
	}
	if idx < len(s.buckets) {
		s.buckets[idx] += n
	} else {
		s.infs += n
	}
	s.sum += sum
	s.count += n
}

// WriteTo renders the registry in the text exposition format, families
// sorted by name and series by label values, so output is reproducible.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		r.families[n].render(&sb)
	}
	nn, err := io.WriteString(w, sb.String())
	return int64(nn), err
}

func (f *family) render(sb *strings.Builder) {
	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		switch f.kind {
		case kindHistogram:
			var cum uint64
			for i, b := range f.bounds {
				cum += s.buckets[i]
				sb.WriteString(f.name)
				sb.WriteString("_bucket")
				writeLabels(sb, f.labels, s.labels, "le", formatFloat(b))
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatUint(cum, 10))
				sb.WriteByte('\n')
			}
			cum += s.infs
			sb.WriteString(f.name)
			sb.WriteString("_bucket")
			writeLabels(sb, f.labels, s.labels, "le", "+Inf")
			fmt.Fprintf(sb, " %d\n", cum)
			sb.WriteString(f.name)
			sb.WriteString("_sum")
			writeLabels(sb, f.labels, s.labels, "", "")
			fmt.Fprintf(sb, " %s\n", formatFloat(s.sum))
			sb.WriteString(f.name)
			sb.WriteString("_count")
			writeLabels(sb, f.labels, s.labels, "", "")
			fmt.Fprintf(sb, " %d\n", s.count)
		default:
			sb.WriteString(f.name)
			writeLabels(sb, f.labels, s.labels, "", "")
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s.val))
			sb.WriteByte('\n')
		}
	}
}

// writeLabels renders `{a="x",b="y"}` (nothing when there are no
// labels); extraName/extraValue append one more pair (histogram `le`).
func writeLabels(sb *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// formatFloat renders a sample value: integral values without an
// exponent or trailing zeros (scrapers parse either; the compact form
// keeps diffs and tests readable), non-finite values as Prometheus
// spells them.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// validName reports whether s is a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool { return validIdent(s, true) }

// validLabel reports whether s is a legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabel(s string) bool { return validIdent(s, false) }

// ValidMetricName reports whether s is a legal exposition metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*). It is the same grammar Lint enforces on
// rendered payloads, exported so tooling (asdlint's metriclint pass)
// can validate literal names at analysis time.
func ValidMetricName(s string) bool { return validName(s) }

// ValidLabelName reports whether s is a legal exposition label name
// ([a-zA-Z_][a-zA-Z0-9_]*). Counterpart of ValidMetricName for label
// keys; "le" is reserved for histogram buckets and rejected here.
func ValidLabelName(s string) bool { return validLabel(s) && s != "le" }

func validIdent(s string, colons bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c == ':' && colons:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
