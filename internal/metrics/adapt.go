package metrics

import (
	"strconv"

	"asdsim/internal/obs"
	"asdsim/internal/sim"
)

// This file adapts the simulator's native measurement types into
// metric families. Each Add* call is collect-on-scrape: it folds the
// source's current state into the registry under the given label
// values, declaring the families on first use. Within one registry all
// calls to the same adapter must use the same label-name schema.

// AddDepthStats folds a per-depth prefetch-efficiency table into one
// labeled counter family, obs_prefetch_depth_events_total, with a
// `depth` label (the deepest bucket is open-ended, "8+") and an
// `outcome` label naming the event class.
func AddDepthStats(r *Registry, d *obs.DepthStats, labelNames, labelValues []string) {
	names := append(append([]string(nil), labelNames...), "depth", "outcome")
	fam := r.Counter("obs_prefetch_depth_events_total",
		"Memory-side prefetch events by prefetch depth and outcome.", names...)
	outcomes := []struct {
		name   string
		counts *[obs.MaxTrackedDepth + 1]uint64
	}{
		{"nominated", &d.Nominated},
		{"issued", &d.Issued},
		{"timely", &d.Timely},
		{"late", &d.Late},
		{"wasted", &d.Wasted},
		{"dropped", &d.Dropped},
	}
	for depth := 1; depth <= obs.MaxTrackedDepth; depth++ {
		dl := strconv.Itoa(depth)
		if depth == obs.MaxTrackedDepth {
			dl += "+"
		}
		for _, oc := range outcomes {
			if n := oc.counts[depth]; n > 0 {
				values := append(append([]string(nil), labelValues...), dl, oc.name)
				fam.With(values...).Add(float64(n))
			}
		}
	}
}

// AddResult folds one finished run's headline statistics into labeled
// families: simulated work as counters, rates and hit fractions as
// gauges. Prefetch-efficiency gauges are emitted only for modes where
// memory-side prefetching ran (they are identically zero otherwise).
func AddResult(r *Registry, res *sim.Result, labelNames, labelValues []string) {
	counter := func(name, help string, v float64) {
		if v != 0 {
			r.Counter(name, help, labelNames...).With(labelValues...).Add(v)
		}
	}
	gauge := func(name, help string, v float64) {
		r.Gauge(name, help, labelNames...).With(labelValues...).Set(v)
	}
	counter("sim_cycles_total", "Simulated CPU cycles executed.", float64(res.Cycles))
	counter("sim_instructions_total", "Simulated instructions retired.", float64(res.Instructions))
	counter("sim_stall_cycles_total", "CPU cycles threads spent blocked on memory.", float64(res.StallCycles))
	gauge("sim_ipc", "Instructions per cycle of the run.", res.IPC)
	gauge("sim_l1_hit_rate", "L1 data cache hit rate.", res.L1HitRate)
	gauge("sim_l2_hit_rate", "L2 cache hit rate.", res.L2HitRate)
	gauge("sim_l3_hit_rate", "L3 victim cache hit rate.", res.L3HitRate)
	if res.Mode == sim.MS || res.Mode == sim.PMS {
		gauge("sim_prefetch_coverage", "Fraction of demand reads covered by memory-side prefetches.", res.Coverage)
		gauge("sim_prefetch_useful_fraction", "Fraction of issued memory-side prefetches that were used.", res.UsefulPrefetchFrac)
		gauge("sim_delayed_regular_fraction", "Fraction of regular commands delayed behind prefetches.", res.DelayedRegularFrac)
	}
}
