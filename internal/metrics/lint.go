package metrics

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Lint checks a text-exposition payload against the 0.0.4 grammar:
// every line must be a well-formed HELP/TYPE comment or sample; every
// family must open with a HELP+TYPE pair before its samples; histogram
// families must expose _bucket series ending in le="+Inf" plus _sum and
// _count, with the +Inf bucket equal to _count. It returns the first
// violation found. Lint is used by this package's own tests and by the
// farm's scrape-endpoint tests, so the grammar is enforced everywhere
// an exposition is produced.
func Lint(payload []byte) error {
	var (
		reHelp   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
		reType   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
		reSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\\\|\\"|\\n)*")(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\\\|\\"|\\n)*")*\})? (NaN|[+-]Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)
		reInf    = regexp.MustCompile(`le="\+Inf"`)
	)
	type famState struct {
		typ       string
		sawHelp   bool
		sawInf    bool
		infVal    map[string]float64 // base labels -> +Inf bucket value
		countVal  map[string]float64
		sawSum    bool
		sawSample bool
	}
	fams := map[string]*famState{}
	var lastHelp string
	baseName := func(n string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(n, suf); ok {
				if f := fams[b]; f != nil && f.typ == "histogram" {
					return b
				}
			}
		}
		return n
	}
	// stripLE removes the le pair so +Inf buckets and _count samples of
	// the same series can be matched up.
	reLE := regexp.MustCompile(`(\{|,)le="[^"]*"(,|\})`)
	stripLE := func(labels string) string {
		out := reLE.ReplaceAllStringFunc(labels, func(m string) string {
			if strings.HasPrefix(m, "{") && strings.HasSuffix(m, "}") {
				return ""
			}
			if strings.HasPrefix(m, "{") {
				return "{"
			}
			return m[len(m)-1:]
		})
		return out
	}

	for i, line := range strings.Split(string(payload), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if m := reHelp.FindStringSubmatch(line); m != nil {
			f := fams[m[1]]
			if f == nil {
				f = &famState{infVal: map[string]float64{}, countVal: map[string]float64{}}
				fams[m[1]] = f
			}
			if f.sawSample {
				return fmt.Errorf("line %d: HELP for %s after its samples", lineNo, m[1])
			}
			f.sawHelp = true
			lastHelp = m[1]
			continue
		}
		if m := reType.FindStringSubmatch(line); m != nil {
			f := fams[m[1]]
			if f == nil || !f.sawHelp || lastHelp != m[1] {
				return fmt.Errorf("line %d: TYPE for %s without preceding HELP", lineNo, m[1])
			}
			if f.sawSample {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, m[1])
			}
			f.typ = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: malformed comment: %q", lineNo, line)
		}
		m := reSample.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[5]
		base := baseName(name)
		f := fams[base]
		if f == nil || f.typ == "" {
			return fmt.Errorf("line %d: sample %s before HELP/TYPE for %s", lineNo, name, base)
		}
		f.sawSample = true
		if f.typ == "histogram" {
			val, _ := strconv.ParseFloat(valStr, 64)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !strings.Contains(labels, `le="`) {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				if reInf.MatchString(labels) {
					f.sawInf = true
					f.infVal[stripLE(labels)] = val
				}
			case strings.HasSuffix(name, "_sum"):
				f.sawSum = true
			case strings.HasSuffix(name, "_count"):
				f.countVal[labels] = val
			default:
				return fmt.Errorf("line %d: bare sample %s for histogram %s", lineNo, name, base)
			}
		}
	}
	for name, f := range fams {
		if f.typ == "" {
			return fmt.Errorf("family %s: HELP without TYPE", name)
		}
		if f.typ == "histogram" && f.sawSample {
			if !f.sawInf || !f.sawSum || len(f.countVal) == 0 {
				return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket, _sum or _count", name)
			}
			for labels, c := range f.countVal {
				if inf, ok := f.infVal[labels]; !ok || inf != c {
					return fmt.Errorf("histogram %s%s: +Inf bucket %v != _count %v", name, labels, f.infVal[labels], c)
				}
			}
		}
	}
	return nil
}
