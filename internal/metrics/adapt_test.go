package metrics

import (
	"strings"
	"testing"

	"asdsim/internal/obs"
	"asdsim/internal/sim"
)

func TestAddDepthStats(t *testing.T) {
	var d obs.DepthStats
	d.Nominated[1] = 10
	d.Timely[1] = 7
	d.Late[2] = 3
	d.Wasted[obs.MaxTrackedDepth] = 2

	r := NewRegistry()
	AddDepthStats(r, &d, []string{"benchmark"}, []string{"GemsFDTD"})
	got := render(t, r)
	for _, line := range []string{
		`obs_prefetch_depth_events_total{benchmark="GemsFDTD",depth="1",outcome="nominated"} 10`,
		`obs_prefetch_depth_events_total{benchmark="GemsFDTD",depth="1",outcome="timely"} 7`,
		`obs_prefetch_depth_events_total{benchmark="GemsFDTD",depth="2",outcome="late"} 3`,
		`obs_prefetch_depth_events_total{benchmark="GemsFDTD",depth="8+",outcome="wasted"} 2`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint: %v", err)
	}
}

func TestAddResult(t *testing.T) {
	res, err := sim.Run("GemsFDTD", sim.Default(sim.MS, 60_000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := NewRegistry()
	labels := []string{"benchmark", "mode"}
	values := []string{res.Benchmark, res.Mode.String()}
	AddResult(r, &res, labels, values)
	got := render(t, r)
	for _, fam := range []string{
		"sim_cycles_total", "sim_instructions_total", "sim_ipc",
		"sim_l1_hit_rate", "sim_prefetch_coverage",
	} {
		if !strings.Contains(got, fam+`{benchmark="GemsFDTD",mode="MS"}`) {
			t.Errorf("missing family %s in:\n%s", fam, got)
		}
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint: %v", err)
	}
	// Folding a second run into the same registry must accumulate the
	// counters, not redeclare the families.
	AddResult(r, &res, labels, values)
}
