package prefetch

import "asdsim/internal/mem"

// GHBConfig parameterises the Global History Buffer prefetcher.
type GHBConfig struct {
	// Entries is the circular history buffer depth (the original design
	// shows 256-512 entries outperform much larger classic tables).
	Entries int
	// Degree is how many successor links to chase per miss.
	Degree int
}

// DefaultGHBConfig returns a 256-entry, degree-1 configuration.
func DefaultGHBConfig() GHBConfig { return GHBConfig{Entries: 256, Degree: 1} }

// ghbEntry is one slot of the circular history buffer.
type ghbEntry struct {
	line mem.Line
	// prev is the absolute sequence number of the previous occurrence
	// of the same line, or 0.
	prev uint64
}

// GHB is an address-correlating Global History Buffer prefetcher (Nesbit
// and Smith, HPCA 2004 — the paper's related work [18]) adapted to the
// memory side: it records the MC-level Read stream in a small circular
// buffer with per-address links and prefetches the line that followed
// the current one on its previous occurrence. It is implemented here as
// an extension baseline beyond the paper's evaluation: unlike ASD it can
// learn arbitrary (non-unit-stride) correlations, at the cost of
// re-learning each address pair instead of generalising across a stream.
type GHB struct {
	cfg GHBConfig
	buf []ghbEntry
	// index maps a line to the absolute sequence number of its most
	// recent occurrence.
	index map[mem.Line]uint64
	// seq is the absolute count of observed reads (1-based positions).
	seq uint64

	// Issued counts emitted prefetches.
	Issued uint64

	out []mem.Line // reusable nomination scratch
}

// NewGHB returns a GHB engine.
func NewGHB(cfg GHBConfig) *GHB {
	if cfg.Entries <= 0 || cfg.Degree <= 0 {
		panic("prefetch: invalid GHB config")
	}
	return &GHB{cfg: cfg, buf: make([]ghbEntry, cfg.Entries), index: make(map[mem.Line]uint64)}
}

// slotFor maps an absolute sequence number to its buffer slot.
func (g *GHB) slotFor(seq uint64) *ghbEntry { return &g.buf[(seq-1)%uint64(len(g.buf))] }

// inWindow reports whether the history at sequence number s is still
// resident in the circular buffer.
func (g *GHB) inWindow(s uint64) bool {
	return s > 0 && g.seq-s < uint64(len(g.buf)) && g.seq >= s
}

// ObserveRead implements MSEngine.
//
//asd:allow hotpath-noalloc GHB is the map-backed comparison baseline, not the paper configuration; its table churn is inherent
func (g *GHB) ObserveRead(line mem.Line, _ uint64) []mem.Line {
	out := g.out[:0]
	// Chase the most recent prior occurrence and nominate its
	// successors.
	if prior := g.index[line]; g.inWindow(prior) && g.slotFor(prior).line == line {
		succ := prior + 1
		for d := 0; d < g.cfg.Degree && g.inWindow(succ) && succ <= g.seq; d++ {
			cand := g.slotFor(succ).line
			if cand != line {
				out = append(out, cand)
			}
			succ++
		}
	}
	// Record this occurrence.
	g.seq++
	e := g.slotFor(g.seq)
	// The slot we overwrite may still be indexed; the inWindow check on
	// lookup guards against stale hits, and the stored-line comparison
	// guards against reused sequence slots.
	*e = ghbEntry{line: line, prev: g.index[line]}
	g.index[line] = g.seq
	// Bound the index: drop mappings that have fallen out of the buffer
	// opportunistically (full GC every Entries observations).
	if g.seq%uint64(len(g.buf)) == 0 {
		//asd:allow determinism GC deletes every out-of-window key; the surviving set is order-independent
		for l, s := range g.index {
			if !g.inWindow(s) {
				delete(g.index, l)
			}
		}
	}
	g.Issued += uint64(len(out))
	g.out = out
	return out
}

// Tick implements MSEngine.
//
//asd:hotpath
func (g *GHB) Tick(uint64) {}
