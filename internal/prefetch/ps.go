// Package prefetch implements the baseline prefetchers the paper
// evaluates against: the Power5+'s processor-side sequential stream
// prefetcher (§4.2), and the two memory-controller-resident baselines of
// Fig. 11 — a next-line prefetcher and a Power5-style stream prefetcher.
package prefetch

import "asdsim/internal/mem"

// PSConfig parameterises the processor-side prefetcher.
type PSConfig struct {
	// DetectEntries is the size of the stream detection unit (12 on the
	// Power5+).
	DetectEntries int
	// MaxStreams is how many confirmed streams prefetch concurrently (8).
	MaxStreams int
	// L2Ahead is how far ahead of the demand stream the L2-destined
	// prefetch runs; the L1-destined prefetch runs one line ahead.
	L2Ahead int
	// Lifetime is the detection-entry lifetime in CPU cycles.
	Lifetime uint64
}

// DefaultPSConfig matches the paper's description of the Power5+ unit:
// 12 detection entries, 8 concurrent streams; it "waits to issue
// prefetches until it detects two consecutive cache misses" and in steady
// state keeps one extra line in L1 and one further line in L2.
func DefaultPSConfig() PSConfig {
	return PSConfig{DetectEntries: 12, MaxStreams: 8, L2Ahead: 5, Lifetime: 8192}
}

// Request is one prefetch the PS unit wants performed.
type Request struct {
	Line mem.Line
	// IntoL1 selects the fill depth: true brings the line into L1 (and
	// L2); false stages it in L2 only.
	IntoL1 bool
}

// psEntry is one stream-detection slot.
type psEntry struct {
	valid     bool
	last      mem.Line
	dir       int
	confirmed bool
	depth     int // current L2-bound prefetch distance (ramps to L2Ahead)
	expiresAt uint64
}

// PS is the Power5+-style processor-side stream prefetcher. It observes
// L1 demand misses and emits prefetch requests that the CPU model turns
// into cache fills or memory reads (which reach the memory controller
// indistinguishable from demand reads, as the paper notes).
type PS struct {
	cfg     PSConfig
	entries []psEntry

	// Issued counts prefetch requests emitted.
	Issued uint64
	// Confirmations counts streams that reached confirmed state.
	Confirmations uint64

	out []Request // reusable request scratch
	// minExpiry is a lower bound on the earliest entry expiry, letting
	// the per-miss expiry sweep early-exit while nothing has run out.
	minExpiry uint64
	// nConfirmed tracks how many valid entries are confirmed, so the
	// MaxStreams check needs no table scan.
	nConfirmed int
}

// NewPS returns a processor-side prefetcher.
func NewPS(cfg PSConfig) *PS {
	if cfg.DetectEntries <= 0 || cfg.MaxStreams <= 0 || cfg.L2Ahead < 1 || cfg.Lifetime == 0 {
		panic("prefetch: invalid PS config")
	}
	return &PS{cfg: cfg, entries: make([]psEntry, cfg.DetectEntries), minExpiry: ^uint64(0)}
}

// noteExpiry lowers the cached expiry bound to cover a refreshed entry.
func (p *PS) noteExpiry(at uint64) {
	if at < p.minExpiry {
		p.minExpiry = at
	}
}

// ObserveMiss presents an L1 demand-miss line at CPU cycle now and
// returns the prefetches to perform. The returned slice aliases a
// scratch buffer owned by the PS unit and is valid only until the next
// ObserveMiss call.
//
//asd:hotpath
func (p *PS) ObserveMiss(line mem.Line, now uint64) []Request {
	// Expire stale entries (skipped while the earliest possible expiry
	// is still in the future: no entry can have run out).
	if now >= p.minExpiry {
		min := ^uint64(0)
		for i := range p.entries {
			e := &p.entries[i]
			if !e.valid {
				continue
			}
			if e.expiresAt <= now {
				e.valid = false
				if e.confirmed {
					p.nConfirmed--
				}
			} else if e.expiresAt < min {
				min = e.expiresAt
			}
		}
		p.minExpiry = min
	}
	// Match against an existing entry (the expected next line in either
	// the entry's direction, or confirm direction on second miss).
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			continue
		}
		var dir int
		switch line {
		case e.last:
			// Re-miss of the tracked line (MSHR merge window):
			// refresh, do not allocate a duplicate entry.
			e.expiresAt = now + p.cfg.Lifetime
			p.noteExpiry(e.expiresAt)
			return nil
		case e.last.Next(+1):
			dir = +1
		case e.last.Next(-1):
			dir = -1
		default:
			continue
		}
		if !e.confirmed {
			// Second consecutive miss: confirm if a stream slot is
			// free (MaxStreams bounds confirmed entries).
			if p.confirmedCount() >= p.cfg.MaxStreams {
				return nil
			}
			e.confirmed = true
			p.nConfirmed++
			e.dir = dir
			e.depth = 1
			p.Confirmations++
			e.last = line
			e.expiresAt = now + p.cfg.Lifetime
			p.noteExpiry(e.expiresAt)
			// Confirmation: pull only the next line. The L2-bound
			// distance ramps on subsequent advances, so a stream that
			// dies young has wasted at most one prefetch — the cost
			// the paper's introduction attributes to an n=2 policy.
			p.Issued++
			p.out = append(p.out[:0], Request{Line: line.Next(e.dir), IntoL1: true})
			return p.out
		}
		if dir != e.dir {
			continue
		}
		e.last = line
		e.expiresAt = now + p.cfg.Lifetime
		p.noteExpiry(e.expiresAt)
		if e.depth < p.cfg.L2Ahead {
			e.depth++
		}
		// Steady state: one line ahead into L1, depth lines ahead into
		// L2 (depth reaches L2Ahead after the ramp).
		p.out = append(p.out[:0],
			Request{Line: line.Next(e.dir), IntoL1: true},
			Request{Line: line.Next(e.dir * e.depth), IntoL1: false},
		)
		p.Issued += 2
		return p.out
	}
	// New potential stream: allocate (evict the oldest unconfirmed, or
	// the oldest entry if all are confirmed).
	idx := -1
	var oldest uint64 = ^uint64(0)
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			idx = i
			break
		}
		if e.expiresAt < oldest && (!e.confirmed || idx == -1) {
			oldest = e.expiresAt
			idx = i
		}
	}
	if p.entries[idx].valid && p.entries[idx].confirmed {
		p.nConfirmed--
	}
	p.entries[idx] = psEntry{valid: true, last: line, expiresAt: now + p.cfg.Lifetime}
	p.noteExpiry(now + p.cfg.Lifetime)
	return nil
}

func (p *PS) confirmedCount() int { return p.nConfirmed }

// ActiveStreams returns the number of confirmed streams (reporting).
func (p *PS) ActiveStreams() int { return p.confirmedCount() }
