package prefetch

import "asdsim/internal/mem"

// MSEngine is the interface a memory-side prefetch engine presents to the
// memory controller: it observes the MC-level demand-Read stream and
// nominates lines for the Low Priority Queue. core.Engine (Adaptive
// Stream Detection) satisfies this, as do the two Fig. 11 baselines
// below.
type MSEngine interface {
	// ObserveRead sees one demand Read at CPU cycle now and returns
	// lines to prefetch. The returned slice may alias a scratch buffer
	// owned by the engine and is valid only until the next ObserveRead
	// call: callers must consume it before observing again.
	ObserveRead(line mem.Line, now uint64) []mem.Line
	// Tick lets the engine expire internal state on quiet channels.
	Tick(now uint64)
}

// NextLine is the "no ASD + next-line prefetcher" baseline of Fig. 11: it
// prefetches line+1 after every demand Read, unconditionally.
type NextLine struct {
	// Issued counts emitted prefetches.
	Issued uint64

	out []mem.Line // reusable nomination scratch
}

// NewNextLine returns the next-line baseline engine.
func NewNextLine() *NextLine { return &NextLine{} }

// ObserveRead implements MSEngine.
//
//asd:hotpath
func (n *NextLine) ObserveRead(line mem.Line, _ uint64) []mem.Line {
	n.Issued++
	n.out = append(n.out[:0], line.Next(+1))
	return n.out
}

// Tick implements MSEngine.
//
//asd:hotpath
func (n *NextLine) Tick(uint64) {}

// P5StyleConfig parameterises the Power5-style in-MC baseline.
type P5StyleConfig struct {
	// Slots is the number of streams tracked.
	Slots int
	// Lifetime is the per-slot lifetime in CPU cycles.
	Lifetime uint64
}

// DefaultP5StyleConfig mirrors the ASD Stream Filter footprint so the
// Fig. 11 comparison isolates the decision policy, not table size.
func DefaultP5StyleConfig() P5StyleConfig { return P5StyleConfig{Slots: 8, Lifetime: 4096} }

type p5Slot struct {
	valid     bool
	last      mem.Line
	length    int
	dir       int
	expiresAt uint64
}

// P5Style is the "no ASD + P5-style prefetcher" baseline of Fig. 11: a
// classic n=2 stream prefetcher in the memory controller. It waits for
// two consecutive Reads and then prefetches the next line on every
// subsequent stream advance; its stopping criterion is the stream dying —
// i.e. one useless prefetch per stream, exactly the cost the paper's
// introduction analyses.
type P5Style struct {
	cfg   P5StyleConfig
	slots []p5Slot

	// Issued counts emitted prefetches.
	Issued uint64

	out []mem.Line // reusable nomination scratch
	// minExpiry is a lower bound on the earliest slot expiry, letting
	// the per-cycle Tick sweep early-exit while nothing has run out.
	minExpiry uint64
}

// NewP5Style returns the Power5-style in-MC baseline.
func NewP5Style(cfg P5StyleConfig) *P5Style {
	if cfg.Slots <= 0 || cfg.Lifetime == 0 {
		panic("prefetch: invalid P5Style config")
	}
	return &P5Style{cfg: cfg, slots: make([]p5Slot, cfg.Slots), minExpiry: ^uint64(0)}
}

// ObserveRead implements MSEngine.
//
//asd:hotpath
func (p *P5Style) ObserveRead(line mem.Line, now uint64) []mem.Line {
	p.Tick(now)
	for i := range p.slots {
		s := &p.slots[i]
		if !s.valid {
			continue
		}
		var dir int
		switch line {
		case s.last:
			s.expiresAt = now + p.cfg.Lifetime
			p.noteExpiry(s.expiresAt)
			return nil
		case s.last.Next(+1):
			dir = +1
		case s.last.Next(-1):
			dir = -1
		default:
			continue
		}
		if s.length >= 2 && dir != s.dir {
			continue
		}
		s.dir = dir
		s.length++
		s.last = line
		s.expiresAt = now + p.cfg.Lifetime
		p.noteExpiry(s.expiresAt)
		// n=2 policy: from the second consecutive Read onward, always
		// pull the next line.
		p.Issued++
		p.out = append(p.out[:0], line.Next(dir))
		return p.out
	}
	for i := range p.slots {
		s := &p.slots[i]
		if s.valid {
			continue
		}
		*s = p5Slot{valid: true, last: line, length: 1, expiresAt: now + p.cfg.Lifetime}
		p.noteExpiry(s.expiresAt)
		return nil
	}
	return nil
}

// noteExpiry lowers the cached expiry bound to cover a refreshed slot.
func (p *P5Style) noteExpiry(at uint64) {
	if at < p.minExpiry {
		p.minExpiry = at
	}
}

// Tick implements MSEngine. The sweep is skipped while the earliest
// possible expiry is still in the future (no slot can have run out).
//
//asd:hotpath
func (p *P5Style) Tick(now uint64) {
	if now < p.minExpiry {
		return
	}
	min := ^uint64(0)
	for i := range p.slots {
		s := &p.slots[i]
		if !s.valid {
			continue
		}
		if s.expiresAt <= now {
			s.valid = false
		} else if s.expiresAt < min {
			min = s.expiresAt
		}
	}
	p.minExpiry = min
}
