package prefetch

import (
	"testing"

	"asdsim/internal/mem"
)

func TestNewPSPanics(t *testing.T) {
	bad := []PSConfig{
		{DetectEntries: 0, MaxStreams: 8, L2Ahead: 5, Lifetime: 1},
		{DetectEntries: 12, MaxStreams: 0, L2Ahead: 5, Lifetime: 1},
		{DetectEntries: 12, MaxStreams: 8, L2Ahead: 0, Lifetime: 1},
		{DetectEntries: 12, MaxStreams: 8, L2Ahead: 5, Lifetime: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewPS(cfg)
		}()
	}
}

func TestPSWaitsForTwoMisses(t *testing.T) {
	p := NewPS(DefaultPSConfig())
	if got := p.ObserveMiss(100, 0); got != nil {
		t.Fatalf("first miss prefetched %v", got)
	}
	got := p.ObserveMiss(101, 1)
	// Confirmation pulls exactly one line: the cost of a dead length-2
	// stream is one useless prefetch, as the paper's introduction
	// analyses for an n=2 policy.
	if len(got) != 1 || got[0].Line != 102 || !got[0].IntoL1 {
		t.Fatalf("confirmation requests = %v, want [{102 IntoL1}]", got)
	}
	if p.Confirmations != 1 || p.ActiveStreams() != 1 {
		t.Errorf("confirmations=%d active=%d", p.Confirmations, p.ActiveStreams())
	}
}

func TestPSDepthRampsToL2Ahead(t *testing.T) {
	cfg := DefaultPSConfig() // L2Ahead 5
	p := NewPS(cfg)
	p.ObserveMiss(100, 0)
	p.ObserveMiss(101, 1) // confirm, depth 1
	wantDepth := []int{2, 3, 4, 5, 5}
	line := mem.Line(102)
	for i, want := range wantDepth {
		got := p.ObserveMiss(line, uint64(i+2))
		if len(got) != 2 {
			t.Fatalf("advance %d: requests = %v", i, got)
		}
		if got[1].Line != line.Next(want) {
			t.Errorf("advance %d: L2 request at %d, want %d (depth %d)",
				i, got[1].Line, line.Next(want), want)
		}
		line++
	}
}

func TestPSDescendingStream(t *testing.T) {
	p := NewPS(DefaultPSConfig())
	p.ObserveMiss(100, 0)
	got := p.ObserveMiss(99, 1)
	if len(got) != 1 || got[0].Line != 98 {
		t.Fatalf("descending confirmation = %v, want [{98 IntoL1}]", got)
	}
}

func TestPSRemissRefreshesWithoutDuplicates(t *testing.T) {
	p := NewPS(DefaultPSConfig())
	p.ObserveMiss(100, 0)
	if got := p.ObserveMiss(100, 1); got != nil {
		t.Fatalf("re-miss emitted %v", got)
	}
	// The entry must still confirm on the true next line.
	if got := p.ObserveMiss(101, 2); len(got) != 1 {
		t.Fatalf("confirmation after re-miss = %v", got)
	}
}

func TestPSMaxStreamsBound(t *testing.T) {
	cfg := DefaultPSConfig()
	cfg.MaxStreams = 2
	p := NewPS(cfg)
	// Confirm two streams.
	p.ObserveMiss(100, 0)
	p.ObserveMiss(101, 1)
	p.ObserveMiss(2000, 2)
	p.ObserveMiss(2001, 3)
	if p.ActiveStreams() != 2 {
		t.Fatalf("active = %d", p.ActiveStreams())
	}
	// A third stream may detect but not confirm.
	p.ObserveMiss(5000, 4)
	if got := p.ObserveMiss(5001, 5); got != nil {
		t.Errorf("third stream confirmed beyond MaxStreams: %v", got)
	}
}

func TestPSEntryExpiry(t *testing.T) {
	cfg := DefaultPSConfig()
	cfg.Lifetime = 100
	p := NewPS(cfg)
	p.ObserveMiss(100, 0)
	p.ObserveMiss(101, 1)
	// Expired by 500: the next in-stream miss is a fresh detection.
	if got := p.ObserveMiss(102, 500); got != nil {
		t.Errorf("expired stream still prefetched: %v", got)
	}
}

func TestNextLine(t *testing.T) {
	n := NewNextLine()
	got := n.ObserveRead(7, 0)
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("next-line = %v", got)
	}
	n.Tick(100) // no-op, must not panic
	if n.Issued != 1 {
		t.Errorf("Issued = %d", n.Issued)
	}
}

func TestNewP5StylePanics(t *testing.T) {
	for i, cfg := range []P5StyleConfig{{Slots: 0, Lifetime: 1}, {Slots: 1, Lifetime: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewP5Style(cfg)
		}()
	}
}

func TestP5StyleN2Policy(t *testing.T) {
	p := NewP5Style(DefaultP5StyleConfig())
	if got := p.ObserveRead(100, 0); got != nil {
		t.Fatalf("first read prefetched %v", got)
	}
	got := p.ObserveRead(101, 1)
	if len(got) != 1 || got[0] != 102 {
		t.Fatalf("second read = %v, want [102]", got)
	}
	got = p.ObserveRead(102, 2)
	if len(got) != 1 || got[0] != 103 {
		t.Fatalf("third read = %v, want [103]", got)
	}
}

func TestP5StyleDescendingAndRemiss(t *testing.T) {
	p := NewP5Style(DefaultP5StyleConfig())
	p.ObserveRead(200, 0)
	if got := p.ObserveRead(200, 1); got != nil {
		t.Fatalf("re-read emitted %v", got)
	}
	got := p.ObserveRead(199, 2)
	if len(got) != 1 || got[0] != 198 {
		t.Fatalf("descending = %v, want [198]", got)
	}
}

func TestP5StyleDirectionLock(t *testing.T) {
	p := NewP5Style(DefaultP5StyleConfig())
	p.ObserveRead(100, 0)
	p.ObserveRead(101, 1)
	p.ObserveRead(102, 2) // locked Up with length 3
	// A read one below the head does not flip an established stream; it
	// allocates a new slot.
	if got := p.ObserveRead(101, 3); got != nil {
		t.Errorf("reverse read on locked stream prefetched %v", got)
	}
}

func TestP5StyleExpiry(t *testing.T) {
	cfg := DefaultP5StyleConfig()
	cfg.Lifetime = 50
	p := NewP5Style(cfg)
	p.ObserveRead(100, 0)
	p.Tick(100)
	// Slot expired: 101 is a fresh allocation, no prefetch.
	if got := p.ObserveRead(101, 101); got != nil {
		t.Errorf("expired slot still matched: %v", got)
	}
}

func TestP5StyleCapacity(t *testing.T) {
	cfg := DefaultP5StyleConfig()
	cfg.Slots = 1
	p := NewP5Style(cfg)
	p.ObserveRead(100, 0)
	// Slot occupied: an unrelated read cannot allocate.
	p.ObserveRead(500, 1)
	if got := p.ObserveRead(501, 2); got != nil {
		t.Errorf("untracked stream prefetched %v", got)
	}
}
