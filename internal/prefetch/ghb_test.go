package prefetch

import (
	"testing"

	"asdsim/internal/mem"
)

func TestNewGHBPanics(t *testing.T) {
	for i, cfg := range []GHBConfig{{Entries: 0, Degree: 1}, {Entries: 4, Degree: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewGHB(cfg)
		}()
	}
}

func TestGHBLearnsSuccessor(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	// First pass: A -> B -> C, nothing known yet.
	for _, l := range []mem.Line{100, 205, 317} {
		if got := g.ObserveRead(l, 0); got != nil {
			t.Fatalf("cold observation prefetched %v", got)
		}
	}
	// Second pass: each read should prefetch its recorded successor.
	if got := g.ObserveRead(100, 0); len(got) != 1 || got[0] != 205 {
		t.Errorf("successor of 100 = %v, want [205]", got)
	}
	if got := g.ObserveRead(205, 0); len(got) != 1 || got[0] != 317 {
		t.Errorf("successor of 205 = %v, want [317]", got)
	}
	if g.Issued != 2 {
		t.Errorf("Issued = %d", g.Issued)
	}
}

func TestGHBDegree(t *testing.T) {
	g := NewGHB(GHBConfig{Entries: 64, Degree: 3})
	for _, l := range []mem.Line{1, 2, 3, 4, 5} {
		g.ObserveRead(l, 0)
	}
	got := g.ObserveRead(1, 0)
	want := []mem.Line{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("degree-3 chase = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chase[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestGHBForgetsBeyondWindow(t *testing.T) {
	g := NewGHB(GHBConfig{Entries: 4, Degree: 1})
	g.ObserveRead(100, 0)
	g.ObserveRead(200, 0)
	// Push the pair out of the 4-entry window.
	for i := 0; i < 8; i++ {
		g.ObserveRead(mem.Line(1000+i), 0)
	}
	if got := g.ObserveRead(100, 0); got != nil {
		t.Errorf("stale correlation survived: %v", got)
	}
}

func TestGHBUpdatesToLatestSuccessor(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	g.ObserveRead(10, 0)
	g.ObserveRead(20, 0) // 10 -> 20
	g.ObserveRead(10, 0) // prefetches 20, records new occurrence
	g.ObserveRead(99, 0) // 10 -> 99 now
	if got := g.ObserveRead(10, 0); len(got) != 1 || got[0] != 99 {
		t.Errorf("latest successor = %v, want [99]", got)
	}
}

func TestGHBIndexGCBoundsMemory(t *testing.T) {
	g := NewGHB(GHBConfig{Entries: 16, Degree: 1})
	for i := 0; i < 10_000; i++ {
		g.ObserveRead(mem.Line(i), 0)
	}
	if len(g.index) > 64 {
		t.Errorf("index grew unboundedly: %d entries", len(g.index))
	}
}

func TestGHBSelfSuccessorSuppressed(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	g.ObserveRead(5, 0)
	g.ObserveRead(5, 0)
	if got := g.ObserveRead(5, 0); got != nil {
		t.Errorf("self-successor prefetched: %v", got)
	}
}
