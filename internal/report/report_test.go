package report

import (
	"strings"
	"testing"

	"asdsim/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	// Right-aligned numeric column: "1" and "22" should end at the same
	// column.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[2], lines[3])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRowf("a", 3.14159)
	if !strings.Contains(tb.String(), "3.1") {
		t.Errorf("float formatting: %s", tb.String())
	}
	tb2 := NewTable("x")
	tb2.AddRowf(42)
	if !strings.Contains(tb2.String(), "42") {
		t.Errorf("int formatting: %s", tb2.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("extra cell dropped: %s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(4)
	h.ObserveN(1, 3)
	h.ObserveN(4, 1)
	var sb strings.Builder
	Histogram(&sb, "test SLH", h, 20)
	out := sb.String()
	if !strings.Contains(out, "test SLH (n=4)") {
		t.Errorf("title missing: %s", out)
	}
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "25.0%") {
		t.Errorf("percentages missing: %s", out)
	}
	if !strings.Contains(out, "4+") {
		t.Errorf("final bucket label missing: %s", out)
	}
}

func TestHistogramDefaultWidth(t *testing.T) {
	h := stats.NewHistogram(2)
	h.Observe(1)
	var sb strings.Builder
	Histogram(&sb, "t", h, 0)
	if !strings.Contains(sb.String(), "#") {
		t.Error("no bars rendered")
	}
}

func TestPctFrac(t *testing.T) {
	if Pct(3.25) != "+3.2%" && Pct(3.25) != "+3.3%" {
		t.Errorf("Pct = %q", Pct(3.25))
	}
	if Pct(-1.0) != "-1.0%" {
		t.Errorf("Pct = %q", Pct(-1.0))
	}
	if Frac(0.5) != "50.0%" {
		t.Errorf("Frac = %q", Frac(0.5))
	}
}
