// Package report renders simulation results as aligned text tables and
// ASCII histograms — the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"asdsim/internal/stats"
)

// Table accumulates rows of string cells and prints them column-aligned.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// AddRow appends a row; cells beyond the header count are kept and get
// their own width.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted cells: each argument is rendered
// with %v unless it is a float64, which renders with one decimal.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	width := make([]int, 0)
	grow := func(cells []string) {
		for i, c := range cells {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	grow(t.headers)
	for _, r := range t.rows {
		grow(r)
	}
	line := func(cells []string) {
		parts := make([]string, len(width))
		for i := range width {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", width[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", width[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(width))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Histogram renders h as horizontal percentage bars, one per bucket,
// labelled 1..N with the final bucket marked "N+" — the textual form of
// the paper's SLH figures.
func Histogram(w io.Writer, title string, h *stats.Histogram, barWidth int) {
	if barWidth <= 0 {
		barWidth = 50
	}
	fmt.Fprintf(w, "%s (n=%d)\n", title, h.Total())
	fr := h.Fractions()
	for i, f := range fr {
		label := fmt.Sprintf("%2d", i+1)
		if i == len(fr)-1 {
			label = fmt.Sprintf("%d+", i+1)
		}
		n := int(f*float64(barWidth) + 0.5)
		fmt.Fprintf(w, "  %3s |%-*s %5.1f%%\n", label, barWidth, strings.Repeat("#", n), 100*f)
	}
}

// Progress renders a one-line, in-place progress meter for batch runs:
// a bar, done/total counts, failures and throughput. Callers re-invoke
// it as counts change and print a final newline themselves.
func Progress(w io.Writer, done, failed, total int, runsPerSec float64) {
	const width = 30
	filled := 0
	if total > 0 {
		filled = done * width / total
	}
	fmt.Fprintf(w, "\r[%-*s] %d/%d", width, strings.Repeat("=", filled), done, total)
	if failed > 0 {
		fmt.Fprintf(w, " (%d failed)", failed)
	}
	if runsPerSec > 0 {
		fmt.Fprintf(w, " %.1f runs/s", runsPerSec)
	}
	fmt.Fprint(w, "   ")
}

// Pct formats a ratio as a signed percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%+.1f%%", x) }

// Frac formats a 0..1 fraction as an unsigned percentage.
func Frac(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
