package workload

import (
	"sync"
	"testing"
)

// Materialize must be a pure function of (profile, seed, thread,
// budget): repeated materializations yield byte-identical records and
// the same ground-truth histogram, and the record stream covers the
// budget exactly the way cpu.Thread's fetch condition does.
func TestMaterializeDeterministic(t *testing.T) {
	prof, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 200_000
	a, err := Materialize(prof, 1, 0, budget)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(prof, 1, 0, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
	if a.Instructions != b.Instructions {
		t.Fatalf("instruction totals differ: %d vs %d", a.Instructions, b.Instructions)
	}
	if a.Instructions < budget {
		t.Fatalf("trace covers %d instructions, want >= budget %d", a.Instructions, budget)
	}
	var sum uint64
	for _, rec := range a.Records {
		sum += uint64(rec.Gap) + 1
	}
	if sum != a.Instructions {
		t.Fatalf("Instructions = %d, but records sum to %d", a.Instructions, sum)
	}
	// The last record must be the one that crossed the budget: without
	// it the trace would be short.
	last := uint64(a.Records[len(a.Records)-1].Gap) + 1
	if a.Instructions-last >= budget {
		t.Fatalf("trace overshoots: %d instructions without final record already >= %d", a.Instructions-last, budget)
	}
	if a.TrueLengths == nil || b.TrueLengths == nil {
		t.Fatal("missing TrueLengths histogram")
	}
	if a.TrueLengths.Total() != b.TrueLengths.Total() {
		t.Fatalf("TrueLengths totals differ: %d vs %d", a.TrueLengths.Total(), b.TrueLengths.Total())
	}
}

// Different seeds and different threads must produce different traces —
// the cache key includes both for a reason.
func TestMaterializeKeySensitivity(t *testing.T) {
	prof, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Materialize(prof, 1, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for name, alt := range map[string]func() (*MaterializedTrace, error){
		"seed":   func() (*MaterializedTrace, error) { return Materialize(prof, 2, 0, 50_000) },
		"thread": func() (*MaterializedTrace, error) { return Materialize(prof, 1, 1, 50_000) },
	} {
		other, err := alt()
		if err != nil {
			t.Fatal(err)
		}
		same := len(other.Records) == len(base.Records)
		if same {
			for i := range base.Records {
				if base.Records[i] != other.Records[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("changing %s produced an identical trace", name)
		}
	}
}

func TestTraceCacheHitMiss(t *testing.T) {
	prof, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	c := NewTraceCache(0)
	a, err := c.Get(prof, 1, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(prof, 1, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Get of the same key returned a different trace")
	}
	if _, err := c.Get(prof, 1, 0, 60_000); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.Entries != 2 || st.Bytes <= 0 {
		t.Fatalf("residency = %+v, want 2 accounted entries", st)
	}
}

// A byte budget smaller than two traces forces eviction of the older
// entry; the evicted trace stays valid for holders, and re-Getting it
// counts as a miss again.
func TestTraceCacheEviction(t *testing.T) {
	prof, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	c := NewTraceCache(1) // below any single trace: only the newest survives
	a, err := c.Get(prof, 1, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(a.Records)
	if _, err := c.Get(prof, 2, 0, 50_000); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after over-budget insert, want 1", st.Entries)
	}
	// The evicted trace is immutable and still usable.
	if len(a.Records) != wantLen {
		t.Fatal("evicted trace mutated")
	}
	if _, err := c.Get(prof, 1, 0, 50_000); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (evicted key re-materializes)", st.Misses)
	}
}

// Concurrent Gets of one key must share a single materialization: one
// miss, everyone else hits or waits, and all callers see the same
// trace pointer. Run under -race this also proves the singleflight
// publication is sound.
func TestTraceCacheConcurrentSingleflight(t *testing.T) {
	prof, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	c := NewTraceCache(0)
	const n = 16
	got := make([]*MaterializedTrace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mt, err := c.Get(prof, 1, 0, 100_000)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = mt
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different trace pointer", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, n-1)
	}
}

// ProfileHash keys the cache by profile content: equal profiles hash
// equal, any field change hashes differently (so a user-registered
// profile reusing a built-in name cannot collide).
func TestProfileHashContent(t *testing.T) {
	a, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	b := a
	if ProfileHash(a) != ProfileHash(b) {
		t.Fatal("equal profiles hash differently")
	}
	b.MeanGap++
	if ProfileHash(a) == ProfileHash(b) {
		t.Fatal("profiles with different MeanGap hash equal")
	}
}
