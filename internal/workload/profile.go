package workload

import (
	"fmt"
	"sort"
)

// Suite identifies a benchmark suite from the paper's evaluation.
type Suite string

// The three suites evaluated in the paper (§4.1).
const (
	SPEC2006FP Suite = "spec2006fp"
	NAS        Suite = "nas"
	Commercial Suite = "commercial"
)

// Phase describes one stream-length regime of a benchmark. Benchmarks
// switch between phases over time, which is what makes the paper's
// epoch-by-epoch Stream Length Histograms (Fig. 3) vary.
type Phase struct {
	// Weight is the relative probability of entering this phase at a
	// phase boundary.
	Weight float64
	// StreamLen are relative weights for stream lengths 1..len(StreamLen)
	// *by stream count* (not by read count).
	StreamLen []float64
	// TailContinue geometrically extends samples that land in the final
	// StreamLen bucket (per-step continuation probability).
	TailContinue float64
}

// Profile parameterises the synthetic generator for one named benchmark.
// The fields are the workload characteristics the paper's mechanisms
// actually respond to; see DESIGN.md §2 for the substitution argument.
type Profile struct {
	// Name of the benchmark (matches the paper's figures).
	Name string
	// Suite the benchmark belongs to.
	Suite Suite

	// MeanGap is the average number of compute instructions between
	// memory references; it sets memory intensity.
	MeanGap float64
	// ReadFrac is the fraction of memory references that are loads.
	ReadFrac float64
	// FootprintLines is the streamed footprint in cache lines; footprints
	// far beyond the L3 capacity produce sustained DRAM pressure.
	FootprintLines int
	// HotLines is the size of a cache-resident hot region in lines.
	HotLines int
	// HotFrac is the fraction of references that target the hot region
	// (these become cache hits and never reach the memory controller).
	HotFrac float64
	// ActiveStreams is how many streams the benchmark walks concurrently.
	ActiveStreams int
	// DownFrac is the fraction of streams with descending addresses.
	DownFrac float64
	// AccessesPerLine is how many references the generator emits to each
	// line a stream touches (within-line spatial locality).
	AccessesPerLine int
	// Phases is the phase schedule; at least one phase is required.
	Phases []Phase
	// PhaseLenRefs is the number of references per phase segment.
	PhaseLenRefs int
}

// Validate reports the first structural problem with the profile.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.MeanGap < 0:
		return fmt.Errorf("workload %s: negative MeanGap", p.Name)
	case p.ReadFrac < 0 || p.ReadFrac > 1:
		return fmt.Errorf("workload %s: ReadFrac %v outside [0,1]", p.Name, p.ReadFrac)
	case p.FootprintLines <= 0:
		return fmt.Errorf("workload %s: FootprintLines must be positive", p.Name)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("workload %s: HotFrac %v outside [0,1]", p.Name, p.HotFrac)
	case p.HotFrac > 0 && p.HotLines <= 0:
		return fmt.Errorf("workload %s: HotFrac > 0 needs HotLines > 0", p.Name)
	case p.ActiveStreams <= 0:
		return fmt.Errorf("workload %s: ActiveStreams must be positive", p.Name)
	case p.DownFrac < 0 || p.DownFrac > 1:
		return fmt.Errorf("workload %s: DownFrac %v outside [0,1]", p.Name, p.DownFrac)
	case p.AccessesPerLine <= 0:
		return fmt.Errorf("workload %s: AccessesPerLine must be positive", p.Name)
	case len(p.Phases) == 0:
		return fmt.Errorf("workload %s: needs at least one phase", p.Name)
	case p.PhaseLenRefs <= 0:
		return fmt.Errorf("workload %s: PhaseLenRefs must be positive", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Weight <= 0 {
			return fmt.Errorf("workload %s: phase %d weight must be positive", p.Name, i)
		}
		if len(ph.StreamLen) == 0 {
			return fmt.Errorf("workload %s: phase %d has no stream-length weights", p.Name, i)
		}
	}
	return nil
}

// Line-count scale constants: the L2 holds 15360 lines, the L3 294912.
// Footprints are chosen relative to those capacities.
const (
	linesKB = 1024 / 128 // lines per KB = 8
	linesMB = 8 * 1024   // lines per MB
)

// singlePhase is shorthand for a one-phase schedule.
func singlePhase(weights []float64, tail float64) []Phase {
	return []Phase{{Weight: 1, StreamLen: weights, TailContinue: tail}}
}

// w16 builds a 16-bucket weight vector from (index,weight) pairs; unnamed
// buckets are zero.
func w16(pairs ...float64) []float64 {
	if len(pairs)%2 != 0 {
		panic("w16: odd pair list")
	}
	w := make([]float64, 16)
	for i := 0; i < len(pairs); i += 2 {
		idx := int(pairs[i])
		if idx < 1 || idx > 16 {
			panic("w16: index out of range")
		}
		w[idx-1] = pairs[i+1]
	}
	return w
}

// longStream is a stream-length mixture dominated by long runs: some
// short noise, most mass at the 16+ bucket with a heavy tail.
func longStream(noise float64) []float64 {
	w := make([]float64, 16)
	w[0] = noise
	w[1] = noise / 2
	w[15] = 1
	return w
}

// geomWeights returns weights proportional to ratio^(i) for lengths
// 1..16, a reasonable model of irregular workloads whose runs die off
// geometrically.
func geomWeights(ratio float64) []float64 {
	w := make([]float64, 16)
	v := 1.0
	for i := range w {
		w[i] = v
		v *= ratio
	}
	return w
}

// profiles holds every named benchmark profile, keyed by name.
var profiles = map[string]Profile{}

// register adds p to the profile registry (panics on duplicates or
// invalid profiles; this runs at init time with literal data).
func register(p Profile) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Register adds a custom profile to the registry so user-defined
// workloads can be simulated by name alongside the built-in benchmarks.
func Register(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, dup := profiles[p.Name]; dup {
		return fmt.Errorf("workload: duplicate profile %s", p.Name)
	}
	profiles[p.Name] = p
	return nil
}

// ByName returns the profile registered under name.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SuiteNames returns the benchmarks of a suite in the paper's figure
// order.
func SuiteNames(s Suite) []string {
	switch s {
	case SPEC2006FP:
		return []string{
			"bwaves", "gamess", "milc", "zeusmp", "gromacs", "cactusADM",
			"leslie3d", "namd", "dealII", "soplex", "povray", "calculix",
			"GemsFDTD", "tonto", "lbm", "wrf", "sphinx3",
		}
	case NAS:
		return []string{"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}
	case Commercial:
		return []string{"tpcc", "trade2", "cpw2", "sap", "notesbench"}
	default:
		return nil
	}
}

// FocusBenchmarks are the eight benchmarks the paper uses for its
// detailed-results figures (Figs. 11–16): the two best- and two
// worst-case from SPEC and from the commercial suite.
func FocusBenchmarks() []string {
	return []string{"bwaves", "milc", "GemsFDTD", "tonto", "tpcc", "trade2", "sap", "notesbench"}
}

func init() {
	// ----- SPEC2006fp ---------------------------------------------------
	// Memory-bound streaming codes: long streams, high intensity. These
	// are the big winners in Fig. 5 (bwaves, leslie3d, lbm ~50-69%).
	register(Profile{
		Name: "bwaves", Suite: SPEC2006FP,
		MeanGap: 28, ReadFrac: 0.78, FootprintLines: 640 * linesMB,
		ActiveStreams: 6, DownFrac: 0.08, AccessesPerLine: 2,
		Phases:       singlePhase(longStream(0.18), 0.97),
		PhaseLenRefs: 40000,
	})
	register(Profile{
		Name: "leslie3d", Suite: SPEC2006FP,
		MeanGap: 35, ReadFrac: 0.76, FootprintLines: 512 * linesMB,
		ActiveStreams: 8, DownFrac: 0.10, AccessesPerLine: 2,
		Phases:       singlePhase(longStream(0.25), 0.95),
		PhaseLenRefs: 40000,
	})
	register(Profile{
		Name: "lbm", Suite: SPEC2006FP,
		MeanGap: 22, ReadFrac: 0.62, FootprintLines: 512 * linesMB,
		ActiveStreams: 4, DownFrac: 0.05, AccessesPerLine: 2,
		Phases:       singlePhase(longStream(0.10), 0.98),
		PhaseLenRefs: 50000,
	})
	// GemsFDTD: the paper's running example — strongly phased mixture of
	// short and medium streams (Figs. 2, 3, 16).
	register(Profile{
		Name: "GemsFDTD", Suite: SPEC2006FP,
		MeanGap: 35, ReadFrac: 0.80, FootprintLines: 700 * linesMB,
		ActiveStreams: 4, DownFrac: 0.15, AccessesPerLine: 2,
		Phases: []Phase{
			// Matches Fig. 2: ~22% len-1, ~44% len-2 by reads; by
			// stream counts that is roughly 37:37 for 1:2 with a
			// modest tail.
			{Weight: 3, StreamLen: w16(1, 8, 2, 52, 7, 5, 8, 4, 16, 2.5), TailContinue: 0.6},
			// A long-stream phase.
			{Weight: 1, StreamLen: w16(1, 15, 2, 8, 3, 5, 16, 25), TailContinue: 0.9},
			// A short-stream phase (almost everything length 1-2).
			{Weight: 2, StreamLen: w16(1, 10, 2, 55, 3, 8), TailContinue: 0},
		},
		PhaseLenRefs: 2600,
	})
	register(Profile{
		Name: "milc", Suite: SPEC2006FP,
		MeanGap: 35, ReadFrac: 0.74, FootprintLines: 600 * linesMB,
		ActiveStreams: 5, DownFrac: 0.12, AccessesPerLine: 2,
		Phases: []Phase{
			{Weight: 2, StreamLen: w16(1, 12, 2, 18, 4, 14, 8, 8, 16, 8), TailContinue: 0.75},
			{Weight: 1, StreamLen: w16(1, 18, 2, 10, 16, 30), TailContinue: 0.9},
		},
		PhaseLenRefs: 9000,
	})
	register(Profile{
		Name: "zeusmp", Suite: SPEC2006FP,
		MeanGap: 45, ReadFrac: 0.75, FootprintLines: 400 * linesMB,
		ActiveStreams: 5, DownFrac: 0.10, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 25, 2, 15, 3, 9, 4, 7, 6, 5, 8, 5, 16, 20), 0.85),
		PhaseLenRefs: 20000,
	})
	register(Profile{
		Name: "gromacs", Suite: SPEC2006FP,
		MeanGap: 70, ReadFrac: 0.80, FootprintLines: 80 * linesMB,
		HotLines: 4096, HotFrac: 0.60,
		ActiveStreams: 3, DownFrac: 0.15, AccessesPerLine: 3,
		Phases:       singlePhase(geomWeights(0.62), 0.4),
		PhaseLenRefs: 20000,
	})
	register(Profile{
		Name: "cactusADM", Suite: SPEC2006FP,
		MeanGap: 45, ReadFrac: 0.72, FootprintLines: 420 * linesMB,
		ActiveStreams: 5, DownFrac: 0.12, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 22, 2, 14, 3, 10, 4, 8, 5, 6, 8, 6, 16, 16), 0.8),
		PhaseLenRefs: 25000,
	})
	register(Profile{
		Name: "dealII", Suite: SPEC2006FP,
		MeanGap: 60, ReadFrac: 0.82, FootprintLines: 160 * linesMB,
		HotLines: 6144, HotFrac: 0.55,
		ActiveStreams: 4, DownFrac: 0.20, AccessesPerLine: 2,
		Phases:       singlePhase(geomWeights(0.58), 0.35),
		PhaseLenRefs: 15000,
	})
	register(Profile{
		Name: "soplex", Suite: SPEC2006FP,
		MeanGap: 40, ReadFrac: 0.84, FootprintLines: 300 * linesMB,
		HotLines: 4096, HotFrac: 0.30,
		ActiveStreams: 5, DownFrac: 0.22, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 42, 2, 24, 3, 12, 4, 8, 5, 5, 8, 4, 16, 5), 0.6),
		PhaseLenRefs: 12000,
	})
	register(Profile{
		Name: "wrf", Suite: SPEC2006FP,
		MeanGap: 50, ReadFrac: 0.77, FootprintLines: 350 * linesMB,
		ActiveStreams: 5, DownFrac: 0.14, AccessesPerLine: 2,
		Phases: []Phase{
			{Weight: 2, StreamLen: w16(1, 28, 2, 18, 3, 11, 4, 8, 5, 6, 8, 6, 16, 12), TailContinue: 0.8},
			{Weight: 1, StreamLen: w16(1, 45, 2, 30, 3, 10, 4, 5), TailContinue: 0.3},
		},
		PhaseLenRefs: 10000,
	})
	register(Profile{
		Name: "sphinx3", Suite: SPEC2006FP,
		MeanGap: 35, ReadFrac: 0.88, FootprintLines: 260 * linesMB,
		ActiveStreams: 4, DownFrac: 0.10, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 30, 2, 20, 3, 13, 4, 9, 5, 7, 8, 7, 16, 10), 0.75),
		PhaseLenRefs: 15000,
	})
	register(Profile{
		Name: "tonto", Suite: SPEC2006FP,
		MeanGap: 50, ReadFrac: 0.83, FootprintLines: 200 * linesMB,
		HotLines: 4096, HotFrac: 0.35,
		ActiveStreams: 4, DownFrac: 0.18, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 6, 4, 22, 5, 5, 8, 2), 0.3),
		PhaseLenRefs: 12000,
	})
	// Cache-resident SPEC codes: near-zero memory pressure; Fig. 5 shows
	// ~0 gain and Fig. 8 shows negligible power impact.
	for _, res := range []string{"gamess", "namd", "povray", "calculix"} {
		register(Profile{
			Name: res, Suite: SPEC2006FP,
			MeanGap: 40, ReadFrac: 0.85, FootprintLines: 900 * linesKB,
			HotLines: 700 * linesKB, HotFrac: 0.985,
			ActiveStreams: 4, DownFrac: 0.15, AccessesPerLine: 4,
			Phases:       singlePhase(geomWeights(0.55), 0.3),
			PhaseLenRefs: 30000,
		})
	}

	// ----- NAS (class B, serial) ----------------------------------------
	register(Profile{
		Name: "bt", Suite: NAS,
		MeanGap: 40, ReadFrac: 0.74, FootprintLines: 300 * linesMB,
		ActiveStreams: 5, DownFrac: 0.10, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 24, 2, 16, 3, 11, 4, 8, 5, 7, 8, 8, 16, 14), 0.8),
		PhaseLenRefs: 18000,
	})
	register(Profile{
		Name: "cg", Suite: NAS,
		MeanGap: 30, ReadFrac: 0.90, FootprintLines: 420 * linesMB,
		ActiveStreams: 5, DownFrac: 0.08, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 52, 2, 22, 3, 10, 4, 6, 5, 4, 8, 3, 16, 3), 0.5),
		PhaseLenRefs: 10000,
	})
	register(Profile{
		Name: "ep", Suite: NAS, // embarrassingly parallel: compute bound
		MeanGap: 80, ReadFrac: 0.80, FootprintLines: 800 * linesKB,
		HotLines: 600 * linesKB, HotFrac: 0.99,
		ActiveStreams: 2, DownFrac: 0.05, AccessesPerLine: 4,
		Phases:       singlePhase(geomWeights(0.5), 0.3),
		PhaseLenRefs: 30000,
	})
	register(Profile{
		Name: "ft", Suite: NAS,
		MeanGap: 30, ReadFrac: 0.70, FootprintLines: 512 * linesMB,
		ActiveStreams: 6, DownFrac: 0.30, AccessesPerLine: 2,
		Phases:       singlePhase(longStream(0.3), 0.93),
		PhaseLenRefs: 25000,
	})
	register(Profile{
		Name: "is", Suite: NAS, // integer sort: scattered histogramming
		MeanGap: 35, ReadFrac: 0.68, FootprintLines: 380 * linesMB,
		ActiveStreams: 5, DownFrac: 0.10, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 58, 2, 20, 3, 9, 4, 5, 5, 3, 8, 3, 16, 2), 0.4),
		PhaseLenRefs: 9000,
	})
	register(Profile{
		Name: "lu", Suite: NAS,
		MeanGap: 45, ReadFrac: 0.76, FootprintLines: 280 * linesMB,
		ActiveStreams: 5, DownFrac: 0.16, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 30, 2, 18, 3, 12, 4, 9, 5, 7, 8, 8, 16, 10), 0.75),
		PhaseLenRefs: 14000,
	})
	register(Profile{
		Name: "mg", Suite: NAS,
		MeanGap: 35, ReadFrac: 0.72, FootprintLines: 460 * linesMB,
		ActiveStreams: 4, DownFrac: 0.12, AccessesPerLine: 2,
		Phases: []Phase{
			{Weight: 2, StreamLen: longStream(0.35), TailContinue: 0.92},
			{Weight: 1, StreamLen: w16(1, 40, 2, 28, 3, 12, 4, 8), TailContinue: 0.3},
		},
		PhaseLenRefs: 12000,
	})
	register(Profile{
		Name: "sp", Suite: NAS,
		MeanGap: 40, ReadFrac: 0.75, FootprintLines: 320 * linesMB,
		ActiveStreams: 5, DownFrac: 0.10, AccessesPerLine: 2,
		Phases:       singlePhase(w16(1, 22, 2, 15, 3, 11, 4, 9, 5, 7, 8, 9, 16, 15), 0.82),
		PhaseLenRefs: 16000,
	})

	// ----- Commercial (IBM internal substitutes) -------------------------
	// Low spatial locality, large footprints, significant store traffic.
	// Fig. 12 quotes stream-length-2..5 mass per benchmark: tpcc 37%,
	// trade2 49%, sap 40%, notesbench 62%; length-1 mass is high.
	register(Profile{
		Name: "tpcc", Suite: Commercial,
		MeanGap: 32, ReadFrac: 0.70, FootprintLines: 900 * linesMB,
		HotLines: 6144, HotFrac: 0.39,
		ActiveStreams: 4, DownFrac: 0.20, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 8, 3, 28, 4, 14, 8, 3.5, 16, 0.8), 0.45),
		PhaseLenRefs: 8000,
	})
	register(Profile{
		Name: "trade2", Suite: Commercial,
		MeanGap: 36, ReadFrac: 0.72, FootprintLines: 700 * linesMB,
		HotLines: 6144, HotFrac: 0.36,
		ActiveStreams: 4, DownFrac: 0.22, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 8, 2, 12, 3, 24, 4, 15, 8, 3, 16, 0.7), 0.45),
		PhaseLenRefs: 8000,
	})
	register(Profile{
		Name: "cpw2", Suite: Commercial,
		MeanGap: 32, ReadFrac: 0.69, FootprintLines: 800 * linesMB,
		HotLines: 6144, HotFrac: 0.38,
		ActiveStreams: 4, DownFrac: 0.20, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 10, 3, 26, 4, 12, 8, 3.5, 16, 0.8), 0.45),
		PhaseLenRefs: 8000,
	})
	register(Profile{
		Name: "sap", Suite: Commercial,
		MeanGap: 36, ReadFrac: 0.73, FootprintLines: 750 * linesMB,
		HotLines: 6144, HotFrac: 0.40,
		ActiveStreams: 4, DownFrac: 0.24, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 10, 3, 22, 4, 14, 8, 4, 16, 0.9), 0.45),
		PhaseLenRefs: 8000,
	})
	register(Profile{
		Name: "notesbench", Suite: Commercial,
		MeanGap: 38, ReadFrac: 0.71, FootprintLines: 650 * linesMB,
		HotLines: 6144, HotFrac: 0.34,
		ActiveStreams: 4, DownFrac: 0.18, AccessesPerLine: 1,
		Phases:       singlePhase(w16(1, 6, 2, 16, 3, 28, 4, 17, 5, 6, 8, 2.5, 16, 0.6), 0.45),
		PhaseLenRefs: 8000,
	})
}
