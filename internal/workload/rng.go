package workload

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). The simulator must be reproducible bit-for-bit across
// runs and configurations, so all stochastic choices in workload
// generation flow through this type with explicit seeds.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Dist is a discrete distribution over values 1..len(weights) with an
// optional geometric tail hanging off the last bucket (so "16+" can mean
// a real spread of long stream lengths).
type Dist struct {
	cum []float64
	// tailContinue is the per-step continuation probability once a
	// sample lands in the final bucket; 0 means the final bucket is
	// exact.
	tailContinue float64
}

// NewDist builds a distribution from non-negative weights (they need not
// sum to one). tailContinue extends samples beyond the final bucket
// geometrically: a sample that lands in bucket N keeps incrementing with
// probability tailContinue per step.
func NewDist(weights []float64, tailContinue float64) *Dist {
	if len(weights) == 0 {
		panic("workload: empty distribution")
	}
	if tailContinue < 0 || tailContinue >= 1 {
		panic("workload: tailContinue must be in [0,1)")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("workload: negative weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("workload: all-zero weights")
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / sum
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Dist{cum: cum, tailContinue: tailContinue}
}

// Sample draws a value >= 1.
func (d *Dist) Sample(r *RNG) int {
	u := r.Float64()
	// Linear scan: distributions here have <= 16 buckets and the scan is
	// branch-predictable; binary search buys nothing.
	v := len(d.cum)
	for i, c := range d.cum {
		if u < c {
			v = i + 1
			break
		}
	}
	if v == len(d.cum) && d.tailContinue > 0 {
		for r.Bool(d.tailContinue) {
			v++
			if v > 1<<12 {
				break // safety bound; streams this long are indistinguishable
			}
		}
	}
	return v
}

// Mean returns the expected value of the distribution (tail included).
func (d *Dist) Mean() float64 {
	var mean, prev float64
	for i, c := range d.cum {
		p := c - prev
		prev = c
		v := float64(i + 1)
		if i == len(d.cum)-1 && d.tailContinue > 0 {
			// Geometric continuation adds tc/(1-tc) expected steps.
			v += d.tailContinue / (1 - d.tailContinue)
		}
		mean += p * v
	}
	return mean
}
