package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"asdsim/internal/stats"
	"asdsim/internal/trace"
)

// MaterializedTrace is one thread's workload trace generated up front
// into a reusable in-memory form: exactly the records a cpu.Thread with
// the given instruction budget would consume, plus the generator's
// ground-truth stream-length histogram at that point. The records slice
// and histogram are immutable after Materialize returns, so any number
// of concurrent simulations may replay the same MaterializedTrace
// through private trace.SliceSource cursors.
type MaterializedTrace struct {
	// Records is the trace in consumption order.
	Records []trace.Record
	// TrueLengths is the generator's TrueLengths histogram snapshot
	// after producing Records — identical to what a live generator
	// driven by the same thread would hold at the end of the run.
	TrueLengths *stats.Histogram
	// Instructions is the total instruction count of the trace
	// (sum of Gap+1 over Records); it is >= the requested budget.
	Instructions uint64
}

// sizeBytes approximates the trace's memory footprint for cache
// accounting.
func (m *MaterializedTrace) sizeBytes() int64 {
	return int64(len(m.Records))*16 + 256
}

// Materialize generates the trace a thread with the given per-thread
// instruction budget consumes: records are produced while the running
// instruction total (Gap+1 per record) is below budget, mirroring
// cpu.Thread's fetch condition exactly. The same (profile, seed,
// thread, budget) always yields byte-identical records.
func Materialize(prof Profile, seed uint64, thread int, budget uint64) (*MaterializedTrace, error) {
	g, err := NewGenerator(prof, seed, thread)
	if err != nil {
		return nil, err
	}
	// Pre-size from the profile's mean gap; the estimate only tunes
	// append growth.
	est := int(budget/(uint64(prof.MeanGap)+1)) + 16
	mt := &MaterializedTrace{Records: make([]trace.Record, 0, est)}
	for mt.Instructions < budget {
		rec, _ := g.Next() // generators never end
		mt.Records = append(mt.Records, rec)
		mt.Instructions += uint64(rec.Gap) + 1
	}
	mt.TrueLengths = g.TrueLengths.Clone()
	return mt, nil
}

// ProfileHash returns a stable content hash of the profile, so traces
// for user-registered profiles that reuse a name never collide with the
// built-in ones in a TraceCache.
func ProfileHash(prof Profile) string {
	b, err := json.Marshal(prof)
	if err != nil {
		// Profile is a tree of plain exported value fields; this cannot
		// fail for any constructible Profile.
		panic(fmt.Sprintf("workload: marshal profile: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// traceKey identifies one materialized trace: profile content, seed,
// thread and instruction budget — everything record generation depends
// on.
type traceKey struct {
	profile string
	seed    uint64
	thread  int
	budget  uint64
}

// cacheEntry is one cache slot. Generation runs under once so
// concurrent getters of the same key share a single materialization
// (and the cache lock is never held while generating).
type cacheEntry struct {
	key  traceKey
	once sync.Once
	mt   *MaterializedTrace
	err  error

	// LRU bookkeeping, guarded by the cache mutex. accounted marks
	// entries whose size has been added to the cache total.
	accounted  bool
	prev, next *cacheEntry
}

// TraceCacheStats is a point-in-time snapshot of cache effectiveness.
type TraceCacheStats struct {
	// Hits counts Gets served from an already-materialized trace;
	// Misses counts Gets that had to generate.
	Hits, Misses uint64
	// Evictions counts traces dropped by the LRU byte budget.
	Evictions uint64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64
}

// TraceCache memoizes materialized traces behind (profile hash, seed,
// thread, budget) keys, so a benchmark×mode×engine sweep generates each
// benchmark's workload once instead of once per cell. Bounded by bytes
// with least-recently-used eviction; safe for concurrent use. Evicted
// traces remain valid for callers already holding them (they are
// immutable), the cache merely drops its reference.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*cacheEntry
	// head is most recently used, tail least.
	head, tail *cacheEntry
	maxBytes   int64
	bytes      int64
	hits       uint64
	misses     uint64
	evictions  uint64
}

// DefaultTraceCacheBytes bounds a default cache. A 2M-instruction
// benchmark trace is under 1 MiB, so this comfortably holds every
// registered benchmark at sweep budgets while still bounding runaway
// custom matrices.
const DefaultTraceCacheBytes = 256 << 20

// NewTraceCache returns a cache bounded to maxBytes (values <= 0 use
// DefaultTraceCacheBytes).
func NewTraceCache(maxBytes int64) *TraceCache {
	if maxBytes <= 0 {
		maxBytes = DefaultTraceCacheBytes
	}
	return &TraceCache{entries: make(map[traceKey]*cacheEntry), maxBytes: maxBytes}
}

// Get returns the materialized trace for (prof, seed, thread, budget),
// generating and caching it on first use. Concurrent Gets of the same
// key share one generation.
func (c *TraceCache) Get(prof Profile, seed uint64, thread int, budget uint64) (*MaterializedTrace, error) {
	key := traceKey{profile: ProfileHash(prof), seed: seed, thread: thread, budget: budget}

	c.mu.Lock()
	e := c.entries[key]
	fresh := e == nil
	if fresh {
		e = &cacheEntry{key: key}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() { e.mt, e.err = Materialize(prof, seed, thread, budget) })

	c.mu.Lock()
	defer c.mu.Unlock()
	if e.err != nil {
		// Drop failed entries so a later Get can retry (e.g. after the
		// caller registers a fixed profile under the same content).
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		return nil, e.err
	}
	if c.entries[key] != e {
		// Evicted (or replaced) while this caller was waiting on the
		// generation; the trace itself is immutable and still valid, so
		// serve it without touching the LRU accounting.
		return e.mt, nil
	}
	if !e.accounted {
		e.accounted = true
		c.bytes += e.mt.sizeBytes()
	} else {
		c.unlink(e)
	}
	c.pushFront(e)
	c.evictLocked()
	return e.mt, nil
}

// Stats snapshots hit/miss counters and residency.
func (c *TraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TraceCacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.entries), Bytes: c.bytes}
}

// evictLocked drops least-recently-used accounted entries until the
// budget holds. The most recent entry always stays, so a single trace
// larger than the whole budget still caches (and evicts everything
// else).
func (c *TraceCache) evictLocked() {
	for c.bytes > c.maxBytes && c.tail != nil && c.tail != c.head {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.bytes -= e.mt.sizeBytes()
		c.evictions++
	}
}

// pushFront makes e the most recently used entry.
func (c *TraceCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list.
func (c *TraceCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
