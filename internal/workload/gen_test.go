package workload

import (
	"math"
	"testing"
	"testing/quick"

	"asdsim/internal/mem"
	"asdsim/internal/trace"
)

func TestAllProfilesValid(t *testing.T) {
	names := Names()
	if len(names) != 30 {
		t.Fatalf("registered %d profiles, want 30 (17 SPEC + 8 NAS + 5 commercial)", len(names))
	}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", n, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestSuiteNamesMatchPaper(t *testing.T) {
	if got := len(SuiteNames(SPEC2006FP)); got != 17 {
		t.Errorf("SPEC2006fp count = %d, want 17", got)
	}
	if got := len(SuiteNames(NAS)); got != 8 {
		t.Errorf("NAS count = %d, want 8", got)
	}
	if got := len(SuiteNames(Commercial)); got != 5 {
		t.Errorf("commercial count = %d, want 5", got)
	}
	if SuiteNames(Suite("bogus")) != nil {
		t.Error("unknown suite should return nil")
	}
	// Every suite member must be registered and carry the right suite tag.
	for _, s := range []Suite{SPEC2006FP, NAS, Commercial} {
		for _, n := range SuiteNames(s) {
			p, err := ByName(n)
			if err != nil {
				t.Errorf("suite %s member %s not registered", s, n)
				continue
			}
			if p.Suite != s {
				t.Errorf("%s tagged %s, want %s", n, p.Suite, s)
			}
		}
	}
}

func TestFocusBenchmarksRegistered(t *testing.T) {
	fb := FocusBenchmarks()
	if len(fb) != 8 {
		t.Fatalf("focus set has %d entries, want 8", len(fb))
	}
	for _, n := range fb {
		if _, err := ByName(n); err != nil {
			t.Errorf("focus benchmark %s: %v", n, err)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("GemsFDTD")
	a := MustGenerator(p, 99, 0)
	b := MustGenerator(p, 99, 0)
	for i := 0; i < 5000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("diverged at record %d: %v vs %v", i, ra, rb)
		}
	}
	if a.Emitted() != 5000 {
		t.Errorf("Emitted = %d", a.Emitted())
	}
}

func TestGeneratorThreadsDisjoint(t *testing.T) {
	p, _ := ByName("tpcc")
	g0 := MustGenerator(p, 5, 0)
	g1 := MustGenerator(p, 5, 1)
	r0 := trace.Collect(trace.Limit(g0, 2000), 0)
	r1 := trace.Collect(trace.Limit(g1, 2000), 0)
	max0, min1 := mem.Addr(0), mem.Addr(math.MaxUint64)
	for _, r := range r0 {
		if r.Addr > max0 {
			max0 = r.Addr
		}
	}
	for _, r := range r1 {
		if r.Addr < min1 {
			min1 = r.Addr
		}
	}
	if max0 >= min1 {
		t.Errorf("thread address ranges overlap: max0=%#x min1=%#x", max0, min1)
	}
}

func TestGeneratorReadFraction(t *testing.T) {
	p, _ := ByName("cg") // ReadFrac 0.90
	g := MustGenerator(p, 3, 0)
	reads := 0
	const n = 50000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if r.Op == trace.Load {
			reads++
		}
	}
	got := float64(reads) / n
	if math.Abs(got-0.90) > 0.01 {
		t.Errorf("read fraction = %v, want ~0.90", got)
	}
}

func TestGeneratorMeanGap(t *testing.T) {
	p, _ := ByName("lbm")
	g := MustGenerator(p, 3, 0)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		sum += float64(r.Gap)
	}
	if got := sum / n; math.Abs(got-p.MeanGap) > 0.05*p.MeanGap+0.2 {
		t.Errorf("mean gap = %v, want ~%v", got, p.MeanGap)
	}
}

func TestGeneratorAddressesWithinFootprint(t *testing.T) {
	p, _ := ByName("soplex")
	g := MustGenerator(p, 21, 0)
	limit := mem.Addr(p.FootprintLines+p.HotLines) * mem.LineSize
	for i := 0; i < 50000; i++ {
		r, _ := g.Next()
		if r.Addr >= limit {
			t.Fatalf("address %#x beyond footprint+hot limit %#x", r.Addr, limit)
		}
	}
}

// Streams must actually be streams: consecutive accesses of one stream
// walk adjacent lines. We verify indirectly by checking that the true
// stream-length histogram records lengths consistent with the profile's
// single-phase distribution.
func TestGeneratorTrueLengths(t *testing.T) {
	p := Profile{
		Name: "testonly", Suite: SPEC2006FP,
		MeanGap: 1, ReadFrac: 1, FootprintLines: 1 << 20,
		ActiveStreams: 2, DownFrac: 0, AccessesPerLine: 1,
		Phases:       singlePhase(w16(2, 1), 0), // every stream length exactly 2
		PhaseLenRefs: 1000,
	}
	g := MustGenerator(p, 8, 0)
	for i := 0; i < 20000; i++ {
		g.Next()
	}
	h := g.TrueLengths
	if h.Total() == 0 {
		t.Fatal("no streams completed")
	}
	// Nearly all completed streams are length 2 (footprint-edge
	// truncation may very rarely shorten one).
	if frac := h.Frac(2); frac < 0.999 {
		t.Errorf("len-2 fraction = %v, want ~1.0 (hist %v)", frac, h)
	}
}

func TestGeneratorStreamAdjacency(t *testing.T) {
	// One active stream, one access per line, no hot set: the emitted
	// line sequence must consist of runs of adjacent lines.
	p := Profile{
		Name: "adjacency", Suite: SPEC2006FP,
		MeanGap: 0, ReadFrac: 1, FootprintLines: 1 << 20,
		ActiveStreams: 1, DownFrac: 0, AccessesPerLine: 1,
		Phases:       singlePhase(w16(4, 1), 0), // all streams length 4
		PhaseLenRefs: 1000,
	}
	g := MustGenerator(p, 12, 0)
	recs := trace.Collect(trace.Limit(g, 4000), 0)
	adjacent := 0
	for i := 1; i < len(recs); i++ {
		if mem.LineOf(recs[i].Addr) == mem.LineOf(recs[i-1].Addr)+1 {
			adjacent++
		}
	}
	// Length-4 streams: 3 of every 4 transitions are adjacent.
	frac := float64(adjacent) / float64(len(recs)-1)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("adjacent fraction = %v, want ~0.75", frac)
	}
}

func TestGeneratorDownStreams(t *testing.T) {
	p := Profile{
		Name: "downward", Suite: SPEC2006FP,
		MeanGap: 0, ReadFrac: 1, FootprintLines: 1 << 20,
		ActiveStreams: 1, DownFrac: 1, AccessesPerLine: 1,
		Phases:       singlePhase(w16(4, 1), 0),
		PhaseLenRefs: 1000,
	}
	g := MustGenerator(p, 12, 0)
	recs := trace.Collect(trace.Limit(g, 4000), 0)
	down := 0
	for i := 1; i < len(recs); i++ {
		if mem.LineOf(recs[i].Addr) == mem.LineOf(recs[i-1].Addr)-1 {
			down++
		}
	}
	frac := float64(down) / float64(len(recs)-1)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("descending-adjacent fraction = %v, want ~0.75", frac)
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	if _, err := NewGenerator(Profile{}, 1, 0); err == nil {
		t.Error("empty profile should be rejected")
	}
}

func TestNewSuiteGenerators(t *testing.T) {
	gens, err := NewSuiteGenerators(NAS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 8 {
		t.Fatalf("got %d generators", len(gens))
	}
	if _, err := NewSuiteGenerators(Suite("bogus"), 1); err == nil {
		t.Error("unknown suite should error")
	}
}

// Property: generators never emit invalid records regardless of seed.
func TestGeneratorPropertySeeds(t *testing.T) {
	p, _ := ByName("notesbench")
	f := func(seed uint64) bool {
		g := MustGenerator(p, seed, 0)
		for i := 0; i < 200; i++ {
			r, ok := g.Next()
			if !ok {
				return false
			}
			if r.Op != trace.Load && r.Op != trace.Store {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProfileValidateErrors(t *testing.T) {
	base := Profile{
		Name: "x", MeanGap: 1, ReadFrac: 0.5, FootprintLines: 10,
		ActiveStreams: 1, AccessesPerLine: 1,
		Phases: singlePhase([]float64{1}, 0), PhaseLenRefs: 10,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base should be valid: %v", err)
	}
	mut := func(f func(*Profile)) error {
		p := base
		p.Phases = singlePhase([]float64{1}, 0)
		f(&p)
		return p.Validate()
	}
	cases := map[string]func(*Profile){
		"noname":    func(p *Profile) { p.Name = "" },
		"gap":       func(p *Profile) { p.MeanGap = -1 },
		"readfrac":  func(p *Profile) { p.ReadFrac = 1.5 },
		"footprint": func(p *Profile) { p.FootprintLines = 0 },
		"hotfrac":   func(p *Profile) { p.HotFrac = -0.1 },
		"hotlines":  func(p *Profile) { p.HotFrac = 0.5; p.HotLines = 0 },
		"streams":   func(p *Profile) { p.ActiveStreams = 0 },
		"downfrac":  func(p *Profile) { p.DownFrac = 2 },
		"accesses":  func(p *Profile) { p.AccessesPerLine = 0 },
		"nophase":   func(p *Profile) { p.Phases = nil },
		"phaselen":  func(p *Profile) { p.PhaseLenRefs = 0 },
		"phaseWt":   func(p *Profile) { p.Phases[0].Weight = 0 },
		"phaseSL":   func(p *Profile) { p.Phases[0].StreamLen = nil },
	}
	for name, f := range cases {
		if err := mut(f); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func BenchmarkGenerator(b *testing.B) {
	p, _ := ByName("GemsFDTD")
	g := MustGenerator(p, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestRegisterCustomProfile(t *testing.T) {
	p, _ := ByName("tpcc")
	p.Name = "custom-test-profile"
	if err := Register(p); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := ByName("custom-test-profile"); err != nil {
		t.Errorf("registered profile not found: %v", err)
	}
	if err := Register(p); err == nil {
		t.Error("duplicate Register should fail")
	}
	bad := p
	bad.Name = ""
	if err := Register(bad); err == nil {
		t.Error("invalid profile should fail")
	}
}
