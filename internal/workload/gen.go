package workload

import (
	"fmt"

	"asdsim/internal/mem"
	"asdsim/internal/stats"
	"asdsim/internal/trace"
)

// threadAddrStride separates the address spaces of SMT threads so their
// footprints never alias.
const threadAddrStride = mem.Addr(1) << 44

// Generator synthesises the memory reference stream of one benchmark
// thread. It implements trace.Source and is deterministic for a given
// (profile, seed, thread) triple, so the same trace can drive every
// prefetcher configuration.
type Generator struct {
	prof   Profile
	rng    *RNG
	thread int

	base    mem.Addr // footprint base address
	hotBase mem.Addr // hot-region base address

	streams []genStream
	rrIdx   int     // round-robin cursor over streams
	dists   []*Dist // one per phase
	phase   int
	phaseN  int // refs remaining in current phase

	// TrueLengths records the intended length of every stream the
	// generator completes, clamped at 16 like the paper's SLH. This is
	// the ground truth used by the Fig. 16 accuracy experiment.
	TrueLengths *stats.Histogram

	emitted uint64
}

type genStream struct {
	line    mem.Line
	left    int // lines remaining, including the current one
	length  int // total intended length, for TrueLengths accounting
	dir     int // +1 or -1
	accLeft int // accesses remaining within the current line
	accIdx  int
}

// NewGenerator returns a generator for the given profile. seed selects
// the deterministic random sequence; thread places the footprint in a
// disjoint address range and perturbs the sequence.
func NewGenerator(prof Profile, seed uint64, thread int) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:        prof,
		rng:         NewRNG(seed ^ (uint64(thread+1) * 0xA24BAED4963EE407)),
		thread:      thread,
		base:        threadAddrStride * mem.Addr(thread),
		TrueLengths: stats.NewHistogram(16),
	}
	// The hot region sits immediately above the streamed footprint.
	g.hotBase = g.base + mem.Addr(prof.FootprintLines)*mem.LineSize
	g.dists = make([]*Dist, len(prof.Phases))
	for i, ph := range prof.Phases {
		g.dists[i] = NewDist(ph.StreamLen, ph.TailContinue)
	}
	g.streams = make([]genStream, prof.ActiveStreams)
	g.enterPhase()
	for i := range g.streams {
		g.startStream(&g.streams[i])
	}
	return g, nil
}

// MustGenerator is NewGenerator for statically known-good profiles.
func MustGenerator(prof Profile, seed uint64, thread int) *Generator {
	g, err := NewGenerator(prof, seed, thread)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Emitted returns the number of records produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// enterPhase samples the next phase by weight and resets the phase
// countdown.
func (g *Generator) enterPhase() {
	var total float64
	for _, ph := range g.prof.Phases {
		total += ph.Weight
	}
	u := g.rng.Float64() * total
	idx := len(g.prof.Phases) - 1
	var acc float64
	for i, ph := range g.prof.Phases {
		acc += ph.Weight
		if u < acc {
			idx = i
			break
		}
	}
	g.phase = idx
	g.phaseN = g.prof.PhaseLenRefs
}

// startStream replaces s with a fresh stream: random start line inside the
// footprint, length from the current phase's distribution, direction from
// DownFrac. The previous stream's intended length has already been fully
// walked when this is called, so nothing is recorded here; recording
// happens when the stream completes in advance().
func (g *Generator) startStream(s *genStream) {
	length := g.dists[g.phase].Sample(g.rng)
	dir := +1
	if g.rng.Bool(g.prof.DownFrac) {
		dir = -1
	}
	start := g.rng.Intn(g.prof.FootprintLines)
	s.line = mem.LineOf(g.base) + mem.Line(start)
	s.left = length
	s.length = length
	s.dir = dir
	s.accLeft = g.prof.AccessesPerLine
	s.accIdx = 0
}

// Next implements trace.Source. The generator never ends; bound it with
// trace.Limit.
func (g *Generator) Next() (trace.Record, bool) {
	var rec trace.Record
	// Gap: uniform in [0, 2*MeanGap] so the mean matches the profile.
	span := int(2*g.prof.MeanGap) + 1
	rec.Gap = uint32(g.rng.Intn(span))
	rec.Op = trace.Store
	if g.rng.Bool(g.prof.ReadFrac) {
		rec.Op = trace.Load
	}

	if g.prof.HotFrac > 0 && g.rng.Bool(g.prof.HotFrac) {
		line := mem.LineOf(g.hotBase) + mem.Line(g.rng.Intn(g.prof.HotLines))
		off := mem.Addr(g.rng.Intn(mem.LineSize/8) * 8)
		rec.Addr = line.Addr() + off
	} else {
		rec.Addr = g.advance()
	}

	g.emitted++
	g.phaseN--
	if g.phaseN <= 0 {
		g.enterPhase()
	}
	return rec, true
}

// advance picks a stream, emits its next access, and retires/replaces it
// when its intended length is exhausted. Streams advance round-robin with
// occasional random jumps: loop nests walk their arrays in a regular
// interleave, not by uniform sampling (whose heavy-tailed gaps would
// fragment any finite stream tracker, in the simulator and in hardware
// alike).
func (g *Generator) advance() mem.Addr {
	var idx int
	if g.rng.Bool(0.15) {
		idx = g.rng.Intn(len(g.streams))
	} else {
		idx = g.rrIdx
		g.rrIdx = (g.rrIdx + 1) % len(g.streams)
	}
	s := &g.streams[idx]
	// Offset within the line spreads AccessesPerLine accesses evenly.
	step := mem.LineSize / g.prof.AccessesPerLine
	addr := s.line.Addr() + mem.Addr(s.accIdx*step)
	s.accLeft--
	s.accIdx++
	if s.accLeft > 0 {
		return addr
	}
	// Line finished: advance to the next line of the stream, or retire.
	s.left--
	if s.left <= 0 {
		g.TrueLengths.Observe(s.length)
		g.startStream(s)
		return addr
	}
	next := s.line.Next(s.dir)
	// Keep the stream inside the footprint; walking off an edge retires
	// it early (recorded with the distance actually covered).
	lo := mem.LineOf(g.base)
	hi := lo + mem.Line(g.prof.FootprintLines)
	if next < lo || next >= hi {
		g.TrueLengths.Observe(s.length - s.left)
		g.startStream(s)
		return addr
	}
	s.line = next
	s.accLeft = g.prof.AccessesPerLine
	s.accIdx = 0
	return addr
}

// NewSuiteGenerators returns one generator per benchmark in the suite,
// seeded from baseSeed.
func NewSuiteGenerators(s Suite, baseSeed uint64) ([]*Generator, error) {
	names := SuiteNames(s)
	if names == nil {
		return nil, fmt.Errorf("workload: unknown suite %q", s)
	}
	gens := make([]*Generator, len(names))
	for i, n := range names {
		p, err := ByName(n)
		if err != nil {
			return nil, err
		}
		g, err := NewGenerator(p, baseSeed+uint64(i)*7919, 0)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	return gens, nil
}
