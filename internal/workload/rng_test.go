package workload

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(13)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(%d) count %d out of expected band", v, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestDistSampleRange(t *testing.T) {
	d := NewDist([]float64{1, 2, 3, 4}, 0)
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 1 || v > 4 {
			t.Fatalf("Sample = %d outside [1,4]", v)
		}
	}
}

func TestDistSampleFrequencies(t *testing.T) {
	d := NewDist([]float64{3, 1}, 0)
	r := NewRNG(17)
	var ones int
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) == 1 {
			ones++
		}
	}
	got := float64(ones) / n
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("P(1) = %v, want ~0.75", got)
	}
}

func TestDistTailContinue(t *testing.T) {
	// All mass on the final bucket with a strong tail: samples should
	// regularly exceed the bucket count.
	d := NewDist([]float64{0, 0, 0, 1}, 0.9)
	r := NewRNG(23)
	var over, sum int
	const n = 20000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 4 {
			t.Fatalf("sample %d below final bucket", v)
		}
		if v > 4 {
			over++
		}
		sum += v
	}
	if over < n/2 {
		t.Errorf("tail rarely extended: %d/%d", over, n)
	}
	mean := float64(sum) / n
	want := 4 + 0.9/0.1 // 13
	if math.Abs(mean-want) > 0.5 {
		t.Errorf("tail mean = %v, want ~%v", mean, want)
	}
}

func TestDistMean(t *testing.T) {
	d := NewDist([]float64{1, 1}, 0)
	if m := d.Mean(); math.Abs(m-1.5) > 1e-12 {
		t.Errorf("Mean = %v, want 1.5", m)
	}
	dt := NewDist([]float64{0, 1}, 0.5)
	if m := dt.Mean(); math.Abs(m-3) > 1e-12 { // 2 + 0.5/0.5
		t.Errorf("tail Mean = %v, want 3", m)
	}
}

func TestNewDistValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewDist(nil, 0) },
		"zero":     func() { NewDist([]float64{0, 0}, 0) },
		"negative": func() { NewDist([]float64{1, -1}, 0) },
		"badTail":  func() { NewDist([]float64{1}, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
