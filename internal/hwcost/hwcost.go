// Package hwcost reproduces the paper's §5.1 hardware-cost analysis: the
// storage the ASD prefetcher adds to the Power5+ memory controller, the
// resulting area and power estimates, and the comparison against
// table-based spatial-locality prefetchers that need 64 KB tables per
// thread.
package hwcost

import "math"

// Params describes one ASD prefetcher instance plus the host chip's
// published characteristics.
type Params struct {
	// Threads is the number of hardware threads (each gets its own
	// Stream Filter and LHT pairs; §5.2 "we find it critical to
	// replicate the locality identification hardware for each thread").
	Threads int
	// FilterSlots per thread (8).
	FilterSlots int
	// SLHLength is n_s (16).
	SLHLength int
	// EpochLen sizes each LHT counter at ceil(log2(EpochLen)) bits.
	EpochLen int
	// PBLines and LineBytes size the Prefetch Buffer (16 x 128 B).
	PBLines   int
	LineBytes int
	// LPQEntries is the Low Priority Queue depth (3).
	LPQEntries int
	// AddrBits is the physical address width tracked per slot.
	AddrBits int

	// Chip-level constants from the paper.
	// MCAreaFrac: the memory controller occupies ~1.61% of the chip.
	MCAreaFrac float64
	// MCPowerFrac: the memory controller consumes ~1% of chip power.
	MCPowerFrac float64
	// MCAreaIncrease: the paper reports the extensions grow the MC by
	// ~6.08%.
	MCAreaIncrease float64
	// MCPowerIncrease: ~6% more MC power.
	MCPowerIncrease float64
}

// Default returns the paper's evaluated configuration for a two-core,
// four-thread Power5+.
func Default() Params {
	return Params{
		Threads:     4,
		FilterSlots: 8,
		SLHLength:   16,
		EpochLen:    2000,
		PBLines:     16,
		LineBytes:   128,
		LPQEntries:  3,
		AddrBits:    48,

		MCAreaFrac:      0.0161,
		MCPowerFrac:     0.01,
		MCAreaIncrease:  0.0608,
		MCPowerIncrease: 0.06,
	}
}

// Cost is the derived hardware budget.
type Cost struct {
	// FilterBits is the Stream Filter storage across all threads.
	FilterBits int
	// LHTBits is the Likelihood Table storage across threads (two
	// directions, two tables each).
	LHTBits int
	// PBBits is the Prefetch Buffer storage (data + tags).
	PBBits int
	// LPQBits is the Low Priority Queue storage.
	LPQBits int
	// TotalBits sums the above.
	TotalBits int

	// ChipAreaIncrease is the estimated whole-chip area growth
	// (paper: ~0.098%).
	ChipAreaIncrease float64
	// ChipPowerIncrease is the estimated whole-chip power growth
	// (paper: ~0.06%).
	ChipPowerIncrease float64
}

// counterBits returns ceil(log2(n)) — the paper sizes each LHT entry at
// ceil(log2(e)) bits for epoch length e.
func counterBits(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Compute derives the cost budget from p.
func Compute(p Params) Cost {
	lifetimeBits := 12
	lengthBits := counterBits(p.SLHLength) + 1
	slotBits := p.AddrBits + lengthBits + 1 /*direction*/ + lifetimeBits
	filter := p.Threads * p.FilterSlots * slotBits

	entry := counterBits(p.EpochLen)
	// Two directions x (LHTcurr + LHTnext) x n_s entries, per thread.
	lht := p.Threads * 2 * 2 * p.SLHLength * entry

	pbTag := p.AddrBits + 2 // tag + valid + LRU-ish state
	pb := p.PBLines * (p.LineBytes*8 + pbTag)

	lpq := p.LPQEntries * (p.AddrBits + 32 /*timestamp*/)

	c := Cost{
		FilterBits: filter,
		LHTBits:    lht,
		PBBits:     pb,
		LPQBits:    lpq,
	}
	c.TotalBits = filter + lht + pb + lpq
	c.ChipAreaIncrease = p.MCAreaFrac * p.MCAreaIncrease
	c.ChipPowerIncrease = p.MCPowerFrac * p.MCPowerIncrease
	return c
}

// TableAlternative models the §5.1 comparison point: spatial-locality
// prefetchers that need a 64 KB detection table per thread. The paper
// estimates each table at ~25% of a 64 KB L1 I-cache's power, which is
// ~0.6% of chip power per table.
type TableAlternative struct {
	// TableBits is the total detection-table storage.
	TableBits int
	// ChipPowerIncrease is the estimated chip active-power growth
	// (paper: ~2.4% for four tables).
	ChipPowerIncrease float64
}

// ComputeTableAlternative derives the table-based comparison for the
// given thread count.
func ComputeTableAlternative(threads int) TableAlternative {
	const tableBytes = 64 << 10
	const perTablePowerFrac = 0.006 // ~0.6% of chip power each
	return TableAlternative{
		TableBits:         threads * tableBytes * 8,
		ChipPowerIncrease: float64(threads) * perTablePowerFrac,
	}
}

// StorageRatio returns how many times larger the table-based approach's
// storage is than ASD's.
func StorageRatio(c Cost, t TableAlternative) float64 {
	if c.TotalBits == 0 {
		return 0
	}
	return float64(t.TableBits) / float64(c.TotalBits)
}
