package hwcost

import (
	"math"
	"testing"
)

func TestCounterBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 2000: 11, 2048: 11, 2049: 12}
	for n, want := range cases {
		if got := counterBits(n); got != want {
			t.Errorf("counterBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestComputeMatchesPaperHeadlines(t *testing.T) {
	c := Compute(Default())
	// Paper §5.1: chip area increase ~0.098%, chip power ~0.06%.
	if math.Abs(c.ChipAreaIncrease-0.00098) > 0.0001 {
		t.Errorf("chip area increase = %v, want ~0.00098", c.ChipAreaIncrease)
	}
	if math.Abs(c.ChipPowerIncrease-0.0006) > 0.0001 {
		t.Errorf("chip power increase = %v, want ~0.0006", c.ChipPowerIncrease)
	}
}

func TestStorageDominatedByPrefetchBuffer(t *testing.T) {
	c := Compute(Default())
	if c.TotalBits != c.FilterBits+c.LHTBits+c.PBBits+c.LPQBits {
		t.Error("TotalBits inconsistent")
	}
	// The 2 KB Prefetch Buffer dwarfs the tracking structures — that is
	// the paper's point about ASD's small tables.
	if c.PBBits <= c.FilterBits+c.LHTBits {
		t.Errorf("PB %d should dominate filter %d + LHT %d", c.PBBits, c.FilterBits, c.LHTBits)
	}
	// Per-thread LHT storage: 2 dirs x 2 tables x 16 entries x 11 bits.
	if want := 4 * 2 * 2 * 16 * 11; c.LHTBits != want {
		t.Errorf("LHTBits = %d, want %d", c.LHTBits, want)
	}
}

func TestTableAlternative(t *testing.T) {
	ta := ComputeTableAlternative(4)
	if ta.TableBits != 4*64*1024*8 {
		t.Errorf("TableBits = %d", ta.TableBits)
	}
	if math.Abs(ta.ChipPowerIncrease-0.024) > 1e-9 {
		t.Errorf("power = %v, want 0.024 (paper: ~2.4%%)", ta.ChipPowerIncrease)
	}
	c := Compute(Default())
	ratio := StorageRatio(c, ta)
	// The table approach needs well over an order of magnitude more
	// storage than ASD's entire addition (PB included).
	if ratio < 10 {
		t.Errorf("storage ratio = %v, want >> 1", ratio)
	}
	if StorageRatio(Cost{}, ta) != 0 {
		t.Error("zero-cost ratio should be 0")
	}
}
