package farm

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"asdsim/internal/sim"
)

// An interrupted batch must resume from its partial JSONL: persisted
// successes are served from disk, only the remainder runs, and failures
// are retried rather than resumed.
func TestStoreResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")

	var mu sync.Mutex
	ran := map[string]int{}
	newPool := func() *Pool {
		return New(Options{
			Workers: 2,
			Backoff: 0,
			Run: func(ctx context.Context, s Spec) (sim.Result, error) {
				mu.Lock()
				ran[s.Benchmark]++
				mu.Unlock()
				if s.Benchmark == "fails" {
					return sim.Result{}, context.DeadlineExceeded
				}
				return fakeResult(uint64(len(s.Benchmark))), nil
			},
		})
	}

	specs := []Spec{testSpec("a", sim.NP), testSpec("b", sim.NP),
		{Benchmark: "fails", Mode: sim.NP, Config: sim.Default(sim.NP, 10_000)}}

	// First pass: everything runs, two successes and one failure land
	// in the file.
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := newPool()
	if _, err := pool.RunBatch(context.Background(), specs, store, nil); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	store.Close()
	if got := countRuns(ran); got != 3 {
		t.Fatalf("first pass ran %d jobs, want 3", got)
	}

	// Second pass over the same specs: the successes resume from disk,
	// only the failure reruns.
	store, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Completed() != 2 {
		t.Fatalf("store resumed %d successes, want 2", store.Completed())
	}
	pool = newPool()
	defer pool.Close()
	out, err := pool.RunBatch(context.Background(), specs, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran["a"] != 1 || ran["b"] != 1 {
		t.Errorf("resumed jobs reran: a=%d b=%d, want 1 each", ran["a"], ran["b"])
	}
	if ran["fails"] != 2 {
		t.Errorf("failed job ran %d times, want 2 (not resumed)", ran["fails"])
	}
	if !out[0].Resumed || !out[1].Resumed || out[2].Resumed {
		t.Errorf("resume flags wrong: %v %v %v", out[0].Resumed, out[1].Resumed, out[2].Resumed)
	}
	if !out[0].OK() || out[0].Result.Cycles != fakeResult(1).Cycles {
		t.Errorf("resumed outcome lost its result: %+v", out[0])
	}
}

func countRuns(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// A truncated final line — a crash mid-append — must not block
// reopening; everything before it is preserved.
func TestStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	good := Outcome{Key: "k1", Benchmark: "a", Result: &sim.Result{Cycles: 5}, Attempts: 1}
	if err := store.Append(good); err != nil {
		t.Fatal(err)
	}
	store.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k2","benchmark":"b","result":{"Cyc`) // torn write
	f.Close()

	store, err = OpenStore(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer store.Close()
	if _, ok := store.Lookup("k1"); !ok {
		t.Error("intact line lost")
	}
	if _, ok := store.Lookup("k2"); ok {
		t.Error("torn line resurrected")
	}
}

// Corruption before the final line is a real error, not silently
// skipped data.
func TestStoreRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	if err := os.WriteFile(path, []byte("garbage\n{\"key\":\"k\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}
