package farm

import (
	"encoding/json"
	"fmt"
	"sync"

	prom "asdsim/internal/metrics"
	"asdsim/internal/obs"
	"asdsim/internal/obs/flightrec"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

// Telemetry is the farm's per-run observability aggregator. Its
// Instrument method plugs into Options.Instrument: every attempt gets a
// private probe bus carrying a cycle-window sampler and a flight
// recorder, and when the attempt ends the run's depth table, CAQ
// occupancy series, anomaly triggers and triage bundles are folded into
// the shared state served by /metrics, /events, /dashboard and
// /flightrec. Per-attempt sinks are private to their worker goroutine,
// so the simulation hot path takes no locks; only the end-of-run merge
// does.
type Telemetry struct {
	// Node names the executing node ("w1") in triage bundles so a
	// bundle pulled off a cluster worker says where it was captured.
	// Optional; empty for standalone farms.
	Node string
	// SparkPoints bounds each run's CAQ sparkline (downsampled);
	// defaults to 60.
	SparkPoints int
	// MaxBundles bounds retained triage bundles across all runs;
	// defaults to 16.
	MaxBundles int
	// MaxAnomalies bounds the retained trigger list; defaults to 256.
	MaxAnomalies int

	mu        sync.Mutex
	runs      uint64
	depths    obs.DepthStats
	sparks    map[string]Spark // keyed by "bench/mode"; last run wins
	order     []string         // spark insertion order
	anomalies []Anomaly
	bundles   []TriageBundle
	bundleSeq int
}

// Spark is one run's downsampled CAQ-occupancy time series.
type Spark struct {
	Label  string    `json:"label"`
	Points []float64 `json:"points"` // mean CAQ occupancy per bucket
	Max    float64   `json:"max"`
}

// Anomaly is one flight-recorder trigger in farm context.
type Anomaly struct {
	Benchmark string            `json:"benchmark"`
	Mode      string            `json:"mode"`
	Engine    string            `json:"engine"`
	Trigger   flightrec.Trigger `json:"trigger"`
	BundleID  string            `json:"bundle_id,omitempty"`
}

// TriageBundle is a retained flight-recorder bundle with a stable ID
// for /flightrec/{id}.
type TriageBundle struct {
	ID     string
	Bundle *flightrec.Bundle
}

// NewTelemetry returns a telemetry aggregator with default bounds.
func NewTelemetry() *Telemetry {
	return &Telemetry{SparkPoints: 60, MaxBundles: 16, MaxAnomalies: 256,
		sparks: make(map[string]Spark)}
}

// Instrument implements the farm Options.Instrument contract.
func (t *Telemetry) Instrument(spec Spec) (*obs.Bus, func(res *sim.Result, err error)) {
	label := spec.Benchmark + "/" + spec.Mode.String()
	cfg, _ := json.Marshal(spec.Config)
	key := spec.Key()
	rec := flightrec.New(flightrec.Options{
		Label:     label,
		Detectors: flightrec.DefaultDetectors(spec.Config.MC.CAQCap),
		Config:    cfg,
		Key:       key,
		Node:      t.Node,
		TraceID:   span.TraceIDFromKey(key),
	})
	sampler := obs.NewSampler(0)
	fin := func(res *sim.Result, err error) {
		rec.Finish()
		t.absorb(spec, label, sampler, rec)
	}
	return obs.NewBus(sampler, rec), fin
}

// absorb merges one finished attempt's sinks into the shared state.
func (t *Telemetry) absorb(spec Spec, label string, sampler *obs.Sampler, rec *flightrec.Recorder) {
	spark := downsampleCAQ(sampler.Samples(), t.sparkPoints())
	d := rec.Depths()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.runs++
	for i := 0; i <= obs.MaxTrackedDepth; i++ {
		t.depths.Nominated[i] += d.Nominated[i]
		t.depths.Issued[i] += d.Issued[i]
		t.depths.Timely[i] += d.Timely[i]
		t.depths.Late[i] += d.Late[i]
		t.depths.Wasted[i] += d.Wasted[i]
		t.depths.Dropped[i] += d.Dropped[i]
	}
	if _, seen := t.sparks[label]; !seen {
		t.order = append(t.order, label)
	}
	t.sparks[label] = spark

	bundles := rec.Bundles()
	for _, tr := range rec.Triggers() {
		a := Anomaly{Benchmark: spec.Benchmark, Mode: spec.Mode.String(),
			Engine: spec.Config.Engine.String(), Trigger: tr}
		// Pair the trigger with its bundle when one was captured and we
		// still have room to retain it.
		for _, b := range bundles {
			if b.Trigger == tr && len(t.bundles) < t.maxBundles() {
				t.bundleSeq++
				a.BundleID = fmt.Sprintf("b%d", t.bundleSeq)
				t.bundles = append(t.bundles, TriageBundle{ID: a.BundleID, Bundle: b})
				break
			}
		}
		t.anomalies = append(t.anomalies, a)
	}
	if max := t.maxAnomalies(); len(t.anomalies) > max {
		t.anomalies = append(t.anomalies[:0:0], t.anomalies[len(t.anomalies)-max:]...)
	}
}

func (t *Telemetry) sparkPoints() int {
	if t.SparkPoints <= 0 {
		return 60
	}
	return t.SparkPoints
}

func (t *Telemetry) maxBundles() int {
	if t.MaxBundles <= 0 {
		return 16
	}
	return t.MaxBundles
}

func (t *Telemetry) maxAnomalies() int {
	if t.MaxAnomalies <= 0 {
		return 256
	}
	return t.MaxAnomalies
}

// downsampleCAQ buckets the samples' CAQ means into at most n points.
func downsampleCAQ(samples []obs.Sample, n int) Spark {
	s := Spark{Label: ""}
	if len(samples) == 0 {
		return s
	}
	if n < 1 {
		n = 1
	}
	if len(samples) < n {
		n = len(samples)
	}
	s.Points = make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(samples)/n, (i+1)*len(samples)/n
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, sm := range samples[lo:hi] {
			sum += sm.CAQMean
		}
		s.Points[i] = sum / float64(hi-lo)
		if s.Points[i] > s.Max {
			s.Max = s.Points[i]
		}
	}
	return s
}

// Sparks returns the per-run-label CAQ sparklines in first-seen order.
func (t *Telemetry) Sparks() []Spark {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Spark, 0, len(t.order))
	for _, label := range t.order {
		sp := t.sparks[label]
		sp.Label = label
		out = append(out, sp)
	}
	return out
}

// Anomalies returns the retained trigger list, oldest first.
func (t *Telemetry) Anomalies() []Anomaly {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Anomaly(nil), t.anomalies...)
}

// Bundles returns the retained triage bundles' IDs and trigger lines.
func (t *Telemetry) Bundles() []TriageBundle {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TriageBundle(nil), t.bundles...)
}

// Bundle returns the bundle with the given ID, or nil.
func (t *Telemetry) Bundle(id string) *flightrec.Bundle {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range t.bundles {
		if b.ID == id {
			return b.Bundle
		}
	}
	return nil
}

// Depths returns a copy of the farm-wide per-depth prefetch table.
func (t *Telemetry) Depths() obs.DepthStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.depths
}

// addTo folds the telemetry families into a Prometheus registry: the
// aggregated per-depth prefetch table, anomaly counts by detector, and
// retained-bundle/instrumented-run gauges.
func (t *Telemetry) addTo(reg *prom.Registry) {
	t.mu.Lock()
	runs := t.runs
	depths := t.depths
	counts := map[string]uint64{}
	for _, a := range t.anomalies {
		counts[a.Trigger.Detector]++
	}
	nBundles := len(t.bundles)
	t.mu.Unlock()

	reg.Counter("farm_instrumented_runs_total",
		"Attempts that ran with telemetry attached.").With().Add(float64(runs))
	reg.Gauge("farm_flightrec_bundles",
		"Triage bundles currently retained.").With().Set(float64(nBundles))
	anom := reg.Counter("farm_anomalies_total",
		"Flight-recorder detector firings by detector.", "detector")
	for det, n := range counts {
		anom.With(det).Add(float64(n))
	}
	prom.AddDepthStats(reg, &depths, nil, nil)
}
