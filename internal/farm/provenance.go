package farm

import (
	"sort"
	"sync"

	prom "asdsim/internal/metrics"
	"asdsim/internal/obs/prov"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

// maxTimelines bounds the per-run decision timelines retained in memory
// for the dashboard; the oldest run's timeline is evicted first. The
// full streams live in the sidecar store regardless.
const maxTimelines = 8

// maxTimelinePoints bounds each retained timeline's epoch points for
// the SSE payload; the newest epochs win. The sidecar keeps them all.
const maxTimelinePoints = 256

// TimelinePoint aggregates one SLH epoch's provenance activity: how
// many prefetch decisions fired and what became of the prefetches
// stamped with that epoch.
type TimelinePoint struct {
	Epoch     uint32 `json:"epoch"`
	Decisions uint64 `json:"decisions"`
	Nominates uint64 `json:"nominates"`
	Issues    uint64 `json:"issues"`
	PBHits    uint64 `json:"pb_hits"`
	Late      uint64 `json:"late"`
	Wasted    uint64 `json:"wasted"`
	Drops     uint64 `json:"drops"`
}

// Timeline is one run's per-epoch decision activity — the dashboard's
// decision-timeline panel feed.
type Timeline struct {
	Label   string          `json:"label"`
	Key     string          `json:"key"`
	Records int             `json:"records"`
	Dropped uint64          `json:"dropped,omitempty"`
	Points  []TimelinePoint `json:"points"`
}

// BuildTimeline folds a provenance stream's records into per-epoch
// activity, epochs ascending.
func BuildTimeline(st *prov.Stream) []TimelinePoint {
	byEpoch := map[uint32]*TimelinePoint{}
	for i := range st.Records {
		r := &st.Records[i]
		p := byEpoch[r.Epoch]
		if p == nil {
			p = &TimelinePoint{Epoch: r.Epoch}
			byEpoch[r.Epoch] = p
		}
		switch r.Op {
		case prov.OpDecision:
			p.Decisions++
		case prov.OpNominate:
			p.Nominates++
		case prov.OpIssue:
			p.Issues++
		case prov.OpPBHit:
			p.PBHits++
		case prov.OpLate:
			p.Late++
		case prov.OpWasted:
			p.Wasted++
		case prov.OpDrop:
			p.Drops++
		}
	}
	epochs := make([]int, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, int(e))
	}
	sort.Ints(epochs)
	pts := make([]TimelinePoint, 0, len(epochs))
	for _, e := range epochs {
		pts = append(pts, *byEpoch[uint32(e)])
	}
	if len(pts) > maxTimelinePoints {
		pts = pts[len(pts)-maxTimelinePoints:]
	}
	return pts
}

// Provenance wires per-attempt prefetch-provenance recording into a
// pool (plug Attach into Options.Provenance) and persists each
// successful run's stream as a sidecar keyed by the spec key, so
// `asdfarm explain`/`diff` and the server's /explain and /diff routes
// can reconstruct any stored run's decisions. It also keeps a bounded
// set of per-run decision timelines for the dashboard. Safe for
// concurrent use.
type Provenance struct {
	store *prov.Store // nil: record timelines only, persist nothing
	ring  int

	mu        sync.Mutex
	runs      uint64
	saved     uint64
	saveErrs  uint64
	timelines map[string]*Timeline // key → newest timeline
	order     []string             // insertion order for eviction/display
}

// NewProvenance returns a collector persisting streams into store
// (which may be nil for in-memory timelines only). ringSize bounds each
// recorder's record ring; <= 0 uses the prov default.
func NewProvenance(store *prov.Store, ringSize int) *Provenance {
	return &Provenance{store: store, ring: ringSize, timelines: map[string]*Timeline{}}
}

// Store returns the sidecar store (nil when not persisting).
func (f *Provenance) Store() *prov.Store { return f.store }

// Attach implements the farm Options.Provenance contract: every attempt
// gets a fresh recorder whose trace ID is derived from the spec key,
// and the finish callback folds the stream into the collector and — for
// successful attempts — saves the sidecar.
func (f *Provenance) Attach(spec Spec) (*prov.Recorder, func(res *sim.Result, err error)) {
	key := spec.Key()
	rec := prov.New(prov.Options{TraceID: span.TraceIDFromKey(key), RingSize: f.ring})
	label := spec.Benchmark + "/" + spec.Mode.String()
	return rec, func(res *sim.Result, err error) {
		st := rec.Stream()
		tl := &Timeline{Label: label, Key: key, Records: len(st.Records),
			Dropped: st.Dropped, Points: BuildTimeline(st)}
		f.mu.Lock()
		defer f.mu.Unlock()
		f.runs++
		if _, seen := f.timelines[key]; !seen {
			f.order = append(f.order, key)
		}
		f.timelines[key] = tl
		for len(f.order) > maxTimelines {
			delete(f.timelines, f.order[0])
			f.order = f.order[1:]
		}
		if err != nil || f.store == nil {
			return
		}
		if serr := f.store.Save(key, st); serr != nil {
			f.saveErrs++
		} else {
			f.saved++
		}
	}
}

// Timelines returns the retained per-run decision timelines, oldest
// run first.
func (f *Provenance) Timelines() []Timeline {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Timeline, 0, len(f.order))
	for _, k := range f.order {
		out = append(out, *f.timelines[k])
	}
	return out
}

// addTo folds the collector's counters into a Prometheus registry.
func (f *Provenance) addTo(reg *prom.Registry) {
	f.mu.Lock()
	runs, saved, errs := f.runs, f.saved, f.saveErrs
	f.mu.Unlock()
	reg.Counter("farm_prov_runs_total",
		"Attempts executed with a provenance recorder attached.").With().Add(float64(runs))
	reg.Counter("farm_prov_streams_saved_total",
		"Provenance streams persisted to the sidecar store.").With().Add(float64(saved))
	reg.Counter("farm_prov_save_errors_total",
		"Provenance sidecar writes that failed.").With().Add(float64(errs))
}
