package farm

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store persists outcomes as JSON Lines across one or more size-bounded
// segment files, keeps an in-memory hash→(segment,offset) index rebuilt
// on open, and fronts the segments with a bounded read-through cache of
// decoded outcomes. Identity is the spec key (the SHA-256 spec hash),
// not the position, so any process holding the same store can serve any
// cached result. Failed outcomes are recorded for post-mortem but are
// not served on resume — a rerun retries them — and background
// compaction eventually drops them along with superseded duplicates.
//
// Two layouts share the one implementation:
//
//   - single-file: a path ending in ".jsonl" (or naming an existing
//     file) is one unbounded append-only segment — the PR-1 format,
//     still what `asdfarm run -out results.jsonl` writes.
//   - segmented: any other path is a directory of seg-NNNNNNNN.jsonl
//     files. The last segment is the append target; when it exceeds
//     MaxSegmentBytes it is sealed and a new one starts. When enough
//     sealed lines are droppable (superseded or failed), a background
//     compaction rewrites the sealed segments into one and deletes the
//     rest.
type Store struct {
	path   string // as given: the file (single) or directory (segmented)
	single bool
	opts   StoreOptions

	mu     sync.Mutex
	f      *os.File // active segment, opened O_APPEND
	segs   []*segment
	index  map[string]segref
	cache  *outcomeLRU
	closed bool

	compacting bool
	wg         sync.WaitGroup // in-flight background compaction

	hits, misses, rotations, compactions uint64
}

// StoreOptions tunes the segmented layout; the zero value means
// defaults. Single-file stores ignore everything but CacheEntries.
type StoreOptions struct {
	// MaxSegmentBytes seals the active segment once it grows past this
	// size (default 4 MiB).
	MaxSegmentBytes int64
	// CacheEntries bounds the read-through outcome cache (default 1024).
	CacheEntries int
	// CompactMinGarbage is how many droppable lines must accumulate in
	// sealed segments before a background compaction starts (default 64).
	CompactMinGarbage int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CompactMinGarbage <= 0 {
		o.CompactMinGarbage = 64
	}
	return o
}

// segment is one on-disk JSONL file.
type segment struct {
	id    int64
	path  string
	size  int64
	lines int // outcomes in the file
	dead  int // droppable lines: failed, or superseded by a later append
}

// segref locates one indexed outcome on disk.
type segref struct {
	seg int64 // segment id
	off int64
	n   int64
}

// StoreStats is a point-in-time view of the store, shaped for JSON.
type StoreStats struct {
	Path        string `json:"path"`
	Segmented   bool   `json:"segmented"`
	Segments    int    `json:"segments"`
	Entries     int    `json:"entries"` // live successes servable on resume
	Lines       int    `json:"lines"`   // outcomes on disk, live + droppable
	Garbage     int    `json:"garbage"` // droppable lines awaiting compaction
	Bytes       int64  `json:"bytes"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Rotations   uint64 `json:"rotations"`
	Compactions uint64 `json:"compactions"`
}

// OpenStore opens (creating if absent) the store at path and rebuilds
// its index from disk. A path ending in ".jsonl" — or naming an
// existing plain file — is a legacy single-file store; anything else is
// a segment directory. A truncated final line in the append target — a
// crash mid-append — is tolerated and dropped; corruption anywhere else
// is an error.
func OpenStore(path string) (*Store, error) {
	return OpenStoreOptions(path, StoreOptions{})
}

// OpenStoreOptions is OpenStore with explicit tuning.
func OpenStoreOptions(path string, opts StoreOptions) (*Store, error) {
	s := &Store{path: path, opts: opts.withDefaults(), index: make(map[string]segref)}
	s.cache = newOutcomeLRU(s.opts.CacheEntries)

	fi, err := os.Stat(path)
	switch {
	case err == nil && !fi.IsDir():
		s.single = true
	case err == nil: // existing directory
	case os.IsNotExist(err) && strings.HasSuffix(path, ".jsonl"):
		s.single = true
	case os.IsNotExist(err):
		if err := os.MkdirAll(path, 0o755); err != nil {
			return nil, fmt.Errorf("farm: open store: %w", err)
		}
	default:
		return nil, fmt.Errorf("farm: open store: %w", err)
	}

	if s.single {
		s.segs = []*segment{{id: 1, path: path}}
	} else if s.segs, err = listSegments(path); err != nil {
		return nil, err
	}
	if len(s.segs) == 0 {
		s.segs = []*segment{{id: 1, path: segPath(path, 1)}}
	}
	for i, seg := range s.segs {
		if err := s.loadSegment(seg, i == len(s.segs)-1); err != nil {
			return nil, err
		}
	}
	active := s.segs[len(s.segs)-1]
	if s.f, err = os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return nil, fmt.Errorf("farm: open store: %w", err)
	}
	return s, nil
}

// segPath names segment id inside dir.
func segPath(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.jsonl", id))
}

// listSegments finds the directory's segment files in id order,
// removing any *.tmp leftover from an interrupted compaction.
func listSegments(dir string) ([]*segment, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl*"))
	if err != nil {
		return nil, fmt.Errorf("farm: open store: %w", err)
	}
	var segs []*segment
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(name) // interrupted compaction; the sources are intact
			continue
		}
		var id int64
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.jsonl", &id); err != nil || id <= 0 {
			continue // not ours
		}
		segs = append(segs, &segment{id: id, path: name})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].id < segs[b].id })
	return segs, nil
}

// segEntry is one decoded segment line's index information.
type segEntry struct {
	key    string
	ok     bool // a successful outcome, servable on resume
	off, n int64
}

// scanSegment parses one segment file's bytes into index entries.
// final applies the torn-tail rule: when set, an undecodable last line
// is dropped (reported via torn) instead of failing the scan — only the
// append target can legitimately be torn by a crash.
func scanSegment(data []byte, final bool) (entries []segEntry, torn bool, err error) {
	lineNo := 0
	for off := int64(0); off < int64(len(data)); {
		rest := data[off:]
		n := int64(len(rest))
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			n = int64(i) + 1
		}
		line := bytes.TrimSpace(rest[:n])
		lineNo++
		if len(line) > 0 {
			var o Outcome
			if err := json.Unmarshal(line, &o); err != nil {
				if final && off+n >= int64(len(data)) {
					return entries, true, nil // torn tail from an interrupted write
				}
				return nil, false, fmt.Errorf("line %d: %w", lineNo, err)
			}
			entries = append(entries, segEntry{key: o.Key, ok: o.OK(), off: off, n: n})
		}
		off += n
	}
	return entries, false, nil
}

// loadSegment scans one segment file into the index.
func (s *Store) loadSegment(seg *segment, final bool) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("farm: open store: %w", err)
	}
	seg.size = int64(len(data))
	entries, torn, err := scanSegment(data, final)
	if err != nil {
		return fmt.Errorf("farm: %s: %w", seg.path, err)
	}
	if torn {
		// Drop the torn bytes so the next append starts a clean line.
		last := int64(0)
		if len(entries) > 0 {
			last = entries[len(entries)-1].off + entries[len(entries)-1].n
		}
		if err := os.Truncate(seg.path, last); err != nil {
			return fmt.Errorf("farm: open store: %w", err)
		}
		seg.size = last
	}
	for _, e := range entries {
		seg.lines++
		if !e.ok {
			seg.dead++
			continue
		}
		if prev, dup := s.index[e.key]; dup {
			s.segByID(prev.seg).dead++
		}
		s.index[e.key] = segref{seg: seg.id, off: e.off, n: e.n}
	}
	return nil
}

// segByID resolves a segment id (always present: refs only point at
// listed segments).
func (s *Store) segByID(id int64) *segment {
	for _, seg := range s.segs {
		if seg.id == id {
			return seg
		}
	}
	panic(fmt.Sprintf("farm: store index references unknown segment %d", id))
}

// Path returns the backing file or directory path.
func (s *Store) Path() string { return s.path }

// Len returns how many outcomes the store holds on disk (live +
// not-yet-compacted garbage).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.segs {
		n += seg.lines
	}
	return n
}

// Completed returns how many successful outcomes are available for
// resume.
func (s *Store) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats captures the store's current shape and cache counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Path: s.path, Segmented: !s.single, Segments: len(s.segs),
		Entries: len(s.index), CacheHits: s.hits, CacheMisses: s.misses,
		Rotations: s.rotations, Compactions: s.compactions,
	}
	for _, seg := range s.segs {
		st.Lines += seg.lines
		st.Garbage += seg.dead
		st.Bytes += seg.size
	}
	return st
}

// Lookup returns the persisted successful outcome for a spec key,
// read-through: an in-memory cache hit costs no IO, a miss decodes the
// indexed line from its segment and caches it.
//
//asd:allow lockorder read-through miss decodes a segment line under mu by design; the index, cache, and file must be observed atomically
func (s *Store) Lookup(key string) (Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.cache.get(key); ok {
		s.hits++
		return o, true
	}
	s.misses++
	ref, ok := s.index[key]
	if !ok {
		return Outcome{}, false
	}
	o, err := s.readAt(ref)
	if err != nil || o.Key != key {
		// The index and the file disagree — external truncation or
		// corruption since open. Treat as a miss; a rerun repairs it.
		return Outcome{}, false
	}
	s.cache.put(key, o)
	return o, true
}

// readAt decodes one indexed line from its segment file.
func (s *Store) readAt(ref segref) (Outcome, error) {
	f, err := os.Open(s.segByID(ref.seg).path)
	if err != nil {
		return Outcome{}, err
	}
	defer f.Close()
	buf := make([]byte, ref.n)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return Outcome{}, err
	}
	var o Outcome
	if err := json.Unmarshal(bytes.TrimSpace(buf), &o); err != nil {
		return Outcome{}, err
	}
	return o, nil
}

// Append writes one outcome to the active segment and indexes it,
// rotating the segment when full and kicking off a background
// compaction when enough sealed garbage has accumulated.
//
//asd:allow lockorder single-writer invariant: the segment write, index update, and rotation must mutate atomically under mu
func (s *Store) Append(o Outcome) error {
	data, err := json.Marshal(o)
	if err != nil {
		return fmt.Errorf("farm: marshal outcome: %w", err)
	}
	data = append(data, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("farm: store closed")
	}
	active := s.segs[len(s.segs)-1]
	if !s.single && active.size > 0 && active.size+int64(len(data)) > s.opts.MaxSegmentBytes {
		next, err := s.rotateLocked(active)
		if err != nil {
			return err
		}
		active = next
	}
	if _, err := s.f.Write(data); err != nil {
		return fmt.Errorf("farm: append outcome: %w", err)
	}
	ref := segref{seg: active.id, off: active.size, n: int64(len(data))}
	active.size += ref.n
	active.lines++
	if o.OK() {
		if prev, dup := s.index[o.Key]; dup {
			s.segByID(prev.seg).dead++
		}
		s.index[o.Key] = ref
		s.cache.put(o.Key, o)
	} else {
		active.dead++
	}
	s.maybeCompactLocked()
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (s *Store) rotateLocked(active *segment) (*segment, error) {
	next := &segment{id: active.id + 1, path: segPath(s.path, active.id+1)}
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: rotate segment: %w", err)
	}
	s.f.Close()
	s.f = f
	s.segs = append(s.segs, next)
	s.rotations++
	return next, nil
}

// maybeCompactLocked starts a background compaction when the sealed
// segments carry enough droppable lines to be worth rewriting.
func (s *Store) maybeCompactLocked() {
	if s.single || s.compacting || len(s.segs) < 2 {
		return
	}
	dead := 0
	for _, seg := range s.segs[:len(s.segs)-1] {
		dead += seg.dead
	}
	if dead < s.opts.CompactMinGarbage {
		return
	}
	s.compacting = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.doCompact()
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()
}

// Compact synchronously rewrites the sealed segments into one, dropping
// superseded and failed lines. It is a no-op for single-file stores and
// when fewer than two segments exist. Any in-flight background
// compaction completes first.
func (s *Store) Compact() error {
	s.wg.Wait()
	return s.doCompact()
}

// doCompact performs one compaction cycle: snapshot the sealed
// segments' live entries under the lock, rewrite them (in original
// order) into a temp file without the lock — sealed segments are
// immutable — then atomically swap the file, the index and the segment
// list back under the lock.
//
//asd:allow lockorder the swap phase renames and unlinks sealed segments under mu so the index never points at a missing file; the heavy copy runs before mu is taken
func (s *Store) doCompact() error {
	type liveEnt struct {
		key string
		ref segref
	}
	s.mu.Lock()
	if s.single || s.closed || len(s.segs) < 2 {
		s.mu.Unlock()
		return nil
	}
	sealed := append([]*segment(nil), s.segs[:len(s.segs)-1]...)
	sealedSet := make(map[int64]bool, len(sealed))
	for _, seg := range sealed {
		sealedSet[seg.id] = true
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var live []liveEnt
	for _, k := range keys {
		if ref := s.index[k]; sealedSet[ref.seg] {
			live = append(live, liveEnt{key: k, ref: ref})
		}
	}
	s.mu.Unlock()

	sort.Slice(live, func(a, b int) bool {
		if live[a].ref.seg != live[b].ref.seg {
			return live[a].ref.seg < live[b].ref.seg
		}
		return live[a].ref.off < live[b].ref.off
	})

	// Build the compacted image from the immutable sealed files.
	var buf bytes.Buffer
	newRefs := make(map[string]segref, len(live))
	bySeg := map[int64][]byte{}
	firstID := sealed[0].id
	for _, ent := range live {
		data, ok := bySeg[ent.ref.seg]
		if !ok {
			var err error
			seg := sealed[0]
			for _, sg := range sealed {
				if sg.id == ent.ref.seg {
					seg = sg
				}
			}
			if data, err = os.ReadFile(seg.path); err != nil {
				return fmt.Errorf("farm: compact: %w", err)
			}
			bySeg[ent.ref.seg] = data
		}
		line := data[ent.ref.off : ent.ref.off+ent.ref.n]
		newRefs[ent.key] = segref{seg: firstID, off: int64(buf.Len()), n: int64(len(line))}
		buf.Write(line)
	}
	tmp := segPath(s.path, firstID) + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("farm: compact: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		os.Remove(tmp)
		return nil
	}
	if err := os.Rename(tmp, segPath(s.path, firstID)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("farm: compact: %w", err)
	}
	newSeg := &segment{id: firstID, path: segPath(s.path, firstID), size: int64(buf.Len())}
	for _, ent := range live {
		newSeg.lines++
		// An entry superseded while we compacted keeps its newer ref;
		// its copy in the compacted file is immediately dead.
		if cur, ok := s.index[ent.key]; ok && cur == ent.ref {
			s.index[ent.key] = newRefs[ent.key]
		} else {
			newSeg.dead++
		}
	}
	rebuilt := []*segment{newSeg}
	for _, seg := range s.segs {
		if !sealedSet[seg.id] {
			rebuilt = append(rebuilt, seg)
		}
	}
	s.segs = rebuilt
	for _, seg := range sealed {
		if seg.id != firstID {
			os.Remove(seg.path)
		}
	}
	s.compactions++
	return nil
}

// Close waits for any background compaction and releases the active
// segment file.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	return s.f.Close()
}

// outcomeLRU is a small fixed-capacity LRU of decoded outcomes — the
// read-through layer that makes a repeated matrix query cost zero IO
// and zero simulation.
type outcomeLRU struct {
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

type lruEntry struct {
	key string
	o   Outcome
}

func newOutcomeLRU(capacity int) *outcomeLRU {
	return &outcomeLRU{cap: capacity, m: make(map[string]*list.Element), l: list.New()}
}

func (c *outcomeLRU) get(key string) (Outcome, bool) {
	el, ok := c.m[key]
	if !ok {
		return Outcome{}, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruEntry).o, true
}

func (c *outcomeLRU) put(key string, o Outcome) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).o = o
		c.l.MoveToFront(el)
		return
	}
	c.m[key] = c.l.PushFront(&lruEntry{key: key, o: o})
	if c.l.Len() > c.cap {
		last := c.l.Back()
		c.l.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}
