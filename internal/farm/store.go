package farm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store persists outcomes as JSON Lines, one outcome per line, and
// indexes what is already on disk so an interrupted batch resumes from
// its partial results. Lines land in completion order; identity is the
// spec key, not the position. Failed outcomes are recorded for
// post-mortem but are not served on resume — a rerun retries them.
type Store struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done map[string]Outcome // successful outcomes by Spec.Key()
	n    int                // total lines loaded + appended
}

// OpenStore opens (creating if absent) the JSONL file at path and
// loads its existing outcomes. A truncated final line — a crash
// mid-append — is tolerated and dropped; corruption anywhere else is an
// error.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, done: make(map[string]Outcome)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("farm: open store: %w", err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var o Outcome
		if err := json.Unmarshal(line, &o); err != nil {
			if i == len(lines)-1 {
				break // torn tail from an interrupted write
			}
			return nil, fmt.Errorf("farm: %s line %d: %w", path, i+1, err)
		}
		s.n++
		if o.OK() {
			s.done[o.Key] = o
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: open store: %w", err)
	}
	s.f = f
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Len returns how many outcomes the store holds (loaded + appended).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Completed returns how many successful outcomes are available for
// resume.
func (s *Store) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Lookup returns the persisted successful outcome for a spec key.
func (s *Store) Lookup(key string) (Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.done[key]
	return o, ok
}

// Append writes one outcome as a JSONL line and indexes it.
func (s *Store) Append(o Outcome) error {
	data, err := json.Marshal(o)
	if err != nil {
		return fmt.Errorf("farm: marshal outcome: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := bufio.NewWriter(s.f)
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("farm: append outcome: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("farm: append outcome: %w", err)
	}
	s.n++
	if o.OK() {
		s.done[o.Key] = o
	}
	return nil
}

// Close releases the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
