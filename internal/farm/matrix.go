package farm

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"asdsim/internal/sim"
	"asdsim/internal/workload"
)

// Matrix describes a benchmark x mode job grid in wire-friendly terms;
// it is the POST /jobs request body and the CLI's flag target. Zero
// fields take defaults, so {"suites":["spec2006fp"]} is a full request.
type Matrix struct {
	// Benchmarks lists individual benchmark names; Suites adds whole
	// suites ("spec2006fp", "nas", "commercial", case-insensitive).
	// Both empty means every registered benchmark.
	Benchmarks []string `json:"benchmarks,omitempty"`
	Suites     []string `json:"suites,omitempty"`
	// Modes lists configurations ("NP", "PS", "MS", "PMS"); empty means
	// all four.
	Modes []string `json:"modes,omitempty"`
	// Engine is the memory-side engine ("asd", "next-line", "p5-style",
	// "ghb"); empty means asd.
	Engine string `json:"engine,omitempty"`
	// Threads is the SMT width (default 1).
	Threads int `json:"threads,omitempty"`
	// Budget is instructions per thread (default 1,000,000).
	Budget uint64 `json:"budget,omitempty"`
	// Seed drives workload randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// DeriveSeeds decorrelates the cells: each job's seed becomes a
	// stable hash of (Seed, benchmark, mode) instead of Seed itself.
	DeriveSeeds bool `json:"derive_seeds,omitempty"`
	// TimeoutSec bounds each attempt; zero means none.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Retries is the per-job retry budget.
	Retries int `json:"retries,omitempty"`
	// Sample, when non-nil, runs every cell under SMARTS-style sampled
	// simulation with these parameters (zero fields take the sim
	// defaults) instead of exact simulation.
	Sample *sim.SampleConfig `json:"sample,omitempty"`
}

// ParseSuite resolves a suite name case-insensitively.
func ParseSuite(s string) (workload.Suite, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "spec2006fp", "spec":
		return workload.SPEC2006FP, nil
	case "nas":
		return workload.NAS, nil
	case "commercial":
		return workload.Commercial, nil
	default:
		return "", fmt.Errorf("farm: unknown suite %q (want spec2006fp, nas or commercial)", s)
	}
}

// DeriveSeed returns a stable per-cell seed: FNV-1a over the base seed,
// benchmark name and mode. Deterministic across processes and worker
// counts, never zero.
func DeriveSeed(base uint64, bench string, mode sim.Mode) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(base >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(bench))
	h.Write([]byte{byte(mode)})
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

// Specs expands the matrix into one Spec per benchmark x mode cell, in
// deterministic (benchmark-major) order.
func (m Matrix) Specs() ([]Spec, error) {
	benches := append([]string(nil), m.Benchmarks...)
	for _, s := range m.Suites {
		suite, err := ParseSuite(s)
		if err != nil {
			return nil, err
		}
		benches = append(benches, workload.SuiteNames(suite)...)
	}
	if len(benches) == 0 {
		benches = workload.Names()
	}
	seen := make(map[string]bool, len(benches))
	uniq := benches[:0]
	for _, b := range benches {
		if _, err := workload.ByName(b); err != nil {
			return nil, err
		}
		if !seen[b] {
			seen[b] = true
			uniq = append(uniq, b)
		}
	}
	benches = uniq

	modeNames := m.Modes
	if len(modeNames) == 0 {
		modeNames = []string{"NP", "PS", "MS", "PMS"}
	}
	modes := make([]sim.Mode, len(modeNames))
	for i, s := range modeNames {
		mode, err := sim.ParseMode(s)
		if err != nil {
			return nil, err
		}
		modes[i] = mode
	}
	engine, err := sim.ParseEngine(m.Engine)
	if err != nil {
		return nil, err
	}
	if m.Sample != nil {
		if err := m.Sample.WithDefaults().Validate(); err != nil {
			return nil, err
		}
	}

	budget := m.Budget
	if budget == 0 {
		budget = 1_000_000
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	threads := m.Threads
	if threads == 0 {
		threads = 1
	}

	specs := make([]Spec, 0, len(benches)*len(modes))
	for _, b := range benches {
		for _, mode := range modes {
			cfg := sim.Default(mode, budget)
			cfg.Engine = engine
			cfg.Threads = threads
			cfg.Seed = seed
			if m.DeriveSeeds {
				cfg.Seed = DeriveSeed(seed, b, mode)
			}
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("farm: %s/%v: %w", b, mode, err)
			}
			specs = append(specs, Spec{
				Benchmark: b,
				Mode:      mode,
				Config:    cfg,
				Sample:    m.Sample,
				Timeout:   time.Duration(m.TimeoutSec * float64(time.Second)),
				Retries:   m.Retries,
			})
		}
	}
	return specs, nil
}
