package farm

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSegmentDecode drives the segment scanner — the parser that
// rebuilds a store's index from arbitrary on-disk bytes — with hostile
// input: it must never panic, every entry it returns must carry valid
// bounds that re-decode to an outcome with the same key, and a torn
// tail may only ever be reported for the append-target (final) scan.
func FuzzSegmentDecode(f *testing.F) {
	ok, _ := json.Marshal(okOutcome("GemsFDTD", 123))
	bad, _ := json.Marshal(failedOutcome("milc"))
	whole := append(append(append([]byte{}, ok...), '\n'), append(bad, '\n')...)
	f.Add(whole, true)
	f.Add(whole, false)
	f.Add(append(append([]byte{}, whole...), ok[:len(ok)/2]...), true) // torn tail
	f.Add([]byte("\n\n  \n"), true)
	f.Add([]byte("{}\n"), false)
	f.Add([]byte("not json\n"), true)
	f.Add([]byte(nil), false)

	f.Fuzz(func(t *testing.T, data []byte, final bool) {
		entries, torn, err := scanSegment(data, final)
		if err != nil {
			return // rejected input; the open fails cleanly
		}
		if torn && !final {
			t.Fatal("torn tail reported for a sealed segment")
		}
		prevEnd := int64(0)
		for i, e := range entries {
			if e.off < prevEnd || e.n <= 0 || e.off+e.n > int64(len(data)) {
				t.Fatalf("entry %d has bad bounds off=%d n=%d (len %d, prev end %d)",
					i, e.off, e.n, len(data), prevEnd)
			}
			prevEnd = e.off + e.n
			var o Outcome
			if uerr := json.Unmarshal(bytes.TrimSpace(data[e.off:e.off+e.n]), &o); uerr != nil {
				t.Fatalf("entry %d does not re-decode: %v", i, uerr)
			}
			if o.Key != e.key || o.OK() != e.ok {
				t.Fatalf("entry %d disagrees with its line: entry %+v outcome %+v", i, e, o)
			}
		}
	})
}
