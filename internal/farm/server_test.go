package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"asdsim/internal/sim"
)

// startTestServer wires a stub-backed pool into an httptest server.
func startTestServer(t *testing.T, run RunFunc) *httptest.Server {
	t.Helper()
	pool := New(Options{Workers: 4, Backoff: time.Millisecond, Run: run})
	srv := httptest.NewServer(NewServer(pool, nil).Handler())
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// Submit a matrix, poll to completion, and check status, aggregated
// gains and metrics.
func TestServerJobLifecycle(t *testing.T) {
	// NP is slower than PMS so the aggregate gain is positive and
	// deterministic: NP 2000 cycles, PS 1500, MS 1200, PMS 1000.
	cyclesByMode := map[sim.Mode]uint64{sim.NP: 2000, sim.PS: 1500, sim.MS: 1200, sim.PMS: 1000}
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		c := cyclesByMode[s.Mode]
		return sim.Result{Cycles: c, Instructions: 2 * c, IPC: 2}, nil
	})

	resp := postJSON(t, srv.URL+"/jobs", Matrix{
		Benchmarks: []string{"GemsFDTD", "milc"}, Budget: 5000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sub := decode[map[string]any](t, resp)
	id, _ := sub["id"].(string)
	if id == "" || sub["runs"].(float64) != 8 {
		t.Fatalf("submit response %v", sub)
	}

	type status struct {
		Job   jobSummary   `json:"job"`
		Gains []benchGains `json:"gains"`
		Runs  []runView    `json:"runs"`
	}
	var st status
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st = decode[status](t, r)
		if st.Job.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", st.Job)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Job.Total != 8 || st.Job.Done != 8 || st.Job.Failed != 0 {
		t.Fatalf("summary %+v", st.Job)
	}
	if len(st.Gains) != 2 {
		t.Fatalf("gains for %d benchmarks, want 2", len(st.Gains))
	}
	for _, g := range st.Gains {
		if g.PMSvsNP == nil || *g.PMSvsNP < 99 || *g.PMSvsNP > 101 {
			t.Errorf("%s PMS-vs-NP = %v, want ~100%%", g.Benchmark, g.PMSvsNP)
		}
	}
	if len(st.Runs) != 8 || st.Runs[0].Benchmark != "GemsFDTD" {
		t.Errorf("runs misshapen: %d rows", len(st.Runs))
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[Snapshot](t, mresp)
	if m.Completed != 8 || m.Workers != 4 {
		t.Errorf("metrics %+v", m)
	}

	lresp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]jobSummary](t, lresp)
	if len(list) != 1 || list[0].ID != id {
		t.Errorf("job list %+v", list)
	}
}

// Bad requests and unknown jobs get proper status codes.
func TestServerErrors(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	})

	resp := postJSON(t, srv.URL+"/jobs", Matrix{Benchmarks: []string{"no-such-bench"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// Cancelling a running job stops it without finishing the matrix.
func TestServerCancel(t *testing.T) {
	release := make(chan struct{})
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		select {
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		case <-release:
			return fakeResult(1), nil
		}
	})

	resp := postJSON(t, srv.URL+"/jobs", Matrix{Benchmarks: []string{"GemsFDTD"}})
	sub := decode[map[string]any](t, resp)
	id := sub["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sum := decode[jobSummary](t, dresp)
	if sum.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", sum.State)
	}
	close(release)

	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[map[string]any](t, r)
		job := st["job"].(map[string]any)
		if job["done"].(float64) == job["total"].(float64) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(fmt.Sprintf("cancelled job never drained: %v", job))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
