package farm

import (
	prom "asdsim/internal/metrics"
	"asdsim/internal/obs/span"
)

// ClusterSnapshot is a point-in-time view of a distributed farm: the
// coordinator's fleet and lease state plus the shared result store's
// cache behaviour. It lives in this package (not internal/cluster) so
// the Server can render it without an import cycle — cluster imports
// farm, and hands the Server a ClusterSource.
type ClusterSnapshot struct {
	Workers          int         `json:"workers"`
	TasksPending     int         `json:"tasks_pending"`
	LeasesActive     int         `json:"leases_active"`
	LeaseExpirations uint64      `json:"lease_expirations_total"`
	Steals           uint64      `json:"steals_total"`
	LateResults      uint64      `json:"late_results_total"`
	Completed        uint64      `json:"completed_total"`
	Store            *StoreStats `json:"store,omitempty"`
	// Fleet is the per-worker federation view: health plus the metrics
	// snapshot each worker last pushed with a heartbeat. Dead workers
	// are retained (Up=false) so a kill remains visible.
	Fleet []WorkerHealth `json:"fleet,omitempty"`
	// LeaseEvents is the recent lease-transition ring, oldest first.
	LeaseEvents []LeaseEvent `json:"lease_events,omitempty"`
}

// WorkerHealth is one worker node's federated state.
type WorkerHealth struct {
	ID              string        `json:"id"`
	Name            string        `json:"name"`
	Up              bool          `json:"up"`
	HeartbeatAgeSec float64       `json:"heartbeat_age_sec"`
	Leases          int           `json:"leases"`
	Pool            *Snapshot     `json:"pool,omitempty"`
	Wall            *WallSnapshot `json:"wall,omitempty"`
}

// LeaseEvent is one lease transition: grant, steal, renewal batch,
// completion, expiry, late rejection, or lease-budget failure.
type LeaseEvent struct {
	Seq    int64  `json:"seq"`
	Event  string `json:"event"`
	Key    string `json:"key"`
	Worker string `json:"worker"`
	AtUS   int64  `json:"at_us"`
}

// ClusterSource is implemented by Runners that are cluster
// coordinators; the Server uses it to light up the cluster_* metric
// families, the SSE cluster field and the dashboard panel.
type ClusterSource interface {
	ClusterSnapshot() ClusterSnapshot
}

// TraceSource is implemented by Runners that collect distributed
// spans; the Server uses it for GET /jobs/{id}?format=trace.
type TraceSource interface {
	Spans(keys []string) []span.Span
}

// clusterSnapshot returns the runner's fleet state, or nil for a plain
// in-process pool.
func (s *Server) clusterSnapshot() *ClusterSnapshot {
	if cs, ok := s.runner.(ClusterSource); ok {
		snap := cs.ClusterSnapshot()
		return &snap
	}
	return nil
}

// addClusterTo folds the fleet state into the scrape registry.
func addClusterTo(reg *prom.Registry, cs *ClusterSnapshot) {
	gauge := func(name, help string, v float64) {
		reg.Gauge(name, help).With().Set(v)
	}
	counter := func(name, help string, v float64) {
		reg.Counter(name, help).With().Add(v)
	}
	gauge("cluster_workers", "Live registered worker nodes.", float64(cs.Workers))
	gauge("cluster_tasks_pending", "Tasks awaiting a lease.", float64(cs.TasksPending))
	gauge("cluster_leases_active", "Leases currently held by workers.", float64(cs.LeasesActive))
	counter("cluster_lease_expirations_total", "Leases reclaimed after TTL or worker-liveness expiry.", float64(cs.LeaseExpirations))
	counter("cluster_steals_total", "Reclaimed tasks re-leased to a different worker.", float64(cs.Steals))
	counter("cluster_late_results_total", "Results rejected because their lease had already expired.", float64(cs.LateResults))
	counter("cluster_completed_total", "Tasks completed through the coordinator.", float64(cs.Completed))
	if st := cs.Store; st != nil {
		counter("cluster_store_cache_hits_total", "Result-store lookups served from the read-through cache.", float64(st.CacheHits))
		counter("cluster_store_cache_misses_total", "Result-store lookups that went to the index or found nothing.", float64(st.CacheMisses))
		counter("cluster_store_compactions_total", "Segment compaction cycles completed.", float64(st.Compactions))
		gauge("cluster_store_segments", "Segment files in the result store.", float64(st.Segments))
		gauge("cluster_store_entries", "Live resumable results in the store index.", float64(st.Entries))
		gauge("cluster_store_garbage_lines", "Droppable store lines awaiting compaction.", float64(st.Garbage))
	}
	addFleetTo(reg, cs.Fleet)
}

// addFleetTo renders the metrics-federation families: per-worker
// health/lease gauges and pushed counters, plus one fleet-merged run
// wall-clock histogram summed over every worker's pushed buckets.
func addFleetTo(reg *prom.Registry, fleet []WorkerHealth) {
	if len(fleet) == 0 {
		return
	}
	up := reg.Gauge("fleet_worker_up", "1 while the worker's registration is live, 0 after liveness expiry.", "worker")
	age := reg.Gauge("fleet_worker_heartbeat_age_seconds", "Seconds since the worker last renewed its liveness.", "worker")
	leases := reg.Gauge("fleet_worker_leases", "Leases the coordinator currently attributes to the worker.", "worker")
	busy := reg.Gauge("fleet_worker_busy_slots", "Busy executor slots the worker last reported.", "worker")
	completed := reg.Counter("fleet_runs_completed_total", "Runs each worker reported finishing locally.", "worker")
	failed := reg.Counter("fleet_runs_failed_total", "Runs each worker reported failing locally.", "worker")
	instr := reg.Counter("fleet_sim_instructions_total", "Simulated instructions each worker reported.", "worker")

	merged := make([]uint64, len(latencyBounds)+1)
	var mergedSum float64
	var anyWall bool
	wall := reg.Histogram("fleet_run_wall_seconds",
		"Run wall-clock duration merged across every worker's pushed histogram.",
		latencyBounds)

	for _, w := range fleet {
		label := w.Name
		if label == "" {
			label = w.ID
		}
		v := 0.0
		if w.Up {
			v = 1
		}
		up.With(label).Set(v)
		age.With(label).Set(w.HeartbeatAgeSec)
		leases.With(label).Set(float64(w.Leases))
		if w.Pool != nil {
			busy.With(label).Set(float64(w.Pool.BusyWorkers))
			completed.With(label).Add(float64(w.Pool.Completed))
			failed.With(label).Add(float64(w.Pool.Failed))
			instr.With(label).Add(float64(w.Pool.SimInstructions))
		}
		if w.Wall != nil && len(w.Wall.Counts) > 0 {
			anyWall = true
			for i, n := range w.Wall.Counts {
				if i < len(merged) {
					merged[i] += n
				}
			}
			mergedSum += w.Wall.Sum
		}
	}
	if anyWall {
		ws := wall.With()
		for i, n := range merged {
			if n > 0 {
				ws.AddBucket(i, n, 0)
			}
		}
		ws.AddBucket(len(merged), 0, mergedSum) // fold the true sum in
	}
}
