package farm

import (
	prom "asdsim/internal/metrics"
)

// ClusterSnapshot is a point-in-time view of a distributed farm: the
// coordinator's fleet and lease state plus the shared result store's
// cache behaviour. It lives in this package (not internal/cluster) so
// the Server can render it without an import cycle — cluster imports
// farm, and hands the Server a ClusterSource.
type ClusterSnapshot struct {
	Workers          int         `json:"workers"`
	TasksPending     int         `json:"tasks_pending"`
	LeasesActive     int         `json:"leases_active"`
	LeaseExpirations uint64      `json:"lease_expirations_total"`
	Steals           uint64      `json:"steals_total"`
	LateResults      uint64      `json:"late_results_total"`
	Completed        uint64      `json:"completed_total"`
	Store            *StoreStats `json:"store,omitempty"`
}

// ClusterSource is implemented by Runners that are cluster
// coordinators; the Server uses it to light up the cluster_* metric
// families, the SSE cluster field and the dashboard panel.
type ClusterSource interface {
	ClusterSnapshot() ClusterSnapshot
}

// clusterSnapshot returns the runner's fleet state, or nil for a plain
// in-process pool.
func (s *Server) clusterSnapshot() *ClusterSnapshot {
	if cs, ok := s.runner.(ClusterSource); ok {
		snap := cs.ClusterSnapshot()
		return &snap
	}
	return nil
}

// addClusterTo folds the fleet state into the scrape registry.
func addClusterTo(reg *prom.Registry, cs *ClusterSnapshot) {
	gauge := func(name, help string, v float64) {
		reg.Gauge(name, help).With().Set(v)
	}
	counter := func(name, help string, v float64) {
		reg.Counter(name, help).With().Add(v)
	}
	gauge("cluster_workers", "Live registered worker nodes.", float64(cs.Workers))
	gauge("cluster_tasks_pending", "Tasks awaiting a lease.", float64(cs.TasksPending))
	gauge("cluster_leases_active", "Leases currently held by workers.", float64(cs.LeasesActive))
	counter("cluster_lease_expirations_total", "Leases reclaimed after TTL or worker-liveness expiry.", float64(cs.LeaseExpirations))
	counter("cluster_steals_total", "Reclaimed tasks re-leased to a different worker.", float64(cs.Steals))
	counter("cluster_late_results_total", "Results rejected because their lease had already expired.", float64(cs.LateResults))
	counter("cluster_completed_total", "Tasks completed through the coordinator.", float64(cs.Completed))
	if st := cs.Store; st != nil {
		counter("cluster_store_cache_hits_total", "Result-store lookups served from the read-through cache.", float64(st.CacheHits))
		counter("cluster_store_cache_misses_total", "Result-store lookups that went to the index or found nothing.", float64(st.CacheMisses))
		counter("cluster_store_compactions_total", "Segment compaction cycles completed.", float64(st.Compactions))
		gauge("cluster_store_segments", "Segment files in the result store.", float64(st.Segments))
		gauge("cluster_store_entries", "Live resumable results in the store index.", float64(st.Entries))
		gauge("cluster_store_garbage_lines", "Droppable store lines awaiting compaction.", float64(st.Garbage))
	}
}
