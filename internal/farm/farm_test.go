package farm

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"asdsim/internal/sim"
)

// testSpec returns a valid tiny spec for the given benchmark.
func testSpec(bench string, mode sim.Mode) Spec {
	cfg := sim.Default(mode, 10_000)
	return Spec{Benchmark: bench, Mode: mode, Config: cfg}
}

// fakeResult returns a distinguishable result for stub run functions.
func fakeResult(cycles uint64) sim.Result {
	return sim.Result{Cycles: cycles, Instructions: cycles * 2}
}

// A job whose every attempt panics must be retried, then reported
// failed with the recovered stacks — without stalling the pool or
// losing the other jobs' results.
func TestPanicRecoveredRetriedThenFailed(t *testing.T) {
	pool := New(Options{
		Workers: 4,
		Backoff: time.Millisecond,
		Run: func(ctx context.Context, s Spec) (sim.Result, error) {
			if s.Benchmark == "boom" {
				panic("injected failure")
			}
			return fakeResult(100), nil
		},
	})
	defer pool.Close()

	specs := []Spec{
		testSpec("a", sim.NP), testSpec("b", sim.NP),
		{Benchmark: "boom", Mode: sim.NP, Config: sim.Default(sim.NP, 10_000), Retries: 2},
		testSpec("c", sim.NP), testSpec("d", sim.NP),
	}
	out, err := pool.RunBatch(context.Background(), specs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if specs[i].Benchmark == "boom" {
			if o.OK() {
				t.Fatal("panicking job reported success")
			}
			if o.Attempts != 3 {
				t.Errorf("attempts = %d, want 3 (1 + 2 retries)", o.Attempts)
			}
			if len(o.Panics) != 3 {
				t.Errorf("captured %d panics, want 3", len(o.Panics))
			}
			if !strings.Contains(o.Err, "injected failure") {
				t.Errorf("error %q does not name the panic", o.Err)
			}
			// The recovered stack must point at the panicking frame.
			if len(o.Panics) > 0 && !strings.Contains(o.Panics[0], "farm_test.go") {
				t.Errorf("panic record lacks a stack:\n%s", o.Panics[0])
			}
			continue
		}
		if !o.OK() {
			t.Errorf("job %s lost to a neighbour's panic: %s", specs[i].Benchmark, o.Err)
		}
	}
	m := pool.Metrics().Snapshot()
	if m.Failed != 1 || m.Completed != 4 || m.Retried != 2 {
		t.Errorf("metrics = completed %d / failed %d / retried %d, want 4/1/2",
			m.Completed, m.Failed, m.Retried)
	}
}

// A transient failure (panic on the first attempt only) must succeed on
// retry.
func TestRetrySucceedsAfterTransientPanic(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	pool := New(Options{
		Workers: 2,
		Backoff: time.Millisecond,
		Run: func(ctx context.Context, s Spec) (sim.Result, error) {
			mu.Lock()
			attempts[s.Benchmark]++
			n := attempts[s.Benchmark]
			mu.Unlock()
			if n == 1 {
				panic("flaky")
			}
			return fakeResult(42), nil
		},
	})
	defer pool.Close()

	spec := testSpec("flaky", sim.NP)
	spec.Retries = 3
	out, err := pool.RunBatch(context.Background(), []Spec{spec}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if !o.OK() {
		t.Fatalf("retry did not recover: %s", o.Err)
	}
	if o.Attempts != 2 || len(o.Panics) != 1 {
		t.Errorf("attempts=%d panics=%d, want 2 and 1", o.Attempts, len(o.Panics))
	}
}

// Cancelling the batch context must abort queued and running jobs
// without retrying them.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	pool := New(Options{
		Workers: 1,
		Backoff: time.Millisecond,
		Run: func(ctx context.Context, s Spec) (sim.Result, error) {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		},
	})
	defer pool.Close()

	go func() {
		<-started
		cancel()
	}()
	specs := make([]Spec, 4)
	for i := range specs {
		specs[i] = testSpec(string(rune('a'+i)), sim.NP)
		specs[i].Retries = 5
	}
	out, err := pool.RunBatch(ctx, specs, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	for _, o := range out {
		if o.OK() {
			t.Error("job reported success after cancellation")
		}
		if o.Attempts > 1 {
			t.Errorf("cancelled job was retried %d times", o.Attempts-1)
		}
	}
}

// A per-job timeout must bound the attempt even when the batch context
// has no deadline; with no retries left the job fails with the
// deadline error.
func TestPerJobTimeout(t *testing.T) {
	pool := New(Options{
		Workers: 2,
		Backoff: time.Millisecond,
		Run: func(ctx context.Context, s Spec) (sim.Result, error) {
			select {
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			case <-time.After(10 * time.Second):
				return fakeResult(1), nil
			}
		},
	})
	defer pool.Close()

	spec := testSpec("slow", sim.NP)
	spec.Timeout = 20 * time.Millisecond
	done := make(chan []Outcome, 1)
	go func() {
		out, _ := pool.RunBatch(context.Background(), []Spec{spec}, nil, nil)
		done <- out
	}()
	select {
	case out := <-done:
		if out[0].OK() || !strings.Contains(out[0].Err, "deadline") {
			t.Fatalf("outcome = %+v, want deadline error", out[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("per-job timeout did not fire")
	}
}

// Submitting to a closed pool fails cleanly, and RunBatch surfaces the
// error on the affected outcomes instead of hanging.
func TestSubmitAfterClose(t *testing.T) {
	pool := New(Options{Workers: 1, Run: func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	}})
	pool.Close()
	if err := pool.Submit(context.Background(), testSpec("x", sim.NP), func(Outcome) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	out, _ := pool.RunBatch(context.Background(), []Spec{testSpec("x", sim.NP)}, nil, nil)
	if out[0].OK() || !strings.Contains(out[0].Err, "closed") {
		t.Fatalf("outcome = %+v, want pool-closed error", out[0])
	}
}

// Spec keys must be stable across identical specs and distinct across
// differing ones, independent of execution policy.
func TestSpecKey(t *testing.T) {
	a := testSpec("GemsFDTD", sim.PMS)
	b := testSpec("GemsFDTD", sim.PMS)
	b.Timeout = time.Minute
	b.Retries = 7
	if a.Key() != b.Key() {
		t.Error("execution policy changed the spec key")
	}
	c := testSpec("GemsFDTD", sim.MS)
	if a.Key() == c.Key() {
		t.Error("different modes share a key")
	}
	d := testSpec("milc", sim.PMS)
	if a.Key() == d.Key() {
		t.Error("different benchmarks share a key")
	}
	e := testSpec("GemsFDTD", sim.PMS)
	e.Config.Seed = 99
	if a.Key() == e.Key() {
		t.Error("different seeds share a key")
	}
}

// DeriveSeed must be deterministic, sensitive to every input, and
// never zero.
func TestDeriveSeed(t *testing.T) {
	s1 := DeriveSeed(1, "GemsFDTD", sim.NP)
	if s1 != DeriveSeed(1, "GemsFDTD", sim.NP) {
		t.Error("DeriveSeed is not deterministic")
	}
	if s1 == DeriveSeed(2, "GemsFDTD", sim.NP) ||
		s1 == DeriveSeed(1, "milc", sim.NP) ||
		s1 == DeriveSeed(1, "GemsFDTD", sim.PMS) {
		t.Error("DeriveSeed collides across inputs")
	}
	if s1 == 0 {
		t.Error("DeriveSeed returned 0")
	}
}

// Matrix expansion: suites resolve, duplicates collapse, defaults fill
// in, and cells validate.
func TestMatrixSpecs(t *testing.T) {
	m := Matrix{Suites: []string{"commercial"}, Modes: []string{"NP", "PMS"}, Budget: 5000}
	specs, err := m.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 || len(specs)%2 != 0 {
		t.Fatalf("got %d specs, want a positive multiple of 2", len(specs))
	}
	for _, s := range specs {
		if s.Config.InstrBudget != 5000 || s.Config.Seed != 1 {
			t.Errorf("defaults not applied: %+v", s.Config)
		}
	}

	if _, err := (Matrix{Suites: []string{"nope"}}).Specs(); err == nil {
		t.Error("unknown suite accepted")
	}
	if _, err := (Matrix{Benchmarks: []string{"nope"}}).Specs(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := (Matrix{Modes: []string{"XX"}}).Specs(); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := (Matrix{Engine: "warp-drive"}).Specs(); err == nil {
		t.Error("unknown engine accepted")
	}

	dup := Matrix{Benchmarks: []string{"GemsFDTD", "GemsFDTD"}, Modes: []string{"NP"}}
	specs, err = dup.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Errorf("duplicate benchmark not collapsed: %d specs", len(specs))
	}

	derived := Matrix{Benchmarks: []string{"GemsFDTD"}, Modes: []string{"NP"}, DeriveSeeds: true}
	specs, err = derived.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Config.Seed != DeriveSeed(1, "GemsFDTD", sim.NP) {
		t.Error("DeriveSeeds did not derive the cell seed")
	}
}
