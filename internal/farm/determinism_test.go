package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"asdsim/internal/sim"
)

// A farm run of N jobs at workers=8 must produce byte-identical Result
// JSON to the same jobs at workers=1 and to direct serial sim.Run
// calls: simulations are pure functions of their spec, and the farm
// must not perturb them.
func TestParallelResultsBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var specs []Spec
	for _, bench := range []string{"GemsFDTD", "milc", "tpcc"} {
		for _, mode := range []sim.Mode{sim.NP, sim.PMS} {
			cfg := sim.Default(mode, 60_000)
			cfg.Seed = 7
			specs = append(specs, Spec{Benchmark: bench, Mode: mode, Config: cfg})
		}
	}

	// Ground truth: direct serial sim.Run calls.
	serial := make([][]byte, len(specs))
	for i, s := range specs {
		res, err := sim.Run(s.Benchmark, s.Config)
		if err != nil {
			t.Fatalf("serial %s/%v: %v", s.Benchmark, s.Mode, err)
		}
		serial[i] = mustMarshal(t, &res)
	}

	for _, workers := range []int{1, 8} {
		pool := New(Options{Workers: workers})
		out, err := pool.RunBatch(context.Background(), specs, nil, nil)
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, o := range out {
			if !o.OK() {
				t.Fatalf("workers=%d %s/%v failed: %s", workers, specs[i].Benchmark, specs[i].Mode, o.Err)
			}
			got := mustMarshal(t, o.Result)
			if !bytes.Equal(got, serial[i]) {
				t.Errorf("workers=%d %s/%v diverges from serial run:\n got %s\nwant %s",
					workers, specs[i].Benchmark, specs[i].Mode, truncate(got), truncate(serial[i]))
			}
		}
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func truncate(b []byte) string {
	if len(b) > 300 {
		return fmt.Sprintf("%s... (%d bytes)", b[:300], len(b))
	}
	return string(b)
}
