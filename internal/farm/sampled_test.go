package farm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"asdsim/internal/sim"
)

// Spec keys predating the Sample field must be unchanged: a nil Sample
// marshals to the exact byte stream the old three-field key struct
// produced, so stores written by earlier farm versions still resume.
func TestSpecKeyStableWithNilSample(t *testing.T) {
	s := testSpec("GemsFDTD", sim.PMS)
	legacy, err := json.Marshal(struct {
		Benchmark string
		Mode      sim.Mode
		Config    sim.Config
	}{s.Benchmark, s.Mode, s.Config})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(legacy)
	if want := hex.EncodeToString(sum[:]); s.Key() != want {
		t.Fatalf("nil-Sample key %s != legacy key %s; pre-sampling stores would not resume", s.Key(), want)
	}
}

// Sampling parameters are part of job identity: a sampled cell must
// never collide with its exact counterpart or with a differently
// sampled one in a results store.
func TestSpecKeySampleDistinguishes(t *testing.T) {
	exact := testSpec("GemsFDTD", sim.PMS)
	sampled := exact
	sc := sim.DefaultSampleConfig()
	sampled.Sample = &sc
	if exact.Key() == sampled.Key() {
		t.Error("sampled spec shares a key with the exact spec")
	}
	other := exact
	sc2 := sim.DefaultSampleConfig()
	sc2.Period = 150_000
	other.Sample = &sc2
	if sampled.Key() == other.Key() {
		t.Error("different sampling schedules share a key")
	}
}

// A sampled job through the pool must populate Outcome.Sampled and
// shape Outcome.Result as the estimate's AsResult projection.
func TestPoolRunsSampledJob(t *testing.T) {
	pool := New(Options{Workers: 2})
	defer pool.Close()

	sc := sim.DefaultSampleConfig()
	spec := Spec{Benchmark: "milc", Mode: sim.PMS, Config: sim.Default(sim.PMS, 500_000), Sample: &sc}
	out, err := pool.RunBatch(context.Background(), []Spec{spec}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if !o.OK() {
		t.Fatalf("sampled job failed: %+v", o)
	}
	if o.Sampled == nil {
		t.Fatal("Outcome.Sampled is nil for a sampled spec")
	}
	if o.Sampled.Windows < 2 || o.Sampled.CPIHalfWidth <= 0 {
		t.Fatalf("degenerate sampled estimate: %+v", o.Sampled)
	}
	want := o.Sampled.AsResult()
	if o.Result.Cycles != want.Cycles || o.Result.Instructions != want.Instructions || o.Result.IPC != want.IPC {
		t.Fatalf("Result %+v is not the AsResult projection %+v", o.Result, want)
	}
	// An invalid sampling schedule fails the job, not the batch.
	bad := spec
	bad.Sample = &sim.SampleConfig{Confidence: 0.5}
	out, err = pool.RunBatch(context.Background(), []Spec{bad}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].OK() || out[0].Err == "" {
		t.Fatalf("invalid sample config produced %+v, want per-job failure", out[0])
	}
}

// Sampled outcomes must be bit-identical at any worker count, exactly
// like exact ones (the determinism suite pins the latter).
func TestSampledOutcomesBitIdenticalAcrossWorkers(t *testing.T) {
	sc := sim.SampleConfig{Period: 100_000, Warmup: 5_000, Detail: 10_000, FuncWarmup: 60_000, Confidence: 0.95}
	var specs []Spec
	for _, bench := range []string{"GemsFDTD", "milc", "lbm"} {
		for _, mode := range []sim.Mode{sim.NP, sim.PMS} {
			s := Spec{Benchmark: bench, Mode: mode, Config: sim.Default(mode, 400_000), Sample: &sc}
			specs = append(specs, s)
		}
	}
	run := func(workers int) string {
		pool := New(Options{Workers: workers})
		defer pool.Close()
		out, err := pool.RunBatch(context.Background(), specs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			out[i].WallMS = 0
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if serial, wide := run(1), run(8); serial != wide {
		t.Fatalf("sampled outcomes diverge across worker counts:\n%s\n%s", serial, wide)
	}
}

// Matrix.Sample propagates to every expanded spec, and an inconsistent
// schedule is rejected at expansion time.
func TestMatrixSamplePropagation(t *testing.T) {
	sc := sim.DefaultSampleConfig()
	m := Matrix{Benchmarks: []string{"GemsFDTD", "milc"}, Modes: []string{"NP", "PMS"}, Budget: 500_000, Sample: &sc}
	specs, err := m.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d specs, want 4", len(specs))
	}
	for _, s := range specs {
		if s.Sample == nil || s.Sample.Period != sc.Period {
			t.Fatalf("spec %s/%v lost the matrix sampling schedule: %+v", s.Benchmark, s.Mode, s.Sample)
		}
	}
	m.Sample = &sim.SampleConfig{Period: 1_000, Warmup: 900, Detail: 200, Confidence: 0.95}
	if _, err := m.Specs(); err == nil {
		t.Error("matrix with warmup+detail > period accepted")
	}
}
