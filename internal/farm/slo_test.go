package farm

import (
	"strings"
	"testing"
	"time"

	prom "asdsim/internal/metrics"
)

// sloClock is a settable fake clock for SLO tests.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func renderSLO(t *testing.T, tr *SLOTracker) string {
	t.Helper()
	reg := prom.NewRegistry()
	tr.addTo(reg)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	if err := prom.Lint([]byte(out)); err != nil {
		t.Fatalf("slo exposition fails lint: %v", err)
	}
	return out
}

func TestSLOTrackerDefaults(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{}, nil)
	if tr.cfg.AvailabilityObjective != 0.999 {
		t.Fatalf("availability default = %v", tr.cfg.AvailabilityObjective)
	}
	if tr.cfg.LatencyObjective != 0.95 || tr.cfg.LatencyThresholdSec != 30 {
		t.Fatalf("latency defaults = %v within %vs", tr.cfg.LatencyObjective, tr.cfg.LatencyThresholdSec)
	}
}

func TestSLOBurnRates(t *testing.T) {
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	tr := NewSLOTracker(SLOConfig{AvailabilityObjective: 0.9, LatencyObjective: 0.5, LatencyThresholdSec: 1}, clk.now)

	// 8 good + 2 bad runs: 20% failures against a 10% budget => burn 2.0.
	// 5 of the 10 are slow (>1s): 50% against a 50% budget => burn 1.0.
	for i := 0; i < 10; i++ {
		wall := 0.5
		if i < 5 {
			wall = 2
		}
		tr.RecordRun(i >= 2, wall)
	}

	out := renderSLO(t, tr)
	for _, want := range []string{
		`farm_slo_objective{slo="availability"} 0.9`,
		`farm_slo_objective{slo="latency"} 0.5`,
		`farm_slo_availability_burn_rate{window="5m"} 2`,
		`farm_slo_availability_burn_rate{window="6h"} 2`,
		`farm_slo_latency_burn_rate{window="5m"} 1`,
		`farm_slo_error_budget_remaining{slo="availability"} -1`,
		`farm_slo_error_budget_remaining{slo="latency"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSLOWindowsAge(t *testing.T) {
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	tr := NewSLOTracker(SLOConfig{AvailabilityObjective: 0.9}, clk.now)

	tr.RecordRun(false, 0.1) // one failure now
	clk.advance(10 * time.Minute)
	tr.RecordRun(true, 0.1) // one success later

	// The failure has aged out of the 5m window but not the 30m one.
	out := renderSLO(t, tr)
	if !strings.Contains(out, `farm_slo_availability_burn_rate{window="5m"} 0`) {
		t.Fatalf("5m window should only see the success:\n%s", out)
	}
	if !strings.Contains(out, `farm_slo_availability_burn_rate{window="30m"} 5`) {
		t.Fatalf("30m window should see 1 bad of 2 => burn 5:\n%s", out)
	}

	// Push past the ring horizon: everything windowed ages out, but the
	// lifetime budget keeps the spend.
	clk.advance(7 * time.Hour)
	out = renderSLO(t, tr)
	if !strings.Contains(out, `farm_slo_availability_burn_rate{window="6h"} 0`) {
		t.Fatalf("6h window should be empty after 7h:\n%s", out)
	}
	if !strings.Contains(out, `farm_slo_error_budget_remaining{slo="availability"} -4`) {
		t.Fatalf("lifetime budget should remember the failure:\n%s", out)
	}
}

func TestSLOEmptyTrackerIsQuiet(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{}, (&sloClock{t: time.Unix(1_700_000_000, 0)}).now)
	out := renderSLO(t, tr)
	if !strings.Contains(out, `farm_slo_error_budget_remaining{slo="availability"} 1`) {
		t.Fatalf("untouched budget should be whole:\n%s", out)
	}
	for _, w := range sloWindows {
		if !strings.Contains(out, `farm_slo_availability_burn_rate{window="`+w.label+`"} 0`) {
			t.Fatalf("empty window %s should burn 0:\n%s", w.label, out)
		}
	}
}

func TestMetricsFeedsAttachedSLO(t *testing.T) {
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	m := NewMetrics()
	tr := NewSLOTracker(SLOConfig{LatencyThresholdSec: 1}, clk.now)
	m.AttachSLO(tr)

	spec := &Spec{Benchmark: "pointer-chase"}
	res := fakeResult(42)
	m.finish(spec, &Outcome{Benchmark: spec.Benchmark, WallMS: 2000, Err: "boom"})
	m.finish(spec, &Outcome{Benchmark: spec.Benchmark, WallMS: 10, Result: &res})

	tr.mu.Lock()
	total, bad, slow := tr.total, tr.bad, tr.slow
	tr.mu.Unlock()
	if total != 2 || bad != 1 || slow != 1 {
		t.Fatalf("tracker saw total=%d bad=%d slow=%d, want 2/1/1", total, bad, slow)
	}

	// The SLO families ride along on the ordinary metrics exposition.
	reg := prom.NewRegistry()
	m.AddTo(reg)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(sb.String(), "farm_slo_objective") {
		t.Fatalf("AddTo should render SLO families when attached:\n%s", sb.String())
	}
}
