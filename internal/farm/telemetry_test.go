package farm

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"asdsim/internal/metrics"
	"asdsim/internal/sim"
)

// startTelemetryServer wires a telemetry-instrumented pool (with a stub
// or real Run) into an httptest server and returns both ends.
func startTelemetryServer(t *testing.T, run RunFunc) (*httptest.Server, *Server, *Pool) {
	t.Helper()
	tel := NewTelemetry()
	pool := New(Options{Workers: 4, Backoff: time.Millisecond, Run: run, Instrument: tel.Instrument})
	api := NewServer(pool, nil)
	api.AttachTelemetry(tel)
	api.sseInterval = 20 * time.Millisecond
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})
	return srv, api, pool
}

func waitForJob(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[struct {
			Job jobSummary `json:"job"`
		}](t, r)
		if st.Job.State != "running" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}

func TestPrometheusEndpoint(t *testing.T) {
	srv, _, _ := startTelemetryServer(t, nil) // nil Run = the real simulator

	resp := postJSON(t, srv.URL+"/jobs", Matrix{Benchmarks: []string{"GemsFDTD"}, Budget: 30_000})
	id := decode[map[string]any](t, resp)["id"].(string)
	waitForJob(t, srv.URL, id)

	r, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want 0.0.4 text format", ct)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("exposition fails grammar lint: %v\npayload:\n%s", err, body)
	}

	families := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(name)[0]] = true
		}
	}
	if len(families) < 12 {
		t.Errorf("got %d metric families, want >= 12: %v", len(families), families)
	}
	for _, want := range []string{
		"farm_workers", "farm_queue_depth", "farm_runs_total",
		"farm_run_wall_seconds", "farm_instrumented_runs_total",
		"obs_prefetch_depth_events_total", "sim_ipc",
	} {
		if !families[want] {
			t.Errorf("missing family %s", want)
		}
	}
	// The labeled histogram must carry the full _bucket/_sum/_count
	// triplet with real labels (declared order: mode, engine).
	for _, want := range []string{
		`farm_run_wall_seconds_bucket{mode="NP",engine="asd",le="+Inf"}`,
		`farm_run_wall_seconds_sum{mode="NP",engine="asd"}`,
		`farm_run_wall_seconds_count{mode="NP",engine="asd"}`,
		`farm_runs_total{benchmark="GemsFDTD",mode="NP",engine="asd",status="ok"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("payload missing %q", want)
		}
	}
}

func TestSSEStreamsState(t *testing.T) {
	srv, _, _ := startTelemetryServer(t, nil)
	resp := postJSON(t, srv.URL+"/jobs", Matrix{Benchmarks: []string{"GemsFDTD"}, Modes: []string{"MS"}, Budget: 30_000})
	id := decode[map[string]any](t, resp)["id"].(string)
	waitForJob(t, srv.URL, id)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Read two full frames: the immediate one and one tick later.
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var datas []string
	for sc.Scan() && len(datas) < 2 {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") && line != "event: state" {
			t.Fatalf("unexpected event type %q", line)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			datas = append(datas, data)
		}
	}
	if len(datas) < 2 {
		t.Fatalf("got %d SSE frames, want 2 (scan err %v)", len(datas), sc.Err())
	}
	for _, want := range []string{`"snapshot"`, `"jobs"`, `"sparks"`, `"GemsFDTD/MS"`} {
		if !strings.Contains(datas[0], want) {
			t.Errorf("first frame missing %s: %.300s", want, datas[0])
		}
	}
}

func TestDashboardServed(t *testing.T) {
	srv, _, _ := startTelemetryServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return sim.Result{Cycles: 1, Instructions: 1}, nil
	})
	r, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"EventSource(\"/events\")", "fleet telemetry", "CAQ"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

func TestFlightrecEndpointServesBundles(t *testing.T) {
	srv, api, _ := startTelemetryServer(t, nil)
	// A real MS run over a modest budget reliably trips the
	// late-prefetch detector at the first SLH epoch roll.
	resp := postJSON(t, srv.URL+"/jobs", Matrix{Benchmarks: []string{"GemsFDTD"}, Modes: []string{"MS"}, Budget: 400_000})
	id := decode[map[string]any](t, resp)["id"].(string)
	waitForJob(t, srv.URL, id)

	if n := len(api.Telemetry().Anomalies()); n == 0 {
		t.Fatal("no anomalies recorded on GemsFDTD/MS")
	}
	r, err := http.Get(srv.URL + "/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	rows := decode[[]map[string]any](t, r)
	if len(rows) == 0 {
		t.Fatal("no bundles listed")
	}
	bid := rows[0]["id"].(string)

	jr, err := http.Get(srv.URL + "/flightrec/" + bid)
	if err != nil {
		t.Fatal(err)
	}
	bundle := decode[map[string]any](t, jr)
	if bundle["label"] != "GemsFDTD/MS" {
		t.Errorf("bundle label = %v", bundle["label"])
	}

	rr, err := http.Get(srv.URL + "/flightrec/" + bid + "?format=report")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	report, _ := io.ReadAll(rr.Body)
	if !strings.Contains(string(report), "flight recorder: GemsFDTD/MS") {
		t.Errorf("report missing header:\n%.400s", report)
	}

	if miss, err := http.Get(srv.URL + "/flightrec/nope"); err != nil {
		t.Fatal(err)
	} else if miss.Body.Close(); miss.StatusCode != http.StatusNotFound {
		t.Errorf("missing bundle status = %d", miss.StatusCode)
	}
}

// TestConcurrentSubmitCancelScrape hammers the server with overlapping
// submits, cancels, scrapes and SSE reads; run under -race this pins
// the locking in Telemetry, Metrics and the SSE/shutdown paths.
func TestConcurrentSubmitCancelScrape(t *testing.T) {
	srv, api, _ := startTelemetryServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		select {
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		case <-time.After(time.Millisecond):
		}
		return sim.Result{Cycles: 100, Instructions: 200, IPC: 2}, nil
	})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				resp := postJSON(t, srv.URL+"/jobs", Matrix{Benchmarks: []string{"milc"}, Budget: 1000})
				id := decode[map[string]any](t, resp)["id"].(string)
				if k%2 == 0 {
					req, _ := http.NewRequest("DELETE", srv.URL+"/jobs/"+id, nil)
					if r, err := http.DefaultClient.Do(req); err == nil {
						r.Body.Close()
					}
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if r, err := http.Get(srv.URL + "/metrics?format=prometheus"); err == nil {
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
		if r, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}()
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := api.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// After shutdown every SSE stream ends promptly.
	req, _ := http.NewRequest("GET", srv.URL+"/events", nil)
	done := make(chan struct{})
	go func() {
		if r, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after Shutdown")
	}
}

// TestInstrumentDoesNotPerturbOutcomes pins the acceptance criterion
// that telemetry attachment leaves simulated results bit-identical.
func TestInstrumentDoesNotPerturbOutcomes(t *testing.T) {
	// 400k instructions: enough for the ASD engine to finish its first
	// epoch and issue prefetches, so the depth table is non-empty.
	spec := Spec{Benchmark: "GemsFDTD", Mode: sim.MS, Config: sim.Default(sim.MS, 400_000)}

	bare := New(Options{Workers: 2})
	outs, err := bare.RunBatch(context.Background(), []Spec{spec}, nil, nil)
	bare.Close()
	if err != nil || !outs[0].OK() {
		t.Fatalf("bare run failed: %v %+v", err, outs[0])
	}

	tel := NewTelemetry()
	inst := New(Options{Workers: 2, Instrument: tel.Instrument})
	iouts, err := inst.RunBatch(context.Background(), []Spec{spec}, nil, nil)
	inst.Close()
	if err != nil || !iouts[0].OK() {
		t.Fatalf("instrumented run failed: %v %+v", err, iouts[0])
	}

	if outs[0].Result.Cycles != iouts[0].Result.Cycles ||
		outs[0].Result.Instructions != iouts[0].Result.Instructions {
		t.Errorf("telemetry perturbed the run: %d/%d cycles vs %d/%d",
			outs[0].Result.Cycles, outs[0].Result.Instructions,
			iouts[0].Result.Cycles, iouts[0].Result.Instructions)
	}
	if outs[0].Key != iouts[0].Key {
		t.Errorf("telemetry changed the spec key: %s vs %s", outs[0].Key, iouts[0].Key)
	}
	depths := tel.Depths()
	if depths.MaxDepthSeen() == 0 {
		t.Error("telemetry absorbed no depth stats")
	}
	if len(tel.Sparks()) != 1 {
		t.Errorf("sparks = %d, want 1", len(tel.Sparks()))
	}
}

// TestLatencySummaryPercentiles checks the bucketed percentile mapping.
func TestLatencySummaryPercentiles(t *testing.T) {
	m := NewMetrics()
	spec := Spec{Benchmark: "b", Mode: sim.NP}
	for _, ms := range []float64{1, 2, 3, 4, 40} {
		o := Outcome{WallMS: ms, Result: &sim.Result{Cycles: 1, Instructions: 1}}
		m.finish(&spec, &o)
	}
	p50, p95, max, n := m.LatencySummary()
	if n != 5 {
		t.Fatalf("n = %d", n)
	}
	// p50 of {1,2,3,4,40}ms is the 3rd value, 3ms, whose bucket bound
	// is 5ms; p95 needs the 40ms run, bound 50ms.
	if p50 != 0.005 {
		t.Errorf("p50 = %v, want 0.005", p50)
	}
	if p95 != 0.05 {
		t.Errorf("p95 = %v, want 0.05 (40ms bucket)", p95)
	}
	if max < 0.039 || max > 0.041 {
		t.Errorf("max = %v, want 0.04", max)
	}
}
