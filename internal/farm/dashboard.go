package farm

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the single-file live dashboard: it subscribes to
// /events with EventSource and renders worker utilization, queue depth,
// the per-job gain table, CAQ-occupancy sparklines and the anomaly
// feed. Embedded so `asdfarm serve` stays a single static binary.
//
//go:embed dashboard.html
var dashboardHTML []byte

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}
