// Package farm is the batch simulation engine: it fans independent
// sim runs out across a bounded worker pool with per-job deadlines and
// cancellation, panic recovery, bounded retry with backoff, JSONL
// result persistence with resume-from-partial-results, and live
// throughput metrics. Because every simulation is a pure function of
// its Spec, a farm run at any worker count is bit-identical to the
// same jobs run serially. cmd/asdfarm exposes the farm as a CLI and an
// HTTP daemon; cmd/figures drives it to regenerate the paper's
// evaluation in parallel.
package farm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"asdsim/internal/obs"
	"asdsim/internal/obs/prov"
	"asdsim/internal/sim"
	"asdsim/internal/workload"
)

// Spec describes one simulation job: a benchmark run under a full
// system configuration, plus the farm's execution policy for it.
type Spec struct {
	Benchmark string     `json:"benchmark"`
	Mode      sim.Mode   `json:"mode"`
	Config    sim.Config `json:"config"`

	// Sample, when non-nil, runs the job under SMARTS-style sampled
	// simulation instead of an exact run: the outcome carries the CPI
	// confidence interval in Sampled, and Result holds the extrapolated
	// estimate (sim.SampledResult.AsResult).
	Sample *sim.SampleConfig `json:"sample,omitempty"`

	// Timeout bounds one attempt's wall-clock time; zero means none.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Retries is how many times a failed attempt is retried before the
	// job is reported failed.
	Retries int `json:"retries,omitempty"`
}

// Key returns the spec's stable identity: a SHA-256 over the benchmark,
// mode, full configuration and sampling parameters (nil Sample is
// omitted, so exact-run keys are unchanged from before sampling
// existed). Execution policy (Timeout, Retries) does not affect
// identity, so a resumed run may change it freely.
func (s Spec) Key() string {
	b, err := json.Marshal(struct {
		Benchmark string
		Mode      sim.Mode
		Config    sim.Config
		Sample    *sim.SampleConfig `json:",omitempty"`
	}{s.Benchmark, s.Mode, s.Config, s.Sample})
	if err != nil {
		// Config is a tree of plain exported value fields; this cannot
		// fail for any constructible Spec.
		panic(fmt.Sprintf("farm: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Outcome is the terminal state of one job.
type Outcome struct {
	Key       string      `json:"key"`
	Benchmark string      `json:"benchmark"`
	Mode      sim.Mode    `json:"mode"`
	Engine    string      `json:"engine,omitempty"`
	Seed      uint64      `json:"seed"`
	Result    *sim.Result `json:"result,omitempty"`
	// Sampled carries the CPI confidence interval of a sampled job
	// (Spec.Sample != nil); Result then holds its extrapolated estimate.
	Sampled *sim.SampledResult `json:"sampled,omitempty"`
	Err     string             `json:"error,omitempty"`
	// Panics holds the recovered value and stack of every attempt that
	// panicked, for post-mortem without a crashed batch.
	Panics   []string `json:"panics,omitempty"`
	Attempts int      `json:"attempts"`
	WallMS   float64  `json:"wall_ms"`
	// Resumed marks an outcome served from a Store instead of run.
	Resumed bool `json:"resumed,omitempty"`
}

// OK reports whether the job produced a result.
func (o *Outcome) OK() bool { return o.Err == "" && o.Result != nil }

// RunFunc executes one job attempt. The default runs the simulator;
// tests substitute their own.
type RunFunc func(ctx context.Context, spec Spec) (sim.Result, error)

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrent jobs; defaults to GOMAXPROCS.
	Workers int
	// Backoff is the first retry's delay, doubled per subsequent retry
	// and capped at 32x; defaults to 50ms.
	Backoff time.Duration
	// Run overrides the job body (tests); the default runs the
	// simulator through the pool's shared-trace sim.Batch, so jobs of
	// the same (benchmark, seed, threads, budget) materialize their
	// workload trace once per pool instead of once per job.
	Run RunFunc
	// NoSharedTraces reverts the default Run to per-job sim.RunContext
	// (live generators, no trace cache). Outcomes are bit-identical
	// either way; this only trades memory for trace regeneration.
	NoSharedTraces bool
	// Metrics receives the pool's counters; one is created if nil.
	Metrics *Metrics
	// Instrument, when set, is invoked before every attempt. The
	// returned bus (which may be nil) is attached as the attempt's
	// observability sink, and finish — if non-nil — is called when the
	// attempt ends, with its result (zero on failure) and error.
	// Attaching observers never changes simulated outcomes (the obs
	// perturbation tests pin this), so instrumented farms stay
	// bit-identical to bare ones.
	Instrument func(spec Spec) (bus *obs.Bus, finish func(res *sim.Result, err error))
	// Provenance, when set, is invoked before every attempt alongside
	// Instrument. The returned recorder (which may be nil) is attached
	// as the attempt's prefetch-provenance recorder, and finish — if
	// non-nil — is called when the attempt ends. Like Instrument, the
	// recorder never changes simulated outcomes (the provenance
	// perturbation tests pin this).
	Provenance func(spec Spec) (rec *prov.Recorder, finish func(res *sim.Result, err error))
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("farm: pool closed")

// Pool is a bounded worker pool executing simulation jobs. It is safe
// for concurrent use; batches from multiple goroutines interleave on
// the same workers.
type Pool struct {
	opts    Options
	metrics *Metrics
	// batch is the pool's shared-trace runner (nil under
	// Options.NoSharedTraces); the default Run and all sampled jobs go
	// through it.
	batch *sim.Batch

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*task
	closed bool
	wg     sync.WaitGroup
}

// task is one queued job and its completion callback.
type task struct {
	ctx  context.Context
	spec Spec
	done func(Outcome)
}

// New starts a pool with opts.Workers workers.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	var batch *sim.Batch
	if !opts.NoSharedTraces {
		batch = sim.NewBatch()
	}
	if opts.Run == nil {
		if batch != nil {
			opts.Run = func(ctx context.Context, s Spec) (sim.Result, error) {
				return batch.RunContext(ctx, s.Benchmark, s.Config)
			}
		} else {
			opts.Run = func(ctx context.Context, s Spec) (sim.Result, error) {
				return sim.RunContext(ctx, s.Benchmark, s.Config)
			}
		}
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics()
	}
	opts.Metrics.setWorkers(opts.Workers)
	p := &Pool{opts: opts, metrics: opts.Metrics, batch: batch}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.opts.Workers }

// TraceCacheStats reports the pool's shared-trace cache effectiveness:
// traces generated (Misses) and jobs that reused one (Hits). Zero under
// Options.NoSharedTraces.
func (p *Pool) TraceCacheStats() workload.TraceCacheStats {
	if p.batch == nil {
		return workload.TraceCacheStats{}
	}
	return p.batch.CacheStats()
}

// Metrics returns the pool's live counters.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// Close stops accepting jobs, lets queued work drain, and waits for the
// workers to exit. Cancel submitted contexts first for a fast stop.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Submit enqueues one job; done (required) is called with the outcome
// from a worker goroutine. The queue is unbounded: Submit never blocks
// on busy workers.
func (p *Pool) Submit(ctx context.Context, spec Spec, done func(Outcome)) error {
	if done == nil {
		return errors.New("farm: Submit needs a done callback")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.queue = append(p.queue, &task{ctx: ctx, spec: spec, done: done})
	p.mu.Unlock()
	p.metrics.submitted.Add(1)
	p.metrics.queued.Add(1)
	p.cond.Signal()
	return nil
}

// worker pulls tasks until the pool closes and the queue drains.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		p.metrics.queued.Add(-1)
		t.done(p.runJob(t.ctx, t.spec))
	}
}

// runJob executes one job to its terminal outcome: attempt, recover
// panics, retry with exponential backoff up to spec.Retries, respect
// per-attempt timeouts and batch cancellation.
func (p *Pool) runJob(ctx context.Context, spec Spec) Outcome {
	start := time.Now()
	o := Outcome{Key: spec.Key(), Benchmark: spec.Benchmark, Mode: spec.Mode,
		Engine: spec.Config.Engine.String(), Seed: spec.Config.Seed}
	p.metrics.busy.Add(1)
	for attempt := 0; ; attempt++ {
		o.Attempts = attempt + 1
		res, err := p.attempt(ctx, spec, &o)
		if err == nil {
			o.Result = &res
			o.Err = ""
			break
		}
		o.Err = err.Error()
		// The batch being cancelled is not a job failure to retry, and
		// retrying past the budget is pointless.
		if ctx.Err() != nil || attempt >= spec.Retries {
			break
		}
		p.metrics.retried.Add(1)
		backoff := p.opts.Backoff << uint(min(attempt, 5))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
		}
	}
	o.WallMS = float64(time.Since(start).Microseconds()) / 1000
	p.metrics.busy.Add(-1)
	p.metrics.finish(&spec, &o)
	return o
}

// attempt runs the job body once, converting a panic into an error with
// the recovered stack preserved on the outcome.
func (p *Pool) attempt(ctx context.Context, spec Spec, o *Outcome) (res sim.Result, err error) {
	actx := ctx
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	if p.opts.Instrument != nil {
		bus, fin := p.opts.Instrument(spec)
		spec.Config.Obs = bus
		if fin != nil {
			// Registered before the recover defer so it runs after the
			// panic (if any) has been converted into err.
			defer func() { fin(&res, err) }()
		}
	}
	if p.opts.Provenance != nil {
		rec, fin := p.opts.Provenance(spec)
		spec.Config.Prov = rec
		if fin != nil {
			defer func() { fin(&res, err) }()
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			o.Panics = append(o.Panics, fmt.Sprintf("%v\n%s", rec, debug.Stack()))
			err = fmt.Errorf("farm: job %s/%v panicked: %v", spec.Benchmark, spec.Mode, rec)
		}
	}()
	if spec.Sample != nil {
		sres, serr := p.runSampled(actx, spec)
		if serr != nil {
			return sim.Result{}, serr
		}
		o.Sampled = &sres
		return sres.AsResult(), nil
	}
	return p.opts.Run(actx, spec)
}

// runSampled executes one sampled attempt, through the pool's
// shared-trace batch when it has one.
func (p *Pool) runSampled(ctx context.Context, spec Spec) (sim.SampledResult, error) {
	if p.batch != nil {
		return p.batch.RunSampled(ctx, spec.Benchmark, spec.Config, *spec.Sample)
	}
	return sim.SampledContext(ctx, spec.Benchmark, spec.Config, *spec.Sample)
}

// RunBatch submits every spec, waits for all of them, and returns
// outcomes in spec order — deterministic output regardless of worker
// count or completion order. A non-nil store serves previously
// persisted successes (resume) and receives every fresh outcome; a
// non-nil onDone observes completions as they happen (serialized). The
// returned error is ctx.Err() after cancellation or the first store
// write failure; per-job failures live in the outcomes.
func (p *Pool) RunBatch(ctx context.Context, specs []Spec, store *Store, onDone func(Outcome)) ([]Outcome, error) {
	out := make([]Outcome, len(specs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // serializes store writes, onDone, firstErr
		firstErr error
	)
	note := func(o Outcome, fresh bool) {
		mu.Lock()
		defer mu.Unlock()
		if fresh && store != nil {
			if err := store.Append(o); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if onDone != nil {
			onDone(o)
		}
	}
	for i, s := range specs {
		if store != nil {
			if prev, ok := store.Lookup(s.Key()); ok {
				prev.Resumed = true
				out[i] = prev
				p.metrics.resumed.Add(1)
				note(prev, false)
				continue
			}
		}
		i := i
		wg.Add(1)
		err := p.Submit(ctx, s, func(o Outcome) {
			out[i] = o
			note(o, true)
			wg.Done()
		})
		if err != nil {
			out[i] = Outcome{Key: s.Key(), Benchmark: s.Benchmark, Mode: s.Mode,
				Engine: s.Config.Engine.String(), Seed: s.Config.Seed, Err: err.Error(), Attempts: 0}
			wg.Done()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, firstErr
}
