package farm

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"asdsim/internal/obs/prov"
	"asdsim/internal/sim"
)

// TestProvenanceDoesNotPerturbOutcomes pins the acceptance criterion
// that attaching the provenance recorder leaves simulated outcomes
// bit-identical — cycles, instructions and spec key — across all four
// paper modes, while still saving a sidecar stream per run.
func TestProvenanceDoesNotPerturbOutcomes(t *testing.T) {
	modes := []sim.Mode{sim.NP, sim.PS, sim.MS, sim.PMS}
	specs := make([]Spec, 0, len(modes))
	for _, m := range modes {
		// 400k instructions: past the first SLH epoch, so MS/PMS record
		// full decision lineages.
		specs = append(specs, Spec{Benchmark: "GemsFDTD", Mode: m, Config: sim.Default(m, 400_000)})
	}

	bare := New(Options{Workers: 2})
	outs, err := bare.RunBatch(context.Background(), specs, nil, nil)
	bare.Close()
	if err != nil {
		t.Fatalf("bare batch: %v", err)
	}

	store, err := prov.OpenStore(t.TempDir() + "/prov")
	if err != nil {
		t.Fatal(err)
	}
	col := NewProvenance(store, 0)
	rec := New(Options{Workers: 2, Provenance: col.Attach})
	pouts, err := rec.RunBatch(context.Background(), specs, nil, nil)
	rec.Close()
	if err != nil {
		t.Fatalf("recorded batch: %v", err)
	}

	for i := range outs {
		if !outs[i].OK() || !pouts[i].OK() {
			t.Fatalf("mode %s: run failed: %+v / %+v", modes[i], outs[i], pouts[i])
		}
		if outs[i].Result.Cycles != pouts[i].Result.Cycles ||
			outs[i].Result.Instructions != pouts[i].Result.Instructions {
			t.Errorf("mode %s: provenance perturbed the run: %d/%d vs %d/%d",
				modes[i], outs[i].Result.Cycles, outs[i].Result.Instructions,
				pouts[i].Result.Cycles, pouts[i].Result.Instructions)
		}
		if outs[i].Key != pouts[i].Key {
			t.Errorf("mode %s: provenance changed the spec key: %s vs %s",
				modes[i], outs[i].Key, pouts[i].Key)
		}
	}

	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(specs) {
		t.Errorf("sidecars saved = %d, want %d", len(keys), len(specs))
	}
	tls := col.Timelines()
	if len(tls) != len(specs) {
		t.Fatalf("timelines = %d, want %d", len(tls), len(specs))
	}
	issued := false
	for _, tl := range tls {
		for _, pt := range tl.Points {
			if pt.Issues > 0 {
				issued = true
			}
		}
	}
	if !issued {
		t.Error("no timeline recorded any issued prefetch (MS/PMS should)")
	}
}

// TestExplainAndDiffEndpoints runs two modes to divergence and checks
// the HTTP query surface over their stored streams.
func TestExplainAndDiffEndpoints(t *testing.T) {
	store, err := prov.OpenStore(t.TempDir() + "/prov")
	if err != nil {
		t.Fatal(err)
	}
	col := NewProvenance(store, 0)
	pool := New(Options{Workers: 2, Provenance: col.Attach})
	specs := []Spec{
		{Benchmark: "GemsFDTD", Mode: sim.MS, Config: sim.Default(sim.MS, 400_000)},
		{Benchmark: "GemsFDTD", Mode: sim.PMS, Config: sim.Default(sim.PMS, 400_000)},
	}
	outs, err := pool.RunBatch(context.Background(), specs, nil, nil)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	defer pool.Close()

	api := NewServer(pool, nil)
	api.AttachProvenance(col)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/explain/" + outs[0].Key)
	if code != http.StatusOK || !strings.Contains(body, "lineage for line") {
		t.Errorf("/explain = %d:\n%s", code, body)
	}
	code, body = get("/diff/" + outs[0].Key + "/" + outs[1].Key)
	if code != http.StatusOK ||
		!strings.Contains(body, "first diverging SLH epoch:") ||
		!strings.Contains(body, "per-stream-length deltas (B - A):") {
		t.Errorf("/diff = %d:\n%s", code, body)
	}
	if code, _ := get("/explain/deadbeef"); code != http.StatusNotFound {
		t.Errorf("/explain of an unknown key = %d, want 404", code)
	}
	// Unique key prefixes resolve like the CLI's (the two stored keys
	// are SHA-256 outputs, so an 8-char prefix is unambiguous here).
	code, body = get("/explain/" + outs[0].Key[:8])
	if code != http.StatusOK || !strings.Contains(body, "lineage for line") {
		t.Errorf("/explain by prefix = %d:\n%s", code, body)
	}
}
