package farm

import (
	"sort"

	prom "asdsim/internal/metrics"
	"asdsim/internal/workload"
)

// This file adapts the farm's live state into Prometheus metric
// families. The exposition is collect-on-scrape: every request builds
// a fresh registry from the atomic counters and the labeled cell map,
// so there is no second bookkeeping path that could drift from the
// JSON /metrics view.

// AddTo folds the pool counters, the per-cell labeled run series and
// the wall-clock latency histograms into reg.
func (m *Metrics) AddTo(reg *prom.Registry) {
	s := m.Snapshot()
	gauge := func(name, help string, v float64) {
		reg.Gauge(name, help).With().Set(v)
	}
	counter := func(name, help string, v float64) {
		reg.Counter(name, help).With().Add(v)
	}
	gauge("farm_workers", "Size of the simulation worker pool.", float64(s.Workers))
	gauge("farm_busy_workers", "Workers currently executing a run.", float64(s.BusyWorkers))
	gauge("farm_worker_utilization", "Busy workers as a fraction of the pool.", s.WorkerUtilization)
	gauge("farm_queue_depth", "Runs queued and not yet started.", float64(s.QueueDepth))
	gauge("farm_uptime_seconds", "Seconds since the pool was created.", s.UptimeSec)
	counter("farm_runs_submitted_total", "Runs submitted to the pool.", float64(s.Submitted))
	counter("farm_runs_completed_total", "Runs finished successfully.", float64(s.Completed))
	counter("farm_runs_failed_total", "Runs that exhausted their retries.", float64(s.Failed))
	counter("farm_runs_retried_total", "Individual attempt retries.", float64(s.Retried))
	counter("farm_runs_resumed_total", "Runs served from the JSONL store.", float64(s.Resumed))
	counter("farm_sim_instructions_total", "Simulated instructions aggregated over completed runs.", float64(s.SimInstructions))
	counter("farm_sim_cycles_total", "Simulated CPU cycles aggregated over completed runs.", float64(s.SimCycles))

	if t := m.slo.Load(); t != nil {
		t.addTo(reg)
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	keys := make([]cellKey, 0, len(m.cells))
	for k := range m.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].bench != keys[b].bench {
			return keys[a].bench < keys[b].bench
		}
		if keys[a].mode != keys[b].mode {
			return keys[a].mode < keys[b].mode
		}
		return keys[a].engine < keys[b].engine
	})

	runs := reg.Counter("farm_runs_total",
		"Terminal run outcomes by benchmark, mode, engine and status.",
		"benchmark", "mode", "engine", "status")
	wall := reg.Histogram("farm_run_wall_seconds",
		"Run wall-clock duration by mode and engine.",
		latencyBounds, "mode", "engine")
	simLabels := []string{"benchmark", "mode", "engine"}
	for _, k := range keys {
		c := m.cells[k]
		mode, engine := k.mode.String(), k.engine.String()
		if c.completed > 0 {
			runs.With(k.bench, mode, engine, "ok").Add(float64(c.completed))
		}
		if c.failed > 0 {
			runs.With(k.bench, mode, engine, "failed").Add(float64(c.failed))
		}
		// Replay the cell's pre-bucketed latency counts; the recorded
		// sum preserves _sum exactly even though raw values are gone.
		ws := wall.With(mode, engine)
		total := c.wall.Total()
		for v := 1; v <= c.wall.Buckets(); v++ {
			if n := c.wall.Count(v); n > 0 {
				ws.AddBucket(v-1, n, 0)
			}
		}
		if total > 0 {
			ws.AddBucket(c.wall.Buckets(), 0, c.wallSum) // fold the true sum in
		}
		if c.last != nil {
			prom.AddResult(reg, c.last, simLabels, []string{k.bench, mode, engine})
		}
	}
}

// sortedJobIDs returns the server's job IDs in creation order (the
// numeric suffix orders them; lexicographic sort is wrong past job-9).
func (s *Server) sortedJobIDs() []string {
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if len(ids[a]) != len(ids[b]) {
			return len(ids[a]) < len(ids[b])
		}
		return ids[a] < ids[b]
	})
	return ids
}

// addJobsTo folds per-job progress gauges into reg.
func (s *Server) addJobsTo(reg *prom.Registry) {
	s.mu.Lock()
	ids := s.sortedJobIDs()
	sums := make([]jobSummary, 0, len(ids))
	for _, id := range ids {
		sums = append(sums, s.jobs[id].summary())
	}
	s.mu.Unlock()

	if len(sums) == 0 {
		return
	}
	jr := reg.Gauge("farm_job_runs",
		"Per-job run counts by state (total, done, failed, resumed).",
		"job", "state")
	el := reg.Gauge("farm_job_elapsed_seconds", "Per-job elapsed wall-clock.", "job")
	for _, sum := range sums {
		jr.With(sum.ID, "total").Set(float64(sum.Total))
		jr.With(sum.ID, "done").Set(float64(sum.Done))
		jr.With(sum.ID, "failed").Set(float64(sum.Failed))
		jr.With(sum.ID, "resumed").Set(float64(sum.Resumed))
		el.With(sum.ID).Set(sum.ElapsedSec)
	}
}

// buildRegistry assembles the full scrape payload: pool counters,
// labeled run series, per-job progress, the cluster fleet state when
// the runner is a coordinator, and — when telemetry is attached — the
// aggregated per-depth prefetch table.
func (s *Server) buildRegistry() *prom.Registry {
	reg := prom.NewRegistry()
	s.runner.Metrics().AddTo(reg)
	s.addJobsTo(reg)
	if cs := s.clusterSnapshot(); cs != nil {
		addClusterTo(reg, cs)
	}
	if s.telemetry != nil {
		s.telemetry.addTo(reg)
	}
	if s.provenance != nil {
		s.provenance.addTo(reg)
	}
	if tc, ok := s.runner.(traceCacheSource); ok {
		addTraceCacheTo(reg, tc.TraceCacheStats())
	}
	return reg
}

// addTraceCacheTo folds the shared-trace cache's effectiveness and
// residency into reg.
func addTraceCacheTo(reg *prom.Registry, st workload.TraceCacheStats) {
	reg.Counter("farm_trace_cache_hits_total",
		"Jobs served a memoized workload trace.").With().Add(float64(st.Hits))
	reg.Counter("farm_trace_cache_misses_total",
		"Jobs that had to materialize a workload trace.").With().Add(float64(st.Misses))
	reg.Counter("farm_trace_cache_evictions_total",
		"Materialized traces dropped by the LRU byte budget.").With().Add(float64(st.Evictions))
	reg.Gauge("farm_trace_cache_entries",
		"Materialized traces currently resident.").With().Set(float64(st.Entries))
	reg.Gauge("farm_trace_cache_bytes",
		"Bytes of materialized trace currently resident.").With().Set(float64(st.Bytes))
}
