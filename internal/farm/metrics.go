package farm

import (
	"sync/atomic"
	"time"
)

// Metrics holds the farm's live counters. All fields are updated
// atomically; a Metrics may be shared between a Pool and an HTTP
// /metrics endpoint without locking.
type Metrics struct {
	workers atomic.Int64
	start   atomic.Int64 // UnixNano of pool creation

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	retried   atomic.Uint64
	resumed   atomic.Uint64

	busy   atomic.Int64
	queued atomic.Int64

	// Aggregate simulated work, for cycles/sec-style throughput.
	simInstructions atomic.Uint64
	simCycles       atomic.Uint64
}

// NewMetrics returns a zeroed metrics block stamped with the current
// time.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.start.Store(time.Now().UnixNano())
	return m
}

func (m *Metrics) setWorkers(n int) { m.workers.Store(int64(n)) }

// finish records one terminal outcome.
func (m *Metrics) finish(o *Outcome) {
	if o.OK() {
		m.completed.Add(1)
		m.simInstructions.Add(o.Result.Instructions)
		m.simCycles.Add(o.Result.Cycles)
	} else {
		m.failed.Add(1)
	}
}

// Snapshot is a point-in-time view of the farm, shaped for JSON.
type Snapshot struct {
	Workers           int     `json:"workers"`
	BusyWorkers       int     `json:"busy_workers"`
	WorkerUtilization float64 `json:"worker_utilization"`
	QueueDepth        int     `json:"queue_depth"`
	Submitted         uint64  `json:"submitted"`
	Completed         uint64  `json:"completed"`
	Failed            uint64  `json:"failed"`
	Retried           uint64  `json:"retried"`
	Resumed           uint64  `json:"resumed"`
	UptimeSec         float64 `json:"uptime_sec"`
	RunsPerSec        float64 `json:"runs_per_sec"`
	SimInstructions   uint64  `json:"sim_instructions"`
	SimCycles         uint64  `json:"sim_cycles"`
	SimInstrPerSec    float64 `json:"sim_instr_per_sec"`
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Workers:         int(m.workers.Load()),
		BusyWorkers:     int(m.busy.Load()),
		QueueDepth:      int(m.queued.Load()),
		Submitted:       m.submitted.Load(),
		Completed:       m.completed.Load(),
		Failed:          m.failed.Load(),
		Retried:         m.retried.Load(),
		Resumed:         m.resumed.Load(),
		SimInstructions: m.simInstructions.Load(),
		SimCycles:       m.simCycles.Load(),
	}
	if s.Workers > 0 {
		s.WorkerUtilization = float64(s.BusyWorkers) / float64(s.Workers)
	}
	elapsed := time.Since(time.Unix(0, m.start.Load())).Seconds()
	if elapsed > 0 {
		s.UptimeSec = elapsed
		s.RunsPerSec = float64(s.Completed) / elapsed
		s.SimInstrPerSec = float64(s.SimInstructions) / elapsed
	}
	return s
}
