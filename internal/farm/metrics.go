package farm

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"asdsim/internal/sim"
	"asdsim/internal/stats"
)

// latencyBounds are the per-run wall-clock histogram's bucket upper
// bounds in seconds (roughly log-spaced 1ms..5m); runs slower than the
// last bound land in the open +Inf bucket. The same bounds back both
// the Prometheus exposition and the CLI's percentile summary.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// latencyBucket maps a duration in seconds to its stats.Histogram
// value: 1..len(latencyBounds) for the bounded buckets, +1 for +Inf.
func latencyBucket(sec float64) int {
	for i, b := range latencyBounds {
		if sec <= b {
			return i + 1
		}
	}
	return len(latencyBounds) + 1
}

// cellKey identifies one (benchmark, mode, engine) slice of the farm's
// run traffic — the label tuple of the Prometheus per-run series.
type cellKey struct {
	bench  string
	mode   sim.Mode
	engine sim.EngineKind
}

// cellStats aggregates one cell's outcomes.
type cellStats struct {
	completed uint64
	failed    uint64
	wall      *stats.Histogram // latencyBucket values
	wallSum   float64
	// last is the most recent successful result, the source for the
	// sim_* gauge families.
	last *sim.Result
}

// Metrics holds the farm's live counters. The flat fields are updated
// atomically; the labeled per-cell map and the latency histogram are
// guarded by mu. A Metrics may be shared between a Pool and an HTTP
// /metrics endpoint.
type Metrics struct {
	workers atomic.Int64
	start   atomic.Int64 // UnixNano of pool creation

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	retried   atomic.Uint64
	resumed   atomic.Uint64

	busy   atomic.Int64
	queued atomic.Int64

	// Aggregate simulated work, for cycles/sec-style throughput.
	simInstructions atomic.Uint64
	simCycles       atomic.Uint64

	// slo, when attached, receives every terminal outcome for
	// burn-rate accounting; nil means the SLO families stay dark.
	slo atomic.Pointer[SLOTracker]

	mu      sync.Mutex
	cells   map[cellKey]*cellStats
	wall    *stats.Histogram // all runs
	wallSum float64
	wallMax float64
}

// AttachSLO starts feeding terminal outcomes into t and renders its
// burn-rate families on scrape. Safe to call at any point; nil
// detaches.
func (m *Metrics) AttachSLO(t *SLOTracker) { m.slo.Store(t) }

// SLO returns the attached tracker, or nil.
func (m *Metrics) SLO() *SLOTracker { return m.slo.Load() }

// NewMetrics returns a zeroed metrics block stamped with the current
// time.
func NewMetrics() *Metrics {
	m := &Metrics{
		cells: make(map[cellKey]*cellStats),
		wall:  stats.NewHistogram(len(latencyBounds) + 1),
	}
	m.start.Store(time.Now().UnixNano())
	return m
}

func (m *Metrics) setWorkers(n int) { m.workers.Store(int64(n)) }

// The exported recorders below let an out-of-package Runner — the
// cluster coordinator — feed the same counters the in-process Pool
// feeds, so /metrics and the dashboard read identically whichever
// engine executes a batch.

// SetWorkers records the fleet's current executor count.
func (m *Metrics) SetWorkers(n int) { m.setWorkers(n) }

// SetQueued records the current depth of not-yet-leased work.
func (m *Metrics) SetQueued(n int) { m.queued.Store(int64(n)) }

// SetBusy records how many jobs are currently leased out.
func (m *Metrics) SetBusy(n int) { m.busy.Store(int64(n)) }

// RecordSubmitted counts n newly accepted jobs.
func (m *Metrics) RecordSubmitted(n int) { m.submitted.Add(uint64(n)) }

// RecordResumed counts n jobs served from a Store instead of run.
func (m *Metrics) RecordResumed(n int) { m.resumed.Add(uint64(n)) }

// RecordOutcome records one terminal outcome under its spec's cell.
func (m *Metrics) RecordOutcome(spec *Spec, o *Outcome) { m.finish(spec, o) }

// finish records one terminal outcome under its spec's label cell.
func (m *Metrics) finish(spec *Spec, o *Outcome) {
	if o.OK() {
		m.completed.Add(1)
		m.simInstructions.Add(o.Result.Instructions)
		m.simCycles.Add(o.Result.Cycles)
	} else {
		m.failed.Add(1)
	}
	sec := o.WallMS / 1e3
	if t := m.slo.Load(); t != nil {
		t.RecordRun(o.OK(), sec)
	}
	key := cellKey{bench: spec.Benchmark, mode: spec.Mode, engine: spec.Config.Engine}

	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.cells[key]
	if c == nil {
		c = &cellStats{wall: stats.NewHistogram(len(latencyBounds) + 1)}
		m.cells[key] = c
	}
	if o.OK() {
		c.completed++
		c.last = o.Result
	} else {
		c.failed++
	}
	c.wall.Observe(latencyBucket(sec))
	c.wallSum += sec
	m.wall.Observe(latencyBucket(sec))
	m.wallSum += sec
	if sec > m.wallMax {
		m.wallMax = sec
	}
}

// LatencySummary returns the run wall-clock distribution so far: the
// conservative p50 and p95 upper bounds (seconds; +Inf when the
// quantile falls in the open bucket), the exact maximum, and the run
// count.
func (m *Metrics) LatencySummary() (p50, p95, max float64, n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n = m.wall.Total()
	if n == 0 {
		return 0, 0, 0, 0
	}
	bound := func(q float64) float64 {
		v := m.wall.Quantile(q)
		if v >= 1 && v <= len(latencyBounds) {
			return latencyBounds[v-1]
		}
		return math.Inf(1)
	}
	return bound(0.5), bound(0.95), m.wallMax, n
}

// WallSnapshot is the run wall-clock histogram in transportable form:
// per-bucket counts over latencyBounds (the final slot is the open
// +Inf bucket) plus the exact sum and maximum. Workers ship it with
// heartbeats so the coordinator can merge fleet-level latency.
type WallSnapshot struct {
	Counts []uint64 `json:"counts,omitempty"`
	Sum    float64  `json:"sum"`
	Max    float64  `json:"max"`
}

// Total returns the number of observations in the snapshot.
func (w WallSnapshot) Total() uint64 {
	var n uint64
	for _, c := range w.Counts {
		n += c
	}
	return n
}

// Wall exports the current wall-clock histogram.
func (m *Metrics) Wall() WallSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws := WallSnapshot{Sum: m.wallSum, Max: m.wallMax}
	if m.wall.Total() > 0 {
		ws.Counts = make([]uint64, m.wall.Buckets())
		for v := 1; v <= m.wall.Buckets(); v++ {
			ws.Counts[v-1] = m.wall.Count(v)
		}
	}
	return ws
}

// Snapshot is a point-in-time view of the farm, shaped for JSON.
type Snapshot struct {
	Workers           int     `json:"workers"`
	BusyWorkers       int     `json:"busy_workers"`
	WorkerUtilization float64 `json:"worker_utilization"`
	QueueDepth        int     `json:"queue_depth"`
	Submitted         uint64  `json:"submitted"`
	Completed         uint64  `json:"completed"`
	Failed            uint64  `json:"failed"`
	Retried           uint64  `json:"retried"`
	Resumed           uint64  `json:"resumed"`
	UptimeSec         float64 `json:"uptime_sec"`
	RunsPerSec        float64 `json:"runs_per_sec"`
	SimInstructions   uint64  `json:"sim_instructions"`
	SimCycles         uint64  `json:"sim_cycles"`
	SimInstrPerSec    float64 `json:"sim_instr_per_sec"`
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Workers:         int(m.workers.Load()),
		BusyWorkers:     int(m.busy.Load()),
		QueueDepth:      int(m.queued.Load()),
		Submitted:       m.submitted.Load(),
		Completed:       m.completed.Load(),
		Failed:          m.failed.Load(),
		Retried:         m.retried.Load(),
		Resumed:         m.resumed.Load(),
		SimInstructions: m.simInstructions.Load(),
		SimCycles:       m.simCycles.Load(),
	}
	if s.Workers > 0 {
		s.WorkerUtilization = float64(s.BusyWorkers) / float64(s.Workers)
	}
	elapsed := time.Since(time.Unix(0, m.start.Load())).Seconds()
	if elapsed > 0 {
		s.UptimeSec = elapsed
		s.RunsPerSec = float64(s.Completed) / elapsed
		s.SimInstrPerSec = float64(s.SimInstructions) / elapsed
	}
	return s
}
