package farm

import (
	"encoding/json"
	"io"
	"sort"

	"asdsim/internal/sim"
)

// CanonicalOutcome is one run's comparison form: the fields that are a
// pure function of the spec, with execution accidents (wall-clock,
// attempt counts, resume provenance) stripped. Two runs of the same
// matrix — serial or distributed, fresh or cache-served — marshal to
// byte-identical canonical sets, which is what the multi-node parity
// checks diff.
type CanonicalOutcome struct {
	Key       string      `json:"key"`
	Benchmark string      `json:"benchmark"`
	Mode      string      `json:"mode"`
	Engine    string      `json:"engine,omitempty"`
	Seed      uint64      `json:"seed"`
	Error     string      `json:"error,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
}

// Canonicalize shapes outcomes into their canonical comparison form,
// sorted by (benchmark, mode, key).
func Canonicalize(outcomes []Outcome) []CanonicalOutcome {
	out := make([]CanonicalOutcome, len(outcomes))
	for i, o := range outcomes {
		out[i] = CanonicalOutcome{Key: o.Key, Benchmark: o.Benchmark, Mode: o.Mode.String(),
			Engine: o.Engine, Seed: o.Seed, Error: o.Err, Result: o.Result}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Benchmark != out[b].Benchmark {
			return out[a].Benchmark < out[b].Benchmark
		}
		if out[a].Mode != out[b].Mode {
			return out[a].Mode < out[b].Mode
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// WriteCanonical writes the canonical JSON rendering (two-space
// indented, one trailing newline) — the single encoder both the CLI's
// -outcomes flag and the server's ?format=outcomes use, so their
// outputs can be compared with cmp/diff.
func WriteCanonical(w io.Writer, outcomes []Outcome) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Canonicalize(outcomes))
}
