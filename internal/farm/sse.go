package farm

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"asdsim/internal/workload"
)

// eventsPayload is one SSE frame's body: the pool snapshot plus every
// job's live progress, gains, sparkline, anomalies, per-run decision
// timelines and the shared-trace cache state.
type eventsPayload struct {
	Snapshot   Snapshot                  `json:"snapshot"`
	Jobs       []eventsJob               `json:"jobs"`
	Sparks     []Spark                   `json:"sparks,omitempty"`
	Anomalies  []Anomaly                 `json:"anomalies,omitempty"`
	Latency    *latencyView              `json:"latency,omitempty"`
	Cluster    *ClusterSnapshot          `json:"cluster,omitempty"`
	Timelines  []Timeline                `json:"timelines,omitempty"`
	TraceCache *workload.TraceCacheStats `json:"trace_cache,omitempty"`
}

// traceCacheSource is implemented by runners carrying a shared-trace
// cache (the in-process Pool; cluster coordinators don't).
type traceCacheSource interface {
	TraceCacheStats() workload.TraceCacheStats
}

type eventsJob struct {
	jobSummary
	Gains []benchGains `json:"gains,omitempty"`
}

// latencyView carries the run wall-clock percentiles (seconds).
type latencyView struct {
	P50 float64 `json:"p50_sec"`
	P95 float64 `json:"p95_sec"`
	Max float64 `json:"max_sec"`
	N   uint64  `json:"runs"`
}

// eventsFrame assembles the current payload.
func (s *Server) eventsFrame() eventsPayload {
	s.mu.Lock()
	ids := s.sortedJobIDs()
	jobs := make([]*serverJob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	p := eventsPayload{Snapshot: s.runner.Metrics().Snapshot(), Jobs: make([]eventsJob, 0, len(jobs))}
	for _, j := range jobs {
		j.mu.Lock()
		outcomes := append([]Outcome(nil), j.outcomes...)
		j.mu.Unlock()
		_, gains := runsAndGains(outcomes)
		p.Jobs = append(p.Jobs, eventsJob{jobSummary: j.summary(), Gains: gains})
	}
	if p50, p95, max, n := s.runner.Metrics().LatencySummary(); n > 0 {
		p.Latency = &latencyView{P50: p50, P95: p95, Max: max, N: n}
	}
	if s.telemetry != nil {
		p.Sparks = s.telemetry.Sparks()
		p.Anomalies = s.telemetry.Anomalies()
	}
	if s.provenance != nil {
		p.Timelines = s.provenance.Timelines()
	}
	if tc, ok := s.runner.(traceCacheSource); ok {
		st := tc.TraceCacheStats()
		p.TraceCache = &st
	}
	p.Cluster = s.clusterSnapshot()
	return p
}

// handleEvents streams farm state as server-sent events: one "state"
// event immediately, then one per sseInterval until the client goes
// away or the server shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	send := func() bool {
		b, err := json.Marshal(s.eventsFrame())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: state\ndata: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	tick := time.NewTicker(s.sseInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		case <-tick.C:
			if !send() {
				return
			}
		}
	}
}
