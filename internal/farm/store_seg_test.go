package farm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"asdsim/internal/sim"
)

// okOutcome builds a distinguishable successful outcome for store tests.
func okOutcome(bench string, cycles uint64) Outcome {
	spec := testSpec(bench, sim.PMS)
	res := fakeResult(cycles)
	return Outcome{Key: spec.Key(), Benchmark: bench, Mode: spec.Mode,
		Engine: spec.Config.Engine.String(), Seed: spec.Config.Seed, Result: &res, Attempts: 1}
}

func failedOutcome(bench string) Outcome {
	spec := testSpec(bench, sim.PMS)
	return Outcome{Key: spec.Key(), Benchmark: bench, Mode: spec.Mode, Err: "boom", Attempts: 1}
}

// tinySegStore opens a segmented store with a tiny segment bound so a
// handful of appends exercises rotation.
func tinySegStore(t *testing.T, opts StoreOptions) *Store {
	t.Helper()
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = 512
	}
	s, err := OpenStoreOptions(filepath.Join(t.TempDir(), "store"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSegmentedStoreRotatesAndReopens(t *testing.T) {
	s := tinySegStore(t, StoreOptions{})
	var outs []Outcome
	for i := 0; i < 20; i++ {
		o := okOutcome(fmt.Sprintf("bench-%02d", i), uint64(1000+i))
		outs = append(outs, o)
		if err := s.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if !st.Segmented || st.Segments < 2 || st.Rotations == 0 {
		t.Fatalf("expected multiple segments after tiny-bound appends, stats %+v", st)
	}
	if st.Entries != 20 || st.Lines != 20 {
		t.Fatalf("entries/lines = %d/%d, want 20/20", st.Entries, st.Lines)
	}
	dir := s.Path()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index is rebuilt by scanning segments, and every
	// outcome is still served.
	s2, err := OpenStoreOptions(dir, StoreOptions{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Completed(); got != 20 {
		t.Fatalf("reopened Completed() = %d, want 20", got)
	}
	for _, want := range outs {
		got, ok := s2.Lookup(want.Key)
		if !ok || got.Result.Cycles != want.Result.Cycles {
			t.Fatalf("reopened lookup %s: ok=%v got=%+v", want.Benchmark, ok, got)
		}
	}
}

func TestSegmentedStoreLastWriteWins(t *testing.T) {
	s := tinySegStore(t, StoreOptions{})
	key := okOutcome("dup", 1).Key
	for i := uint64(1); i <= 5; i++ {
		if err := s.Append(okOutcome("dup", i*100)); err != nil {
			t.Fatal(err)
		}
	}
	if o, ok := s.Lookup(key); !ok || o.Result.Cycles != 500 {
		t.Fatalf("lookup after rewrites = %+v (ok=%v), want cycles 500", o, ok)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Garbage != 4 {
		t.Fatalf("entries/garbage = %d/%d, want 1/4 (four superseded)", st.Entries, st.Garbage)
	}
}

func TestSegmentedStoreCompactionDropsGarbage(t *testing.T) {
	// High threshold so compaction only runs when asked.
	s := tinySegStore(t, StoreOptions{CompactMinGarbage: 1 << 30})
	for i := uint64(1); i <= 6; i++ {
		if err := s.Append(okOutcome("rewritten", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := s.Append(failedOutcome(fmt.Sprintf("broken-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	keep := okOutcome("kept", 777)
	if err := s.Append(keep); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.Segments < 2 {
		t.Fatalf("test needs sealed segments, stats %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Lines >= before.Lines || after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not shrink the store: before %+v after %+v", before, after)
	}
	if after.Entries != 2 {
		t.Fatalf("entries after compaction = %d, want 2 (rewritten + kept)", after.Entries)
	}
	dir := s.Path()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted layout must survive a reopen.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if o, ok := s2.Lookup(okOutcome("rewritten", 0).Key); !ok || o.Result.Cycles != 6 {
		t.Fatalf("post-compaction lookup = %+v (ok=%v), want cycles 6", o, ok)
	}
	if o, ok := s2.Lookup(keep.Key); !ok || o.Result.Cycles != 777 {
		t.Fatalf("post-compaction lookup kept = %+v (ok=%v)", o, ok)
	}
}

func TestSegmentedStoreBackgroundCompactionTriggers(t *testing.T) {
	s := tinySegStore(t, StoreOptions{CompactMinGarbage: 4})
	for i := uint64(1); i <= 12; i++ {
		if err := s.Append(okOutcome("churn", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce any background compaction the appends kicked off.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran, stats %+v", st)
	}
	if o, ok := s.Lookup(okOutcome("churn", 0).Key); !ok || o.Result.Cycles != 12 {
		t.Fatalf("lookup after churn = %+v (ok=%v), want cycles 12", o, ok)
	}
}

func TestSegmentedStoreCacheCounters(t *testing.T) {
	s := tinySegStore(t, StoreOptions{})
	o := okOutcome("cached", 42)
	if err := s.Append(o); err != nil {
		t.Fatal(err)
	}
	dir := s.Path()
	s.Close()

	// A fresh open has a cold cache: first lookup misses (and fills),
	// second hits.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Lookup(o.Key); !ok {
		t.Fatal("lookup after reopen failed")
	}
	if st := s2.Stats(); st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("cold stats = hits %d misses %d, want 0/1", st.CacheHits, st.CacheMisses)
	}
	if _, ok := s2.Lookup(o.Key); !ok {
		t.Fatal("second lookup failed")
	}
	if st := s2.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("warm stats = hits %d misses %d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if _, ok := s2.Lookup("no-such-key"); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if st := s2.Stats(); st.CacheMisses != 2 {
		t.Fatalf("absent lookup should count a miss, stats %+v", st)
	}
}

func TestSegmentedStoreTornTailTruncated(t *testing.T) {
	s := tinySegStore(t, StoreOptions{})
	o := okOutcome("survivor", 9)
	if err := s.Append(o); err != nil {
		t.Fatal(err)
	}
	dir := s.Path()
	s.Close()

	// Simulate a crash mid-append: garbage half-line at the tail of the
	// active segment.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("glob: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","benchm`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if got, ok := s2.Lookup(o.Key); !ok || got.Result.Cycles != 9 {
		t.Fatalf("intact line lost: %+v ok=%v", got, ok)
	}
	// The torn bytes are gone; appends resume on a clean line.
	if err := s2.Append(okOutcome("after-crash", 10)); err != nil {
		t.Fatal(err)
	}
	if got := s2.Completed(); got != 2 {
		t.Fatalf("completed = %d, want 2", got)
	}
}

func TestSegmentedStoreRejectsMidFileCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(okOutcome("one", 1))
	s.Append(okOutcome("two", 2))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST line: not a torn tail, must refuse to open.
	// (Break the JSON syntax itself — encoding/json silently repairs
	// invalid UTF-8 inside strings.)
	data[0] = 'X'
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Fatal("open accepted mid-file corruption")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error should name the line: %v", err)
	}
}

func TestLegacySingleFilePathStaysSingleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 4; i++ {
		if err := s.Append(okOutcome(fmt.Sprintf("legacy-%d", i), i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segmented || st.Segments != 1 {
		t.Fatalf("single-file store reported %+v", st)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.IsDir() {
		t.Fatalf("legacy path is not a plain file: %v %v", fi, err)
	}
}

func TestSegmentedStoreConcurrentAppendLookup(t *testing.T) {
	s := tinySegStore(t, StoreOptions{CompactMinGarbage: 8})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				o := okOutcome(fmt.Sprintf("g%d-i%d", g, i%10), uint64(g*1000+i))
				if err := s.Append(o); err != nil {
					t.Error(err)
					return
				}
				s.Lookup(o.Key)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Completed(); got != 40 {
		t.Fatalf("completed = %d, want 40 distinct keys", got)
	}
}
