package farm

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"asdsim/internal/mem"
	"asdsim/internal/obs/prov"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

// Runner is the execution engine behind a Server: the in-process Pool,
// or the cluster Coordinator fanning specs out to remote workers. Both
// share RunBatch's contract — outcomes in spec order, deterministic at
// any concurrency, store-resumed where possible.
type Runner interface {
	RunBatch(ctx context.Context, specs []Spec, store *Store, onDone func(Outcome)) ([]Outcome, error)
	Metrics() *Metrics
	Workers() int
}

// Server exposes a Runner over HTTP:
//
//	POST   /jobs       submit a Matrix; returns {"id": ..., "runs": N}
//	GET    /jobs       list job summaries (?limit=, ?after=<job id>)
//	GET    /jobs/{id}  job status, aggregated gains, per-run results
//	                   (?bench=, ?mode=, ?engine=, ?limit=, ?after=<key>;
//	                   ?format=outcomes for the canonical comparison set)
//	DELETE /jobs/{id}  cancel a running job
//	GET    /metrics    pool counters (queue depth, utilization, runs/sec)
//
// A non-nil store gives every submitted job resume-from-partial-results
// against the same store the CLI writes.
type Server struct {
	runner     Runner
	store      *Store
	pprof      bool
	expvar     *expvar.Map
	telemetry  *Telemetry
	provenance *Provenance
	// sseInterval is the /events push period; tests shrink it.
	sseInterval time.Duration

	mu       sync.Mutex
	seq      int
	jobs     map[string]*serverJob
	shutdown chan struct{} // closed by Shutdown; nil until first Handler use
}

// farmJobsVar is the process-wide expvar map live per-job counters are
// published under ("farm.jobs" in /debug/vars). Registered once: expvar
// panics on duplicate names, and tests build several Servers.
var farmJobsVar = expvar.NewMap("farm.jobs")

// serverJob tracks one submitted matrix through the pool.
type serverJob struct {
	id     string
	specs  []Spec
	cancel context.CancelFunc

	mu       sync.Mutex
	outcomes []Outcome // completion order
	state    string    // "running", "done", "cancelled"
	started  time.Time
	finished time.Time
}

// NewServer wraps pool (and an optional store) in an HTTP API.
func NewServer(pool *Pool, store *Store) *Server {
	return NewServerFor(pool, store)
}

// NewServerFor wraps any Runner — an in-process Pool or a cluster
// Coordinator — in the same HTTP API.
func NewServerFor(r Runner, store *Store) *Server {
	return &Server{runner: r, store: store, jobs: make(map[string]*serverJob),
		expvar: farmJobsVar, sseInterval: time.Second, shutdown: make(chan struct{})}
}

// AttachTelemetry registers the aggregator feeding the Prometheus
// depth/anomaly families, the dashboard sparklines and /flightrec. The
// caller wires t.Instrument into the pool's Options.
func (s *Server) AttachTelemetry(t *Telemetry) { s.telemetry = t }

// Telemetry returns the attached aggregator (nil when none).
func (s *Server) Telemetry() *Telemetry { return s.telemetry }

// AttachProvenance registers the collector feeding /explain, /diff, the
// dashboard's decision-timeline panel and the provenance Prometheus
// counters. The caller wires p.Attach into the pool's
// Options.Provenance.
func (s *Server) AttachProvenance(p *Provenance) { s.provenance = p }

// Provenance returns the attached collector (nil when none).
func (s *Server) Provenance() *Provenance { return s.provenance }

// Shutdown cancels every running job, wakes all /events streams so they
// terminate, and waits — up to ctx's deadline — for the jobs to reach a
// terminal state. Call it before http.Server.Shutdown so in-flight SSE
// responses end instead of holding the listener open.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	select {
	case <-s.shutdown:
	default:
		close(s.shutdown)
	}
	jobs := make([]*serverJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		settled := true
		for _, j := range jobs {
			j.mu.Lock()
			fin := !j.finished.IsZero()
			j.mu.Unlock()
			if !fin {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// EnablePprof mounts net/http/pprof profiling endpoints under
// /debug/pprof/ on the next Handler call. Off by default: the profiler
// exposes stacks and heap contents, so callers opt in (asdfarm serve
// -pprof).
func (s *Server) EnablePprof() { s.pprof = true }

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /dashboard", s.handleDashboard)
	mux.HandleFunc("GET /flightrec", s.handleFlightrecList)
	mux.HandleFunc("GET /flightrec/{id}", s.handleFlightrecBundle)
	mux.HandleFunc("GET /explain/{key}", s.handleExplain)
	mux.HandleFunc("GET /diff/{a}/{b}", s.handleDiff)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var m Matrix
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode matrix: %w", err))
		return
	}
	specs, err := m.Specs()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &serverJob{specs: specs, cancel: cancel, state: "running", started: time.Now()}

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	// Publish the job's live counters: expvar.Func re-evaluates
	// summary() on every /debug/vars read, so the values track the
	// running pool without bookkeeping.
	s.expvar.Set(j.id, expvar.Func(func() any { return j.summary() }))

	go func() {
		defer cancel()
		s.runner.RunBatch(ctx, specs, s.store, func(o Outcome) {
			j.mu.Lock()
			j.outcomes = append(j.outcomes, o)
			j.mu.Unlock()
		})
		j.mu.Lock()
		if j.state == "running" {
			j.state = "done"
		}
		j.finished = time.Now()
		j.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "runs": len(specs)})
}

// jobSummary is the wire form of a job's progress.
type jobSummary struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Total      int     `json:"total"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	Resumed    int     `json:"resumed"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

func (j *serverJob) summary() jobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	sum := jobSummary{ID: j.id, State: j.state, Total: len(j.specs), Done: len(j.outcomes)}
	for i := range j.outcomes {
		if !j.outcomes[i].OK() {
			sum.Failed++
		}
		if j.outcomes[i].Resumed {
			sum.Resumed++
		}
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	sum.ElapsedSec = end.Sub(j.started).Seconds()
	return sum
}

func (s *Server) job(id string) *serverJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// pageParams reads the shared ?limit= and ?after= pagination query
// parameters. limit <= 0 (or absent) means unbounded; after names the
// last item of the previous page by its ID in the deterministic order.
func pageParams(r *http.Request) (limit int, after string, err error) {
	q := r.URL.Query()
	after = q.Get("after")
	if s := q.Get("limit"); s != "" {
		limit, err = strconv.Atoi(s)
		if err != nil {
			return 0, "", fmt.Errorf("bad limit %q: %w", s, err)
		}
	}
	return limit, after, nil
}

// paginate slices items to the page after the element with the given
// id, capped at limit. The id of each element comes from idOf. An
// unknown ?after= cursor yields an empty page rather than an error:
// cursors outlive the items they point at (a deleted job is a valid
// place to resume from only if we still know it; we don't pretend to).
func paginate[T any](items []T, limit int, after string, idOf func(T) string) []T {
	start := 0
	if after != "" {
		start = len(items)
		for i, it := range items {
			if idOf(it) == after {
				start = i + 1
				break
			}
		}
	}
	items = items[start:]
	if limit > 0 && limit < len(items) {
		items = items[:limit]
	}
	return items
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit, after, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	ids := s.sortedJobIDs() // creation order: deterministic pagination
	jobs := make([]*serverJob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	sums := make([]jobSummary, len(jobs))
	for i, j := range jobs {
		sums[i] = j.summary()
	}
	sums = paginate(sums, limit, after, func(j jobSummary) string { return j.ID })
	writeJSON(w, http.StatusOK, sums)
}

// runView is one run's compact result row.
type runView struct {
	Key       string  `json:"key"`
	Benchmark string  `json:"benchmark"`
	Mode      string  `json:"mode"`
	Engine    string  `json:"engine,omitempty"`
	Cycles    uint64  `json:"cycles,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	Attempts  int     `json:"attempts"`
	WallMS    float64 `json:"wall_ms"`
	Resumed   bool    `json:"resumed,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// benchGains aggregates one benchmark's paper comparisons, present when
// the needed modes completed.
type benchGains struct {
	Benchmark string   `json:"benchmark"`
	PMSvsNP   *float64 `json:"pms_vs_np_pct,omitempty"`
	MSvsNP    *float64 `json:"ms_vs_np_pct,omitempty"`
	PMSvsPS   *float64 `json:"pms_vs_ps_pct,omitempty"`
}

// runsAndGains shapes a job's outcomes into sorted run rows and the
// per-benchmark paper-comparison gains; shared by /jobs/{id} and the
// SSE stream.
func runsAndGains(outcomes []Outcome) ([]runView, []benchGains) {
	runs := make([]runView, len(outcomes))
	cycles := map[string]map[sim.Mode]uint64{}
	for i, o := range outcomes {
		runs[i] = runView{Key: o.Key, Benchmark: o.Benchmark, Mode: o.Mode.String(), Engine: o.Engine,
			Attempts: o.Attempts, WallMS: o.WallMS, Resumed: o.Resumed, Error: o.Err}
		if o.OK() {
			runs[i].Cycles = o.Result.Cycles
			runs[i].IPC = o.Result.IPC
			if cycles[o.Benchmark] == nil {
				cycles[o.Benchmark] = map[sim.Mode]uint64{}
			}
			cycles[o.Benchmark][o.Mode] = o.Result.Cycles
		}
	}
	sort.Slice(runs, func(a, b int) bool {
		if runs[a].Benchmark != runs[b].Benchmark {
			return runs[a].Benchmark < runs[b].Benchmark
		}
		if runs[a].Mode != runs[b].Mode {
			return runs[a].Mode < runs[b].Mode
		}
		return runs[a].Key < runs[b].Key // total order: stable pagination cursors
	})

	gain := func(base, res uint64) *float64 {
		if base == 0 || res == 0 {
			return nil
		}
		g := 100 * (float64(base)/float64(res) - 1)
		return &g
	}
	benches := make([]string, 0, len(cycles))
	for b := range cycles {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	gains := make([]benchGains, 0, len(benches))
	for _, b := range benches {
		c := cycles[b]
		g := benchGains{Benchmark: b,
			PMSvsNP: gain(c[sim.NP], c[sim.PMS]),
			MSvsNP:  gain(c[sim.NP], c[sim.MS]),
			PMSvsPS: gain(c[sim.PS], c[sim.PMS])}
		if g.PMSvsNP != nil || g.MSvsNP != nil || g.PMSvsPS != nil {
			gains = append(gains, g)
		}
	}
	return runs, gains
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	outcomes := append([]Outcome(nil), j.outcomes...)
	j.mu.Unlock()

	switch r.URL.Query().Get("format") {
	case "outcomes":
		// The canonical comparison set: what `asdfarm run -outcomes`
		// writes locally, so distributed and serial runs byte-diff.
		w.Header().Set("Content-Type", "application/json")
		WriteCanonical(w, outcomes)
		return
	case "trace":
		// The merged Perfetto/Chrome trace of the job's distributed
		// lifecycle: coordinator spans plus every worker span shipped
		// back with completions.
		ts, ok := s.runner.(TraceSource)
		if !ok {
			writeErr(w, http.StatusNotImplemented,
				fmt.Errorf("runner does not collect distributed spans (not a cluster coordinator)"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		span.WriteChromeTrace(w, ts.Spans(jobKeys(j)))
		return
	}

	limit, after, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	runs, gains := runsAndGains(outcomes)
	runs = filterRuns(runs, r)
	runs = paginate(runs, limit, after, func(v runView) string { return v.Key })

	resp := map[string]any{
		"job":   j.summary(),
		"gains": gains,
		"runs":  runs,
	}
	if cs := s.clusterSnapshot(); cs != nil {
		resp["lease_events"] = filterLeaseEvents(cs.LeaseEvents, jobKeys(j))
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobKeys returns the job's spec keys (the trace handles of every cell
// it touches, including cache-served ones).
func jobKeys(j *serverJob) []string {
	keys := make([]string, len(j.specs))
	for i := range j.specs {
		keys[i] = j.specs[i].Key()
	}
	return keys
}

// filterLeaseEvents keeps the transitions belonging to the given spec
// keys, preserving ring (seq) order. Never nil: the field's presence
// tells a cluster client the feed exists.
func filterLeaseEvents(events []LeaseEvent, keys []string) []LeaseEvent {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	kept := []LeaseEvent{}
	for _, e := range events {
		if want[e.Key] {
			kept = append(kept, e)
		}
	}
	return kept
}

// filterRuns applies the ?bench=, ?mode= and ?engine= row filters.
// Values match the row's rendered fields exactly ("PMS", "asd", ...);
// an empty parameter is a wildcard.
func filterRuns(runs []runView, r *http.Request) []runView {
	q := r.URL.Query()
	bench, mode, engine := q.Get("bench"), q.Get("mode"), q.Get("engine")
	if bench == "" && mode == "" && engine == "" {
		return runs
	}
	kept := make([]runView, 0, len(runs))
	for _, v := range runs {
		if (bench == "" || v.Benchmark == bench) &&
			(mode == "" || v.Mode == mode) &&
			(engine == "" || v.Engine == engine) {
			kept = append(kept, v)
		}
	}
	return kept
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	if j.state == "running" {
		j.state = "cancelled"
	}
	j.mu.Unlock()
	j.cancel()
	writeJSON(w, http.StatusOK, j.summary())
}

// metricsView is /metrics's wire form: the pool snapshot's flat fields
// (embedded, preserving the pre-existing shape) plus live per-job
// counters, the result store's shape, and — when the runner is a
// cluster coordinator — the fleet state.
type metricsView struct {
	Snapshot
	Jobs    map[string]jobSummary `json:"jobs,omitempty"`
	Store   *StoreStats           `json:"store,omitempty"`
	Cluster *ClusterSnapshot      `json:"cluster,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		reg := s.buildRegistry()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteTo(w)
		return
	}
	s.mu.Lock()
	jobs := make(map[string]jobSummary, len(s.jobs))
	for id, j := range s.jobs {
		jobs[id] = j.summary()
	}
	s.mu.Unlock()
	mv := metricsView{Snapshot: s.runner.Metrics().Snapshot(), Jobs: jobs}
	if s.store != nil {
		st := s.store.Stats()
		mv.Store = &st
	}
	if cs := s.clusterSnapshot(); cs != nil {
		mv.Cluster = cs
	}
	writeJSON(w, http.StatusOK, mv)
}

// handleFlightrecList returns the retained triage bundles' index: ID,
// run label and trigger, so a bundle can be fetched by ID.
func (s *Server) handleFlightrecList(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID       string `json:"id"`
		Label    string `json:"label"`
		Key      string `json:"key,omitempty"`
		Node     string `json:"node,omitempty"`
		TraceID  string `json:"trace_id,omitempty"`
		Detector string `json:"detector"`
		Detail   string `json:"detail"`
		Window   uint64 `json:"window"`
		Cycle    uint64 `json:"cycle"`
	}
	rows := []row{}
	if s.telemetry != nil {
		for _, b := range s.telemetry.Bundles() {
			rows = append(rows, row{ID: b.ID, Label: b.Bundle.Label,
				Key: b.Bundle.Key, Node: b.Bundle.Node, TraceID: b.Bundle.TraceID,
				Detector: b.Bundle.Trigger.Detector, Detail: b.Bundle.Trigger.Detail,
				Window: b.Bundle.Trigger.Window, Cycle: b.Bundle.Trigger.Cycle})
		}
	}
	writeJSON(w, http.StatusOK, rows)
}

// handleFlightrecBundle serves one triage bundle: JSON by default, the
// human-readable report with ?format=report.
func (s *Server) handleFlightrecBundle(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.telemetry == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no telemetry attached"))
		return
	}
	b := s.telemetry.Bundle(id)
	if b == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such bundle %q", id))
		return
	}
	if r.URL.Query().Get("format") == "report" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		b.WriteReport(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b.WriteJSON(w)
}

// loadProvStream fetches one stored provenance stream by spec key,
// resolving unique key prefixes like the CLI (and git) do.
func (s *Server) loadProvStream(key string) (*prov.Stream, int, error) {
	if s.provenance == nil || s.provenance.Store() == nil {
		return nil, http.StatusNotFound, fmt.Errorf("no provenance store attached")
	}
	ps := s.provenance.Store()
	st, ok, err := ps.Load(key)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if !ok {
		keys, kerr := ps.Keys()
		if kerr != nil {
			return nil, http.StatusInternalServerError, kerr
		}
		var match string
		for _, k := range keys {
			if strings.HasPrefix(k, key) {
				if match != "" {
					return nil, http.StatusBadRequest,
						fmt.Errorf("key prefix %q is ambiguous", key)
				}
				match = k
			}
		}
		if match == "" {
			return nil, http.StatusNotFound, fmt.Errorf("no provenance stream for key %q", key)
		}
		if st, ok, err = ps.Load(match); err != nil {
			return nil, http.StatusInternalServerError, err
		} else if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no provenance stream for key %q", match)
		}
	}
	return st, http.StatusOK, nil
}

// handleExplain serves the lineage tree of one prefetch from a stored
// run's provenance sidecar: the last explainable prefetch by default,
// or ?line=0x..(&cycle=N) to pick one. ?format=json returns the
// structured lineage.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	st, status, err := s.loadProvStream(key)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	q := r.URL.Query()
	var line mem.Line
	cycle := ^uint64(0) // no ?cycle=: the line's newest generation
	if ls := q.Get("line"); ls != "" {
		v, perr := strconv.ParseUint(ls, 0, 64)
		if perr != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad line %q: %w", ls, perr))
			return
		}
		line = mem.Line(v)
		if cs := q.Get("cycle"); cs != "" {
			if cycle, perr = strconv.ParseUint(cs, 0, 64); perr != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cycle %q: %w", cs, perr))
				return
			}
		}
	} else {
		var ok bool
		if line, cycle, ok = prov.LastExplainable(st); !ok {
			writeErr(w, http.StatusNotFound,
				fmt.Errorf("stream for %q records no explainable prefetch", key))
			return
		}
	}
	lin, err := prov.Explain(st, line, cycle)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if q.Get("format") == "json" {
		writeJSON(w, http.StatusOK, lin)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	lin.WriteTree(w)
}

// handleDiff attributes the outcome delta between two stored runs to
// their decision divergences: first diverging SLH epoch plus
// per-stream-length lifecycle deltas, with cycles/IPC context pulled
// from the outcome store when available. ?format=json returns the
// structured report.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	keyA, keyB := r.PathValue("a"), r.PathValue("b")
	a, status, err := s.loadProvStream(keyA)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	b, status, err := s.loadProvStream(keyB)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	rep := prov.Diff(a, b)
	if s.store != nil {
		if o, ok := s.store.Lookup(keyA); ok && o.Result != nil {
			rep.CyclesA, rep.IPCA = o.Result.Cycles, o.Result.IPC
		}
		if o, ok := s.store.Lookup(keyB); ok && o.Result != nil {
			rep.CyclesB, rep.IPCB = o.Result.Cycles, o.Result.IPC
		}
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rep.WriteReport(w)
}
