package farm

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	prom "asdsim/internal/metrics"
	"asdsim/internal/sim"
)

type statusPage struct {
	Job   jobSummary   `json:"job"`
	Gains []benchGains `json:"gains"`
	Runs  []runView    `json:"runs"`
}

// submitAndFinish posts a matrix and polls it to completion.
func submitAndFinish(t *testing.T, srv *httptest.Server, m Matrix) string {
	t.Helper()
	resp := postJSON(t, srv.URL+"/jobs", m)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := decode[map[string]any](t, resp)["id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if st := decode[statusPage](t, r); st.Job.State == "done" {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getRuns(t *testing.T, srv *httptest.Server, id, query string) []runView {
	t.Helper()
	r, err := http.Get(srv.URL + "/jobs/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", query, r.StatusCode)
	}
	return decode[statusPage](t, r).Runs
}

// Pagination walks the full run list in stable deterministic order;
// filters select exact rendered fields; bad cursors and limits behave.
func TestServerRunPaginationAndFilters(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1000 + uint64(s.Mode)), nil
	})
	id := submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD", "milc"}, Budget: 5000})

	all := getRuns(t, srv, id, "")
	if len(all) != 8 {
		t.Fatalf("unpaginated runs = %d, want 8", len(all))
	}

	// Page through with limit=3: pages concatenate to exactly the
	// unpaginated order.
	var paged []runView
	after := ""
	for {
		q := "?limit=3"
		if after != "" {
			q += "&after=" + after
		}
		page := getRuns(t, srv, id, q)
		if len(page) == 0 {
			break
		}
		if len(page) > 3 {
			t.Fatalf("page of %d rows exceeds limit", len(page))
		}
		paged = append(paged, page...)
		after = page[len(page)-1].Key
	}
	if len(paged) != len(all) {
		t.Fatalf("paged total = %d, want %d", len(paged), len(all))
	}
	for i := range all {
		if paged[i].Key != all[i].Key {
			t.Fatalf("page order diverges at %d: %s vs %s", i, paged[i].Key, all[i].Key)
		}
	}

	if got := getRuns(t, srv, id, "?bench=GemsFDTD"); len(got) != 4 {
		t.Errorf("bench filter rows = %d, want 4", len(got))
	}
	if got := getRuns(t, srv, id, "?mode=PMS"); len(got) != 2 {
		t.Errorf("mode filter rows = %d, want 2", len(got))
	} else if got[0].Mode != "PMS" || got[1].Mode != "PMS" {
		t.Errorf("mode filter leaked rows: %+v", got)
	}
	if got := getRuns(t, srv, id, "?engine=asd"); len(got) != 8 {
		t.Errorf("engine=asd rows = %d, want 8 (default engine)", len(got))
	}
	if got := getRuns(t, srv, id, "?engine=next-line"); len(got) != 0 {
		t.Errorf("engine=next-line rows = %d, want 0", len(got))
	}
	if got := getRuns(t, srv, id, "?bench=GemsFDTD&mode=NP"); len(got) != 1 {
		t.Errorf("combined filter rows = %d, want 1", len(got))
	}
	if got := getRuns(t, srv, id, "?after=no-such-key"); len(got) != 0 {
		t.Errorf("unknown cursor rows = %d, want empty page", len(got))
	}

	r, err := http.Get(srv.URL + "/jobs/" + id + "?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", r.StatusCode)
	}
}

// The job list paginates in creation order with the same cursor scheme.
func TestServerJobListPagination(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD"}, Budget: 1000}))
	}

	r, err := http.Get(srv.URL + "/jobs?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	page1 := decode[[]jobSummary](t, r)
	if len(page1) != 2 || page1[0].ID != ids[0] || page1[1].ID != ids[1] {
		t.Fatalf("page 1 = %+v, want %v", page1, ids[:2])
	}
	r, err = http.Get(srv.URL + "/jobs?limit=2&after=" + page1[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	page2 := decode[[]jobSummary](t, r)
	if len(page2) != 1 || page2[0].ID != ids[2] {
		t.Fatalf("page 2 = %+v, want [%s]", page2, ids[2])
	}
}

// ?format=outcomes returns the canonical comparison set: sorted,
// stripped of wall-clock noise, and decodable as CanonicalOutcome.
func TestServerOutcomesFormat(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(500 + uint64(s.Mode)), nil
	})
	id := submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD", "milc"}, Budget: 5000})

	r, err := http.Get(srv.URL + "/jobs/" + id + "?format=outcomes")
	if err != nil {
		t.Fatal(err)
	}
	canon := decode[[]CanonicalOutcome](t, r)
	if len(canon) != 8 {
		t.Fatalf("canonical outcomes = %d, want 8", len(canon))
	}
	for i := 1; i < len(canon); i++ {
		a, b := canon[i-1], canon[i]
		if a.Benchmark > b.Benchmark || (a.Benchmark == b.Benchmark && a.Mode > b.Mode) {
			t.Fatalf("canonical order broken at %d: %s/%s after %s/%s", i, b.Benchmark, b.Mode, a.Benchmark, a.Mode)
		}
	}
	for _, c := range canon {
		if c.Key == "" || c.Result == nil {
			t.Fatalf("canonical outcome incomplete: %+v", c)
		}
	}
}

// fakeClusterRunner wraps a pool with a canned fleet snapshot, standing
// in for a cluster.Coordinator (which farm's tests cannot import).
type fakeClusterRunner struct {
	pool *Pool
	snap ClusterSnapshot
}

func (f *fakeClusterRunner) RunBatch(ctx context.Context, specs []Spec, store *Store, onDone func(Outcome)) ([]Outcome, error) {
	return f.pool.RunBatch(ctx, specs, store, onDone)
}
func (f *fakeClusterRunner) Metrics() *Metrics                { return f.pool.Metrics() }
func (f *fakeClusterRunner) Workers() int                     { return f.pool.Workers() }
func (f *fakeClusterRunner) ClusterSnapshot() ClusterSnapshot { return f.snap }

// A cluster-backed server exposes the cluster_* families on the
// Prometheus endpoint — and the whole payload stays grammatical.
func TestServerClusterMetricFamilies(t *testing.T) {
	pool := New(Options{Workers: 2, Run: func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	}})
	defer pool.Close()
	runner := &fakeClusterRunner{pool: pool, snap: ClusterSnapshot{
		Workers: 3, TasksPending: 2, LeasesActive: 1,
		LeaseExpirations: 4, Steals: 2, LateResults: 1, Completed: 10,
		Store: &StoreStats{Segmented: true, Segments: 2, Entries: 10, CacheHits: 7, CacheMisses: 3, Compactions: 1},
	}}
	srv := httptest.NewServer(NewServerFor(runner, nil).Handler())
	defer srv.Close()

	r, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := prom.Lint(payload); err != nil {
		t.Fatalf("prometheus payload fails lint: %v\n%s", err, payload)
	}
	for _, family := range []string{
		"cluster_workers", "cluster_tasks_pending", "cluster_leases_active",
		"cluster_lease_expirations_total", "cluster_steals_total",
		"cluster_late_results_total", "cluster_completed_total",
		"cluster_store_cache_hits_total", "cluster_store_cache_misses_total",
	} {
		if !strings.Contains(string(payload), "\n"+family) {
			t.Errorf("family %s missing from scrape payload", family)
		}
	}

	// The JSON view and the SSE payload carry the same snapshot.
	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mv := decode[struct {
		Cluster *ClusterSnapshot `json:"cluster"`
	}](t, r)
	if mv.Cluster == nil || mv.Cluster.Workers != 3 || mv.Cluster.Store.CacheHits != 7 {
		t.Fatalf("JSON metrics cluster view = %+v", mv.Cluster)
	}
}
