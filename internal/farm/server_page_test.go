package farm

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	prom "asdsim/internal/metrics"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

type statusPage struct {
	Job   jobSummary   `json:"job"`
	Gains []benchGains `json:"gains"`
	Runs  []runView    `json:"runs"`
}

// submitAndFinish posts a matrix and polls it to completion.
func submitAndFinish(t *testing.T, srv *httptest.Server, m Matrix) string {
	t.Helper()
	resp := postJSON(t, srv.URL+"/jobs", m)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := decode[map[string]any](t, resp)["id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if st := decode[statusPage](t, r); st.Job.State == "done" {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getRuns(t *testing.T, srv *httptest.Server, id, query string) []runView {
	t.Helper()
	r, err := http.Get(srv.URL + "/jobs/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", query, r.StatusCode)
	}
	return decode[statusPage](t, r).Runs
}

// Pagination walks the full run list in stable deterministic order;
// filters select exact rendered fields; bad cursors and limits behave.
func TestServerRunPaginationAndFilters(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1000 + uint64(s.Mode)), nil
	})
	id := submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD", "milc"}, Budget: 5000})

	all := getRuns(t, srv, id, "")
	if len(all) != 8 {
		t.Fatalf("unpaginated runs = %d, want 8", len(all))
	}

	// Page through with limit=3: pages concatenate to exactly the
	// unpaginated order.
	var paged []runView
	after := ""
	for {
		q := "?limit=3"
		if after != "" {
			q += "&after=" + after
		}
		page := getRuns(t, srv, id, q)
		if len(page) == 0 {
			break
		}
		if len(page) > 3 {
			t.Fatalf("page of %d rows exceeds limit", len(page))
		}
		paged = append(paged, page...)
		after = page[len(page)-1].Key
	}
	if len(paged) != len(all) {
		t.Fatalf("paged total = %d, want %d", len(paged), len(all))
	}
	for i := range all {
		if paged[i].Key != all[i].Key {
			t.Fatalf("page order diverges at %d: %s vs %s", i, paged[i].Key, all[i].Key)
		}
	}

	if got := getRuns(t, srv, id, "?bench=GemsFDTD"); len(got) != 4 {
		t.Errorf("bench filter rows = %d, want 4", len(got))
	}
	if got := getRuns(t, srv, id, "?mode=PMS"); len(got) != 2 {
		t.Errorf("mode filter rows = %d, want 2", len(got))
	} else if got[0].Mode != "PMS" || got[1].Mode != "PMS" {
		t.Errorf("mode filter leaked rows: %+v", got)
	}
	if got := getRuns(t, srv, id, "?engine=asd"); len(got) != 8 {
		t.Errorf("engine=asd rows = %d, want 8 (default engine)", len(got))
	}
	if got := getRuns(t, srv, id, "?engine=next-line"); len(got) != 0 {
		t.Errorf("engine=next-line rows = %d, want 0", len(got))
	}
	if got := getRuns(t, srv, id, "?bench=GemsFDTD&mode=NP"); len(got) != 1 {
		t.Errorf("combined filter rows = %d, want 1", len(got))
	}
	if got := getRuns(t, srv, id, "?after=no-such-key"); len(got) != 0 {
		t.Errorf("unknown cursor rows = %d, want empty page", len(got))
	}

	r, err := http.Get(srv.URL + "/jobs/" + id + "?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", r.StatusCode)
	}
}

// Cursor edge cases: a cursor at the last row yields an empty page, a
// limit past the end is harmless, and ?after= composes with the row
// filters — the cursor resolves within the filtered sequence, so a
// cursor the filter excludes matches nothing.
func TestServerPaginationCursorEdges(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1000 + uint64(s.Mode)), nil
	})
	id := submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD", "milc"}, Budget: 5000})
	all := getRuns(t, srv, id, "")
	if len(all) != 8 {
		t.Fatalf("unpaginated runs = %d, want 8", len(all))
	}
	last := all[len(all)-1].Key

	if got := getRuns(t, srv, id, "?after="+last); len(got) != 0 {
		t.Errorf("cursor at last row returned %d rows, want empty page", len(got))
	}
	if got := getRuns(t, srv, id, "?after="+last+"&limit=3"); len(got) != 0 {
		t.Errorf("cursor at last row with limit returned %d rows, want empty page", len(got))
	}
	if got := getRuns(t, srv, id, "?limit=0"); len(got) != len(all) {
		t.Errorf("limit=0 rows = %d, want unbounded %d", len(got), len(all))
	}
	if got := getRuns(t, srv, id, "?limit=100"); len(got) != len(all) {
		t.Errorf("oversized limit rows = %d, want %d", len(got), len(all))
	}

	// The cursor pages within the filtered sequence.
	gems := getRuns(t, srv, id, "?bench=GemsFDTD")
	if len(gems) != 4 {
		t.Fatalf("bench filter rows = %d, want 4", len(gems))
	}
	tail := getRuns(t, srv, id, "?bench=GemsFDTD&after="+gems[0].Key)
	if len(tail) != 3 {
		t.Fatalf("filtered cursor rows = %d, want 3", len(tail))
	}
	for i := range tail {
		if tail[i].Key != gems[i+1].Key {
			t.Fatalf("filtered page diverges at %d: %s vs %s", i, tail[i].Key, gems[i+1].Key)
		}
	}
	pms := getRuns(t, srv, id, "?mode=PMS")
	if len(pms) != 2 {
		t.Fatalf("mode filter rows = %d, want 2", len(pms))
	}
	if got := getRuns(t, srv, id, "?mode=PMS&after="+pms[0].Key+"&limit=5"); len(got) != 1 || got[0].Key != pms[1].Key {
		t.Errorf("mode+cursor page = %+v, want [%s]", got, pms[1].Key)
	}

	// A cursor the filter excludes is an unknown cursor: empty page.
	milc := getRuns(t, srv, id, "?bench=milc")
	if got := getRuns(t, srv, id, "?bench=GemsFDTD&after="+milc[0].Key); len(got) != 0 {
		t.Errorf("filter-excluded cursor returned %d rows, want empty page", len(got))
	}
}

// The job list's cursor behaves the same at its edges.
func TestServerJobListCursorEdges(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	})
	var ids []string
	for i := 0; i < 2; i++ {
		ids = append(ids, submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD"}, Budget: 1000}))
	}
	r, err := http.Get(srv.URL + "/jobs?after=" + ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if page := decode[[]jobSummary](t, r); len(page) != 0 {
		t.Errorf("cursor at last job returned %d rows, want empty page", len(page))
	}
	r, err = http.Get(srv.URL + "/jobs?after=job-999")
	if err != nil {
		t.Fatal(err)
	}
	if page := decode[[]jobSummary](t, r); len(page) != 0 {
		t.Errorf("unknown job cursor returned %d rows, want empty page", len(page))
	}
}

// The job list paginates in creation order with the same cursor scheme.
func TestServerJobListPagination(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD"}, Budget: 1000}))
	}

	r, err := http.Get(srv.URL + "/jobs?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	page1 := decode[[]jobSummary](t, r)
	if len(page1) != 2 || page1[0].ID != ids[0] || page1[1].ID != ids[1] {
		t.Fatalf("page 1 = %+v, want %v", page1, ids[:2])
	}
	r, err = http.Get(srv.URL + "/jobs?limit=2&after=" + page1[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	page2 := decode[[]jobSummary](t, r)
	if len(page2) != 1 || page2[0].ID != ids[2] {
		t.Fatalf("page 2 = %+v, want [%s]", page2, ids[2])
	}
}

// ?format=outcomes returns the canonical comparison set: sorted,
// stripped of wall-clock noise, and decodable as CanonicalOutcome.
func TestServerOutcomesFormat(t *testing.T) {
	srv := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(500 + uint64(s.Mode)), nil
	})
	id := submitAndFinish(t, srv, Matrix{Benchmarks: []string{"GemsFDTD", "milc"}, Budget: 5000})

	r, err := http.Get(srv.URL + "/jobs/" + id + "?format=outcomes")
	if err != nil {
		t.Fatal(err)
	}
	canon := decode[[]CanonicalOutcome](t, r)
	if len(canon) != 8 {
		t.Fatalf("canonical outcomes = %d, want 8", len(canon))
	}
	for i := 1; i < len(canon); i++ {
		a, b := canon[i-1], canon[i]
		if a.Benchmark > b.Benchmark || (a.Benchmark == b.Benchmark && a.Mode > b.Mode) {
			t.Fatalf("canonical order broken at %d: %s/%s after %s/%s", i, b.Benchmark, b.Mode, a.Benchmark, a.Mode)
		}
	}
	for _, c := range canon {
		if c.Key == "" || c.Result == nil {
			t.Fatalf("canonical outcome incomplete: %+v", c)
		}
	}
}

// fakeClusterRunner wraps a pool with a canned fleet snapshot, standing
// in for a cluster.Coordinator (which farm's tests cannot import).
type fakeClusterRunner struct {
	pool *Pool
	snap ClusterSnapshot

	mu      sync.Mutex
	gotKeys []string
}

func (f *fakeClusterRunner) RunBatch(ctx context.Context, specs []Spec, store *Store, onDone func(Outcome)) ([]Outcome, error) {
	return f.pool.RunBatch(ctx, specs, store, onDone)
}
func (f *fakeClusterRunner) Metrics() *Metrics                { return f.pool.Metrics() }
func (f *fakeClusterRunner) Workers() int                     { return f.pool.Workers() }
func (f *fakeClusterRunner) ClusterSnapshot() ClusterSnapshot { return f.snap }

// Spans implements TraceSource: two spans per requested key, one on the
// coordinator and one on a worker, recording the keys it was asked for.
func (f *fakeClusterRunner) Spans(keys []string) []span.Span {
	f.mu.Lock()
	f.gotKeys = append([]string(nil), keys...)
	f.mu.Unlock()
	out := []span.Span{}
	for _, k := range keys {
		tid := span.TraceIDFromKey(k)
		out = append(out,
			span.Span{TraceID: tid, ID: 1, Name: "job", Node: "coordinator", Key: k, StartUS: 1, DurUS: 10},
			span.Span{TraceID: tid, ID: 2, Parent: 1, Name: "execute", Node: "w1", Key: k, StartUS: 2, DurUS: 5})
	}
	return out
}

// ?format=trace merges the coordinator's spans for the job's keys into
// one Chrome trace; the plain-pool server says 501; the job status of a
// cluster server carries the job-filtered lease-event feed.
func TestServerTraceFormat(t *testing.T) {
	m := Matrix{Benchmarks: []string{"GemsFDTD"}, Modes: []string{"NP"}, Budget: 1000}
	specs, err := m.Specs()
	if err != nil || len(specs) != 1 {
		t.Fatalf("specs = %v, %v", specs, err)
	}
	key := specs[0].Key()

	pool := New(Options{Workers: 1, Run: func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	}})
	defer pool.Close()
	runner := &fakeClusterRunner{pool: pool, snap: ClusterSnapshot{
		LeaseEvents: []LeaseEvent{
			{Seq: 1, Event: "grant", Key: key, Worker: "w1"},
			{Seq: 2, Event: "grant", Key: "someone-elses-job", Worker: "w2"},
		},
	}}
	srv := httptest.NewServer(NewServerFor(runner, nil).Handler())
	defer srv.Close()
	id := submitAndFinish(t, srv, m)

	// The status page filters the lease feed down to this job's keys.
	r, err := http.Get(srv.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	st := decode[struct {
		LeaseEvents []LeaseEvent `json:"lease_events"`
	}](t, r)
	if len(st.LeaseEvents) != 1 || st.LeaseEvents[0].Key != key || st.LeaseEvents[0].Worker != "w1" {
		t.Fatalf("lease_events = %+v, want just this job's grant", st.LeaseEvents)
	}

	r, err = http.Get(srv.URL + "/jobs/" + id + "?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", r.StatusCode)
	}
	trace := decode[struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}](t, r)
	runner.mu.Lock()
	gotKeys := runner.gotKeys
	runner.mu.Unlock()
	if len(gotKeys) != 1 || gotKeys[0] != key {
		t.Fatalf("trace export asked for keys %v, want [%s]", gotKeys, key)
	}
	seen := map[string]bool{}
	for _, e := range trace.TraceEvents {
		seen[e.Name] = true
		if e.Name == "process_name" {
			if n, _ := e.Args["name"].(string); n != "" {
				seen[n] = true
			}
		}
	}
	for _, want := range []string{"job", "execute", "coordinator", "w1"} {
		if !seen[want] {
			t.Errorf("trace missing %q; events: %v", want, seen)
		}
	}

	// A plain in-process pool has no distributed spans to export.
	plain := startTestServer(t, func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	})
	pid := submitAndFinish(t, plain, m)
	r, err = http.Get(plain.URL + "/jobs/" + pid + "?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotImplemented {
		t.Errorf("plain-pool trace status = %d, want 501", r.StatusCode)
	}
}

// A cluster-backed server exposes the cluster_* families on the
// Prometheus endpoint — and the whole payload stays grammatical.
func TestServerClusterMetricFamilies(t *testing.T) {
	pool := New(Options{Workers: 2, Run: func(ctx context.Context, s Spec) (sim.Result, error) {
		return fakeResult(1), nil
	}})
	defer pool.Close()
	runner := &fakeClusterRunner{pool: pool, snap: ClusterSnapshot{
		Workers: 3, TasksPending: 2, LeasesActive: 1,
		LeaseExpirations: 4, Steals: 2, LateResults: 1, Completed: 10,
		Store: &StoreStats{Segmented: true, Segments: 2, Entries: 10, CacheHits: 7, CacheMisses: 3, Compactions: 1},
	}}
	srv := httptest.NewServer(NewServerFor(runner, nil).Handler())
	defer srv.Close()

	r, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := prom.Lint(payload); err != nil {
		t.Fatalf("prometheus payload fails lint: %v\n%s", err, payload)
	}
	for _, family := range []string{
		"cluster_workers", "cluster_tasks_pending", "cluster_leases_active",
		"cluster_lease_expirations_total", "cluster_steals_total",
		"cluster_late_results_total", "cluster_completed_total",
		"cluster_store_cache_hits_total", "cluster_store_cache_misses_total",
	} {
		if !strings.Contains(string(payload), "\n"+family) {
			t.Errorf("family %s missing from scrape payload", family)
		}
	}

	// The JSON view and the SSE payload carry the same snapshot.
	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mv := decode[struct {
		Cluster *ClusterSnapshot `json:"cluster"`
	}](t, r)
	if mv.Cluster == nil || mv.Cluster.Workers != 3 || mv.Cluster.Store.CacheHits != 7 {
		t.Fatalf("JSON metrics cluster view = %+v", mv.Cluster)
	}
}
