package farm

import (
	"sync"
	"time"

	prom "asdsim/internal/metrics"
)

// This file is the farm's SLO layer: availability ("runs succeed") and
// latency ("runs finish fast enough") objectives tracked as error
// budgets with multi-window burn rates, the standard fast/slow-burn
// alerting shape. A burn rate of 1.0 means the budget is being spent
// exactly at the rate that exhausts it at the objective horizon;
// sustained rates far above it on the short windows mean pages, on the
// long windows mean tickets.

// SLOConfig sets the objectives.
type SLOConfig struct {
	// AvailabilityObjective is the fraction of runs that must succeed
	// (default 0.999).
	AvailabilityObjective float64
	// LatencyObjective is the fraction of runs that must finish within
	// LatencyThresholdSec (default 0.95 within 30s).
	LatencyObjective    float64
	LatencyThresholdSec float64
}

// sloWindows are the burn-rate evaluation windows, label value and
// width in minutes.
var sloWindows = []struct {
	label string
	mins  int64
}{
	{"5m", 5}, {"30m", 30}, {"1h", 60}, {"6h", 360},
}

// sloRingMinutes covers the longest window plus the in-progress
// minute.
const sloRingMinutes = 361

// sloBucket is one minute of run traffic.
type sloBucket struct {
	minute int64 // unix minute stamp; 0 = never used
	total  uint64
	bad    uint64 // failed runs
	slow   uint64 // runs over the latency threshold
}

// SLOTracker accumulates run outcomes into a minute-bucket ring and
// computes windowed burn rates on scrape. Attach one to a Metrics with
// AttachSLO; it is safe for concurrent use.
type SLOTracker struct {
	cfg SLOConfig
	now func() time.Time

	mu    sync.Mutex
	ring  [sloRingMinutes]sloBucket
	total uint64
	bad   uint64
	slow  uint64
}

// NewSLOTracker builds a tracker; zero config fields get the defaults.
// now is injectable for tests; nil means the system clock.
func NewSLOTracker(cfg SLOConfig, now func() time.Time) *SLOTracker {
	if cfg.AvailabilityObjective <= 0 || cfg.AvailabilityObjective >= 1 {
		cfg.AvailabilityObjective = 0.999
	}
	if cfg.LatencyObjective <= 0 || cfg.LatencyObjective >= 1 {
		cfg.LatencyObjective = 0.95
	}
	if cfg.LatencyThresholdSec <= 0 {
		cfg.LatencyThresholdSec = 30
	}
	if now == nil {
		now = time.Now
	}
	return &SLOTracker{cfg: cfg, now: now}
}

// RecordRun feeds one terminal run into the tracker.
func (t *SLOTracker) RecordRun(ok bool, wallSec float64) {
	minute := t.now().Unix() / 60
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.ring[minute%sloRingMinutes]
	if b.minute != minute {
		*b = sloBucket{minute: minute}
	}
	b.total++
	t.total++
	if !ok {
		b.bad++
		t.bad++
	}
	if wallSec > t.cfg.LatencyThresholdSec {
		b.slow++
		t.slow++
	}
}

// window sums the ring over the trailing mins minutes.
func (t *SLOTracker) windowLocked(nowMinute, mins int64) (total, bad, slow uint64) {
	for i := range t.ring {
		b := &t.ring[i]
		if b.minute == 0 || b.minute <= nowMinute-mins || b.minute > nowMinute {
			continue
		}
		total += b.total
		bad += b.bad
		slow += b.slow
	}
	return total, bad, slow
}

// burn converts a bad fraction into a burn rate against an objective:
// badFraction / (1 - objective).
func burn(bad, total uint64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - objective)
}

// addTo renders the SLO families into reg.
func (t *SLOTracker) addTo(reg *prom.Registry) {
	nowMinute := t.now().Unix() / 60
	t.mu.Lock()
	defer t.mu.Unlock()

	obj := reg.Gauge("farm_slo_objective", "Configured objective per SLO.", "slo")
	obj.With("availability").Set(t.cfg.AvailabilityObjective)
	obj.With("latency").Set(t.cfg.LatencyObjective)
	reg.Gauge("farm_slo_latency_threshold_seconds",
		"Run wall-clock bound the latency SLO counts against.").With().Set(t.cfg.LatencyThresholdSec)

	avail := reg.Gauge("farm_slo_availability_burn_rate",
		"Failed-run budget burn rate over the trailing window (1.0 = spending exactly the budget).",
		"window")
	lat := reg.Gauge("farm_slo_latency_burn_rate",
		"Slow-run budget burn rate over the trailing window (1.0 = spending exactly the budget).",
		"window")
	for _, w := range sloWindows {
		total, bad, slow := t.windowLocked(nowMinute, w.mins)
		avail.With(w.label).Set(burn(bad, total, t.cfg.AvailabilityObjective))
		lat.With(w.label).Set(burn(slow, total, t.cfg.LatencyObjective))
	}

	rem := reg.Gauge("farm_slo_error_budget_remaining",
		"Fraction of the lifetime error budget left per SLO (negative = overspent).", "slo")
	rem.With("availability").Set(1 - burn(t.bad, t.total, t.cfg.AvailabilityObjective))
	rem.With("latency").Set(1 - burn(t.slow, t.total, t.cfg.LatencyObjective))
}
