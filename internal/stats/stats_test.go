package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
	if got := c.Ratio(Counter(40)); got != 0.25 {
		t.Errorf("Ratio = %v, want 0.25", got)
	}
	if got := c.Percent(Counter(40)); got != 25 {
		t.Errorf("Percent = %v, want 25", got)
	}
	if got := c.Ratio(0); got != 0 {
		t.Errorf("Ratio with zero denom = %v, want 0", got)
	}
}

func TestHistogramObserveAndClamp(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	h.Observe(9)  // clamps to 4
	h.Observe(0)  // clamps to 1
	h.Observe(-3) // clamps to 1
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Count(1) != 3 || h.Count(2) != 2 || h.Count(3) != 0 || h.Count(4) != 1 {
		t.Errorf("counts = %v", h)
	}
	if h.Count(0) != 0 || h.Count(5) != 0 {
		t.Errorf("out-of-range Count should be 0")
	}
}

func TestHistogramCumFromAbove(t *testing.T) {
	h := NewHistogram(5)
	for v := 1; v <= 5; v++ {
		h.ObserveN(v, uint64(v)) // 1,2,3,4,5 observations
	}
	if got := h.CumFromAbove(1); got != 15 {
		t.Errorf("CumFromAbove(1) = %d, want 15", got)
	}
	if got := h.CumFromAbove(3); got != 12 {
		t.Errorf("CumFromAbove(3) = %d, want 12", got)
	}
	if got := h.CumFromAbove(6); got != 0 {
		t.Errorf("CumFromAbove(6) = %d, want 0", got)
	}
	if got := h.CumFromAbove(-1); got != 15 {
		t.Errorf("CumFromAbove(-1) = %d, want 15", got)
	}
}

func TestHistogramFracAndFractions(t *testing.T) {
	h := NewHistogram(2)
	h.ObserveN(1, 3)
	h.ObserveN(2, 1)
	if got := h.Frac(1); got != 0.75 {
		t.Errorf("Frac(1) = %v, want 0.75", got)
	}
	fr := h.Fractions()
	if fr[0] != 0.75 || fr[1] != 0.25 {
		t.Errorf("Fractions = %v", fr)
	}
	empty := NewHistogram(2)
	if empty.Frac(1) != 0 {
		t.Errorf("empty Frac should be 0")
	}
}

func TestHistogramResetClone(t *testing.T) {
	h := NewHistogram(3)
	h.ObserveN(2, 7)
	c := h.Clone()
	h.Reset()
	if h.Total() != 0 || h.Count(2) != 0 {
		t.Errorf("Reset failed: %v", h)
	}
	if c.Total() != 7 || c.Count(2) != 7 {
		t.Errorf("Clone affected by Reset: %v", c)
	}
}

func TestHistogramL1Distance(t *testing.T) {
	a := NewHistogram(2)
	b := NewHistogram(2)
	a.ObserveN(1, 10)
	b.ObserveN(2, 10)
	if got := a.L1Distance(b); math.Abs(got-2) > 1e-12 {
		t.Errorf("L1 = %v, want 2", got)
	}
	if got := a.L1Distance(a.Clone()); got != 0 {
		t.Errorf("self L1 = %v, want 0", got)
	}
}

// Property: the cumulative-from-above function is non-increasing in v and
// CumFromAbove(1) equals Total.
func TestHistogramCumMonotone(t *testing.T) {
	f := func(obs []uint8) bool {
		h := NewHistogram(16)
		for _, o := range obs {
			h.Observe(int(o % 20))
		}
		if h.CumFromAbove(1) != h.Total() {
			return false
		}
		for v := 1; v < 16; v++ {
			if h.CumFromAbove(v) < h.CumFromAbove(v+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.ObserveN(2, 2)
	h.ObserveN(4, 2)
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if NewHistogram(3).Mean() != 0 {
		t.Errorf("empty Mean should be 0")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewHistogram(0) should panic")
		}
	}()
	NewHistogram(0)
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	s.Counter("b").Inc()
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if s.Get("b") != 3 || s.Get("a") != 1 || s.Get("zzz") != 0 {
		t.Errorf("Get wrong: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positive = %v, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	// 10 observations of 1..10: the q-quantile is ceil(10q).
	for v := 1; v <= 10; v++ {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want int
	}{{0, 1}, {0.1, 1}, {0.5, 5}, {0.95, 10}, {1, 10}, {1.5, 10}, {-1, 1}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	// Skewed: everything in bucket 3.
	h.Reset()
	h.ObserveN(3, 100)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 3 {
			t.Errorf("skewed Quantile(%v) = %d, want 3", q, got)
		}
	}
}
