// Package stats provides the measurement substrate used throughout the
// simulator: named counters, bounded integer histograms, and simple
// derived-rate helpers. All types are deterministic and allocation-light
// so they can live on hot simulation paths.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Ratio returns c / denom as a float, or 0 when denom is zero.
func (c Counter) Ratio(denom Counter) float64 {
	if denom == 0 {
		return 0
	}
	return float64(c) / float64(denom)
}

// Percent returns 100 * c / denom, or 0 when denom is zero.
func (c Counter) Percent(denom Counter) float64 { return 100 * c.Ratio(denom) }

// Histogram is a bounded histogram over the integers [1, N]; values above
// N accumulate in the final bucket, matching the paper's Stream Length
// Histogram convention where the rightmost bar is "length >= n_s".
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with n buckets covering values 1..n.
func NewHistogram(n int) *Histogram {
	if n < 1 {
		panic(fmt.Sprintf("stats: histogram needs at least 1 bucket, got %d", n))
	}
	return &Histogram{buckets: make([]uint64, n)}
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Observe records one occurrence of value v (v < 1 is clamped to 1,
// v > N to N).
//
//asd:hotpath
func (h *Histogram) Observe(v int) { h.ObserveN(v, 1) }

// ObserveN records n occurrences of value v.
//
//asd:hotpath
func (h *Histogram) ObserveN(v int, n uint64) {
	if v < 1 {
		v = 1
	}
	if v > len(h.buckets) {
		v = len(h.buckets)
	}
	h.buckets[v-1] += n
	h.total += n
}

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) uint64 {
	if v < 1 || v > len(h.buckets) {
		return 0
	}
	return h.buckets[v-1]
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Frac returns the fraction of observations equal to v.
func (h *Histogram) Frac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// CumFromAbove returns the number of observations with value >= v.
func (h *Histogram) CumFromAbove(v int) uint64 {
	if v < 1 {
		v = 1
	}
	var sum uint64
	for i := v; i <= len(h.buckets); i++ {
		sum += h.buckets[i-1]
	}
	return sum
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.total = 0
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram(len(h.buckets))
	copy(c.buckets, h.buckets)
	c.total = h.total
	return c
}

// Fractions returns the per-bucket fractions as a slice indexed by value-1.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.buckets))
	if h.total == 0 {
		return out
	}
	for i, b := range h.buckets {
		out[i] = float64(b) / float64(h.total)
	}
	return out
}

// L1Distance returns the L1 distance between the fraction vectors of two
// histograms; used to quantify SLH-approximation accuracy (paper Fig. 16).
func (h *Histogram) L1Distance(o *Histogram) float64 {
	a, b := h.Fractions(), o.Fractions()
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var d float64
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d += math.Abs(av - bv)
	}
	return d
}

// histogramWire is the JSON form of Histogram; total is derived from
// the buckets on decode, so only the buckets travel.
type histogramWire struct {
	Buckets []uint64 `json:"buckets"`
}

// MarshalJSON implements json.Marshaler, so results embedding
// histograms persist faithfully (the zero-value struct would otherwise
// serialize as "{}" and silently drop the data).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramWire{Buckets: h.buckets})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Buckets) == 0 {
		return fmt.Errorf("stats: histogram needs at least 1 bucket")
	}
	h.buckets = w.Buckets
	h.total = 0
	for _, b := range w.Buckets {
		h.total += b
	}
	return nil
}

// String renders the histogram as "v:count" pairs for debugging.
func (h *Histogram) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, b := range h.buckets {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%d", i+1, b)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Mean returns the mean observed value (values clamped into [1,N]).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, b := range h.buckets {
		sum += float64(i+1) * float64(b)
	}
	return sum / float64(h.total)
}

// Quantile returns the smallest bucket value v in [1, N] such that at
// least q (0..1) of all observations are <= v; 0 when the histogram is
// empty. With bucketed data this is the conservative (upper-bound)
// quantile — the true q-quantile lies at or below the returned bucket.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := q * float64(h.total)
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if float64(cum) >= need && cum > 0 {
			return i + 1
		}
	}
	return len(h.buckets)
}

// Set is a string-keyed collection of counters with deterministic listing
// order, used for per-run metric dumps.
type Set struct {
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns the counter registered under name, creating it if
// necessary.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = new(Counter)
		s.counters[name] = c
	}
	return c
}

// Names returns all registered counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the value of a counter (0 if absent).
func (s *Set) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// GeoMean returns the geometric mean of xs; it ignores non-positive
// entries the way the paper's "average improvement" summaries must (a 0%
// gain is kept by mapping through 1+x). Pass already-shifted values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
