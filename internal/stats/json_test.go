package stats

import (
	"encoding/json"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(5)
	h.Observe(1)
	h.ObserveN(3, 7)
	h.Observe(9) // clamps into the final bucket

	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"buckets":[1,0,7,0,1]}`
	if string(data) != want {
		t.Fatalf("marshal = %s, want %s", data, want)
	}

	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() || back.Buckets() != h.Buckets() {
		t.Fatalf("round trip lost shape: total=%d buckets=%d", back.Total(), back.Buckets())
	}
	for v := 1; v <= 5; v++ {
		if back.Count(v) != h.Count(v) {
			t.Errorf("bucket %d: got %d want %d", v, back.Count(v), h.Count(v))
		}
	}
}

func TestHistogramUnmarshalRejectsEmpty(t *testing.T) {
	var h Histogram
	if err := json.Unmarshal([]byte(`{"buckets":[]}`), &h); err == nil {
		t.Fatal("expected error for empty bucket list")
	}
}
