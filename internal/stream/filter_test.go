package stream

import (
	"testing"

	"asdsim/internal/mem"
)

type endRec struct {
	length int
	dir    mem.Direction
}

func collect() (*[]endRec, EndFunc) {
	var ends []endRec
	return &ends, func(l int, d mem.Direction) { ends = append(ends, endRec{l, d}) }
}

func newTest(slots int, life uint64) (*Filter, *[]endRec) {
	ends, fn := collect()
	return NewFilter(Config{Slots: slots, Lifetime: life}, fn), ends
}

func TestNewFilterPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"slots":    {Slots: 0, Lifetime: 1},
		"lifetime": {Slots: 1, Lifetime: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewFilter(cfg, nil)
		}()
	}
}

func TestAscendingStreamDetection(t *testing.T) {
	f, _ := newTest(4, 100)
	obs := f.Observe(10, 0)
	if obs.Length != 1 || obs.Dir != mem.Up || !obs.Tracked {
		t.Fatalf("first obs = %+v", obs)
	}
	obs = f.Observe(11, 1)
	if obs.Length != 2 || obs.Dir != mem.Up {
		t.Fatalf("second obs = %+v", obs)
	}
	obs = f.Observe(12, 2)
	if obs.Length != 3 {
		t.Fatalf("third obs = %+v", obs)
	}
	if f.Observations != 3 {
		t.Errorf("Observations = %d", f.Observations)
	}
}

func TestDescendingStreamDetection(t *testing.T) {
	f, _ := newTest(4, 100)
	f.Observe(20, 0)
	obs := f.Observe(19, 1)
	if obs.Length != 2 || obs.Dir != mem.Down {
		t.Fatalf("obs = %+v, want length 2 Down", obs)
	}
	obs = f.Observe(18, 2)
	if obs.Length != 3 || obs.Dir != mem.Down {
		t.Fatalf("obs = %+v, want length 3 Down", obs)
	}
}

func TestDirectionOnlyFlipsAtLengthOne(t *testing.T) {
	f, _ := newTest(4, 100)
	f.Observe(10, 0)
	f.Observe(11, 0) // committed Up, length 2
	obs := f.Observe(10, 0)
	// 10 is not 12 (next Up) and the slot has length 2, so this is a new
	// stream, not a direction flip.
	if obs.Length != 1 {
		t.Fatalf("obs = %+v, want a fresh length-1 stream", obs)
	}
}

func TestRepeatedHeadAccess(t *testing.T) {
	f, _ := newTest(4, 100)
	f.Observe(10, 0)
	obs := f.Observe(10, 1)
	if obs.Length != 1 || !obs.Tracked {
		t.Fatalf("repeat obs = %+v", obs)
	}
	if f.Live() != 1 {
		t.Errorf("Live = %d, want 1 (no duplicate slot)", f.Live())
	}
}

func TestTwoInterleavedStreams(t *testing.T) {
	f, _ := newTest(4, 100)
	f.Observe(10, 0)
	f.Observe(500, 0)
	a := f.Observe(11, 0)
	b := f.Observe(501, 0)
	if a.Length != 2 || b.Length != 2 {
		t.Fatalf("interleaved lengths = %d, %d, want 2, 2", a.Length, b.Length)
	}
	if f.Live() != 2 {
		t.Errorf("Live = %d", f.Live())
	}
}

func TestOverflowRecordsLengthOne(t *testing.T) {
	f, ends := newTest(2, 100)
	f.Observe(10, 0)
	f.Observe(20, 0)
	obs := f.Observe(30, 0) // no vacant slot
	if obs.Tracked {
		t.Fatal("overflow observation should be untracked")
	}
	if f.Overflows != 1 {
		t.Errorf("Overflows = %d", f.Overflows)
	}
	if len(*ends) != 1 || (*ends)[0].length != 1 {
		t.Errorf("ends = %v, want one length-1 end", *ends)
	}
}

func TestLifetimeExpiry(t *testing.T) {
	f, ends := newTest(2, 100)
	f.Observe(10, 0)
	f.Observe(11, 50) // countdown reset: expires at 150
	f.Tick(149)
	if len(*ends) != 0 {
		t.Fatalf("premature expiry: %v", *ends)
	}
	f.Tick(150)
	if len(*ends) != 1 || (*ends)[0].length != 2 || (*ends)[0].dir != mem.Up {
		t.Fatalf("ends = %v, want one length-2 Up", *ends)
	}
	if f.Live() != 0 {
		t.Errorf("Live = %d after expiry", f.Live())
	}
}

// A hit must reset the countdown, not accumulate it: a long-lived stream
// that dies must vacate its slot Lifetime cycles after its last Read
// (otherwise dead streams clog the filter and everything overflows).
func TestLifetimeDoesNotAccumulate(t *testing.T) {
	f, ends := newTest(2, 100)
	now := uint64(0)
	for i := 0; i < 1000; i++ { // 1000-read stream
		f.Observe(mem.Line(i), now)
		now += 10
	}
	f.Tick(now + 100)
	if len(*ends) != 1 {
		t.Fatalf("long stream never expired: %v live=%d", *ends, f.Live())
	}
}

func TestExpiryMakesRoom(t *testing.T) {
	f, _ := newTest(1, 100)
	f.Observe(10, 0)
	obs := f.Observe(50, 200) // slot expired at 100, so 50 allocates
	if !obs.Tracked || obs.Length != 1 {
		t.Fatalf("obs = %+v", obs)
	}
	if f.Overflows != 0 {
		t.Errorf("Overflows = %d", f.Overflows)
	}
}

func TestFlushEpoch(t *testing.T) {
	f, ends := newTest(4, 1000)
	f.Observe(10, 0)
	f.Observe(11, 0)
	f.Observe(70, 0)
	f.FlushEpoch()
	if f.Live() != 0 {
		t.Fatalf("Live = %d after flush", f.Live())
	}
	if len(*ends) != 2 {
		t.Fatalf("ends = %v, want 2 streams", *ends)
	}
	lengths := map[int]int{}
	for _, e := range *ends {
		lengths[e.length]++
	}
	if lengths[2] != 1 || lengths[1] != 1 {
		t.Errorf("flushed lengths = %v", lengths)
	}
}

func TestNilEndFunc(t *testing.T) {
	f := NewFilter(Config{Slots: 1, Lifetime: 10}, nil)
	f.Observe(1, 0)
	f.FlushEpoch() // must not panic
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Slots != 8 {
		t.Errorf("default Slots = %d, want 8 (paper §5.1)", c.Slots)
	}
	if c.Lifetime == 0 {
		t.Error("default Lifetime must be positive")
	}
}

func BenchmarkObserve(b *testing.B) {
	f := NewFilter(DefaultConfig(), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Observe(mem.Line(i%1024), uint64(i))
	}
}

// Conservation: every observation either extends/creates a tracked
// stream or is recorded as an overflow single, so the lengths of ended
// plus live streams plus overflows account for all observations exactly.
func TestObservationConservation(t *testing.T) {
	seeds := []uint64{1, 7, 99, 12345}
	for _, seed := range seeds {
		var endedLen int
		f := NewFilter(Config{Slots: 4, Lifetime: 300}, func(l int, _ mem.Direction) {
			endedLen += l
		})
		// Pseudo-random walk mixing streams, singles, and quiet gaps.
		x := seed
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		now := uint64(0)
		var line mem.Line
		for i := 0; i < 3000; i++ {
			switch next() % 4 {
			case 0:
				line = mem.Line(next() % 4096) // jump
			default:
				line++ // continue a run
			}
			now += next() % 200
			f.Observe(line, now)
		}
		f.FlushEpoch() // ends all live streams through the callback
		if uint64(endedLen)+f.Repeats != f.Observations {
			t.Errorf("seed %d: ended-length sum %d + repeats %d != observations %d (overflows %d)",
				seed, endedLen, f.Repeats, f.Observations, f.Overflows)
		}
	}
}
