// Package stream implements the Stream Filter of the paper's §3.3: a
// small table of slots, one per Read stream observed at the memory
// controller, tracking each stream's last address, length, direction, and
// lifetime. Stream terminations feed the Stream Length Histogram.
package stream

import (
	"fmt"

	"asdsim/internal/mem"
)

// EndFunc is called whenever a stream leaves the filter (lifetime expiry,
// capacity overflow, or epoch flush) with its observed length and
// direction. The SLH machinery subscribes here.
type EndFunc func(length int, dir mem.Direction)

// SlotOp enumerates the slot-lifecycle stages reported through SlotFunc.
type SlotOp uint8

const (
	// SlotBirth: a vacant slot was allocated for a fresh stream head.
	SlotBirth SlotOp = iota
	// SlotExtend: a Read confirmed the stream (length grew, including the
	// length-1 direction flip).
	SlotExtend
	// SlotEnd: the slot was retired (lifetime expiry or epoch flush) and
	// its stream fed the SLH.
	SlotEnd
)

// SlotFunc observes slot lifecycle stages for the provenance layer: op,
// the CPU cycle, the slot's head line, its length and direction after
// the stage. Hooks run on the filter's hot path and must not perturb it
// (no allocation, no locking); nil means no observation.
type SlotFunc func(op SlotOp, now uint64, line mem.Line, length int, dir mem.Direction)

// Config holds filter parameters.
type Config struct {
	// Slots is the number of streams tracked concurrently (8 per thread
	// in the paper's evaluated configuration).
	Slots int
	// Lifetime is the slot lifetime in CPU cycles. §3.3 says a matching
	// Read increments the lifetime by a predetermined value; a hardware
	// lifetime counter saturates at its width, so the model equivalent
	// is that each hit resets the countdown: a slot expires Lifetime
	// cycles after its last matching Read.
	Lifetime uint64
}

// DefaultConfig returns the paper's configuration: 8 slots. The lifetime
// value is not given in the paper; 2048 CPU cycles rides out several DRAM
// round-trips between consecutive stream reads while still letting dead
// streams vacate their slots before the filter thrashes.
func DefaultConfig() Config { return Config{Slots: 8, Lifetime: 1280} }

// slot is one tracked stream.
type slot struct {
	valid     bool
	last      mem.Line
	length    int
	dir       mem.Direction
	expiresAt uint64
}

// Filter is the Stream Filter.
type Filter struct {
	cfg    Config
	slots  []slot
	onEnd  EndFunc
	onSlot SlotFunc

	// minExpiry is a lower bound on the earliest expiresAt among valid
	// slots (^uint64(0) when none can expire), letting the per-cycle
	// expiry sweep early-exit while nothing has run out.
	minExpiry uint64

	// lastNow is the most recent cycle presented to Observe or Tick; it
	// stamps slot-end hooks fired from FlushEpoch, which has no cycle of
	// its own.
	lastNow uint64

	// Observations counts Reads presented to the filter.
	Observations uint64
	// Overflows counts Reads that could not allocate a slot.
	Overflows uint64
	// Repeats counts Reads that re-touched a stream's head line
	// (lifetime refresh without a length change).
	Repeats uint64
}

// NewFilter returns a filter with cfg; onEnd may be nil.
func NewFilter(cfg Config, onEnd EndFunc) *Filter {
	if cfg.Slots <= 0 {
		panic(fmt.Sprintf("stream: Slots must be positive, got %d", cfg.Slots))
	}
	if cfg.Lifetime == 0 {
		panic("stream: Lifetime must be positive")
	}
	return &Filter{cfg: cfg, slots: make([]slot, cfg.Slots), onEnd: onEnd, minExpiry: ^uint64(0)}
}

// SetSlotHook installs (or clears, with nil) the slot-lifecycle hook.
// Install everything before the run starts; the hook must not call back
// into the filter.
func (f *Filter) SetSlotHook(h SlotFunc) { f.onSlot = h }

// Observation is the filter's verdict on one Read.
type Observation struct {
	// Length is the detected current stream length including this Read.
	Length int
	// Dir is the stream's direction.
	Dir mem.Direction
	// Tracked is false when the Read could not be associated with any
	// slot (filter full); the paper generates no prefetch in that case
	// but still updates the SLH as if a length-1 stream were seen.
	Tracked bool
}

// Observe presents a Read for line at CPU cycle now and returns the
// stream observation. Expired slots are retired first.
//
//asd:hotpath
func (f *Filter) Observe(line mem.Line, now uint64) Observation {
	f.Observations++
	f.lastNow = now
	f.expire(now)

	// A Read matching the most recent element of a tracked stream
	// extends it. Per §3.3 a slot of length 1 has not committed to a
	// direction yet: a Read one line below flips it to Negative.
	for i := range f.slots {
		s := &f.slots[i]
		if !s.valid {
			continue
		}
		switch {
		case line == s.last.Next(int(s.dir)):
			s.length++
			s.last = line
			s.expiresAt = now + f.cfg.Lifetime
			f.noteExpiry(s.expiresAt)
			if f.onSlot != nil {
				f.onSlot(SlotExtend, now, line, s.length, s.dir) //asd:allow hotpath-noalloc provenance hook wired once before the run; the recorder's handler is itself checked
			}
			return Observation{Length: s.length, Dir: s.dir, Tracked: true}
		case s.length == 1 && line == s.last.Next(-1):
			s.dir = mem.Down
			s.length = 2
			s.last = line
			s.expiresAt = now + f.cfg.Lifetime
			f.noteExpiry(s.expiresAt)
			if f.onSlot != nil {
				f.onSlot(SlotExtend, now, line, 2, mem.Down) //asd:allow hotpath-noalloc provenance hook wired once before the run; the recorder's handler is itself checked
			}
			return Observation{Length: 2, Dir: mem.Down, Tracked: true}
		case line == s.last:
			// Repeated access to the stream head: refresh lifetime,
			// no length change.
			f.Repeats++
			s.expiresAt = now + f.cfg.Lifetime
			f.noteExpiry(s.expiresAt)
			return Observation{Length: s.length, Dir: s.dir, Tracked: true}
		}
	}

	// Not part of any stream: allocate a vacant slot if there is one.
	for i := range f.slots {
		s := &f.slots[i]
		if s.valid {
			continue
		}
		*s = slot{valid: true, last: line, length: 1, dir: mem.Up, expiresAt: now + f.cfg.Lifetime}
		f.noteExpiry(s.expiresAt)
		if f.onSlot != nil {
			f.onSlot(SlotBirth, now, line, 1, mem.Up) //asd:allow hotpath-noalloc provenance hook wired once before the run; the recorder's handler is itself checked
		}
		return Observation{Length: 1, Dir: mem.Up, Tracked: true}
	}

	// Filter full: record a length-1 stream in the SLH, generate nothing.
	f.Overflows++
	f.end(1, mem.Up)
	return Observation{Length: 1, Dir: mem.Up, Tracked: false}
}

// noteExpiry lowers the cached expiry bound to cover a refreshed slot.
func (f *Filter) noteExpiry(at uint64) {
	if at < f.minExpiry {
		f.minExpiry = at
	}
}

// expire retires slots whose lifetime has run out at cycle now. While
// the earliest possible expiry is still in the future the sweep is
// skipped: no slot can have run out, so skipping is invisible.
func (f *Filter) expire(now uint64) {
	if now < f.minExpiry {
		return
	}
	min := ^uint64(0)
	for i := range f.slots {
		s := &f.slots[i]
		if !s.valid {
			continue
		}
		if s.expiresAt <= now {
			f.end(s.length, s.dir)
			if f.onSlot != nil {
				f.onSlot(SlotEnd, now, s.last, s.length, s.dir) //asd:allow hotpath-noalloc provenance hook wired once before the run; the recorder's handler is itself checked
			}
			s.valid = false
		} else if s.expiresAt < min {
			min = s.expiresAt
		}
	}
	f.minExpiry = min
}

// Tick retires expired slots without observing a Read; the memory
// controller calls this periodically so stream terminations reach the SLH
// promptly even on quiet channels.
//
//asd:hotpath
func (f *Filter) Tick(now uint64) {
	f.lastNow = now
	f.expire(now)
}

// FlushEpoch evicts every stream (called at each epoch boundary: "At the
// end of each epoch, all streams are evicted from the Stream Filter").
func (f *Filter) FlushEpoch() {
	for i := range f.slots {
		s := &f.slots[i]
		if s.valid {
			f.end(s.length, s.dir)
			if f.onSlot != nil {
				f.onSlot(SlotEnd, f.lastNow, s.last, s.length, s.dir) //asd:allow hotpath-noalloc provenance hook wired once before the run; the recorder's handler is itself checked
			}
			s.valid = false
		}
	}
	f.minExpiry = ^uint64(0)
}

// Live returns the number of valid slots (for tests and reporting).
func (f *Filter) Live() int {
	n := 0
	for i := range f.slots {
		if f.slots[i].valid {
			n++
		}
	}
	return n
}

func (f *Filter) end(length int, dir mem.Direction) {
	if f.onEnd != nil {
		f.onEnd(length, dir) //asd:allow hotpath-noalloc end-of-stream callback wired once at construction; the ASD engine's handler is itself checked
	}
}
