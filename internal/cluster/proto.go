package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"asdsim/internal/farm"
	"asdsim/internal/obs/span"
)

// ProtocolVersion gates coordinator/worker compatibility; a worker
// built at a different version is refused at registration.
const ProtocolVersion = 1

// Wire errors. The rpc transport maps these to/from WireError codes so
// a worker sees the same sentinel across loopback and HTTP.
var (
	// ErrUnknownWorker means the worker id is not (or no longer)
	// registered — its liveness expired. Re-register and continue.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
	// ErrLeaseExpired means a completion arrived after its lease was
	// reclaimed; the result was discarded (deterministic sims make the
	// replacement run bit-identical, so nothing is lost).
	ErrLeaseExpired = errors.New("cluster: lease expired")
	// ErrBadRequest covers malformed or inconsistent requests.
	ErrBadRequest = errors.New("cluster: bad request")
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human label for dashboards and logs; uniqueness is not
	// required (the coordinator assigns the identity).
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// RegisterResponse carries the assigned identity and the coordinator's
// timing contract.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is how long a granted lease lives without renewal.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the cadence the worker should heartbeat at to keep
	// its registration and leases alive.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest refreshes a worker's liveness and extends its
// leases.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	// Stats optionally piggybacks the worker's local metrics snapshot;
	// the coordinator folds it into the fleet_* federation families.
	// Optional so pre-federation workers stay wire-compatible.
	Stats *WorkerSnapshot `json:"stats,omitempty"`
}

// WorkerSnapshot is the metrics-federation payload: the worker's local
// pool counters and its run wall-clock histogram, shipped whole on
// each carrying heartbeat (counts are cumulative, so a lost heartbeat
// costs nothing).
type WorkerSnapshot struct {
	Pool farm.Snapshot     `json:"pool"`
	Wall farm.WallSnapshot `json:"wall"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// Leases is how many leases the coordinator still attributes to the
	// worker — a worker holding more has lost some to expiry.
	Leases int `json:"leases"`
}

// AcquireRequest asks for one leased task.
type AcquireRequest struct {
	WorkerID string `json:"worker_id"`
}

// AcquireResponse carries a grant, or none when the queue is empty.
type AcquireResponse struct {
	Grant *Grant `json:"grant,omitempty"`
	// Pending is the post-grant queue depth, a poll-backoff hint.
	Pending int `json:"pending"`
}

// Grant is one leased unit of work.
type Grant struct {
	LeaseID string `json:"lease_id"`
	// Key is the spec's content address (farm.Spec.Key()); Complete
	// must return an outcome carrying the same key.
	Key   string    `json:"key"`
	Spec  farm.Spec `json:"spec"`
	TTLMS int64     `json:"ttl_ms"`
	// Trace is the distributed-tracing context: the spec's trace ID and
	// the coordinator-side lease span to parent worker spans under.
	// Optional so pre-tracing peers stay wire-compatible.
	Trace *span.Context `json:"trace,omitempty"`
}

// CompleteRequest returns a leased task's terminal outcome.
type CompleteRequest struct {
	WorkerID string       `json:"worker_id"`
	LeaseID  string       `json:"lease_id"`
	Outcome  farm.Outcome `json:"outcome"`
	// Spans carries the worker-side spans recorded while executing the
	// lease (bounded by maxSpansPerComplete on ingest).
	Spans []span.Span `json:"spans,omitempty"`
}

// maxSpansPerComplete bounds how many worker spans one completion may
// ship; the coordinator truncates beyond it rather than letting a
// buggy worker balloon the envelope's span buffer.
const maxSpansPerComplete = 256

// CompleteResponse acknowledges an accepted completion.
type CompleteResponse struct{}

// WireError is an error crossing the wire with a machine-readable code.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes carried by WireError.
const (
	CodeUnknownWorker = "unknown_worker"
	CodeLeaseExpired  = "lease_expired"
	CodeBadRequest    = "bad_request"
)

// ToWire converts a coordinator error into its wire form.
func ToWire(err error) *WireError {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		return &WireError{Code: CodeUnknownWorker, Message: err.Error()}
	case errors.Is(err, ErrLeaseExpired):
		return &WireError{Code: CodeLeaseExpired, Message: err.Error()}
	default:
		return &WireError{Code: CodeBadRequest, Message: err.Error()}
	}
}

// FromWire converts a wire error back into the matching sentinel so
// errors.Is works identically over loopback and HTTP.
func (e *WireError) FromWire() error {
	switch e.Code {
	case CodeUnknownWorker:
		return fmt.Errorf("%w: %s", ErrUnknownWorker, e.Message)
	case CodeLeaseExpired:
		return fmt.Errorf("%w: %s", ErrLeaseExpired, e.Message)
	default:
		return fmt.Errorf("%w: %s", ErrBadRequest, e.Message)
	}
}

// Message is the protocol envelope: a kind tag plus exactly one
// payload matching the kind. One envelope type (rather than per-route
// bodies) keeps the codec a single fuzzable surface.
type Message struct {
	Kind string `json:"kind"`

	Register    *RegisterRequest   `json:"register,omitempty"`
	Registered  *RegisterResponse  `json:"registered,omitempty"`
	Heartbeat   *HeartbeatRequest  `json:"heartbeat,omitempty"`
	HeartbeatOK *HeartbeatResponse `json:"heartbeat_ok,omitempty"`
	Acquire     *AcquireRequest    `json:"acquire,omitempty"`
	AcquireOK   *AcquireResponse   `json:"acquire_ok,omitempty"`
	Complete    *CompleteRequest   `json:"complete,omitempty"`
	CompleteOK  *CompleteResponse  `json:"complete_ok,omitempty"`
	Error       *WireError         `json:"error,omitempty"`
}

// payload returns the envelope's non-nil payload fields as (field
// name, matches-kind) pairs.
func (m *Message) payloads() (set []string, kindMatch bool) {
	check := func(name string, present bool) {
		if present {
			set = append(set, name)
			if name == m.Kind {
				kindMatch = true
			}
		}
	}
	check("register", m.Register != nil)
	check("registered", m.Registered != nil)
	check("heartbeat", m.Heartbeat != nil)
	check("heartbeat_ok", m.HeartbeatOK != nil)
	check("acquire", m.Acquire != nil)
	check("acquire_ok", m.AcquireOK != nil)
	check("complete", m.Complete != nil)
	check("complete_ok", m.CompleteOK != nil)
	check("error", m.Error != nil)
	return set, kindMatch
}

// Validate enforces the envelope invariant: a known kind, exactly one
// payload, and the payload matching the kind. Error envelopes must
// carry a code.
func (m *Message) Validate() error {
	set, kindMatch := m.payloads()
	if len(set) != 1 {
		return fmt.Errorf("%w: envelope carries %d payloads, want exactly 1", ErrBadRequest, len(set))
	}
	if !kindMatch {
		return fmt.Errorf("%w: kind %q does not match payload %q", ErrBadRequest, m.Kind, set[0])
	}
	if m.Kind == "error" && m.Error.Code == "" {
		return fmt.Errorf("%w: error envelope without a code", ErrBadRequest)
	}
	return nil
}

// maxMessageBytes bounds one envelope; a Result with its histograms is
// a few KB, so 4 MiB is generous while keeping hostile inputs cheap.
const maxMessageBytes = 4 << 20

// EncodeMessage renders a validated envelope.
func EncodeMessage(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(m)
}

// DecodeMessage parses and validates an envelope from arbitrary bytes.
// It never panics, whatever the input.
func DecodeMessage(data []byte) (*Message, error) {
	if len(data) > maxMessageBytes {
		return nil, fmt.Errorf("%w: message of %d bytes exceeds the %d limit", ErrBadRequest, len(data), maxMessageBytes)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
