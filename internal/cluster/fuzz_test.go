package cluster

import (
	"errors"
	"reflect"
	"testing"

	"asdsim/internal/farm"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

// encodeSeed builds a valid wire encoding for the fuzz corpus, failing
// the test (not the fuzz target) if the envelope itself is malformed.
func encodeSeed(t testing.TB, m *Message) []byte {
	t.Helper()
	data, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("seed envelope invalid: %v", err)
	}
	return data
}

// seedMessages covers every envelope kind, including the two payloads
// that embed full farm types (a Grant's Spec, a completion's Outcome).
func seedMessages(t testing.TB) [][]byte {
	t.Helper()
	spec := testSpec("GemsFDTD", sim.PMS)
	res := sim.Result{Cycles: 123456, Instructions: 654321}
	return [][]byte{
		encodeSeed(t, &Message{Kind: "register", Register: &RegisterRequest{Name: "node-3", Version: ProtocolVersion}}),
		encodeSeed(t, &Message{Kind: "registered", Registered: &RegisterResponse{WorkerID: "w-1", LeaseTTLMS: 15000, HeartbeatMS: 3333}}),
		encodeSeed(t, &Message{Kind: "heartbeat", Heartbeat: &HeartbeatRequest{WorkerID: "w-1"}}),
		encodeSeed(t, &Message{Kind: "heartbeat", Heartbeat: &HeartbeatRequest{WorkerID: "w-1",
			Stats: &WorkerSnapshot{
				Pool: farm.Snapshot{Workers: 2, Completed: 9, SimInstructions: 360000000},
				Wall: farm.WallSnapshot{Counts: []uint64{0, 0, 3, 6}, Sum: 4.25, Max: 1.7}}}}),
		encodeSeed(t, &Message{Kind: "heartbeat_ok", HeartbeatOK: &HeartbeatResponse{Leases: 2}}),
		encodeSeed(t, &Message{Kind: "acquire", Acquire: &AcquireRequest{WorkerID: "w-1"}}),
		encodeSeed(t, &Message{Kind: "acquire_ok", AcquireOK: &AcquireResponse{
			Grant: &Grant{LeaseID: "l-7", Key: spec.Key(), Spec: spec, TTLMS: 15000}, Pending: 4}}),
		encodeSeed(t, &Message{Kind: "acquire_ok", AcquireOK: &AcquireResponse{
			Grant: &Grant{LeaseID: "l-8", Key: spec.Key(), Spec: spec, TTLMS: 15000,
				Trace: &span.Context{TraceID: span.TraceIDFromKey(spec.Key()), Parent: 0xfeedface}}}}),
		encodeSeed(t, &Message{Kind: "acquire_ok", AcquireOK: &AcquireResponse{}}),
		encodeSeed(t, &Message{Kind: "complete", Complete: &CompleteRequest{WorkerID: "w-1", LeaseID: "l-7",
			Outcome: farm.Outcome{Key: spec.Key(), Benchmark: spec.Benchmark, Mode: spec.Mode,
				Engine: spec.Config.Engine.String(), Seed: spec.Config.Seed, Result: &res, Attempts: 1}}}),
		encodeSeed(t, &Message{Kind: "complete", Complete: &CompleteRequest{WorkerID: "w-2", LeaseID: "l-8",
			Outcome: farm.Outcome{Key: spec.Key(), Benchmark: spec.Benchmark, Mode: spec.Mode,
				Engine: spec.Config.Engine.String(), Seed: spec.Config.Seed, Result: &res, Attempts: 1},
			Spans: []span.Span{{TraceID: span.TraceIDFromKey(spec.Key()), ID: 0xfeedface, Parent: 0xabad1dea,
				Name: "execute", Node: "w2", Key: spec.Key(), StartUS: 1_700_000_000_000_000, DurUS: 2500,
				Attrs: []span.Attr{{Key: "lease", Value: "l-8"}}}}}}),
		encodeSeed(t, &Message{Kind: "complete_ok", CompleteOK: &CompleteResponse{}}),
		encodeSeed(t, &Message{Kind: "error", Error: &WireError{Code: CodeLeaseExpired, Message: "lease l-7 reclaimed"}}),
	}
}

// FuzzClusterCodec drives DecodeMessage with arbitrary bytes: it must
// never panic, and anything it accepts must survive an encode/decode
// round trip unchanged (the coordinator may re-frame any envelope).
func FuzzClusterCodec(f *testing.F) {
	for _, seed := range seedMessages(f) {
		f.Add(seed)
	}
	// Malformed shapes: junk, truncations, payload/kind mismatches,
	// double payloads, missing code.
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"kind":"register"}`))
	f.Add([]byte(`{"kind":"register","heartbeat":{"worker_id":"w-1"}}`))
	f.Add([]byte(`{"kind":"register","register":{"name":"a","version":1},"heartbeat":{"worker_id":"w-1"}}`))
	f.Add([]byte(`{"kind":"error","error":{"message":"no code"}}`))
	f.Add([]byte(`{"kind":"acquire_ok","acquire_ok":{"grant":{"spec":{"config":{"budget":1e309}}}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("DecodeMessage returned an invalid envelope: %v", verr)
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed the envelope:\n first: %+v\nsecond: %+v", m, m2)
		}
	})
}

func TestDecodeMessageRejectsMalformedEnvelopes(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ``},
		{"no payload", `{"kind":"register"}`},
		{"kind mismatch", `{"kind":"register","heartbeat":{"worker_id":"w-1"}}`},
		{"two payloads", `{"kind":"register","register":{"name":"a","version":1},"heartbeat":{"worker_id":"w-1"}}`},
		{"error without code", `{"kind":"error","error":{"message":"no code"}}`},
	}
	for _, tc := range cases {
		if _, err := DecodeMessage([]byte(tc.data)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
	if _, err := DecodeMessage(make([]byte, maxMessageBytes+1)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversize: err = %v, want ErrBadRequest", err)
	}
}

func TestWireErrorRoundTripPreservesSentinels(t *testing.T) {
	for _, sentinel := range []error{ErrUnknownWorker, ErrLeaseExpired, ErrBadRequest} {
		if back := ToWire(sentinel).FromWire(); !errors.Is(back, sentinel) {
			t.Errorf("wire round trip lost %v (got %v)", sentinel, back)
		}
	}
	if ToWire(errors.New("anything else")).Code != CodeBadRequest {
		t.Error("unclassified errors must map to bad_request")
	}
}
