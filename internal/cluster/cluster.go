// Package cluster distributes a farm spec matrix across worker nodes.
// A Coordinator owns the task state — registration, heartbeats with
// liveness expiry, lease-based assignment with bounded TTLs, stealing
// of expired leases — and implements farm.Runner, so the existing HTTP
// job API transparently executes on the fleet. farm.Spec.Key() (the
// SHA-256 spec hash) is the content address throughout: the shared
// segmented store resumes completed cells, coalesces duplicate
// submissions, and serves repeated queries without re-simulation.
// Because every simulation is a pure function of its spec, any
// scheduling — which worker, how many steals, what order — yields
// bit-identical outcomes to a serial run; the multi-node determinism
// test pins that under induced worker death.
//
// The coordinator core is deliberately passive: it spawns no
// goroutines and never reads the wall clock itself (the driver injects
// the clock), advancing lease and liveness state lazily on each
// request. That keeps the whole state machine single-threaded under
// one mutex and lets the asdlint determinism pass certify the package.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"asdsim/internal/farm"
	"asdsim/internal/obs/span"
)

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// renewal before its task is reclaimed (default 15s).
	LeaseTTL time.Duration
	// WorkerTTL is how long a silent worker stays registered
	// (default 10s); workers are told to heartbeat at TTL/3.
	WorkerTTL time.Duration
	// MaxLeaseLosses bounds how many times one task's lease may expire
	// before the task is failed instead of retried (default 5).
	MaxLeaseLosses int
	// Store is the shared result store: resumed reads and completed
	// writes. Optional; without it every batch re-executes.
	Store *farm.Store
	// Metrics receives the coordinator's pool-equivalent counters; one
	// is created if nil.
	Metrics *farm.Metrics
	// Now is the injected clock; the default is the system clock. Tests
	// substitute a fake to drive expiry deterministically.
	Now func() time.Time
	// Logger receives structured lifecycle records (worker join/leave,
	// steals, late results, task failures) with trace-ID/worker/key
	// fields. Optional; nil disables logging.
	Logger *slog.Logger
}

// New builds a Coordinator.
func New(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.WorkerTTL <= 0 {
		opts.WorkerTTL = 10 * time.Second
	}
	if opts.MaxLeaseLosses <= 0 {
		opts.MaxLeaseLosses = 5
	}
	if opts.Metrics == nil {
		opts.Metrics = farm.NewMetrics()
	}
	if opts.Now == nil {
		opts.Now = time.Now // clock injection point; never called in-package elsewhere
	}
	return &Coordinator{
		opts:    opts,
		spans:   span.NewRecorder("coordinator", opts.Now),
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*ctask),
		leases:  make(map[string]*lease),
		fleet:   make(map[string]*workerHealth),
	}
}

// Coordinator is the cluster's single source of truth. All state lives
// under one mutex; public methods sweep expired leases/workers first,
// mutate, then deliver completions outside the lock.
type Coordinator struct {
	opts     Options
	counters counters
	spans    *span.Recorder

	mu       sync.Mutex
	seq      int64 // id source for workers and leases
	workers  map[string]*workerState
	tasks    map[string]*ctask // by spec key
	pending  []string          // spec keys awaiting a lease, FIFO
	leases   map[string]*lease
	storeErr error // first store write failure, reported by RunBatch

	// fleet retains the last-known federation state per worker id,
	// including workers whose liveness has expired, so a mid-run kill
	// stays visible on /metrics and the dashboard.
	fleet  map[string]*workerHealth
	events leaseEventLog
}

// workerHealth is one worker's retained federation state.
type workerHealth struct {
	id, name string
	up       bool
	lastBeat time.Time
	snap     *WorkerSnapshot
}

// maxFleetEntries bounds the retained per-worker federation map; the
// oldest dead entries are evicted beyond it.
const maxFleetEntries = 64

// leaseEventLog is a fixed-size ring of recent lease transitions,
// consumed by the SSE stream and the job-status lease feed. Guarded by
// the coordinator mutex.
type leaseEventLog struct {
	seq int64
	buf []farm.LeaseEvent
}

const maxLeaseEvents = 256

func (l *leaseEventLog) add(now time.Time, event, key, worker string) {
	l.seq++
	e := farm.LeaseEvent{Seq: l.seq, Event: event, Key: key, Worker: worker, AtUS: now.UnixMicro()}
	if len(l.buf) >= maxLeaseEvents {
		copy(l.buf, l.buf[1:])
		l.buf[len(l.buf)-1] = e
		return
	}
	l.buf = append(l.buf, e)
}

// workerState is one registered node.
type workerState struct {
	id     string
	name   string
	expiry time.Time
}

// taskState is a ctask's lifecycle position.
type taskState uint8

const (
	taskPending taskState = iota
	taskLeased
)

// ctask is one unit of work, keyed by its spec hash. Duplicate
// submissions coalesce: each adds a waiter, the work runs once.
type ctask struct {
	key        string
	spec       farm.Spec
	state      taskState
	lastWorker string // previous lease holder; a different next holder is a steal
	losses     int    // leases lost to expiry or worker death
	waiters    []waiterRef

	// root is the job-lifecycle span, opened at first submission and
	// closed when the terminal outcome lands (or the batch cancels).
	root    *span.Active
	traceID string
}

// lease is one outstanding grant.
type lease struct {
	id     string
	key    string
	worker string
	expiry time.Time

	// sp is the lease span, recorded under the holder's name so a
	// worker that dies mid-lease still appears in the merged trace.
	sp       *span.Active
	renewals int
}

// waiterRef points at one slot of one waiting batch.
type waiterRef struct {
	b *batch
	i int
}

// delivery is a completed outcome owed to waiters, handed out of the
// locked region so batch callbacks never run under the coordinator
// mutex.
type delivery struct {
	refs []waiterRef
	o    farm.Outcome
}

func deliverAll(ds []delivery) {
	for _, d := range ds {
		for _, ref := range d.refs {
			ref.b.deliver(ref.i, d.o)
		}
	}
}

// batch tracks one RunBatch call.
type batch struct {
	mu        sync.Mutex
	out       []farm.Outcome
	remaining int
	dead      bool // cancelled; late deliveries are dropped
	done      chan struct{}
	onDone    func(farm.Outcome)
}

// deliver fills one slot and fires the observer; the batch mutex
// serializes onDone exactly like Pool.RunBatch does.
func (b *batch) deliver(i int, o farm.Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return
	}
	b.out[i] = o
	if b.onDone != nil {
		b.onDone(o)
	}
	b.remaining--
	if b.remaining == 0 {
		close(b.done)
	}
}

// abandon marks the batch cancelled and snapshots its outcomes so far.
func (b *batch) abandon() []farm.Outcome {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dead = true
	return append([]farm.Outcome(nil), b.out...)
}

// ms renders a duration for the wire.
func ms(d time.Duration) int64 { return int64(d / time.Millisecond) }

// workerLabelLocked returns the human label for a worker id: its
// registered name when known (live or retained), else the id itself.
func (c *Coordinator) workerLabelLocked(id string) string {
	if w := c.workers[id]; w != nil && w.name != "" {
		return w.name
	}
	if h := c.fleet[id]; h != nil && h.name != "" {
		return h.name
	}
	return id
}

// touchFleetLocked refreshes a worker's federation entry, evicting the
// oldest dead entries past the retention bound.
func (c *Coordinator) touchFleetLocked(id, name string, now time.Time, snap *WorkerSnapshot) {
	h := c.fleet[id]
	if h == nil {
		if len(c.fleet) >= maxFleetEntries {
			ids := make([]string, 0, len(c.fleet))
			for fid := range c.fleet {
				ids = append(ids, fid)
			}
			sort.Slice(ids, func(a, b int) bool {
				if len(ids[a]) != len(ids[b]) {
					return len(ids[a]) < len(ids[b])
				}
				return ids[a] < ids[b]
			})
			for _, fid := range ids {
				if !c.fleet[fid].up {
					delete(c.fleet, fid)
					break
				}
			}
		}
		h = &workerHealth{id: id}
		c.fleet[id] = h
	}
	if name != "" {
		h.name = name
	}
	h.up = true
	h.lastBeat = now
	if snap != nil {
		h.snap = snap
	}
}

// logInfo emits one structured record when a logger is configured.
func (c *Coordinator) logInfo(msg string, args ...any) {
	if c.opts.Logger != nil {
		c.opts.Logger.Info(msg, args...)
	}
}

// Metrics returns the coordinator's counters (farm.Runner).
func (c *Coordinator) Metrics() *farm.Metrics { return c.opts.Metrics }

// Workers returns the live registered node count (farm.Runner).
func (c *Coordinator) Workers() int {
	now := c.opts.Now()
	c.mu.Lock()
	ds := c.sweepLocked(now)
	n := len(c.workers)
	c.mu.Unlock()
	deliverAll(ds)
	return n
}

// ClusterSnapshot exports the fleet state for /metrics, the SSE stream
// and the dashboard (farm.ClusterSource).
func (c *Coordinator) ClusterSnapshot() farm.ClusterSnapshot {
	now := c.opts.Now()
	c.mu.Lock()
	ds := c.sweepLocked(now)
	snap := farm.ClusterSnapshot{
		Workers:          len(c.workers),
		TasksPending:     len(c.pending),
		LeasesActive:     len(c.leases),
		LeaseExpirations: c.counters.expirations.Load(),
		Steals:           c.counters.steals.Load(),
		LateResults:      c.counters.late.Load(),
		Completed:        c.counters.completed.Load(),
		LeaseEvents:      append([]farm.LeaseEvent(nil), c.events.buf...),
	}
	leasesByWorker := make(map[string]int, len(c.workers))
	lids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		lids = append(lids, id)
	}
	sort.Strings(lids)
	for _, id := range lids {
		leasesByWorker[c.leases[id].worker]++
	}
	fids := make([]string, 0, len(c.fleet))
	for id := range c.fleet {
		fids = append(fids, id)
	}
	sort.Slice(fids, func(a, b int) bool {
		if len(fids[a]) != len(fids[b]) {
			return len(fids[a]) < len(fids[b])
		}
		return fids[a] < fids[b]
	})
	for _, id := range fids {
		h := c.fleet[id]
		wh := farm.WorkerHealth{
			ID: h.id, Name: h.name, Up: h.up,
			HeartbeatAgeSec: now.Sub(h.lastBeat).Seconds(),
			Leases:          leasesByWorker[id],
		}
		if h.snap != nil {
			pool, wall := h.snap.Pool, h.snap.Wall
			wh.Pool, wh.Wall = &pool, &wall
		}
		snap.Fleet = append(snap.Fleet, wh)
	}
	c.mu.Unlock()
	deliverAll(ds)
	if c.opts.Store != nil {
		st := c.opts.Store.Stats()
		snap.Store = &st
	}
	return snap
}

// Spans returns the collected spans for the given spec keys
// (farm.TraceSource): the coordinator's own lifecycle spans plus every
// worker span shipped back with completions.
func (c *Coordinator) Spans(keys []string) []span.Span {
	return c.spans.SpansFor(keys)
}

// Register admits a worker and hands it the timing contract.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Version != ProtocolVersion {
		return RegisterResponse{}, fmt.Errorf("%w: worker speaks protocol %d, coordinator %d",
			ErrBadRequest, req.Version, ProtocolVersion)
	}
	now := c.opts.Now()
	c.mu.Lock()
	ds := c.sweepLocked(now)
	c.seq++
	w := &workerState{id: fmt.Sprintf("w-%d", c.seq), name: req.Name, expiry: now.Add(c.opts.WorkerTTL)}
	c.workers[w.id] = w
	c.touchFleetLocked(w.id, w.name, now, nil)
	c.updateGaugesLocked()
	c.mu.Unlock()
	deliverAll(ds)
	c.logInfo("worker registered", "worker", req.Name, "worker_id", w.id)
	return RegisterResponse{
		WorkerID:    w.id,
		LeaseTTLMS:  ms(c.opts.LeaseTTL),
		HeartbeatMS: ms(c.opts.WorkerTTL / 3),
	}, nil
}

// Heartbeat refreshes a worker's liveness and extends every lease it
// holds by the lease TTL.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	now := c.opts.Now()
	c.mu.Lock()
	ds := c.sweepLocked(now)
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		deliverAll(ds)
		return HeartbeatResponse{}, fmt.Errorf("%w: %q", ErrUnknownWorker, req.WorkerID)
	}
	w.expiry = now.Add(c.opts.WorkerTTL)
	c.touchFleetLocked(w.id, w.name, now, req.Stats)
	held := 0
	lids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		lids = append(lids, id)
	}
	sort.Strings(lids)
	for _, id := range lids {
		if l := c.leases[id]; l.worker == w.id {
			l.expiry = now.Add(c.opts.LeaseTTL)
			l.renewals++
			if l.sp != nil {
				c.spans.Event(span.TraceIDFromKey(l.key), l.sp.ID(), "renew", l.key,
					span.Attr{Key: "lease", Value: l.id})
			}
			held++
		}
	}
	c.mu.Unlock()
	deliverAll(ds)
	return HeartbeatResponse{Leases: held}, nil
}

// Acquire grants the oldest pending task under a fresh lease, or no
// grant when the queue is empty. Acquiring also refreshes the worker's
// liveness, so a busy poll loop needs no separate heartbeat.
func (c *Coordinator) Acquire(req AcquireRequest) (AcquireResponse, error) {
	now := c.opts.Now()
	c.mu.Lock()
	ds := c.sweepLocked(now)
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		deliverAll(ds)
		return AcquireResponse{}, fmt.Errorf("%w: %q", ErrUnknownWorker, req.WorkerID)
	}
	w.expiry = now.Add(c.opts.WorkerTTL)
	c.touchFleetLocked(w.id, w.name, now, nil)

	var t *ctask
	for len(c.pending) > 0 && t == nil {
		key := c.pending[0]
		c.pending = c.pending[1:]
		if cand := c.tasks[key]; cand != nil && cand.state == taskPending {
			t = cand
		}
	}
	if t == nil {
		c.updateGaugesLocked()
		c.mu.Unlock()
		deliverAll(ds)
		return AcquireResponse{}, nil
	}
	c.seq++
	l := &lease{id: fmt.Sprintf("l-%d", c.seq), key: t.key, worker: w.id, expiry: now.Add(c.opts.LeaseTTL)}
	c.leases[l.id] = l
	t.state = taskLeased
	label := c.workerLabelLocked(w.id)
	stolen := t.lastWorker != "" && t.lastWorker != w.id
	if stolen {
		c.counters.noteSteal()
		c.spans.Event(t.traceID, rootID(t), "steal", t.key,
			span.Attr{Key: "from", Value: c.workerLabelLocked(t.lastWorker)},
			span.Attr{Key: "to", Value: label})
		c.events.add(now, "steal", t.key, label)
	} else {
		c.events.add(now, "grant", t.key, label)
	}
	l.sp = c.spans.StartOn(label, t.traceID, rootID(t), "lease", t.key,
		span.Attr{Key: "lease", Value: l.id})
	t.lastWorker = w.id
	resp := AcquireResponse{
		Grant: &Grant{LeaseID: l.id, Key: t.key, Spec: t.spec, TTLMS: ms(c.opts.LeaseTTL),
			Trace: &span.Context{TraceID: t.traceID, Parent: l.sp.ID()}},
		Pending: len(c.pending),
	}
	c.updateGaugesLocked()
	c.mu.Unlock()
	deliverAll(ds)
	if stolen {
		c.logInfo("lease stolen", "key", t.key, "trace_id", t.traceID, "worker", label, "lease", l.id)
	}
	return resp, nil
}

// rootID returns the job span id of t, zero when tracing never opened
// one (a task created before spans existed cannot occur today, but the
// guard keeps the call total).
func rootID(t *ctask) span.ID {
	if t.root == nil {
		return 0
	}
	return t.root.ID()
}

// Complete accepts a leased task's outcome: persists it, feeds the
// metrics, and wakes every batch waiting on the key. A completion
// whose lease has already been reclaimed is rejected with
// ErrLeaseExpired — the replacement run produces the bit-identical
// result, so discarding the late copy loses nothing.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	now := c.opts.Now()
	c.mu.Lock()
	ds := c.sweepLocked(now)
	if w := c.workers[req.WorkerID]; w != nil {
		w.expiry = now.Add(c.opts.WorkerTTL)
	}
	l := c.leases[req.LeaseID]
	if l == nil || l.worker != req.WorkerID {
		c.counters.noteLate()
		label := c.workerLabelLocked(req.WorkerID)
		c.spans.Event(span.TraceIDFromKey(req.Outcome.Key), 0, "late-result", req.Outcome.Key,
			span.Attr{Key: "worker", Value: label},
			span.Attr{Key: "lease", Value: req.LeaseID})
		c.events.add(now, "late", req.Outcome.Key, label)
		c.updateGaugesLocked()
		c.mu.Unlock()
		deliverAll(ds)
		c.logInfo("late result rejected", "key", req.Outcome.Key,
			"trace_id", span.TraceIDFromKey(req.Outcome.Key), "worker", label, "lease", req.LeaseID)
		return CompleteResponse{}, fmt.Errorf("%w: lease %q", ErrLeaseExpired, req.LeaseID)
	}
	if req.Outcome.Key != l.key {
		c.mu.Unlock()
		deliverAll(ds)
		return CompleteResponse{}, fmt.Errorf("%w: outcome key %q does not match lease %q for %q",
			ErrBadRequest, req.Outcome.Key, req.LeaseID, l.key)
	}
	delete(c.leases, l.id)
	spans := req.Spans
	if len(spans) > maxSpansPerComplete {
		spans = spans[:maxSpansPerComplete]
	}
	c.spans.Ingest(spans)
	label := c.workerLabelLocked(req.WorkerID)
	if l.sp != nil {
		l.sp.End(span.Attr{Key: "status", Value: "completed"},
			span.Attr{Key: "renewals", Value: strconv.Itoa(l.renewals)})
	}
	c.events.add(now, "complete", l.key, label)
	t := c.tasks[l.key]
	if t != nil {
		ds = append(ds, c.finishTaskLocked(t, req.Outcome))
	}
	c.updateGaugesLocked()
	c.mu.Unlock()
	deliverAll(ds)
	return CompleteResponse{}, nil
}

// finishTaskLocked retires a task with its terminal outcome: store
// write, metrics, and the waiter list as a delivery for after unlock.
func (c *Coordinator) finishTaskLocked(t *ctask, o farm.Outcome) delivery {
	if c.opts.Store != nil {
		if err := c.opts.Store.Append(o); err != nil && c.storeErr == nil {
			c.storeErr = err
		}
	}
	c.opts.Metrics.RecordOutcome(&t.spec, &o)
	c.counters.noteCompleted()
	if t.root != nil {
		status := "ok"
		if o.Err != "" {
			status = "failed"
		}
		t.root.End(span.Attr{Key: "status", Value: status},
			span.Attr{Key: "attempts", Value: strconv.Itoa(o.Attempts)})
		t.root = nil
	}
	delete(c.tasks, t.key)
	return delivery{refs: t.waiters, o: o}
}

// sweepLocked advances time-driven state: deregisters silent workers,
// reclaims their leases plus any lease past its TTL, requeues the
// reclaimed tasks (stealing candidates), and fails tasks whose leases
// were lost too often. Returned deliveries must be flushed after the
// mutex is released.
func (c *Coordinator) sweepLocked(now time.Time) []delivery {
	wids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		wids = append(wids, id)
	}
	sort.Strings(wids)
	for _, id := range wids {
		if now.After(c.workers[id].expiry) {
			delete(c.workers, id)
			if h := c.fleet[id]; h != nil {
				h.up = false
			}
			c.logInfo("worker deregistered", "worker", c.workerLabelLocked(id), "worker_id", id)
		}
	}

	var ds []delivery
	lids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		lids = append(lids, id)
	}
	sort.Strings(lids)
	for _, id := range lids {
		l := c.leases[id]
		if _, alive := c.workers[l.worker]; alive && !now.After(l.expiry) {
			continue
		}
		delete(c.leases, id)
		c.counters.noteExpiration()
		label := c.workerLabelLocked(l.worker)
		if l.sp != nil {
			l.sp.End(span.Attr{Key: "status", Value: "expired"},
				span.Attr{Key: "renewals", Value: strconv.Itoa(l.renewals)})
		}
		c.events.add(now, "expire", l.key, label)
		c.logInfo("lease expired", "key", l.key,
			"trace_id", span.TraceIDFromKey(l.key), "worker", label, "lease", l.id)
		t := c.tasks[l.key]
		if t == nil || t.state != taskLeased {
			continue
		}
		c.spans.Event(t.traceID, rootID(t), "expire", t.key,
			span.Attr{Key: "worker", Value: label},
			span.Attr{Key: "lease", Value: l.id})
		t.losses++
		t.lastWorker = l.worker
		if t.losses >= c.opts.MaxLeaseLosses {
			o := farm.Outcome{Key: t.key, Benchmark: t.spec.Benchmark, Mode: t.spec.Mode,
				Engine: t.spec.Config.Engine.String(), Seed: t.spec.Config.Seed,
				Err:      fmt.Sprintf("cluster: lease lost %d times (workers keep dying mid-run)", t.losses),
				Attempts: t.losses}
			c.events.add(now, "fail", t.key, label)
			c.logInfo("task failed: lease-loss budget exhausted", "key", t.key,
				"trace_id", t.traceID, "losses", t.losses)
			ds = append(ds, c.finishTaskLocked(t, o))
			continue
		}
		t.state = taskPending
		c.pending = append(c.pending, t.key)
	}
	c.updateGaugesLocked()
	return ds
}

// updateGaugesLocked mirrors the queue/lease depths into the shared
// farm metrics so the existing dashboard fields stay meaningful.
func (c *Coordinator) updateGaugesLocked() {
	c.opts.Metrics.SetWorkers(len(c.workers))
	c.opts.Metrics.SetQueued(len(c.pending))
	c.opts.Metrics.SetBusy(len(c.leases))
}

// RunBatch implements farm.Runner over the fleet: store-resumed cells
// are served immediately (read-through, zero re-simulation), the rest
// are enqueued — coalescing with identical in-flight work — and the
// call blocks until every cell completes or ctx is cancelled. Outcomes
// come back in spec order regardless of which workers ran what.
func (c *Coordinator) RunBatch(ctx context.Context, specs []farm.Spec, store *farm.Store, onDone func(farm.Outcome)) ([]farm.Outcome, error) {
	if store == nil {
		store = c.opts.Store
	}
	b := &batch{out: make([]farm.Outcome, len(specs)), remaining: len(specs),
		done: make(chan struct{}), onDone: onDone}
	c.opts.Metrics.RecordSubmitted(len(specs))

	type resumedSlot struct {
		i int
		o farm.Outcome
	}
	var resumed []resumedSlot
	c.mu.Lock()
	for i, spec := range specs {
		key := spec.Key()
		traceID := span.TraceIDFromKey(key)
		if store != nil {
			if prev, ok := store.Lookup(key); ok {
				prev.Resumed = true
				c.spans.Event(traceID, 0, "cache-hit", key)
				resumed = append(resumed, resumedSlot{i, prev})
				continue
			}
		}
		t := c.tasks[key]
		if t == nil {
			t = &ctask{key: key, spec: spec, state: taskPending, traceID: traceID}
			t.root = c.spans.Start(traceID, 0, "job", key,
				span.Attr{Key: "benchmark", Value: spec.Benchmark},
				span.Attr{Key: "mode", Value: spec.Mode.String()},
				span.Attr{Key: "engine", Value: spec.Config.Engine.String()})
			c.spans.Event(traceID, t.root.ID(), "submit", key)
			c.tasks[key] = t
			c.pending = append(c.pending, key)
		} else {
			c.spans.Event(traceID, rootID(t), "coalesce", key)
		}
		t.waiters = append(t.waiters, waiterRef{b: b, i: i})
	}
	c.updateGaugesLocked()
	c.mu.Unlock()

	if n := len(resumed); n > 0 {
		c.opts.Metrics.RecordResumed(n)
	}
	for _, r := range resumed {
		b.deliver(r.i, r.o)
	}
	if len(resumed) == len(specs) {
		// Entirely cache-served; done is already closed by the last
		// deliver, but fall through to the select for uniformity.
	}

	select {
	case <-b.done:
		c.mu.Lock()
		err := c.storeErr
		c.storeErr = nil
		c.mu.Unlock()
		return b.out, err
	case <-ctx.Done():
		c.cancelBatch(b)
		return b.abandon(), ctx.Err()
	}
}

// cancelBatch detaches b's waiters; pending tasks nobody else waits on
// are dropped from the queue (leased ones run to completion — their
// results are still worth storing).
func (c *Coordinator) cancelBatch(b *batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.tasks))
	for key := range c.tasks {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	drop := make(map[string]bool)
	for _, key := range keys {
		t := c.tasks[key]
		kept := t.waiters[:0]
		for _, ref := range t.waiters {
			if ref.b != b {
				kept = append(kept, ref)
			}
		}
		t.waiters = kept
		if len(kept) == 0 && t.state == taskPending {
			if t.root != nil {
				t.root.End(span.Attr{Key: "status", Value: "cancelled"})
				t.root = nil
			}
			delete(c.tasks, key)
			drop[key] = true
		}
	}
	if len(drop) > 0 {
		pending := c.pending[:0]
		for _, key := range c.pending {
			if !drop[key] {
				pending = append(pending, key)
			}
		}
		c.pending = pending
	}
	c.updateGaugesLocked()
}
