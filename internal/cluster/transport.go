package cluster

import "context"

// Transport is how a worker reaches its coordinator. Two
// implementations exist: Loopback (in-process, the determinism tests'
// substrate) and rpc.Client (HTTP/JSON between nodes). Both surface
// the same sentinel errors, so worker logic is transport-blind.
type Transport interface {
	Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
	Acquire(ctx context.Context, req AcquireRequest) (AcquireResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
}

// Loopback adapts a Coordinator into an in-process Transport: same
// protocol, no wire. Multi-node tests run a coordinator plus loopback
// workers in one process so the race detector sees every interleaving.
type Loopback struct {
	C *Coordinator
}

func (l Loopback) Register(_ context.Context, req RegisterRequest) (RegisterResponse, error) {
	return l.C.Register(req)
}

func (l Loopback) Heartbeat(_ context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return l.C.Heartbeat(req)
}

func (l Loopback) Acquire(_ context.Context, req AcquireRequest) (AcquireResponse, error) {
	return l.C.Acquire(req)
}

func (l Loopback) Complete(_ context.Context, req CompleteRequest) (CompleteResponse, error) {
	return l.C.Complete(req)
}
