// Package rpc carries the cluster protocol over HTTP/JSON. One
// endpoint (POST /cluster/rpc) moves every envelope kind; the envelope
// codec — the fuzzed surface — lives in the cluster package, so this
// layer is only framing: read body, decode, dispatch, encode.
package rpc

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"asdsim/internal/cluster"
)

// Route is the single protocol endpoint's path.
const Route = "/cluster/rpc"

// maxBodyBytes mirrors the codec's own envelope bound.
const maxBodyBytes = 4 << 20

// Handler serves the coordinator over HTTP. Mount it alongside the
// farm server's handler on the coordinator's mux.
func Handler(c *cluster.Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+Route, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeEnvelope(w, http.StatusBadRequest, errEnvelope(err))
			return
		}
		m, err := cluster.DecodeMessage(body)
		if err != nil {
			writeEnvelope(w, http.StatusBadRequest, errEnvelope(err))
			return
		}
		resp, err := dispatch(c, m)
		if err != nil {
			status := http.StatusBadRequest
			switch cluster.ToWire(err).Code {
			case cluster.CodeUnknownWorker:
				status = http.StatusNotFound
			case cluster.CodeLeaseExpired:
				status = http.StatusConflict
			}
			writeEnvelope(w, status, errEnvelope(err))
			return
		}
		writeEnvelope(w, http.StatusOK, resp)
	})
	return mux
}

// dispatch routes one request envelope to the coordinator.
func dispatch(c *cluster.Coordinator, m *cluster.Message) (*cluster.Message, error) {
	switch m.Kind {
	case "register":
		resp, err := c.Register(*m.Register)
		if err != nil {
			return nil, err
		}
		return &cluster.Message{Kind: "registered", Registered: &resp}, nil
	case "heartbeat":
		resp, err := c.Heartbeat(*m.Heartbeat)
		if err != nil {
			return nil, err
		}
		return &cluster.Message{Kind: "heartbeat_ok", HeartbeatOK: &resp}, nil
	case "acquire":
		resp, err := c.Acquire(*m.Acquire)
		if err != nil {
			return nil, err
		}
		return &cluster.Message{Kind: "acquire_ok", AcquireOK: &resp}, nil
	case "complete":
		resp, err := c.Complete(*m.Complete)
		if err != nil {
			return nil, err
		}
		return &cluster.Message{Kind: "complete_ok", CompleteOK: &resp}, nil
	default:
		return nil, fmt.Errorf("%w: a coordinator does not accept %q envelopes", cluster.ErrBadRequest, m.Kind)
	}
}

func errEnvelope(err error) *cluster.Message {
	return &cluster.Message{Kind: "error", Error: cluster.ToWire(err)}
}

func writeEnvelope(w http.ResponseWriter, status int, m *cluster.Message) {
	data, err := cluster.EncodeMessage(m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// Client implements cluster.Transport over HTTP against a
// coordinator's base URL.
type Client struct {
	// Base is the coordinator's root URL, e.g. "http://10.0.0.1:8080".
	Base string
	// HTTPClient overrides http.DefaultClient (tests use the
	// httptest server's client).
	HTTPClient *http.Client
}

// New returns a Client for the coordinator at base.
func New(base string) *Client { return &Client{Base: base} }

func (c *Client) call(ctx context.Context, req *cluster.Message) (*cluster.Message, error) {
	data, err := cluster.EncodeMessage(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+Route, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	m, err := cluster.DecodeMessage(body)
	if err != nil {
		return nil, fmt.Errorf("cluster rpc: undecodable response (HTTP %d): %w", hresp.StatusCode, err)
	}
	if m.Kind == "error" {
		return nil, m.Error.FromWire()
	}
	return m, nil
}

// expect unwraps a response envelope of the wanted kind.
func expect(m *cluster.Message, kind string) error {
	if m.Kind != kind {
		return fmt.Errorf("cluster rpc: got %q envelope, want %q", m.Kind, kind)
	}
	return nil
}

func (c *Client) Register(ctx context.Context, req cluster.RegisterRequest) (cluster.RegisterResponse, error) {
	m, err := c.call(ctx, &cluster.Message{Kind: "register", Register: &req})
	if err != nil {
		return cluster.RegisterResponse{}, err
	}
	if err := expect(m, "registered"); err != nil {
		return cluster.RegisterResponse{}, err
	}
	return *m.Registered, nil
}

func (c *Client) Heartbeat(ctx context.Context, req cluster.HeartbeatRequest) (cluster.HeartbeatResponse, error) {
	m, err := c.call(ctx, &cluster.Message{Kind: "heartbeat", Heartbeat: &req})
	if err != nil {
		return cluster.HeartbeatResponse{}, err
	}
	if err := expect(m, "heartbeat_ok"); err != nil {
		return cluster.HeartbeatResponse{}, err
	}
	return *m.HeartbeatOK, nil
}

func (c *Client) Acquire(ctx context.Context, req cluster.AcquireRequest) (cluster.AcquireResponse, error) {
	m, err := c.call(ctx, &cluster.Message{Kind: "acquire", Acquire: &req})
	if err != nil {
		return cluster.AcquireResponse{}, err
	}
	if err := expect(m, "acquire_ok"); err != nil {
		return cluster.AcquireResponse{}, err
	}
	return *m.AcquireOK, nil
}

func (c *Client) Complete(ctx context.Context, req cluster.CompleteRequest) (cluster.CompleteResponse, error) {
	m, err := c.call(ctx, &cluster.Message{Kind: "complete", Complete: &req})
	if err != nil {
		return cluster.CompleteResponse{}, err
	}
	if err := expect(m, "complete_ok"); err != nil {
		return cluster.CompleteResponse{}, err
	}
	return *m.CompleteOK, nil
}
