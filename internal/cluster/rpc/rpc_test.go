package rpc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"asdsim/internal/cluster"
	"asdsim/internal/farm"
	"asdsim/internal/sim"
)

func startCoordinator(t *testing.T) (*cluster.Coordinator, *Client) {
	t.Helper()
	coord := cluster.New(cluster.Options{})
	srv := httptest.NewServer(Handler(coord))
	t.Cleanup(srv.Close)
	return coord, &Client{Base: srv.URL, HTTPClient: srv.Client()}
}

func TestClientErrorsCarrySentinelsAcrossHTTP(t *testing.T) {
	_, client := startCoordinator(t)
	ctx := context.Background()

	if _, err := client.Register(ctx, cluster.RegisterRequest{Name: "x", Version: cluster.ProtocolVersion + 9}); !errors.Is(err, cluster.ErrBadRequest) {
		t.Fatalf("version mismatch over HTTP = %v, want ErrBadRequest", err)
	}
	if _, err := client.Heartbeat(ctx, cluster.HeartbeatRequest{WorkerID: "w-404"}); !errors.Is(err, cluster.ErrUnknownWorker) {
		t.Fatalf("unknown worker over HTTP = %v, want ErrUnknownWorker", err)
	}
	reg, err := client.Register(ctx, cluster.RegisterRequest{Name: "x", Version: cluster.ProtocolVersion})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := client.Complete(ctx, cluster.CompleteRequest{WorkerID: reg.WorkerID, LeaseID: "l-404"}); !errors.Is(err, cluster.ErrLeaseExpired) {
		t.Fatalf("bogus lease over HTTP = %v, want ErrLeaseExpired", err)
	}
	if resp, err := client.Acquire(ctx, cluster.AcquireRequest{WorkerID: reg.WorkerID}); err != nil || resp.Grant != nil {
		t.Fatalf("empty-queue acquire: %+v %v", resp, err)
	}
}

func TestHandlerRejectsMalformedBodies(t *testing.T) {
	coord := cluster.New(cluster.Options{})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+Route, "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	m, err := cluster.DecodeMessage(body)
	if err != nil || m.Kind != "error" || m.Error.Code != cluster.CodeBadRequest {
		t.Fatalf("error envelope = %+v (%v), want bad_request", m, err)
	}
}

// TestWorkerOverHTTPCompletesBatch runs the full loop — coordinator
// behind a real HTTP server, a Worker using the Client transport — and
// checks the batch comes back complete and correctly ordered.
func TestWorkerOverHTTPCompletesBatch(t *testing.T) {
	coord, client := startCoordinator(t)
	specs := []farm.Spec{
		{Benchmark: "a", Mode: sim.NP, Config: sim.Default(sim.NP, 1000)},
		{Benchmark: "b", Mode: sim.PMS, Config: sim.Default(sim.PMS, 1000)},
	}
	pool := farm.New(farm.Options{Workers: 2, Run: func(ctx context.Context, spec farm.Spec) (sim.Result, error) {
		return sim.Result{Cycles: uint64(len(spec.Benchmark)), Instructions: 1}, nil
	}})
	defer pool.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wCtx, wCancel := context.WithCancel(ctx)
	defer wCancel()
	wDone := make(chan struct{})
	go func() {
		defer close(wDone)
		(&cluster.Worker{Transport: client, Pool: pool, Name: "http-worker", Poll: 5 * time.Millisecond}).Run(wCtx)
	}()

	out, err := coord.RunBatch(ctx, specs, nil, nil)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, o := range out {
		if !o.OK() || o.Key != specs[i].Key() || o.Result.Cycles != uint64(len(specs[i].Benchmark)) {
			t.Fatalf("out[%d] = %+v", i, o)
		}
	}
	wCancel()
	<-wDone
}
