package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"asdsim/internal/farm"
)

// Worker is one executor node: it registers with a coordinator over a
// Transport, pulls leased specs, runs them on a local farm.Pool
// (inheriting its retry/backoff/panic-recovery policy), heartbeats to
// keep long-running leases alive, and returns outcomes. Run blocks;
// the caller decides the concurrency (cmd/asdfarm runs one Run loop
// per configured slot).
type Worker struct {
	Transport Transport
	Pool      *farm.Pool
	// Name labels the worker in coordinator logs and dashboards.
	Name string
	// Poll is the idle wait between acquire attempts when the queue is
	// empty (default 250ms; tests shrink it).
	Poll time.Duration

	stats WorkerStats
}

// Stats exposes the worker's lease-traffic counters.
func (w *Worker) Stats() *WorkerStats { return &w.stats }

// Run registers and serves leases until ctx is cancelled or the
// transport fails a registration. Transient acquire failures back off
// one poll interval; an expired registration re-registers.
func (w *Worker) Run(ctx context.Context) error {
	if w.Transport == nil || w.Pool == nil {
		return fmt.Errorf("cluster: worker needs a Transport and a Pool")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	var (
		id      string
		hbEvery time.Duration
	)
	register := func() error {
		resp, err := w.Transport.Register(ctx, RegisterRequest{Name: w.Name, Version: ProtocolVersion})
		if err != nil {
			return err
		}
		id = resp.WorkerID
		hbEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
		if hbEvery <= 0 {
			hbEvery = poll
		}
		return nil
	}
	if err := register(); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.Transport.Acquire(ctx, AcquireRequest{WorkerID: id})
		switch {
		case errors.Is(err, ErrUnknownWorker):
			// Liveness expired (a long GC pause, a partition); identity is
			// cheap, so just re-enter the fleet.
			if err := register(); err != nil {
				return err
			}
			continue
		case err != nil:
			if serr := sleepCtx(ctx, poll); serr != nil {
				return serr
			}
			continue
		}
		if resp.Grant == nil {
			w.stats.noteIdlePoll()
			if serr := sleepCtx(ctx, poll); serr != nil {
				return serr
			}
			continue
		}
		w.stats.noteAcquired()
		w.runLease(ctx, id, resp.Grant, hbEvery)
	}
}

// runLease executes one granted spec on the local pool, heartbeating
// while it runs so the lease outlives a long simulation, then returns
// the outcome. A cancelled ctx orphans the lease — the coordinator
// reclaims it at TTL and another worker's bit-identical rerun replaces
// the lost result.
func (w *Worker) runLease(ctx context.Context, id string, g *Grant, hbEvery time.Duration) {
	done := make(chan farm.Outcome, 1)
	if err := w.Pool.Submit(ctx, g.Spec, func(o farm.Outcome) { done <- o }); err != nil {
		return // pool closed; the lease expires and is stolen
	}
	tick := time.NewTicker(hbEvery)
	defer tick.Stop()
	for {
		select {
		case o := <-done:
			if ctx.Err() != nil {
				// Shutting down: the outcome is a cancellation artifact,
				// not a job failure. Orphan the lease instead of reporting
				// it — the steal path reruns the cell bit-identically.
				return
			}
			if _, err := w.Transport.Complete(ctx, CompleteRequest{WorkerID: id, LeaseID: g.LeaseID, Outcome: o}); err != nil {
				if errors.Is(err, ErrLeaseExpired) {
					w.stats.noteExpired()
				}
				return
			}
			w.stats.noteCompleted()
			return
		case <-tick.C:
			// Best-effort: a failed heartbeat just means the lease may be
			// stolen, which is safe.
			w.Transport.Heartbeat(ctx, HeartbeatRequest{WorkerID: id})
		case <-ctx.Done():
			return
		}
	}
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
