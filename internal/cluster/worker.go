package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"asdsim/internal/farm"
	"asdsim/internal/obs/span"
)

// Worker is one executor node: it registers with a coordinator over a
// Transport, pulls leased specs, runs them on a local farm.Pool
// (inheriting its retry/backoff/panic-recovery policy), heartbeats to
// keep long-running leases alive, and returns outcomes. Run blocks;
// the caller decides the concurrency (cmd/asdfarm runs one Run loop
// per configured slot).
type Worker struct {
	Transport Transport
	Pool      *farm.Pool
	// Name labels the worker in coordinator logs and dashboards.
	Name string
	// Poll is the idle wait between acquire attempts when the queue is
	// empty (default 250ms; tests shrink it).
	Poll time.Duration
	// Spans, when set, records an "execute" span per lease (parented on
	// the coordinator's lease span via the grant's trace context) and
	// ships the trace's spans back with the completion.
	Spans *span.Recorder
	// Logger receives structured lease-lifecycle records. Optional.
	Logger *slog.Logger

	stats WorkerStats
}

// snapshot builds the metrics-federation payload from the local pool.
func (w *Worker) snapshot() *WorkerSnapshot {
	m := w.Pool.Metrics()
	return &WorkerSnapshot{Pool: m.Snapshot(), Wall: m.Wall()}
}

// logInfo emits one structured record when a logger is configured.
func (w *Worker) logInfo(msg string, args ...any) {
	if w.Logger != nil {
		w.Logger.Info(msg, args...)
	}
}

// Stats exposes the worker's lease-traffic counters.
func (w *Worker) Stats() *WorkerStats { return &w.stats }

// Run registers and serves leases until ctx is cancelled or the
// transport fails a registration. Transient acquire failures back off
// one poll interval; an expired registration re-registers.
func (w *Worker) Run(ctx context.Context) error {
	if w.Transport == nil || w.Pool == nil {
		return fmt.Errorf("cluster: worker needs a Transport and a Pool")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	var (
		id      string
		hbEvery time.Duration
	)
	register := func() error {
		resp, err := w.Transport.Register(ctx, RegisterRequest{Name: w.Name, Version: ProtocolVersion})
		if err != nil {
			return err
		}
		id = resp.WorkerID
		hbEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
		if hbEvery <= 0 {
			hbEvery = poll
		}
		w.logInfo("registered with coordinator", "worker", w.Name, "worker_id", id)
		return nil
	}
	if err := register(); err != nil {
		return err
	}
	// statsEvery spaces stats-carrying idle heartbeats at roughly the
	// heartbeat cadence, counted in poll sleeps (no wall-clock reads).
	statsEvery := int(hbEvery / poll)
	if statsEvery < 1 {
		statsEvery = 1
	}
	idleSince := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.Transport.Acquire(ctx, AcquireRequest{WorkerID: id})
		switch {
		case errors.Is(err, ErrUnknownWorker):
			// Liveness expired (a long GC pause, a partition); identity is
			// cheap, so just re-enter the fleet.
			if err := register(); err != nil {
				return err
			}
			continue
		case err != nil:
			if serr := sleepCtx(ctx, poll); serr != nil {
				return serr
			}
			continue
		}
		if resp.Grant == nil {
			w.stats.noteIdlePoll()
			idleSince++
			if idleSince%statsEvery == 0 {
				// Acquire already refreshed liveness; this heartbeat only
				// pushes the federation snapshot. Best-effort.
				w.Transport.Heartbeat(ctx, HeartbeatRequest{WorkerID: id, Stats: w.snapshot()})
			}
			if serr := sleepCtx(ctx, poll); serr != nil {
				return serr
			}
			continue
		}
		idleSince = 0
		w.stats.noteAcquired()
		w.runLease(ctx, id, resp.Grant, hbEvery)
	}
}

// runLease executes one granted spec on the local pool, heartbeating
// while it runs so the lease outlives a long simulation, then returns
// the outcome. A cancelled ctx orphans the lease — the coordinator
// reclaims it at TTL and another worker's bit-identical rerun replaces
// the lost result.
func (w *Worker) runLease(ctx context.Context, id string, g *Grant, hbEvery time.Duration) {
	var exec *span.Active
	if w.Spans != nil && g.Trace != nil {
		exec = w.Spans.Start(g.Trace.TraceID, g.Trace.Parent, "execute", g.Key,
			span.Attr{Key: "lease", Value: g.LeaseID},
			span.Attr{Key: "benchmark", Value: g.Spec.Benchmark},
			span.Attr{Key: "mode", Value: g.Spec.Mode.String()})
	}
	done := make(chan farm.Outcome, 1)
	if err := w.Pool.Submit(ctx, g.Spec, func(o farm.Outcome) { done <- o }); err != nil {
		return // pool closed; the lease expires and is stolen
	}
	tick := time.NewTicker(hbEvery)
	defer tick.Stop()
	for {
		select {
		case o := <-done:
			if ctx.Err() != nil {
				// Shutting down: the outcome is a cancellation artifact,
				// not a job failure. Orphan the lease instead of reporting
				// it — the steal path reruns the cell bit-identically.
				return
			}
			req := CompleteRequest{WorkerID: id, LeaseID: g.LeaseID, Outcome: o}
			if exec != nil {
				status := "ok"
				if o.Err != "" {
					status = "failed"
				}
				exec.End(span.Attr{Key: "status", Value: status})
				req.Spans = w.Spans.DrainTrace(g.Trace.TraceID)
			}
			if _, err := w.Transport.Complete(ctx, req); err != nil {
				if errors.Is(err, ErrLeaseExpired) {
					w.stats.noteExpired()
					w.logInfo("result rejected: lease expired", "key", g.Key, "lease", g.LeaseID)
				}
				return
			}
			w.stats.noteCompleted()
			return
		case <-tick.C:
			// Best-effort: a failed heartbeat just means the lease may be
			// stolen, which is safe. Each carries the federation snapshot.
			if exec != nil {
				w.Spans.Event(g.Trace.TraceID, exec.ID(), "heartbeat", g.Key)
			}
			w.Transport.Heartbeat(ctx, HeartbeatRequest{WorkerID: id, Stats: w.snapshot()})
		case <-ctx.Done():
			return
		}
	}
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
