package cluster

import "sync/atomic"

// counters is the coordinator's cluster-specific telemetry: lease
// churn, steals, late completions. The recording helpers are annotated
// //asd:hotpath so the noperturb pass certifies them lock-free — they
// run inside the coordinator's request path and must never add
// blocking beyond the mutex the state machine already holds.
type counters struct {
	expirations atomic.Uint64
	steals      atomic.Uint64
	late        atomic.Uint64
	completed   atomic.Uint64
}

// noteExpiration counts one lease reclaimed by TTL or worker death.
//
//asd:hotpath
func (c *counters) noteExpiration() { c.expirations.Add(1) }

// noteSteal counts one reclaimed task re-leased to a different worker.
//
//asd:hotpath
func (c *counters) noteSteal() { c.steals.Add(1) }

// noteLate counts one completion rejected for an expired lease.
//
//asd:hotpath
func (c *counters) noteLate() { c.late.Add(1) }

// noteCompleted counts one task retired through the coordinator.
//
//asd:hotpath
func (c *counters) noteCompleted() { c.completed.Add(1) }

// WorkerStats is a worker node's own lease traffic, exported on the
// worker side for logs and tests. Updated from the work loop next to
// the running simulation, so the recorders carry the same hotpath
// contract as the coordinator's.
type WorkerStats struct {
	acquired  atomic.Uint64
	completed atomic.Uint64
	expired   atomic.Uint64
	idlePolls atomic.Uint64
}

// Acquired returns how many leases the worker has been granted.
func (s *WorkerStats) Acquired() uint64 { return s.acquired.Load() }

// Completed returns how many results the coordinator accepted.
func (s *WorkerStats) Completed() uint64 { return s.completed.Load() }

// Expired returns how many results were rejected as late.
func (s *WorkerStats) Expired() uint64 { return s.expired.Load() }

// IdlePolls returns how many acquire attempts found an empty queue.
func (s *WorkerStats) IdlePolls() uint64 { return s.idlePolls.Load() }

//asd:hotpath
func (s *WorkerStats) noteAcquired() { s.acquired.Add(1) }

//asd:hotpath
func (s *WorkerStats) noteCompleted() { s.completed.Add(1) }

//asd:hotpath
func (s *WorkerStats) noteExpired() { s.expired.Add(1) }

//asd:hotpath
func (s *WorkerStats) noteIdlePoll() { s.idlePolls.Add(1) }
