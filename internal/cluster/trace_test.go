package cluster

import (
	"context"
	"testing"
	"time"

	"asdsim/internal/farm"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

func attrValue(sp span.Span, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// One job's span lifecycle on the fake clock: the grant carries the
// trace context, the lease span is attributed to the worker's name,
// worker-shipped spans are ingested into the same trace, and every
// timestamp comes from the injected clock — byte-for-byte deterministic.
func TestCoordinatorSpanLifecycle(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{WorkerTTL: 10 * time.Second, LeaseTTL: 5 * time.Second, Now: clk.Now})
	w := mustRegister(t, c, "w1")

	spec := testSpec("GemsFDTD", sim.NP)
	key := spec.Key()
	traceID := span.TraceIDFromKey(key)
	startUS := clk.Now().UnixMicro()

	ret := startBatch(c, context.Background(), []farm.Spec{spec}, nil)
	waitPending(t, c, 1)

	g, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
	if err != nil || g.Grant == nil {
		t.Fatalf("acquire: %v, grant %+v", err, g.Grant)
	}
	tr := g.Grant.Trace
	if tr == nil || tr.TraceID != traceID || tr.Parent == 0 {
		t.Fatalf("grant trace context = %+v, want trace %s parented on the lease span", tr, traceID)
	}

	// The worker runs for one fake second, then completes, shipping the
	// execute span it recorded against the grant's context.
	clk.Advance(time.Second)
	exec := span.Span{TraceID: traceID, ID: 42, Parent: tr.Parent, Name: "execute",
		Node: "w1", Key: key, StartUS: startUS, DurUS: time.Second.Microseconds()}
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 100), Spans: []span.Span{exec}}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if r := <-ret; r.err != nil {
		t.Fatalf("batch: %v", r.err)
	}

	spans := c.Spans([]string{key})
	byName := map[string]span.Span{}
	for _, sp := range spans {
		if sp.TraceID != traceID {
			t.Errorf("span %s on foreign trace %s", sp.Name, sp.TraceID)
		}
		byName[sp.Name] = sp
	}
	for _, name := range []string{"job", "submit", "lease", "execute"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing %q span (have %v)", name, byName)
		}
	}

	root, lease := byName["job"], byName["lease"]
	if root.Node != "coordinator" || root.StartUS != startUS {
		t.Errorf("root span = %+v, want coordinator span starting at %d", root, startUS)
	}
	if root.DurUS != time.Second.Microseconds() {
		t.Errorf("root duration = %dus, want exactly the fake second", root.DurUS)
	}
	if attrValue(root, "status") != "ok" {
		t.Errorf("root status = %q, want ok", attrValue(root, "status"))
	}
	if lease.Node != "w1" || lease.Parent != root.ID {
		t.Errorf("lease span = %+v, want on node w1 parented on the job root %d", lease, root.ID)
	}
	if lease.ID != tr.Parent {
		t.Errorf("grant parent = %d, want the lease span %d", tr.Parent, lease.ID)
	}
	if attrValue(lease, "status") != "completed" {
		t.Errorf("lease status = %q, want completed", attrValue(lease, "status"))
	}
	if got := byName["execute"]; got.ID != 42 || got.Parent != lease.ID {
		t.Errorf("ingested execute span = %+v, want ID 42 under the lease span", got)
	}
}

// Identical batches over a store produce a cache-hit event instead of
// a second job span — the trace records the read-through, not a rerun.
func TestCoordinatorCacheHitSpan(t *testing.T) {
	clk := newFakeClock()
	store, err := farm.OpenStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := New(Options{WorkerTTL: 10 * time.Second, LeaseTTL: 5 * time.Second, Now: clk.Now, Store: store})
	w := mustRegister(t, c, "w1")

	spec := testSpec("milc", sim.NP)
	key := spec.Key()

	ret := startBatch(c, context.Background(), []farm.Spec{spec}, nil)
	waitPending(t, c, 1)
	g, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
	if err != nil || g.Grant == nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 100)}); err != nil {
		t.Fatal(err)
	}
	if r := <-ret; r.err != nil {
		t.Fatal(r.err)
	}

	clk.Advance(time.Minute)
	out, err := c.RunBatch(context.Background(), []farm.Spec{spec}, nil, nil)
	if err != nil || len(out) != 1 || !out[0].Resumed {
		t.Fatalf("repeat batch = %+v, %v, want one resumed outcome", out, err)
	}
	var hits, jobs int
	for _, sp := range c.Spans([]string{key}) {
		switch sp.Name {
		case "cache-hit":
			hits++
			if sp.StartUS != clk.Now().UnixMicro() {
				t.Errorf("cache-hit at %d, want the injected clock's %d", sp.StartUS, clk.Now().UnixMicro())
			}
		case "job":
			jobs++
		}
	}
	if hits != 1 || jobs != 1 {
		t.Errorf("cache-hit spans = %d, job spans = %d; want exactly 1 and 1", hits, jobs)
	}
}
