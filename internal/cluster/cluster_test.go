package cluster

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asdsim/internal/farm"
	"asdsim/internal/sim"
)

// fakeClock is the injected Options.Now for the state-machine tests:
// time moves only when a test says so, making every expiry exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func testSpec(bench string, mode sim.Mode) farm.Spec {
	return farm.Spec{Benchmark: bench, Mode: mode, Config: sim.Default(mode, 10_000)}
}

// fakeOutcome builds a successful outcome a fake worker can Complete
// a grant with.
func fakeOutcome(spec farm.Spec, cycles uint64) farm.Outcome {
	res := sim.Result{Cycles: cycles, Instructions: 2 * cycles}
	return farm.Outcome{Key: spec.Key(), Benchmark: spec.Benchmark, Mode: spec.Mode,
		Engine: spec.Config.Engine.String(), Seed: spec.Config.Seed, Result: &res, Attempts: 1}
}

func mustRegister(t *testing.T, c *Coordinator, name string) RegisterResponse {
	t.Helper()
	resp, err := c.Register(RegisterRequest{Name: name, Version: ProtocolVersion})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return resp
}

type batchRet struct {
	out []farm.Outcome
	err error
}

// startBatch launches RunBatch in the background and returns its
// result channel.
func startBatch(c *Coordinator, ctx context.Context, specs []farm.Spec, onDone func(farm.Outcome)) <-chan batchRet {
	ch := make(chan batchRet, 1)
	go func() {
		out, err := c.RunBatch(ctx, specs, nil, onDone)
		ch <- batchRet{out, err}
	}()
	return ch
}

// waitPending spins until the coordinator's pending queue reaches n.
func waitPending(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := c.ClusterSnapshot(); snap.TasksPending == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending queue never reached %d (now %d)", n, c.ClusterSnapshot().TasksPending)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterAndLivenessExpiry(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{WorkerTTL: 10 * time.Second, LeaseTTL: 5 * time.Second, Now: clk.Now})

	if _, err := c.Register(RegisterRequest{Name: "old", Version: ProtocolVersion + 1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("version mismatch error = %v, want ErrBadRequest", err)
	}
	reg := mustRegister(t, c, "a")
	if reg.WorkerID == "" || reg.LeaseTTLMS != 5000 {
		t.Fatalf("register response %+v", reg)
	}
	if got := c.Workers(); got != 1 {
		t.Fatalf("workers = %d, want 1", got)
	}
	// Heartbeats inside the TTL keep the worker alive across windows.
	clk.Advance(9 * time.Second)
	if _, err := c.Heartbeat(HeartbeatRequest{WorkerID: reg.WorkerID}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clk.Advance(9 * time.Second)
	if got := c.Workers(); got != 1 {
		t.Fatalf("workers after refreshed heartbeat = %d, want 1", got)
	}
	// Silence past the TTL deregisters.
	clk.Advance(11 * time.Second)
	if got := c.Workers(); got != 0 {
		t.Fatalf("workers after expiry = %d, want 0", got)
	}
	if _, err := c.Heartbeat(HeartbeatRequest{WorkerID: reg.WorkerID}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after expiry = %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Acquire(AcquireRequest{WorkerID: reg.WorkerID}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("acquire after expiry = %v, want ErrUnknownWorker", err)
	}
}

func TestGrantOrderAndBatchOrder(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Now: clk.Now})
	specs := []farm.Spec{
		testSpec("GemsFDTD", sim.NP), testSpec("GemsFDTD", sim.PMS),
		testSpec("milc", sim.NP), testSpec("milc", sim.PMS),
	}
	var observed atomic.Uint64
	ret := startBatch(c, context.Background(), specs, func(farm.Outcome) { observed.Add(1) })
	waitPending(t, c, len(specs))

	reg := mustRegister(t, c, "a")
	grants := make([]*Grant, 0, len(specs))
	for i := range specs {
		resp, err := c.Acquire(AcquireRequest{WorkerID: reg.WorkerID})
		if err != nil || resp.Grant == nil {
			t.Fatalf("acquire %d: grant=%v err=%v", i, resp.Grant, err)
		}
		// FIFO: grants follow submission order.
		if resp.Grant.Key != specs[i].Key() {
			t.Fatalf("grant %d is %s, want %s (submission order)", i, resp.Grant.Key, specs[i].Key())
		}
		grants = append(grants, resp.Grant)
	}
	if resp, err := c.Acquire(AcquireRequest{WorkerID: reg.WorkerID}); err != nil || resp.Grant != nil {
		t.Fatalf("acquire on empty queue: grant=%v err=%v", resp.Grant, err)
	}
	// Complete in reverse order; the batch must still come back in
	// spec order.
	for i := len(grants) - 1; i >= 0; i-- {
		if _, err := c.Complete(CompleteRequest{WorkerID: reg.WorkerID, LeaseID: grants[i].LeaseID,
			Outcome: fakeOutcome(specs[i], uint64(1000*(i+1)))}); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	r := <-ret
	if r.err != nil {
		t.Fatalf("batch err: %v", r.err)
	}
	for i, o := range r.out {
		if o.Key != specs[i].Key() || !o.OK() || o.Result.Cycles != uint64(1000*(i+1)) {
			t.Fatalf("out[%d] = %+v, want key %s cycles %d", i, o, specs[i].Key(), 1000*(i+1))
		}
	}
	if observed.Load() != uint64(len(specs)) {
		t.Fatalf("onDone fired %d times, want %d", observed.Load(), len(specs))
	}
	snap := c.ClusterSnapshot()
	if snap.Completed != 4 || snap.LeasesActive != 0 || snap.TasksPending != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestLeaseExpirySteaLateCompletionRejected(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{LeaseTTL: 5 * time.Second, WorkerTTL: time.Hour, Now: clk.Now})
	spec := testSpec("mcf", sim.PMS)
	ret := startBatch(c, context.Background(), []farm.Spec{spec}, nil)
	waitPending(t, c, 1)

	w1 := mustRegister(t, c, "w1")
	g1, err := c.Acquire(AcquireRequest{WorkerID: w1.WorkerID})
	if err != nil || g1.Grant == nil {
		t.Fatalf("w1 acquire: %+v %v", g1, err)
	}
	// The lease outlives its TTL unseen; a second worker steals it.
	clk.Advance(6 * time.Second)
	w2 := mustRegister(t, c, "w2")
	g2, err := c.Acquire(AcquireRequest{WorkerID: w2.WorkerID})
	if err != nil || g2.Grant == nil || g2.Grant.Key != spec.Key() {
		t.Fatalf("w2 steal acquire: %+v %v", g2, err)
	}
	// w1's late completion is rejected...
	if _, err := c.Complete(CompleteRequest{WorkerID: w1.WorkerID, LeaseID: g1.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 111)}); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("late complete = %v, want ErrLeaseExpired", err)
	}
	// ...and w2's accepted result is what the batch sees.
	if _, err := c.Complete(CompleteRequest{WorkerID: w2.WorkerID, LeaseID: g2.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 222)}); err != nil {
		t.Fatalf("steal complete: %v", err)
	}
	r := <-ret
	if r.err != nil || len(r.out) != 1 || r.out[0].Result.Cycles != 222 {
		t.Fatalf("batch result %+v err %v", r.out, r.err)
	}
	snap := c.ClusterSnapshot()
	if snap.LeaseExpirations != 1 || snap.Steals != 1 || snap.LateResults != 1 {
		t.Fatalf("counters %+v, want 1 expiration, 1 steal, 1 late", snap)
	}
}

func TestWorkerDeathReclaimsItsLeases(t *testing.T) {
	clk := newFakeClock()
	// Lease TTL is long: reclaim must come from worker liveness, not
	// lease expiry.
	c := New(Options{LeaseTTL: time.Hour, WorkerTTL: 10 * time.Second, Now: clk.Now})
	spec := testSpec("tpcc", sim.NP)
	ret := startBatch(c, context.Background(), []farm.Spec{spec}, nil)
	waitPending(t, c, 1)

	w1 := mustRegister(t, c, "w1")
	if g, err := c.Acquire(AcquireRequest{WorkerID: w1.WorkerID}); err != nil || g.Grant == nil {
		t.Fatalf("w1 acquire: %+v %v", g, err)
	}
	clk.Advance(11 * time.Second) // w1 dies silently
	w2 := mustRegister(t, c, "w2")
	g2, err := c.Acquire(AcquireRequest{WorkerID: w2.WorkerID})
	if err != nil || g2.Grant == nil || g2.Grant.Key != spec.Key() {
		t.Fatalf("w2 did not inherit the dead worker's task: %+v %v", g2, err)
	}
	if _, err := c.Complete(CompleteRequest{WorkerID: w2.WorkerID, LeaseID: g2.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 7)}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if r := <-ret; r.err != nil || !r.out[0].OK() {
		t.Fatalf("batch %+v", r)
	}
	snap := c.ClusterSnapshot()
	if snap.Workers != 1 || snap.LeaseExpirations != 1 || snap.Steals != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestLeaseLossBudgetFailsTask(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{LeaseTTL: 5 * time.Second, WorkerTTL: time.Hour,
		MaxLeaseLosses: 2, Now: clk.Now})
	spec := testSpec("fma3d", sim.MS)
	ret := startBatch(c, context.Background(), []farm.Spec{spec}, nil)
	waitPending(t, c, 1)

	w := mustRegister(t, c, "w")
	for loss := 0; loss < 2; loss++ {
		g, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
		if err != nil || g.Grant == nil {
			t.Fatalf("acquire (loss %d): %+v %v", loss, g, err)
		}
		clk.Advance(6 * time.Second) // let the lease rot
	}
	// The coordinator is passive: expiry is only noticed inside a
	// request. The snapshot's sweep sees the second loss, exhausts the
	// budget, and fails the task.
	c.ClusterSnapshot()
	r := <-ret
	if r.err != nil || len(r.out) != 1 {
		t.Fatalf("batch %+v", r)
	}
	if r.out[0].OK() || !strings.Contains(r.out[0].Err, "lease lost") {
		t.Fatalf("outcome %+v, want lease-loss failure", r.out[0])
	}
}

func TestDuplicateSpecsCoalesce(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Now: clk.Now})
	spec := testSpec("swim", sim.PMS)
	other := testSpec("swim", sim.NP)
	// The same cell twice in one batch, plus a second concurrent batch
	// sharing it: one execution serves all three slots. Batch 2 carries
	// a second distinct spec so waitPending(2) proves its whole enqueue
	// critical section — including the coalesced waiter — has run.
	ret1 := startBatch(c, context.Background(), []farm.Spec{spec, spec}, nil)
	waitPending(t, c, 1)
	ret2 := startBatch(c, context.Background(), []farm.Spec{spec, other}, nil)
	waitPending(t, c, 2)

	w := mustRegister(t, c, "w")
	g, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
	if err != nil || g.Grant == nil || g.Grant.Key != spec.Key() {
		t.Fatalf("acquire: %+v %v", g, err)
	}
	g2, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
	if err != nil || g2.Grant == nil || g2.Grant.Key != other.Key() {
		t.Fatalf("second acquire should be the distinct cell: %+v %v", g2, err)
	}
	if g3, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID}); err != nil || g3.Grant != nil {
		t.Fatalf("coalesced queue should be empty: %+v %v", g3, err)
	}
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 42)}); err != nil {
		t.Fatalf("complete shared: %v", err)
	}
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g2.Grant.LeaseID,
		Outcome: fakeOutcome(other, 43)}); err != nil {
		t.Fatalf("complete distinct: %v", err)
	}
	r1, r2 := <-ret1, <-ret2
	for i, o := range r1.out {
		if !o.OK() || o.Result.Cycles != 42 {
			t.Fatalf("batch1 out[%d] = %+v, want shared cycles 42", i, o)
		}
	}
	if !r2.out[0].OK() || r2.out[0].Result.Cycles != 42 || !r2.out[1].OK() || r2.out[1].Result.Cycles != 43 {
		t.Fatalf("batch2 out = %+v", r2.out)
	}
	if snap := c.ClusterSnapshot(); snap.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (shared cell ran once)", snap.Completed)
	}
}

func TestReadThroughStoreServesRepeatsWithoutWorkers(t *testing.T) {
	clk := newFakeClock()
	store, err := farm.OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := New(Options{Store: store, Now: clk.Now})
	specs := []farm.Spec{testSpec("mgrid", sim.NP), testSpec("mgrid", sim.PMS)}

	ret := startBatch(c, context.Background(), specs, nil)
	waitPending(t, c, 2)
	w := mustRegister(t, c, "w")
	for i := range specs {
		g, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
		if err != nil || g.Grant == nil {
			t.Fatalf("acquire %d: %+v %v", i, g, err)
		}
		if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.Grant.LeaseID,
			Outcome: fakeOutcome(specs[i], uint64(100+i))}); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	if r := <-ret; r.err != nil {
		t.Fatalf("first batch: %v", r.err)
	}

	// Rerun the identical matrix with no workers registered at all: the
	// store must serve everything (zero re-simulation by construction —
	// there is nobody to simulate).
	out, err := c.RunBatch(context.Background(), specs, nil, nil)
	if err != nil {
		t.Fatalf("repeat batch: %v", err)
	}
	for i, o := range out {
		if !o.OK() || !o.Resumed || o.Result.Cycles != uint64(100+i) {
			t.Fatalf("repeat out[%d] = %+v, want resumed cycles %d", i, o, 100+i)
		}
	}
	snap := c.ClusterSnapshot()
	if snap.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (repeat ran nothing)", snap.Completed)
	}
	if snap.Store == nil || snap.Store.CacheHits < 2 {
		t.Fatalf("store stats %+v, want >= 2 cache hits", snap.Store)
	}
}

func TestRunBatchCancelDropsPendingWork(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Now: clk.Now})
	specs := []farm.Spec{testSpec("applu", sim.NP), testSpec("applu", sim.PMS)}
	ctx, cancel := context.WithCancel(context.Background())
	ret := startBatch(c, ctx, specs, nil)
	waitPending(t, c, 2)
	cancel()
	r := <-ret
	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", r.err)
	}
	if snap := c.ClusterSnapshot(); snap.TasksPending != 0 {
		t.Fatalf("pending after cancel = %d, want 0", snap.TasksPending)
	}
}

func TestCompleteKeyMismatchRejected(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Now: clk.Now})
	spec := testSpec("lu", sim.NP)
	ret := startBatch(c, context.Background(), []farm.Spec{spec}, nil)
	waitPending(t, c, 1)
	w := mustRegister(t, c, "w")
	g, err := c.Acquire(AcquireRequest{WorkerID: w.WorkerID})
	if err != nil || g.Grant == nil {
		t.Fatalf("acquire: %+v %v", g, err)
	}
	wrong := fakeOutcome(testSpec("lu", sim.PMS), 9)
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.Grant.LeaseID,
		Outcome: wrong}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("mismatched complete = %v, want ErrBadRequest", err)
	}
	// The lease is still live; the right outcome still lands.
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.Grant.LeaseID,
		Outcome: fakeOutcome(spec, 9)}); err != nil {
		t.Fatalf("correct complete: %v", err)
	}
	if r := <-ret; r.err != nil || !r.out[0].OK() {
		t.Fatalf("batch %+v", r)
	}
}
