package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asdsim/internal/farm"
	"asdsim/internal/obs/span"
	"asdsim/internal/sim"
)

// The cluster's core promise: a matrix distributed across workers —
// including a worker that dies mid-lease, forcing an expiry and a
// steal — produces byte-identical Result JSON to direct serial sim.Run
// calls. And because the segmented store is the content-addressed
// source of truth, rerunning the identical matrix re-simulates
// nothing: every cell is served read-through.
func TestMultiNodeBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var specs []farm.Spec
	for _, bench := range []string{"GemsFDTD", "milc", "tpcc"} {
		for _, mode := range []sim.Mode{sim.NP, sim.PMS} {
			cfg := sim.Default(mode, 60_000)
			cfg.Seed = 7
			specs = append(specs, farm.Spec{Benchmark: bench, Mode: mode, Config: cfg})
		}
	}

	// Ground truth: direct serial sim.Run calls.
	serial := make([][]byte, len(specs))
	for i, s := range specs {
		res, err := sim.Run(s.Benchmark, s.Config)
		if err != nil {
			t.Fatalf("serial %s/%v: %v", s.Benchmark, s.Mode, err)
		}
		serial[i] = mustMarshal(t, &res)
	}

	store, err := farm.OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Real clock: the point is surviving real expiry under -race. The
	// lease TTL comfortably exceeds one cell's runtime and the 1.5s/3
	// heartbeat cadence keeps live workers' leases extended.
	coord := New(Options{LeaseTTL: time.Second, WorkerTTL: 1500 * time.Millisecond, Store: store})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	retCh := make(chan batchRet, 1)
	go func() {
		out, err := coord.RunBatch(ctx, specs, nil, nil)
		retCh <- batchRet{out, err}
	}()
	waitPending(t, coord, len(specs))

	// Worker A acquires the first lease, then is killed mid-run: its
	// job blocks until its context dies, so the lease is orphaned and
	// must be stolen.
	aStarted := make(chan struct{})
	var aOnce sync.Once
	aPool := farm.New(farm.Options{Workers: 1, Run: func(ctx context.Context, spec farm.Spec) (sim.Result, error) {
		aOnce.Do(func() { close(aStarted) })
		<-ctx.Done()
		return sim.Result{}, ctx.Err()
	}})
	defer aPool.Close()
	aCtx, aCancel := context.WithCancel(ctx)
	defer aCancel()
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		(&Worker{Transport: &Loopback{C: coord}, Pool: aPool, Name: "doomed", Poll: 10 * time.Millisecond}).Run(aCtx)
	}()
	<-aStarted
	aCancel() // induced worker death, lease in hand
	<-aDone

	// Worker B does the real work, including the stolen cell. Its run
	// function counts executions so the second batch can prove it ran
	// nothing at all.
	var ran atomic.Int64
	bPool := farm.New(farm.Options{Workers: 2, Run: func(ctx context.Context, spec farm.Spec) (sim.Result, error) {
		ran.Add(1)
		return sim.RunContext(ctx, spec.Benchmark, spec.Config)
	}})
	defer bPool.Close()
	bCtx, bCancel := context.WithCancel(ctx)
	defer bCancel()
	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		(&Worker{Transport: &Loopback{C: coord}, Pool: bPool, Name: "survivor", Poll: 10 * time.Millisecond,
			Spans: span.NewRecorder("survivor", time.Now)}).Run(bCtx)
	}()

	r := <-retCh
	if r.err != nil {
		t.Fatalf("cluster batch: %v", r.err)
	}
	for i, o := range r.out {
		if !o.OK() {
			t.Fatalf("cluster %s/%v failed: %s", specs[i].Benchmark, specs[i].Mode, o.Err)
		}
		got := mustMarshal(t, o.Result)
		if !bytes.Equal(got, serial[i]) {
			t.Errorf("cluster %s/%v diverges from serial run:\n got %s\nwant %s",
				specs[i].Benchmark, specs[i].Mode, truncate(got), truncate(serial[i]))
		}
	}
	snap := coord.ClusterSnapshot()
	if snap.LeaseExpirations < 1 {
		t.Errorf("lease expirations = %d, want >= 1 (worker A died holding one)", snap.LeaseExpirations)
	}
	if snap.Steals < 1 {
		t.Errorf("steals = %d, want >= 1 (worker B must inherit A's cell)", snap.Steals)
	}

	// The distributed trace caught the whole story — and the outcome
	// bytes above already proved tracing perturbs nothing. Lease spans
	// are attributed to both workers even though the doomed one never
	// shipped a span itself; the survivor's execute spans arrived with
	// its completions; the steal transition is on the timeline.
	keys := make([]string, len(specs))
	for i := range specs {
		keys[i] = specs[i].Key()
	}
	spans := coord.Spans(keys)
	if len(spans) == 0 {
		t.Fatal("coordinator collected no spans")
	}
	nodes, names := map[string]bool{}, map[string]bool{}
	for _, sp := range spans {
		nodes[sp.Node] = true
		names[sp.Name] = true
	}
	for _, n := range []string{"coordinator", "doomed", "survivor"} {
		if !nodes[n] {
			t.Errorf("trace has no spans on node %q (nodes: %v)", n, nodes)
		}
	}
	for _, n := range []string{"job", "submit", "lease", "steal", "expire", "execute"} {
		if !names[n] {
			t.Errorf("trace has no %q span (names: %v)", n, names)
		}
	}
	var tbuf bytes.Buffer
	if err := span.WriteChromeTrace(&tbuf, spans); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) < len(spans) {
		t.Errorf("exported trace has %d events for %d spans", len(tr.TraceEvents), len(spans))
	}

	// Identical matrix again: the read-through store serves every cell;
	// the workers simulate nothing.
	ranBefore := ran.Load()
	out2, err := coord.RunBatch(ctx, specs, nil, nil)
	if err != nil {
		t.Fatalf("repeat batch: %v", err)
	}
	for i, o := range out2 {
		if !o.OK() || !o.Resumed {
			t.Fatalf("repeat %s/%v not resumed: %+v", specs[i].Benchmark, specs[i].Mode, o)
		}
		if got := mustMarshal(t, o.Result); !bytes.Equal(got, serial[i]) {
			t.Errorf("resumed %s/%v diverges from serial run", specs[i].Benchmark, specs[i].Mode)
		}
	}
	if now := ran.Load(); now != ranBefore {
		t.Errorf("repeat batch re-simulated %d cells, want 0 (read-through)", now-ranBefore)
	}
	if st := coord.ClusterSnapshot().Store; st == nil || st.CacheHits < uint64(len(specs)) {
		t.Errorf("store cache hits = %+v, want >= %d (repeat served from cache)", st, len(specs))
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func truncate(b []byte) string {
	if len(b) > 300 {
		return fmt.Sprintf("%s... (%d bytes)", b[:300], len(b))
	}
	return string(b)
}
