// Package dram models the DDR2-533 SDRAM main memory of the paper's
// Power5+ system: per-bank row-buffer timing with open-page policy, a
// shared data bus, and a Micron-datasheet-style power/energy model. It is
// the substitute for the Memsim simulator used in the paper (§4.3).
//
// All times in this package are DRAM command-clock cycles (266 MHz for
// DDR2-533; 8 CPU cycles each at 2.132 GHz).
package dram

import (
	"fmt"

	"asdsim/internal/mem"
	"asdsim/internal/obs"
)

// Timing holds the DRAM timing constraints in DRAM clocks.
type Timing struct {
	TRCD int // row-to-column delay (ACT -> READ/WRITE)
	TCL  int // CAS latency (READ -> first data)
	TRP  int // precharge time (PRE -> ACT)
	TRC  int // minimum ACT-to-ACT interval within a bank
	TRAS int // minimum ACT-to-PRE interval
	TWR  int // write recovery (end of write data -> PRE)
	// TBurst is the data-bus occupancy per 128-byte line: burst length 8
	// on a 16-byte-wide channel is 4 clocks.
	TBurst int
	// TREFI is the average refresh interval per rank (7.8 us, ~2080
	// clocks at 266 MHz); 0 disables refresh.
	TREFI int
	// TRFC is the refresh cycle time during which a refreshing rank's
	// banks are unavailable.
	TRFC int
}

// Geometry describes the DRAM organisation.
type Geometry struct {
	Ranks        int
	BanksPerRank int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes int
}

// Power holds the datasheet-shaped energy parameters. The absolute values
// are representative of a 2-rank DDR2-533 registered DIMM built from
// 512 Mb x8 devices; the paper's power results depend only on the ratio of
// operation energy to background power, which any datasheet instance
// preserves.
type Power struct {
	// BackgroundWatts is drawn continuously (standby + refresh).
	BackgroundWatts float64
	// ActivateNJ is the energy of one ACT+PRE pair.
	ActivateNJ float64
	// ReadNJ is the energy of one 128-byte read burst (incl. I/O).
	ReadNJ float64
	// WriteNJ is the energy of one 128-byte write burst (incl. ODT).
	WriteNJ float64
	// RefreshNJ is the energy of one per-rank auto-refresh command.
	RefreshNJ float64
}

// Config bundles the DRAM model parameters.
type Config struct {
	Timing   Timing
	Geometry Geometry
	Power    Power
}

// DefaultConfig returns DDR2-533 parameters: 4-4-4 at 266 MHz, 4 ranks of
// 8 banks with 2 KB rows (a Power5+-class server DIMM population).
func DefaultConfig() Config {
	return Config{
		Timing:   Timing{TRCD: 4, TCL: 4, TRP: 4, TRAS: 11, TRC: 15, TWR: 4, TBurst: 4, TREFI: 2080, TRFC: 34},
		Geometry: Geometry{Ranks: 4, BanksPerRank: 8, RowBytes: 2048},
		// A 4-rank registered-DIMM population idles at several watts;
		// background power dominating operation energy is what makes
		// prefetching's runtime reduction translate into net DRAM
		// energy savings (paper §5.2.1).
		Power: Power{BackgroundWatts: 6.5, ActivateNJ: 17, ReadNJ: 35, WriteNJ: 37, RefreshNJ: 120},
	}
}

// bank tracks one DRAM bank's row buffer and timing state.
type bank struct {
	rowOpen      bool
	row          uint64
	readyAt      uint64 // earliest cycle the bank can accept a new column/row command
	lastActivate uint64
	activated    bool // whether lastActivate is meaningful
	// lastWasPrefetch marks that the most recent command occupying this
	// bank was a memory-side prefetch; the adaptive scheduler's conflict
	// counter is driven by this.
	lastWasPrefetch bool
	busyUntil       uint64 // cycle until which the bank is servicing its current command
	// refreshSeen is the index of the last auto-refresh window already
	// applied to this bank (refresh is applied lazily on access).
	refreshSeen uint64
	// refOffset is the rank's refresh stagger offset (fixed at New) and
	// refDue the next cycle at which an unapplied refresh boundary
	// passes: refOffset + (refreshSeen+1)*TREFI. applyRefresh's fast
	// path is a single compare against refDue instead of re-deriving
	// the boundary index by division on every bank query.
	refOffset uint64
	refDue    uint64
}

// DRAM is the memory device array plus channel.
type DRAM struct {
	cfg          Config
	banks        []bank
	linesPerRow  uint64
	totalBanks   uint64
	busFreeAt    uint64 // data-bus availability
	lastCycle    uint64 // latest cycle observed (for energy integration)
	firstCycle   uint64
	sawFirst     bool
	activations  uint64
	reads        uint64
	writes       uint64
	rowHits      uint64
	rowMisses    uint64
	rowConflicts uint64
	bus          *obs.Bus // nil when no observer is attached
}

// New returns a DRAM model for cfg.
func New(cfg Config) *DRAM {
	g := cfg.Geometry
	if g.Ranks <= 0 || g.BanksPerRank <= 0 || g.RowBytes < mem.LineSize {
		panic(fmt.Sprintf("dram: invalid geometry %+v", g))
	}
	t := cfg.Timing
	if t.TRCD <= 0 || t.TCL <= 0 || t.TRP <= 0 || t.TBurst <= 0 || t.TRC <= 0 {
		panic(fmt.Sprintf("dram: invalid timing %+v", t))
	}
	total := g.Ranks * g.BanksPerRank
	d := &DRAM{
		cfg:         cfg,
		banks:       make([]bank, total),
		linesPerRow: uint64(g.RowBytes / mem.LineSize),
		totalBanks:  uint64(total),
	}
	d.initRefresh()
	return d
}

// initRefresh seeds each bank's refresh stagger offset and first due
// cycle (^uint64(0) when refresh is disabled, so the fast path's single
// compare always fails).
func (d *DRAM) initRefresh() {
	t := d.cfg.Timing
	g := d.cfg.Geometry
	for i := range d.banks {
		bk := &d.banks[i]
		if t.TREFI <= 0 {
			bk.refOffset = 0
			bk.refDue = ^uint64(0)
			continue
		}
		rank := i / g.BanksPerRank
		bk.refOffset = uint64(rank) * uint64(t.TREFI) / uint64(g.Ranks)
		bk.refDue = bk.refOffset + uint64(t.TREFI)
	}
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// SetObserver attaches a probe bus (nil detaches). DRAM probes convert
// their DRAM-cycle timestamps to CPU cycles before publishing.
func (d *DRAM) SetObserver(b *obs.Bus) { d.bus = b }

// Decoded is a line's (bank, row) address decomposition. Decoding costs
// two integer divisions, and the controller interrogates the same line's
// bank many times per queued command (CanIssue, BankBusy, WouldRowHit,
// Issue, scheduler scoring) — so callers decode once at command
// admission and pass the Decoded value to the *D method variants below.
type Decoded struct {
	Bank int
	Row  uint64
}

// Decode maps a line to its (bank, row). Lines interleave across columns
// first, then banks, then rows — the standard open-page mapping that
// gives streams row-buffer hits and spreads independent streams over
// banks.
//
//asd:hotpath
func (d *DRAM) Decode(l mem.Line) Decoded {
	col := uint64(l) / d.linesPerRow
	return Decoded{Bank: int(col % d.totalBanks), Row: col / d.totalBanks}
}

// BankOf returns the bank index a line maps to.
func (d *DRAM) BankOf(l mem.Line) int {
	return d.Decode(l).Bank
}

// applyRefresh lazily accounts auto-refresh for the bank: every TREFI
// clocks the bank's rank refreshes, closing the open row and holding the
// bank for TRFC. Refresh slots are staggered across ranks by a quarter
// interval so all ranks never pause at once.
// applyRefresh's fast path: a bank is up to date until its precomputed
// refDue cycle passes, so the common case is one compare. The slow path
// derives the boundary index k and charges all elapsed refreshes at
// once (refresh is applied lazily; an idle span of many TREFI windows is
// fast-forwarded in this single step rather than integrated per window).
func (d *DRAM) applyRefresh(bankIdx int, bk *bank, now uint64) {
	if now < bk.refDue {
		return
	}
	t := d.cfg.Timing
	k := (now - bk.refOffset) / uint64(t.TREFI)
	refEnd := bk.refOffset + k*uint64(t.TREFI) + uint64(t.TRFC)
	bk.refreshSeen = k
	bk.refDue = bk.refOffset + (k+1)*uint64(t.TREFI)
	bk.rowOpen = false
	if refEnd > bk.readyAt {
		bk.readyAt = refEnd
	}
	if d.bus != nil {
		d.bus.Emit(obs.Event{Kind: obs.KindDRAMRefresh, Cycle: now * mem.CPUCyclesPerDRAMCycle,
			V2: int64(bankIdx)})
	}
}

// BankBusy reports whether the bank holding line is still occupied at
// cycle now, and whether the occupying command was a memory-side
// prefetch.
func (d *DRAM) BankBusy(l mem.Line, now uint64) (busy, byPrefetch bool) {
	return d.BankBusyD(d.Decode(l), now)
}

// BankBusyD is BankBusy for a pre-decoded line.
//
//asd:hotpath
func (d *DRAM) BankBusyD(dec Decoded, now uint64) (busy, byPrefetch bool) {
	bk := &d.banks[dec.Bank]
	if bk.busyUntil > now {
		return true, bk.lastWasPrefetch
	}
	return false, false
}

// CanIssue reports whether a command for line could begin at cycle now
// without waiting on its bank (the data bus may still delay the burst).
func (d *DRAM) CanIssue(l mem.Line, now uint64) bool {
	return d.CanIssueD(d.Decode(l), now)
}

// CanIssueD is CanIssue for a pre-decoded line.
//
//asd:hotpath
func (d *DRAM) CanIssueD(dec Decoded, now uint64) bool {
	bk := &d.banks[dec.Bank]
	d.applyRefresh(dec.Bank, bk, now)
	return bk.readyAt <= now
}

// ReadyAtD returns a lower bound on the first DRAM cycle at which the
// pre-decoded line's bank could accept a command; a pending refresh may
// push the true ready time later, so callers must still confirm with
// CanIssueD at that cycle. It does not mutate bank state.
//
//asd:hotpath
func (d *DRAM) ReadyAtD(dec Decoded) uint64 { return d.banks[dec.Bank].readyAt }

// WouldRowHit reports whether line would hit its bank's open row (the
// AHB scheduler uses this to prefer row-buffer hits).
func (d *DRAM) WouldRowHit(l mem.Line) bool {
	return d.WouldRowHitD(d.Decode(l))
}

// WouldRowHitD is WouldRowHit for a pre-decoded line.
//
//asd:hotpath
func (d *DRAM) WouldRowHitD(dec Decoded) bool {
	bk := &d.banks[dec.Bank]
	return bk.rowOpen && bk.row == dec.Row
}

// Issue performs a read or write of line starting no earlier than cycle
// now and returns the cycle at which the data transfer completes. The
// model serialises per-bank operations, enforces tRC between activates,
// charges precharge+activate on row misses, and serialises bursts on the
// shared data bus. isPrefetch tags the bank for conflict attribution.
func (d *DRAM) Issue(l mem.Line, isWrite, isPrefetch bool, now uint64) uint64 {
	return d.IssueD(l, d.Decode(l), isWrite, isPrefetch, now)
}

// IssueD is Issue for a pre-decoded line (l is still needed for probe
// events).
//
//asd:hotpath
func (d *DRAM) IssueD(l mem.Line, dec Decoded, isWrite, isPrefetch bool, now uint64) uint64 {
	if !d.sawFirst {
		d.firstCycle = now
		d.sawFirst = true
	}
	b, row := dec.Bank, dec.Row
	bk := &d.banks[b]
	t := d.cfg.Timing
	d.applyRefresh(b, bk, now)

	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}

	var casAt uint64
	var rowOutcome int64
	switch {
	case bk.rowOpen && bk.row == row:
		// Row hit: CAS immediately.
		d.rowHits++
		casAt = start
	case bk.rowOpen:
		// Row conflict: precharge, activate, CAS.
		d.rowConflicts++
		rowOutcome = 2
		actAt := start + uint64(t.TRP)
		if bk.activated && actAt < bk.lastActivate+uint64(t.TRC) {
			actAt = bk.lastActivate + uint64(t.TRC)
		}
		bk.lastActivate = actAt
		bk.activated = true
		d.activations++
		casAt = actAt + uint64(t.TRCD)
	default:
		// Row closed (cold bank): activate, CAS.
		d.rowMisses++
		rowOutcome = 1
		actAt := start
		if bk.activated && actAt < bk.lastActivate+uint64(t.TRC) {
			actAt = bk.lastActivate + uint64(t.TRC)
		}
		bk.lastActivate = actAt
		bk.activated = true
		d.activations++
		casAt = actAt + uint64(t.TRCD)
	}
	bk.rowOpen = true
	bk.row = row

	dataStart := casAt + uint64(t.TCL)
	if dataStart < d.busFreeAt {
		dataStart = d.busFreeAt
	}
	dataEnd := dataStart + uint64(t.TBurst)
	d.busFreeAt = dataEnd

	if isWrite {
		d.writes++
		bk.readyAt = dataEnd + uint64(t.TWR)
	} else {
		d.reads++
		bk.readyAt = dataEnd
	}
	bk.busyUntil = bk.readyAt
	bk.lastWasPrefetch = isPrefetch

	if dataEnd > d.lastCycle {
		d.lastCycle = dataEnd
	}
	if d.bus != nil {
		var flags int64
		if isWrite {
			flags |= 1
		}
		if isPrefetch {
			flags |= 2
		}
		d.bus.Emit(obs.Event{Kind: obs.KindDRAMAccess, Cycle: now * mem.CPUCyclesPerDRAMCycle,
			Line: l, V1: rowOutcome, V2: int64(b), V3: flags})
	}
	return dataEnd
}

// ObserveCycle extends the energy-integration window to cycle (used so
// idle tail time still accrues background power).
//
//asd:hotpath
func (d *DRAM) ObserveCycle(cycle uint64) {
	if !d.sawFirst {
		d.firstCycle = cycle
		d.sawFirst = true
	}
	if cycle > d.lastCycle {
		d.lastCycle = cycle
	}
}

// Stats is a snapshot of DRAM activity and its power/energy totals.
type Stats struct {
	Activations  uint64
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	// Cycles is the integration window in DRAM clocks.
	Cycles uint64
	// EnergyNJ is total energy over the window in nanojoules.
	EnergyNJ float64
	// AvgPowerWatts is EnergyNJ / window duration.
	AvgPowerWatts float64
}

// dramClockHz is the DDR2-533 command clock.
const dramClockHz = float64(mem.CPUHz) / float64(mem.CPUCyclesPerDRAMCycle)

// Stats computes the activity/power snapshot.
func (d *DRAM) Stats() Stats {
	var cycles uint64
	if d.sawFirst && d.lastCycle > d.firstCycle {
		cycles = d.lastCycle - d.firstCycle
	}
	seconds := float64(cycles) / dramClockHz
	p := d.cfg.Power
	var refreshes float64
	if d.cfg.Timing.TREFI > 0 {
		refreshes = float64(cycles) / float64(d.cfg.Timing.TREFI) * float64(d.cfg.Geometry.Ranks)
	}
	energy := p.BackgroundWatts*seconds*1e9 +
		float64(d.activations)*p.ActivateNJ +
		float64(d.reads)*p.ReadNJ +
		float64(d.writes)*p.WriteNJ +
		refreshes*p.RefreshNJ
	var watts float64
	if seconds > 0 {
		watts = energy / 1e9 / seconds
	}
	return Stats{
		Activations:   d.activations,
		Reads:         d.reads,
		Writes:        d.writes,
		RowHits:       d.rowHits,
		RowMisses:     d.rowMisses,
		RowConflicts:  d.rowConflicts,
		Cycles:        cycles,
		EnergyNJ:      energy,
		AvgPowerWatts: watts,
	}
}

// Reset clears all bank state and counters.
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = bank{}
	}
	d.initRefresh()
	d.busFreeAt = 0
	d.lastCycle = 0
	d.firstCycle = 0
	d.sawFirst = false
	d.activations = 0
	d.reads = 0
	d.writes = 0
	d.rowHits = 0
	d.rowMisses = 0
	d.rowConflicts = 0
}
