package dram

import (
	"math"
	"testing"
	"testing/quick"

	"asdsim/internal/mem"
)

func tiny() *DRAM {
	return New(Config{
		Timing:   Timing{TRCD: 4, TCL: 4, TRP: 4, TRAS: 11, TRC: 15, TWR: 4, TBurst: 4},
		Geometry: Geometry{Ranks: 1, BanksPerRank: 2, RowBytes: 512}, // 4 lines per row
		Power:    Power{BackgroundWatts: 1, ActivateNJ: 10, ReadNJ: 20, WriteNJ: 25},
	})
}

func TestNewPanics(t *testing.T) {
	bad := []Config{
		{Timing: DefaultConfig().Timing, Geometry: Geometry{Ranks: 0, BanksPerRank: 8, RowBytes: 2048}},
		{Timing: DefaultConfig().Timing, Geometry: Geometry{Ranks: 1, BanksPerRank: 8, RowBytes: 64}},
		{Timing: Timing{}, Geometry: DefaultConfig().Geometry},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDecodeMapping(t *testing.T) {
	d := tiny() // 4 lines/row, 2 banks
	// Lines 0-3 -> bank rotates col%2... col = line/4.
	// line 0..3: col 0 -> bank 0, row 0; line 4..7: col 1 -> bank 1 row 0;
	// line 8..11: col 2 -> bank 0 row 1.
	if b := d.BankOf(0); b != 0 {
		t.Errorf("BankOf(0) = %d", b)
	}
	if b := d.BankOf(4); b != 1 {
		t.Errorf("BankOf(4) = %d", b)
	}
	if b := d.BankOf(8); b != 0 {
		t.Errorf("BankOf(8) = %d", b)
	}
}

func TestColdReadLatency(t *testing.T) {
	d := tiny()
	done := d.Issue(0, false, false, 0)
	// Cold bank: ACT at 0, CAS at tRCD=4, data at +tCL=8..12.
	if done != 12 {
		t.Errorf("cold read completes at %d, want 12", done)
	}
	st := d.Stats()
	if st.Activations != 1 || st.Reads != 1 || st.RowMisses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestRowHitLatency(t *testing.T) {
	d := tiny()
	first := d.Issue(0, false, false, 0)
	// Line 1 shares the row: CAS-only, but bank ready only after first.
	done := d.Issue(1, false, false, first)
	if done != first+4+4 { // tCL + burst
		t.Errorf("row-hit read completes at %d, want %d", done, first+8)
	}
	if st := d.Stats(); st.RowHits != 1 {
		t.Errorf("RowHits = %d", st.RowHits)
	}
}

func TestRowConflictLatency(t *testing.T) {
	d := tiny()
	first := d.Issue(0, false, false, 0) // opens row 0 of bank 0
	// Line 8 is bank 0 row 1: precharge (4) + activate (but tRC=15 from
	// the activate at cycle 0 binds) + tRCD + tCL + burst.
	done := d.Issue(8, false, false, first)
	// start=12 (bank ready), PRE->ACT at 16, but tRC pushes ACT to 15; 16>15 so 16.
	want := uint64(16 + 4 + 4 + 4)
	if done != want {
		t.Errorf("row-conflict read completes at %d, want %d", done, want)
	}
	if st := d.Stats(); st.RowConflicts != 1 {
		t.Errorf("RowConflicts = %d", st.RowConflicts)
	}
}

func TestTRCEnforced(t *testing.T) {
	d := tiny()
	d.Issue(0, false, false, 0) // ACT bank0 at 0
	// Immediately conflict the row at the earliest possible time.
	done := d.Issue(8, false, false, 0)
	// Bank ready at 12; PRE 12->16; ACT candidate 16 >= tRC bound 15. So
	// CAS 20, data 24..28.
	if done != 28 {
		t.Errorf("done = %d, want 28", done)
	}
}

func TestBusSerialisation(t *testing.T) {
	d := tiny()
	// Two cold reads to different banks at the same time: the second's
	// burst must queue behind the first on the shared bus.
	a := d.Issue(0, false, false, 0) // bank 0: data 8..12
	b := d.Issue(4, false, false, 0) // bank 1: CAS path also 8..12, bus pushes to 12..16
	if a != 12 || b != 16 {
		t.Errorf("a=%d b=%d, want 12 and 16", a, b)
	}
}

func TestWriteRecovery(t *testing.T) {
	d := tiny()
	end := d.Issue(0, true, false, 0)
	if st := d.Stats(); st.Writes != 1 {
		t.Errorf("Writes = %d", st.Writes)
	}
	// Bank unavailable until end+tWR.
	if d.CanIssue(1, end) {
		t.Error("bank should still be in write recovery")
	}
	if !d.CanIssue(1, end+4) {
		t.Error("bank should be ready after tWR")
	}
}

func TestBankBusyAttribution(t *testing.T) {
	d := tiny()
	end := d.Issue(0, false, true, 0) // prefetch occupies bank 0
	busy, byPf := d.BankBusy(1, end-1)
	if !busy || !byPf {
		t.Errorf("busy=%v byPf=%v, want true,true", busy, byPf)
	}
	busy, _ = d.BankBusy(1, end)
	if busy {
		t.Error("bank should be free at completion cycle")
	}
	// Different bank is unaffected.
	if busy, _ := d.BankBusy(4, 1); busy {
		t.Error("bank 1 should be idle")
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := tiny()
	d.Issue(0, false, false, 0)
	d.Issue(1, false, false, 12)
	d.Issue(2, true, false, 20)
	st := d.Stats()
	wantOps := 1*10.0 + 2*20.0 + 1*25.0 // 1 ACT, 2 reads, 1 write
	seconds := float64(st.Cycles) / (float64(mem.CPUHz) / 8)
	wantBg := 1.0 * seconds * 1e9
	if math.Abs(st.EnergyNJ-(wantOps+wantBg)) > 1e-6 {
		t.Errorf("EnergyNJ = %v, want %v", st.EnergyNJ, wantOps+wantBg)
	}
	if st.AvgPowerWatts <= 1.0 {
		t.Errorf("AvgPowerWatts = %v, should exceed background", st.AvgPowerWatts)
	}
}

func TestObserveCycleExtendsWindow(t *testing.T) {
	d := tiny()
	d.Issue(0, false, false, 0)
	before := d.Stats()
	d.ObserveCycle(before.Cycles * 10)
	after := d.Stats()
	if after.Cycles <= before.Cycles {
		t.Error("ObserveCycle did not extend the window")
	}
	if after.AvgPowerWatts >= before.AvgPowerWatts {
		t.Error("idle time should dilute average power")
	}
}

func TestStatsEmpty(t *testing.T) {
	d := tiny()
	st := d.Stats()
	if st.Cycles != 0 || st.EnergyNJ != 0 || st.AvgPowerWatts != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	d := tiny()
	d.Issue(0, false, false, 0)
	d.Reset()
	st := d.Stats()
	if st.Reads != 0 || st.Activations != 0 || st.Cycles != 0 {
		t.Errorf("reset stats = %+v", st)
	}
	if done := d.Issue(0, false, false, 0); done != 12 {
		t.Errorf("post-reset cold read = %d, want 12", done)
	}
}

// Property: completion time is always strictly after issue time and
// monotone per bank; repeated sequential reads of one row are row hits.
func TestIssueProperties(t *testing.T) {
	f := func(lines []uint16) bool {
		d := New(DefaultConfig())
		now := uint64(0)
		for _, raw := range lines {
			l := mem.Line(raw)
			done := d.Issue(l, false, false, now)
			if done <= now {
				return false
			}
			now = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSequentialStreamMostlyRowHits(t *testing.T) {
	d := New(DefaultConfig())
	now := uint64(0)
	for l := mem.Line(0); l < 256; l++ {
		now = d.Issue(l, false, false, now)
	}
	st := d.Stats()
	if st.RowHits < 200 {
		t.Errorf("sequential stream row hits = %d/256, want most", st.RowHits)
	}
}

func BenchmarkIssue(b *testing.B) {
	d := New(DefaultConfig())
	now := uint64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = d.Issue(mem.Line(i*17), false, false, now)
	}
}

func TestRefreshClosesRowAndHoldsBank(t *testing.T) {
	cfg := Config{
		Timing:   Timing{TRCD: 4, TCL: 4, TRP: 4, TRAS: 11, TRC: 15, TWR: 4, TBurst: 4, TREFI: 100, TRFC: 30},
		Geometry: Geometry{Ranks: 1, BanksPerRank: 2, RowBytes: 512},
		Power:    Power{BackgroundWatts: 1, ActivateNJ: 10, ReadNJ: 20, WriteNJ: 25, RefreshNJ: 50},
	}
	d := New(cfg)
	d.Issue(0, false, false, 0) // opens row 0 of bank 0
	// Right after the k=1 refresh at cycle 100, the bank must be held
	// until 130 and its row closed.
	if d.CanIssue(0, 110) {
		t.Error("bank available during refresh window")
	}
	if !d.CanIssue(0, 130) {
		t.Error("bank not released after tRFC")
	}
	// Row was closed: the access at 130 is a row miss (activate), not a
	// row hit.
	before := d.Stats().RowMisses
	d.Issue(0, false, false, 130)
	if d.Stats().RowMisses != before+1 {
		t.Error("refresh should close the open row")
	}
}

func TestRefreshDisabledWhenTREFIZero(t *testing.T) {
	d := tiny() // TREFI 0
	d.Issue(0, false, false, 0)
	if !d.CanIssue(0, 1<<20) {
		t.Error("bank should be free with refresh disabled")
	}
	st := d.Stats()
	// No refresh energy contribution beyond ops+background.
	if st.EnergyNJ <= 0 {
		t.Error("energy should be positive")
	}
}

func TestRefreshEnergyCounted(t *testing.T) {
	cfg := Config{
		Timing:   Timing{TRCD: 4, TCL: 4, TRP: 4, TRC: 15, TBurst: 4, TREFI: 100, TRFC: 30},
		Geometry: Geometry{Ranks: 2, BanksPerRank: 2, RowBytes: 512},
		Power:    Power{RefreshNJ: 50},
	}
	d := New(cfg)
	d.Issue(0, false, false, 0)
	d.ObserveCycle(1000) // 10 refresh windows x 2 ranks
	st := d.Stats()
	want := 1000.0 / 100 * 2 * 50
	if math.Abs(st.EnergyNJ-want) > 1e-9 {
		t.Errorf("refresh energy = %v, want %v", st.EnergyNJ, want)
	}
}
