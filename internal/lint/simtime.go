package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The simtime pass keeps the simulator's two time domains apart. The
// model advances in simulated cycles (uint64 counters owned by the
// cpu/mc/dram clocks); the harness measures wall-clock time (time.Time
// and friends, injected so tests can fake it). The two must never meet
// in arithmetic or comparison — a cycle count compared against a
// wall-clock duration is always a unit bug — and a cycle counter must
// be monotonic: simulated time never runs backwards. Converting between
// domains is legal only through an explicit rate (multiplication or
// division), which is why `CyclesPerSec = Cycles / WallSeconds` passes.

// SimtimeAnalyzer is the time-domain separation pass.
var SimtimeAnalyzer = &Analyzer{
	Name: "simtime",
	Doc:  "keep simulated-cycle and wall-clock values out of mixed arithmetic; keep cycle counters monotonic",
	Scope: PathScope(
		"asdsim/internal/mc",
		"asdsim/internal/dram",
		"asdsim/internal/sim",
		"asdsim/internal/cluster",
	),
	Run: runSimtime,
}

// timeDomain is the lattice for one expression's time semantics.
type timeDomain int

const (
	domUnknown timeDomain = iota // ⊥: no time semantics inferred
	domCycle                     // simulated cycles
	domWall                      // host wall-clock
)

func (d timeDomain) String() string {
	switch d {
	case domCycle:
		return "simulated cycles"
	case domWall:
		return "wall-clock time"
	}
	return "unknown"
}

func runSimtime(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, trusted := pass.Pkg.funcTrustReason(fn, pass.Analyzer.Name); trusted {
				continue
			}
			checkSimtimeFunc(pass, fn)
		}
	}
}

func checkSimtimeFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				dx, dy := domainOf(pass, n.X), domainOf(pass, n.Y)
				if (dx == domCycle && dy == domWall) || (dx == domWall && dy == domCycle) {
					pass.Report(n.OpPos,
						"cross-domain time arithmetic: %s (%s) %s %s (%s); convert through an explicit rate instead",
						types.ExprString(n.X), dx, n.Op, types.ExprString(n.Y), dy)
				}
			}
		case *ast.AssignStmt:
			checkSimtimeAssign(pass, n)
		case *ast.IncDecStmt:
			if n.Tok == token.DEC && domainOf(pass, n.X) == domCycle {
				pass.Report(n.Pos(),
					"non-monotonic cycle assignment: %s is decremented; simulated time never runs backwards",
					types.ExprString(n.X))
			}
		}
		return true
	})
}

func checkSimtimeAssign(pass *Pass, n *ast.AssignStmt) {
	switch n.Tok {
	case token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		dl, dr := domainOf(pass, lhs), domainOf(pass, n.Rhs[i])
		if n.Tok == token.SUB_ASSIGN && dl == domCycle {
			pass.Report(n.TokPos,
				"non-monotonic cycle assignment: %s is decremented; simulated time never runs backwards",
				types.ExprString(lhs))
			continue
		}
		if (dl == domCycle && dr == domWall) || (dl == domWall && dr == domCycle) {
			pass.Report(n.TokPos,
				"cross-domain assignment: %s (%s) = %s (%s); convert through an explicit rate instead",
				types.ExprString(lhs), dl, types.ExprString(n.Rhs[i]), dr)
		}
	}
}

// domainOf infers an expression's time domain from its static type
// (time.Time/time.Duration and their methods are wall-clock) and from
// naming (cycle-named counters are simulated time; wall/MS-suffixed
// names are wall-clock). Multiplication and division launder domains on
// purpose: rates are the sanctioned bridge between them.
func domainOf(pass *Pass, e ast.Expr) timeDomain {
	e = ast.Unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok {
		if tv.Value != nil {
			return domUnknown // constants carry no domain
		}
		if tv.Type != nil && isWallType(tv.Type) {
			return domWall
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		return domainOfName(e.Name)
	case *ast.SelectorExpr:
		return domainOfName(e.Sel.Name)
	case *ast.CallExpr:
		// Conversions are transparent; method results classify by the
		// receiver's wall-ness (d.Seconds() is still wall-clock) or by
		// the callee's name.
		if len(e.Args) == 1 {
			if tv, ok := pass.Pkg.Info.Types[e.Fun]; ok && tv.IsType() {
				return domainOf(pass, e.Args[0])
			}
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if t := pass.TypeOf(sel.X); t != nil && isWallType(t) {
				return domWall
			}
			return domainOfName(sel.Sel.Name)
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return domainOfName(id.Name)
		}
		return domUnknown
	case *ast.UnaryExpr:
		return domainOf(pass, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL, token.QUO, token.REM:
			return domUnknown // rate conversion: the sanctioned bridge
		}
		dx, dy := domainOf(pass, e.X), domainOf(pass, e.Y)
		if dx != domUnknown {
			return dx
		}
		return dy
	case *ast.IndexExpr:
		return domainOf(pass, e.X)
	}
	return domUnknown
}

// isWallType reports whether t is one of the wall-clock types.
func isWallType(t types.Type) bool {
	switch types.TypeString(t, nil) {
	case "time.Time", "time.Duration", "*time.Time", "*time.Timer", "*time.Ticker":
		return true
	}
	return false
}

// domainOfName classifies an identifier by naming convention.
func domainOfName(name string) timeDomain {
	lower := strings.ToLower(name)
	if strings.Contains(lower, "cycle") {
		// Rates like CyclesPerSec live in neither domain.
		if strings.Contains(lower, "persec") || strings.Contains(lower, "rate") {
			return domUnknown
		}
		return domCycle
	}
	if strings.Contains(lower, "wall") || strings.HasSuffix(name, "MS") || strings.HasSuffix(name, "Millis") {
		return domWall
	}
	return domUnknown
}
