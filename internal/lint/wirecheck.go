package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"asdsim/internal/lint/flow"
)

// The wirecheck pass guards the farm/cluster wire surface. Every struct
// reachable from the wire roots (cluster.Message, farm.Spec/Outcome,
// the provenance and trace codecs, span export) has its field names,
// types, tags, and order recorded in the checked-in wire.lock file.
// Renaming, retyping, reordering, or deleting a locked field breaks
// rolling coordinator/worker upgrades and stored-result compatibility,
// so it fails `go vet` until the lock is deliberately regenerated with
// `asdlint -write-wire-lock` and the diff reviewed. The pass also
// rejects unbounded wire-sized allocations in decode paths: a length
// read from untrusted input must be checked against a limit before it
// sizes a make().

// WirecheckAnalyzer is the wire-surface compatibility pass.
var WirecheckAnalyzer = &Analyzer{
	Name: "wirecheck",
	Doc:  "diff wire structs against wire.lock and require length guards in decoders",
	// Scope covers every package whose structs appear in the wire
	// surface: the root packages plus the config/result types their
	// closure reaches.
	Scope: PathScope(
		"asdsim/internal/cache",
		"asdsim/internal/cluster",
		"asdsim/internal/cluster/rpc",
		"asdsim/internal/core",
		"asdsim/internal/dram",
		"asdsim/internal/farm",
		"asdsim/internal/mc",
		"asdsim/internal/obs/prov",
		"asdsim/internal/obs/span",
		"asdsim/internal/prefetch",
		"asdsim/internal/sim",
		"asdsim/internal/slh",
		"asdsim/internal/stats",
		"asdsim/internal/stream",
		"asdsim/internal/trace",
	),
	Run: runWirecheck,
}

// WireLockName is the schema file wirecheck diffs against, found by
// walking up from the package directory (so fixture trees may carry
// their own lock while the repo root holds the real one).
const WireLockName = "wire.lock"

// WireRoots names the types whose reachable closure defines the wire
// surface: the cluster envelope, the farm job spec and outcome, and
// the provenance/trace/span codec records. `asdlint -write-wire-lock`
// regenerates wire.lock from these.
var WireRoots = map[string][]string{
	"asdsim/internal/cluster":  {"Message"},
	"asdsim/internal/farm":     {"Spec", "Outcome"},
	"asdsim/internal/obs/prov": {"Stream"},
	"asdsim/internal/obs/span": {"Span", "Context"},
	"asdsim/internal/trace":    {"Record"},
}

func runWirecheck(pass *Pass) {
	checkWireLock(pass)
	checkDecodeBounds(pass)
}

// checkWireLock diffs every locked struct declared in this package
// against its live shape.
func checkWireLock(pass *Pass) {
	if len(pass.Pkg.Files) == 0 {
		return
	}
	dir := filepath.Dir(pass.Pkg.Fset.Position(pass.Pkg.Files[0].Pos()).Filename)
	lock := loadWireLock(dir)
	if lock == nil {
		// No wire.lock anywhere above the package: nothing is locked.
		// The CI wire-compat gate separately insists the repo lock file
		// exists and matches a fresh regeneration.
		return
	}
	path := CanonicalPkgPath(pass.Pkg.Types.Path())
	scope := pass.Pkg.Types.Scope()
	for i := range lock.Structs {
		ls := &lock.Structs[i]
		if ls.Path != path {
			continue
		}
		obj, ok := scope.Lookup(ls.Name).(*types.TypeName)
		if !ok {
			pass.Report(pass.Pkg.Files[0].Package,
				"wire struct %s.%s is in wire.lock but no longer declared; regenerate with asdlint -write-wire-lock after reviewing compatibility", ls.Path, ls.Name)
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			pass.Report(obj.Pos(), "wire type %s.%s is locked as a struct but is no longer one", ls.Path, ls.Name)
			continue
		}
		live := flow.WireSurface([]*types.Named{named}).Lookup(ls.Path, ls.Name)
		if live == nil {
			continue
		}
		for _, msg := range flow.DiffStruct(ls, live) {
			pass.Report(obj.Pos(), "wire struct %s drifted from wire.lock: %s (regenerate with asdlint -write-wire-lock after reviewing compatibility)", ls.Name, msg)
		}
	}
}

// loadWireLock walks up from dir looking for a wire.lock file.
func loadWireLock(dir string) *flow.Schema {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil
	}
	for {
		p := filepath.Join(dir, WireLockName)
		if f, err := os.Open(p); err == nil {
			s, perr := flow.ParseSchema(f)
			f.Close()
			if perr != nil {
				return nil
			}
			return s
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil
		}
		dir = parent
	}
}

// boundedCallee matches helper names that bound their result: the
// repo's getN-style limit readers and the min/clamp family.
var boundedCallee = regexp.MustCompile(`(?i)(getn|readn|min|max|clamp|bound|limit|cap)`)

// checkDecodeBounds flags make([]T, n) in decode functions where n is
// not demonstrably bounded. A decode function is one that takes raw
// wire input: an io.Reader-like or a []byte parameter.
func checkDecodeBounds(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !takesWireInput(pass, fn) {
				continue
			}
			if _, trusted := pass.Pkg.funcTrustReason(fn, pass.Analyzer.Name); trusted {
				continue
			}
			checkDecodeFunc(pass, fn)
		}
	}
}

// takesWireInput reports whether fn has a parameter carrying raw wire
// bytes: []byte, io.Reader, or a concrete *bufio/*bytes reader.
func takesWireInput(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		t := pass.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if sl, ok := t.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
		s := types.TypeString(t, nil)
		switch s {
		case "io.Reader", "io.ByteReader", "*bufio.Reader", "*bytes.Reader", "*bytes.Buffer":
			return true
		}
	}
	return false
}

func checkDecodeFunc(pass *Pass, fn *ast.FuncDecl) {
	// First sweep: collect every identifier that is compared against
	// something (a length guard) and every identifier assigned from a
	// bounding call, anywhere in the function (closures included).
	guarded := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name := rootIdentName(side); name != "" {
						guarded[name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBoundingCall(call) {
					continue
				}
				// Both `n := getN(...)` and `n, err := getN(...)`
				// bound their first result.
				if i < len(n.Lhs) {
					if name := rootIdentName(n.Lhs[i]); name != "" {
						guarded[name] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" || len(call.Args) < 2 {
			return true
		}
		t := pass.TypeOf(call.Args[0])
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Slice); !ok {
			return true
		}
		for _, sz := range call.Args[1:] {
			if msg := unboundedSize(pass, sz, guarded); msg != "" {
				pass.Report(sz.Pos(), "unbounded wire-sized allocation: %s; check the decoded length against a limit before make", msg)
			}
		}
		return true
	})
}

// unboundedSize returns a description when the size expression is not
// demonstrably bounded, else "".
func unboundedSize(pass *Pass, e ast.Expr, guarded map[string]bool) string {
	e = ast.Unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return "" // constant
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if isBoundingCall(e) {
			return ""
		}
		// Conversions like int(n) are transparent.
		if len(e.Args) == 1 {
			if tv, ok := pass.Pkg.Info.Types[e.Fun]; ok && tv.IsType() {
				return unboundedSize(pass, e.Args[0], guarded)
			}
		}
		return fmt.Sprintf("length comes from call %s", types.ExprString(e.Fun))
	case *ast.BinaryExpr:
		// An arithmetic combination is bounded iff both sides are.
		if msg := unboundedSize(pass, e.X, guarded); msg != "" {
			return msg
		}
		return unboundedSize(pass, e.Y, guarded)
	case *ast.Ident, *ast.SelectorExpr:
		if name := rootIdentName(e); name != "" && guarded[name] {
			return ""
		}
		return fmt.Sprintf("length %s is never compared against a limit", types.ExprString(e))
	}
	return fmt.Sprintf("length %s is not demonstrably bounded", types.ExprString(e))
}

// isBoundingCall reports whether a call's callee name implies its
// result is bounded: len/cap, min, and getN-style limit readers.
func isBoundingCall(call *ast.CallExpr) bool {
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	if name == "len" || name == "cap" {
		return true
	}
	return boundedCallee.MatchString(name)
}

// rootIdentName returns the leftmost identifier of an ident or
// selector chain ("ref" for ref.n), or "".
func rootIdentName(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			// Guarding any part of the chain counts; key on the full
			// rendered expression first, falling back to the root.
			return strings.SplitN(types.ExprString(x), ".", 2)[0]
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}
