package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"asdsim/internal/lint"
)

// checkSource type-checks one import-free source string and runs Check
// over it with the given analyzers.
func checkSource(t *testing.T, src string, analyzers ...*lint.Analyzer) *lint.Result {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &lint.Package{Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	return lint.Check(pkg, &lint.Config{IgnoreScope: true}, analyzers...)
}

// messages flattens diagnostics of one pass for substring assertions.
func messages(res *lint.Result, pass string) []string {
	var out []string
	for _, d := range res.Diags {
		if d.Pass == pass {
			out = append(out, d.Message)
		}
	}
	return out
}

func TestAllowWithoutReasonIsMalformed(t *testing.T) {
	res := checkSource(t, `package p

//asd:allow determinism
func f() int { return 1 }
`)
	got := messages(res, "directive")
	if len(got) != 1 || !strings.Contains(got[0], "malformed //asd:allow") {
		t.Fatalf("want one malformed-allow diagnostic, got %q", got)
	}
}

func TestAllowUnknownPassIsFlagged(t *testing.T) {
	res := checkSource(t, `package p

//asd:allow nosuchpass the reason does not save it
func f() int { return 1 }
`)
	got := messages(res, "directive")
	if len(got) != 1 || !strings.Contains(got[0], `unknown pass "nosuchpass"`) {
		t.Fatalf("want one unknown-pass diagnostic, got %q", got)
	}
}

func TestReasonlessAllowDoesNotSuppress(t *testing.T) {
	// The tag is malformed AND the finding it tried to silence
	// survives: both diagnostics must be present.
	res := checkSource(t, `package p

type s struct{ m map[int]int }

//asd:hotpath
func (x *s) Step(v int) {
	x.m[v] = v //asd:allow hotpath-noalloc
}
`, lint.NoallocAnalyzer)
	if got := messages(res, "directive"); len(got) != 1 {
		t.Fatalf("want one malformed-allow diagnostic, got %q", got)
	}
	if got := messages(res, "hotpath-noalloc"); len(got) != 1 || !strings.Contains(got[0], "map write") {
		t.Fatalf("want the map-write finding to survive a reasonless allow, got %q", got)
	}
}

func TestReasonedAllowSuppresses(t *testing.T) {
	res := checkSource(t, `package p

type s struct{ m map[int]int }

//asd:hotpath
func (x *s) Step(v int) {
	x.m[v] = v //asd:allow hotpath-noalloc bounded table, buckets reused in steady state
}
`, lint.NoallocAnalyzer)
	if len(res.Diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", res.Diags)
	}
}

func TestFactsExportCertifiesClosureAndTrusted(t *testing.T) {
	res := checkSource(t, `package p

//asd:hotpath
func Root() { helper() }

func helper() {}

//asd:allow hotpath-noalloc vetted boundary, grows off the per-cycle path
func Boundary() {}

func Cold() {}
`)
	for _, name := range []string{"p.Root", "p.helper", "p.Boundary"} {
		if !res.Facts.Hotpath[name] {
			t.Errorf("facts missing %s: %v", name, res.Facts.Hotpath)
		}
	}
	if res.Facts.Hotpath["p.Cold"] {
		t.Errorf("cold function must not be certified: %v", res.Facts.Hotpath)
	}
}
