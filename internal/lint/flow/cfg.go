// Package flow is the control-flow and dataflow engine under asdsim's
// interprocedural lint passes (lockorder, wirecheck, simtime). Like the
// rest of internal/lint it is stdlib-only — go/ast and go/types, no
// golang.org/x/tools — so the analyzers build anywhere the simulator
// does.
//
// The package provides four pieces:
//
//   - an intraprocedural control-flow graph builder (BuildCFG) that
//     lowers one function body into basic blocks of leaf statements
//     and condition expressions, with edges for every Go control
//     construct including labeled break/continue, goto, fallthrough,
//     select, and panic-terminated paths;
//   - a forward worklist dataflow solver (Forward) that iterates a
//     caller-supplied join/transfer to a fixed point over a CFG;
//   - a same-package call-graph with deterministic fixpoint summary
//     propagation (BuildCallGraph, Fixpoint) so passes can compute
//     transitive per-function effects (which locks a call acquires,
//     whether it may block) without whole-program SSA;
//   - a wire-surface schema model (WireSurface, ParseSchema, Format)
//     describing every struct reachable from the farm/cluster wire
//     roots, serialized as the checked-in wire.lock file.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal straight-line sequence of leaf
// nodes. Nodes holds simple statements and the condition/tag
// expressions of the branch that ends the block, in execution order.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind is a human label ("entry", "if.then", "for.head", ...) for
	// debugging and tests.
	Kind string
	// Nodes are the leaf statements and branch expressions executed in
	// this block, in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Pos returns the position of the block's first node (or NoPos).
func (b *Block) Pos() token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return token.NoPos
}

// A Graph is the control-flow graph of one function body. Entry starts
// the body; Exit is the single synthetic exit joined by every return,
// panic, and fall-off-the-end path.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// BuildCFG lowers body into a control-flow graph. It never panics on
// any parseable function body (FuzzCFGBuilder pins this); constructs
// it cannot model precisely (e.g. recover-driven resumption) degrade
// to conservative edges rather than failures.
func BuildCFG(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &cfgBuilder{g: g, labels: map[string]*labelScope{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit)
	// Unresolved gotos (labels that never appeared — impossible in
	// type-checked code, possible in merely-parseable fuzz inputs)
	// conservatively edge to Exit.
	for _, pg := range b.pendingGotos {
		if ls := b.labels[pg.label]; ls != nil && ls.target != nil {
			pg.from.Succs = append(pg.from.Succs, ls.target)
		} else {
			pg.from.Succs = append(pg.from.Succs, g.Exit)
		}
	}
	return g
}

// cfgBuilder holds the in-progress graph and the lexical branch-target
// context.
type cfgBuilder struct {
	g   *Graph
	cur *Block // nil after a terminator; restarted lazily

	// breakTargets / continueTargets are innermost-first stacks.
	breakTargets    []*Block
	continueTargets []*Block

	// labels maps a label name to its targets while the labeled
	// statement is in scope (and keeps goto targets for the whole
	// function).
	labels map[string]*labelScope

	// switchCases tracks the case-body blocks of the switch statements
	// currently being lowered, for fallthrough.
	switchCases [][]*Block
	switchIdx   []int

	pendingGotos []pendingGoto
}

type labelScope struct {
	target  *Block // goto target / loop head alias
	breakTo *Block
	contTo  *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, lazily starting an unreachable one
// after a terminator so every statement lands in exactly one block.
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// jump edges the current block to target and terminates it.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// branch edges the current block to every target and keeps building in
// a fresh successor started by the caller.
func (b *cfgBuilder) edgeTo(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
}

func (b *cfgBuilder) start(blk *Block) {
	b.cur = blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label carries the name of the enclosing
// LabeledStmt when the statement is its direct body, so labeled
// break/continue resolve.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
		return

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a goto target; give it a dedicated block so
		// backward and forward gotos both have somewhere to land.
		target := b.newBlock("label." + s.Label.Name)
		b.edgeTo(target)
		b.cur = nil
		b.start(target)
		ls := &labelScope{target: target}
		b.labels[s.Label.Name] = ls
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edgeTo(then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edgeTo(els)
			b.cur = nil
			b.start(els)
			b.stmt(s.Else, "")
			b.jump(done)
		} else {
			b.edgeTo(done)
			b.cur = nil
		}
		b.start(then)
		b.stmtList(s.Body.List)
		b.jump(done)
		b.start(done)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		post := b.newBlock("for.post")
		done := b.newBlock("for.done")
		b.jump(head)
		b.start(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edgeTo(body)
			b.edgeTo(done)
		} else {
			b.edgeTo(body)
		}
		b.cur = nil
		b.pushLoop(done, post, label, head)
		b.start(body)
		b.stmtList(s.Body.List)
		b.jump(post)
		b.popLoop(label)
		b.start(post)
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		b.jump(head)
		b.start(done)

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.jump(head)
		b.start(head)
		if s.Key != nil {
			b.add(s.Key) // the per-iteration key binding
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.edgeTo(body)
		b.edgeTo(done)
		b.cur = nil
		b.pushLoop(done, head, label, head)
		b.start(body)
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popLoop(label)
		b.start(done)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.lowerSwitch(s.Body, label, func(c *ast.CaseClause) {
			for _, e := range c.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.lowerSwitch(s.Body, label, nil)

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		entry := b.block()
		var bodies []*Block
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.newBlock("select.case")
			entry.Succs = append(entry.Succs, cb)
			bodies = append(bodies, cb)
			b.cur = nil
			b.start(cb)
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			}
			b.breakTargets = append(b.breakTargets, done)
			if label != "" {
				b.labels[label].breakTo = done
			}
			b.stmtList(comm.Body)
			b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
			b.jump(done)
		}
		if len(bodies) == 0 {
			// select{} blocks forever: no successors.
			b.cur = nil
		} else {
			b.cur = nil
		}
		b.start(done)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if ls := b.labels[s.Label.Name]; ls != nil && ls.breakTo != nil {
					b.jump(ls.breakTo)
					return
				}
			}
			if n := len(b.breakTargets); n > 0 {
				b.jump(b.breakTargets[n-1])
				return
			}
			b.jump(b.g.Exit) // malformed input; stay safe
		case token.CONTINUE:
			if s.Label != nil {
				if ls := b.labels[s.Label.Name]; ls != nil && ls.contTo != nil {
					b.jump(ls.contTo)
					return
				}
			}
			if n := len(b.continueTargets); n > 0 {
				b.jump(b.continueTargets[n-1])
				return
			}
			b.jump(b.g.Exit)
		case token.GOTO:
			name := ""
			if s.Label != nil {
				name = s.Label.Name
			}
			from := b.block()
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: from, label: name})
			b.cur = nil
		case token.FALLTHROUGH:
			if n := len(b.switchCases); n > 0 {
				cases := b.switchCases[n-1]
				idx := b.switchIdx[n-1]
				if idx+1 < len(cases) {
					b.jump(cases[idx+1])
					return
				}
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.jump(b.g.Exit)
		}

	default:
		// Leaf statements: assignments, declarations, inc/dec, channel
		// sends, go, defer, empty statements.
		b.add(s)
	}
}

// lowerSwitch lowers a (type) switch body: the current block fans out
// to every case; a missing default adds a fall-through edge to done.
func (b *cfgBuilder) lowerSwitch(body *ast.BlockStmt, label string, addExprs func(*ast.CaseClause)) {
	done := b.newBlock("switch.done")
	entry := b.block()
	var cases []*ast.CaseClause
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok {
			cases = append(cases, c)
		}
	}
	bodies := make([]*Block, len(cases))
	hasDefault := false
	for i, c := range cases {
		bodies[i] = b.newBlock("switch.case")
		entry.Succs = append(entry.Succs, bodies[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		entry.Succs = append(entry.Succs, done)
	}
	b.cur = nil

	b.switchCases = append(b.switchCases, bodies)
	b.switchIdx = append(b.switchIdx, 0)
	b.breakTargets = append(b.breakTargets, done)
	if label != "" {
		b.labels[label].breakTo = done
	}
	for i, c := range cases {
		b.switchIdx[len(b.switchIdx)-1] = i
		b.start(bodies[i])
		if addExprs != nil {
			addExprs(c)
		}
		b.stmtList(c.Body)
		b.jump(done)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.switchCases = b.switchCases[:len(b.switchCases)-1]
	b.switchIdx = b.switchIdx[:len(b.switchIdx)-1]
	b.start(done)
}

func (b *cfgBuilder) pushLoop(breakTo, contTo *Block, label string, head *Block) {
	b.breakTargets = append(b.breakTargets, breakTo)
	b.continueTargets = append(b.continueTargets, contTo)
	if label != "" {
		if ls := b.labels[label]; ls != nil {
			ls.breakTo = breakTo
			ls.contTo = contTo
			ls.target = head
		}
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// isTerminalCall recognizes calls that never return, syntactically:
// panic(...) and the well-known process terminators. Type information
// is deliberately not required so the CFG builder works on parse-only
// inputs (the fuzzer's diet).
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
