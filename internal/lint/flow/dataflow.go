package flow

// Forward runs a forward may/must dataflow analysis over g to a fixed
// point and returns each block's input state. The caller supplies the
// lattice: entry is the state entering Entry, join combines states at
// control-flow merges, equal detects convergence, and transfer applies
// one block's effect. States must be treated as immutable by transfer
// (return a fresh value on change); join/transfer are never handed nil
// blocks.
//
// The solver iterates a FIFO worklist; with a monotone transfer and a
// finite-height lattice it terminates. A malformed lattice (e.g. a
// non-monotone transfer) could oscillate, so a generous iteration
// budget breaks the loop rather than hanging the driver; analyses in
// this package stay far below it.
func Forward[T any](g *Graph, entry T, join func(T, T) T, equal func(T, T) bool, transfer func(*Block, T) T) map[*Block]T {
	in := make(map[*Block]T, len(g.Blocks))
	seen := make(map[*Block]bool, len(g.Blocks))
	in[g.Entry] = entry
	seen[g.Entry] = true

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := 64 * (len(g.Blocks) + 1) * (len(g.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, in[b])
		for _, s := range b.Succs {
			var next T
			if !seen[s] {
				next = out
			} else {
				next = join(in[s], out)
			}
			if !seen[s] || !equal(next, in[s]) {
				in[s] = next
				seen[s] = true
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}
