package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the static call graph of one package: every declared
// function/method with a body, and the same-package functions each one
// calls directly. Dynamic calls (interface dispatch, func values)
// contribute no edges; passes police those per call site.
type CallGraph struct {
	// Decls maps every declared function object to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees maps a function to its same-package static callees, in
	// first-call-site order, deduplicated.
	Callees map[*types.Func][]*types.Func
	// order is every function sorted by source position, for
	// deterministic iteration.
	order []*types.Func
	fset  *token.FileSet
}

// BuildCallGraph scans files for function declarations and resolves
// their same-package static call edges through callee (typically the
// lint package's StaticCallee).
func BuildCallGraph(fset *token.FileSet, files []*ast.File, pkg *types.Package, defs map[*ast.Ident]types.Object, callee func(*ast.CallExpr) *types.Func) *CallGraph {
	cg := &CallGraph{
		Decls:   map[*types.Func]*ast.FuncDecl{},
		Callees: map[*types.Func][]*types.Func{},
		fset:    fset,
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			cg.Decls[obj] = fn
			cg.order = append(cg.order, obj)
		}
	}
	sort.Slice(cg.order, func(i, j int) bool {
		return cg.Decls[cg.order[i]].Pos() < cg.Decls[cg.order[j]].Pos()
	})
	for _, obj := range cg.order {
		fn := cg.Decls[obj]
		seen := map[*types.Func]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tgt := callee(call)
			if tgt == nil || tgt.Pkg() != pkg || seen[tgt] {
				return true
			}
			if _, declared := cg.Decls[tgt]; !declared {
				return true
			}
			seen[tgt] = true
			cg.Callees[obj] = append(cg.Callees[obj], tgt)
			return true
		})
	}
	return cg
}

// Funcs returns every declared function in source order.
func (cg *CallGraph) Funcs() []*types.Func { return cg.order }

// Fixpoint repeatedly applies update to every function (in source
// order) until one full round reports no change, propagating summary
// information through call cycles. update returns whether the
// function's summary changed this application.
func (cg *CallGraph) Fixpoint(update func(fn *types.Func, decl *ast.FuncDecl) bool) {
	for round := 0; round <= len(cg.order)+1; round++ {
		changed := false
		for _, fn := range cg.order {
			if update(fn, cg.Decls[fn]) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
