package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzCFGBuilder pins BuildCFG's contract on arbitrary parseable Go:
// it never panics, every leaf statement of a function body lands in
// exactly one block, the graph is closed (all successor pointers stay
// inside Graph.Blocks), and every block is either reachable from Entry
// or reported here as dead. The seed corpus is the lint fixture trees
// under internal/lint/testdata plus handwritten control-flow knots
// (goto cycles, trailing fallthrough, labeled break, empty select).
func FuzzCFGBuilder(f *testing.F) {
	seedFromTestdata(f)
	for _, src := range []string{
		"package p\nfunc f() { L: goto L }",
		"package p\nfunc f() { goto missing }",
		"package p\nfunc f(x int) { switch x { case 1: fallthrough } }",
		"package p\nfunc f() { L: for { break L } }",
		"package p\nfunc f() { select {} }",
		"package p\nfunc f(ch chan int) { for range ch { continue } }",
		"package p\nfunc f() { defer func() { recover() }(); panic(1) }",
		"package p\nfunc f(x int) { if x > 0 { return }; x++ }",
		"package p\nfunc f() { break; continue; fallthrough }",
	} {
		f.Add(src)
	}

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			return // only parseable inputs are in contract
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := BuildCFG(fn.Body)
			checkGraph(t, fset, g, fn.Body)
		}
	})
}

func seedFromTestdata(f *testing.F) {
	root := filepath.Join("..", "testdata")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f.Add(string(data))
		return nil
	})
	if err != nil {
		f.Fatalf("seeding from %s: %v", root, err)
	}
}

// checkGraph asserts the structural invariants of one built CFG.
func checkGraph(t *testing.T, fset *token.FileSet, g *Graph, body *ast.BlockStmt) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("graph missing entry/exit: %+v", g)
	}
	inGraph := map[*Block]bool{}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block %d carries Index %d", i, b.Index)
		}
		inGraph[b] = true
	}
	if !inGraph[g.Entry] || !inGraph[g.Exit] {
		t.Fatalf("entry/exit not listed in Blocks")
	}

	// Closure: every edge stays inside the graph. Placement: every leaf
	// node appears in exactly one block.
	placed := map[ast.Node]*Block{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !inGraph[s] {
				t.Fatalf("block %d (%s) edges to a block outside the graph", b.Index, b.Kind)
			}
		}
		for _, n := range b.Nodes {
			if prev, ok := placed[n]; ok {
				t.Fatalf("node at %s placed in blocks %d and %d", fset.Position(n.Pos()), prev.Index, b.Index)
			}
			placed[n] = b
		}
	}

	// Completeness: every leaf statement the builder lowers is placed.
	for _, s := range body.List {
		eachLeafStmt(s, func(leaf ast.Stmt) {
			if placed[leaf] == nil {
				t.Fatalf("statement at %s (%T) landed in no block", fset.Position(leaf.Pos()), leaf)
			}
		})
	}

	// Reachable-or-reported: dead blocks are legal (code after a
	// terminator, goto-orphaned labels) but must be visible, not lost.
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Nodes) > 0 {
			t.Logf("dead block %d (%s) at %s holds %d nodes", b.Index, b.Kind, fset.Position(b.Pos()), len(b.Nodes))
		}
	}

	// The solver must converge on whatever shape the builder produced;
	// block-count reachability is a monotone finite lattice.
	counts := Forward(g, 0,
		func(a, b int) int { return max(a, b) },
		func(a, b int) bool { return a == b },
		func(b *Block, in int) int { return in + len(b.Nodes) })
	for b, n := range counts {
		if n < 0 || !inGraph[b] {
			t.Fatalf("solver produced state %d for foreign block %p", n, b)
		}
	}
}

// eachLeafStmt visits every statement that BuildCFG lowers to a block
// node, recursing through compound statements exactly as the builder
// does (it does not descend into FuncLit bodies, which belong to other
// functions' graphs).
func eachLeafStmt(s ast.Stmt, visit func(ast.Stmt)) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range s.List {
			eachLeafStmt(inner, visit)
		}
	case *ast.LabeledStmt:
		eachLeafStmt(s.Stmt, visit)
	case *ast.IfStmt:
		eachLeafStmt(s.Init, visit)
		eachLeafStmt(s.Body, visit)
		eachLeafStmt(s.Else, visit)
	case *ast.ForStmt:
		eachLeafStmt(s.Init, visit)
		eachLeafStmt(s.Body, visit)
		eachLeafStmt(s.Post, visit)
	case *ast.RangeStmt:
		eachLeafStmt(s.Body, visit)
	case *ast.SwitchStmt:
		eachLeafStmt(s.Init, visit)
		for _, cl := range s.Body.List {
			if c, ok := cl.(*ast.CaseClause); ok {
				for _, inner := range c.Body {
					eachLeafStmt(inner, visit)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		eachLeafStmt(s.Init, visit)
		for _, cl := range s.Body.List {
			if c, ok := cl.(*ast.CaseClause); ok {
				for _, inner := range c.Body {
					eachLeafStmt(inner, visit)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if c, ok := cl.(*ast.CommClause); ok {
				eachLeafStmt(c.Comm, visit)
				for _, inner := range c.Body {
					eachLeafStmt(inner, visit)
				}
			}
		}
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough become edges, not nodes.
	default:
		visit(s)
	}
}
