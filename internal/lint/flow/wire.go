package flow

import (
	"bufio"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
	"strings"
)

// The wire-surface schema: a deterministic description of every struct
// reachable from the farm/cluster wire roots, serialized as the
// checked-in wire.lock file. The wirecheck pass diffs the live type
// information against the lock, so renaming, retyping, or reordering a
// wire field — which would silently break rolling coordinator/worker
// upgrades or stored-result compatibility — fails `go vet` until the
// lock is deliberately regenerated and reviewed.

// FieldSchema is one exported struct field on the wire.
type FieldSchema struct {
	// Wire is the field's wire name: the json tag name when present,
	// else the Go field name.
	Wire string
	// Go is the Go field name.
	Go string
	// Type is the field's type, fully qualified by package path.
	Type string
	// Tag is the field's complete struct tag (may be empty).
	Tag string
}

// StructSchema is the wire shape of one named struct type.
type StructSchema struct {
	// Path and Name identify the type (types.Named object).
	Path string
	Name string
	// Fields are the exported fields in declaration order. Order is
	// part of the schema: the binary codecs write fields positionally.
	Fields []FieldSchema
}

// key is the struct's stable identity in the schema.
func (s *StructSchema) key() string { return s.Path + "." + s.Name }

// Schema is the full wire surface, sorted by (Path, Name).
type Schema struct {
	Structs []StructSchema
}

// Lookup returns the schema of path.name, or nil.
func (s *Schema) Lookup(path, name string) *StructSchema {
	for i := range s.Structs {
		if s.Structs[i].Path == path && s.Structs[i].Name == name {
			return &s.Structs[i]
		}
	}
	return nil
}

// WireSurface computes the schema of every named struct reachable from
// roots through exported struct fields (traversing pointers, slices,
// arrays, and maps). Fields tagged `json:"-"` are excluded from the
// surface; unexported fields likewise (neither encoding/json nor the
// hand-rolled binary codecs can ship them).
func WireSurface(roots []*types.Named) *Schema {
	visited := map[string]bool{}
	var out []StructSchema
	var visit func(t types.Type)

	visitNamedStruct := func(n *types.Named, st *types.Struct) {
		obj := n.Obj()
		path := ""
		if obj.Pkg() != nil {
			path = obj.Pkg().Path()
		}
		key := path + "." + obj.Name()
		if visited[key] {
			return
		}
		visited[key] = true
		ss := StructSchema{Path: path, Name: obj.Name()}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			tag := st.Tag(i)
			wire, skip := wireName(f.Name(), tag)
			if skip {
				continue
			}
			ss.Fields = append(ss.Fields, FieldSchema{
				Wire: wire,
				Go:   f.Name(),
				Type: types.TypeString(f.Type(), pathQualifier),
				Tag:  tag,
			})
			visit(f.Type())
		}
		out = append(out, ss)
	}

	visit = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			visit(t.Elem())
		case *types.Slice:
			visit(t.Elem())
		case *types.Array:
			visit(t.Elem())
		case *types.Map:
			visit(t.Key())
			visit(t.Elem())
		case *types.Named:
			if st, ok := t.Underlying().(*types.Struct); ok {
				visitNamedStruct(t, st)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return &Schema{Structs: out}
}

// pathQualifier renders package-qualified type names with full import
// paths, so the schema is unambiguous across packages.
func pathQualifier(p *types.Package) string { return p.Path() }

// wireName resolves a field's wire name from its json tag; skip is
// true for `json:"-"` fields, which never cross the wire.
func wireName(goName, tag string) (wire string, skip bool) {
	jt, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return goName, false
	}
	name, _, _ := strings.Cut(jt, ",")
	switch name {
	case "-":
		return "", true
	case "":
		return goName, false
	}
	return name, false
}

// schemaVersion guards the wire.lock file format itself.
const schemaVersion = 1

// Format renders the schema in the wire.lock file form: stable,
// line-oriented, and diff-friendly.
func (s *Schema) Format() []byte {
	var b strings.Builder
	b.WriteString("# wire.lock — asdsim wire-surface schema (see internal/lint: wirecheck).\n")
	b.WriteString("# Regenerate after a deliberate wire change: asdlint -write-wire-lock wire.lock\n")
	fmt.Fprintf(&b, "version %d\n", schemaVersion)
	for _, ss := range s.Structs {
		fmt.Fprintf(&b, "struct %s.%s\n", ss.Path, ss.Name)
		for _, f := range ss.Fields {
			fmt.Fprintf(&b, "\tfield %s\t%s\t%s\t%s\n", f.Wire, f.Go, f.Type, f.Tag)
		}
	}
	return []byte(b.String())
}

// ParseSchema reads the wire.lock form back.
func ParseSchema(r io.Reader) (*Schema, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	s := &Schema{}
	var cur *StructSchema
	lineno := 0
	sawVersion := false
	for sc.Scan() {
		lineno++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, "version "):
			v := strings.TrimSpace(strings.TrimPrefix(trimmed, "version "))
			if v != fmt.Sprint(schemaVersion) {
				return nil, fmt.Errorf("wire.lock:%d: unsupported schema version %s", lineno, v)
			}
			sawVersion = true
		case strings.HasPrefix(trimmed, "struct "):
			full := strings.TrimSpace(strings.TrimPrefix(trimmed, "struct "))
			dot := strings.LastIndex(full, ".")
			if dot < 0 {
				return nil, fmt.Errorf("wire.lock:%d: malformed struct line %q", lineno, trimmed)
			}
			s.Structs = append(s.Structs, StructSchema{Path: full[:dot], Name: full[dot+1:]})
			cur = &s.Structs[len(s.Structs)-1]
		case strings.HasPrefix(line, "\tfield "):
			if cur == nil {
				return nil, fmt.Errorf("wire.lock:%d: field line outside a struct", lineno)
			}
			parts := strings.Split(strings.TrimPrefix(line, "\tfield "), "\t")
			if len(parts) < 3 {
				return nil, fmt.Errorf("wire.lock:%d: malformed field line %q", lineno, line)
			}
			f := FieldSchema{Wire: parts[0], Go: parts[1], Type: parts[2]}
			if len(parts) > 3 {
				f.Tag = strings.Join(parts[3:], "\t")
			}
			cur.Fields = append(cur.Fields, f)
		default:
			return nil, fmt.Errorf("wire.lock:%d: unrecognized line %q", lineno, trimmed)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawVersion {
		return nil, fmt.Errorf("wire.lock: missing version line")
	}
	return s, nil
}

// DiffStruct compares a locked struct shape against the live one and
// returns human-readable drift messages (empty when identical).
func DiffStruct(locked, live *StructSchema) []string {
	var out []string
	n := len(locked.Fields)
	if len(live.Fields) < n {
		n = len(live.Fields)
	}
	for i := 0; i < n; i++ {
		l, a := locked.Fields[i], live.Fields[i]
		switch {
		case l.Wire != a.Wire || l.Go != a.Go:
			out = append(out, fmt.Sprintf("field %d renamed: wire.lock has %q (Go %s), source has %q (Go %s)", i, l.Wire, l.Go, a.Wire, a.Go))
		case l.Type != a.Type:
			out = append(out, fmt.Sprintf("field %q retyped: wire.lock has %s, source has %s", l.Wire, l.Type, a.Type))
		case l.Tag != a.Tag:
			out = append(out, fmt.Sprintf("field %q tag changed: wire.lock has %q, source has %q", l.Wire, l.Tag, a.Tag))
		}
	}
	for i := n; i < len(locked.Fields); i++ {
		out = append(out, fmt.Sprintf("field %q removed from source but present in wire.lock", locked.Fields[i].Wire))
	}
	for i := n; i < len(live.Fields); i++ {
		out = append(out, fmt.Sprintf("field %q added in source but missing from wire.lock", live.Fields[i].Wire))
	}
	return out
}
