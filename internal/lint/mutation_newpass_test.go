package lint_test

import (
	"strings"
	"testing"

	"asdsim/internal/lint"
)

// Acceptance mutations for the flow-engine passes: each seeded
// regression must fail the `go vet -vettool=asdlint` gate. The tests
// rewrite one real source file in memory and assert the pass fires,
// proving the gate guards the property and not just today's source.

// TestSeededLockCycleFailsVet appends two functions to the workload
// trace cache that acquire a pair of mutexes in opposite orders; the
// lockorder pass must report the cycle.
func TestSeededLockCycleFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks workload from source")
	}
	l := newRealLoader(lint.LockorderAnalyzer)
	mutated := false
	l.Transform = func(filename string, src []byte) []byte {
		if filename != "memo.go" {
			return src
		}
		mutated = true
		return append(src, []byte(`
type lintCycA struct{ mu sync.Mutex }
type lintCycB struct{ mu sync.Mutex }

func lintLockAB(a *lintCycA, b *lintCycB) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func lintLockBA(a *lintCycA, b *lintCycB) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`)...)
	}
	if _, err := l.Load("asdsim/internal/workload"); err != nil {
		t.Fatalf("loading mutated workload: %v", err)
	}
	if !mutated {
		t.Fatal("transform never ran; memo.go moved?")
	}
	found := false
	for _, d := range l.Diags() {
		if d.Pass == "lockorder" && strings.Contains(d.Message, "lock-order cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("seeded AB/BA lock order produced no lock-order cycle finding; diags: %v", l.Diags())
	}
}

// TestRenamedWireFieldFailsVet renames trace.Record's Gap field on the
// wire (via a json tag) without touching any Go call site; the
// wirecheck pass must flag the drift against the checked-in wire.lock.
func TestRenamedWireFieldFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks trace from source")
	}
	l := newRealLoader(lint.WirecheckAnalyzer)
	l.Transform = func(filename string, src []byte) []byte {
		if filename != "trace.go" {
			return src
		}
		out := strings.Replace(string(src), "Gap uint32", "Gap uint32 `json:\"gap\"`", 1)
		if out == string(src) {
			t.Fatal("mutation did not apply; trace.Record's Gap field changed shape")
		}
		return []byte(out)
	}
	if _, err := l.Load("asdsim/internal/trace"); err != nil {
		t.Fatalf("loading mutated trace: %v", err)
	}
	found := false
	for _, d := range l.Diags() {
		if d.Pass == "wirecheck" && strings.Contains(d.Message, "drifted from wire.lock") && strings.Contains(d.Message, "renamed") {
			found = true
		}
	}
	if !found {
		t.Errorf("renaming Record.Gap on the wire produced no wirecheck drift finding; diags: %v", l.Diags())
	}
}

// TestCyclesVsWallclockComparisonFailsVet rewrites the runner's
// wall-clock stamp to compare simulated cycles against wall seconds;
// the simtime pass must flag the cross-domain comparison.
func TestCyclesVsWallclockComparisonFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the sim closure from source")
	}
	l := newRealLoader(lint.SimtimeAnalyzer)
	l.Transform = func(filename string, src []byte) []byte {
		if filename != "runner.go" {
			return src
		}
		out := strings.Replace(string(src),
			"if res.WallSeconds > 0 {",
			"if res.WallSeconds > float64(res.Cycles) {", 1)
		if out == string(src) {
			t.Fatal("mutation did not apply; runner.go's stamp guard changed shape")
		}
		return []byte(out)
	}
	if _, err := l.Load("asdsim/internal/sim"); err != nil {
		t.Fatalf("loading mutated sim: %v", err)
	}
	found := false
	for _, d := range l.Diags() {
		if d.Pass == "simtime" && strings.Contains(d.Message, "cross-domain time arithmetic") {
			found = true
		}
	}
	if !found {
		t.Errorf("comparing cycles against wall seconds produced no simtime finding; diags: %v", l.Diags())
	}
}
