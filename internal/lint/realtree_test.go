package lint_test

import (
	"go/types"
	"strings"
	"testing"

	"asdsim/internal/lint"
	"asdsim/internal/lint/linttest"
)

// realPkgs is the simulator tree the suite is checked against here, in
// a topological-friendly listing (the loader recurses through imports
// regardless of order). The farm is exercised by the vet CI gate but
// skipped in-process: its net/http dependency closure makes the
// source-importer load disproportionately slow for a unit test.
var realPkgs = []string{
	"asdsim/internal/mem",
	"asdsim/internal/stats",
	"asdsim/internal/obs",
	"asdsim/internal/obs/flightrec",
	"asdsim/internal/obs/prov",
	"asdsim/internal/trace",
	"asdsim/internal/cache",
	"asdsim/internal/slh",
	"asdsim/internal/stream",
	"asdsim/internal/prefetch",
	"asdsim/internal/cpu",
	"asdsim/internal/dram",
	"asdsim/internal/core",
	"asdsim/internal/mc",
	"asdsim/internal/workload",
	"asdsim/internal/sim",
}

// newRealLoader maps the real import paths onto the repository layout
// (the test runs with the package directory as cwd: internal/lint).
func newRealLoader(analyzers ...*lint.Analyzer) *linttest.Loader {
	l := linttest.NewLoader(analyzers...)
	for _, p := range realPkgs {
		l.Dirs[p] = "../../" + strings.TrimPrefix(p, "asdsim/")
	}
	return l
}

// loadRealTree loads and checks the whole list, failing the test on
// load errors.
func loadRealTree(t *testing.T, l *linttest.Loader) {
	t.Helper()
	for _, p := range realPkgs {
		if _, err := l.Load(p); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
}

// TestRealTreeZeroFindings runs the full suite over the real simulator
// source with real scopes: the tree must stay at zero findings, the
// same bar the CI vet gate enforces.
func TestRealTreeZeroFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree from source")
	}
	l := newRealLoader(lint.All()...)
	loadRealTree(t, l)
	for _, d := range l.Diags() {
		t.Errorf("%s: [%s] %s", l.Fset.Position(d.Pos), d.Pass, d.Message)
	}
}

// TestRealTreeTrustedInterfaceImpls closes the loop on the noalloc
// pass's trusted-interface escape hatch: dynamic dispatch through
// prefetch.MSEngine, obs.Sink and mc.arbiter is admitted on the hot
// path, so every in-repo implementation of those interfaces must have
// hot-path-certified methods. noalloc.go references this test by name.
func TestRealTreeTrustedInterfaceImpls(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree from source")
	}
	l := newRealLoader(lint.All()...)
	loadRealTree(t, l)

	trusted := []struct{ pkg, name string }{
		{"asdsim/internal/prefetch", "MSEngine"},
		{"asdsim/internal/obs", "Sink"},
		{"asdsim/internal/mc", "arbiter"},
	}
	for _, tr := range trusted {
		scope := l.Packages()[tr.pkg].Types.Scope()
		obj := scope.Lookup(tr.name)
		if obj == nil {
			t.Fatalf("%s: interface %s not found", tr.pkg, tr.name)
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			t.Fatalf("%s.%s is not an interface", tr.pkg, tr.name)
		}
		impls := 0
		for _, pkgPath := range realPkgs {
			tp := l.Packages()[pkgPath].Types
			for _, name := range tp.Scope().Names() {
				tn, ok := tp.Scope().Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				T := tn.Type()
				if types.IsInterface(T) {
					continue
				}
				ptr := types.NewPointer(T)
				var recv types.Type
				switch {
				case types.Implements(T, iface):
					recv = T
				case types.Implements(ptr, iface):
					recv = ptr
				default:
					continue
				}
				impls++
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					mobj, _, _ := types.LookupFieldOrMethod(recv, true, tp, m.Name())
					fn, ok := mobj.(*types.Func)
					if !ok {
						t.Errorf("%s.%s: method %s not found", pkgPath, name, m.Name())
						continue
					}
					facts := l.Facts(fn.Pkg().Path())
					if facts == nil || !facts.Hotpath[fn.FullName()] {
						t.Errorf("%s implements trusted interface %s.%s but %s is not hotpath-certified; annotate it //asd:hotpath",
							pkgPath+"."+name, tr.pkg, tr.name, fn.FullName())
					}
				}
			}
		}
		if impls == 0 {
			t.Errorf("%s.%s: no implementations found in the tree (test gone stale?)", tr.pkg, tr.name)
		}
	}
}

// TestDeletedExporterCaseFailsVet is the acceptance check for the
// exhaustive-events pass: deleting a case from the Chrome-trace
// exporter's event switch must produce a finding (and therefore fail
// the `go vet -vettool=asdlint` CI gate).
func TestDeletedExporterCaseFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks obs from source")
	}
	mutated := false
	l := newRealLoader(lint.ExhaustiveAnalyzer)
	l.Transform = func(filename string, src []byte) []byte {
		if filename != "chrometrace.go" {
			return src
		}
		out := strings.Replace(string(src),
			"case KindMCPBHit, KindMCBankConflict,",
			"case KindMCBankConflict,", 1)
		if out == string(src) {
			t.Fatal("mutation did not apply; chrometrace.go's ignored-kinds case changed shape")
		}
		mutated = true
		return []byte(out)
	}
	if _, err := l.Load("asdsim/internal/obs"); err != nil {
		t.Fatalf("loading mutated obs: %v", err)
	}
	if !mutated {
		t.Fatal("transform never ran")
	}
	found := false
	for _, d := range l.Diags() {
		if d.Pass == "exhaustive-events" && strings.Contains(d.Message, "misses: KindMCPBHit") {
			found = true
		}
	}
	if !found {
		t.Errorf("deleting KindMCPBHit from the trace exporter switch produced no exhaustive-events finding; diags: %v", l.Diags())
	}
}

// TestDeletedRequiredTagFailsVet pins the directive itself in place:
// stripping the //asd:exhaustive tag from the exporter switch trips
// the required-sites check instead.
func TestDeletedRequiredTagFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks obs from source")
	}
	l := newRealLoader(lint.ExhaustiveAnalyzer)
	l.Transform = func(filename string, src []byte) []byte {
		if filename != "chrometrace.go" {
			return src
		}
		out := strings.Replace(string(src), "//asd:exhaustive", "// tag removed", 1)
		if out == string(src) {
			t.Fatal("mutation did not apply")
		}
		return []byte(out)
	}
	if _, err := l.Load("asdsim/internal/obs"); err != nil {
		t.Fatalf("loading mutated obs: %v", err)
	}
	found := false
	for _, d := range l.Diags() {
		if d.Pass == "exhaustive-events" && strings.Contains(d.Message, `"TraceBuilder.Emit"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("stripping the exporter's //asd:exhaustive tag produced no required-site finding; diags: %v", l.Diags())
	}
}
