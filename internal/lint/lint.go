// Package lint is asdsim's custom static-analysis layer: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis that
// statically enforces the invariants the simulator's correctness story
// rests on — bit-for-bit determinism, an allocation-free steady-state
// kernel, telemetry that cannot perturb outcomes, exhaustive handling
// of every probe-event kind, and metric names that satisfy the
// exposition grammar.
//
// The package defines the framework (Analyzer, Pass, Diagnostic, the
// //asd:* directive language and the hot-path call-graph machinery)
// and five concrete analyzers. cmd/asdlint is the driver: it speaks
// the `go vet -vettool` unit-checker protocol so the suite runs under
// the standard build machinery, with per-package facts flowing through
// vet's .vetx files.
//
// Directives:
//
//	//asd:hotpath
//	    On a function's doc comment. Marks the function as part of the
//	    steady-state hot path: the noalloc/noperturb analyzers check it
//	    and everything it calls (transitively, within the package), and
//	    export a "hotpath-certified" fact so callers in other packages
//	    may call it from their own hot paths.
//
//	//asd:allow <pass> <reason>
//	    Suppresses findings of <pass>. On the offending line (or the
//	    line above) it suppresses that line's findings. In a function's
//	    doc comment it marks the whole function as a trusted boundary
//	    for <pass>: the function may be called from checked code but
//	    its body is exempt (e.g. an epoch roll that allocates rarely,
//	    off the per-cycle path). The reason string is mandatory.
//
//	//asd:exhaustive
//	    On a switch statement over a kind-enumeration type, or on a
//	    `var` whose type is an array indexed by such a type. Requires
//	    every declared constant of the type to be handled (switch) or
//	    named (array). See the exhaustive analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and //asd:allow tags.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Scope reports whether the pass applies to a package path. A nil
	// Scope applies everywhere. Drivers may bypass Scope for fixture
	// runs (see Config.IgnoreScope).
	Scope func(pkgPath string) bool
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Pass    string
	Message string
}

// Package bundles a type-checked package for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives map[string]map[int][]directive // filename -> line -> directives
	hot        *hotState
}

// Facts is the cross-package information a checked package exports:
// the set of functions (by types.Func FullName) that the hot-path
// analyzers have certified as safe to call from hot code. It travels
// between `go vet` compilation units through vet's .vetx files.
type Facts struct {
	// Hotpath maps a function's FullName to true when the function is
	// in the package's checked hot-path closure or is an explicitly
	// trusted boundary.
	Hotpath map[string]bool
	// Lock maps a function's FullName to its transitive lock summary
	// (which lock classes it may acquire, whether it may block, and the
	// lock-order edges its body establishes), exported by the lockorder
	// pass so callers in dependent packages compose with it.
	Lock map[string]*LockFact
}

// Config parameterizes one driver invocation of Check.
type Config struct {
	// DepFacts returns the facts of an imported package, or nil when
	// none are known (e.g. stdlib).
	DepFacts func(pkgPath string) *Facts
	// IgnoreScope runs every analyzer regardless of its Scope; fixture
	// tests use it so fixtures need not live under real import paths.
	IgnoreScope bool
	// IncludeTests includes findings in *_test.go files. Off by
	// default: the invariants guard shipped simulator code, and `go
	// vet ./...` feeds test variants of every package through the
	// driver.
	IncludeTests bool
}

// Pass carries the state for one analyzer over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Config   *Config

	diags []Diagnostic
	facts *Facts
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Pass: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// exportLockFact publishes a function's lock summary for dependent
// packages (serialized into the .vetx facts file by the driver).
func (p *Pass) exportLockFact(fullName string, f *LockFact) {
	if p.facts.Lock == nil {
		p.facts.Lock = map[string]*LockFact{}
	}
	p.facts.Lock[fullName] = f
}

// TypeOf is shorthand for the package's types.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Result is the outcome of checking one package.
type Result struct {
	Diags []Diagnostic
	Facts *Facts
	// Suppressed holds findings that an //asd:allow directive silenced,
	// with the directive's position, for machine-readable audit output.
	Suppressed []SuppressedDiag
}

// SuppressedDiag is a finding plus the directive that silenced it.
type SuppressedDiag struct {
	Diag         Diagnostic
	SuppressedBy token.Pos
}

// All returns the eight analyzers in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NoallocAnalyzer,
		NoperturbAnalyzer,
		ExhaustiveAnalyzer,
		MetricLintAnalyzer,
		LockorderAnalyzer,
		WirecheckAnalyzer,
		SimtimeAnalyzer,
	}
}

// CanonicalPkgPath strips go vet's test-variant suffix ("pkg
// [pkg.test]") so Scope matching sees the underlying import path.
func CanonicalPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// Check runs the analyzers over pkg and returns the surviving
// diagnostics (after //asd:allow filtering, sorted by position) plus
// the package's exported facts.
func Check(pkg *Package, cfg *Config, analyzers ...*Analyzer) *Result {
	if cfg == nil {
		cfg = &Config{}
	}
	pkg.buildDirectives()
	res := &Result{Facts: &Facts{Hotpath: map[string]bool{}, Lock: map[string]*LockFact{}}}

	// Directive hygiene is checked once, driver-side: every allow tag
	// must name a pass and carry a reason.
	path := CanonicalPkgPath(pkg.Types.Path())
	for _, byLine := range pkg.directives {
		for _, dirs := range byLine {
			for _, d := range dirs {
				if d.kind != dirAllow {
					continue
				}
				if d.pass == "" || d.reason == "" {
					res.Diags = append(res.Diags, Diagnostic{
						Pos:     d.pos,
						Pass:    "directive",
						Message: "malformed //asd:allow: want //asd:allow <pass> <reason>",
					})
				} else if !knownPass(d.pass) {
					res.Diags = append(res.Diags, Diagnostic{
						Pos:     d.pos,
						Pass:    "directive",
						Message: fmt.Sprintf("//asd:allow names unknown pass %q", d.pass),
					})
				}
			}
		}
	}

	for _, a := range analyzers {
		if !cfg.IgnoreScope && a.Scope != nil && !a.Scope(path) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg, facts: res.Facts}
		a.Run(pass)
		for _, d := range pass.diags {
			if !cfg.IncludeTests && strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
				continue
			}
			if by, ok := pkg.allowed(a.Name, pkg.Fset.Position(d.Pos)); ok {
				res.Suppressed = append(res.Suppressed, SuppressedDiag{Diag: d, SuppressedBy: by})
				continue
			}
			res.Diags = append(res.Diags, d)
		}
	}

	// Facts come from the hot-path machinery regardless of which
	// analyzers ran, so a facts-only (VetxOnly) run still certifies.
	hot := pkg.hotpath(cfg)
	for fn := range hot.closure {
		if obj := pkg.funcObj(fn); obj != nil {
			res.Facts.Hotpath[obj.FullName()] = true
		}
	}
	for obj := range hot.trustedObjs {
		res.Facts.Hotpath[obj.FullName()] = true
	}

	sort.Slice(res.Diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(res.Diags[i].Pos), pkg.Fset.Position(res.Diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return res.Diags[i].Message < res.Diags[j].Message
	})
	return res
}

func knownPass(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// ---- directives ----

type dirKind uint8

const (
	dirHotpath dirKind = iota
	dirAllow
	dirExhaustive
)

type directive struct {
	kind   dirKind
	pass   string // dirAllow: which analyzer is excused
	reason string // dirAllow: mandatory justification
	pos    token.Pos
	line   int
}

// buildDirectives indexes every //asd:* comment by file and line.
func (pkg *Package) buildDirectives() {
	if pkg.directives != nil {
		return
	}
	pkg.directives = map[string]map[int][]directive{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "asd:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := directive{pos: c.Pos(), line: pos.Line}
				fields := strings.Fields(text)
				switch fields[0] {
				case "asd:hotpath":
					d.kind = dirHotpath
				case "asd:allow":
					d.kind = dirAllow
					if len(fields) > 1 {
						d.pass = fields[1]
					}
					if len(fields) > 2 {
						d.reason = strings.Join(fields[2:], " ")
					}
				case "asd:exhaustive":
					d.kind = dirExhaustive
				default:
					continue
				}
				byLine := pkg.directives[pos.Filename]
				if byLine == nil {
					byLine = map[int][]directive{}
					pkg.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// at returns directives attached to a line: those on the line itself
// or on the line immediately above.
func (pkg *Package) at(filename string, line int) []directive {
	byLine := pkg.directives[filename]
	if byLine == nil {
		return nil
	}
	out := byLine[line]
	out = append(out[:len(out):len(out)], byLine[line-1]...)
	return out
}

// allowed reports whether a diagnostic of pass at posn is suppressed
// by a line-level allow directive (with a reason; reasonless tags are
// rejected separately and do not suppress).
func (pkg *Package) allowed(pass string, posn token.Position) (token.Pos, bool) {
	for _, d := range pkg.at(posn.Filename, posn.Line) {
		if d.kind == dirAllow && d.pass == pass && d.reason != "" {
			return d.pos, true
		}
	}
	return token.NoPos, false
}

// docDirectives returns directives written in a function's doc-comment
// region: from the start of its doc comment (or its own first line)
// through the line the declaration starts on.
func (pkg *Package) docDirectives(fn *ast.FuncDecl) []directive {
	posn := pkg.Fset.Position(fn.Pos())
	first := posn.Line
	if fn.Doc != nil {
		first = pkg.Fset.Position(fn.Doc.Pos()).Line
	}
	var out []directive
	byLine := pkg.directives[posn.Filename]
	for line := first; line <= posn.Line; line++ {
		out = append(out, byLine[line]...)
	}
	return out
}

// funcIsHotpathRoot reports whether fn carries //asd:hotpath.
func (pkg *Package) funcIsHotpathRoot(fn *ast.FuncDecl) bool {
	for _, d := range pkg.docDirectives(fn) {
		if d.kind == dirHotpath {
			return true
		}
	}
	return false
}

// funcTrustReason returns the reason string when fn carries a
// function-level //asd:allow for pass, marking it a trusted boundary.
func (pkg *Package) funcTrustReason(fn *ast.FuncDecl, pass string) (string, bool) {
	for _, d := range pkg.docDirectives(fn) {
		if d.kind == dirAllow && d.pass == pass && d.reason != "" {
			return d.reason, true
		}
	}
	return "", false
}

// funcObj resolves a FuncDecl to its types.Func.
func (pkg *Package) funcObj(fn *ast.FuncDecl) *types.Func {
	obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
	return obj
}

// ---- hot-path closure ----

// hotState is the per-package hot-path computation shared by the
// noalloc and noperturb analyzers and by facts export.
type hotState struct {
	// decls maps every function object declared in the package to its
	// declaration.
	decls map[*types.Func]*ast.FuncDecl
	// closure is the set of functions reachable from //asd:hotpath
	// roots through same-package static calls, stopping at trusted
	// boundaries. Values record how the function entered the closure
	// (for diagnostics).
	closure map[*ast.FuncDecl]string
	// roots are the annotated entry points.
	roots map[*ast.FuncDecl]bool
	// trustedObjs are functions excused wholesale by a function-level
	// //asd:allow for either hot-path pass; they are callable from hot
	// code and exported as facts, but their bodies are not checked.
	trustedObjs map[*types.Func]bool
}

// hotpathPasses are the analyzers whose function-level //asd:allow
// marks a trusted boundary.
var hotpathPasses = []string{"hotpath-noalloc", "noperturb"}

// hotpath computes (once) the package's hot-path closure.
func (pkg *Package) hotpath(cfg *Config) *hotState {
	if pkg.hot != nil {
		return pkg.hot
	}
	pkg.buildDirectives()
	h := &hotState{
		decls:       map[*types.Func]*ast.FuncDecl{},
		closure:     map[*ast.FuncDecl]string{},
		roots:       map[*ast.FuncDecl]bool{},
		trustedObjs: map[*types.Func]bool{},
	}
	pkg.hot = h

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pkg.funcObj(fn)
			if obj == nil {
				continue
			}
			h.decls[obj] = fn
			trusted := false
			for _, pass := range hotpathPasses {
				if _, ok := pkg.funcTrustReason(fn, pass); ok {
					trusted = true
				}
			}
			if trusted {
				h.trustedObjs[obj] = true
			}
			if pkg.funcIsHotpathRoot(fn) {
				h.roots[fn] = true
			}
		}
	}

	// Breadth-first closure over same-package static calls. Dynamic
	// calls (interfaces, func values) contribute no edges here; the
	// analyzers police them per call site.
	var queue []*ast.FuncDecl
	for fn := range h.roots {
		h.closure[fn] = "//asd:hotpath"
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		from := fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pkg.StaticCallee(call)
			if callee == nil || callee.Pkg() != pkg.Types {
				return true
			}
			if h.trustedObjs[callee] {
				return true
			}
			decl := h.decls[callee]
			if decl == nil || h.closure[decl] != "" {
				return true
			}
			h.closure[decl] = "called from " + from
			queue = append(queue, decl)
			return true
		})
	}
	return h
}

// StaticCallee resolves the target of a call when it is a statically
// known function or method (not an interface dispatch or a func-typed
// value). Generic instantiations resolve to their origin.
func (pkg *Package) StaticCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			obj = sel.Obj()
		} else {
			obj = pkg.Info.Uses[fun.Sel] // package-qualified call
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = pkg.Info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = pkg.Info.Uses[id]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// CalleeKind classifies a call for the hot-path analyzers.
type CalleeKind uint8

const (
	// CalleeStatic is a direct call to a known function or method.
	CalleeStatic CalleeKind = iota
	// CalleeInterface is a dynamic dispatch through an interface.
	CalleeInterface
	// CalleeFuncValue is a call of a func-typed variable or field.
	CalleeFuncValue
	// CalleeBuiltin is a call of a predeclared builtin.
	CalleeBuiltin
	// CalleeConversion is a type conversion, not a call.
	CalleeConversion
)

// ClassifyCall reports what kind of call site this is; fn is non-nil
// only for CalleeStatic, iface names the interface type for
// CalleeInterface, and builtin names the builtin for CalleeBuiltin.
func (pkg *Package) ClassifyCall(call *ast.CallExpr) (kind CalleeKind, fn *types.Func, iface string, builtin string) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return CalleeConversion, nil, "", ""
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return CalleeBuiltin, nil, "", obj.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
			return CalleeInterface, nil, typeName(sel.Recv()), ""
		}
	}
	if f := pkg.StaticCallee(call); f != nil {
		return CalleeStatic, f, "", ""
	}
	return CalleeFuncValue, nil, "", ""
}

// typeName renders a type's qualified name ("pkg/path.Name"), or its
// string form for unnamed types.
func typeName(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	case *types.Pointer:
		return typeName(t.Elem())
	}
	return t.String()
}

// pathHasSuffix reports whether pkg path equals full or ends with
// "/"+suffix — used so fixture packages (single-segment paths) match
// scopes written against real module paths.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PathScope builds a Scope func matching any of the given import
// paths exactly.
func PathScope(paths ...string) func(string) bool {
	set := map[string]bool{}
	for _, p := range paths {
		set[p] = true
	}
	return func(path string) bool { return set[path] }
}

// PrefixScope builds a Scope func matching any package whose import
// path equals or is nested under one of the given prefixes.
func PrefixScope(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}
