package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoperturbAnalyzer guards PR-4's instrument-does-not-perturb
// invariant statically: telemetry code reachable from the hot path
// (the probe bus, per-run flight-recorder sinks, the farm's per-run
// instrumentation) may not take locks, touch channels, select, spawn
// goroutines, or read the wall clock — any of which would let an
// observer change scheduling or timing of the run it is watching.
// Hot-path entry points on the probe bus must also keep their
// nil-receiver fast path: the disabled state has to stay one branch.
var NoperturbAnalyzer = &Analyzer{
	Name: "noperturb",
	Doc: `forbid locks, channel operations, selects, goroutines and wall-clock
reads in telemetry code reachable from //asd:hotpath entry points; require
nil-receiver guards on hot probe-bus methods`,
	Scope: PathScope(
		"asdsim/internal/obs",
		"asdsim/internal/obs/flightrec",
		// The provenance recorder's Emit and decision/slot/epoch hooks
		// run on the simulation hot path; blocking there would perturb
		// the outcomes it is supposed to witness.
		"asdsim/internal/obs/prov",
		"asdsim/internal/farm",
		// Coordinator/worker telemetry recorders run inside the lease
		// request path; they must stay lock- and channel-free.
		"asdsim/internal/cluster",
		"asdsim/internal/cluster/rpc",
	),
	Run: runNoperturb,
}

// lockMethods are methods whose call means blocking synchronization.
// Keyed by package path of the receiver's type, then method name.
var lockMethods = map[string]map[string]bool{
	"sync": {
		"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
		"TryLock": true, "TryRLock": true, "RLocker": true,
		"Wait": true, "Do": true, "Add": true, // WaitGroup/Once (Add gates peers)
	},
}

// syncMapTypes flag sync.Map usage (amortized locking + boxing).
var syncMapTypes = map[string]bool{"sync.Map": true}

func runNoperturb(pass *Pass) {
	pkg := pass.Pkg
	hot := pkg.hotpath(pass.Config)
	for fn, why := range hot.closure {
		checkNoperturbFunc(pass, fn, why)
	}
	// Nil-receiver fast path: every //asd:hotpath pointer-receiver
	// method on a probe-bus-like type must begin by bailing out on a
	// nil receiver, so the disabled state costs one branch and cannot
	// perturb anything.
	for fn := range hot.roots {
		checkNilGuard(pass, fn)
	}
}

func checkNoperturbFunc(pass *Pass, fn *ast.FuncDecl, why string) {
	pkg := pass.Pkg
	if _, trusted := pkg.funcTrustReason(fn, pass.Analyzer.Name); trusted {
		return
	}
	hotLabel := fn.Name.Name + " (hot: " + why + ")"
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "%s: goroutine spawn in telemetry reachable from the hot path", hotLabel)
		case *ast.SendStmt:
			pass.Report(n.Pos(), "%s: channel send can block the simulation goroutine", hotLabel)
		case *ast.SelectStmt:
			pass.Report(n.Pos(), "%s: select in telemetry reachable from the hot path", hotLabel)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Report(n.Pos(), "%s: channel receive can block the simulation goroutine", hotLabel)
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Report(n.Pos(), "%s: ranging over a channel blocks", hotLabel)
				}
			}
		case *ast.CallExpr:
			checkNoperturbCall(pass, hotLabel, n)
		}
		return true
	})
}

func checkNoperturbCall(pass *Pass, hotLabel string, call *ast.CallExpr) {
	pkg := pass.Pkg
	callee := pkg.StaticCallee(call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := typeName(sig.Recv().Type())
		if syncMapTypes[recv] {
			pass.Report(call.Pos(), "%s: sync.Map.%s locks and boxes; use a per-run private structure merged at end of run", hotLabel, callee.Name())
			return
		}
		if callee.Pkg().Path() == "sync" {
			if names := lockMethods["sync"]; names[callee.Name()] {
				pass.Report(call.Pos(), "%s: %s.%s is blocking synchronization; telemetry on the hot path must be lock-free (private per-run state, merged after the run)", hotLabel, recv, callee.Name())
			}
			return
		}
	}
	if callee.Pkg().Path() == "time" && wallClockFuncs[callee.Name()] && (sig == nil || sig.Recv() == nil) {
		pass.Report(call.Pos(), "%s: time.%s in telemetry reachable from the hot path; timestamp with simulated cycles", hotLabel, callee.Name())
	}
}

// checkNilGuard requires hot-path pointer-receiver methods whose
// receiver type looks like a probe bus (it is the obs.Bus type or any
// type whose methods are documented as nil-safe entry points via the
// hotpath annotation on a pointer receiver in package obs) to start
// with `if recv == nil { return }` or a `return recv != nil && ...`
// fast path.
func checkNilGuard(pass *Pass, fn *ast.FuncDecl) {
	pkg := pass.Pkg
	if CanonicalPkgPath(pkg.Types.Path()) != "asdsim/internal/obs" && !pass.Config.IgnoreScope {
		return
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
		return
	}
	// Only the bus itself carries the nil-is-disabled contract; sinks
	// hang off a non-nil bus and never see the disabled state.
	if recvTypeName(pkg, fn) != "Bus" {
		return
	}
	recvT := pkg.Info.TypeOf(fn.Recv.List[0].Type)
	if _, isPtr := recvT.(*types.Pointer); !isPtr {
		return
	}
	if len(fn.Recv.List[0].Names) == 0 {
		pass.Report(fn.Pos(), "hot-path method %s must nil-guard its receiver (receiver is unnamed)", fn.Name.Name)
		return
	}
	recvName := fn.Recv.List[0].Names[0].Name
	if hasNilGuard(fn.Body, recvName) {
		return
	}
	pass.Report(fn.Pos(), "hot-path method %s must begin with `if %s == nil { return }` so the disabled bus stays a single-branch fast path", fn.Name.Name, recvName)
}

// hasNilGuard recognizes the two accepted fast-path shapes.
func hasNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		if cond, ok := first.Cond.(*ast.BinaryExpr); ok && cond.Op == token.EQL {
			if isIdentNamed(cond.X, recv) && isNilIdent(cond.Y) && endsInReturn(first.Body) {
				return true
			}
		}
	case *ast.ReturnStmt:
		if len(first.Results) == 1 {
			if cond, ok := first.Results[0].(*ast.BinaryExpr); ok && cond.Op == token.LAND {
				if neq, ok := cond.X.(*ast.BinaryExpr); ok && neq.Op == token.NEQ &&
					isIdentNamed(neq.X, recv) && isNilIdent(neq.Y) {
					return true
				}
			}
		}
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
