package lint_test

import (
	"strings"
	"testing"

	"asdsim/internal/lint"
)

// Directive hygiene for the lockorder/wirecheck/simtime passes: the
// allow grammar must accept their names, a reasonless allow is itself
// a finding and suppresses nothing, and an allow naming one pass never
// silences another pass's finding on the same line. The simtime pass
// carries the line/function tests here because its name-based domain
// inference fires without imports; the fixture trees cover the same
// directive shapes for lockorder and wirecheck.

func TestNewPassesAreKnownToDirectiveHygiene(t *testing.T) {
	res := checkSource(t, `package p

//asd:allow lockorder coordinated through the caller's lock
func a() {}

//asd:allow wirecheck input size capped upstream
func b() {}

//asd:allow simtime deliberate mixed-domain display heuristic
func c() {}
`)
	if got := messages(res, "directive"); len(got) != 0 {
		t.Fatalf("new pass names must be known to //asd:allow hygiene, got %q", got)
	}
}

func TestSimtimeReasonlessAllowDoesNotSuppress(t *testing.T) {
	res := checkSource(t, `package p

func f(cycles, wallMS int64) bool {
	return cycles > wallMS //asd:allow simtime
}
`, lint.SimtimeAnalyzer)
	got := messages(res, "directive")
	if len(got) != 1 || !strings.Contains(got[0], "malformed //asd:allow") {
		t.Fatalf("want one malformed-allow diagnostic, got %q", got)
	}
	if got := messages(res, "simtime"); len(got) != 1 {
		t.Fatalf("reasonless allow must not suppress the finding, got %q", got)
	}
}

func TestCrossPassAllowDoesNotInterfere(t *testing.T) {
	res := checkSource(t, `package p

func f(cycles, wallMS int64) bool {
	return cycles > wallMS //asd:allow wirecheck not the pass that fired
}
`, lint.SimtimeAnalyzer)
	if got := messages(res, "directive"); len(got) != 0 {
		t.Fatalf("well-formed allow for another pass is not a hygiene finding, got %q", got)
	}
	if got := messages(res, "simtime"); len(got) != 1 {
		t.Fatalf("an allow naming wirecheck must not silence simtime, got %q", got)
	}
}

func TestSimtimeLineAllow(t *testing.T) {
	res := checkSource(t, `package p

func f(cycles, wallMS int64) bool {
	return cycles > wallMS //asd:allow simtime deliberate mixed comparison
}
`, lint.SimtimeAnalyzer)
	if got := messages(res, "simtime"); len(got) != 0 {
		t.Fatalf("reasoned line allow must suppress, got %q", got)
	}
}

func TestSimtimeFunctionBoundaryAllow(t *testing.T) {
	res := checkSource(t, `package p

//asd:allow simtime whole function mixes domains deliberately
func f(cycles, wallMS int64) bool {
	return cycles > wallMS
}
`, lint.SimtimeAnalyzer)
	if got := messages(res, "simtime"); len(got) != 0 {
		t.Fatalf("function-boundary allow must suppress, got %q", got)
	}
}

func TestSuppressedFindingsAreRecorded(t *testing.T) {
	res := checkSource(t, `package p

func f(cycles, wallMS int64) bool {
	return cycles > wallMS //asd:allow simtime deliberate mixed comparison
}
`, lint.SimtimeAnalyzer)
	if len(res.Diags) != 0 {
		t.Fatalf("unexpected live diagnostics: %v", res.Diags)
	}
	if len(res.Suppressed) != 1 {
		t.Fatalf("want the silenced finding recorded once, got %d", len(res.Suppressed))
	}
	s := res.Suppressed[0]
	if s.Diag.Pass != "simtime" || !s.SuppressedBy.IsValid() {
		t.Fatalf("suppressed record incomplete: pass=%q by=%v", s.Diag.Pass, s.SuppressedBy)
	}
}
