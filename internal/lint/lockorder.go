package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"asdsim/internal/lint/flow"
)

// LockorderAnalyzer is the concurrency half of the interprocedural
// flow suite. It computes, for every function, which sync.Mutex /
// sync.RWMutex locks the function may acquire (directly or through
// same-module callees, with cross-package effects flowing through
// vet's facts), then runs a flow-sensitive held-lock analysis over
// each function's CFG and reports:
//
//   - lock-order cycles: lock A held while acquiring B somewhere and B
//     held while acquiring A somewhere else — the classic deadlock
//     shape, across the whole farm/cluster layer;
//   - blocking operations under a lock: channel sends/receives,
//     select, time.Sleep, WaitGroup/Cond waits, net/http round trips,
//     and file/stream I/O performed (or reached through a callee)
//     while a lock is held;
//   - double-acquire: re-acquiring a lock class on the same receiver
//     path while it is already held.
//
// Locks are identified by class — the named type and field that own
// the mutex ("pkg.Coordinator.mu") — so the order graph is finite and
// stable. Held sets are must-hold (intersection at merges), keeping
// the pass quiet on drop-and-reacquire patterns. Function bodies of
// closures, go statements, and defers are not attributed to the
// enclosing function's held path (defer mu.Unlock() therefore keeps
// the lock held to function exit, which is exactly the idiom's
// semantics).
var LockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: `build the global lock-order graph over the farm/cluster layer and
report order cycles, blocking operations under a held lock, and
double-acquires on the same receiver path`,
	Scope: PathScope(
		"asdsim/internal/farm",
		"asdsim/internal/cluster",
		"asdsim/internal/cluster/rpc",
		"asdsim/internal/workload",
		"asdsim/internal/obs/span",
		"asdsim/cmd/asdfarm",
	),
	Run: runLockorder,
}

// LockFact is a function's transitive lock summary, exported through
// vet's facts so callers in other packages compose with it.
type LockFact struct {
	// Acquires lists lock classes the function may acquire (and not
	// release before further effects), sorted.
	Acquires []string
	// Blocking lists the blocking-operation kinds the function may
	// perform while running, sorted.
	Blocking []string
	// Edges lists lock-order pairs (held, then-acquired) the function's
	// body (transitively) establishes, sorted.
	Edges [][2]string
}

func (f *LockFact) empty() bool {
	return f == nil || (len(f.Acquires) == 0 && len(f.Blocking) == 0 && len(f.Edges) == 0)
}

func (f *LockFact) equal(g *LockFact) bool {
	if f == nil || g == nil {
		return f.empty() && g.empty()
	}
	if len(f.Acquires) != len(g.Acquires) || len(f.Blocking) != len(g.Blocking) || len(f.Edges) != len(g.Edges) {
		return false
	}
	for i := range f.Acquires {
		if f.Acquires[i] != g.Acquires[i] {
			return false
		}
	}
	for i := range f.Blocking {
		if f.Blocking[i] != g.Blocking[i] {
			return false
		}
	}
	for i := range f.Edges {
		if f.Edges[i] != g.Edges[i] {
			return false
		}
	}
	return true
}

// heldLock is one entry of the flow-sensitive held set.
type heldLock struct {
	class string // lock class ("pkg.Type.field")
	recv  string // receiver path as written ("c.mu"), for double-acquire
	read  bool   // RLock rather than Lock
}

// lockState is a sorted, immutable held set.
type lockState []heldLock

func (s lockState) find(class, recv string) int {
	for i, h := range s {
		if h.class == class && h.recv == recv {
			return i
		}
	}
	return -1
}

func (s lockState) holdsClass(class string) bool {
	for _, h := range s {
		if h.class == class {
			return true
		}
	}
	return false
}

func (s lockState) with(h heldLock) lockState {
	out := make(lockState, 0, len(s)+1)
	out = append(out, s...)
	out = append(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].class != out[j].class {
			return out[i].class < out[j].class
		}
		return out[i].recv < out[j].recv
	})
	return out
}

func (s lockState) without(class, recv string) lockState {
	i := s.find(class, recv)
	if i < 0 {
		// Fall back to releasing any instance of the class (unlock via
		// an aliased path).
		for j, h := range s {
			if h.class == class {
				i = j
				break
			}
		}
	}
	if i < 0 {
		return s
	}
	out := make(lockState, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

func (s lockState) equal(t lockState) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// intersect keeps the locks held on both paths (must-hold join).
func (s lockState) intersect(t lockState) lockState {
	var out lockState
	for _, h := range s {
		if t.find(h.class, h.recv) >= 0 {
			out = append(out, h)
		}
	}
	return out
}

func (s lockState) classes() string {
	names := make([]string, len(s))
	for i, h := range s {
		names[i] = h.class
	}
	return strings.Join(names, ", ")
}

// lockAnalysis is the per-package state of one lockorder run.
type lockAnalysis struct {
	pass *Pass
	cg   *flow.CallGraph
	// sums are the per-function summaries being fixpointed.
	sums map[*types.Func]*LockFact
	// edges is the package's lock-order graph: held -> acquired ->
	// first local position establishing the edge (NoPos for edges known
	// only from dependency facts).
	edges map[string]map[string]token.Pos
	// nonblockingComms are comm statements of selects that have a
	// default clause (non-blocking sends/receives).
	nonblockingComms map[ast.Node]bool
	// rangeChans are range operands of channel type (blocking receives).
	rangeChans map[ast.Node]bool
}

func runLockorder(pass *Pass) {
	pkg := pass.Pkg
	a := &lockAnalysis{
		pass:             pass,
		sums:             map[*types.Func]*LockFact{},
		edges:            map[string]map[string]token.Pos{},
		nonblockingComms: map[ast.Node]bool{},
		rangeChans:       map[ast.Node]bool{},
	}
	a.cg = flow.BuildCallGraph(pkg.Fset, pkg.Files, pkg.Types, pkg.Info.Defs, pkg.StaticCallee)
	a.indexCommContexts()

	// Phase 1: fixpoint the per-function transitive summaries.
	a.cg.Fixpoint(func(fn *types.Func, decl *ast.FuncDecl) bool {
		next := a.summarize(fn, decl)
		if next.equal(a.sums[fn]) {
			return false
		}
		a.sums[fn] = next
		return true
	})

	// Seed the order graph with edges from dependency facts, so a cycle
	// closing across packages is visible from the closing side.
	for _, imp := range pkg.Types.Imports() {
		facts := pass.depFacts(imp.Path())
		if facts == nil {
			continue
		}
		for _, lf := range facts.Lock {
			for _, e := range lf.Edges {
				a.addEdge(e[0], e[1], token.NoPos)
			}
		}
	}

	// Phase 2: flow-sensitive held-lock walk of every function,
	// reporting findings and recording local order edges.
	for _, fn := range a.cg.Funcs() {
		decl := a.cg.Decls[fn]
		if _, trusted := pkg.funcTrustReason(decl, pass.Analyzer.Name); trusted {
			continue
		}
		a.walkFunc(fn, decl)
	}

	// Export summaries as facts for dependent packages, plus the
	// package's whole order graph (locally witnessed edges and the
	// seeded ones, so order knowledge flows transitively) under a
	// synthetic key that cannot collide with a function name.
	for fn, sum := range a.sums {
		if !sum.empty() {
			pass.exportLockFact(fn.FullName(), sum)
		}
	}
	orderFact := &LockFact{}
	for from, tos := range a.edges {
		for to := range tos {
			orderFact.Edges = append(orderFact.Edges, [2]string{from, to})
		}
	}
	if len(orderFact.Edges) > 0 {
		sort.Slice(orderFact.Edges, func(i, j int) bool {
			if orderFact.Edges[i][0] != orderFact.Edges[j][0] {
				return orderFact.Edges[i][0] < orderFact.Edges[j][0]
			}
			return orderFact.Edges[i][1] < orderFact.Edges[j][1]
		})
		pass.exportLockFact(CanonicalPkgPath(pkg.Types.Path())+".<order>", orderFact)
	}

	a.reportCycles()
}

// indexCommContexts records which select comm statements are
// non-blocking (their select has a default) and which range operands
// are channels.
func (a *lockAnalysis) indexCommContexts() {
	pkg := a.pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range n.Body.List {
					if c, ok := cl.(*ast.CommClause); ok && c.Comm == nil {
						hasDefault = true
					}
				}
				if hasDefault {
					for _, cl := range n.Body.List {
						if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
							a.nonblockingComms[c.Comm] = true
						}
					}
				}
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						a.rangeChans[n.X] = true
					}
				}
			}
			return true
		})
	}
}

// summarize computes fn's flow-insensitive transitive summary from its
// body plus the current summaries of its callees.
func (a *lockAnalysis) summarize(fn *types.Func, decl *ast.FuncDecl) *LockFact {
	pkg := a.pass.Pkg
	if _, trusted := pkg.funcTrustReason(decl, a.pass.Analyzer.Name); trusted {
		return &LockFact{}
	}
	acq := map[string]bool{}
	blk := map[string]bool{}
	edges := map[[2]string]bool{}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false // not on the caller's lock path
		case *ast.SendStmt:
			if !a.nonblockingComms[n] {
				blk["channel send"] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blk["channel receive"] = true
			}
		case *ast.CallExpr:
			if class, recv, op, ok := a.lockOp(n); ok {
				_ = recv
				if op == lockAcquire || op == lockAcquireRead {
					acq[class] = true
				}
				return true
			}
			callee := pkg.StaticCallee(n)
			if callee == nil {
				return true
			}
			if kind := blockingCallKind(callee); kind != "" {
				blk[kind] = true
				return true
			}
			if eff := a.calleeEffects(callee); eff != nil {
				for _, c := range eff.Acquires {
					acq[c] = true
				}
				for _, k := range eff.Blocking {
					blk[k] = true
				}
				for _, e := range eff.Edges {
					edges[e] = true
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
	for x := range a.rangeChans {
		// Channel ranges inside this body count as blocking receives.
		if decl.Body.Pos() <= x.Pos() && x.End() <= decl.Body.End() {
			blk["channel receive"] = true
		}
	}

	out := &LockFact{}
	for c := range acq {
		out.Acquires = append(out.Acquires, c)
	}
	for k := range blk {
		out.Blocking = append(out.Blocking, k)
	}
	for e := range edges {
		out.Edges = append(out.Edges, e)
	}
	sort.Strings(out.Acquires)
	sort.Strings(out.Blocking)
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return out
}

// calleeEffects resolves a static callee's lock summary: same-package
// from the fixpoint, cross-package from dependency facts.
func (a *lockAnalysis) calleeEffects(callee *types.Func) *LockFact {
	pkg := a.pass.Pkg
	if callee.Pkg() == pkg.Types {
		return a.sums[callee]
	}
	if callee.Pkg() == nil {
		return nil
	}
	facts := a.pass.depFacts(callee.Pkg().Path())
	if facts == nil {
		return nil
	}
	return facts.Lock[callee.FullName()]
}

// walkFunc solves the held-lock dataflow over fn's CFG, then replays
// each block once with its input state to report findings and record
// order edges.
func (a *lockAnalysis) walkFunc(fn *types.Func, decl *ast.FuncDecl) {
	g := flow.BuildCFG(decl.Body)
	transfer := func(b *flow.Block, in lockState) lockState {
		st := in
		for _, n := range b.Nodes {
			st = a.applyNode(st, n, false)
		}
		return st
	}
	in := flow.Forward(g, lockState(nil),
		func(x, y lockState) lockState { return x.intersect(y) },
		func(x, y lockState) bool { return x.equal(y) },
		transfer)

	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		st, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			st = a.applyNode(st, n, true)
		}
	}
}

// applyNode threads one CFG node through the held-lock state. With
// report set it also emits findings and records order edges (the
// reporting replay); otherwise it only transfers state (the solver).
func (a *lockAnalysis) applyNode(st lockState, node ast.Node, report bool) lockState {
	pkg := a.pass.Pkg
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if report && len(st) > 0 && !a.nonblockingComms[n] {
				a.pass.Report(n.Pos(), "channel send while holding %s; a blocked receiver stalls every other holder", st.classes())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && report && len(st) > 0 && !a.commIsNonblocking(n) {
				a.pass.Report(n.Pos(), "channel receive while holding %s; a quiet sender stalls every other holder", st.classes())
			}
		case *ast.CallExpr:
			if class, recv, op, ok := a.lockOp(n); ok {
				switch op {
				case lockAcquire, lockAcquireRead:
					if report {
						if st.find(class, recv) >= 0 {
							a.pass.Report(n.Pos(), "%s acquired while already held on the same receiver path (%s): guaranteed self-deadlock", class, recv)
						} else if st.holdsClass(class) {
							a.pass.Report(n.Pos(), "second instance of %s acquired while one is held; without a global instance order this can deadlock", class)
						}
						for _, h := range st {
							if h.class != class {
								a.addEdge(h.class, class, n.Pos())
							}
						}
					}
					st = st.with(heldLock{class: class, recv: recv, read: op == lockAcquireRead})
				case lockRelease:
					st = st.without(class, recv)
				}
				return false // don't descend into the lock call
			}
			callee := pkg.StaticCallee(n)
			if callee == nil {
				return true
			}
			if kind := blockingCallKind(callee); kind != "" {
				if report && len(st) > 0 {
					a.pass.Report(n.Pos(), "%s (%s) while holding %s; the lock is pinned for the full operation", callee.FullName(), kind, st.classes())
				}
				return true
			}
			eff := a.calleeEffects(callee)
			if eff.empty() {
				return true
			}
			if report && len(st) > 0 {
				if len(eff.Blocking) > 0 {
					a.pass.Report(n.Pos(), "call to %s may block (%s) while holding %s", callee.FullName(), strings.Join(eff.Blocking, ", "), st.classes())
				}
				for _, c := range eff.Acquires {
					if st.holdsClass(c) {
						a.pass.Report(n.Pos(), "call to %s acquires %s which is already held: potential self-deadlock through the call chain", callee.FullName(), c)
						continue
					}
					for _, h := range st {
						a.addEdge(h.class, c, n.Pos())
					}
				}
			}
			return true
		default:
			if a.rangeChans[n] {
				if report && len(st) > 0 {
					a.pass.Report(n.Pos(), "range over channel while holding %s; iteration blocks until the channel closes", st.classes())
				}
			}
		}
		return true
	}
	ast.Inspect(node, visit)
	return st
}

// commIsNonblocking reports whether a receive expression is the comm
// operation of a select that has a default clause.
func (a *lockAnalysis) commIsNonblocking(recv *ast.UnaryExpr) bool {
	for comm := range a.nonblockingComms {
		switch c := comm.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(c.X) == recv {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if ast.Unparen(rhs) == recv {
					return true
				}
			}
		}
	}
	return false
}

type lockOpKind uint8

const (
	lockAcquire lockOpKind = iota
	lockAcquireRead
	lockRelease
)

// lockMethodOps maps sync method names to operations.
var lockMethodOps = map[string]lockOpKind{
	"Lock":     lockAcquire,
	"TryLock":  lockAcquire, // conservatively an acquire
	"RLock":    lockAcquireRead,
	"TryRLock": lockAcquireRead,
	"Unlock":   lockRelease,
	"RUnlock":  lockRelease,
}

// lockOp recognizes a sync.Mutex/RWMutex method call and resolves the
// lock's class and receiver path.
func (a *lockAnalysis) lockOp(call *ast.CallExpr) (class, recv string, op lockOpKind, ok bool) {
	pkg := a.pass.Pkg
	callee := pkg.StaticCallee(call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", "", 0, false
	}
	op, known := lockMethodOps[callee.Name()]
	if !known {
		return "", "", 0, false
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", 0, false
	}
	recvType := typeName(sig.Recv().Type())
	if recvType != "sync.Mutex" && recvType != "sync.RWMutex" {
		return "", "", 0, false
	}
	fun, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if fun == nil {
		return "", "", 0, false
	}
	class = a.classOf(fun.X)
	return class, types.ExprString(fun.X), op, true
}

// classOf names the lock class of the mutex-valued expression x: the
// named type and field owning the mutex, a package-level variable, or
// a local variable.
func (a *lockAnalysis) classOf(x ast.Expr) string {
	pkg := a.pass.Pkg
	x = ast.Unparen(x)

	// If x is not itself of mutex type, the method was promoted from an
	// embedded mutex: name the embedding type's mutex field.
	t := pkg.Info.TypeOf(x)
	if t != nil {
		base := t
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		if named, ok := base.(*types.Named); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				under := typeName(named)
				if under != "sync.Mutex" && under != "sync.RWMutex" {
					for i := 0; i < st.NumFields(); i++ {
						f := st.Field(i)
						if f.Embedded() {
							if n := typeName(f.Type()); n == "sync.Mutex" || n == "sync.RWMutex" {
								return typeName(named) + "." + f.Name()
							}
						}
					}
					return typeName(named) + ".(embedded mutex)"
				}
			}
		}
	}

	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			owner := sel.Recv()
			if p, ok := owner.(*types.Pointer); ok {
				owner = p.Elem()
			}
			return typeName(owner) + "." + x.Sel.Name
		}
		// Package-qualified variable (pkg.Mu).
		if obj := pkg.Info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(x); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return "local " + obj.Name()
		}
	}
	return types.ExprString(x)
}

// addEdge records a lock-order edge, keeping the first local position.
func (a *lockAnalysis) addEdge(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	m := a.edges[from]
	if m == nil {
		m = map[string]token.Pos{}
		a.edges[from] = m
	}
	if old, ok := m[to]; !ok || (old == token.NoPos && pos != token.NoPos) {
		m[to] = pos
	}
}

// reportCycles finds strongly connected components of the order graph
// and reports every locally-witnessed edge inside one.
func (a *lockAnalysis) reportCycles() {
	// Deterministic node order.
	nodes := map[string]bool{}
	for from, tos := range a.edges {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Tarjan SCC, iteratively indexed by the sorted order.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	next, ncomp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(a.edges[v]))
		for to := range a.edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	// Component sizes: an SCC of size >= 2 contains a cycle.
	size := map[int]int{}
	for _, c := range comp {
		size[c]++
	}
	for _, from := range order {
		tos := make([]string, 0, len(a.edges[from]))
		for to := range a.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			pos := a.edges[from][to]
			if pos == token.NoPos {
				continue // dependency-fact edge; reported where witnessed
			}
			if comp[from] == comp[to] && size[comp[from]] >= 2 {
				cycle := a.findCycle(from, to)
				a.pass.Report(pos, "lock-order cycle: %s (edge %s -> %s acquired here); impose one global order or release before acquiring", cycle, from, to)
			}
		}
	}
}

// findCycle renders one concrete cycle through edge from->to via DFS
// back from to to from.
func (a *lockAnalysis) findCycle(from, to string) string {
	seen := map[string]bool{to: true}
	var path []string
	var dfs func(v string) bool
	dfs = func(v string) bool {
		if v == from {
			return true
		}
		tos := make([]string, 0, len(a.edges[v]))
		for w := range a.edges[v] {
			tos = append(tos, w)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if seen[w] {
				continue
			}
			seen[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !dfs(to) {
		return fmt.Sprintf("%s -> %s -> %s", from, to, from)
	}
	parts := append([]string{from, to}, path...)
	parts = append(parts, from)
	return strings.Join(parts, " -> ")
}

// blockingCallKind classifies well-known blocking stdlib calls.
func blockingCallKind(callee *types.Func) string {
	if callee.Pkg() == nil {
		return ""
	}
	path := callee.Pkg().Path()
	name := callee.Name()
	recv := ""
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = typeName(sig.Recv().Type())
	}
	switch path {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		// Cond.Wait is excluded: it atomically releases its locker for
		// the duration of the wait, so "Wait while holding" is exactly
		// its documented contract, not a pinned lock.
		if recv == "sync.WaitGroup" && name == "Wait" {
			return "sync wait"
		}
	case "net/http":
		switch {
		case recv == "net/http.Client" && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return "net/http round trip"
		case recv == "" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return "net/http round trip"
		case recv == "net/http.Server" && (name == "ListenAndServe" || name == "Serve" || name == "Shutdown"):
			return "net/http serve/shutdown"
		}
	case "os":
		if recv == "os.File" {
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Seek", "Truncate", "ReadFrom":
				return "file I/O"
			}
			return ""
		}
		switch name {
		case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
			"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "MkdirTemp",
			"ReadDir", "Stat", "Lstat", "Truncate":
			return "file I/O"
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString":
			return "stream I/O"
		}
	case "bufio":
		if recv == "bufio.Writer" && name == "Flush" {
			return "stream I/O"
		}
	}
	return ""
}
