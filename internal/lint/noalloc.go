package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoallocAnalyzer enforces the allocation-free steady state the PR-3
// kernel rework established and TestSteadyStateStepDoesNotAllocate
// guards dynamically. Functions annotated //asd:hotpath — plus
// everything they reach through same-package static calls — may not
// use allocation-prone constructs: make/new, escaping composite
// literals, closures, string building, boxing into interfaces,
// appends that do not recycle their own backing array, or map writes.
// Calls that leave the package must land on a hot-path-certified
// function (a fact exported by the callee's own package when it was
// checked), on a trusted package or function, or on a trusted
// interface whose implementations are certified in their packages.
var NoallocAnalyzer = &Analyzer{
	Name: "hotpath-noalloc",
	Doc: `forbid allocation-prone constructs in //asd:hotpath functions and
their same-package transitive callees`,
	// The simulation kernel only: telemetry sinks (obs, flightrec, farm)
	// are policed by noperturb instead — PR 3's zero-alloc guarantee is
	// stated for runs with the probe bus detached, and e.g. the
	// Chrome-trace builder allocates by design.
	Scope: PathScope(
		"asdsim/internal/sim",
		"asdsim/internal/mc",
		"asdsim/internal/dram",
		"asdsim/internal/cache",
		"asdsim/internal/core",
		"asdsim/internal/slh",
		"asdsim/internal/stream",
		"asdsim/internal/prefetch",
		"asdsim/internal/cpu",
		"asdsim/internal/stats",
		// Batched runs replay materialized traces through the kernel;
		// any workload function a hot path reaches must certify here.
		"asdsim/internal/workload",
	),
	Run: runNoalloc,
}

// noallocTrustedPkgs are packages whose functions are allocation-free
// by construction and callable from hot code without certification:
// pure arithmetic (math, math/bits), lock-free primitives
// (sync/atomic), and the simulator's address algebra (internal/mem).
var noallocTrustedPkgs = map[string]bool{
	"math":                true,
	"math/bits":           true,
	"sync/atomic":         true,
	"asdsim/internal/mem": true,
}

// noallocTrustedFuncs are individually vetted allocation-free
// functions in otherwise untrusted packages, keyed by FullName.
var noallocTrustedFuncs = map[string]bool{
	"sort.Search": true,
}

// noallocTrustedIfaces are interface types whose dynamic dispatch is
// part of the simulator's architecture (prefetch engines, probe
// sinks, arbiters). Their in-repo implementations must themselves be
// hot-path-certified; TestRealTreeTrustedInterfaceImpls enforces that
// closure-side contract.
var noallocTrustedIfaces = map[string]bool{
	"asdsim/internal/prefetch.MSEngine": true,
	"asdsim/internal/obs.Sink":          true,
	"asdsim/internal/mc.arbiter":        true,
}

// noallocAllowedBuiltins are builtins that never heap-allocate (or,
// for panic, only on a terminal path).
var noallocAllowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "panic": true, "real": true, "imag": true,
}

func runNoalloc(pass *Pass) {
	hot := pass.Pkg.hotpath(pass.Config)
	for fn, why := range hot.closure {
		checkNoallocFunc(pass, fn, why, hot)
	}
}

func checkNoallocFunc(pass *Pass, fn *ast.FuncDecl, why string, hot *hotState) {
	pkg := pass.Pkg
	if _, trusted := pkg.funcTrustReason(fn, pass.Analyzer.Name); trusted {
		return
	}
	hotLabel := fn.Name.Name + " (hot: " + why + ")"

	// selfAppends maps append CallExprs that recycle their own backing
	// array (x = append(x, ...) / x = append(x[:0], ...)).
	selfAppends := map[*ast.CallExpr]bool{}
	markSelfAppends(pkg, fn.Body, selfAppends)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(n.Pos(), "%s: closure literal may allocate its captures", hotLabel)
			return false // contents belong to the closure, already flagged
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Report(n.Pos(), "%s: slice literal allocates; use a pooled scratch slice", hotLabel)
			case *types.Map:
				pass.Report(n.Pos(), "%s: map literal allocates", hotLabel)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "%s: &composite literal escapes to the heap; use a freelist pool", hotLabel)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pkg.Info.TypeOf(n)) {
				pass.Report(n.Pos(), "%s: string concatenation allocates", hotLabel)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pkg.Info.TypeOf(n.Lhs[0])) {
				pass.Report(n.Pos(), "%s: string += allocates", hotLabel)
			}
			for _, lhs := range n.Lhs {
				checkMapWrite(pass, hotLabel, lhs)
			}
		case *ast.IncDecStmt:
			checkMapWrite(pass, hotLabel, n.X)
		case *ast.CallExpr:
			checkNoallocCall(pass, hotLabel, n, selfAppends, hot)
		}
		return true
	})
}

func checkMapWrite(pass *Pass, hotLabel string, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := pass.Pkg.Info.TypeOf(idx.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Report(lhs.Pos(), "%s: map write may allocate (bucket growth); use dense indices or a pooled structure", hotLabel)
		}
	}
}

func checkNoallocCall(pass *Pass, hotLabel string, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, hot *hotState) {
	pkg := pass.Pkg
	kind, callee, iface, builtin := pkg.ClassifyCall(call)
	switch kind {
	case CalleeConversion:
		checkConversion(pass, hotLabel, call)
		return
	case CalleeBuiltin:
		switch builtin {
		case "make":
			pass.Report(call.Pos(), "%s: make allocates; preallocate at construction and reuse", hotLabel)
		case "new":
			pass.Report(call.Pos(), "%s: new allocates; use a freelist pool", hotLabel)
		case "append":
			if !selfAppends[call] {
				pass.Report(call.Pos(), "%s: append into a fresh slice may allocate; reuse a pooled scratch slice (x = append(x[:0], ...))", hotLabel)
			}
		case "print", "println":
			pass.Report(call.Pos(), "%s: %s is for debugging only and may allocate", hotLabel, builtin)
		default:
			if !noallocAllowedBuiltins[builtin] {
				pass.Report(call.Pos(), "%s: builtin %s is not allocation-vetted for the hot path", hotLabel, builtin)
			}
		}
		checkBoxing(pass, hotLabel, call)
		return
	case CalleeInterface:
		if !noallocTrustedIfaces[iface] {
			pass.Report(call.Pos(), "%s: dynamic call through interface %s cannot be allocation-checked; add the interface to the trusted list or devirtualize", hotLabel, iface)
		}
		checkBoxing(pass, hotLabel, call)
		return
	case CalleeFuncValue:
		pass.Report(call.Pos(), "%s: call through func value cannot be allocation-checked statically", hotLabel)
		checkBoxing(pass, hotLabel, call)
		return
	}

	// Static call.
	checkBoxing(pass, hotLabel, call)
	if callee.Pkg() == nil {
		return // error.Error and other universe members
	}
	if callee.Pkg() == pkg.Types {
		return // same package: the closure walks into it
	}
	path := callee.Pkg().Path()
	if path == "fmt" {
		pass.Report(call.Pos(), "%s: fmt.%s allocates (formatting state and boxing)", hotLabel, callee.Name())
		return
	}
	if noallocTrustedPkgs[path] || noallocTrustedFuncs[callee.FullName()] {
		return
	}
	if facts := pass.depFacts(path); facts != nil && facts.Hotpath[callee.FullName()] {
		return
	}
	pass.Report(call.Pos(), "%s: call to %s which is not hotpath-certified (annotate it //asd:hotpath in its package, or trust it explicitly)", hotLabel, callee.FullName())
}

// depFacts fetches an imported package's exported facts.
func (p *Pass) depFacts(path string) *Facts {
	if p.Config == nil || p.Config.DepFacts == nil {
		return nil
	}
	return p.Config.DepFacts(path)
}

// checkConversion flags conversions that copy memory or box.
func checkConversion(pass *Pass, hotLabel string, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	pkg := pass.Pkg
	to := pkg.Info.TypeOf(call.Fun)
	from := pkg.Info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	switch {
	case isString(to) && (isByteSlice(from) || isRuneSlice(from)):
		pass.Report(call.Pos(), "%s: []byte/[]rune -> string conversion copies and allocates", hotLabel)
	case isString(from) && (isByteSlice(to) || isRuneSlice(to)):
		pass.Report(call.Pos(), "%s: string -> slice conversion copies and allocates", hotLabel)
	case types.IsInterface(to) && !types.IsInterface(from):
		pass.Report(call.Pos(), "%s: conversion boxes %s into %s", hotLabel, from, to)
	}
}

// checkBoxing flags arguments that implicitly convert a concrete value
// to an interface parameter — the hidden allocation behind fmt-style
// APIs.
func checkBoxing(pass *Pass, hotLabel string, call *ast.CallExpr) {
	pkg := pass.Pkg
	sigT := pkg.Info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at) && !isUntypedNil(at) {
			pass.Report(arg.Pos(), "%s: argument boxes %s into %s", hotLabel, at, pt)
		}
	}
}

// markSelfAppends records append calls of the recycling forms
// x = append(x, ...) and x = append(x[:0], ...) (also x[:n]), where
// the destination expression is structurally identical to the append
// base. Those reuse the backing array in steady state.
func markSelfAppends(pkg *Package, body *ast.BlockStmt, out map[*ast.CallExpr]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if kind, _, _, builtin := pkg.ClassifyCall(call); kind != CalleeBuiltin || builtin != "append" {
			return true
		}
		base := ast.Unparen(call.Args[0])
		if slice, ok := base.(*ast.SliceExpr); ok {
			base = ast.Unparen(slice.X)
		}
		if exprString(assign.Lhs[0]) == exprString(base) {
			out[call] = true
		}
		return true
	})
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteSlice(t types.Type) bool { return isSliceOfKind(t, types.Byte) }
func isRuneSlice(t types.Type) bool { return isSliceOfKind(t, types.Rune) }

func isSliceOfKind(t types.Type, kind types.BasicKind) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == kind ||
		(kind == types.Byte && b.Kind() == types.Uint8) ||
		(kind == types.Rune && b.Kind() == types.Int32))
}
