package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces that the simulation kernel cannot
// observe wall-clock time, unseeded randomness, map iteration order,
// or goroutine interleaving — the four ways a cycle-accurate model
// silently stops being repeatable. The golden suite catches a
// violation only after it has already cost a bisect; this pass catches
// it at vet time.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: `forbid wall-clock reads, global-source math/rand, order-dependent
map iteration, and goroutine spawns inside the simulation packages`,
	Scope: PathScope(
		"asdsim/internal/sim",
		"asdsim/internal/mc",
		"asdsim/internal/dram",
		"asdsim/internal/cache",
		"asdsim/internal/core",
		"asdsim/internal/slh",
		"asdsim/internal/stream",
		"asdsim/internal/prefetch",
		// The cluster coordinator must schedule identically however
		// requests interleave: no goroutines of its own, no wall-clock
		// reads outside the injected Options.Now, no map-order effects.
		"asdsim/internal/cluster",
		// Span recording shares the coordinator's clock discipline: IDs
		// derive from span content, timestamps only from injected nows.
		"asdsim/internal/obs/span",
		// Provenance records live on the simulation goroutine and their
		// content-derived IDs must replay identically; any clock read or
		// map iteration would leak into the stored lineage streams.
		"asdsim/internal/obs/prov",
		// Trace materialization must be a pure function of (profile,
		// seed, thread, budget) — the batched sweep's bit-identical
		// guarantee rests on it. The TraceCache's goroutine-free,
		// iteration-free design keeps it eligible.
		"asdsim/internal/workload",
	),
	Run: runDeterminism,
}

// wallClockFuncs are time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// seededRandCtors are the math/rand[/v2] functions that build an
// explicitly seeded generator and are therefore deterministic.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func runDeterminism(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, trusted := pkg.funcTrustReason(fn, pass.Analyzer.Name); trusted {
				continue
			}
			runDeterminismFunc(pass, fn)
		}
	}
}

func runDeterminismFunc(pass *Pass, fn *ast.FuncDecl) {
	pkg := pass.Pkg
	sortedSlices := sortedSliceObjects(pkg, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "goroutine spawned in the simulation step path; the kernel must be single-threaded for repeatability")
		case *ast.CallExpr:
			callee := pkg.StaticCallee(n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case "time":
				if wallClockFuncs[callee.Name()] && callee.Type().(*types.Signature).Recv() == nil {
					pass.Report(n.Pos(), "time.%s reads the wall clock; simulation state must depend only on simulated cycles", callee.Name())
				}
			case "math/rand", "math/rand/v2":
				if callee.Type().(*types.Signature).Recv() == nil && !seededRandCtors[callee.Name()] {
					pass.Report(n.Pos(), "%s.%s uses the global (unseeded) source; build a seeded *rand.Rand instead", callee.Pkg().Name(), callee.Name())
				}
			}
		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsInto, ok := mapRangeCollectTarget(pkg, n); ok && sortedSlices[collectsInto] {
				return true // canonical sorted-keys pattern
			}
			pass.Report(n.Pos(), "map iteration order can reach simulation state or output; collect keys into a slice and sort it, or tag //asd:allow determinism <reason>")
		}
		return true
	})
}

// mapRangeCollectTarget recognizes the first half of the sorted-keys
// idiom: a range body that only appends the key (and/or value) to a
// slice, returning the slice's object.
func mapRangeCollectTarget(pkg *Package, rng *ast.RangeStmt) (types.Object, bool) {
	if len(rng.Body.List) != 1 {
		return nil, false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if kind, _, _, builtin := pkg.ClassifyCall(call); kind != CalleeBuiltin || builtin != "append" {
		return nil, false
	}
	obj := pkg.Info.ObjectOf(lhs)
	if obj == nil {
		return nil, false
	}
	return obj, true
}

// sortingFuncs are the sort/slices functions that establish a
// deterministic order over a collected key slice.
var sortingFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedSliceObjects finds every slice object in fn that is passed to
// a recognized sorting function anywhere in the function.
func sortedSliceObjects(pkg *Package, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := pkg.StaticCallee(call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		names := sortingFuncs[callee.Pkg().Path()]
		if names == nil || !names[callee.Name()] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pkg.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
