// Package events is the exhaustive-events fixture: tagged switches
// and name arrays must cover every constant of their enumeration type
// (sentinels excluded); untagged switches are left alone.
package events

type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindC
	numKinds
)

//asd:exhaustive
var names = [numKinds]string{"a", "b", "c"} // ok: fully populated

//asd:exhaustive
var short = [numKinds]string{"a", "b"} // want `2 of 3 elements populated`

//asd:exhaustive
var hole = [numKinds]string{"a", "", "c"} // want `element 1 is empty`

func handle(k Kind) int {
	//asd:exhaustive
	switch k { // ok: every constant covered, KindC as explicit no-op
	case KindA:
		return 1
	case KindB:
		return 2
	case KindC:
		// seen and intentionally ignored
	}
	return 0
}

func partial(k Kind) int {
	//asd:exhaustive
	switch k { // want `misses: KindC`
	case KindA, KindB:
		return 1
	}
	return 0
}

func untagged(k Kind) int {
	switch k { // ok: untagged switches are not exhaustiveness-checked
	case KindA:
		return 1
	}
	return 0
}

func notEnum(s string) {
	//asd:exhaustive
	switch s { // want `not a defined integer enumeration type`
	case "x":
	}
}

func use() [3]string {
	_ = handle(KindA) + partial(KindB)
	notEnum("x")
	_ = untagged(KindC)
	_ = short
	_ = hole
	return names
}
