// Package simfix exercises the simtime pass: the simulated-cycle and
// wall-clock domains must not meet in arithmetic or comparison, and a
// cycle counter never decreases.
package simfix

import "time"

type ev struct{ Cycle uint64 }

func compareCross(cycles uint64, start time.Time) bool {
	wallMS := time.Since(start).Milliseconds()
	return int64(cycles) > wallMS // want `cross-domain time arithmetic`
}

func addCross(cycles uint64, wallSeconds float64) float64 {
	return float64(cycles) + wallSeconds // want `cross-domain time arithmetic`
}

func assignCross(start time.Time) {
	var cycles uint64
	cycles = uint64(time.Since(start)) // want `cross-domain assignment`
	_ = cycles
}

func decrement() {
	var cycle uint64 = 10
	cycle--    // want `non-monotonic cycle assignment`
	cycle -= 2 // want `non-monotonic cycle assignment`
	_ = cycle
}

// --- negatives: these must stay silent ---

// rate conversion through division is the sanctioned bridge.
func rate(cycles uint64, wallSeconds float64) float64 {
	return float64(cycles) / wallSeconds
}

func sameDomain(e ev, cycles uint64) bool {
	return e.Cycle > cycles
}

func wallOnly(start time.Time) bool {
	return time.Since(start) > time.Second
}

func cycleDelta(startCycle, endCycle uint64) uint64 {
	return endCycle - startCycle
}

// trustedMix is vouched for at the function boundary.
//
//asd:allow simtime fixture mixes domains deliberately for a display heuristic
func trustedMix(cycles uint64, wallMS int64) bool {
	return int64(cycles) > wallMS
}

func lineAllowedMix(cycles uint64, wallMS int64) bool {
	return int64(cycles) > wallMS //asd:allow simtime fixture accepts this mixed comparison
}
