// Package dep is the cross-package half of the noalloc fixture: hot
// callers in package "hot" may call Certified (exported as a hotpath
// fact) but not Plain.
package dep

// Certified is allocation-free and certified for hot-path callers.
//
//asd:hotpath
func Certified(v int) int {
	return v + 1
}

// Plain is not certified: calling it from hot code is a finding.
func Plain(v int) int {
	return v * 2
}
