// Package hot is the hotpath-noalloc fixture: allocation-prone
// constructs inside the //asd:hotpath closure must be flagged, while
// recycling appends, pooled growth behind //asd:allow, and cold
// functions must not.
package hot

import (
	"fmt"

	"dep"
)

type stepper interface {
	Tick()
}

type node struct {
	next *node
}

type ring struct {
	buf     []int
	scratch []int
	label   string
	m       map[int]int
	pool    *node
	s       stepper
}

// Step is the per-cycle entry point; helper joins the closure through
// the static call below.
//
//asd:hotpath
func (r *ring) Step(v int) {
	r.scratch = append(r.scratch[:0], v) // ok: recycles its backing array
	r.buf = append(r.buf, v)             // ok: self-append, reuses in steady state
	r.helper(v)
	_ = dep.Certified(v) // ok: certified by dep's own facts
	_ = dep.Plain(v)     // want `call to dep\.Plain which is not hotpath-certified`
	r.grow()             // ok: trusted boundary
	r.take()
	r.s.Tick() // want `dynamic call through interface hot\.stepper`
}

func (r *ring) helper(v int) {
	tmp := make([]int, v) // want `make allocates`
	_ = tmp
	fresh := append(r.buf, v) // want `append into a fresh slice`
	_ = fresh
	r.label += "x" // want `string \+= allocates`
	r.m[v] = v     // want `map write may allocate`
	f := func() {} // want `closure literal may allocate`
	_ = f
	fmt.Println()       // want `fmt\.Println allocates`
	sink(v)             // want `argument boxes int into`
	pair := []int{v, v} // want `slice literal allocates`
	_ = pair
	p := &node{} // want `&composite literal escapes`
	_ = p
}

func (r *ring) take() {
	if r.pool == nil {
		r.pool = new(node) //asd:allow hotpath-noalloc freelist first-generation growth; steady state recycles
	}
	r.pool = r.pool.next
}

// grow doubles the ring off the per-cycle path.
//
//asd:allow hotpath-noalloc amortized doubling runs off the per-cycle path
func (r *ring) grow() {
	next := make([]int, len(r.buf)*2)
	copy(next, r.buf)
	r.buf = next
}

func sink(v any) {
	_ = v
}

// Report is entirely off the hot path: it may allocate freely.
func (r *ring) Report() string {
	return fmt.Sprintf("ring of %d", len(r.buf))
}
