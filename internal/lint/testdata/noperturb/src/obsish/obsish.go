// Package obsish is the noperturb fixture: a probe-bus stand-in whose
// hot-path telemetry must not lock, touch channels, select, spawn
// goroutines or read the wall clock, and whose exported hot Bus
// methods must keep the nil-receiver fast path.
package obsish

import (
	"sync"
	"time"
)

// Bus mimics obs.Bus: nil means disabled.
type Bus struct {
	mu    sync.Mutex
	ch    chan int
	state sync.Map
	total uint64
}

// Emit has the accepted if-form nil guard.
//
//asd:hotpath
func (b *Bus) Emit(v int) {
	if b == nil {
		return
	}
	b.record(v)
}

// Enabled has the accepted return-form fast path.
//
//asd:hotpath
func (b *Bus) Enabled() bool {
	return b != nil && b.total > 0
}

// Unguarded is a hot exported Bus method without a nil guard.
//
//asd:hotpath
func (b *Bus) Unguarded(v int) { // want `must begin with .if b == nil`
	b.total += uint64(v)
}

func (b *Bus) record(v int) {
	b.mu.Lock() // want `blocking synchronization`
	b.total += uint64(v)
	b.mu.Unlock()             // want `blocking synchronization`
	b.ch <- v                 // want `channel send can block`
	<-b.ch                    // want `channel receive can block`
	_ = time.Now()            // want `time\.Now in telemetry`
	b.state.Store(v, v)       // want `sync\.Map\.Store locks and boxes`
	go func() { b.total++ }() // want `goroutine spawn in telemetry`
	select {                  // want `select in telemetry`
	default:
	}
	for v := range b.ch { // want `ranging over a channel blocks`
		_ = v
	}
}

// Sampler is a sink hanging off a non-nil bus: no nil-guard
// requirement applies to non-Bus receivers.
type Sampler struct {
	n uint64
}

// Emit is hot but needs no nil guard: Sampler is not the bus.
//
//asd:hotpath
func (s *Sampler) Emit(v int) {
	s.n += uint64(v)
}
