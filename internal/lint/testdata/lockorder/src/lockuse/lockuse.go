// Package lockuse imports lockdep and exercises the cross-package
// side of the lockorder pass: dependency facts seed the order graph
// and callee summaries report at the call site.
package lockuse

import (
	"sync"

	"lockdep"
)

type T struct{ mu sync.Mutex }

var t T

// crossCycle closes the R-before-X order exported by lockdep.Ordered:
// acquiring R while holding X completes a cycle witnessed only here.
func crossCycle() {
	lockdep.X.Mu.Lock()
	lockdep.R.Mu.Lock() // want `lock-order cycle`
	lockdep.R.Mu.Unlock()
	lockdep.X.Mu.Unlock()
}

// holdAndCallSlow calls a dependency whose exported summary blocks.
func holdAndCallSlow() {
	t.mu.Lock()
	lockdep.Slow() // want `may block \(file I/O\) while holding lockuse.T.mu`
	t.mu.Unlock()
}
