// Package lockfix exercises the lockorder pass within one package:
// acquisition cycles, double acquires, blocking operations performed
// while a lock is held, and the escapes that must stay silent.
package lockfix

import (
	"os"
	"sync"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a  A
	a2 A
	b  B
)

// abOrder establishes the order a before b.
func abOrder() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle`
	b.mu.Unlock()
}

// baOrder closes the cycle: b before a.
func baOrder() {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

func doubleAcquire() {
	a.mu.Lock()
	a.mu.Lock() // want `guaranteed self-deadlock`
	a.mu.Unlock()
	a.mu.Unlock()
}

func secondInstance() {
	a.mu.Lock()
	a2.mu.Lock() // want `second instance of lockfix.A.mu`
	a2.mu.Unlock()
	a.mu.Unlock()
}

func blockingHeld(ch chan int) {
	a.mu.Lock()
	os.ReadFile("x") // want `file I/O`
	ch <- 1          // want `channel send while holding`
	<-ch             // want `channel receive while holding`
	a.mu.Unlock()
}

func rangeChan(ch chan int) {
	a.mu.Lock()
	for range ch { // want `range over channel while holding`
	}
	a.mu.Unlock()
}

// acquiresA is summarized as acquiring lockfix.A.mu.
func acquiresA() {
	a.mu.Lock()
	a.mu.Unlock()
}

func callerHoldsA() {
	a.mu.Lock()
	acquiresA() // want `acquires lockfix.A.mu which is already held`
	a.mu.Unlock()
}

// mayBlock is summarized as blocking (file I/O); calling it without a
// lock held is fine.
func mayBlock() {
	os.ReadFile("x")
}

func callerBlocks() {
	b.mu.Lock()
	mayBlock() // want `may block \(file I/O\) while holding lockfix.B.mu`
	b.mu.Unlock()
}

// --- negatives: these must stay silent ---

// nonblockingSelect: a select with a default never blocks.
func nonblockingSelect(ch chan int) {
	a.mu.Lock()
	select {
	case v := <-ch:
		_ = v
	case ch <- 2:
	default:
	}
	a.mu.Unlock()
}

// condHold: the lock is not held on every path to the I/O, so the
// must-hold analysis stays quiet.
func condHold(cond bool) {
	if cond {
		a.mu.Lock()
	}
	os.ReadFile("x")
	if cond {
		a.mu.Unlock()
	}
}

// deferred work and goroutine bodies are not on the caller's lock path.
func spawns(ch chan int) {
	a.mu.Lock()
	go func() { ch <- 1 }()
	defer os.ReadFile("x")
	a.mu.Unlock()
}

// trusted is vouched for at the function boundary: the empty summary
// keeps callers clean and its body is not walked.
//
//asd:allow lockorder fixture trusted boundary with deliberate pinned I/O
func trusted() {
	a.mu.Lock()
	os.ReadFile("x")
	a.mu.Unlock()
}

func callsTrusted() {
	b.mu.Lock()
	trusted()
	b.mu.Unlock()
}

// lineAllowed escapes one finding with a reasoned line directive.
func lineAllowed() {
	a.mu.Lock()
	os.ReadFile("x") //asd:allow lockorder fixture accepts pinned I/O here
	a.mu.Unlock()
}
