// Package lockdep is the dependency side of the cross-package
// lockorder fixture: it establishes a lock order and exports helpers
// whose summaries (acquires, blocking) flow to importers as facts.
package lockdep

import (
	"os"
	"sync"
)

type Reg struct{ Mu sync.Mutex }

type Aux struct{ Mu sync.Mutex }

var (
	R Reg
	X Aux
)

// Ordered acquires R before X, exporting that edge to importers.
func Ordered() {
	R.Mu.Lock()
	X.Mu.Lock()
	X.Mu.Unlock()
	R.Mu.Unlock()
}

// Slow is summarized as blocking on file I/O.
func Slow() {
	os.ReadFile("x")
}

// WithR runs f with the registry lock held.
func WithR(f func()) {
	R.Mu.Lock()
	defer R.Mu.Unlock()
	f()
}
