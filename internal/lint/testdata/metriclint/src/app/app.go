// Package app is the consumer half of the metriclint fixture: literal
// metric and label names passed to Registry constructors are validated
// against the exposition grammar at vet time.
package app

import "metrics"

func register(r *metrics.Registry) {
	r.Counter("farm_runs_total", "Completed runs.", "mode")   // ok
	r.Counter("0bad", "Name starts with a digit.")            // want `metric name "0bad" violates`
	r.Counter("farm-errs", "Name contains a dash.")           // want `metric name "farm-errs" violates`
	r.Counter("farm_errs_total", "")                          // want `empty help string`
	r.Gauge("farm_depth", "Queue depth.", "bad-label")        // want `label name "bad-label" violates`
	r.Histogram("farm_wall_seconds", "Wall time.", nil, "le") // want `label name "le" violates`
	r.Histogram("farm_cpu_seconds", "CPU time.", nil, "mode") // ok: labels start after bounds

	labels := []string{"free-form"}
	r.Counter("farm_dyn_total", "Splatted labels.", labels...) // ok: runtime Lint's job

	name := "not+checked"
	r.Counter(name, "Non-literal name.") // ok: outside static reach
}
