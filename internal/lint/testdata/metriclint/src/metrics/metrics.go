// Package metrics is a fixture stand-in for asdsim/internal/metrics:
// the metriclint pass matches Registry constructor methods in any
// package named "metrics", so fixtures need not import the real one.
package metrics

// Registry mimics the real registry's constructor surface.
type Registry struct{}

// Family is the constructors' return type.
type Family struct{}

// Counter declares a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	_, _, _ = name, help, labels
	return &Family{}
}

// Gauge declares a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	_, _, _ = name, help, labels
	return &Family{}
}

// Histogram declares a histogram family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Family {
	_, _, _, _ = name, help, bounds, labels
	return &Family{}
}
