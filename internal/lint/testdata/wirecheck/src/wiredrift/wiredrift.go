// Package wiredrift exercises the wire.lock diff half of the
// wirecheck pass. The wire.lock next to this file locks three structs;
// the source below drifts from it on purpose.
package wiredrift // want `wire struct wiredrift.Gone is in wire.lock but no longer declared`

// Drifted drifted in two ways: Name's wire name changed and Count was
// retyped.
type Drifted struct { // want `drifted from wire.lock: field 0 renamed` `drifted from wire.lock: field "count" retyped`
	Name  string `json:"nm"`
	Count int64  `json:"count"`
}

// Stable matches its locked shape exactly.
type Stable struct {
	ID     uint64 `json:"id"`
	hidden int    // unexported: not part of the wire surface
	Skip   int    `json:"-"` // json:"-": not part of the wire surface
}
