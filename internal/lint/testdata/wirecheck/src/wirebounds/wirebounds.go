// Package wirebounds exercises the decode length-guard half of the
// wirecheck pass: a length read from wire input must be checked
// against a limit before it sizes an allocation.
package wirebounds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

func decodeBad(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, n) // want `unbounded wire-sized allocation`
}

func decodeBadConv(b []byte) []uint32 {
	n, _ := binary.Uvarint(b)
	return make([]uint32, int(n)) // want `unbounded wire-sized allocation`
}

const maxN = 1 << 16

func decodeGuarded(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	if n > maxN {
		return nil
	}
	return make([]byte, n)
}

// decodeViaHelper mirrors the repo codecs' getN idiom: the helper's
// name marks its result as bounded.
func decodeViaHelper(r io.Reader) ([]byte, error) {
	br := bufio.NewReader(r)
	getN := func(limit uint64) (uint64, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if n > limit {
			return 0, errors.New("count exceeds limit")
		}
		return n, nil
	}
	n, err := getN(4096)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

// constSized and lenSized are trivially bounded.
func constSized(b []byte) []byte {
	head := make([]byte, 8)
	copy(head, b)
	return head
}

func lenSized(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// notWireInput has no reader or byte-slice parameter, so it is outside
// the decode surface.
func notWireInput(count int) []int {
	return make([]int, count)
}

// decodeTrusted is vouched for at the function boundary.
//
//asd:allow wirecheck fixture trusts this decoder's upstream size cap
func decodeTrusted(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, n)
}

func decodeLineAllowed(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, n) //asd:allow wirecheck fixture caps the input upstream
}
