// Package kernel is the determinism-pass fixture: wall-clock reads,
// global math/rand, bare map iteration and goroutine spawns must be
// flagged; seeded generators, the sorted-keys idiom and //asd:allow
// escapes must not.
package kernel

import (
	"math/rand"
	"sort"
	"time"
)

type table struct {
	m map[string]int
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(6) // want `rand\.Intn uses the global \(unseeded\) source`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // ok: method on an explicitly seeded generator
}

func seededCtor() *rand.Rand {
	return rand.New(rand.NewSource(42)) // ok: seeded constructor
}

func (t *table) sum() int {
	n := 0
	for _, v := range t.m { // want `map iteration order`
		n += v
	}
	return n
}

func (t *table) sortedKeys() []string {
	keys := make([]string, 0, len(t.m))
	for k := range t.m { // ok: canonical collect-and-sort idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func spawn(done chan struct{}) {
	go close(done) // want `goroutine spawned in the simulation step path`
}

func (t *table) drain() {
	for k := range t.m { // want `map iteration order`
		delete(t.m, k)
	}
}

func lineEscape() int64 {
	return time.Now().UnixNano() //asd:allow determinism wall-clock throughput stamp, excluded from serialized results
}

// funcEscape is a trusted boundary: its whole body is exempt.
//
//asd:allow determinism one-time startup seeding, before the first simulated cycle
func funcEscape() int {
	return rand.Int()
}
