package lint_test

import (
	"testing"

	"asdsim/internal/lint"
	"asdsim/internal/lint/linttest"
)

// Each fixture tree holds positive cases (constructs the pass must
// flag, pinned by `// want` comments) and negative cases (idioms and
// //asd:allow escapes that must stay silent).

func TestDeterminismFixture(t *testing.T) {
	linttest.Run(t, "testdata/determinism", lint.DeterminismAnalyzer)
}

func TestNoallocFixture(t *testing.T) {
	linttest.Run(t, "testdata/noalloc", lint.NoallocAnalyzer)
}

func TestNoperturbFixture(t *testing.T) {
	linttest.Run(t, "testdata/noperturb", lint.NoperturbAnalyzer)
}

func TestExhaustiveFixture(t *testing.T) {
	linttest.Run(t, "testdata/exhaustive", lint.ExhaustiveAnalyzer)
}

func TestMetricLintFixture(t *testing.T) {
	linttest.Run(t, "testdata/metriclint", lint.MetricLintAnalyzer)
}

func TestLockorderFixture(t *testing.T) {
	linttest.Run(t, "testdata/lockorder", lint.LockorderAnalyzer)
}

func TestWirecheckFixture(t *testing.T) {
	linttest.Run(t, "testdata/wirecheck", lint.WirecheckAnalyzer)
}

func TestSimtimeFixture(t *testing.T) {
	linttest.Run(t, "testdata/simtime", lint.SimtimeAnalyzer)
}
