// Package linttest runs the asdlint analyzers outside the go vet
// driver: over fixture trees with analysistest-style `// want` comment
// expectations, and over the real repository source for the zero-
// findings regression tests.
//
// A fixture tree lives under testdata/<pass>/src/: each subdirectory
// is one package whose import path is its directory name, so fixture
// packages can import one another ("hot" importing "dep") and facts
// flow between them exactly as they do through vet's .vetx files.
// Standard-library imports are type-checked from GOROOT source, so the
// loader needs no export data and works offline.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"asdsim/internal/lint"
)

// Loader loads packages from source directories, type-checks them (in
// import order, recursively), runs the configured analyzers on each,
// and accumulates diagnostics and cross-package facts.
type Loader struct {
	// Fset positions every loaded file.
	Fset *token.FileSet
	// Dirs maps an import path to the directory holding its sources.
	// Paths not in Dirs resolve through the GOROOT source importer.
	Dirs map[string]string
	// IgnoreScope runs every analyzer regardless of its Scope (fixture
	// packages do not live under real import paths).
	IgnoreScope bool
	// Analyzers are the passes to run on each loaded package.
	Analyzers []*lint.Analyzer
	// Transform, when set, rewrites file contents before parsing; the
	// mutation regression tests use it to break real source on the fly.
	Transform func(filename string, src []byte) []byte

	std     types.Importer
	tpkgs   map[string]*types.Package
	pkgs    map[string]*lint.Package
	facts   map[string]*lint.Facts
	diags   []lint.Diagnostic
	loading map[string]bool
}

// NewLoader returns a loader running the given analyzers.
func NewLoader(analyzers ...*lint.Analyzer) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		Dirs:      map[string]string{},
		Analyzers: analyzers,
		std:       importer.ForCompiler(fset, "source", nil),
		tpkgs:     map[string]*types.Package{},
		pkgs:      map[string]*lint.Package{},
		facts:     map[string]*lint.Facts{},
		loading:   map[string]bool{},
	}
}

// Import implements types.Importer: local directories first, then the
// standard library from source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.tpkgs[path]; ok {
		return p, nil
	}
	if _, ok := l.Dirs[path]; ok {
		return l.load(path)
	}
	return l.std.Import(path)
}

// Load loads, type-checks and lints the package at the given import
// path (which must be in Dirs), along with everything it imports.
func (l *Loader) Load(path string) (*lint.Package, error) {
	if _, err := l.Import(path); err != nil {
		return nil, err
	}
	return l.pkgs[path], nil
}

// Diags returns every diagnostic reported so far, in load order.
func (l *Loader) Diags() []lint.Diagnostic { return l.diags }

// Facts returns the facts exported by a loaded package (nil if the
// path has not been loaded).
func (l *Loader) Facts(path string) *lint.Facts { return l.facts[path] }

// Packages returns the loaded lint packages keyed by import path.
func (l *Loader) Packages() map[string]*lint.Package { return l.pkgs }

func (l *Loader) load(path string) (*types.Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("linttest: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.Dirs[path]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		full := filepath.Join(dir, n)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if l.Transform != nil {
			src = l.Transform(n, src)
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("linttest: type-checking %s: %w", path, err)
	}

	lp := &lint.Package{Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	cfg := &lint.Config{
		IgnoreScope: l.IgnoreScope,
		DepFacts:    func(p string) *lint.Facts { return l.facts[p] },
	}
	res := lint.Check(lp, cfg, l.Analyzers...)
	l.facts[path] = res.Facts
	l.diags = append(l.diags, res.Diags...)
	l.tpkgs[path] = tpkg
	l.pkgs[path] = lp
	return tpkg, nil
}

// expectation is one parsed `// want` comment.
type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantArgRe extracts the backquoted or double-quoted regexes of a want
// comment.
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectations parses the `// want` comments of every loaded file.
func (l *Loader) expectations() ([]*expectation, error) {
	var out []*expectation
	for _, lp := range l.pkgs {
		for _, f := range lp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					posn := l.Fset.Position(c.Pos())
					ms := wantArgRe.FindAllStringSubmatch(rest, -1)
					if len(ms) == 0 {
						return nil, fmt.Errorf("%s: want comment with no `regex` or \"regex\" argument", posn)
					}
					for _, m := range ms {
						pat := m[1]
						if m[2] != "" || m[1] == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %q: %v", posn, pat, err)
						}
						out = append(out, &expectation{
							file: posn.Filename, line: posn.Line, pattern: pat, re: re,
						})
					}
				}
			}
		}
	}
	return out, nil
}

// Run loads every fixture package under dir/src, runs the analyzers
// with Scope ignored, and matches the resulting diagnostics against
// the fixtures' `// want "regex"` comments: each want must be matched
// by exactly one diagnostic on its line, and every diagnostic must be
// claimed by a want.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	srcRoot := filepath.Join(dir, "src")
	entries, err := os.ReadDir(srcRoot)
	if err != nil {
		t.Fatalf("reading fixture root: %v", err)
	}
	l := NewLoader(analyzers...)
	l.IgnoreScope = true
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			l.Dirs[e.Name()] = filepath.Join(srcRoot, e.Name())
			paths = append(paths, e.Name())
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatalf("no fixture packages under %s", srcRoot)
	}
	for _, p := range paths {
		if _, err := l.Load(p); err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
	}

	exps, err := l.expectations()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range l.Diags() {
		posn := l.Fset.Position(d.Pos)
		matched := false
		for _, e := range exps {
			if e.matched || e.file != posn.Filename || e.line != posn.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", posn, d.Pass, d.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.pattern)
		}
	}
}
