package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"asdsim/internal/metrics"
)

// MetricLintAnalyzer validates literal metric and label names at
// build time against the same 0.0.4 exposition grammar that
// metrics.Lint enforces on rendered payloads. A name that only fails
// when the farm's /metrics endpoint is scraped in production fails
// here at `go vet` instead. Checked call sites are the Registry
// constructors (Counter, Gauge, Histogram): the first argument must
// be a grammatical metric name, the help string non-empty, and every
// literal label a grammatical label name (with "le" reserved for
// histogram buckets). Non-literal arguments are outside static reach
// and are still covered by the runtime Lint in tests.
var MetricLintAnalyzer = &Analyzer{
	Name: "metriclint",
	Doc: `validate literal metric names, help strings and label names passed
to metrics.Registry constructors against the exposition grammar`,
	Run: runMetricLint,
}

// metricCtors maps Registry constructor names to the index of their
// first label argument (variadic tail).
var metricCtors = map[string]int{
	"Counter":   2, // (name, help, labels...)
	"Gauge":     2,
	"Histogram": 3, // (name, help, bounds, labels...)
}

func runMetricLint(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pkg.StaticCallee(call)
			if callee == nil {
				return true
			}
			labelStart, ok := metricCtors[callee.Name()]
			if !ok || !isMetricsRegistryMethod(callee) {
				return true
			}
			if len(call.Args) < 2 {
				return true // type error; not ours to report
			}
			if name, lit := stringLiteral(call.Args[0]); lit {
				if !metrics.ValidMetricName(name) {
					pass.Report(call.Args[0].Pos(), "metric name %q violates the exposition grammar [a-zA-Z_:][a-zA-Z0-9_:]*", name)
				}
			}
			if help, lit := stringLiteral(call.Args[1]); lit && help == "" {
				pass.Report(call.Args[1].Pos(), "metric %s declared with an empty help string", describeArg(call.Args[0]))
			}
			if call.Ellipsis.IsValid() {
				return true // labels splatted from a slice: runtime Lint's job
			}
			for i := labelStart; i < len(call.Args); i++ {
				if label, lit := stringLiteral(call.Args[i]); lit {
					if !metrics.ValidLabelName(label) {
						pass.Report(call.Args[i].Pos(), "label name %q violates the exposition grammar [a-zA-Z_][a-zA-Z0-9_]* (\"le\" is reserved)", label)
					}
				}
			}
			return true
		})
	}
}

// isMetricsRegistryMethod reports whether fn is a method on a
// Registry type declared in a package named "metrics" (the real
// asdsim/internal/metrics, or a fixture stand-in).
func isMetricsRegistryMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeName(sig.Recv().Type()) == fn.Pkg().Path()+".Registry"
}

// stringLiteral unquotes e when it is a plain string literal, or a
// constant string expression.
func stringLiteral(e ast.Expr) (string, bool) {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		s, err := strconv.Unquote(lit.Value)
		if err == nil {
			return s, true
		}
	}
	return "", false
}

// describeArg renders the name argument for help-string diagnostics.
func describeArg(e ast.Expr) string {
	if s, ok := stringLiteral(e); ok {
		return strconv.Quote(s)
	}
	return types.ExprString(e)
}
