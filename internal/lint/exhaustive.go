package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveAnalyzer keeps every probe-event kind wired through the
// whole telemetry chain. A switch tagged //asd:exhaustive over a
// kind-enumeration type must name every declared constant of that
// type (an explicit no-op case documents "seen and intentionally
// ignored"); a tagged `var` whose type is an array sized by the
// enumeration's sentinel must populate every element. On top of the
// directive checks, RequiredSites pins the directive itself in place:
// the Sampler, the Chrome-trace exporter, the flight recorder and
// Kind.String's name table must each contain a tagged site, so
// deleting either a case or the tag fails the vet gate.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive-events",
	Doc: `require //asd:exhaustive switches and arrays to cover every constant
of their kind-enumeration type, and require the tagged sites to exist in the
Sampler, trace exporter, flight recorder and String name table`,
	Run: runExhaustive,
}

// ExhaustiveRequiredSites lists, per package, declarations that must
// contain at least one //asd:exhaustive directive. Methods are named
// "Type.Method" (receiver stars dropped), functions by name, and
// package-level vars "var name".
var ExhaustiveRequiredSites = map[string][]string{
	"asdsim/internal/obs": {
		"Sampler.Emit",      // time-series sampler
		"TraceBuilder.Emit", // Chrome-trace exporter
		"var kindNames",     // Kind.String name table
	},
	"asdsim/internal/obs/flightrec": {
		"Recorder.Emit", // flight-recorder detector dispatch
	},
	"asdsim/internal/obs/prov": {
		"Recorder.Emit", // provenance lifecycle-event dispatch
	},
}

// sentinelPrefixes name the enumeration-count sentinels ("numKinds")
// excluded from coverage requirements.
var sentinelPrefixes = []string{"num", "max", "sentinel"}

func runExhaustive(pass *Pass) {
	pkg := pass.Pkg
	tagged := map[ast.Node]bool{}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if pkg.hasExhaustiveTag(n.Pos()) {
					tagged[n] = true
					checkExhaustiveSwitch(pass, n)
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if pkg.hasExhaustiveTag(n.Pos()) || pkg.hasExhaustiveTag(vs.Pos()) {
						tagged[vs] = true
						checkExhaustiveArray(pass, vs)
					}
				}
			}
			return true
		})
	}

	checkRequiredSites(pass, tagged)
}

// hasExhaustiveTag reports whether an //asd:exhaustive directive sits
// on the position's line or the line above it.
func (pkg *Package) hasExhaustiveTag(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	posn := pkg.Fset.Position(pos)
	for _, d := range pkg.at(posn.Filename, posn.Line) {
		if d.kind == dirExhaustive {
			return true
		}
	}
	return false
}

// checkExhaustiveSwitch verifies the tagged switch covers every
// constant of the switched enumeration type.
func checkExhaustiveSwitch(pass *Pass, sw *ast.SwitchStmt) {
	pkg := pass.Pkg
	if sw.Tag == nil {
		pass.Report(sw.Pos(), "//asd:exhaustive switch has no tag expression")
		return
	}
	t := pkg.Info.TypeOf(sw.Tag)
	named := namedEnumType(t)
	if named == nil {
		pass.Report(sw.Pos(), "//asd:exhaustive switch tag %s is not a defined integer enumeration type", types.TypeString(t, nil))
		return
	}
	want := enumConstants(pkg, named)
	if len(want) == 0 {
		pass.Report(sw.Pos(), "//asd:exhaustive switch over %s: no constants of that type are visible", named.Obj().Name())
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj := constObjOf(pkg, e); obj != nil {
				covered[obj.Name()] = true
			}
		}
	}
	var missing []string
	for _, c := range want {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Report(sw.Pos(), "//asd:exhaustive switch over %s misses: %s (add explicit no-op cases for intentionally ignored kinds)",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// checkExhaustiveArray verifies a tagged var like
//
//	var kindNames = [numKinds]string{...}
//
// populates every element: the array length must resolve to a
// constant of the enumeration type (the sentinel) and the literal
// must provide that many non-zero elements.
func checkExhaustiveArray(pass *Pass, vs *ast.ValueSpec) {
	pkg := pass.Pkg
	if len(vs.Names) != 1 || len(vs.Values) != 1 {
		pass.Report(vs.Pos(), "//asd:exhaustive var must be a single name with a single array literal value")
		return
	}
	lit, ok := ast.Unparen(vs.Values[0]).(*ast.CompositeLit)
	if !ok {
		pass.Report(vs.Pos(), "//asd:exhaustive var %s: value is not a composite literal", vs.Names[0].Name)
		return
	}
	t := pkg.Info.TypeOf(lit)
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		pass.Report(vs.Pos(), "//asd:exhaustive var %s: type %s is not an array", vs.Names[0].Name, t)
		return
	}
	n := arr.Len()
	if int64(len(lit.Elts)) != n {
		pass.Report(vs.Pos(), "//asd:exhaustive var %s: %d of %d elements populated; every enumeration value needs an entry",
			vs.Names[0].Name, len(lit.Elts), n)
		return
	}
	for i, e := range lit.Elts {
		if isZeroLiteral(e) {
			pass.Report(e.Pos(), "//asd:exhaustive var %s: element %d is empty", vs.Names[0].Name, i)
		}
	}
}

func isZeroLiteral(e ast.Expr) bool {
	if kv, ok := e.(*ast.KeyValueExpr); ok {
		e = kv.Value
	}
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return lit.Value == `""` || lit.Value == "``" || lit.Value == "0"
	}
	return false
}

// checkRequiredSites enforces that each declaration named in
// ExhaustiveRequiredSites for this package contains a tagged node.
func checkRequiredSites(pass *Pass, tagged map[ast.Node]bool) {
	pkg := pass.Pkg
	path := CanonicalPkgPath(pkg.Types.Path())
	sites := ExhaustiveRequiredSites[path]
	if len(sites) == 0 {
		return
	}
	for _, site := range sites {
		if !siteHasTag(pkg, site, tagged) {
			pass.Report(pkg.Files[0].Pos(), "required //asd:exhaustive site %q has no tagged switch/array (the telemetry chain must handle every event kind)", site)
		}
	}
}

// siteHasTag locates the named declaration and reports whether a
// tagged node lies within it.
func siteHasTag(pkg *Package, site string, tagged map[ast.Node]bool) bool {
	if name, ok := strings.CutPrefix(site, "var "); ok {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, n := range vs.Names {
						if n.Name == name && tagged[vs] {
							return true
						}
					}
				}
			}
		}
		return false
	}
	typeName, funcName := "", site
	if i := strings.LastIndex(site, "."); i >= 0 {
		typeName, funcName = site[:i], site[i+1:]
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Name.Name != funcName || fn.Body == nil {
				continue
			}
			if typeName != "" && recvTypeName(pkg, fn) != typeName {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if tagged[n] {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// recvTypeName returns the bare receiver type name of a method
// ("Sampler" for func (s *Sampler) ...), or "".
func recvTypeName(pkg *Package, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// namedEnumType returns t as a defined type with integer underlying
// kind, or nil.
func namedEnumType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// enumConstants collects the package-level constants of exactly type
// named, visible from pkg, excluding count sentinels. For the type's
// own package that is every declared constant; across packages only
// exported ones are visible (sentinels are conventionally unexported,
// so the sets agree).
func enumConstants(pkg *Package, named *types.Named) []*types.Const {
	declPkg := named.Obj().Pkg()
	if declPkg == nil {
		return nil
	}
	scope := declPkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if declPkg != pkg.Types && !c.Exported() {
			continue
		}
		if isSentinelName(c.Name()) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		return vi < vj
	})
	return out
}

func isSentinelName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range sentinelPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// constObjOf resolves a case expression to the constant object it
// names (possibly package-qualified).
func constObjOf(pkg *Package, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := pkg.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pkg.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}
