// Package cpu provides the trace-driven processor timing model: an
// in-order front end with a bounded run-ahead window and a bounded number
// of outstanding memory-system requests, approximating the Power5+'s
// ability to overlap several L2 misses. The sim package drives Threads
// against the cache hierarchy and memory controller.
package cpu

import (
	"fmt"

	"asdsim/internal/mem"
	"asdsim/internal/obs"
	"asdsim/internal/trace"
)

// Config holds the per-thread timing parameters.
type Config struct {
	// Window is the run-ahead window in instructions: a missing load
	// blocks retirement once the thread has moved this many
	// instructions past it (reorder-buffer depth).
	Window uint64
	// MaxOutstanding bounds concurrent memory-system requests per
	// thread (the Power5+ sustains about eight outstanding L2 misses).
	MaxOutstanding int
	// BudgetInstructions ends the thread after this many instructions.
	BudgetInstructions uint64
}

// DefaultConfig returns Power5+-flavoured parameters.
func DefaultConfig(budget uint64) Config {
	return Config{Window: 128, MaxOutstanding: 8, BudgetInstructions: budget}
}

// Pending is one outstanding memory request of a thread.
type Pending struct {
	ID       uint64
	Line     mem.Line
	InstrIdx uint64
	// IsLoad distinguishes loads (which block retirement via the
	// window) from store misses (which only occupy an outstanding slot).
	IsLoad bool
}

// Thread is one hardware thread's timing state.
type Thread struct {
	// ID is the hardware thread index.
	ID  int
	cfg Config
	src trace.Source

	// Now is the thread-local CPU cycle.
	Now uint64
	// Instructions retired (compute gaps included).
	Instructions uint64
	// StallCycles accumulates cycles spent blocked on memory.
	StallCycles uint64

	pend     []Pending
	nextID   uint64
	finished bool
	bus      *obs.Bus // nil when no observer is attached
}

// NewThread returns a thread executing src under cfg.
func NewThread(id int, src trace.Source, cfg Config) *Thread {
	if cfg.Window == 0 || cfg.MaxOutstanding <= 0 || cfg.BudgetInstructions == 0 {
		panic(fmt.Sprintf("cpu: invalid config %+v", cfg))
	}
	return &Thread{ID: id, cfg: cfg, src: src}
}

// Finished reports whether the thread has retired its budget (or ran out
// of trace).
//
//asd:hotpath
func (t *Thread) Finished() bool { return t.finished }

// SetObserver attaches a probe bus (nil detaches).
func (t *Thread) SetObserver(b *obs.Bus) { t.bus = b }

// Outstanding returns the number of pending memory requests.
func (t *Thread) Outstanding() int { return len(t.pend) }

// NextRecord fetches the thread's next trace record and accounts its
// compute gap (1 instruction per cycle) plus the memory operation itself.
// It returns ok=false when the thread is done.
func (t *Thread) NextRecord() (trace.Record, bool) {
	if t.finished {
		return trace.Record{}, false
	}
	if t.Instructions >= t.cfg.BudgetInstructions {
		t.finished = true
		return trace.Record{}, false
	}
	rec, ok := t.src.Next()
	if !ok {
		t.finished = true
		return trace.Record{}, false
	}
	t.Now += uint64(rec.Gap) + 1
	t.Instructions += uint64(rec.Gap) + 1
	return rec, true
}

// SkipRetired bulk-retires delta instructions whose trace records the
// caller consumed directly from the thread's source (the sampled
// fast-forward's reuse-bounded skip): the clock and retirement count
// advance exactly as per-record NextRecord calls would have. The
// caller must keep delta within the thread's remaining budget.
func (t *Thread) SkipRetired(delta uint64) {
	t.Now += delta
	t.Instructions += delta
}

// ChargeHit adds a cache-hit latency to the thread clock (loads only; the
// store buffer hides store hit latency).
//
//asd:hotpath
func (t *Thread) ChargeHit(lat uint64) { t.Now += lat }

// AddPending registers an outstanding memory request for line and
// returns its handle.
//
//asd:hotpath
func (t *Thread) AddPending(line mem.Line, isLoad bool) uint64 {
	t.nextID++
	t.pend = append(t.pend, Pending{ID: t.nextID, Line: line, InstrIdx: t.Instructions, IsLoad: isLoad})
	return t.nextID
}

// Complete resolves the outstanding request with the given handle.
//
//asd:hotpath
func (t *Thread) Complete(id uint64) {
	for i := range t.pend {
		if t.pend[i].ID == id {
			t.pend = append(t.pend[:i], t.pend[i+1:]...)
			return
		}
	}
}

// BlockedOn returns the pending request the thread must wait for before
// executing another instruction, or nil if it can proceed: the oldest
// request when all outstanding slots are full, or the oldest load that
// has fallen out of the run-ahead window.
//
//asd:hotpath
func (t *Thread) BlockedOn() *Pending {
	if len(t.pend) == 0 {
		return nil
	}
	if len(t.pend) >= t.cfg.MaxOutstanding {
		return &t.pend[0]
	}
	for i := range t.pend {
		p := &t.pend[i]
		if p.IsLoad && t.Instructions-p.InstrIdx >= t.cfg.Window {
			return p
		}
	}
	return nil
}

// Resume unblocks the thread at cycle at (no-op if the thread clock is
// already past it), accounting the difference as stall time.
func (t *Thread) Resume(at uint64) {
	if at > t.Now {
		t.StallCycles += at - t.Now
		if t.bus != nil {
			t.bus.Emit(obs.Event{Kind: obs.KindCPUStall, Cycle: at,
				Thread: int32(t.ID), V1: int64(at - t.Now)})
		}
		t.Now = at
	}
}

// DrainTo advances a finished thread's notion of completion: the thread's
// execution time includes waiting for its last loads.
//
//asd:hotpath
func (t *Thread) DrainTo(at uint64) {
	if at > t.Now {
		t.Now = at
	}
}
