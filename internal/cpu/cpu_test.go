package cpu

import (
	"testing"

	"asdsim/internal/trace"
)

func recs(n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{Gap: 4, Op: trace.Load, Addr: 0}
	}
	return out
}

func TestNewThreadPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"window":      {Window: 0, MaxOutstanding: 1, BudgetInstructions: 1},
		"outstanding": {Window: 1, MaxOutstanding: 0, BudgetInstructions: 1},
		"budget":      {Window: 1, MaxOutstanding: 1, BudgetInstructions: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewThread(0, trace.NewSliceSource(nil), cfg)
		}()
	}
}

func TestNextRecordAccounting(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(3)), DefaultConfig(1000))
	r, ok := th.NextRecord()
	if !ok || r.Gap != 4 {
		t.Fatalf("rec = %v ok=%v", r, ok)
	}
	if th.Now != 5 || th.Instructions != 5 {
		t.Errorf("Now=%d Instr=%d, want 5,5", th.Now, th.Instructions)
	}
}

func TestBudgetEndsThread(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(100)), Config{Window: 8, MaxOutstanding: 2, BudgetInstructions: 12})
	n := 0
	for {
		if _, ok := th.NextRecord(); !ok {
			break
		}
		n++
	}
	// 5 instructions per record: records at instr 5, 10, then 15 > 12.
	if n != 3 {
		t.Errorf("records executed = %d, want 3", n)
	}
	if !th.Finished() {
		t.Error("thread should be finished")
	}
}

func TestTraceExhaustionEndsThread(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(2)), DefaultConfig(1000))
	th.NextRecord()
	th.NextRecord()
	if _, ok := th.NextRecord(); ok {
		t.Error("expected exhaustion")
	}
	if !th.Finished() {
		t.Error("thread should be finished")
	}
}

func TestBlockedOnOutstandingLimit(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(100)), Config{Window: 1000, MaxOutstanding: 2, BudgetInstructions: 1 << 30})
	th.NextRecord()
	id1 := th.AddPending(1, true)
	if th.BlockedOn() != nil {
		t.Fatal("one pending should not block")
	}
	th.AddPending(2, true)
	b := th.BlockedOn()
	if b == nil || b.ID != id1 {
		t.Fatalf("blocked on %+v, want oldest (id %d)", b, id1)
	}
	th.Complete(id1)
	if th.BlockedOn() != nil {
		t.Error("completion should unblock")
	}
}

func TestBlockedOnWindow(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(100)), Config{Window: 10, MaxOutstanding: 8, BudgetInstructions: 1 << 30})
	th.NextRecord() // instr 5
	id := th.AddPending(1, true)
	th.NextRecord() // instr 10
	if th.BlockedOn() != nil {
		t.Fatal("within window should not block")
	}
	th.NextRecord() // instr 15: 10 past the load
	b := th.BlockedOn()
	if b == nil || b.ID != id {
		t.Fatalf("blocked = %+v, want load %d", b, id)
	}
}

func TestStoreMissesDoNotBlockViaWindow(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(100)), Config{Window: 10, MaxOutstanding: 8, BudgetInstructions: 1 << 30})
	th.NextRecord()
	th.AddPending(1, false) // store miss
	for i := 0; i < 10; i++ {
		th.NextRecord()
	}
	if th.BlockedOn() != nil {
		t.Error("store miss must not block retirement")
	}
}

func TestResumeAccountsStall(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(10)), DefaultConfig(1000))
	th.NextRecord() // Now = 5
	th.Resume(50)
	if th.Now != 50 || th.StallCycles != 45 {
		t.Errorf("Now=%d Stall=%d", th.Now, th.StallCycles)
	}
	th.Resume(20) // in the past: no-op
	if th.Now != 50 || th.StallCycles != 45 {
		t.Errorf("backwards Resume changed state: Now=%d Stall=%d", th.Now, th.StallCycles)
	}
}

func TestChargeHitAndDrain(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(10)), DefaultConfig(1000))
	th.NextRecord()
	th.ChargeHit(13)
	if th.Now != 18 {
		t.Errorf("Now = %d", th.Now)
	}
	th.DrainTo(100)
	if th.Now != 100 {
		t.Errorf("DrainTo: Now = %d", th.Now)
	}
	th.DrainTo(10)
	if th.Now != 100 {
		t.Error("DrainTo must not move backwards")
	}
}

func TestCompleteUnknownIDIsNoop(t *testing.T) {
	th := NewThread(0, trace.NewSliceSource(recs(10)), DefaultConfig(1000))
	th.AddPending(1, true)
	th.Complete(999)
	if th.Outstanding() != 1 {
		t.Error("unknown completion removed a pending entry")
	}
}
