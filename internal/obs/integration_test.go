package obs_test

import (
	"context"
	"testing"

	"asdsim/internal/farm"
	"asdsim/internal/obs"
	"asdsim/internal/sim"
)

// TestConcurrentSinkUnderFarm drives several observed simulations
// concurrently through the farm pool with every run's bus fanning into
// one shared concurrency-safe sink. Run under -race this is the probe
// path's data-race check; it also asserts the instrumentation actually
// fires across components.
func TestConcurrentSinkUnderFarm(t *testing.T) {
	shared := &obs.Counter{}
	var specs []farm.Spec
	for _, bench := range []string{"GemsFDTD", "milc", "lbm", "tpcc"} {
		cfg := sim.Default(sim.PMS, 60_000)
		// One bus per run (Emit is not synchronized); the shared sink
		// is what crosses goroutines.
		cfg.Obs = obs.NewBus(shared)
		specs = append(specs, farm.Spec{Benchmark: bench, Mode: cfg.Mode, Config: cfg})
	}

	pool := farm.New(farm.Options{Workers: 4})
	defer pool.Close()
	outs, err := pool.RunBatch(context.Background(), specs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if !o.OK() {
			t.Fatalf("run %d (%s) failed: %s", i, specs[i].Benchmark, o.Err)
		}
	}

	for _, k := range []obs.Kind{
		obs.KindMCEnqueue, obs.KindMCSchedule, obs.KindMCIssue, obs.KindMCComplete,
		obs.KindMCQueues, obs.KindDRAMAccess, obs.KindCacheAccess, obs.KindCPUStall,
	} {
		if shared.Count(k) == 0 {
			t.Errorf("no %v events observed across the farm batch", k)
		}
	}
}

// TestObserverDoesNotPerturbSimulation: attaching a bus must not change
// simulated behavior — same cycles, same stats, observer or not.
func TestObserverDoesNotPerturbSimulation(t *testing.T) {
	cfg := sim.Default(sim.PMS, 60_000)
	plain, err := sim.Run("GemsFDTD", cfg)
	if err != nil {
		t.Fatal(err)
	}

	c := &obs.Counter{}
	cfg.Obs = obs.NewBus(c)
	observed, err := sim.Run("GemsFDTD", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != observed.Cycles || plain.Instructions != observed.Instructions {
		t.Errorf("observer changed the simulation: %d/%d cycles, %d/%d instructions",
			plain.Cycles, observed.Cycles, plain.Instructions, observed.Instructions)
	}
	if plain.MC != observed.MC {
		t.Errorf("observer changed MC stats:\nplain:    %+v\nobserved: %+v", plain.MC, observed.MC)
	}
	if c.Total() == 0 {
		t.Error("no events reached the sink")
	}

	// Cross-check probe counts against the simulator's own statistics.
	if got, want := c.Count(obs.KindMCEnqueue), plain.MC.RegularReads+plain.MC.RegularWrites; got != want {
		t.Errorf("KindMCEnqueue count = %d, want reads+writes = %d", got, want)
	}
	if got, want := c.Count(obs.KindMCPFIssue), plain.MC.PrefetchesToDRAM; got != want {
		t.Errorf("KindMCPFIssue count = %d, want PrefetchesToDRAM = %d", got, want)
	}
	if got, want := c.Count(obs.KindMCPFNominate), plain.MC.PrefetchesToLPQ; got != want {
		t.Errorf("KindMCPFNominate count = %d, want PrefetchesToLPQ = %d", got, want)
	}
	if got, want := c.Count(obs.KindMCPBHit), plain.MC.PBHitsEntry+plain.MC.PBHitsLate; got != want {
		t.Errorf("KindMCPBHit count = %d, want entry+late hits = %d", got, want)
	}
}
