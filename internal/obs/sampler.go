package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one fixed-width time window's aggregate of the event
// stream: queue-occupancy statistics, prefetch and DRAM activity
// counts, cache level mix and CPU stall time. Gauges (queue depths,
// policy) aggregate as mean/max over the window; everything else is a
// count or a sum.
type Sample struct {
	// Window is the sample's index: it covers CPU cycles
	// [Window*Interval, (Window+1)*Interval).
	Window uint64 `json:"window"`
	Start  uint64 `json:"start_cycle"`

	// Queue occupancy (from KindMCQueues gauges).
	QueueObs    uint64  `json:"queue_obs"`
	CAQMean     float64 `json:"caq_mean"`
	CAQMax      int64   `json:"caq_max"`
	ReorderMean float64 `json:"reorder_mean"`
	ReorderMax  int64   `json:"reorder_max"`
	LPQMean     float64 `json:"lpq_mean"`
	LPQMax      int64   `json:"lpq_max"`

	// Demand traffic.
	Reads       uint64  `json:"reads"`
	Writes      uint64  `json:"writes"`
	Completions uint64  `json:"completions"`
	MeanReadLat float64 `json:"mean_read_lat"`
	PBHits      uint64  `json:"pb_hits"`
	BankConf    uint64  `json:"bank_conflicts"`

	// Memory-side prefetcher activity.
	PFNominated uint64 `json:"pf_nominated"`
	PFDropped   uint64 `json:"pf_dropped"`
	PFIssued    uint64 `json:"pf_issued"`
	PFLate      uint64 `json:"pf_late"`
	PFWasted    uint64 `json:"pf_wasted"`

	// DRAM activity.
	RowHits      uint64 `json:"row_hits"`
	RowMisses    uint64 `json:"row_misses"`
	RowConflicts uint64 `json:"row_conflicts"`
	Refreshes    uint64 `json:"refreshes"`

	// Cache level mix and CPU stall time.
	L1Hits      uint64 `json:"l1_hits"`
	L2Hits      uint64 `json:"l2_hits"`
	L3Hits      uint64 `json:"l3_hits"`
	MemAccesses uint64 `json:"mem_accesses"`
	StallCycles uint64 `json:"stall_cycles"`

	// ASD / scheduler state.
	EpochRolls uint64 `json:"epoch_rolls"`
	Policy     int64  `json:"policy"` // last seen; 0 until first epoch closes

	caqSum, reorderSum, lpqSum uint64
	latSum                     uint64
}

// Sampler is a Sink aggregating events into fixed-interval windows,
// ring-buffered: when more than MaxWindows windows have been opened the
// oldest are discarded, keeping memory bounded on arbitrarily long
// runs. Windows are keyed by absolute cycle (Window = Cycle/Interval),
// so slightly out-of-order events across clock domains still land in
// the right window; events older than the ring are counted in Dropped.
type Sampler struct {
	// Interval is the window width in CPU cycles.
	Interval uint64
	// MaxWindows bounds retained windows (ring buffer); 0 means the
	// DefaultMaxWindows.
	MaxWindows int

	samples    []Sample // ascending Window order
	policy     int64    // carried into new windows
	evictedAny bool     // the ring has wrapped at least once
	// Dropped counts events that arrived for windows already evicted
	// from the ring.
	Dropped uint64
}

// DefaultSampleInterval is the default window width: 50k CPU cycles,
// ~23 us of simulated time, a few hundred windows per million-cycle
// run.
const DefaultSampleInterval = 50_000

// DefaultMaxWindows bounds the ring at 4096 windows.
const DefaultMaxWindows = 4096

// NewSampler returns a sampler with the given window width in CPU
// cycles (0 means DefaultSampleInterval).
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{Interval: interval, MaxWindows: DefaultMaxWindows}
}

// window returns the sample for the event's window, opening (and
// evicting) as needed; nil if the window predates the ring.
func (s *Sampler) window(cycle uint64) *Sample {
	idx := cycle / s.Interval
	n := len(s.samples)
	if n > 0 {
		// Hot path: the event lands in the newest window.
		if last := &s.samples[n-1]; last.Window == idx {
			return last
		} else if last.Window > idx {
			// Out-of-order event for an older window: scan back and,
			// if that window was skipped over, open it in place (the
			// rare path; cross-clock-domain probes trail only a little).
			for i := n - 2; i >= 0; i-- {
				if s.samples[i].Window == idx {
					return &s.samples[i]
				}
				if s.samples[i].Window < idx {
					return s.insertAt(i+1, idx)
				}
			}
			// Older than every retained window: evicted territory.
			if s.samples[0].Window > idx && s.evictedAny {
				s.Dropped++
				return nil
			}
			return s.insertAt(0, idx)
		}
	}
	return s.insertAt(n, idx)
}

// insertAt opens window idx at position i (keeping ascending order) and
// evicts from the front past the ring limit.
func (s *Sampler) insertAt(i int, idx uint64) *Sample {
	s.samples = append(s.samples, Sample{})
	copy(s.samples[i+1:], s.samples[i:])
	s.samples[i] = Sample{Window: idx, Start: idx * s.Interval, Policy: s.policy}
	limit := s.MaxWindows
	if limit <= 0 {
		limit = DefaultMaxWindows
	}
	if n := len(s.samples); n > limit {
		s.evictedAny = true
		if i < n-limit {
			// The new window itself fell off the front.
			s.samples = append(s.samples[:0], s.samples[n-limit:]...)
			s.Dropped++
			return nil
		}
		i -= n - limit
		s.samples = append(s.samples[:0], s.samples[n-limit:]...)
	}
	return &s.samples[i]
}

// Emit implements Sink.
//
//asd:hotpath
func (s *Sampler) Emit(e Event) {
	w := s.window(e.Cycle)
	if w == nil {
		return
	}
	//asd:exhaustive
	switch e.Kind {
	case KindMCQueues:
		w.QueueObs++
		w.reorderSum += uint64(e.V1)
		w.caqSum += uint64(e.V2)
		w.lpqSum += uint64(e.V3)
		if e.V1 > w.ReorderMax {
			w.ReorderMax = e.V1
		}
		if e.V2 > w.CAQMax {
			w.CAQMax = e.V2
		}
		if e.V3 > w.LPQMax {
			w.LPQMax = e.V3
		}
	case KindMCEnqueue:
		if e.V1 != 0 {
			w.Writes++
		} else {
			w.Reads++
		}
	case KindMCComplete:
		w.Completions++
		w.latSum += uint64(e.V1)
	case KindMCPBHit:
		w.PBHits++
	case KindMCBankConflict:
		w.BankConf++
	case KindMCPFNominate:
		w.PFNominated++
	case KindMCPFDrop:
		w.PFDropped++
	case KindMCPFIssue:
		w.PFIssued++
	case KindMCPFLate:
		w.PFLate++
	case KindMCPFWasted:
		w.PFWasted++
	case KindDRAMAccess:
		switch e.V1 {
		case 0:
			w.RowHits++
		case 1:
			w.RowMisses++
		default:
			w.RowConflicts++
		}
	case KindDRAMRefresh:
		w.Refreshes++
	case KindCacheAccess:
		switch e.V1 {
		case 1:
			w.L1Hits++
		case 2:
			w.L2Hits++
		case 3:
			w.L3Hits++
		default:
			w.MemAccesses++
		}
	case KindCPUStall:
		w.StallCycles += uint64(e.V1)
	case KindASDEpochRoll:
		w.EpochRolls++
	case KindSchedPolicy:
		w.Policy = e.V1
		s.policy = e.V1
	case KindMCSchedule, KindMCIssue, KindMCPFInstall, KindASDPrefetchDecision:
		// Pipeline-stage transitions and per-decision probes carry no
		// window-level aggregate beyond what the kinds above already
		// count; seen and intentionally ignored.
	}
}

// finalize computes the derived means on a copy of w.
func finalize(w Sample) Sample {
	if w.QueueObs > 0 {
		w.CAQMean = float64(w.caqSum) / float64(w.QueueObs)
		w.ReorderMean = float64(w.reorderSum) / float64(w.QueueObs)
		w.LPQMean = float64(w.lpqSum) / float64(w.QueueObs)
	}
	if w.Completions > 0 {
		w.MeanReadLat = float64(w.latSum) / float64(w.Completions)
	}
	return w
}

// Samples returns the retained windows in chronological order with
// derived means computed.
func (s *Sampler) Samples() []Sample {
	out := make([]Sample, len(s.samples))
	for i := range s.samples {
		out[i] = finalize(s.samples[i])
	}
	return out
}

// csvHeader lists the CSV column order; the run column is prepended by
// WriteCSV so several runs can share one file.
var csvHeader = []string{
	"run", "window", "start_cycle",
	"caq_mean", "caq_max", "reorder_mean", "reorder_max", "lpq_mean", "lpq_max",
	"reads", "writes", "completions", "mean_read_lat", "pb_hits", "bank_conflicts",
	"pf_nominated", "pf_dropped", "pf_issued", "pf_late", "pf_wasted",
	"row_hits", "row_misses", "row_conflicts", "refreshes",
	"l1_hits", "l2_hits", "l3_hits", "mem_accesses", "stall_cycles",
	"epoch_rolls", "policy",
}

// CSVHeader writes the column header line.
func CSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, join(csvHeader))
	return err
}

// WriteCSV appends one row per retained window, tagged with the run
// label in the first column. Call CSVHeader once per file first.
func (s *Sampler) WriteCSV(w io.Writer, run string) error {
	for _, sm := range s.Samples() {
		row := []string{
			run,
			strconv.FormatUint(sm.Window, 10), strconv.FormatUint(sm.Start, 10),
			ffmt(sm.CAQMean), strconv.FormatInt(sm.CAQMax, 10),
			ffmt(sm.ReorderMean), strconv.FormatInt(sm.ReorderMax, 10),
			ffmt(sm.LPQMean), strconv.FormatInt(sm.LPQMax, 10),
			strconv.FormatUint(sm.Reads, 10), strconv.FormatUint(sm.Writes, 10),
			strconv.FormatUint(sm.Completions, 10), ffmt(sm.MeanReadLat),
			strconv.FormatUint(sm.PBHits, 10), strconv.FormatUint(sm.BankConf, 10),
			strconv.FormatUint(sm.PFNominated, 10), strconv.FormatUint(sm.PFDropped, 10),
			strconv.FormatUint(sm.PFIssued, 10), strconv.FormatUint(sm.PFLate, 10),
			strconv.FormatUint(sm.PFWasted, 10),
			strconv.FormatUint(sm.RowHits, 10), strconv.FormatUint(sm.RowMisses, 10),
			strconv.FormatUint(sm.RowConflicts, 10), strconv.FormatUint(sm.Refreshes, 10),
			strconv.FormatUint(sm.L1Hits, 10), strconv.FormatUint(sm.L2Hits, 10),
			strconv.FormatUint(sm.L3Hits, 10), strconv.FormatUint(sm.MemAccesses, 10),
			strconv.FormatUint(sm.StallCycles, 10),
			strconv.FormatUint(sm.EpochRolls, 10), strconv.FormatInt(sm.Policy, 10),
		}
		if _, err := fmt.Fprintln(w, join(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per retained window, each with a
// "run" field carrying the label.
func (s *Sampler) WriteJSONL(w io.Writer, run string) error {
	enc := json.NewEncoder(w)
	for _, sm := range s.Samples() {
		if err := enc.Encode(struct {
			Run string `json:"run"`
			Sample
		}{run, sm}); err != nil {
			return err
		}
	}
	return nil
}

func ffmt(f float64) string { return strconv.FormatFloat(f, 'f', 3, 64) }

func join(cells []string) string { return strings.Join(cells, ",") }
