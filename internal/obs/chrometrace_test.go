package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// scriptedEvents is a small deterministic lifecycle script: two demand
// Reads (one DRAM-served, one entry PB hit), a merged Read, a prefetch,
// queue-depth counters and the two instant kinds.
func scriptedEvents() []Event {
	return []Event{
		// Read 1: full enqueue -> schedule -> issue -> complete.
		{Kind: KindMCEnqueue, ID: 1, Thread: 0, Line: 100, Cycle: 1000},
		{Kind: KindMCQueues, Cycle: 1000, V1: 1, V2: 0, V3: 0},
		{Kind: KindMCSchedule, ID: 1, Thread: 0, Line: 100, Cycle: 1200},
		{Kind: KindMCQueues, Cycle: 1200, V1: 0, V2: 1, V3: 0},
		{Kind: KindMCQueues, Cycle: 1300, V1: 0, V2: 1, V3: 0}, // duplicate: deduped
		{Kind: KindMCIssue, ID: 1, Thread: 0, Line: 100, Cycle: 1400},
		{Kind: KindMCComplete, ID: 1, Thread: 0, Line: 100, Cycle: 2600, V1: 1600},
		// A prefetch issued at 1500, completing at 2300, depth 1.
		{Kind: KindMCPFIssue, Line: 101, Cycle: 1500, V1: 1, V2: 2300},
		// Read 2: entry PB hit (never scheduled).
		{Kind: KindMCEnqueue, ID: 2, Thread: 1, Line: 101, Cycle: 2400},
		{Kind: KindMCComplete, ID: 2, Thread: 1, Line: 101, Cycle: 2420, V1: 20},
		// Read 3: merged onto an in-flight prefetch (V2 == 1).
		{Kind: KindMCEnqueue, ID: 3, Thread: 0, Line: 102, Cycle: 2500},
		{Kind: KindMCComplete, ID: 3, Thread: 0, Line: 102, Cycle: 2900, V1: 400, V2: 1},
		// A write: enqueued but never tracked as a lifetime.
		{Kind: KindMCEnqueue, ID: 4, Thread: 0, Line: 103, Cycle: 2600, V1: 1},
		// Instants.
		{Kind: KindASDEpochRoll, Cycle: 3000, V1: 1},
		{Kind: KindSchedPolicy, Cycle: 3100, V1: 2, V3: 1},
		{Kind: KindSchedPolicy, Cycle: 3200, V1: 2, V3: 2}, // unchanged: no instant
	}
}

// TestTraceGolden locks the exporter's full JSON output. Regenerate
// with: go test ./internal/obs -run TraceGolden -update
func TestTraceGolden(t *testing.T) {
	b := NewTraceBuilder()
	b.StartProcess("golden PMS")
	for _, e := range scriptedEvents() {
		b.Emit(e)
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from %s (re-run with -update if intended)\ngot:\n%s", golden, buf.String())
	}
}

// TestTraceStructure checks the trace is well-formed JSON with the
// expected slice set, independent of exact formatting.
func TestTraceStructure(t *testing.T) {
	b := NewTraceBuilder()
	b.StartProcess("run-a")
	for _, e := range scriptedEvents() {
		b.Emit(e)
	}
	b.StartProcess("run-b")
	b.Emit(Event{Kind: KindMCEnqueue, ID: 1, Line: 7, Cycle: 10})
	b.Emit(Event{Kind: KindMCComplete, ID: 1, Line: 7, Cycle: 30, V1: 20})

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	counts := map[string]int{}
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		counts[e.Name+"/"+e.Ph]++
		pids[e.Pid] = true
		if e.Ph == "X" && (e.Dur == nil || *e.Dur <= 0) {
			t.Errorf("slice %q has non-positive duration", e.Name)
		}
	}
	want := map[string]int{
		"process_name/M": 2,
		"queued/X":       1, // run-b's read is never scheduled: no queued slice
		"caq/X":          1,
		"dram/X":         1,
		"pb-hit/X":       2, // run-a entry hit + run-b enqueue->complete
		"merge/X":        1,
		"prefetch/X":     1,
		"mc-queues/C":    2, // third sample deduped
		"slh-epoch-1/i":  1,
		"policy->2/i":    1, // second policy event unchanged
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s count = %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	if !pids[0] || !pids[1] {
		t.Errorf("expected two process groups, got pids %v", pids)
	}
}

func TestTraceDropsBeforeStartProcess(t *testing.T) {
	b := NewTraceBuilder()
	b.Emit(Event{Kind: KindMCEnqueue, ID: 1, Cycle: 10})
	if b.Len() != 0 {
		t.Fatalf("builder accumulated %d events before StartProcess", b.Len())
	}
}
