package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"asdsim/internal/mem"
)

// TraceBuilder is a Sink that reconstructs command lifetimes from the
// MC probe stream and renders them as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto (ui.perfetto.dev) open
// directly.
//
// Each demand Read becomes up to three "X" (complete) slices on its
// originating thread's track: "queued" (enqueue to reorder-queue
// exit), "caq" (CAQ residency) and "dram" (issue to data return).
// Reads satisfied without DRAM render as a single "pb-hit" or "merge"
// slice. Memory-side prefetches get their own track per depth. Queue
// occupancy becomes Perfetto counter tracks; SLH epoch rollovers and
// Adaptive Scheduling policy changes appear as instant events.
//
// Timestamps are microseconds of simulated time (ts = cycle / CPU GHz)
// with sub-cycle precision carried in the fractional part.
//
// Call StartProcess before each run publishes its first event; every
// later event lands in that process until the next call. One builder
// may thus accumulate several serial runs (e.g. asdsim's mode sweep)
// into one trace for side-by-side viewing. A builder must not be
// shared by concurrently running simulations.
type TraceBuilder struct {
	events []traceEvent
	pid    int
	open   map[uint64]*cmdLife

	// lastQueues dedups counter samples: a counter event is written
	// only when a depth changes.
	lastQueues [3]int64
	haveQueues bool
}

// cmdLife is one demand Read's reconstructed lifetime.
type cmdLife struct {
	thread    int32
	line      mem.Line
	enqueue   uint64
	schedule  uint64
	issue     uint64
	scheduled bool
	issued    bool
}

// traceEvent is one Chrome trace-event object. Fields follow the
// Trace Event Format spec; optional ones are omitted when zero.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceBuilder returns an empty builder; call StartProcess before
// emitting events into it.
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{pid: -1}
}

// cyclesPerMicro converts CPU cycles to trace microseconds.
const cyclesPerMicro = float64(mem.CPUHz) / 1e6

func ts(cycle uint64) float64 { return float64(cycle) / cyclesPerMicro }

// Track ids: threads occupy 0..63, prefetch tracks 64+depth, counters
// and instants sit on dedicated tracks.
const (
	tidPrefetchBase = 64
	tidMeta         = 99
)

// StartProcess begins a new process group (one simulation run) named
// name. Subsequent events land in it until the next call.
func (t *TraceBuilder) StartProcess(name string) {
	t.pid++
	t.open = make(map[uint64]*cmdLife)
	t.haveQueues = false
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", Pid: t.pid,
		Args: map[string]any{"name": name},
	})
}

// Emit implements Sink.
//
//asd:hotpath
func (t *TraceBuilder) Emit(e Event) {
	if t.pid < 0 {
		// No StartProcess yet: drop rather than corrupt the trace.
		return
	}
	//asd:exhaustive
	switch e.Kind {
	case KindMCEnqueue:
		if e.V1 == 0 { // lifetimes are tracked for Reads only
			t.open[e.ID] = &cmdLife{thread: e.Thread, line: e.Line, enqueue: e.Cycle}
		}
	case KindMCSchedule:
		if c := t.open[e.ID]; c != nil {
			c.schedule = e.Cycle
			c.scheduled = true
		}
	case KindMCIssue:
		if c := t.open[e.ID]; c != nil {
			c.issue = e.Cycle
			c.issued = true
		}
	case KindMCComplete:
		c := t.open[e.ID]
		if c == nil {
			return
		}
		delete(t.open, e.ID)
		args := map[string]any{"line": uint64(c.line), "id": e.ID}
		switch {
		case c.issued:
			t.slice("queued", "mc", c.enqueue, c.schedule, int(c.thread), args)
			t.slice("caq", "mc", c.schedule, c.issue, int(c.thread), args)
			t.slice("dram", "dram", c.issue, e.Cycle, int(c.thread), args)
		case c.scheduled:
			// Satisfied at the CAQ head (late PB check).
			t.slice("queued", "mc", c.enqueue, c.schedule, int(c.thread), args)
			t.slice("pb-hit", "pb", c.schedule, e.Cycle, int(c.thread), args)
		default:
			// Entry PB hit or merge onto an in-flight prefetch.
			name := "pb-hit"
			if e.V2 == 1 {
				name = "merge"
			}
			t.slice(name, "pb", c.enqueue, e.Cycle, int(c.thread), args)
		}
	case KindMCPFIssue:
		// Prefetch DRAM occupancy: one slice per issued prefetch on the
		// depth's track; V2 carries the completion cycle.
		t.slice("prefetch", "pf", e.Cycle, uint64(e.V2), tidPrefetchBase+int(e.V1),
			map[string]any{"line": uint64(e.Line), "depth": e.V1})
	case KindMCQueues:
		q := [3]int64{e.V1, e.V2, e.V3}
		if t.haveQueues && q == t.lastQueues {
			return
		}
		t.lastQueues, t.haveQueues = q, true
		t.events = append(t.events, traceEvent{
			Name: "mc-queues", Cat: "mc", Ph: "C", Ts: ts(e.Cycle), Pid: t.pid, Tid: 0,
			Args: map[string]any{"reorder": e.V1, "caq": e.V2, "lpq": e.V3},
		})
	case KindASDEpochRoll:
		t.instant(fmt.Sprintf("slh-epoch-%d", e.V1), "asd", e.Cycle)
	case KindSchedPolicy:
		if e.V1 != e.V3 {
			t.instant(fmt.Sprintf("policy->%d", e.V1), "sched", e.Cycle)
		}
	case KindMCPBHit, KindMCBankConflict, KindMCPFNominate, KindMCPFDrop,
		KindMCPFLate, KindMCPFInstall, KindMCPFWasted, KindDRAMAccess,
		KindDRAMRefresh, KindCacheAccess, KindCPUStall, KindASDPrefetchDecision:
		// Too fine-grained for a per-command timeline: PB hits and
		// merges already render from the MCComplete lifetime, per-access
		// DRAM/cache/stall detail belongs to the sampler, and nominate/
		// drop/install/wasted bookkeeping belongs to DepthStats. Seen
		// and intentionally ignored.
	}
}

// slice appends one complete ("X") event; zero-length slices are given
// a minimal duration so Perfetto keeps them selectable.
func (t *TraceBuilder) slice(name, cat string, from, to uint64, tid int, args map[string]any) {
	if to < from {
		to = from
	}
	d := ts(to) - ts(from)
	if d <= 0 {
		d = 0.001
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", Ts: ts(from), Dur: &d, Pid: t.pid, Tid: tid, Args: args,
	})
}

// instant appends one instant ("i") event on the meta track.
func (t *TraceBuilder) instant(name, cat string, cycle uint64) {
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", Ts: ts(cycle), Pid: t.pid, Tid: tidMeta, S: "t",
	})
}

// Len returns the number of trace events accumulated so far.
func (t *TraceBuilder) Len() int { return len(t.events) }

// NameThread attaches a thread_name metadata record to track tid of the
// current process, so viewers label the track instead of showing a bare
// number.
func (t *TraceBuilder) NameThread(tid int, name string) {
	if t.pid < 0 {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", Pid: t.pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// AddSlice appends one complete ("X") slice with explicit microsecond
// timestamps, for callers — such as obs/span — whose events live in
// wall- or injected-clock time rather than the simulated cycle domain.
// Zero-length slices get a minimal duration so they stay selectable.
func (t *TraceBuilder) AddSlice(name, cat string, tsMicro, durMicro float64, tid int, args map[string]any) {
	if t.pid < 0 {
		return
	}
	if durMicro <= 0 {
		durMicro = 0.001
	}
	d := durMicro
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", Ts: tsMicro, Dur: &d, Pid: t.pid, Tid: tid, Args: args,
	})
}

// AddInstant appends one instant ("i") event at an explicit microsecond
// timestamp on track tid.
func (t *TraceBuilder) AddInstant(name, cat string, tsMicro float64, tid int, args map[string]any) {
	if t.pid < 0 {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", Ts: tsMicro, Pid: t.pid, Tid: tid, S: "t", Args: args,
	})
}

// Merge appends every event from other into t, renumbering other's
// process ids to follow t's so the two never collide. other should be
// discarded afterwards.
func (t *TraceBuilder) Merge(other *TraceBuilder) {
	if other == nil || len(other.events) == 0 {
		return
	}
	base := t.pid + 1
	maxPid := t.pid
	for _, e := range other.events {
		e.Pid += base
		if e.Pid > maxPid {
			maxPid = e.Pid
		}
		t.events = append(t.events, e)
	}
	t.pid = maxPid
}

// WriteJSON writes the accumulated trace as a JSON object in the Chrome
// trace-event format, events sorted by timestamp as the viewers
// prefer. The builder remains usable (more runs may be appended).
func (t *TraceBuilder) WriteJSON(w io.Writer) error {
	evs := make([]traceEvent, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Pid != evs[j].Pid {
			return evs[i].Pid < evs[j].Pid
		}
		// Metadata first within a process, then by time.
		if m := evs[i].Ph == "M"; m != (evs[j].Ph == "M") {
			return m
		}
		return evs[i].Ts < evs[j].Ts
	})
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{evs, "ns"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
