package flightrec

import "fmt"

// Detector inspects each closed window and reports whether it trips.
// Detectors may keep state across windows (consecutive-window arming);
// after the first trip a detector is disarmed for the rest of the run.
type Detector interface {
	// Name is the detector's stable identifier, used in triggers,
	// bundle filenames and job status.
	Name() string
	// Check inspects one closed window; when it trips it returns a
	// human-readable detail line and true.
	Check(w *Window) (detail string, fired bool)
}

// DefaultDetectors returns the standard detector set. caqCap is the
// Centralized Arbiter Queue capacity used by the saturation detector;
// 0 takes the Power5+ depth of 3.
func DefaultDetectors(caqCap int) []Detector {
	if caqCap <= 0 {
		caqCap = 3
	}
	return []Detector{
		&CAQSaturation{Capacity: caqCap, MeanFrac: 0.9, Consecutive: 3},
		&LatePrefetchSpike{Ratio: 0.25, MinUseful: 32},
		&BankConflictStorm{MinConflicts: 32, IssueFrac: 0.25},
		&PrefetchWasteSpike{Ratio: 0.75, MinIssued: 64},
	}
}

// CAQSaturation trips when the CAQ's mean occupancy stays at or above
// MeanFrac of its capacity for Consecutive closed windows: the arbiter
// queue has become the bottleneck and demand traffic is backing up
// into the reorder queues.
type CAQSaturation struct {
	Capacity    int
	MeanFrac    float64
	Consecutive int

	run int
}

// Name implements Detector.
func (d *CAQSaturation) Name() string { return "caq-saturation" }

// Check implements Detector.
func (d *CAQSaturation) Check(w *Window) (string, bool) {
	if w.QueueObs == 0 || w.CAQMean < d.MeanFrac*float64(d.Capacity) {
		d.run = 0
		return "", false
	}
	d.run++
	if d.run < d.Consecutive {
		return "", false
	}
	return fmt.Sprintf("CAQ mean occupancy %.2f/%d (>= %.0f%%) for %d consecutive windows",
		w.CAQMean, d.Capacity, 100*d.MeanFrac, d.run), true
}

// LatePrefetchSpike trips when the fraction of useful prefetches that
// arrived late — demand reads merged onto an in-flight prefetch rather
// than hitting the Prefetch Buffer — reaches Ratio within one window
// with at least MinUseful useful prefetches. A spike here means the
// prefetcher is nominating the right lines too late, typically right
// after an SLH epoch roll repoints the likelihood tables.
type LatePrefetchSpike struct {
	Ratio     float64
	MinUseful uint64
}

// Name implements Detector.
func (d *LatePrefetchSpike) Name() string { return "late-prefetch-spike" }

// Check implements Detector.
func (d *LatePrefetchSpike) Check(w *Window) (string, bool) {
	useful := w.PFTimely + w.PFLate
	if useful < d.MinUseful {
		return "", false
	}
	ratio := float64(w.PFLate) / float64(useful)
	if ratio < d.Ratio {
		return "", false
	}
	return fmt.Sprintf("late/(timely+late) = %.2f (%d late, %d timely) in one window",
		ratio, w.PFLate, w.PFTimely), true
}

// BankConflictStorm trips when a window sees at least MinConflicts
// regular commands blocked behind in-flight prefetches holding their
// bank, and those conflicts amount to at least IssueFrac of the
// window's issues: prefetch traffic is actively starving demand.
type BankConflictStorm struct {
	MinConflicts uint64
	IssueFrac    float64
}

// Name implements Detector.
func (d *BankConflictStorm) Name() string { return "bank-conflict-storm" }

// Check implements Detector.
func (d *BankConflictStorm) Check(w *Window) (string, bool) {
	if w.BankConflicts < d.MinConflicts {
		return "", false
	}
	if float64(w.BankConflicts) < d.IssueFrac*float64(w.Issues) {
		return "", false
	}
	return fmt.Sprintf("%d bank conflicts against %d issues in one window",
		w.BankConflicts, w.Issues), true
}

// PrefetchWasteSpike trips when at least Ratio of a window's issued
// prefetches are discarded unused (with MinIssued issued): the engine
// is burning DRAM bandwidth on lines nobody reads.
type PrefetchWasteSpike struct {
	Ratio     float64
	MinIssued uint64
}

// Name implements Detector.
func (d *PrefetchWasteSpike) Name() string { return "prefetch-waste-spike" }

// Check implements Detector.
func (d *PrefetchWasteSpike) Check(w *Window) (string, bool) {
	if w.PFIssued < d.MinIssued {
		return "", false
	}
	ratio := float64(w.PFWasted) / float64(w.PFIssued)
	if ratio < d.Ratio {
		return "", false
	}
	return fmt.Sprintf("%d of %d issued prefetches wasted (%.0f%%) in one window",
		w.PFWasted, w.PFIssued, 100*ratio), true
}
