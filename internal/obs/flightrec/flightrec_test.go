package flightrec_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"asdsim/internal/obs"
	"asdsim/internal/obs/flightrec"
	"asdsim/internal/sim"
)

// emitWindow pushes one window's worth of synthetic prefetch traffic:
// timely PB hits, late merges, plus a queue gauge sample.
func emitWindow(r *flightrec.Recorder, start uint64, timely, late int, caq int64) {
	r.Emit(obs.Event{Kind: obs.KindMCQueues, Cycle: start, V1: 0, V2: caq, V3: 0})
	for i := 0; i < timely; i++ {
		r.Emit(obs.Event{Kind: obs.KindMCPBHit, Cycle: start + uint64(i), V2: 1})
	}
	for i := 0; i < late; i++ {
		r.Emit(obs.Event{Kind: obs.KindMCPFLate, Cycle: start + uint64(i), V1: 1})
	}
}

func TestLateSpikeTriggersOnce(t *testing.T) {
	rec := flightrec.New(flightrec.Options{
		Label:        "synthetic",
		WindowCycles: 1000,
		Detectors:    []flightrec.Detector{&flightrec.LatePrefetchSpike{Ratio: 0.5, MinUseful: 10}},
	})
	emitWindow(rec, 0, 20, 2, 1)    // healthy: ratio 0.09
	emitWindow(rec, 1000, 5, 15, 1) // spike: ratio 0.75
	emitWindow(rec, 2000, 5, 15, 1) // would spike again, but disarmed
	rec.Finish()

	trs := rec.Triggers()
	if len(trs) != 1 {
		t.Fatalf("got %d triggers, want 1: %+v", len(trs), trs)
	}
	if trs[0].Detector != "late-prefetch-spike" || trs[0].Window != 1 {
		t.Errorf("trigger = %+v, want late-prefetch-spike at window 1", trs[0])
	}
	if len(rec.Bundles()) != 1 {
		t.Fatalf("got %d bundles, want 1", len(rec.Bundles()))
	}
	b := rec.Bundles()[0]
	if got := b.Windows[len(b.Windows)-1]; got.Index != 1 || got.PFLate != 15 || got.PFTimely != 5 {
		t.Errorf("trigger window = %+v, want index 1 with 15 late / 5 timely", got)
	}
}

func TestCAQSaturationNeedsConsecutiveWindows(t *testing.T) {
	det := &flightrec.CAQSaturation{Capacity: 3, MeanFrac: 0.9, Consecutive: 3}
	rec := flightrec.New(flightrec.Options{WindowCycles: 100, Detectors: []flightrec.Detector{det}})
	sat := func(start uint64, occ int64) {
		for i := uint64(0); i < 4; i++ {
			rec.Emit(obs.Event{Kind: obs.KindMCQueues, Cycle: start + i, V2: occ})
		}
	}
	sat(0, 3)
	sat(100, 3)
	sat(200, 1) // breaks the run
	sat(300, 3)
	sat(400, 3)
	if rec.Emit(obs.Event{Kind: obs.KindMCEnqueue, Cycle: 500}); len(rec.Triggers()) != 0 {
		t.Fatalf("saturation fired without 3 consecutive windows: %+v", rec.Triggers())
	}
	sat(500, 3)
	rec.Finish()
	trs := rec.Triggers()
	if len(trs) != 1 || trs[0].Detector != "caq-saturation" || trs[0].Window != 5 {
		t.Fatalf("triggers = %+v, want caq-saturation at window 5", trs)
	}
}

func TestBankConflictAndWasteDetectors(t *testing.T) {
	storm := &flightrec.BankConflictStorm{MinConflicts: 4, IssueFrac: 0.5}
	waste := &flightrec.PrefetchWasteSpike{Ratio: 0.5, MinIssued: 4}
	rec := flightrec.New(flightrec.Options{WindowCycles: 100,
		Detectors: []flightrec.Detector{storm, waste}})
	for i := uint64(0); i < 5; i++ {
		rec.Emit(obs.Event{Kind: obs.KindMCBankConflict, Cycle: i})
		rec.Emit(obs.Event{Kind: obs.KindMCIssue, Cycle: i})
		rec.Emit(obs.Event{Kind: obs.KindMCPFIssue, Cycle: i, V1: 1})
		rec.Emit(obs.Event{Kind: obs.KindMCPFWasted, Cycle: i, V1: 1})
	}
	rec.Finish()
	names := map[string]bool{}
	for _, tr := range rec.Triggers() {
		names[tr.Detector] = true
	}
	if !names["bank-conflict-storm"] || !names["prefetch-waste-spike"] {
		t.Errorf("triggers = %+v, want storm and waste", rec.Triggers())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec := flightrec.New(flightrec.Options{
		RingSize: 8, WindowCycles: 1_000_000,
		Detectors: []flightrec.Detector{&flightrec.LatePrefetchSpike{Ratio: 0.01, MinUseful: 1}},
	})
	for i := uint64(0); i < 100; i++ {
		rec.Emit(obs.Event{Kind: obs.KindMCEnqueue, Cycle: i, ID: i})
	}
	rec.Emit(obs.Event{Kind: obs.KindMCPFLate, Cycle: 100, V1: 1})
	rec.Emit(obs.Event{Kind: obs.KindMCPBHit, Cycle: 101, V2: 1})
	rec.Finish()
	if len(rec.Bundles()) != 1 {
		t.Fatalf("got %d bundles, want 1", len(rec.Bundles()))
	}
	b := rec.Bundles()[0]
	if len(b.Events) != 8 {
		t.Fatalf("ring snapshot has %d events, want 8", len(b.Events))
	}
	if b.EventsSeen != 102 {
		t.Errorf("EventsSeen = %d, want 102", b.EventsSeen)
	}
	// Newest-last ordering with the oldest aged out.
	if b.Events[7].Kind != "mc-pb-hit" || b.Events[6].Kind != "mc-pf-late" {
		t.Errorf("tail = %s,%s, want mc-pf-late,mc-pb-hit", b.Events[6].Kind, b.Events[7].Kind)
	}
	if b.Events[0].Cycle != 94 {
		t.Errorf("oldest retained cycle = %d, want 94", b.Events[0].Cycle)
	}
}

func TestBundleJSONAndReportRoundTrip(t *testing.T) {
	rec := flightrec.New(flightrec.Options{
		Label: "bench/MS", WindowCycles: 1000, Config: json.RawMessage(`{"mode":2}`),
		Detectors: []flightrec.Detector{&flightrec.LatePrefetchSpike{Ratio: 0.5, MinUseful: 4}},
	})
	rec.Emit(obs.Event{Kind: obs.KindASDPrefetchDecision, Cycle: 10, V1: 3, V2: 1})
	rec.Emit(obs.Event{Kind: obs.KindMCPFNominate, Cycle: 11, V1: 1})
	emitWindow(rec, 20, 1, 9, 2)
	rec.Finish()
	if len(rec.Bundles()) != 1 {
		t.Fatalf("want 1 bundle, got %d", len(rec.Bundles()))
	}
	b := rec.Bundles()[0]

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back flightrec.Bundle
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("bundle JSON does not round-trip: %v", err)
	}
	if back.Label != "bench/MS" || back.Trigger.Detector != "late-prefetch-spike" {
		t.Errorf("round-tripped bundle = %+v", back.Trigger)
	}
	if back.SLH[2] != 1 {
		t.Errorf("SLH bucket 3 = %d, want 1", back.SLH[2])
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, back.Config); err != nil || compact.String() != `{"mode":2}` {
		t.Errorf("config not embedded: %s (%v)", back.Config, err)
	}

	var rep bytes.Buffer
	if err := b.WriteReport(&rep); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	for _, want := range []string{
		"flight recorder: bench/MS — late-prefetch-spike",
		"recent windows", "stream-length histogram", "event ring:",
	} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}

// TestRealRunLateSpikeAtEpochRoll attaches the recorder to a real
// GemsFDTD MS run and checks the shipped default detectors catch the
// late-prefetch spike that accompanies the first SLH epoch roll, and
// that recording does not perturb the simulated outcome.
func TestRealRunLateSpikeAtEpochRoll(t *testing.T) {
	const budget = 400_000
	cfg := sim.Default(sim.MS, budget)
	base, err := sim.Run("GemsFDTD", cfg)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	rec := flightrec.New(flightrec.Options{
		Label:     "GemsFDTD/MS",
		Detectors: flightrec.DefaultDetectors(cfg.MC.CAQCap),
	})
	cfg.Obs = obs.NewBus(rec)
	res, err := sim.Run("GemsFDTD", cfg)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	rec.Finish()

	if res.Cycles != base.Cycles || res.Instructions != base.Instructions {
		t.Errorf("recording perturbed the run: cycles %d vs %d", res.Cycles, base.Cycles)
	}
	var late *flightrec.Trigger
	for i := range rec.Triggers() {
		if rec.Triggers()[i].Detector == "late-prefetch-spike" {
			late = &rec.Triggers()[i]
		}
	}
	if late == nil {
		t.Fatalf("no late-prefetch-spike on GemsFDTD/MS; triggers = %+v", rec.Triggers())
	}
	if rec.EventsSeen() == 0 {
		t.Errorf("recorder saw no events")
	}
	if rec.Depths().MaxDepthSeen() == 0 {
		t.Errorf("recorder accumulated no depth stats")
	}
}
