package flightrec

import (
	"encoding/json"
	"fmt"
	"io"

	"asdsim/internal/obs"
)

// EventRecord is one ring event in wire form, with the kind spelled
// out so bundles read without the source handy.
type EventRecord struct {
	Kind   string `json:"kind"`
	Cycle  uint64 `json:"cycle"`
	Thread int32  `json:"thread,omitempty"`
	ID     uint64 `json:"id,omitempty"`
	Line   uint64 `json:"line,omitempty"`
	V1     int64  `json:"v1,omitempty"`
	V2     int64  `json:"v2,omitempty"`
	V3     int64  `json:"v3,omitempty"`
}

// DepthRow is one prefetch depth's efficiency counts.
type DepthRow struct {
	Depth     string `json:"depth"`
	Nominated uint64 `json:"nominated"`
	Issued    uint64 `json:"issued"`
	Timely    uint64 `json:"timely"`
	Late      uint64 `json:"late"`
	Wasted    uint64 `json:"wasted"`
	Dropped   uint64 `json:"dropped"`
}

// Bundle is a self-contained triage artifact captured at trigger time:
// everything needed to reason about the anomaly without re-running the
// simulation.
type Bundle struct {
	Label string `json:"label"`
	// Key, Node and TraceID carry the farm job identity, the executing
	// node, and the distributed trace this run belonged to (when the
	// run was cluster-executed); empty for standalone runs.
	Key     string `json:"key,omitempty"`
	Node    string `json:"node,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Epoch is the SLH epoch index (completed rolls) at capture time,
	// aligning the bundle with the run's provenance epoch timeline; 0
	// when no epoch had rolled (or no memory-side engine ran).
	Epoch   uint64  `json:"epoch,omitempty"`
	Trigger Trigger `json:"trigger"`
	// Windows is the recent closed-window history, oldest first; the
	// last entry is the window that tripped the detector.
	Windows []Window `json:"windows"`
	// SLH is the decision-time stream-length histogram (bucket i holds
	// streams of length i+1; the last bucket is open-ended), the
	// recorder's in-flight approximation of the paper's SLH.
	SLH []uint64 `json:"slh_buckets"`
	// Depths is the per-depth prefetch efficiency table at capture.
	Depths []DepthRow `json:"depth_table"`
	// Events is the ring's retained probe events, oldest first.
	Events []EventRecord `json:"events"`
	// EventsSeen counts all ring writes before capture; when it
	// exceeds len(Events) the ring has wrapped.
	EventsSeen uint64 `json:"events_seen"`
	// Config is the run's serialized configuration, when provided.
	Config json.RawMessage `json:"config,omitempty"`
}

// capture snapshots the recorder's state into a bundle for trigger t.
func (r *Recorder) capture(t Trigger) *Bundle {
	evs := r.ringSnapshot()
	recs := make([]EventRecord, len(evs))
	for i, e := range evs {
		recs[i] = EventRecord{
			Kind: e.Kind.String(), Cycle: e.Cycle, Thread: e.Thread,
			ID: e.ID, Line: uint64(e.Line), V1: e.V1, V2: e.V2, V3: e.V3,
		}
	}
	slh := make([]uint64, slhBuckets)
	for v := 1; v <= slhBuckets; v++ {
		slh[v-1] = r.slh.Count(v)
	}
	return &Bundle{
		Label:      r.opts.Label,
		Key:        r.opts.Key,
		Node:       r.opts.Node,
		TraceID:    r.opts.TraceID,
		Epoch:      r.lastEpoch,
		Trigger:    t,
		Windows:    append([]Window(nil), r.recent...),
		SLH:        slh,
		Depths:     depthRows(&r.depths),
		Events:     recs,
		EventsSeen: r.head,
		Config:     r.opts.Config,
	}
}

// depthRows flattens a DepthStats into the bundle's table form,
// covering every depth with any activity.
func depthRows(d *obs.DepthStats) []DepthRow {
	rows := make([]DepthRow, 0, d.MaxDepthSeen())
	for i := 1; i <= d.MaxDepthSeen(); i++ {
		label := fmt.Sprint(i)
		if i == obs.MaxTrackedDepth {
			label += "+"
		}
		rows = append(rows, DepthRow{
			Depth: label, Nominated: d.Nominated[i], Issued: d.Issued[i],
			Timely: d.Timely[i], Late: d.Late[i], Wasted: d.Wasted[i],
			Dropped: d.Dropped[i],
		})
	}
	return rows
}

// WriteJSON writes the bundle as indented JSON.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// reportTailEvents bounds the per-event lines in the text report; the
// full ring lives in the JSON bundle.
const reportTailEvents = 24

// WriteReport renders the human-readable triage report: the trigger,
// the recent window table, the SLH, the depth table, and a tail of the
// event ring.
func (b *Bundle) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "flight recorder: %s — %s at window %d (cycle %d)\n",
		b.Label, b.Trigger.Detector, b.Trigger.Window, b.Trigger.Cycle)
	fmt.Fprintf(w, "  %s\n", b.Trigger.Detail)
	if b.Key != "" || b.Node != "" || b.TraceID != "" {
		fmt.Fprintf(w, "  job=%s node=%s trace=%s\n", b.Key, b.Node, b.TraceID)
	}
	if b.Epoch > 0 {
		fmt.Fprintf(w, "  slh epoch at capture: %d\n", b.Epoch)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "recent windows (oldest first; * marks the trigger window):\n")
	fmt.Fprintf(w, "  %-8s %8s %7s %7s %7s %8s %7s %7s %6s %7s %7s %6s\n",
		"window", "caqMean", "caqMax", "issues", "compl", "bankConf",
		"pfIss", "timely", "late", "install", "wasted", "epoch")
	for _, win := range b.Windows {
		mark := " "
		if win.Index == b.Trigger.Window {
			mark = "*"
		}
		fmt.Fprintf(w, " %s%-8d %8.3f %7d %7d %7d %8d %7d %7d %6d %7d %7d %6d\n",
			mark, win.Index, win.CAQMean, win.CAQMax, win.Issues, win.Completions,
			win.BankConflicts, win.PFIssued, win.PFTimely, win.PFLate,
			win.PFInstalled, win.PFWasted, win.EpochRolls)
	}

	var slhTotal uint64
	for _, n := range b.SLH {
		slhTotal += n
	}
	fmt.Fprintf(w, "\nstream-length histogram at capture (%d decisions):\n  ", slhTotal)
	for i, n := range b.SLH {
		if n == 0 {
			continue
		}
		label := fmt.Sprint(i + 1)
		if i == len(b.SLH)-1 {
			label += "+"
		}
		fmt.Fprintf(w, "%s:%d ", label, n)
	}
	fmt.Fprintln(w)

	if len(b.Depths) > 0 {
		fmt.Fprintf(w, "\nper-depth prefetch table:\n")
		fmt.Fprintf(w, "  %-6s %10s %10s %10s %10s %10s %10s\n",
			"depth", "nominated", "issued", "timely", "late", "wasted", "dropped")
		for _, row := range b.Depths {
			fmt.Fprintf(w, "  %-6s %10d %10d %10d %10d %10d %10d\n",
				row.Depth, row.Nominated, row.Issued, row.Timely, row.Late,
				row.Wasted, row.Dropped)
		}
	}

	counts := map[string]int{}
	for _, e := range b.Events {
		counts[e.Kind]++
	}
	fmt.Fprintf(w, "\nevent ring: %d retained of %d seen; by kind:", len(b.Events), b.EventsSeen)
	for k := obs.Kind(0); int(k) < obs.NumKinds; k++ {
		if n := counts[k.String()]; n > 0 {
			fmt.Fprintf(w, " %s=%d", k, n)
		}
	}
	fmt.Fprintln(w)

	tail := b.Events
	if len(tail) > reportTailEvents {
		tail = tail[len(tail)-reportTailEvents:]
	}
	fmt.Fprintf(w, "last %d events (newest last):\n", len(tail))
	for _, e := range tail {
		fmt.Fprintf(w, "  cycle=%-10d %-16s thread=%d line=%#x v1=%d v2=%d v3=%d\n",
			e.Cycle, e.Kind, e.Thread, e.Line, e.V1, e.V2, e.V3)
	}
	if len(b.Config) > 0 {
		fmt.Fprintf(w, "\nrun config: embedded in the JSON bundle (%d bytes)\n", len(b.Config))
	}
	return nil
}
