package flightrec_test

import (
	"strings"
	"testing"

	"asdsim/internal/obs"
	"asdsim/internal/obs/flightrec"
)

// TestEveryKindFlowsThroughTheChain is the runtime counterpart of the
// exhaustive-events vet pass: every declared probe kind is pushed
// through a bus fanning out to the Sampler, the Chrome-trace exporter,
// the per-depth stats, a Counter and the flight recorder, and every
// sink must accept every kind without panicking or losing events. A
// kind added to obs without wiring fails the vet gate first; this test
// catches a sink whose handling is wired but broken.
func TestEveryKindFlowsThroughTheChain(t *testing.T) {
	sampler := obs.NewSampler(0)
	tb := obs.NewTraceBuilder()
	tb.StartProcess("allkinds")
	var depths obs.DepthStats
	var counter obs.Counter
	rec := flightrec.New(flightrec.Options{Label: "allkinds"})
	bus := obs.NewBus(sampler, tb, &depths, &counter, rec)

	if !bus.Enabled() {
		t.Fatal("bus with sinks attached reports disabled")
	}
	for k := 0; k < obs.NumKinds; k++ {
		e := obs.Event{
			Kind:  obs.Kind(k),
			Cycle: uint64(k+1) * 1000,
			ID:    uint64(k),
			V1:    1, V2: 2, V3: 3,
		}
		bus.Emit(e)
	}
	rec.Finish()

	if got := counter.Total(); got != uint64(obs.NumKinds) {
		t.Errorf("counter saw %d events, want %d", got, obs.NumKinds)
	}
	for k := 0; k < obs.NumKinds; k++ {
		if counter.Count(obs.Kind(k)) != 1 {
			t.Errorf("kind %d: counter %d, want 1", k, counter.Count(obs.Kind(k)))
		}
	}
}

// TestEveryKindHasAName locks Kind.String to the kindNames table: a
// name for every kind, no placeholder fallbacks, no duplicates.
func TestEveryKindHasAName(t *testing.T) {
	seen := map[string]obs.Kind{}
	for k := 0; k < obs.NumKinds; k++ {
		name := obs.Kind(k).String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("kind %d has no name: %q", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = obs.Kind(k)
	}
	if got := obs.Kind(obs.NumKinds).String(); !strings.HasPrefix(got, "Kind(") {
		t.Errorf("out-of-range kind renders %q, want the Kind(n) fallback", got)
	}
}
