// Package flightrec is the simulator's always-on flight recorder: a
// fixed-size ring of probe-bus events plus a set of pluggable anomaly
// detectors evaluated over fixed-width cycle windows. While a run is
// healthy the recorder costs one ring write per retained event and a
// handful of counter updates; when a detector trips it captures a
// self-contained triage bundle — the last-N events, the recent window
// series, a decision-time stream-length histogram, the per-depth
// prefetch table and the run's configuration — so a pathological run
// can be diagnosed without re-running it under a full trace.
//
// The recorder is an obs.Sink; it reuses the bus's nil fast path, so a
// run without a recorder attached pays only the usual one-branch probe
// guard (~0% overhead). A Recorder belongs to one run and is not safe
// for concurrent use.
package flightrec

import (
	"encoding/json"

	"asdsim/internal/obs"
	"asdsim/internal/stats"
)

// slhBuckets sizes the decision-time stream-length histogram (matches
// the paper's n_s = 16 SLH width).
const slhBuckets = 16

// recentWindows bounds the closed-window history kept for bundles.
const recentWindows = 64

// Options configures a Recorder. The zero value is usable: every field
// defaults sensibly.
type Options struct {
	// RingSize is the number of probe events retained, rounded up to a
	// power of two; default 4096.
	RingSize int
	// WindowCycles is the detector evaluation window width in CPU
	// cycles; default obs.DefaultSampleInterval.
	WindowCycles uint64
	// MaxBundles bounds captured triage bundles; default 4.
	MaxBundles int
	// Detectors are the anomaly detectors to arm; nil means
	// DefaultDetectors(0). Each detector fires at most once per run.
	Detectors []Detector
	// Label names the run in bundles and reports ("GemsFDTD/MS").
	Label string
	// Config, when non-nil, is the run's serialized configuration,
	// embedded verbatim in every bundle.
	Config json.RawMessage
	// Key, Node and TraceID tag bundles with the farm job identity
	// (spec key), the executing node's name, and the distributed trace
	// the run belongs to, so a triage bundle pulled off a cluster
	// worker correlates with the batch trace. All optional.
	Key     string
	Node    string
	TraceID string
}

// Window is one closed detector-evaluation window's aggregate of the
// event stream.
type Window struct {
	Index uint64 `json:"window"`
	Start uint64 `json:"start_cycle"`

	// Queue occupancy from the per-MC-cycle gauge probe.
	QueueObs uint64  `json:"queue_obs"`
	CAQMean  float64 `json:"caq_mean"`
	CAQMax   int64   `json:"caq_max"`

	Issues        uint64 `json:"issues"`
	Completions   uint64 `json:"completions"`
	BankConflicts uint64 `json:"bank_conflicts"`

	PFIssued    uint64 `json:"pf_issued"`
	PFTimely    uint64 `json:"pf_timely"`
	PFLate      uint64 `json:"pf_late"`
	PFInstalled uint64 `json:"pf_installed"`
	PFWasted    uint64 `json:"pf_wasted"`

	EpochRolls uint64 `json:"epoch_rolls"`

	caqSum uint64
}

// Trigger records one detector firing.
type Trigger struct {
	Detector string `json:"detector"`
	Detail   string `json:"detail"`
	// Window and Cycle locate the offending window (Cycle is its start).
	Window uint64 `json:"window"`
	Cycle  uint64 `json:"cycle"`
}

// Recorder implements obs.Sink. Attach it to a run's bus, then read
// Triggers/Bundles after calling Finish.
type Recorder struct {
	opts Options

	ring []obs.Event
	mask uint64
	head uint64 // total ring writes; ring[(head-1)&mask] is newest

	cur     Window
	winEnd  uint64 // cur.Start + WindowCycles, cached for the hot path
	started bool
	recent  []Window

	slh    *stats.Histogram
	depths obs.DepthStats

	// lastEpoch is the most recent completed SLH epoch index seen on the
	// bus (KindASDEpochRoll), stamped into bundles so a triage artifact
	// aligns with the provenance stream's epoch timeline.
	lastEpoch uint64

	armed    []Detector // fired detectors are nilled out
	triggers []Trigger
	bundles  []*Bundle
}

// New returns a recorder with the given options, detectors armed.
func New(opts Options) *Recorder {
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	size := 1
	for size < opts.RingSize {
		size <<= 1
	}
	if opts.WindowCycles == 0 {
		opts.WindowCycles = obs.DefaultSampleInterval
	}
	if opts.MaxBundles <= 0 {
		opts.MaxBundles = 4
	}
	if opts.Detectors == nil {
		opts.Detectors = DefaultDetectors(0)
	}
	return &Recorder{
		opts:  opts,
		ring:  make([]obs.Event, size),
		mask:  uint64(size - 1),
		slh:   stats.NewHistogram(slhBuckets),
		armed: append([]Detector(nil), opts.Detectors...),
	}
}

// Emit implements obs.Sink. The per-event cost is one switch, a few
// counter updates, and (for forensically interesting kinds) one ring
// write; the highest-frequency gauge probes are aggregated but not
// retained, keeping a recorded run's overhead small.
//
//asd:hotpath
func (r *Recorder) Emit(e obs.Event) {
	if !r.started {
		r.started = true
		idx := e.Cycle / r.opts.WindowCycles
		r.cur = Window{Index: idx, Start: idx * r.opts.WindowCycles}
		r.winEnd = r.cur.Start + r.opts.WindowCycles
	} else if e.Cycle >= r.winEnd {
		r.roll(e.Cycle)
	}
	// The per-MC-cycle queue gauge is ~half of all traffic: fast-path it
	// ahead of the full dispatch. Aggregate only, never ring-stored.
	if e.Kind == obs.KindMCQueues {
		r.cur.QueueObs++
		r.cur.caqSum += uint64(e.V2)
		if e.V2 > r.cur.CAQMax {
			r.cur.CAQMax = e.V2
		}
		return
	}
	//asd:exhaustive
	switch e.Kind {
	case obs.KindCacheAccess:
		// L1 hits are the bulk of all demand traffic and carry no
		// MC-level forensic value; keep only the misses.
		if e.V1 == 1 {
			return
		}
	case obs.KindMCIssue:
		r.cur.Issues++
	case obs.KindMCComplete:
		r.cur.Completions++
	case obs.KindMCBankConflict:
		r.cur.BankConflicts++
	case obs.KindMCPBHit:
		r.cur.PFTimely++
		r.depths.Emit(e)
	case obs.KindMCPFIssue:
		r.cur.PFIssued++
		r.depths.Emit(e)
	case obs.KindMCPFLate:
		r.cur.PFLate++
		r.depths.Emit(e)
	case obs.KindMCPFInstall:
		r.cur.PFInstalled++
	case obs.KindMCPFWasted:
		r.cur.PFWasted++
		r.depths.Emit(e)
	case obs.KindMCPFNominate, obs.KindMCPFDrop:
		r.depths.Emit(e)
	case obs.KindASDPrefetchDecision:
		r.slh.Observe(int(e.V1))
	case obs.KindASDEpochRoll:
		r.cur.EpochRolls++
		r.lastEpoch = uint64(e.V1)
	case obs.KindMCQueues, obs.KindMCEnqueue, obs.KindMCSchedule,
		obs.KindDRAMAccess, obs.KindDRAMRefresh, obs.KindCPUStall,
		obs.KindSchedPolicy:
		// KindMCQueues is consumed by the aggregate-only fast path
		// above (unreachable here); the rest carry no window counters
		// and flow straight to the forensic ring below.
	}
	// Masking with len-1 (a power of two) lets the compiler drop the
	// bounds check on this store.
	r.ring[int(r.head)&(len(r.ring)-1)] = e
	r.head++
}

// roll closes the current window, evaluates the armed detectors on it,
// and opens the window containing cycle (empty windows are skipped).
func (r *Recorder) roll(cycle uint64) {
	r.close()
	idx := cycle / r.opts.WindowCycles
	r.cur = Window{Index: idx, Start: idx * r.opts.WindowCycles}
	r.winEnd = r.cur.Start + r.opts.WindowCycles
}

// close finalizes the in-progress window into the recent history and
// runs the detectors.
func (r *Recorder) close() {
	w := r.cur
	if w.QueueObs > 0 {
		w.CAQMean = float64(w.caqSum) / float64(w.QueueObs)
	}
	r.recent = append(r.recent, w)
	if len(r.recent) > recentWindows {
		copy(r.recent, r.recent[len(r.recent)-recentWindows:])
		r.recent = r.recent[:recentWindows]
	}
	for i, d := range r.armed {
		if d == nil {
			continue
		}
		detail, fired := d.Check(&w)
		if !fired {
			continue
		}
		r.armed[i] = nil
		t := Trigger{Detector: d.Name(), Detail: detail, Window: w.Index, Cycle: w.Start}
		r.triggers = append(r.triggers, t)
		if len(r.bundles) < r.opts.MaxBundles {
			r.bundles = append(r.bundles, r.capture(t))
		}
	}
}

// Finish closes the final (partial) window so detectors see it. Call
// once when the run ends; further Emits reopen recording.
func (r *Recorder) Finish() {
	if r.started {
		r.close()
		r.started = false
	}
}

// Triggers returns every detector firing, in order.
func (r *Recorder) Triggers() []Trigger { return r.triggers }

// Bundles returns the captured triage bundles (at most MaxBundles).
func (r *Recorder) Bundles() []*Bundle { return r.bundles }

// EventsSeen returns the number of events retained in (or aged out of)
// the ring over the run.
func (r *Recorder) EventsSeen() uint64 { return r.head }

// Depths returns the run's per-depth prefetch table so far.
func (r *Recorder) Depths() *obs.DepthStats { return &r.depths }

// ringSnapshot returns the retained events, oldest first.
func (r *Recorder) ringSnapshot() []obs.Event {
	n := r.head
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	out := make([]obs.Event, 0, n)
	for i := r.head - n; i < r.head; i++ {
		out = append(out, r.ring[i&r.mask])
	}
	return out
}
