package obs

import (
	"strings"
	"testing"
)

// TestSamplerWindowBoundaries pins the half-open window convention:
// cycle c lands in window c/Interval, so Interval-1 is the last cycle
// of window 0 and Interval the first cycle of window 1.
func TestSamplerWindowBoundaries(t *testing.T) {
	s := NewSampler(100)
	for _, cycle := range []uint64{0, 99, 100, 199, 200} {
		s.Emit(Event{Kind: KindMCEnqueue, Cycle: cycle}) // a read each
	}
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(samples), samples)
	}
	wantReads := []uint64{2, 2, 1} // {0,99}, {100,199}, {200}
	for i, sm := range samples {
		if sm.Window != uint64(i) {
			t.Errorf("window %d has index %d", i, sm.Window)
		}
		if sm.Start != uint64(i)*100 {
			t.Errorf("window %d starts at %d, want %d", i, sm.Start, i*100)
		}
		if sm.Reads != wantReads[i] {
			t.Errorf("window %d reads = %d, want %d", i, sm.Reads, wantReads[i])
		}
	}
}

// TestSamplerOutOfOrder: events for earlier windows — whether already
// open or skipped over — are still aggregated in the right window
// (cross-clock-domain probes may trail slightly).
func TestSamplerOutOfOrder(t *testing.T) {
	s := NewSampler(100)
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 250})
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 50})  // behind the front
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 150}) // between open windows
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 260}) // newest again

	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(samples), samples)
	}
	wantReads := []uint64{1, 1, 2}
	for i, sm := range samples {
		if sm.Window != uint64(i) || sm.Reads != wantReads[i] {
			t.Errorf("window[%d] = index %d with %d reads, want index %d with %d",
				i, sm.Window, sm.Reads, i, wantReads[i])
		}
	}
	if s.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", s.Dropped)
	}
}

func TestSamplerRingEviction(t *testing.T) {
	s := NewSampler(10)
	s.MaxWindows = 4
	for w := uint64(0); w < 10; w++ {
		s.Emit(Event{Kind: KindMCEnqueue, Cycle: w * 10})
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("retained %d windows, want 4", len(samples))
	}
	if samples[0].Window != 6 || samples[3].Window != 9 {
		t.Errorf("retained windows %d..%d, want 6..9", samples[0].Window, samples[3].Window)
	}
	// An event for an evicted window is dropped and counted.
	before := s.Dropped
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 0})
	if s.Dropped != before+1 {
		t.Errorf("Dropped = %d, want %d", s.Dropped, before+1)
	}
}

func TestSamplerAggregates(t *testing.T) {
	s := NewSampler(1000)
	s.Emit(Event{Kind: KindMCQueues, Cycle: 10, V1: 4, V2: 2, V3: 1})
	s.Emit(Event{Kind: KindMCQueues, Cycle: 20, V1: 6, V2: 4, V3: 3})
	s.Emit(Event{Kind: KindMCComplete, Cycle: 30, V1: 200})
	s.Emit(Event{Kind: KindMCComplete, Cycle: 40, V1: 100})
	s.Emit(Event{Kind: KindSchedPolicy, Cycle: 50, V1: 3})
	s.Emit(Event{Kind: KindCPUStall, Cycle: 60, V1: 77})

	sm := s.Samples()[0]
	if sm.CAQMean != 3 || sm.CAQMax != 4 {
		t.Errorf("CAQ mean/max = %v/%v, want 3/4", sm.CAQMean, sm.CAQMax)
	}
	if sm.ReorderMean != 5 || sm.LPQMean != 2 {
		t.Errorf("reorder/lpq mean = %v/%v, want 5/2", sm.ReorderMean, sm.LPQMean)
	}
	if sm.MeanReadLat != 150 {
		t.Errorf("MeanReadLat = %v, want 150", sm.MeanReadLat)
	}
	if sm.Policy != 3 || sm.StallCycles != 77 {
		t.Errorf("policy/stall = %v/%v", sm.Policy, sm.StallCycles)
	}

	// The policy gauge carries into subsequently opened windows.
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 1500})
	if got := s.Samples()[1].Policy; got != 3 {
		t.Errorf("carried policy = %d, want 3", got)
	}
}

func TestSamplerCSV(t *testing.T) {
	s := NewSampler(100)
	s.Emit(Event{Kind: KindMCEnqueue, Cycle: 5})
	var sb strings.Builder
	if err := CSVHeader(&sb); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCSV(&sb, "bench/PMS"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	if !strings.HasPrefix(lines[1], "bench/PMS,0,0,") {
		t.Errorf("row = %q", lines[1])
	}

	var jb strings.Builder
	if err := s.WriteJSONL(&jb, "bench/PMS"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"run":"bench/PMS"`) {
		t.Errorf("JSONL missing run label: %s", jb.String())
	}
}
