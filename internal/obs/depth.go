package obs

import (
	"fmt"
	"io"
)

// MaxTrackedDepth bounds the per-depth breakdown; deeper prefetches
// (multi-line runs past this) aggregate into the last bucket.
const MaxTrackedDepth = 8

// DepthStats is a Sink accumulating per-depth prefetch efficiency over
// a run: for each prefetch depth d (1 = the line adjacent to the
// trigger), how many prefetches were nominated, issued to DRAM, hit in
// the Prefetch Buffer (timely), merged in flight (late) and discarded
// unused. The paper evaluates degree 1 only; this sink is the
// instrument for judging the MaxDegree>1 extension.
type DepthStats struct {
	Nominated [MaxTrackedDepth + 1]uint64
	Issued    [MaxTrackedDepth + 1]uint64
	Timely    [MaxTrackedDepth + 1]uint64
	Late      [MaxTrackedDepth + 1]uint64
	Wasted    [MaxTrackedDepth + 1]uint64
	Dropped   [MaxTrackedDepth + 1]uint64
}

func depthBucket(v int64) int {
	if v < 0 {
		return 0
	}
	if v > MaxTrackedDepth {
		return MaxTrackedDepth
	}
	return int(v)
}

// Emit implements Sink.
//
//asd:hotpath
func (d *DepthStats) Emit(e Event) {
	switch e.Kind {
	case KindMCPFNominate:
		d.Nominated[depthBucket(e.V1)]++
	case KindMCPFIssue:
		d.Issued[depthBucket(e.V1)]++
	case KindMCPBHit:
		d.Timely[depthBucket(e.V2)]++
	case KindMCPFLate:
		d.Late[depthBucket(e.V1)]++
	case KindMCPFWasted:
		d.Wasted[depthBucket(e.V1)]++
	case KindMCPFDrop:
		d.Dropped[depthBucket(e.V1)]++
	}
}

// MaxDepthSeen returns the deepest bucket with any activity (0 when
// the run issued no prefetches).
func (d *DepthStats) MaxDepthSeen() int {
	deepest := 0
	for i := 1; i <= MaxTrackedDepth; i++ {
		if d.Nominated[i]+d.Issued[i]+d.Timely[i]+d.Late[i]+d.Wasted[i]+d.Dropped[i] > 0 {
			deepest = i
		}
	}
	return deepest
}

// Fprint renders the per-depth table, one row per active depth.
func (d *DepthStats) Fprint(w io.Writer) {
	deepest := d.MaxDepthSeen()
	if deepest == 0 {
		fmt.Fprintln(w, "no memory-side prefetch activity")
		return
	}
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %10s %10s\n",
		"depth", "nominated", "issued", "timely", "late", "wasted", "dropped")
	for i := 1; i <= deepest; i++ {
		label := fmt.Sprint(i)
		if i == MaxTrackedDepth {
			label += "+"
		}
		fmt.Fprintf(w, "%-6s %10d %10d %10d %10d %10d %10d\n",
			label, d.Nominated[i], d.Issued[i], d.Timely[i], d.Late[i], d.Wasted[i], d.Dropped[i])
	}
}
