package obs_test

import (
	"testing"

	"asdsim/internal/obs"
	"asdsim/internal/sim"
)

// benchConfig is the overhead benchmark's workload: the full PMS hot
// loop (caches + MC + ASD + adaptive scheduler + DRAM) on GemsFDTD.
func benchConfig() sim.Config { return sim.Default(sim.PMS, 200_000) }

// BenchmarkObsDisabledHotLoop measures the full simulation hot loop
// with no observer attached — every probe site reduced to its nil
// check. Compare against BenchmarkObsEnabledHotLoop to price the
// instrumentation; the disabled figure is the one held to the <2%
// regression budget vs the pre-instrumentation baseline.
func BenchmarkObsDisabledHotLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run("GemsFDTD", benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsEnabledHotLoop is the same workload with a bus and a
// counting sink attached: the fully-instrumented path.
func BenchmarkObsEnabledHotLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Obs = obs.NewBus(&obs.Counter{})
		if _, err := sim.Run("GemsFDTD", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsEnabledSampler prices the realistic observer stack:
// sampler plus per-depth stats, as asdsim -obs attaches.
func BenchmarkObsEnabledSampler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Obs = obs.NewBus(obs.NewSampler(0), &obs.DepthStats{})
		if _, err := sim.Run("GemsFDTD", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsBusEmit isolates one Emit through a single cheap sink.
func BenchmarkObsBusEmit(b *testing.B) {
	bus := obs.NewBus(&obs.Counter{})
	e := obs.Event{Kind: obs.KindMCQueues, V1: 1, V2: 2, V3: 3}
	for i := 0; i < b.N; i++ {
		bus.Emit(e)
	}
}
