package prov

import (
	"fmt"
	"io"
	"strings"

	"asdsim/internal/mem"
	"asdsim/internal/obs"
)

// Lineage is the reconstructed causal chain behind one prefetch: the
// epoch snapshot whose tables decided it, the stream-filter slot
// lifetime that produced the stream, the inequality decision, and the
// MC-side records from nomination to final outcome.
type Lineage struct {
	Line     mem.Line
	Chain    []Record // nominate/drop .. outcome, in firing order
	Decision *Record
	Slots    []Record // slot birth/extends leading to the decision, oldest first
	Epoch    *EpochSnap
}

// LastExplainable returns the most recently recorded line worth
// explaining — preferring a prefetch that scored a PB hit, then an
// installed one, then any nomination — with the cycle of that record.
// ok is false when the stream holds no prefetch lineage at all.
func LastExplainable(s *Stream) (line mem.Line, cycle uint64, ok bool) {
	for _, want := range []Op{OpPBHit, OpInstall, OpNominate} {
		for i := len(s.Records) - 1; i >= 0; i-- {
			if r := s.Records[i]; r.Op == want {
				return r.Line, r.Cycle, true
			}
		}
	}
	return 0, 0, false
}

// Explain reconstructs the lineage of the prefetch covering line. When
// cycle is nonzero the generation active at that cycle is chosen (the
// last chain whose nomination is at or before it); otherwise the last
// generation recorded for the line wins.
func Explain(s *Stream, line mem.Line, cycle uint64) (*Lineage, error) {
	// A line can be prefetched repeatedly; each OpNominate (or a
	// nomination-time OpDrop) opens a new generation.
	type gen struct{ start, end int }
	var gens []gen
	for i, r := range s.Records {
		if r.Line != line {
			continue
		}
		starts := r.Op == OpNominate ||
			(r.Op == OpDrop && obs.DropCause(r.Aux).AtNomination())
		if starts {
			gens = append(gens, gen{start: i, end: i})
		} else if len(gens) > 0 {
			switch r.Op {
			case OpIssue, OpInstall, OpPBHit, OpLate, OpWasted, OpDrop:
				gens[len(gens)-1].end = i
			}
		}
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("prov: no prefetch lineage recorded for line %#x (%d records retained, %d dropped)",
			uint64(line), len(s.Records), s.Dropped)
	}
	chosen := gens[len(gens)-1]
	if cycle > 0 {
		for i := len(gens) - 1; i >= 0; i-- {
			if s.Records[gens[i].start].Cycle <= cycle {
				chosen = gens[i]
				break
			}
		}
	}

	l := &Lineage{Line: line}
	for i := chosen.start; i <= chosen.end; i++ {
		r := s.Records[i]
		if r.Line != line {
			continue
		}
		switch r.Op {
		case OpNominate, OpDrop, OpIssue, OpInstall, OpPBHit, OpLate, OpWasted:
			l.Chain = append(l.Chain, r)
		}
	}

	head := s.Records[chosen.start]
	if decID := uint64(head.V2); decID != 0 {
		for i := chosen.start - 1; i >= 0; i-- {
			if r := s.Records[i]; r.Op == OpDecision && r.ID == decID {
				l.Decision = &s.Records[i]
				l.Slots = slotChain(s, i)
				break
			}
		}
	}
	if l.Decision != nil {
		for i := range s.Epochs {
			e := &s.Epochs[i]
			if e.Epoch == l.Decision.Epoch && e.Thread == l.Decision.Thread {
				l.Epoch = e
				break
			}
		}
	}
	return l, nil
}

// slotChain walks backwards from the decision at index di collecting
// the slot records (birth/extends) of the stream that reached it: the
// decision's Read extended the slot to the decision line at the same
// cycle, the previous extend sits one line back in the stream
// direction, and so on until the birth. A stream of length k leaves at
// most k slot records (one birth plus k-1 confirmations).
func slotChain(s *Stream, di int) []Record {
	dec := s.Records[di]
	down, _ := DecodeDecisionAux(dec.Aux)
	step := 1
	if down {
		step = -1
	}
	expect := dec.Line
	var rev []Record
	for i := di; i >= 0 && len(rev) < int(dec.V1); i-- {
		r := s.Records[i]
		if r.Line != expect || (r.Op != OpSlotBirth && r.Op != OpSlotExtend) {
			continue
		}
		rev = append(rev, r)
		if r.Op == OpSlotBirth {
			break
		}
		if down && r.V1 == 2 {
			// The direction flip: before it the slot (and its birth)
			// sat one line above the flip point (§3.3).
			expect = r.Line.Next(1)
		} else {
			expect = r.Line.Next(-step)
		}
	}
	// Reverse into firing order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// fmtTable renders an LHT vector compactly.
func fmtTable(t []uint32) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

func dirName(aux uint8) string {
	if DecodeDir(aux) < 0 {
		return "down"
	}
	return "up"
}

// WriteTree renders the lineage as a human-readable tree. The stage
// labels ("epoch", "stream:", "decision:", "nominate:", "issue:",
// "install:", "outcome:") are stable — CI greps them.
func (l *Lineage) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "lineage for line %#x\n", uint64(l.Line))
	branch := func(last bool) string {
		if last {
			return "└─ "
		}
		return "├─ "
	}

	if l.Epoch != nil {
		table, dirLabel := l.Epoch.UpNext, "up"
		if l.Decision != nil {
			if down, _ := DecodeDecisionAux(l.Decision.Aux); down {
				table, dirLabel = l.Epoch.DownNext, "down"
			}
		}
		fmt.Fprintf(w, "%sepoch %d: rolled @cycle %d — deciding LHT[%s]=%s\n",
			branch(false), l.Epoch.Epoch, l.Epoch.Cycle, dirLabel, fmtTable(table))
	}
	if n := len(l.Slots); n > 0 {
		first, lastS := l.Slots[0], l.Slots[n-1]
		fmt.Fprintf(w, "%sstream: %s %#x @cycle %d", branch(false),
			first.Op, uint64(first.Line), first.Cycle)
		if n > 1 {
			fmt.Fprintf(w, " → %d confirmations → head %#x length %d dir %s @cycle %d",
				n-1, uint64(lastS.Line), lastS.V1, dirName(lastS.Aux), lastS.Cycle)
		}
		fmt.Fprintln(w)
	}
	if d := l.Decision; d != nil {
		down, ineq := DecodeDecisionAux(d.Aux)
		tbl := "up"
		if down {
			tbl = "down"
		}
		lhtK, lhtKm := UnpackWitness(d.V3)
		fmt.Fprintf(w, "%sdecision: @cycle %d epoch %d table=%s ineq(%d) k=%d m=%d lht(k)=%d < 2*lht(k+m)=%d\n",
			branch(false), d.Cycle, d.Epoch, tbl, ineq, d.V1, d.V2, lhtK, 2*lhtKm)
	}
	for i, r := range l.Chain {
		last := i == len(l.Chain)-1
		switch r.Op {
		case OpNominate:
			fmt.Fprintf(w, "%snominate: depth %d @cycle %d\n", branch(last), r.V1, r.Cycle)
		case OpDrop:
			fmt.Fprintf(w, "%soutcome: dropped (%s) depth %d @cycle %d\n",
				branch(last), obs.DropCause(r.Aux), r.V1, r.Cycle)
		case OpIssue:
			fmt.Fprintf(w, "%sissue: depth %d @cycle %d (DRAM completion @cycle %d)\n",
				branch(last), r.V1, r.Cycle, r.V2)
		case OpInstall:
			fmt.Fprintf(w, "%sinstall: depth %d @cycle %d\n", branch(last), r.V1, r.Cycle)
		case OpPBHit:
			where := "PB entry check"
			if r.Aux == 1 {
				where = "late CAQ-head check"
			}
			fmt.Fprintf(w, "%soutcome: pb-hit depth %d @cycle %d (%s)\n", branch(last), r.V1, r.Cycle, where)
		case OpLate:
			fmt.Fprintf(w, "%soutcome: late depth %d @cycle %d (%d demand reads were already waiting)\n",
				branch(last), r.V1, r.Cycle, r.V2)
		case OpWasted:
			how := "evicted unused"
			if r.Aux == 1 {
				how = "invalidated by a write"
			}
			fmt.Fprintf(w, "%soutcome: wasted depth %d @cycle %d (%s)\n", branch(last), r.V1, r.Cycle, how)
		}
	}
}
