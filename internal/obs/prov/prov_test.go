package prov

import (
	"strings"
	"testing"
)

// TestRecorderRingDrop pins the wrap-around contract: the ring keeps
// the newest records, counts the discarded oldest, and flushes in
// firing order.
func TestRecorderRingDrop(t *testing.T) {
	r := New(Options{TraceID: "ring", RingSize: 8})
	for i := 0; i < 20; i++ {
		r.OnSlot(0, OpSlotBirth, uint64(100+i), 0x40, 1, 1)
	}
	st := r.Stream()
	if st.Dropped != 12 {
		t.Errorf("Dropped = %d, want 12", st.Dropped)
	}
	if len(st.Records) != 8 {
		t.Fatalf("len(Records) = %d, want 8", len(st.Records))
	}
	for i, rec := range st.Records {
		if want := uint64(100 + 12 + i); rec.Cycle != want {
			t.Errorf("record %d cycle = %d, want %d (oldest-first order)", i, rec.Cycle, want)
		}
	}
}

// TestRecorderIDsAreContentDerived pins that identical histories under
// identical trace IDs replay to identical record IDs, and that the
// trace ID perturbs them.
func TestRecorderIDsAreContentDerived(t *testing.T) {
	drive := func(traceID string) *Stream {
		r := New(Options{TraceID: traceID})
		r.OnSlot(0, OpSlotBirth, 100, 0x40, 1, 1)
		r.OnDecision(0, 150, 0x41, false, 2, 1, 9, 30)
		return r.Stream()
	}
	a, b := drive("t1"), drive("t1")
	if !equalStreams(a, b) {
		t.Error("identical histories under one trace ID diverged")
	}
	c := drive("t2")
	for i := range a.Records {
		if a.Records[i].ID == c.Records[i].ID {
			t.Errorf("record %d ID identical across trace IDs", i)
		}
	}
}

// TestLastExplainable pins the preference order: a PB hit beats an
// install beats a bare nomination.
func TestLastExplainable(t *testing.T) {
	st := sampleStream()
	line, cycle, ok := LastExplainable(st)
	if !ok || line != 0x42 || cycle != 2500 {
		t.Errorf("LastExplainable = %#x@%d ok=%v, want 0x42@2500 true", uint64(line), cycle, ok)
	}
	if _, _, ok := LastExplainable(&Stream{}); ok {
		t.Error("empty stream claimed an explainable prefetch")
	}
}

// TestExplainLineage reconstructs the full chain for the sample
// stream's prefetch and checks the rendered tree's stable labels.
func TestExplainLineage(t *testing.T) {
	st := sampleStream()
	lin, err := Explain(st, 0x42, 0)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if lin.Decision == nil || lin.Decision.ID != 14 {
		t.Fatalf("decision not linked: %+v", lin.Decision)
	}
	if lin.Epoch == nil || lin.Epoch.Epoch != 1 {
		t.Fatalf("epoch snapshot not linked: %+v", lin.Epoch)
	}
	if len(lin.Slots) == 0 {
		t.Error("no slot lifetime records linked")
	}
	var ops []string
	for _, r := range lin.Chain {
		ops = append(ops, r.Op.String())
	}
	if got, want := strings.Join(ops, " "), "nominate issue install pb-hit"; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}

	var b strings.Builder
	lin.WriteTree(&b)
	out := b.String()
	for _, label := range []string{
		"lineage for line 0x42", "epoch 1:", "stream: slot-birth",
		"decision:", "ineq(5)", "nominate: depth", "issue: depth",
		"install: depth", "outcome: pb-hit",
	} {
		if !strings.Contains(out, label) {
			t.Errorf("tree missing %q:\n%s", label, out)
		}
	}

	if _, err := Explain(st, 0x4242, 0); err == nil {
		t.Error("Explain of an unrecorded line did not fail")
	}
}

// TestDiff pins divergence detection and the per-length delta tally.
func TestDiff(t *testing.T) {
	a, b := sampleStream(), sampleStream()
	snap2 := EpochSnap{Epoch: 2, Cycle: 4000,
		UpCurr: a.Epochs[0].UpNext, UpNext: []uint32{7, 6, 5},
		DownCurr: a.Epochs[0].DownNext, DownNext: []uint32{3, 2, 1}}
	a.Epochs = append(a.Epochs, snap2)
	snapB := snap2
	snapB.UpNext = []uint32{9, 9, 9} // run B learned a different LHT
	b.Epochs = append(b.Epochs, snapB)
	b.Records = b.Records[:len(b.Records)-3] // B never saw the pb-hit/drop/wasted tail

	rep := Diff(a, b)
	if rep.FirstDiverge != 1 {
		t.Errorf("FirstDiverge = %d, want 1", rep.FirstDiverge)
	}
	if rep.SnapsA != 2 || rep.SnapsB != 2 {
		t.Errorf("snaps = %d/%d, want 2/2", rep.SnapsA, rep.SnapsB)
	}
	var k2 *LengthDelta
	for i := range rep.Lengths {
		if rep.Lengths[i].K == 2 {
			k2 = &rep.Lengths[i]
		}
	}
	if k2 == nil || k2.A.PBHits != 1 || k2.B.PBHits != 0 {
		t.Errorf("k=2 pb-hit delta not tallied: %+v", k2)
	}

	var w strings.Builder
	rep.WriteReport(&w)
	out := w.String()
	for _, label := range []string{
		"provenance diff:", "first diverging SLH epoch: 1",
		"per-stream-length deltas (B - A):", "pb-hits-1",
	} {
		if !strings.Contains(out, label) {
			t.Errorf("report missing %q:\n%s", label, out)
		}
	}

	if rep := Diff(sampleStream(), sampleStream()); rep.FirstDiverge != -1 {
		t.Errorf("identical streams diverged at %d", rep.FirstDiverge)
	}
}

// TestStoreRoundTrip pins sidecar persistence: save/load/list plus the
// key validation that keeps keys filesystem-safe.
func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir() + "/sidecars")
	if err != nil {
		t.Fatal(err)
	}
	st := sampleStream()
	if err := s.Save("cell-b", st); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("cell-a", st); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("cell-b")
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if !equalStreams(st, got) {
		t.Error("stream mutated through the sidecar round trip")
	}
	if _, ok, err := s.Load("missing"); ok || err != nil {
		t.Errorf("missing key: ok=%v err=%v, want false nil", ok, err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "cell-a" || keys[1] != "cell-b" {
		t.Errorf("Keys = %v, want sorted [cell-a cell-b]", keys)
	}
	for _, bad := range []string{"", "a/b", ".hidden", strings.Repeat("k", 129), "sp ace"} {
		if err := s.Save(bad, st); err == nil {
			t.Errorf("Save accepted hostile key %q", bad)
		}
	}
}
